package fluxion

// Cross-module invariant tests: random workloads drive the full stack and
// the test re-derives ground truth from the per-vertex planners, checking
// that the pruning filters (maintained only by SDFU increments) never
// drift from it, and that cancellation restores the store exactly.

import (
	"math/rand"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// checkFilterConsistency verifies, for every filter-carrying vertex and
// tracked type, that the filter's busy amount at one instant equals the
// sum of planner usage across the subtree at that instant — i.e. SDFU kept
// aggregates exact. (Instantaneous windows are required: the minimum of an
// aggregate over a window is not the sum of per-vertex window minimums.)
func checkFilterConsistency(t *testing.T, g *resgraph.Graph, at int64) {
	const dur = 1
	t.Helper()
	var subtreeBusy func(v *resgraph.Vertex, typ string) int64
	subtreeBusy = func(v *resgraph.Vertex, typ string) int64 {
		var busy int64
		if v.Type == typ {
			avail, err := v.Planner().AvailDuring(at, dur)
			if err != nil {
				t.Fatal(err)
			}
			busy += v.Size - avail
		}
		v.EachChild(resgraph.Containment, func(c *resgraph.Vertex) bool {
			busy += subtreeBusy(c, typ)
			return true
		})
		return busy
	}
	for _, v := range g.Vertices() {
		f := v.Filter()
		if f == nil {
			continue
		}
		for _, typ := range f.Types() {
			p := f.Planner(typ)
			avail, err := p.AvailDuring(at, dur)
			if err != nil {
				t.Fatal(err)
			}
			filterBusy := p.Total() - avail
			truth := subtreeBusy(v, typ)
			if filterBusy != truth {
				t.Fatalf("filter drift at %s type %s window [%d,%d): filter busy %d, subtree busy %d",
					v.Path(), typ, at, at+dur, filterBusy, truth)
			}
		}
	}
}

// checkDrained verifies every planner and filter is fully available.
func checkDrained(t *testing.T, g *resgraph.Graph) {
	t.Helper()
	for _, v := range g.Vertices() {
		if v.Planner().SpanCount() != 0 {
			t.Fatalf("%s still holds %d spans", v.Path(), v.Planner().SpanCount())
		}
		if f := v.Filter(); f != nil && f.SpanCount() != 0 {
			t.Fatalf("%s filter still holds %d spans", v.Path(), f.SpanCount())
		}
	}
}

func TestInvariantRandomWorkload(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(3, 4, 8, 32, 100), 0, 1<<30,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node", "memory", "bb"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	type live struct{ id int64 }
	var jobs []live
	nextID := int64(1)

	shapes := []func(dur int64) *jobspec.Jobspec{
		func(d int64) *jobspec.Jobspec { return jobspec.NodeLocal(1, 1, 3, 8, 10, d) },
		func(d int64) *jobspec.Jobspec {
			return jobspec.New(d, jobspec.RX("node", 2, jobspec.R("core", 8)))
		},
		func(d int64) *jobspec.Jobspec {
			return jobspec.New(d, jobspec.SlotR(2, jobspec.R("core", 2), jobspec.R("memory", 4)))
		},
		func(d int64) *jobspec.Jobspec {
			return jobspec.New(d, jobspec.R("rack", 1, jobspec.SlotR(1, jobspec.R("node", 2, jobspec.R("core", 4)))))
		},
	}

	for op := 0; op < 600; op++ {
		switch {
		case len(jobs) == 0 || rng.Intn(100) < 55:
			d := int64(rng.Intn(500)) + 10
			spec := shapes[rng.Intn(len(shapes))](d)
			at := int64(rng.Intn(200))
			var err error
			if rng.Intn(2) == 0 {
				_, err = tr.MatchAllocate(nextID, spec, at)
			} else {
				_, err = tr.MatchAllocateOrReserve(nextID, spec, at)
			}
			if err == nil {
				jobs = append(jobs, live{nextID})
				nextID++
			}
		default:
			i := rng.Intn(len(jobs))
			if err := tr.Cancel(jobs[i].id); err != nil {
				t.Fatalf("op %d: cancel %d: %v", op, jobs[i].id, err)
			}
			jobs = append(jobs[:i], jobs[i+1:]...)
		}
		if op%50 == 0 {
			checkFilterConsistency(t, g, int64(rng.Intn(400)))
		}
	}
	for _, j := range jobs {
		if err := tr.Cancel(j.id); err != nil {
			t.Fatal(err)
		}
	}
	checkDrained(t, g)
}

func TestInvariantReleasePreservesConsistency(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(2, 4, 8, 0, 0), 0, 1<<30,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.LowID{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	var live []int64
	for round := 0; round < 40; round++ {
		spec := jobspec.New(int64(rng.Intn(300))+10, jobspec.RX("node", 3, jobspec.R("core", 8)))
		alloc, err := tr.MatchAllocate(int64(round+1), spec, 0)
		if err != nil {
			// The system filled up with surviving jobs: drain and retry.
			for _, id := range live {
				if err := tr.Cancel(id); err != nil {
					t.Fatal(err)
				}
			}
			live = nil
			checkFilterConsistency(t, g, 0)
			if alloc, err = tr.MatchAllocate(int64(round+1), spec, 0); err != nil {
				t.Fatal(err)
			}
		}
		live = append(live, int64(round+1))
		// Release one random granted node and its cores.
		nodes := alloc.Nodes()
		n := nodes[rng.Intn(len(nodes))]
		paths := []string{n.Path()}
		n.EachChild(resgraph.Containment, func(c *resgraph.Vertex) bool {
			paths = append(paths, c.Path())
			return true
		})
		if err := tr.Release(int64(round+1), paths); err != nil {
			t.Fatal(err)
		}
		checkFilterConsistency(t, g, 0)
		if rng.Intn(2) == 0 {
			if err := tr.Cancel(int64(round + 1)); err != nil {
				t.Fatal(err)
			}
			live = live[:len(live)-1]
			checkFilterConsistency(t, g, 0)
		}
	}
}

func TestConcurrentFacadeAccess(t *testing.T) {
	f := newFluxion(t)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				id := int64(w*1000 + i)
				spec := jobspec.NodeLocal(1, 1, 1, 1, 0, 50)
				if _, e := f.MatchAllocateOrReserve(id, spec, 0); e != nil {
					err = e
					break
				}
				if _, ok := f.Info(id); !ok {
					break
				}
				err = f.Cancel(id)
			}
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if len(f.Jobs()) != 0 {
		t.Fatalf("jobs leaked: %v", f.Jobs())
	}
}

// TestElasticityUnderLoad grows the system while jobs are running and
// reserved, and verifies the new capacity is scheduled onto and the
// filters stay exact.
func TestElasticityUnderLoad(t *testing.T) {
	f, err := New(
		WithRecipe(grug.Small(1, 2, 4, 0, 0)),
		WithPruneFilters("ALL:core,ALL:node"),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Fill both nodes and queue a reservation.
	busy := jobspec.New(100, jobspec.RX("node", 2, jobspec.R("core", 4)))
	if _, err := f.MatchAllocate(1, busy, 0); err != nil {
		t.Fatal(err)
	}
	res, err := f.MatchAllocateOrReserve(2, jobspec.New(50, jobspec.RX("node", 1, jobspec.R("core", 4))), 0)
	if err != nil || !res.Reserved || res.At != 100 {
		t.Fatalf("reserve = %+v, %v", res, err)
	}
	// Grow a rack with two fresh nodes mid-flight.
	sub := &grug.Recipe{Root: grug.N("rack", 1, grug.N("node", 2, grug.N("core", 4)))}
	if _, err := f.Grow("/cluster0", sub); err != nil {
		t.Fatal(err)
	}
	checkFilterConsistency(t, f.Graph(), 0)
	// An immediate allocation lands on the new nodes even though the
	// original ones are busy.
	a3, err := f.MatchAllocate(3, jobspec.New(50, jobspec.RX("node", 2, jobspec.R("core", 4))), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range a3.Nodes() {
		if n.Parent().Name != "rack1" {
			t.Fatalf("job 3 landed on old node %s", n.Path())
		}
	}
	checkFilterConsistency(t, f.Graph(), 10)
	// Drain everything; shrink succeeds and the store is consistent.
	for _, id := range []int64{1, 2, 3} {
		if err := f.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Shrink("/cluster0/rack1"); err != nil {
		t.Fatal(err)
	}
	checkDrained(t, f.Graph())
	if f.Graph().Root(resgraph.Containment).Aggregates()["node"] != 2 {
		t.Fatalf("aggregates after shrink: %v", f.Graph().Root(resgraph.Containment).Aggregates())
	}
}
