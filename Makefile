GO ?= go

# Coverage floor enforced by `make cover-check` (and CI). Raise it when
# coverage grows; never lower it to merge.
COVER_FLOOR ?= 78.0

# The benchmark families gated against BENCH_BASELINE.json. -cpu is
# pinned so sub-benchmark names (and the -N suffix) are identical across
# machines; -count 5 lets benchdiff take the noise-resistant median.
BENCH_GATE  ?= BenchmarkLODMatch|BenchmarkPlanner|BenchmarkSlotMatch|BenchmarkSchedCycle|BenchmarkWALAppend|BenchmarkParallelMatch|BenchmarkGraphMemory|BenchmarkSchedMemory|BenchmarkShardedThroughput
BENCH_FLAGS  = -run NONE -bench '$(BENCH_GATE)' -benchtime 0.5s -count 5 -cpu 4
# Packages holding gated benchmarks.
BENCH_PKGS   = . ./internal/sched ./internal/wal ./internal/resgraph ./internal/shard

.PHONY: all build test test-race race bench repro cover cover-check \
	lint bench-baseline bench-regress fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race is what CI runs: the full suite under the race detector.
test-race:
	$(GO) test -race ./...

race: test-race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure/table of the paper's evaluation (~3 minutes).
repro:
	$(GO) run ./cmd/fluxion-bench -experiment all -csv repro-csv

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# cover-check fails when total statement coverage drops below
# COVER_FLOOR. CI runs this on every push.
cover-check:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

lint:
	golangci-lint run

# bench-baseline refreshes BENCH_BASELINE.json from a fresh run of the
# gated benchmarks. Commit the result when a perf change is intended.
bench-baseline:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) > bench-current.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -input bench-current.txt -write

# bench-regress is the CI perf gate: fails when a gated benchmark is
# >20% slower than BENCH_BASELINE.json after machine-speed calibration.
bench-regress:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) > bench-current.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -input bench-current.txt

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out bench-current.txt
	rm -rf repro-csv
