GO ?= go

.PHONY: all build test test-race race bench repro cover fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race is what CI runs: the full suite under the race detector.
test-race:
	$(GO) test -race ./...

race: test-race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure/table of the paper's evaluation (~3 minutes).
repro:
	$(GO) run ./cmd/fluxion-bench -experiment all -csv repro-csv

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f cover.out
	rm -rf repro-csv
