package fluxion

import (
	"errors"
	"strings"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
)

const testRecipe = `
name: test-cluster
root:
  type: cluster
  with:
    - type: rack
      count: 2
      with:
        - type: node
          count: 2
          with:
            - {type: core, count: 4}
            - {type: memory, count: 1, size: 16, unit: GB}
`

const testJobspec = `
version: 1
resources:
  - type: node
    count: 1
    with:
      - type: slot
        count: 1
        with:
          - {type: core, count: 2}
          - {type: memory, count: 4}
attributes:
  system:
    duration: 3600
`

func newFluxion(t *testing.T, opts ...Option) *Fluxion {
	t.Helper()
	base := []Option{
		WithRecipeYAML([]byte(testRecipe)),
		WithPruneFilters("ALL:core,ALL:node,ALL:memory"),
	}
	f, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRequiresExactlyOneSource(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := New(WithRecipe(grug.Small(1, 1, 1, 0, 0)), WithRecipeYAML([]byte("x"))); err == nil {
		t.Fatal("two sources accepted")
	}
}

func TestEndToEndYAML(t *testing.T) {
	f := newFluxion(t)
	alloc, err := f.MatchAllocateYAML(1, []byte(testJobspec), 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Reserved || alloc.Duration != 3600 {
		t.Fatalf("alloc = %+v", alloc)
	}
	d := alloc.Describe()
	if !strings.Contains(d, "core") || !strings.Contains(d, "memory") {
		t.Fatalf("Describe = %q", d)
	}
	if jobs := f.Jobs(); len(jobs) != 1 || jobs[0] != 1 {
		t.Fatalf("Jobs = %v", jobs)
	}
	if _, ok := f.Info(1); !ok {
		t.Fatal("Info missing")
	}
	if err := f.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Cancel(1); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("double cancel: %v", err)
	}
	if n, d := f.MatchStats(); n != 1 || d <= 0 {
		t.Fatalf("MatchStats = %d, %v", n, d)
	}
}

func TestReserveViaFacade(t *testing.T) {
	f := newFluxion(t)
	spec := jobspec.NodeLocal(4, 1, 4, 0, 0, 100) // all 4 nodes, all cores
	if _, err := f.MatchAllocate(1, spec, 0); err != nil {
		t.Fatal(err)
	}
	alloc, err := f.MatchAllocateOrReserve(2, jobspec.NodeLocal(1, 1, 4, 0, 0, 50), 0)
	if err != nil || !alloc.Reserved || alloc.At != 100 {
		t.Fatalf("alloc = %+v, %v", alloc, err)
	}
}

func TestMatchSatisfyFacade(t *testing.T) {
	f := newFluxion(t)
	ok, err := f.MatchSatisfy(jobspec.NodeLocal(4, 1, 4, 16, 0, 10))
	if err != nil || !ok {
		t.Fatalf("satisfiable: %v %v", ok, err)
	}
	ok, err = f.MatchSatisfy(jobspec.NodeLocal(5, 1, 1, 0, 0, 10))
	if err != nil || ok {
		t.Fatalf("too many nodes: %v %v", ok, err)
	}
}

func TestGrowShrink(t *testing.T) {
	f := newFluxion(t)
	// Grow a third node under rack0.
	sub := &grug.Recipe{Root: grug.N("node", 1, grug.N("core", 4))}
	v, err := f.Grow("/cluster0/rack0", sub)
	if err != nil {
		t.Fatal(err)
	}
	if v.Path() != "/cluster0/rack0/node4" {
		t.Fatalf("grown path = %q", v.Path())
	}
	// 5-node jobs are now satisfiable.
	ok, err := f.MatchSatisfy(jobspec.NodeLocal(5, 1, 4, 0, 0, 10))
	if err != nil || !ok {
		t.Fatalf("after grow: %v %v", ok, err)
	}
	// Shrink it back.
	if err := f.Shrink(v.Path()); err != nil {
		t.Fatal(err)
	}
	ok, _ = f.MatchSatisfy(jobspec.NodeLocal(5, 1, 4, 0, 0, 10))
	if ok {
		t.Fatal("still satisfiable after shrink")
	}
	// Busy subtree refuses shrink.
	if _, err := f.MatchAllocate(1, jobspec.NodeLocal(1, 1, 4, 0, 0, 1000), 0); err != nil {
		t.Fatal(err)
	}
	var busyNode string
	a, _ := f.Info(1)
	busyNode = a.Nodes()[0].Path()
	if err := f.Shrink(busyNode); !errors.Is(err, resgraph.ErrBusy) {
		t.Fatalf("shrink busy: %v", err)
	}
	if err := f.Shrink("/nope"); err == nil {
		t.Fatal("shrink unknown path accepted")
	}
}

func TestStatusAndFind(t *testing.T) {
	f := newFluxion(t)
	if err := f.SetStatus("/cluster0/rack0/node0", false); err != nil {
		t.Fatal(err)
	}
	down := f.Find("node", "down")
	if len(down) != 1 || down[0] != "/cluster0/rack0/node0" {
		t.Fatalf("down = %v", down)
	}
	if up := f.Find("node", "up"); len(up) != 3 {
		t.Fatalf("up = %v", up)
	}
	if all := f.Find("", ""); len(all) != f.Graph().Len() {
		t.Fatalf("all = %d", len(all))
	}
	if err := f.SetStatus("/nope", true); err == nil {
		t.Fatal("unknown path accepted")
	}
}

func TestJGFRoundTripViaFacade(t *testing.T) {
	f := newFluxion(t)
	data, err := f.JGF()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := New(WithJGF(data), WithPruneFilters("ALL:core"))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Graph().Len() != f.Graph().Len() {
		t.Fatalf("Len: %d vs %d", f2.Graph().Len(), f.Graph().Len())
	}
	// The reloaded store schedules identically.
	if _, err := f2.MatchAllocateYAML(1, []byte(testJobspec), 0); err != nil {
		t.Fatal(err)
	}
}

func TestWithGraphUnfinalized(t *testing.T) {
	g := resgraph.NewGraph(0, 1000)
	cl := g.MustAddVertex("cluster", -1, 1)
	nd := g.MustAddVertex("node", -1, 1)
	if err := g.AddContainment(cl, nd); err != nil {
		t.Fatal(err)
	}
	c := g.MustAddVertex("core", -1, 1)
	if err := g.AddContainment(nd, c); err != nil {
		t.Fatal(err)
	}
	f, err := New(WithGraph(g), WithPruneFilters("ALL:core"))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Graph().Finalized() {
		t.Fatal("graph not finalized by New")
	}
	if f.Graph().Root(resgraph.Containment).Filter() == nil {
		t.Fatal("prune spec not applied")
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := New(WithRecipe(grug.Small(1, 1, 1, 0, 0)), WithPolicy("nope")); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := New(WithRecipe(grug.Small(1, 1, 1, 0, 0)), WithPruneFilters("broken")); err == nil {
		t.Fatal("bad prune spec accepted")
	}
	if _, err := New(WithRecipe(grug.Small(1, 1, 1, 0, 0)), WithHorizon(-1)); err == nil {
		t.Fatal("bad horizon accepted")
	}
	if _, err := New(WithRecipeYAML([]byte("::bad"))); err == nil {
		t.Fatal("bad recipe accepted")
	}
	if _, err := New(WithRecipe(grug.Small(1, 1, 1, 0, 0)), WithSubsystem("nope")); err == nil {
		t.Fatal("unknown subsystem accepted")
	}
}

func TestStatString(t *testing.T) {
	f := newFluxion(t)
	if s := f.Stat(); !strings.Contains(s, "vertices") {
		t.Fatalf("Stat = %q", s)
	}
}

func TestParseJobspecHelper(t *testing.T) {
	js, err := ParseJobspec([]byte(testJobspec))
	if err != nil || js.Duration != 3600 {
		t.Fatalf("ParseJobspec: %+v, %v", js, err)
	}
}

func TestGraphMLRoundTripViaFacade(t *testing.T) {
	f := newFluxion(t)
	data, err := f.GraphML()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := New(WithGraphML(data), WithPruneFilters("ALL:core,ALL:node,ALL:memory"))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Graph().Len() != f.Graph().Len() {
		t.Fatalf("Len: %d vs %d", f2.Graph().Len(), f.Graph().Len())
	}
	if _, err := f2.MatchAllocateYAML(1, []byte(testJobspec), 0); err != nil {
		t.Fatal(err)
	}
}
