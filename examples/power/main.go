// Power: flow resources and multi-level constraints (paper §1, §3.1).
// System power is a pool like any other vertex: the cluster feeds two
// power distribution units, each capping the racks beneath it. Jobs
// request watts alongside cores, and the scheduler enforces the power cap
// even when plenty of cores remain — the multi-level constraint
// node-centric models cannot express.
package main

import (
	"errors"
	"fmt"
	"log"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
)

func main() {
	// Each rack holds 4 nodes x 16 cores and a 1000 W power pool
	// (vertex "power" under the rack: drawing from it means drawing
	// from that rack's PDU budget).
	recipe := &grug.Recipe{
		Name: "power-capped",
		Root: grug.N("cluster", 1,
			grug.N("rack", 2,
				grug.NP("power", 1, 1000, "W"),
				grug.N("node", 4, grug.N("core", 16)))),
	}
	f, err := fluxion.New(
		fluxion.WithRecipe(recipe),
		fluxion.WithPruneFilters("ALL:core,ALL:node,ALL:power"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("store:", f.Stat())

	// A job shape: 1 node (16 cores) + 400 W from the same rack.
	job := jobspec.New(3600,
		jobspec.R("rack", 1,
			jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 16))),
			jobspec.R("power", 400)))

	// Each rack's 1000 W budget admits two 400 W jobs; the third is
	// power-blocked even though 2 of the rack's 4 nodes are idle.
	id := int64(1)
	for rack := 0; rack < 2; rack++ {
		for k := 0; k < 2; k++ {
			a, err := f.MatchAllocate(id, job, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("job %d: %s\n", id, a.Describe())
			id++
		}
	}
	if _, err := f.MatchAllocate(id, job, 0); !errors.Is(err, fluxion.ErrNoMatch) {
		log.Fatalf("expected power cap to block, got %v", err)
	}
	fmt.Println("5th 400 W job blocked: each rack has 200 W left but 2 idle nodes —")
	fmt.Println("the power constraint, not the compute constraint, binds.")

	// A low-power job (150 W) still fits on the idle nodes.
	lowPower := jobspec.New(3600,
		jobspec.R("rack", 1,
			jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 16))),
			jobspec.R("power", 150)))
	a, err := f.MatchAllocate(id, lowPower, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("150 W job fits: %s\n", a.Describe())

	// Reservations account for power over time too: a 400 W job is
	// reserved for when the first jobs complete.
	r, err := f.MatchAllocateOrReserve(id+1, job, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next 400 W job reserved at t=%d (when power frees up)\n", r.At)
}
