// Hierarchical: fully hierarchical scheduling (paper §5.6). A parent
// Fluxion instance grants a batch allocation to a workflow; the workflow
// spawns its own child instance over exactly that grant and schedules
// thousands of small ensemble tasks inside it at high throughput, without
// ever touching the parent scheduler. Children can recurse to arbitrary
// depth.
package main

import (
	"fmt"
	"log"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
)

func main() {
	// The machine: 8 racks x 8 nodes x 16 cores.
	parent, err := fluxion.New(
		fluxion.WithRecipe(grug.Small(8, 8, 16, 0, 0)),
		fluxion.WithPruneFilters("ALL:core,ALL:node"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parent:", parent.Stat())

	// The workflow's batch job: 16 exclusive nodes.
	batch := jobspec.New(0, jobspec.RX("node", 16, jobspec.R("core", 16)))
	if _, err := parent.MatchAllocate(1, batch, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("parent granted 16 nodes to the workflow (job 1)")

	// The workflow instance schedules within its grant.
	wf, err := parent.SpawnInstance(1, fluxion.WithPruneFilters("ALL:core,ALL:node"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow instance:", wf.Stat())

	// High-throughput ensemble: 256 single-core tasks of 60 s each fill
	// the 256 granted cores exactly.
	task := jobspec.New(60, jobspec.SlotR(1, jobspec.R("core", 1)))
	placed := 0
	for id := int64(1); ; id++ {
		if _, err := wf.MatchAllocate(id, task, 0); err != nil {
			break
		}
		placed++
	}
	fmt.Printf("workflow placed %d single-core tasks (grant = 16x16 = 256 cores)\n", placed)

	// A second level: the workflow retires its first 64 tasks and hands
	// the 4 freed nodes to an in-situ analysis sub-instance.
	for id := int64(1); id <= 64; id++ {
		if err := wf.Cancel(id); err != nil {
			log.Fatal(err)
		}
	}
	analysis := jobspec.New(0, jobspec.RX("node", 4, jobspec.R("core", 16)))
	if _, err := wf.MatchAllocate(10001, analysis, 0); err != nil {
		log.Fatal(err)
	}
	sub, err := wf.SpawnInstance(10001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analysis sub-instance:", sub.Stat())

	// The parent is untouched by all of this: it still sees one job.
	fmt.Printf("parent still tracks %d job(s); hierarchy depth reached: 3 instances\n", len(parent.Jobs()))
}
