// Disaggregated: models the paper's §5.4 disaggregated supercomputer —
// specialized racks holding only CPUs, only GPUs, only memory, or only
// burst buffers, stitched together by the cluster fabric. With the
// graph-based model, scheduling across rack types is the same containment
// traversal as a traditional machine: the request simply names resources
// from several subtrees.
package main

import (
	"fmt"
	"log"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
)

func main() {
	f, err := fluxion.New(
		fluxion.WithRecipe(grug.Disaggregated(4, 2, 2, 1)),
		fluxion.WithPruneFilters("ALL:core,ALL:gpu,ALL:memory,ALL:bb"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("disaggregated store:", f.Stat())

	// A converged job drawing from four specialized rack types at once:
	// 64 cores from the CPU racks, 8 GPUs from a GPU rack, 512 GB of
	// fabric-attached memory, and 2 TB of burst buffer.
	job := jobspec.New(3600,
		jobspec.R("cpu-rack", 1, jobspec.SlotR(1, jobspec.R("core", 64))),
		jobspec.R("gpu-rack", 1, jobspec.SlotR(1, jobspec.R("gpu", 8))),
		jobspec.R("mem-rack", 1, jobspec.SlotR(1, jobspec.R("memory", 512))),
		jobspec.R("bb-rack", 1, jobspec.SlotR(1, jobspec.R("bb", 2048))))
	alloc, err := f.MatchAllocate(1, job, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverged job allocated across rack types:\n  %s\n", alloc.Describe())

	// GPU-only scheduling ("scheduling only across the GPU-racks"): the
	// traverser never descends into CPU, memory, or burst-buffer racks
	// thanks to type-directed collection and pruning filters.
	gpuJob := jobspec.New(3600, jobspec.R("gpu-rack", 1, jobspec.SlotR(1, jobspec.R("gpu", 32))))
	a2, err := f.MatchAllocate(2, gpuJob, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGPU-rack-only job:\n  %s\n", a2.Describe())

	// Capacity accounting is per rack type: the system has 2 GPU racks x
	// 64 GPUs; after 8 + 32, a 96-GPU job cannot fit under one rack but
	// is satisfiable as two 44/52... it must span both racks.
	big := jobspec.New(3600, jobspec.R("gpu-rack", 2, jobspec.SlotR(1, jobspec.R("gpu", 40))))
	if _, err := f.MatchAllocate(3, big, 0); err != nil {
		fmt.Printf("\n80-GPU two-rack job rejected as expected after earlier usage: %v\n", err)
	} else {
		fmt.Println("\n80-GPU job spread across both GPU racks")
	}
}
