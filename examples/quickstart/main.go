// Quickstart: build a small cluster from a GRUG recipe, submit a canonical
// jobspec, inspect the selected resource set, and release it.
package main

import (
	"fmt"
	"log"

	"fluxion"
)

const recipe = `
name: demo-cluster
root:
  type: cluster
  with:
    - type: rack
      count: 2
      with:
        - type: node
          count: 4
          with:
            - {type: core, count: 16}
            - {type: gpu, count: 2}
            - {type: memory, count: 1, size: 64, unit: GB}
`

const job = `
version: 1
resources:
  - type: node
    count: 2
    with:
      - type: slot
        count: 1
        with:
          - {type: core, count: 8}
          - {type: gpu, count: 1}
          - {type: memory, count: 16}
attributes:
  system:
    duration: 3600
`

func main() {
	f, err := fluxion.New(
		fluxion.WithRecipeYAML([]byte(recipe)),
		fluxion.WithPolicy("first"),
		fluxion.WithPruneFilters("ALL:core,ALL:node"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("store:", f.Stat())

	// Allocate: 2 nodes, each hosting a slot of 8 cores + 1 GPU + 16 GB.
	alloc, err := f.MatchAllocateYAML(1, []byte(job), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 1 allocated at t=%d for %ds on:\n  %s\n", alloc.At, alloc.Duration, alloc.Describe())

	// The cluster has 8 nodes; filling it shows reservations kicking in.
	for id := int64(2); ; id++ {
		a, err := f.MatchAllocateOrReserve(id, mustParse(job), 0)
		if err != nil {
			log.Fatal(err)
		}
		if a.Reserved {
			fmt.Printf("job %d reserved for t=%d (cluster full now)\n", id, a.At)
			break
		}
		fmt.Printf("job %d allocated immediately\n", id)
	}

	// Cancel job 1; its resources free up instantly.
	if err := f.Cancel(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("job 1 canceled;", f.Stat())
}

func mustParse(y string) *fluxion.Jobspec {
	js, err := fluxion.ParseJobspec([]byte(y))
	if err != nil {
		log.Fatal(err)
	}
	return js
}
