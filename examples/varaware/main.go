// Varaware: the paper's §5.2/§6.3 case study in miniature. Nodes carry
// performance classes derived from synthetic manufacturing-variation data
// (calibrated to the published 2.47x / 1.91x benchmark spreads), and the
// variation-aware match policy packs each job into as few classes as
// possible, minimizing rank-to-rank performance variation (Equation 2's
// figure of merit).
package main

import (
	"fmt"
	"log"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
	"fluxion/internal/workload"
)

func main() {
	const (
		racks, nodesPerRack, cores = 4, 16, 8
		nNodes                     = racks * nodesPerRack
		seed                       = 7
	)
	// One synthetic variation model shared by all policy runs.
	model := workload.GenerateVariation(nNodes, seed)
	fmt.Println("performance classes (Eq. 1 binning of synthetic node benchmarks):")
	hist := model.ClassHistogram()
	for c := 1; c <= workload.NumClasses; c++ {
		fmt.Printf("  class %d: %2d nodes\n", c, hist[c])
	}

	trace := workload.GenerateTrace(40, 16, seed+1)
	fomPolicy := match.NewVariation("")

	for _, policyName := range []string{"high", "low", "variation"} {
		g, err := grug.BuildGraph(
			grug.Quartz(racks, nodesPerRack, cores), 0, 1<<40,
			resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
		if err != nil {
			log.Fatal(err)
		}
		model.Apply(g)
		policy, err := match.Lookup(policyName)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := traverser.New(g, policy)
		if err != nil {
			log.Fatal(err)
		}
		s, err := sched.New(tr, sched.Conservative)
		if err != nil {
			log.Fatal(err)
		}
		for _, tj := range trace {
			if _, err := s.Submit(tj.ID, tj.Jobspec(cores)); err != nil {
				log.Fatal(err)
			}
		}
		s.Schedule() // initial pass over the queue snapshot

		var allocs []*traverser.Allocation
		immediate := 0
		for _, tj := range trace {
			job, _ := s.Job(tj.ID)
			if job.State == sched.StateRunning {
				immediate++
			}
			if job.Alloc != nil {
				allocs = append(allocs, job.Alloc)
			}
		}
		fom := workload.FomHistogram(allocs, fomPolicy)
		fmt.Printf("\npolicy %-10s  %d/%d jobs started immediately\n", policyName, immediate, len(trace))
		fmt.Printf("  figure-of-merit histogram (0 = no variation): %v\n", fom)
	}
	fmt.Println("\nThe variation-aware policy concentrates jobs at fom=0: every rank of")
	fmt.Println("those jobs runs on nodes from a single performance class.")
}
