// Converged: HPC and cloud workloads sharing one Fluxion store (paper
// §5.3, the Fluence/KubeFlux use case). The same graph serves two tenants:
// tightly-coupled MPI jobs needing exclusive whole nodes, and long-running
// containerized services that pack onto shared nodes by cores and memory —
// pod-style requests. A moldable analytics job flexes into whatever is
// left (paper §1: moldability).
package main

import (
	"fmt"
	"log"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
)

func main() {
	f, err := fluxion.New(
		fluxion.WithRecipe(grug.Small(2, 4, 16, 64, 0)), // 8 nodes x 16 cores x 64 GB
		fluxion.WithPruneFilters("ALL:core,ALL:node,ALL:memory"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("store:", f.Stat())
	id := int64(1)

	// Cloud tenant: 6 service pods, each 2 cores + 8 GB, packed onto
	// shared nodes (no exclusivity).
	pod := jobspec.New(0, jobspec.R("node", 1,
		jobspec.SlotR(1, jobspec.R("core", 2), jobspec.R("memory", 8))))
	podNodes := map[string]bool{}
	for i := 0; i < 6; i++ {
		a, err := f.MatchAllocate(id, pod, 0)
		if err != nil {
			log.Fatal(err)
		}
		podNodes[a.Nodes()[0].Name] = true
		id++
	}
	fmt.Printf("6 service pods packed onto %d shared node(s)\n", len(podNodes))

	// HPC tenant: a 4-node exclusive MPI job. It avoids the pod-hosting
	// nodes automatically: exclusivity requires untouched nodes.
	mpi := jobspec.New(3600, jobspec.SlotR(4,
		jobspec.R("node", 1, jobspec.R("core", 16))))
	a, err := f.MatchAllocate(id, mpi, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range a.Nodes() {
		if podNodes[n.Name] {
			log.Fatalf("MPI job landed on pod node %s", n.Name)
		}
	}
	fmt.Printf("4-node MPI job on exclusive nodes, disjoint from the pods\n")
	id++

	// Moldable analytics: wants up to 64 cores, runs with at least 8 —
	// it flexes into whatever the two tenants left over.
	analytics := jobspec.New(600, jobspec.SlotR(1, jobspec.Moldable("core", 8, 64)))
	a2, err := f.MatchAllocate(id, analytics, 0)
	if err != nil {
		log.Fatal(err)
	}
	var granted int64
	for _, va := range a2.Vertices {
		if va.V.Type == "core" {
			granted += va.Units
		}
	}
	fmt.Printf("moldable analytics granted %d of up to 64 cores (floor 8)\n", granted)

	// Capacity check: 8*16=128 cores total, pods 12, MPI 64 -> 52 left.
	if granted != 52 {
		log.Fatalf("expected 52 cores, got %d", granted)
	}
	fmt.Println("one store, three workload styles, zero interference")
}
