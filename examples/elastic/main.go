// Elastic: demonstrates dynamic resource-graph updates (paper §5.5).
// The system grows a new rack at runtime — aggregates, paths, planners,
// and every ancestor pruning filter update incrementally — schedules onto
// it, and shrinks it back once drained.
package main

import (
	"errors"
	"fmt"
	"log"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
)

func main() {
	f, err := fluxion.New(
		fluxion.WithRecipe(grug.Small(1, 2, 8, 32, 0)), // 1 rack, 2 nodes
		fluxion.WithPruneFilters("ALL:core,ALL:node"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial store:", f.Stat())

	threeNodes := jobspec.New(600, jobspec.SlotR(3, jobspec.R("node", 1, jobspec.R("core", 8))))
	if ok, _ := f.MatchSatisfy(threeNodes); ok {
		log.Fatal("3-node job should not fit a 2-node system")
	}
	fmt.Println("3-node job unsatisfiable on the 2-node system")

	// Grow: attach a second rack with two more nodes.
	rack := &grug.Recipe{Root: grug.N("rack", 1, grug.N("node", 2, grug.N("core", 8)))}
	v, err := f.Grow("/cluster0", rack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grew %s; store now: %s\n", v.Path(), f.Stat())

	alloc, err := f.MatchAllocate(1, threeNodes, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-node job allocated after growth:\n  %s\n", alloc.Describe())

	// Shrink is refused while the new rack hosts part of the job.
	if err := f.Shrink(v.Path()); !errors.Is(err, resgraph.ErrBusy) {
		log.Fatalf("expected busy error, got %v", err)
	}
	fmt.Println("shrink refused while the new rack is busy")

	// Drain and shrink.
	if err := f.Cancel(1); err != nil {
		log.Fatal(err)
	}
	if err := f.Shrink(v.Path()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rack drained and detached; store:", f.Stat())

	// Marking a node down removes it from matching without detaching.
	if err := f.SetStatus("/cluster0/rack0/node0", false); err != nil {
		log.Fatal(err)
	}
	oneNode := jobspec.New(600, jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", 8))))
	a, err := f.MatchAllocate(2, oneNode, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with node0 down, job landed on:\n  %s\n", a.Describe())
}
