// Rabbit: models the near-node flash ("rabbit") storage of the El Capitan
// supercomputer (paper §5.1). Each compute chassis holds a few compute
// nodes and one rabbit — a storage node whose SSDs can back either
// node-local file systems (for the chassis's own nodes) or a global Lustre
// file system. A rabbit can host at most one Lustre server because the
// server needs the rabbit's unique IP, which the model captures as an
// exclusive size-1 "ip" vertex.
//
// The example exercises the three scheduling cases the paper calls out:
// co-located node-local storage, global storage with the one-Lustre-per-
// rabbit constraint, and compute-free storage-only allocations that
// outlive jobs.
package main

import (
	"errors"
	"fmt"
	"log"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
)

func buildSystem() *fluxion.Fluxion {
	// 3 chassis, each with 4 compute nodes (16 cores) and one rabbit
	// holding 1 TB of SSD, 8 NVMe namespaces, and its single IP.
	recipe := &grug.Recipe{
		Name: "rabbit-system",
		Root: grug.N("cluster", 1,
			grug.N("chassis", 3,
				grug.N("node", 4, grug.N("core", 16)),
				grug.N("rabbit", 1,
					grug.NP("ssd", 1, 1024, "GB"),
					grug.NP("namespace", 1, 8, ""),
					grug.N("ip", 1)))),
	}
	f, err := fluxion.New(
		fluxion.WithRecipe(recipe),
		fluxion.WithPruneFilters("ALL:core,ALL:node,ALL:ssd"),
	)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func main() {
	f := buildSystem()
	fmt.Println("store:", f.Stat())
	id := int64(1)

	// Case 1 — node-local storage: the job's nodes and its SSD capacity
	// must come from the same chassis, so both sit under one chassis
	// request vertex. The compute nodes are held exclusively (slot);
	// the rabbit stays shared so other jobs can still use its spare
	// capacity. Each file system consumes an NVMe namespace.
	nodeLocal := jobspec.New(3600,
		jobspec.R("chassis", 1,
			jobspec.SlotR(1,
				jobspec.R("node", 2, jobspec.R("core", 16))),
			jobspec.R("rabbit", 1,
				jobspec.R("ssd", 200),
				jobspec.R("namespace", 2))))
	alloc, err := f.MatchAllocate(id, nodeLocal, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[node-local] job %d: 2 nodes + 200 GB on the same chassis:\n  %s\n", id, alloc.Describe())
	id++

	// Case 2 — global Lustre storage: any rabbit will do, but the
	// Lustre server needs the rabbit's unique IP, so at most one global
	// file system per rabbit.
	global := jobspec.New(0, // storage can outlive jobs: unlimited duration
		jobspec.R("rabbit", 1,
			jobspec.R("ssd", 500),
			jobspec.RX("ip", 1)))
	for i := 0; i < 3; i++ {
		a, err := f.MatchAllocate(id, global, 0)
		if err != nil {
			log.Fatalf("global fs %d: %v", i, err)
		}
		fmt.Printf("[global] Lustre fs %d on: %s\n", i+1, a.Describe())
		id++
	}
	// A fourth global file system fails: all three rabbit IPs are held.
	if _, err := f.MatchAllocate(id, global, 0); !errors.Is(err, fluxion.ErrNoMatch) {
		log.Fatalf("expected the one-Lustre-per-rabbit constraint to reject, got %v", err)
	}
	fmt.Println("[global] 4th Lustre fs correctly rejected: every rabbit's IP is in use")

	// Case 3 — storage-only allocation, no compute attached (paper:
	// "users can allocate rabbits independently of jobs"). Capacity
	// checks still apply per rabbit.
	storageOnly := jobspec.New(0, jobspec.R("rabbit", 1, jobspec.R("ssd", 300)))
	a, err := f.MatchAllocate(id, storageOnly, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[storage-only] persistent 300 GB allocation: %s\n", a.Describe())

	// SSD capacity is tracked per rabbit: rabbit0 now holds
	// 200 (node-local) + 500 (Lustre) + 300 (persistent) = 1000 of its
	// 1024 GB, so the next 100 GB request spills to another rabbit.
	a2, err := f.MatchAllocate(id+1, jobspec.New(0, jobspec.R("rabbit", 1, jobspec.R("ssd", 100))), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[storage-only] next 100 GB landed on: %s\n", a2.Describe())
}
