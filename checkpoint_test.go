package fluxion

import (
	"encoding/json"
	"errors"
	"testing"

	"fluxion/internal/jobspec"
)

func TestCheckpointRestore(t *testing.T) {
	f := newFluxion(t)
	// One live allocation, one reservation.
	if _, err := f.MatchAllocate(1, jobspec.NodeLocal(4, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	res, err := f.MatchAllocateOrReserve(2, jobspec.NodeLocal(2, 1, 4, 8, 0, 50), 0)
	if err != nil || !res.Reserved {
		t.Fatalf("reserve: %+v, %v", res, err)
	}
	data, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	f2, err := Restore(data, WithPruneFilters("ALL:core,ALL:node,ALL:memory"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Jobs()) != 2 {
		t.Fatalf("restored jobs = %v", f2.Jobs())
	}
	a1, ok := f2.Info(1)
	if !ok || a1.Reserved || a1.Duration != 100 {
		t.Fatalf("job 1 = %+v", a1)
	}
	a2, ok := f2.Info(2)
	if !ok || !a2.Reserved || a2.At != res.At {
		t.Fatalf("job 2 = %+v", a2)
	}
	// The restored instance schedules consistently: system is full at
	// t=0 so a new job reserves.
	a3, err := f2.MatchAllocateOrReserve(3, jobspec.NodeLocal(1, 1, 4, 0, 0, 10), 0)
	if err != nil || !a3.Reserved {
		t.Fatalf("post-restore reserve: %+v, %v", a3, err)
	}
	// Restored grants match the originals.
	orig, _ := f.Info(1)
	if len(a1.Grants()) != len(orig.Grants()) {
		t.Fatalf("grants: %d vs %d", len(a1.Grants()), len(orig.Grants()))
	}
	// Cancel on the restored instance frees capacity (filters intact).
	if err := f2.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.MatchAllocate(4, jobspec.NodeLocal(4, 1, 4, 0, 0, 10), 0); err != nil {
		t.Fatalf("after cancel on restored: %v", err)
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore([]byte("junk")); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("junk: %v", err)
	}
	if _, err := Restore([]byte(`{"version":9,"graph":{}}`)); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("bad version: %v", err)
	}
	if _, err := Restore([]byte(`{"version":1}`)); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("missing graph: %v", err)
	}
	// Conflicting grants (same capacity twice) fail the restore.
	f := newFluxion(t)
	if _, err := f.MatchAllocate(1, jobspec.NodeLocal(1, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	data, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	mustJSON(t, data, &doc)
	jobs := doc["jobs"].([]any)
	dup := jobs[0].(map[string]any)
	dup2 := map[string]any{}
	for k, v := range dup {
		dup2[k] = v
	}
	dup2["id"] = float64(99)
	doc["jobs"] = append(jobs, dup2)
	bad := mustMarshal(t, doc)
	// Job 99 re-claims job 1's exact cores: capacity conflict.
	if _, err := Restore(bad, WithPruneFilters("ALL:core")); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("conflicting grants: %v", err)
	}
}

func TestCheckpointEmpty(t *testing.T) {
	f := newFluxion(t)
	data, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Jobs()) != 0 || f2.Graph().Len() != f.Graph().Len() {
		t.Fatalf("empty restore: %v / %d", f2.Jobs(), f2.Graph().Len())
	}
}

func mustJSON(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRestoreCorruptedCheckpoints table-drives Restore over damaged
// documents: every case must fail with a wrapped ErrCheckpoint — never a
// panic, and never a silently partial install.
func TestRestoreCorruptedCheckpoints(t *testing.T) {
	f := newFluxion(t)
	if _, err := f.MatchAllocate(1, jobspec.NodeLocal(2, 1, 4, 0, 0, 100), 0); err != nil {
		t.Fatal(err)
	}
	good, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(doc map[string]any)) []byte {
		var doc map[string]any
		mustJSON(t, good, &doc)
		fn(doc)
		return mustMarshal(t, doc)
	}
	firstGrant := func(doc map[string]any) map[string]any {
		job := doc["jobs"].([]any)[0].(map[string]any)
		return job["grants"].([]any)[0].(map[string]any)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", good[:len(good)/2]},
		{"empty", nil},
		{"graph is array", mutate(func(d map[string]any) { d["graph"] = []any{} })},
		{"grant references absent vertex", mutate(func(d map[string]any) {
			firstGrant(d)["path"] = "/no/such/vertex"
		})},
		{"grant has negative units", mutate(func(d map[string]any) {
			firstGrant(d)["units"] = float64(-4)
		})},
		{"duplicate job id", mutate(func(d map[string]any) {
			jobs := d["jobs"].([]any)
			d["jobs"] = append(jobs, jobs[0])
		})},
		{"non-positive duration", mutate(func(d map[string]any) {
			d["jobs"].([]any)[0].(map[string]any)["duration"] = float64(0)
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Restore(tc.data, WithPruneFilters("ALL:core,ALL:node,ALL:memory"))
			if !errors.Is(err, ErrCheckpoint) {
				t.Fatalf("err = %v", err)
			}
			if got != nil {
				t.Fatal("Restore returned a partially installed instance alongside an error")
			}
		})
	}
	// The undamaged document still restores.
	if _, err := Restore(good, WithPruneFilters("ALL:core,ALL:node,ALL:memory")); err != nil {
		t.Fatalf("pristine restore: %v", err)
	}
}
