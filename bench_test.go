package fluxion_test

// Benchmarks mirroring the paper's evaluation (§6). Each testing.B target
// measures the code path behind one figure:
//
//   - BenchmarkLODMatch / BenchmarkLODFill  -> Fig. 6a (E1)
//   - BenchmarkPlanner*                      -> Fig. 6b (E2)
//   - BenchmarkVarAwareSchedule              -> Fig. 7b (E4)
//
// The benches run at reduced scale so `go test -bench=.` finishes in
// minutes; cmd/fluxion-bench reproduces the full paper-scale tables.

import (
	"errors"
	"fluxion"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fluxion/internal/experiments"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/planner"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// benchRacks scales the 18-node-per-rack LOD systems for benchmarking.
const benchRacks = 4 // 72 nodes

// lodTraverser builds one Fig. 6a configuration and pre-fills half the
// system so the measured match works against a realistic mixed state.
func lodTraverser(b *testing.B, recipe *grug.Recipe, prune bool) *traverser.Traverser {
	b.Helper()
	var spec resgraph.PruneSpec
	if prune {
		spec = resgraph.PruneSpec{resgraph.ALL: {"core"}}
	}
	g, err := grug.BuildGraph(recipe, 0, 1<<31, spec)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		b.Fatal(err)
	}
	js := experiments.LODJobspec()
	half := benchRacks * 18 * 4 / 2
	for id := int64(1); id <= int64(half); id++ {
		if _, err := tr.MatchAllocate(id, js, 0); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

// BenchmarkLODMatch measures one §6.1 match-allocate (plus its cancel) on
// a half-loaded system for each LOD × pruning configuration.
func BenchmarkLODMatch(b *testing.B) {
	labels := []string{"High", "Med", "Low", "Low2"}
	for i, recipe := range grug.LODPresetsScaled(benchRacks) {
		for _, prune := range []bool{false, true} {
			name := labels[i]
			if prune {
				name += "Prune"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				tr := lodTraverser(b, recipe, prune)
				js := experiments.LODJobspec()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					id := int64(1_000_000 + n)
					if _, err := tr.MatchAllocate(id, js, 0); err != nil {
						b.Fatal(err)
					}
					if err := tr.Cancel(id); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSlotMatch sweeps the slot count of a slot[N]{core[2]}
// request on a 1024-core system. Matching a count-N slot repeats its
// shape N times under the same parent, which is exactly what the match
// kernel's candidate-list cache and first-fit cursor accelerate: the
// subtree is collected once and each instance resumes past the
// candidates its predecessors exhausted.
func BenchmarkSlotMatch(b *testing.B) {
	for _, slots := range []int64{1, 16, 256} {
		b.Run(fmt.Sprintf("slots-%d", slots), func(b *testing.B) {
			b.ReportAllocs()
			g, err := grug.BuildGraph(grug.Small(4, 16, 16, 0, 0), 0, 1<<31,
				resgraph.PruneSpec{resgraph.ALL: {"core"}})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := traverser.New(g, match.First{})
			if err != nil {
				b.Fatal(err)
			}
			js := jobspec.New(0, jobspec.SlotR(slots, jobspec.R("core", 2)))
			cjs, err := tr.Compile(js)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				id := int64(1_000_000 + n)
				if _, err := tr.MatchAllocateCompiled(id, cjs, 0); err != nil {
					b.Fatal(err)
				}
				if err := tr.Cancel(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMatch measures aggregate match throughput of the
// parallel match pipeline: W workers each drive speculate -> commit ->
// cancel cycles against the half-loaded Fig. 6a High-Prune system. b.N is
// the total number of cycles across all workers, so ns/op is directly
// comparable between worker counts: on multi-core hardware higher W should
// lower it (the ≥1.8x-at-4-workers target), while on a single core it
// degenerates to the sequential cost plus coordination overhead.
func BenchmarkParallelMatch(b *testing.B) {
	recipes := grug.LODPresetsScaled(benchRacks)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			tr := lodTraverser(b, recipes[0], true)
			js := experiments.LODJobspec()
			var ids atomic.Int64
			ids.Store(1_000_000)
			var tickets atomic.Int64
			var failed atomic.Value
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for tickets.Add(1) <= int64(b.N) {
						id := ids.Add(1)
						for {
							alloc, err := tr.MatchSpeculate(id, js, 0)
							if err != nil {
								if errors.Is(err, traverser.ErrNoMatch) {
									// Transient over-claiming by concurrent
									// speculations; the capacity exists.
									continue
								}
								failed.CompareAndSwap(nil, err)
								return
							}
							if err := tr.Commit(alloc); err != nil {
								if errors.Is(err, traverser.ErrConflict) {
									continue
								}
								failed.CompareAndSwap(nil, err)
								return
							}
							break
						}
						if err := tr.Cancel(id); err != nil {
							failed.CompareAndSwap(nil, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err, ok := failed.Load().(error); ok && err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkLODFill runs the complete E1 protocol (fill the system until
// the first failed match) per iteration, at 2 racks.
func BenchmarkLODFill(b *testing.B) {
	for _, cfg := range experiments.LODConfigs(2) {
		b.Run(cfg.Name, func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				r, err := experiments.RunLODConfig(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if r.Matches == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// plannerSizes is the Fig. 6b pre-population sweep used for benches.
var plannerSizes = []int{1_000, 10_000, 100_000}

func prepopulated(b *testing.B, spans int) *planner.Planner {
	b.Helper()
	p, err := experiments.PrepopulatePlanner(spans, 42)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPlannerSatAt measures instantaneous satisfiability queries
// (Fig. 6b, SatAt series).
func BenchmarkPlannerSatAt(b *testing.B) {
	for _, spans := range plannerSizes {
		b.Run(fmt.Sprintf("spans-%d", spans), func(b *testing.B) {
			b.ReportAllocs()
			p := prepopulated(b, spans)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				r := int64(1) << (n % 8)
				p.CanFit(int64(n)%43200, 1, r)
			}
		})
	}
}

// BenchmarkPlannerSatDuring measures windowed satisfiability queries
// (Fig. 6b, SatDuring series).
func BenchmarkPlannerSatDuring(b *testing.B) {
	for _, spans := range plannerSizes {
		b.Run(fmt.Sprintf("spans-%d", spans), func(b *testing.B) {
			b.ReportAllocs()
			p := prepopulated(b, spans)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				r := int64(1) << (n % 8)
				d := int64(n%experiments.PlannerMaxDur) + 1
				p.CanFit(int64(n)%43200, d, r)
			}
		})
	}
}

// BenchmarkPlannerEarliestAt measures the earliest-fit search — paper
// Algorithm 1 on the ET tree (Fig. 6b, EarliestAt series).
func BenchmarkPlannerEarliestAt(b *testing.B) {
	for _, spans := range plannerSizes {
		b.Run(fmt.Sprintf("spans-%d", spans), func(b *testing.B) {
			b.ReportAllocs()
			p := prepopulated(b, spans)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				r := int64(1) << (n % 8)
				if _, err := p.AvailTimeFirst(0, 1, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerAddRemoveSpan measures the span update path (the cost
// SDFU pays per filter vertex).
func BenchmarkPlannerAddRemoveSpan(b *testing.B) {
	for _, spans := range plannerSizes {
		b.Run(fmt.Sprintf("spans-%d", spans), func(b *testing.B) {
			b.ReportAllocs()
			p := prepopulated(b, spans)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				at, err := p.AvailTimeFirst(0, 10, 1)
				if err != nil {
					b.Fatal(err)
				}
				id, err := p.AddSpan(at, 10, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.RemoveSpan(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVarAwareSchedule runs the §6.3 initial scheduling pass (one
// conservative-backfilling cycle over a queue snapshot) per policy, at
// reduced scale.
func BenchmarkVarAwareSchedule(b *testing.B) {
	cfg := experiments.VarAwareConfig{
		Racks: 8, NodesPerRack: 16, CoresPerNode: 16,
		Jobs: 60, MaxJobNodes: 32, Seed: 2023,
	}
	for _, policy := range experiments.VarAwarePolicies {
		b.Run(policy, func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				run, err := experiments.RunVarAwarePolicy(cfg, policy)
				if err != nil {
					b.Fatal(err)
				}
				if run.Immediate+run.Reserved != cfg.Jobs {
					b.Fatalf("lost jobs: %+v", run)
				}
			}
		})
	}
}

// BenchmarkReserve measures MatchAllocateOrReserve on a saturated system —
// the root-filter candidate-time search plus a full match (paper §3.4,
// Fig. 2).
func BenchmarkReserve(b *testing.B) {
	b.ReportAllocs()
	g, err := grug.BuildGraph(grug.Small(4, 16, 16, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		b.Fatal(err)
	}
	// Saturate all 64 nodes with staggered finite jobs.
	for id := int64(1); id <= 64; id++ {
		js := jobspec.New(1000+10*id, jobspec.RX("node", 1, jobspec.R("core", 16)))
		if _, err := tr.MatchAllocate(id, js, 0); err != nil {
			b.Fatal(err)
		}
	}
	js := jobspec.New(500, jobspec.RX("node", 4, jobspec.R("core", 16)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		id := int64(1_000_000 + n)
		alloc, err := tr.MatchAllocateOrReserve(id, js, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !alloc.Reserved {
			b.Fatal("expected a reservation")
		}
		if err := tr.Cancel(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDFU isolates the scheduler-driven filter update by comparing
// allocation cost with deep filter chains versus none (the ablation
// DESIGN.md calls out).
func BenchmarkSDFU(b *testing.B) {
	for _, filters := range []string{"none", "ALL:core"} {
		b.Run(filters, func(b *testing.B) {
			b.ReportAllocs()
			var spec resgraph.PruneSpec
			if filters != "none" {
				spec = resgraph.PruneSpec{resgraph.ALL: {"core"}}
			}
			g, err := grug.BuildGraph(grug.HighLODRacks(2), 0, 1<<31, spec)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := traverser.New(g, match.First{})
			if err != nil {
				b.Fatal(err)
			}
			js := experiments.LODJobspec()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				id := int64(n + 1)
				if _, err := tr.MatchAllocate(id, js, 0); err != nil {
					b.Fatal(err)
				}
				if err := tr.Cancel(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpawnInstance measures hierarchical child-instance creation
// from a 16-node grant (paper §5.6).
func BenchmarkSpawnInstance(b *testing.B) {
	b.ReportAllocs()
	parent, err := fluxion.New(
		fluxion.WithRecipe(grug.Small(4, 8, 16, 0, 0)),
		fluxion.WithPruneFilters("ALL:core,ALL:node"),
	)
	if err != nil {
		b.Fatal(err)
	}
	spec := jobspec.New(0, jobspec.RX("node", 16, jobspec.R("core", 16)))
	if _, err := parent.MatchAllocate(1, spec, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := parent.SpawnInstance(1, fluxion.WithPruneFilters("ALL:core")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRestore measures full state serialization round
// trips with 64 live allocations.
func BenchmarkCheckpointRestore(b *testing.B) {
	b.ReportAllocs()
	f, err := fluxion.New(
		fluxion.WithRecipe(grug.Small(4, 16, 8, 0, 0)),
		fluxion.WithPruneFilters("ALL:core,ALL:node"),
	)
	if err != nil {
		b.Fatal(err)
	}
	for id := int64(1); id <= 64; id++ {
		if _, err := f.MatchAllocate(id, jobspec.New(1000, jobspec.RX("node", 1, jobspec.R("core", 8))), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		data, err := f.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fluxion.Restore(data, fluxion.WithPruneFilters("ALL:core,ALL:node")); err != nil {
			b.Fatal(err)
		}
	}
}
