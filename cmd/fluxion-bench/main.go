// fluxion-bench regenerates every figure and table of the paper's
// evaluation (§6) as text tables:
//
//	fluxion-bench -experiment lod       # Fig. 6a  (LOD tradeoffs)
//	fluxion-bench -experiment planner   # Fig. 6b  (Planner scaling)
//	fluxion-bench -experiment classes   # Fig. 7a  (performance classes)
//	fluxion-bench -experiment varaware  # Fig. 7b, Table 1, Fig. 8
//	fluxion-bench -experiment parmatch  # parallel match pipeline sweep
//	fluxion-bench -experiment epochscale # lock-free epoch-snapshot match scaling
//	fluxion-bench -experiment increment # incremental vs full-requeue engines
//	fluxion-bench -experiment recovery  # WAL crash-recovery time vs log length
//	fluxion-bench -experiment chaos     # self-defense survival vs fault intensity
//	fluxion-bench -experiment memscale  # resting-graph memory vs system scale
//	fluxion-bench -experiment shardscale # sharded scheduling throughput vs quality
//	fluxion-bench -experiment all       # everything
//
// Paper-scale defaults (56 racks / 1008 nodes for LOD, 1M spans for the
// planner, 2418-node quartz with 200 jobs for the case study) run in a few
// minutes; use -racks/-spans/-jobs to scale down.
//
// -cpuprofile and -memprofile write pprof profiles covering whatever
// experiments ran, for drilling into a perf regression (see
// EXPERIMENTS.md, "Profiling a match regression").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fluxion/internal/experiments"
	"fluxion/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "lod | planner | classes | varaware | parmatch | epochscale | increment | recovery | chaos | memscale | shardscale | shardchaos | all")
		racks      = flag.Int64("racks", 56, "LOD system scale in racks (56 = the paper's 1008 nodes)")
		spans      = flag.String("spans", "1000,10000,100000,1000000", "planner pre-population sweep")
		queries    = flag.Int("queries", 4096, "planner queries per measurement")
		jobs       = flag.Int("jobs", 200, "trace length for the variation-aware study")
		nodes      = flag.Int64("quartz-nodes", 2418, "variation-aware system size (racks of 62)")
		seed       = flag.Int64("seed", 2023, "workload seed")
		workers    = flag.String("workers", "1,2,4,8", "parallel-match worker sweep")
		incJobs    = flag.Int("increment-jobs", 512, "queue depth for the incremental-scheduling study")
		recJobs    = flag.Int("recovery-jobs", 512, "queue depth for the WAL recovery study")
		recPoints  = flag.Int("recovery-points", 8, "log-length sample points for the WAL recovery study")
		chaosJobs  = flag.Int("chaos-jobs", 200, "trace length for the chaos self-defense study")
		parOps     = flag.Int("parmatch-ops", 2048, "speculate+commit+cancel cycles per worker count")
		memRacks   = flag.String("memscale-racks", "7,70,703", "rack sweep for the resting-memory study (70 racks ~ 100k vertices)")
		shardJobs  = flag.Int("shardscale-jobs", 600, "queue-snapshot depth for the sharded-scheduling study")
		shardSweep = flag.String("shardscale-shards", "1,2,4,8", "shard-count sweep for the sharded-scheduling study")
		killJobs   = flag.Int("shardchaos-jobs", 400, "queue-snapshot depth for the shard-failover study")
		killSweep  = flag.String("shardchaos-kill", "0,0.125,0.25,0.375,0.5", "shard-kill intensity sweep (must start with the 0 control)")
		killSeed   = flag.Int64("shardchaos-seed", 1, "shard-kill schedule seed")
		epochOps   = flag.Int("epochscale-ops", 8192, "epoch speculate+abandon cycles per worker count")
		csvDir     = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the selected experiments")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
			fmt.Printf("(wrote CPU profile to %s)\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			fail(err)
			runtime.GC() // settle live heap so the profile shows retained, not transient, memory
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
			fmt.Printf("(wrote heap profile to %s)\n", *memProfile)
		}()
	}

	writeCSV := func(name string, fn func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		fail(err)
		fail(fn(f))
		fail(f.Close())
		fmt.Printf("(wrote %s)\n", filepath.Join(*csvDir, name))
	}

	run := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false

	if run("lod") {
		ran = true
		start := time.Now()
		results, err := experiments.RunLOD(*racks)
		fail(err)
		experiments.PrintLOD(os.Stdout, results, *racks)
		writeCSV("lod.csv", func(w *os.File) error { return experiments.WriteLODCSV(w, results) })
		fmt.Printf("(lod experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("planner") {
		ran = true
		counts, err := parseInts(*spans)
		fail(err)
		start := time.Now()
		results, err := experiments.RunPlannerPerf(counts, *queries, *seed)
		fail(err)
		experiments.PrintPlannerPerf(os.Stdout, results)
		writeCSV("planner.csv", func(w *os.File) error { return experiments.WritePlannerCSV(w, results) })
		fmt.Printf("(planner experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("classes") && *experiment != "all" {
		// Standalone histogram; under "all" it prints with varaware.
		ran = true
		model := workload.GenerateVariation(int(*nodes), *seed)
		experiments.PrintClassHistogram(os.Stdout, model.ClassHistogram())
		fmt.Println()
	}
	if run("varaware") {
		ran = true
		cfg := experiments.DefaultVarAware()
		cfg.Jobs = *jobs
		cfg.Seed = *seed
		cfg.Racks = (*nodes + cfg.NodesPerRack - 1) / cfg.NodesPerRack
		start := time.Now()
		hist, runs, err := experiments.RunVarAware(cfg)
		fail(err)
		experiments.PrintClassHistogram(os.Stdout, hist)
		fmt.Println()
		experiments.PrintVarAware(os.Stdout, runs)
		writeCSV("classes.csv", func(w *os.File) error { return experiments.WriteClassCSV(w, hist) })
		writeCSV("varaware.csv", func(w *os.File) error { return experiments.WriteVarAwareCSV(w, runs) })
		writeCSV("varaware_perjob.csv", func(w *os.File) error { return experiments.WritePerJobCSV(w, runs) })
		fmt.Printf("(varaware experiment wall time: %v)\n", time.Since(start).Round(time.Second))
	}
	if run("parmatch") {
		ran = true
		sweep, err := parseInts(*workers)
		fail(err)
		start := time.Now()
		results, err := experiments.RunParMatch(*racks, sweep, *parOps)
		fail(err)
		experiments.PrintParMatch(os.Stdout, results, *racks)
		writeCSV("parmatch.csv", func(w *os.File) error { return experiments.WriteParMatchCSV(w, results) })
		fmt.Printf("(parmatch experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("epochscale") {
		ran = true
		sweep, err := parseInts(*workers)
		fail(err)
		start := time.Now()
		results, err := experiments.RunEpochScale(*racks, sweep, *epochOps)
		fail(err)
		experiments.PrintEpochScale(os.Stdout, results, *racks)
		writeCSV("epochscale.csv", func(w *os.File) error { return experiments.WriteEpochScaleCSV(w, results) })
		fmt.Printf("(epochscale experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("increment") {
		ran = true
		cfg := experiments.DefaultIncrement()
		cfg.Jobs = *incJobs
		start := time.Now()
		results, err := experiments.RunIncrement(cfg)
		fail(err)
		experiments.PrintIncrement(os.Stdout, results, cfg)
		writeCSV("increment.csv", func(w *os.File) error { return experiments.WriteIncrementCSV(w, results) })
		fmt.Printf("(increment experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("recovery") {
		ran = true
		cfg := experiments.DefaultRecovery()
		cfg.Jobs = *recJobs
		cfg.Points = *recPoints
		start := time.Now()
		results, err := experiments.RunRecovery(cfg)
		fail(err)
		experiments.PrintRecovery(os.Stdout, results, cfg)
		writeCSV("recovery.csv", func(w *os.File) error { return experiments.WriteRecoveryCSV(w, results) })
		fmt.Printf("(recovery experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("chaos") {
		ran = true
		cfg := experiments.DefaultChaos()
		cfg.Jobs = *chaosJobs
		start := time.Now()
		results, err := experiments.RunChaos(cfg)
		fail(err)
		experiments.PrintChaos(os.Stdout, results, cfg)
		writeCSV("chaos.csv", func(w *os.File) error { return experiments.WriteChaosCSV(w, results) })
		fmt.Printf("(chaos experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("memscale") {
		ran = true
		sweep, err := parseInts(*memRacks)
		fail(err)
		rackSweep := make([]int64, len(sweep))
		for i, n := range sweep {
			rackSweep[i] = int64(n)
		}
		start := time.Now()
		results, err := experiments.RunMemScale(rackSweep)
		fail(err)
		experiments.PrintMemScale(os.Stdout, results)
		writeCSV("memscale.csv", func(w *os.File) error { return experiments.WriteMemScaleCSV(w, results) })
		fmt.Printf("(memscale experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("shardchaos") {
		ran = true
		sweep, err := parseFloats(*killSweep)
		fail(err)
		cfg := experiments.DefaultShardChaos()
		cfg.Jobs = *killJobs
		cfg.Seed = *seed
		cfg.ChaosSeed = *killSeed
		cfg.Intensities = sweep
		start := time.Now()
		results, err := experiments.RunShardChaos(cfg)
		fail(err)
		experiments.PrintShardChaos(os.Stdout, results, cfg)
		writeCSV("shardchaos.csv", func(w *os.File) error { return experiments.WriteShardChaosCSV(w, results) })
		fmt.Printf("(shardchaos experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if run("shardscale") {
		ran = true
		sweep, err := parseInts(*shardSweep)
		fail(err)
		cfg := experiments.DefaultShardScale()
		cfg.Jobs = *shardJobs
		cfg.Seed = *seed
		cfg.Shards = sweep
		start := time.Now()
		results, err := experiments.RunShardScale(cfg)
		fail(err)
		experiments.PrintShardScale(os.Stdout, results, cfg)
		writeCSV("shardscale.csv", func(w *os.File) error { return experiments.WriteShardScaleCSV(w, results) })
		fmt.Printf("(shardscale experiment wall time: %v)\n\n", time.Since(start).Round(time.Second))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want lod, planner, classes, varaware, parmatch, epochscale, increment, recovery, chaos, memscale, shardscale, shardchaos, or all)\n", *experiment)
		os.Exit(2)
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad intensity %q: %w", part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad span count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxion-bench:", err)
		os.Exit(1)
	}
}
