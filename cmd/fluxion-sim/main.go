// fluxion-sim replays a job trace through the Fluxion scheduler on a
// GRUG-generated system and reports the timeline and run metrics:
//
//	fluxion-sim -preset quartz -synth 200 -queue conservative -timeline
//	fluxion-sim -grug cluster.yaml -trace jobs.jsonl -match variation
//
// Traces are JSONL (see internal/trace); -synth generates a synthetic
// queue snapshot instead. Use -write-trace to save the synthetic trace
// for reuse.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fluxion/internal/chaos"
	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/shard"
	"fluxion/internal/simcli"
	"fluxion/internal/trace"
)

func main() {
	var (
		grugFile   = flag.String("grug", "", "GRUG recipe file")
		preset     = flag.String("preset", "", "built-in recipe: high | med | low | low2 | quartz | small | small4")
		traceFile  = flag.String("trace", "", "JSONL trace file")
		synth      = flag.Int("synth", 0, "generate a synthetic queue snapshot of N jobs instead of -trace")
		maxNodes   = flag.Int64("synth-max-nodes", 256, "largest synthetic job")
		cores      = flag.Int64("synth-cores", 36, "cores per node in synthetic jobs")
		seed       = flag.Int64("seed", 2023, "synthetic trace seed")
		writeTrace = flag.String("write-trace", "", "save the (synthetic) trace to this file")
		matchPol   = flag.String("match", "first", "match policy: first | high | low | locality | variation")
		queuePol   = flag.String("queue", "conservative", "queue policy: fcfs | easy | conservative")
		queueDepth = flag.Int("queue-depth", 0, "plan at most N pending jobs per cycle (0 = all)")
		matchWork  = flag.Int("match-workers", 1, "parallel match workers per cycle (1 = sequential)")
		prune      = flag.String("prune", "ALL:core,ALL:node", "pruning filter spec")
		timeline   = flag.Bool("timeline", false, "print the per-job timeline")
		mtbf       = flag.Int64("mtbf", 0, "mean seconds between node failures (0 = no fault injection)")
		mttr       = flag.Int64("mttr", 0, "mean seconds to repair a failed node")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injection seed; same seed, same failures")
		maxRetries = flag.Int("max-retries", 0, "failure requeues per job before it fails (0 = default)")
		drill      = flag.Bool("drill", false, "run the crash-recovery drill: checkpoint mid-run, restore, verify convergence")
		increment  = flag.Bool("incremental", true, "event-driven incremental scheduling (false = full requeue every cycle)")
		shards     = flag.Int("shards", 1, "partition the graph into N subtree shards, each with its own scheduler loop (1 = flat)")
		shardCut   = flag.String("shard-cut", "rack", "containment type sharding cuts the graph at")
		walDir     = flag.String("wal-dir", "", "durable state directory: journal every mutation to a write-ahead log and recover prior state on start")
		walSync    = flag.Duration("wal-sync-interval", 0, "WAL group-commit fsync cadence (0 = 10ms default; negative = fsync every command)")
		snapEvery  = flag.Int("snapshot-every", 0, "commands between WAL snapshots (0 = default 4096)")

		chaosSeed      = flag.Int64("chaos-seed", 1, "chaos schedule seed; same seed, same faults")
		chaosPanics    = flag.Float64("chaos-panics", 0, "fraction of jobs whose match attempts panic")
		chaosSlow      = flag.Float64("chaos-slow", 0, "fraction of jobs whose match attempts stall")
		chaosSlowDelay = flag.Duration("chaos-slow-delay", time.Millisecond, "stall per slow match attempt")
		chaosMalformed = flag.Float64("chaos-malformed", 0, "fraction of jobs submitted with malformed specs")
		chaosDry       = flag.Bool("chaos-dry", false, "defense-free parity baseline: filter the chaos plan's poisoned jobs out of the trace and inject nothing")

		chaosShardKill  = flag.Float64("chaos-shard-kill", 0, "fraction of shards whose cycles panic (requires -shards > 1)")
		chaosShardStall = flag.Float64("chaos-shard-stall", 0, "fraction of shards whose cycles stall")
		chaosShardDelay = flag.Duration("chaos-shard-stall-delay", time.Millisecond, "stall per afflicted shard cycle")
		chaosShardFrom  = flag.Int64("chaos-shard-from", 0, "sim time the shard-fault window opens")
		chaosShardUntil = flag.Int64("chaos-shard-until", 0, "sim time the shard-fault window closes (0 = never)")
		shardGrace      = flag.Int64("shard-grace", 0, "seconds a failed shard's running jobs get before eviction (0 = default, negative = evict immediately)")
		defense         = flag.Bool("defense", true, "scheduler self-defense layer (panic fences, quarantine, watchdog, backpressure)")
		matchDeadline   = flag.Duration("match-deadline", 0, "quarantine a job when a failed match attempt exceeds this (0 = off)")
		cycleDeadline   = flag.Duration("cycle-deadline", 0, "cycle watchdog deadline driving the degradation ladder (0 = off)")
		conflictLimit   = flag.Int("conflict-limit", 0, "quarantine a job after N consecutive commit conflicts (0 = off)")
		admitHigh       = flag.Int("admit-high", 0, "refuse submits above this pending-queue depth (0 = off)")
		admitLow        = flag.Int("admit-low", 0, "re-admit below this depth (0 = admit-high/2)")
	)
	flag.Parse()

	var recipe *grug.Recipe
	switch {
	case *grugFile != "":
		data, err := os.ReadFile(*grugFile)
		fail(err)
		r, err := grug.ParseYAML(data)
		fail(err)
		recipe = r
	case *preset != "":
		switch *preset {
		case "high":
			recipe = grug.HighLOD()
		case "med":
			recipe = grug.MedLOD()
		case "low":
			recipe = grug.LowLOD()
		case "low2":
			recipe = grug.Low2LOD()
		case "quartz":
			recipe = grug.QuartzPaper()
		case "small":
			recipe = grug.Small(2, 4, 8, 32, 100)
		case "small4":
			// Four racks so sharded runs can cut 4 ways (-shards 4).
			recipe = grug.Small(4, 4, 8, 32, 100)
		default:
			fail(fmt.Errorf("unknown preset %q", *preset))
		}
	default:
		fmt.Fprintln(os.Stderr, "fluxion-sim: -grug or -preset is required")
		os.Exit(2)
	}

	var jobs []trace.Job
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		fail(err)
		jobs, err = trace.Read(f)
		_ = f.Close()
		fail(err)
	case *synth > 0:
		jobs = trace.Synthesize(*synth, *maxNodes, *cores, *seed)
	default:
		fmt.Fprintln(os.Stderr, "fluxion-sim: -trace or -synth is required")
		os.Exit(2)
	}
	if *writeTrace != "" {
		f, err := os.Create(*writeTrace)
		fail(err)
		fail(trace.Write(f, jobs))
		fail(f.Close())
		fmt.Printf("wrote %d jobs to %s\n", len(jobs), *writeTrace)
	}

	spec, err := resgraph.ParsePruneSpec(*prune)
	fail(err)
	var plan *chaos.Plan
	if *chaosPanics > 0 || *chaosSlow > 0 || *chaosMalformed > 0 ||
		*chaosShardKill > 0 || *chaosShardStall > 0 {
		plan = &chaos.Plan{
			Seed:            *chaosSeed,
			PanicFrac:       *chaosPanics,
			SlowFrac:        *chaosSlow,
			SlowDelay:       *chaosSlowDelay,
			MalformedFrac:   *chaosMalformed,
			ShardKillFrac:   *chaosShardKill,
			ShardStallFrac:  *chaosShardStall,
			ShardStallDelay: *chaosShardDelay,
			ShardFaultFrom:  *chaosShardFrom,
			ShardFaultUntil: *chaosShardUntil,
		}
	}
	var scfg *shard.SupervisorConfig
	if *shardGrace != 0 {
		scfg = &shard.SupervisorConfig{GraceSeconds: *shardGrace}
	}
	var dcfg *sched.DefenseConfig
	if *defense && !*chaosDry {
		dcfg = &sched.DefenseConfig{
			MatchDeadline: *matchDeadline,
			ConflictLimit: *conflictLimit,
			CycleDeadline: *cycleDeadline,
			AdmitHigh:     *admitHigh,
			AdmitLow:      *admitLow,
		}
	}
	res, err := simcli.Run(simcli.Config{
		Recipe:       recipe,
		PruneSpec:    spec,
		MatchPolicy:  *matchPol,
		QueuePolicy:  sched.QueuePolicy(*queuePol),
		QueueDepth:   *queueDepth,
		MatchWorkers: *matchWork,
		Timeline:     *timeline,
		MTBF:         *mtbf,
		MTTR:         *mttr,
		FaultSeed:    *faultSeed,
		MaxRetries:   *maxRetries,
		Drill:        *drill,
		FullRequeue:  !*increment,
		Shards:       *shards,
		ShardCut:     *shardCut,

		WALDir:          *walDir,
		WALSyncInterval: *walSync,
		SnapshotEvery:   *snapEvery,

		Chaos:           plan,
		ChaosDry:        *chaosDry,
		Defense:         dcfg,
		ShardSupervisor: scfg,
	}, jobs, os.Stdout)
	fail(err)
	if res.DrillRan && !res.DrillOK {
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fluxion-sim:", err)
		os.Exit(1)
	}
}
