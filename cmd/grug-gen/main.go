// grug-gen writes the built-in GRUG recipes to disk so they can be edited
// and fed back to resource-query:
//
//	grug-gen -out ./recipes
//
// emits high.yaml, med.yaml, low.yaml, low2.yaml (the paper's §6.1 levels
// of detail), quartz.yaml (§6.3), and disaggregated.yaml (§5.4).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fluxion/internal/grug"
)

func main() {
	out := flag.String("out", ".", "output directory")
	racks := flag.Int64("racks", 56, "LOD recipe scale in racks")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	recipes := map[string]*grug.Recipe{
		"high.yaml":          grug.HighLODRacks(*racks),
		"med.yaml":           grug.MedLODRacks(*racks),
		"low.yaml":           grug.LowLODRacks(*racks),
		"low2.yaml":          grug.Low2LODRacks(*racks),
		"quartz.yaml":        grug.QuartzPaper(),
		"disaggregated.yaml": grug.Disaggregated(4, 2, 2, 1),
	}
	for name, r := range recipes {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, r.YAML(), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d vertices when built)\n", path, r.TotalVertices())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "grug-gen:", err)
	os.Exit(1)
}
