package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_BASELINE.json shape: benchmark name
// (with the -GOMAXPROCS suffix stripped, so runs from machines with
// different core counts compare) to the median ns/op of the -count
// repeats, plus each benchmark's observed relative sample spread
// ((max-min)/median). The spread records how noisy a benchmark was
// when the baseline was taken; the gate widens that benchmark's
// tolerance by it, so stable benchmarks are held to the tight
// threshold while inherently jittery ones don't flake.
type Baseline struct {
	NsPerOp map[string]float64 `json:"ns_per_op"`
	Spread  map[string]float64 `json:"spread,omitempty"`
	// AllocsPerOp is the median allocations per op recorded with the
	// baseline. Unlike ns/op it is deterministic per machine, so the
	// gate compares it directly, without calibration or spread.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	// MemBytes is the median of each custom memory metric benchmarks
	// report via testing.B.ReportMetric (units containing "bytes/" —
	// bytes/vertex, bytes/job, rss-bytes/vertex, ...), keyed
	// "<benchmark> <unit>". Heap-accounted metrics are gated raw like
	// allocs/op; metrics with an "rss-" unit prefix are recorded and
	// reported but never fail the gate, since OS paging is not
	// deterministic.
	MemBytes map[string]float64 `json:"mem_bytes,omitempty"`
}

// Samples holds the per-benchmark measurements of one `go test -bench`
// run: ns/op always, allocs/op when the run reported allocations
// (b.ReportAllocs or -benchmem).
type Samples struct {
	Ns     map[string][]float64
	Allocs map[string][]float64
	// Mem collects custom memory metrics, keyed "<benchmark> <unit>".
	Mem map[string][]float64
}

// ParseBench extracts ns/op and allocs/op samples per benchmark from
// `go test -bench` text output. Sub-benchmarks keep their full slash
// path; the trailing -GOMAXPROCS suffix is stripped. Repeated runs
// (-count>1) append.
func ParseBench(r io.Reader) (*Samples, error) {
	samples := &Samples{
		Ns:     make(map[string][]float64),
		Allocs: make(map[string][]float64),
		Mem:    make(map[string][]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines look like:
		//   BenchmarkLODMatch/High_pruned-8  100  123456 ns/op  500 B/op  3 allocs/op
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var nsPerOp, allocsPerOp float64
		foundNs, foundAllocs := false, false
		mem := map[string]float64{}
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; {
			case unit == "ns/op":
				nsPerOp, foundNs = v, true
			case unit == "allocs/op":
				allocsPerOp, foundAllocs = v, true
			case strings.Contains(unit, "bytes/"):
				// Custom memory metrics from b.ReportMetric:
				// bytes/vertex, rss-bytes/vertex, bytes/job, ...
				mem[unit] = v
			}
		}
		if !foundNs {
			continue
		}
		name := stripProcSuffix(fields[0])
		samples.Ns[name] = append(samples.Ns[name], nsPerOp)
		if foundAllocs {
			samples.Allocs[name] = append(samples.Allocs[name], allocsPerOp)
		}
		for unit, v := range mem {
			key := name + " " + unit
			samples.Mem[key] = append(samples.Mem[key], v)
		}
	}
	return samples, sc.Err()
}

// Medians reduces each benchmark's samples to the median: unlike the
// minimum it is robust to lucky-fast outliers (a single quiet-machine
// sample would otherwise set an unrepeatable baseline), and unlike the
// mean it ignores slow tails.
func Medians(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, s := range samples {
		out[name] = median(s)
	}
	return out
}

// Spreads computes each benchmark's relative sample spread,
// (max-min)/median — 0 for a single sample.
func Spreads(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, s := range samples {
		m := median(s)
		if len(s) < 2 || m <= 0 {
			out[name] = 0
			continue
		}
		lo, hi := s[0], s[0]
		for _, v := range s[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		out[name] = (hi - lo) / m
	}
	return out
}

// stripProcSuffix removes the trailing -N GOMAXPROCS marker go test
// appends to benchmark names ("BenchmarkX/sub-8" -> "BenchmarkX/sub").
// On GOMAXPROCS=1 machines go test omits the marker entirely, so a
// numeric tail might instead be part of the sub-benchmark name (e.g.
// "spans-1000"); only values that look like CPU counts are stripped.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 || n > 256 {
		return name
	}
	return name[:i]
}

func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.NsPerOp) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return &b, nil
}

func WriteBaseline(path string, samples *Samples) error {
	b := Baseline{
		NsPerOp:     Medians(samples.Ns),
		Spread:      roundMap(Spreads(samples.Ns)),
		AllocsPerOp: Medians(samples.Allocs),
		MemBytes:    Medians(samples.Mem),
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// roundMap trims spreads to three decimals so the committed JSON stays
// readable and diffs stay small.
func roundMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = float64(int(v*1000+0.5)) / 1000
	}
	return out
}

// Row is one benchmark's comparison outcome.
type Row struct {
	Name       string
	BaseNs     float64
	CurrentNs  float64
	Ratio      float64 // current/base
	Calibrated float64 // ratio normalized by the machine-speed median
	Limit      float64 // calibrated ratio above which this row fails
	Gated      bool
	Regressed  bool

	// Allocation gate: deterministic per machine, compared raw. HasAllocs
	// is set when both the baseline and the current run report allocs/op
	// for this benchmark; without either side the row is alloc-ungated.
	HasAllocs      bool
	BaseAllocs     float64
	CurrentAllocs  float64
	AllocRegressed bool
}

// MemRow is one memory metric's comparison outcome. Memory metrics are
// byte counts per logical unit (vertex, job) reported via ReportMetric;
// heap-accounted ones are gated raw like allocs/op, rss-* ones are
// informational only.
type MemRow struct {
	Key       string // "<benchmark> <unit>"
	Base      float64
	Current   float64
	Ratio     float64
	Gated     bool
	Regressed bool
}

// Report is the full comparison: per-benchmark rows plus the median
// machine-speed factor used for calibration.
type Report struct {
	Rows      []Row
	MemRows   []MemRow
	Median    float64
	Threshold float64
	Missing   []string // gated baseline entries absent from the current run
}

// Compare calibrates current against baseline and flags gated
// regressions. Every benchmark present in both sets feeds the median;
// only benchmarks matching a gate prefix can fail the build. A gated
// row fails its time gate when its calibrated ns/op ratio exceeds
// 1 + threshold + the benchmark's recorded baseline spread, and its
// allocation gate when allocs/op grew by more than threshold AND by
// more than two allocations (the absolute floor keeps tiny counts,
// where one allocation is a huge ratio, from flaking). Benchmarks with
// no allocs/op on either side — pre-migration baselines or runs without
// -benchmem/ReportAllocs — are alloc-ungated.
func Compare(base *Baseline, currentSamples *Samples, gates []string, threshold float64) (*Report, error) {
	current := Medians(currentSamples.Ns)
	currentAllocs := Medians(currentSamples.Allocs)
	var ratios []float64
	var rows []Row
	for name, cur := range current {
		b, ok := base.NsPerOp[name]
		if !ok || b <= 0 {
			continue
		}
		r := cur / b
		ratios = append(ratios, r)
		row := Row{
			Name: name, BaseNs: b, CurrentNs: cur, Ratio: r,
			Limit: 1 + threshold + base.Spread[name],
			Gated: gated(name, gates),
		}
		if ba, ok := base.AllocsPerOp[name]; ok {
			if ca, ok := currentAllocs[name]; ok {
				row.HasAllocs = true
				row.BaseAllocs = ba
				row.CurrentAllocs = ca
				row.AllocRegressed = row.Gated &&
					ca > ba*(1+threshold) && ca-ba > 2
			}
		}
		rows = append(rows, row)
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("no overlap between baseline and current results")
	}
	med := median(ratios)
	if med <= 0 {
		return nil, fmt.Errorf("degenerate median ratio %v", med)
	}
	for i := range rows {
		rows[i].Calibrated = rows[i].Ratio / med
		rows[i].Regressed = rows[i].Gated && rows[i].Calibrated > rows[i].Limit
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })

	// Memory metrics: byte counts per logical unit from ReportMetric,
	// keyed "<benchmark> <unit>". Heap-accounted metrics are deterministic
	// per build, so they gate raw like allocs/op, with a 64-byte absolute
	// floor so rounding jitter on small structs can't flake. Metrics whose
	// unit starts with "rss-" depend on OS paging and are reported but
	// never fail.
	currentMem := Medians(currentSamples.Mem)
	var memRows []MemRow
	for key, cur := range currentMem {
		b, ok := base.MemBytes[key]
		if !ok || b <= 0 {
			continue
		}
		row := MemRow{
			Key: key, Base: b, Current: cur, Ratio: cur / b,
			Gated: gated(key, gates) && !rssMetric(key),
		}
		row.Regressed = row.Gated && cur > b*(1+threshold) && cur-b > 64
		memRows = append(memRows, row)
	}
	sort.Slice(memRows, func(i, j int) bool { return memRows[i].Key < memRows[j].Key })

	var missing []string
	for name := range base.NsPerOp {
		if _, ok := current[name]; !ok && gated(name, gates) {
			missing = append(missing, name)
		}
	}
	for key := range base.MemBytes {
		if _, ok := currentMem[key]; !ok && gated(key, gates) && !rssMetric(key) {
			missing = append(missing, key)
		}
	}
	sort.Strings(missing)
	return &Report{Rows: rows, MemRows: memRows, Median: med, Threshold: threshold, Missing: missing}, nil
}

// rssMetric reports whether a mem key's unit part carries the "rss-"
// prefix ("BenchmarkGraphMemory/v100k rss-bytes/vertex").
func rssMetric(key string) bool {
	i := strings.LastIndex(key, " ")
	return i >= 0 && strings.HasPrefix(key[i+1:], "rss-")
}

func gated(name string, gates []string) bool {
	for _, g := range gates {
		if strings.HasPrefix(name, g) {
			return true
		}
	}
	return false
}

// ScaleGate is a raw within-run ratio gate: the median ns/op of Slow
// divided by the median ns/op of Fast must be at least Min. Unlike the
// calibrated baseline comparison it needs no history — both measurements
// come from the same run on the same machine, so machine speed cancels
// out. It gates scaling claims (e.g. the 8-shard scheduler must be >= 3x
// the 1-shard one) rather than point regressions.
type ScaleGate struct {
	Slow string  // benchmark expected to be slower per op
	Fast string  // benchmark expected to be faster per op
	Min  float64 // minimum tolerated Slow/Fast ns-per-op ratio
}

// ParseScaleGates parses comma-separated "slow:fast:min" specs
// ("BenchmarkShardedThroughput/s1:BenchmarkShardedThroughput/s8:3.0").
// Colons cannot appear in benchmark names, so the split is unambiguous.
func ParseScaleGates(s string) ([]ScaleGate, error) {
	var out []ScaleGate
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("scale gate %q: want slow:fast:min", part)
		}
		min, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("scale gate %q: bad minimum %q", part, fields[2])
		}
		out = append(out, ScaleGate{Slow: fields[0], Fast: fields[1], Min: min})
	}
	return out, nil
}

// ScaleRow is one scale gate's outcome.
type ScaleRow struct {
	Gate    ScaleGate
	SlowNs  float64
	FastNs  float64
	Speedup float64
	Failed  bool
}

// CheckScaleGates evaluates raw ratio gates against one run's samples.
// A gate whose benchmarks are missing from the run fails — a silently
// skipped scaling gate would read as a pass.
func CheckScaleGates(samples *Samples, gates []ScaleGate) []ScaleRow {
	medians := Medians(samples.Ns)
	out := make([]ScaleRow, 0, len(gates))
	for _, g := range gates {
		row := ScaleRow{Gate: g, SlowNs: medians[g.Slow], FastNs: medians[g.Fast]}
		if row.SlowNs <= 0 || row.FastNs <= 0 {
			row.Failed = true
		} else {
			row.Speedup = row.SlowNs / row.FastNs
			row.Failed = row.Speedup < g.Min
		}
		out = append(out, row)
	}
	return out
}

// PrintScaleRows renders scale-gate outcomes; returns true when any
// gate failed.
func PrintScaleRows(w io.Writer, rows []ScaleRow) bool {
	failed := false
	for _, r := range rows {
		if r.SlowNs <= 0 || r.FastNs <= 0 {
			fmt.Fprintf(w, "scale gate %s / %s: MISSING benchmark rows\n", r.Gate.Slow, r.Gate.Fast)
			failed = true
			continue
		}
		verdict := "ok"
		if r.Failed {
			verdict = "FAILED"
			failed = true
		}
		fmt.Fprintf(w, "scale gate %s / %s: %.2fx (gate: >= %.2fx) %s\n",
			r.Gate.Slow, r.Gate.Fast, r.Speedup, r.Gate.Min, verdict)
	}
	return failed
}

func (r *Report) Failed() bool {
	if len(r.Missing) > 0 {
		return true
	}
	for _, row := range r.Rows {
		if row.Regressed || row.AllocRegressed {
			return true
		}
	}
	for _, row := range r.MemRows {
		if row.Regressed {
			return true
		}
	}
	return false
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchdiff: machine-speed median ratio %.3f, gate threshold +%.0f%% (+ per-benchmark baseline spread; allocs/op gated raw)\n",
		r.Median, r.Threshold*100)
	fmt.Fprintf(&sb, "%-44s %14s %14s %9s %9s %7s %12s %12s  %s\n",
		"benchmark", "base ns/op", "curr ns/op", "ratio", "calib", "limit", "base allocs", "curr allocs", "verdict")
	for _, row := range r.Rows {
		verdict := "-"
		switch {
		case row.Regressed && row.AllocRegressed:
			verdict = "REGRESSED (time, allocs)"
		case row.Regressed:
			verdict = "REGRESSED (time)"
		case row.AllocRegressed:
			verdict = "REGRESSED (allocs)"
		case row.Gated:
			verdict = "ok"
		}
		baseAllocs, currAllocs := "-", "-"
		if row.HasAllocs {
			baseAllocs = strconv.FormatFloat(row.BaseAllocs, 'f', 0, 64)
			currAllocs = strconv.FormatFloat(row.CurrentAllocs, 'f', 0, 64)
		}
		fmt.Fprintf(&sb, "%-44s %14.0f %14.0f %9.3f %9.3f %7.3f %12s %12s  %s\n",
			row.Name, row.BaseNs, row.CurrentNs, row.Ratio, row.Calibrated, row.Limit,
			baseAllocs, currAllocs, verdict)
	}
	if len(r.MemRows) > 0 {
		fmt.Fprintf(&sb, "%-44s %14s %14s %9s  %s\n",
			"memory metric", "base bytes", "curr bytes", "ratio", "verdict")
		for _, row := range r.MemRows {
			verdict := "-"
			switch {
			case row.Regressed:
				verdict = "REGRESSED (mem)"
			case row.Gated:
				verdict = "ok"
			}
			fmt.Fprintf(&sb, "%-44s %14.1f %14.1f %9.3f  %s\n",
				row.Key, row.Base, row.Current, row.Ratio, verdict)
		}
	}
	for _, name := range r.Missing {
		fmt.Fprintf(&sb, "%-44s MISSING from current run (gated)\n", name)
	}
	return sb.String()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
