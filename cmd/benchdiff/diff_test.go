package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: fluxion
BenchmarkLODMatch/High-8         	     100	  12000000 ns/op	  500 B/op	 3 allocs/op
BenchmarkLODMatch/High-8         	     100	  11000000 ns/op	  500 B/op	 3 allocs/op
BenchmarkPlannerSatAt/1000-8     	 1000000	      1100 ns/op
BenchmarkSDFU-8                  	    5000	    300000 ns/op
BenchmarkGraphMemory/v100k-8     	       1	 900000000 ns/op	       548.6 bytes/vertex	       620.3 rss-bytes/vertex
PASS
ok  	fluxion	4.2s
`

func TestParseBench(t *testing.T) {
	samples, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	got := Medians(samples.Ns)
	want := map[string]float64{
		"BenchmarkLODMatch/High":     11500000, // median of the two runs
		"BenchmarkPlannerSatAt/1000": 1100,
		"BenchmarkSDFU":              300000,
		"BenchmarkGraphMemory/v100k": 900000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
	spreads := Spreads(samples.Ns)
	if s := spreads["BenchmarkLODMatch/High"]; s <= 0.08 || s >= 0.1 {
		t.Errorf("spread = %v, want ~1e6/11.5e6", s) // (12M-11M)/11.5M
	}
	if s := spreads["BenchmarkSDFU"]; s != 0 {
		t.Errorf("single-sample spread = %v, want 0", s)
	}
	// allocs/op is captured where reported and absent where not.
	allocs := Medians(samples.Allocs)
	if allocs["BenchmarkLODMatch/High"] != 3 {
		t.Errorf("allocs = %v, want 3", allocs["BenchmarkLODMatch/High"])
	}
	if _, ok := allocs["BenchmarkPlannerSatAt/1000"]; ok {
		t.Error("allocs recorded for a benchmark that did not report them")
	}
	// Custom memory metrics are keyed "<benchmark> <unit>".
	mem := Medians(samples.Mem)
	if mem["BenchmarkGraphMemory/v100k bytes/vertex"] != 548.6 {
		t.Errorf("bytes/vertex = %v, want 548.6", mem["BenchmarkGraphMemory/v100k bytes/vertex"])
	}
	if mem["BenchmarkGraphMemory/v100k rss-bytes/vertex"] != 620.3 {
		t.Errorf("rss-bytes/vertex = %v, want 620.3", mem["BenchmarkGraphMemory/v100k rss-bytes/vertex"])
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":          "BenchmarkX",
		"BenchmarkX/sub-16":     "BenchmarkX/sub",
		"BenchmarkX/n-1-4":      "BenchmarkX/n-1",
		"BenchmarkNoSuffix":     "BenchmarkNoSuffix",
		"BenchmarkX/tail-words": "BenchmarkX/tail-words",
		// Numeric tails beyond any plausible CPU count are part of the
		// sub-benchmark name, not a GOMAXPROCS marker.
		"BenchmarkY/spans-1000": "BenchmarkY/spans-1000",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func one(m map[string]float64) *Samples {
	out := make(map[string][]float64, len(m))
	for k, v := range m {
		out[k] = []float64{v}
	}
	return &Samples{Ns: out, Allocs: make(map[string][]float64), Mem: make(map[string][]float64)}
}

// withMem attaches single-sample custom memory metrics to s.
func withMem(s *Samples, m map[string]float64) *Samples {
	for k, v := range m {
		s.Mem[k] = []float64{v}
	}
	return s
}

// withAllocs attaches single-sample allocs/op measurements to s.
func withAllocs(s *Samples, m map[string]float64) *Samples {
	for k, v := range m {
		s.Allocs[k] = []float64{v}
	}
	return s
}

// A uniformly 2x-slower machine must not trip the gate: calibration
// divides out the shared factor.
func TestCompareCalibratesMachineSpeed(t *testing.T) {
	base := &Baseline{NsPerOp: map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkPlannerSatAt":  2000,
		"BenchmarkSDFU":          3000,
	}}
	current := one(map[string]float64{
		"BenchmarkLODMatch/High": 2000,
		"BenchmarkPlannerSatAt":  4000,
		"BenchmarkSDFU":          6000,
	})
	rep, err := Compare(base, current, []string{"BenchmarkLODMatch", "BenchmarkPlanner"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("uniform slowdown flagged as regression:\n%s", rep)
	}
	if rep.Median != 2.0 {
		t.Fatalf("median = %v, want 2.0", rep.Median)
	}
}

// One gated benchmark regressing beyond the threshold while the rest
// hold steady must fail, and an ungated one must not.
func TestCompareFlagsRealRegression(t *testing.T) {
	base := &Baseline{NsPerOp: map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkPlannerSatAt":  2000,
		"BenchmarkSDFU":          3000,
	}}
	current := one(map[string]float64{
		"BenchmarkLODMatch/High": 1500, // +50%, gated -> fail
		"BenchmarkPlannerSatAt":  2000,
		"BenchmarkSDFU":          3000,
	})
	rep, err := Compare(base, current, []string{"BenchmarkLODMatch", "BenchmarkPlanner"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("regression not flagged:\n%s", rep)
	}
	for _, row := range rep.Rows {
		wantRegressed := row.Name == "BenchmarkLODMatch/High"
		if row.Regressed != wantRegressed {
			t.Errorf("%s regressed=%v, want %v", row.Name, row.Regressed, wantRegressed)
		}
	}

	// The same slowdown on the ungated BenchmarkSDFU must pass.
	current = one(map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkPlannerSatAt":  2000,
		"BenchmarkSDFU":          4500,
	})
	rep, err = Compare(base, current, []string{"BenchmarkLODMatch", "BenchmarkPlanner"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("ungated slowdown failed the gate:\n%s", rep)
	}
}

// A benchmark whose baseline recorded a wide sample spread gets that
// much extra tolerance; one with a tight spread does not.
func TestCompareSpreadWidensLimit(t *testing.T) {
	base := &Baseline{
		NsPerOp: map[string]float64{
			"BenchmarkLODMatch/Jittery": 1000,
			"BenchmarkLODMatch/Stable":  1000,
			"BenchmarkSDFU":             3000,
		},
		Spread: map[string]float64{
			"BenchmarkLODMatch/Jittery": 0.40,
			"BenchmarkLODMatch/Stable":  0.02,
		},
	}
	current := one(map[string]float64{
		"BenchmarkLODMatch/Jittery": 1500, // +50% < 1+0.20+0.40 -> ok
		"BenchmarkLODMatch/Stable":  1000,
		"BenchmarkSDFU":             3000,
	})
	rep, err := Compare(base, current, []string{"BenchmarkLODMatch"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("slowdown within recorded spread failed the gate:\n%s", rep)
	}
	current = one(map[string]float64{
		"BenchmarkLODMatch/Jittery": 1000,
		"BenchmarkLODMatch/Stable":  1500, // +50% > 1+0.20+0.02 -> fail
		"BenchmarkSDFU":             3000,
	})
	rep, err = Compare(base, current, []string{"BenchmarkLODMatch"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("slowdown beyond spread passed the gate:\n%s", rep)
	}
}

// A gated benchmark silently disappearing from the run (renamed or
// deleted) must fail rather than pass vacuously.
func TestCompareMissingGatedBenchmark(t *testing.T) {
	base := &Baseline{NsPerOp: map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkSDFU":          3000,
	}}
	current := one(map[string]float64{
		"BenchmarkSDFU": 3000,
	})
	rep, err := Compare(base, current, []string{"BenchmarkLODMatch"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("missing gated benchmark did not fail the gate")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkLODMatch/High" {
		t.Fatalf("Missing = %v", rep.Missing)
	}
}

// Allocation growth on a gated benchmark fails raw — machine speed
// can't mask it — while staying within threshold passes.
func TestCompareAllocGate(t *testing.T) {
	base := &Baseline{
		NsPerOp: map[string]float64{
			"BenchmarkLODMatch/High": 1000,
			"BenchmarkSDFU":          3000,
		},
		AllocsPerOp: map[string]float64{
			"BenchmarkLODMatch/High": 100,
			"BenchmarkSDFU":          100,
		},
	}
	// +50% allocations on the gated benchmark: fail even though ns/op
	// held steady.
	current := withAllocs(one(map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkSDFU":          3000,
	}), map[string]float64{
		"BenchmarkLODMatch/High": 150,
		"BenchmarkSDFU":          150, // ungated: must not fail
	})
	rep, err := Compare(base, current, []string{"BenchmarkLODMatch"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("alloc regression not flagged:\n%s", rep)
	}
	for _, row := range rep.Rows {
		want := row.Name == "BenchmarkLODMatch/High"
		if row.AllocRegressed != want {
			t.Errorf("%s AllocRegressed=%v, want %v", row.Name, row.AllocRegressed, want)
		}
	}

	// Within threshold: pass.
	current = withAllocs(one(map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkSDFU":          3000,
	}), map[string]float64{
		"BenchmarkLODMatch/High": 110,
		"BenchmarkSDFU":          100,
	})
	rep, err = Compare(base, current, []string{"BenchmarkLODMatch"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("alloc growth within threshold failed the gate:\n%s", rep)
	}
}

// Tiny allocation counts need the absolute floor: 1 -> 3 allocations is
// +200% but only two allocations, which must not flake the gate.
func TestCompareAllocGateAbsoluteFloor(t *testing.T) {
	base := &Baseline{
		NsPerOp:     map[string]float64{"BenchmarkLODMatch/High": 1000, "BenchmarkSDFU": 3000},
		AllocsPerOp: map[string]float64{"BenchmarkLODMatch/High": 1},
	}
	current := withAllocs(one(map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkSDFU":          3000,
	}), map[string]float64{
		"BenchmarkLODMatch/High": 3,
	})
	rep, err := Compare(base, current, []string{"BenchmarkLODMatch"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("two extra allocations tripped the gate:\n%s", rep)
	}
}

// Heap memory metrics gate raw like allocs; rss-prefixed ones are
// informational and never fail, however far they drift.
func TestCompareMemGate(t *testing.T) {
	base := &Baseline{
		NsPerOp: map[string]float64{
			"BenchmarkGraphMemory/v100k": 1000,
			"BenchmarkSDFU":              3000,
		},
		MemBytes: map[string]float64{
			"BenchmarkGraphMemory/v100k bytes/vertex":     1000,
			"BenchmarkGraphMemory/v100k rss-bytes/vertex": 1200,
		},
	}
	// +50% heap bytes/vertex on a gated benchmark: fail even though ns/op
	// held steady.
	current := withMem(one(map[string]float64{
		"BenchmarkGraphMemory/v100k": 1000,
		"BenchmarkSDFU":              3000,
	}), map[string]float64{
		"BenchmarkGraphMemory/v100k bytes/vertex":     1500,
		"BenchmarkGraphMemory/v100k rss-bytes/vertex": 9000, // rss: never gated
	})
	rep, err := Compare(base, current, []string{"BenchmarkGraphMemory"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("memory regression not flagged:\n%s", rep)
	}
	for _, row := range rep.MemRows {
		want := row.Key == "BenchmarkGraphMemory/v100k bytes/vertex"
		if row.Regressed != want {
			t.Errorf("%s Regressed=%v, want %v", row.Key, row.Regressed, want)
		}
	}

	// Within threshold: pass.
	current = withMem(one(map[string]float64{
		"BenchmarkGraphMemory/v100k": 1000,
		"BenchmarkSDFU":              3000,
	}), map[string]float64{
		"BenchmarkGraphMemory/v100k bytes/vertex":     1100,
		"BenchmarkGraphMemory/v100k rss-bytes/vertex": 1300,
	})
	rep, err = Compare(base, current, []string{"BenchmarkGraphMemory"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("memory growth within threshold failed the gate:\n%s", rep)
	}
}

// Small heap metrics need the 64-byte absolute floor, mirroring the
// two-allocation floor on the alloc gate.
func TestCompareMemGateAbsoluteFloor(t *testing.T) {
	base := &Baseline{
		NsPerOp:  map[string]float64{"BenchmarkGraphMemory/v100k": 1000, "BenchmarkSDFU": 3000},
		MemBytes: map[string]float64{"BenchmarkGraphMemory/v100k bytes/vertex": 40},
	}
	current := withMem(one(map[string]float64{
		"BenchmarkGraphMemory/v100k": 1000,
		"BenchmarkSDFU":              3000,
	}), map[string]float64{
		"BenchmarkGraphMemory/v100k bytes/vertex": 100, // +150% but only 60 bytes
	})
	rep, err := Compare(base, current, []string{"BenchmarkGraphMemory"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("sixty extra bytes tripped the gate:\n%s", rep)
	}
}

// A gated heap metric vanishing from the current run must fail like a
// missing benchmark; a vanished rss metric must not.
func TestCompareMemMissing(t *testing.T) {
	base := &Baseline{
		NsPerOp: map[string]float64{
			"BenchmarkGraphMemory/v100k": 1000,
			"BenchmarkSDFU":              3000,
		},
		MemBytes: map[string]float64{
			"BenchmarkGraphMemory/v100k bytes/vertex":     1000,
			"BenchmarkGraphMemory/v100k rss-bytes/vertex": 1200,
		},
	}
	current := one(map[string]float64{
		"BenchmarkGraphMemory/v100k": 1000,
		"BenchmarkSDFU":              3000,
	})
	rep, err := Compare(base, current, []string{"BenchmarkGraphMemory"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("missing gated memory metric did not fail the gate")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkGraphMemory/v100k bytes/vertex" {
		t.Fatalf("Missing = %v", rep.Missing)
	}
}

// A baseline written before allocation tracking (no allocs_per_op) must
// leave the allocation gate off rather than fail every benchmark.
func TestCompareAllocGateMigration(t *testing.T) {
	base := &Baseline{NsPerOp: map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkSDFU":          3000,
	}}
	current := withAllocs(one(map[string]float64{
		"BenchmarkLODMatch/High": 1000,
		"BenchmarkSDFU":          3000,
	}), map[string]float64{
		"BenchmarkLODMatch/High": 5000,
	})
	rep, err := Compare(base, current, []string{"BenchmarkLODMatch"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("pre-migration baseline tripped the alloc gate:\n%s", rep)
	}
	for _, row := range rep.Rows {
		if row.HasAllocs {
			t.Errorf("%s HasAllocs=true without baseline allocs", row.Name)
		}
	}
}

// Scale gates are raw within-run ratios: slow/fast ns-per-op must clear
// the floor, and a gate whose rows are missing fails rather than
// silently passing.
func TestScaleGates(t *testing.T) {
	gates, err := ParseScaleGates(
		"BenchmarkShardedThroughput/s1:BenchmarkShardedThroughput/s8:3.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 1 || gates[0].Min != 3.0 {
		t.Fatalf("gates = %+v", gates)
	}
	for _, bad := range []string{"a:b", "a:b:zero", "a:b:-1"} {
		if _, err := ParseScaleGates(bad); err == nil {
			t.Errorf("ParseScaleGates(%q) accepted", bad)
		}
	}

	mk := func(s1, s8 float64) *Samples {
		return &Samples{Ns: map[string][]float64{
			"BenchmarkShardedThroughput/s1": {s1},
			"BenchmarkShardedThroughput/s8": {s8},
		}}
	}
	if rows := CheckScaleGates(mk(40e6, 10e6), gates); rows[0].Failed || rows[0].Speedup != 4.0 {
		t.Fatalf("4x run failed the 3x gate: %+v", rows[0])
	}
	if rows := CheckScaleGates(mk(20e6, 10e6), gates); !rows[0].Failed {
		t.Fatalf("2x run passed the 3x gate: %+v", rows[0])
	}
	empty := &Samples{Ns: map[string][]float64{}}
	rows := CheckScaleGates(empty, gates)
	if !rows[0].Failed {
		t.Fatal("missing rows passed the gate")
	}
	var sb strings.Builder
	if !PrintScaleRows(&sb, rows) {
		t.Fatal("PrintScaleRows did not report failure")
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Fatalf("output = %q", sb.String())
	}
}
