// benchdiff gates performance regressions in CI.
//
// It parses `go test -bench` output, compares the gated benchmark
// families against a committed baseline (BENCH_BASELINE.json), and
// exits non-zero when any gated benchmark regressed by more than the
// threshold.
//
// CI runners and developer laptops differ in raw speed, so a naive
// ns/op comparison would flag every run on a slower machine. benchdiff
// calibrates instead: it computes the median current/baseline ratio
// across every benchmark present in both sets and treats that as the
// machine-speed factor. A gated benchmark only fails when its own
// ratio exceeds the median by more than the threshold — i.e. when it
// slowed down relative to the rest of the suite, which is what a code
// regression looks like. Each benchmark's tolerance is additionally
// widened by the sample spread recorded when its baseline was taken,
// so inherently jittery benchmarks don't flake while stable ones stay
// tightly gated.
//
// Allocations per op are gated too, but raw: allocs/op is deterministic
// on a given build regardless of machine speed, so a gated benchmark
// fails when its allocs/op exceeds the baseline by the threshold AND by
// more than two allocations. Baselines recorded before allocation
// tracking (no allocs_per_op field) leave the allocation gate off.
//
// Custom memory metrics (ReportMetric units containing "bytes/", e.g.
// bytes/vertex or bytes/job) are gated the same raw way: heap growth per
// logical unit is deterministic per build, so a gated benchmark fails
// when a memory metric exceeds its baseline by the threshold AND by more
// than 64 bytes. Metrics whose unit starts with "rss-" track OS resident
// set size, which paging makes nondeterministic; they are recorded in
// the baseline and printed, but never fail the gate.
//
// Scale gates (-scale) are a separate raw mode: within one run, the
// median ns/op ratio between a slow and a fast benchmark must clear a
// floor ("BenchmarkShardedThroughput/s1:BenchmarkShardedThroughput/s8:3.0"
// requires the 8-shard scheduler to be at least 3x the 1-shard one).
// Both sides come from the same run on the same machine, so no baseline
// or calibration applies; CI uses this for scaling claims that a
// point-regression gate can't express.
//
// Usage:
//
//	go test -run XXX -bench 'LODMatch|Planner' . > bench.txt
//	benchdiff -baseline BENCH_BASELINE.json -input bench.txt          # gate
//	benchdiff -baseline BENCH_BASELINE.json -input bench.txt -write   # refresh
//	benchdiff -input shard.txt -scale 'Benchmark.../s1:Benchmark.../s8:3.0'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
		inputPath    = flag.String("input", "-", "go test -bench output to compare ('-' for stdin)")
		gates        = flag.String("gate", "BenchmarkLODMatch,BenchmarkPlanner,BenchmarkSlotMatch,BenchmarkSchedCycle,BenchmarkGraphMemory,BenchmarkSchedMemory,BenchmarkShardedThroughput", "comma-separated benchmark name prefixes that are gated")
		threshold    = flag.Float64("threshold", 0.20, "maximum tolerated calibrated slowdown (0.20 = +20%)")
		write        = flag.Bool("write", false, "write the parsed results as the new baseline instead of comparing")
		scale        = flag.String("scale", "", "raw within-run ratio gates, comma-separated slow:fast:min specs (e.g. BenchmarkShardedThroughput/s1:BenchmarkShardedThroughput/s8:3.0)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		fail(err)
		defer f.Close()
		in = f
	}
	current, err := ParseBench(in)
	fail(err)
	if len(current.Ns) == 0 {
		fail(fmt.Errorf("no benchmark results found in %s", *inputPath))
	}

	if *write {
		fail(WriteBaseline(*baselinePath, current))
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(current.Ns), *baselinePath)
		return
	}

	if *scale != "" {
		// Scale-gate mode: raw within-run ratios, no baseline needed —
		// both sides of each ratio come from the same run, so machine
		// speed cancels out.
		sgates, err := ParseScaleGates(*scale)
		fail(err)
		if PrintScaleRows(os.Stdout, CheckScaleGates(current, sgates)) {
			os.Exit(1)
		}
		return
	}

	baseline, err := ReadBaseline(*baselinePath)
	fail(err)
	report, err := Compare(baseline, current, splitGates(*gates), *threshold)
	fail(err)
	fmt.Print(report.String())
	if report.Failed() {
		os.Exit(1)
	}
}

func splitGates(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}
