// resource-query is the interactive utility the paper evaluates with
// (§6.1): it populates a resource graph store from a GRUG recipe (file or
// preset), then answers match commands read from stdin.
//
//	resource-query -preset med -prune ALL:core -policy first
//	resource-query -grug cluster.yaml
//
// Type "help" at the prompt for the command list (match allocate /
// allocate_orelse_reserve / satisfy, cancel, release, info, rv1, find,
// set-status, time, stat, dump, quit).
package main

import (
	"flag"
	"fmt"
	"os"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/rqcli"
)

func main() {
	var (
		grugFile = flag.String("grug", "", "GRUG recipe file")
		preset   = flag.String("preset", "", "built-in recipe: high | med | low | low2 | quartz | small")
		policy   = flag.String("policy", "first", "match policy: first | high | low | locality | variation")
		prune    = flag.String("prune", "ALL:core,ALL:node", "pruning filter spec (empty disables)")
	)
	flag.Parse()

	opts := []fluxion.Option{
		fluxion.WithPolicy(*policy),
		fluxion.WithPruneFilters(*prune),
	}
	switch {
	case *grugFile != "":
		data, err := os.ReadFile(*grugFile)
		fail(err)
		opts = append(opts, fluxion.WithRecipeYAML(data))
	case *preset != "":
		r, err := presetRecipe(*preset)
		fail(err)
		opts = append(opts, fluxion.WithRecipe(r))
	default:
		fmt.Fprintln(os.Stderr, "resource-query: -grug or -preset is required")
		os.Exit(2)
	}
	f, err := fluxion.New(opts...)
	fail(err)
	fmt.Printf("resource-query: %s\n", f.Stat())

	s := rqcli.NewSession(f)
	s.Prompt = "resource-query> "
	fail(s.Run(os.Stdin, os.Stdout))
	fmt.Println()
}

func presetRecipe(name string) (*grug.Recipe, error) {
	switch name {
	case "high":
		return grug.HighLOD(), nil
	case "med":
		return grug.MedLOD(), nil
	case "low":
		return grug.LowLOD(), nil
	case "low2":
		return grug.Low2LOD(), nil
	case "quartz":
		return grug.QuartzPaper(), nil
	case "small":
		return grug.Small(2, 4, 8, 32, 100), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "resource-query:", err)
		os.Exit(1)
	}
}
