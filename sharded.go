package fluxion

import (
	"fluxion/internal/sched"
	"fluxion/internal/shard"
)

// Sharded is the partitioned scheduler: N independent shard scheduler
// loops over subtree partitions of the cluster graph, behind a thin
// residue-routing root with work stealing (see internal/shard). It
// mirrors the sched.Scheduler driver surface, so simulation drivers can
// swap it in for a flat scheduler.
type Sharded = shard.Sharded

// QueuePolicy selects how each shard plans its pending queue.
type QueuePolicy = sched.QueuePolicy

// Queue policies, re-exported so external callers can name them in
// NewSharded without reaching into internal packages.
const (
	FCFS         = sched.FCFS
	EASY         = sched.EASY
	Conservative = sched.Conservative
)

// ShardRouterStats counts the sharded router's placement work.
type ShardRouterStats = shard.RouterStats

// DefenseConfig configures the scheduler self-defense layer: match panic
// fences, poison-job quarantine, the cycle watchdog's degradation
// ladder, and admission backpressure (see internal/sched).
type DefenseConfig = sched.DefenseConfig

// Shard supervision surface, re-exported for operators driving a
// Sharded through the public API (see internal/shard): the per-shard
// health state machine, its transition log, and the failover counters.
type (
	// ShardSupervisorConfig configures shard supervision: cycle fences
	// and deadlines, suspicion/failure thresholds, probe backoff, and
	// the grace window for a failed shard's running jobs.
	ShardSupervisorConfig = shard.SupervisorConfig
	// ShardHealth is a shard's supervision state (healthy, suspect,
	// failed, recovering).
	ShardHealth = shard.Health
	// ShardHealthEvent is one health transition in the supervisor log.
	ShardHealthEvent = shard.HealthEvent
	// ShardSupervisorStats counts supervision work: fence trips,
	// deadline misses, failures, recoveries, drained/evicted/lost jobs.
	ShardSupervisorStats = shard.SupervisorStats
)

// Shard health states, re-exported from internal/shard.
const (
	ShardHealthy    = shard.Healthy
	ShardSuspect    = shard.Suspect
	ShardFailed     = shard.Failed
	ShardRecovering = shard.Recovering
)

// WithShardCut sets the containment type sharded scheduling cuts the
// graph at (default "rack"). Only NewSharded consults it.
func WithShardCut(cutType string) Option {
	return func(c *config) error { c.shardCut = cutType; return nil }
}

// WithDefense enables the scheduler self-defense layer. Only NewSharded
// consults it (flat schedulers built through internal/sched take
// sched.WithDefense directly); it applies to every shard's scheduler
// loop.
func WithDefense(cfg DefenseConfig) Option {
	return func(c *config) error { c.defense = &cfg; return nil }
}

// WithShardSupervisor enables shard supervision and failover: every
// shard cycle runs behind a panic fence and cycle deadline, consecutive
// faults quarantine the shard (jobs drain to survivors, running work is
// awaited or evicted), and recovery probes or Reabsorb rebuild it from
// its partition. The zero ShardSupervisorConfig selects the defaults.
// Only NewSharded consults it.
func WithShardSupervisor(cfg ShardSupervisorConfig) Option {
	return func(c *config) error { c.shardSup = &cfg; return nil }
}

// NewSharded builds a sharded scheduler from the same store options New
// takes: the configured source graph is partitioned into `shards`
// subtree shards cut at the WithShardCut type (racks by default), each
// running its own scheduler loop under the configured match policy, with
// jobs placed by per-shard aggregate residues and rebalanced by work
// stealing. The queue policy applies per shard. WithDefense and
// WithShardSupervisor layer per-job and per-shard fault containment on
// top.
//
// With shards == 1 the result is decision-identical to a flat
// scheduler over the same graph; larger counts trade a quantified
// decision-quality cost for near-linear submit-to-decision throughput
// scaling (see DESIGN.md §13; §14 covers supervision and failover).
func NewSharded(shards int, queue sched.QueuePolicy, opts ...Option) (*Sharded, error) {
	c, g, err := storeFromOptions(opts...)
	if err != nil {
		return nil, err
	}
	var sopts []sched.SchedOption
	if c.matchWorkers > 1 {
		sopts = append(sopts, sched.WithMatchWorkers(c.matchWorkers))
	}
	return shard.New(shard.Config{
		Graph:       g,
		Shards:      shards,
		CutType:     c.shardCut,
		MatchPolicy: c.policy,
		Queue:       queue,
		SchedOpts:   sopts,
		Defense:     c.defense,
		Supervisor:  c.shardSup,
	})
}
