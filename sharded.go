package fluxion

import (
	"fluxion/internal/sched"
	"fluxion/internal/shard"
)

// Sharded is the partitioned scheduler: N independent shard scheduler
// loops over subtree partitions of the cluster graph, behind a thin
// residue-routing root with work stealing (see internal/shard). It
// mirrors the sched.Scheduler driver surface, so simulation drivers can
// swap it in for a flat scheduler.
type Sharded = shard.Sharded

// QueuePolicy selects how each shard plans its pending queue.
type QueuePolicy = sched.QueuePolicy

// Queue policies, re-exported so external callers can name them in
// NewSharded without reaching into internal packages.
const (
	FCFS         = sched.FCFS
	EASY         = sched.EASY
	Conservative = sched.Conservative
)

// ShardRouterStats counts the sharded router's placement work.
type ShardRouterStats = shard.RouterStats

// WithShardCut sets the containment type sharded scheduling cuts the
// graph at (default "rack"). Only NewSharded consults it.
func WithShardCut(cutType string) Option {
	return func(c *config) error { c.shardCut = cutType; return nil }
}

// NewSharded builds a sharded scheduler from the same store options New
// takes: the configured source graph is partitioned into `shards`
// subtree shards cut at the WithShardCut type (racks by default), each
// running its own scheduler loop under the configured match policy, with
// jobs placed by per-shard aggregate residues and rebalanced by work
// stealing. The queue policy applies per shard.
//
// With shards == 1 the result is decision-identical to a flat
// scheduler over the same graph; larger counts trade a quantified
// decision-quality cost for near-linear submit-to-decision throughput
// scaling (see DESIGN.md §13).
func NewSharded(shards int, queue sched.QueuePolicy, opts ...Option) (*Sharded, error) {
	c, g, err := storeFromOptions(opts...)
	if err != nil {
		return nil, err
	}
	var sopts []sched.SchedOption
	if c.matchWorkers > 1 {
		sopts = append(sopts, sched.WithMatchWorkers(c.matchWorkers))
	}
	return shard.New(shard.Config{
		Graph:       g,
		Shards:      shards,
		CutType:     c.shardCut,
		MatchPolicy: c.policy,
		Queue:       queue,
		SchedOpts:   sopts,
	})
}
