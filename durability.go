package fluxion

// Root-level surface of the durability subsystem. The implementation
// lives in internal/wal (segmented CRC-framed log, snapshots, recovery
// scan) and internal/durable (the snapshot-plus-log store coupling the
// WAL to this package's checkpoints and the scheduler's effect journal);
// drivers reach it through fluxion-sim's -wal-dir / -wal-sync-interval /
// -snapshot-every flags. These aliases let API users match storage
// errors and read recovery telemetry without importing internals.

import "fluxion/internal/wal"

// ErrWAL is wrapped by every write-ahead-log storage and recovery error
// (including injected faults in tests).
var ErrWAL = wal.ErrWAL

// WALRecoveryStats reports what a WAL recovery scan did: segments
// scanned, records replayed, bytes truncated from torn or corrupt
// tails, and the age and LSN of the snapshot recovery started from.
type WALRecoveryStats = wal.RecoveryStats
