// Package fluxion is a from-scratch Go implementation of Fluxion, the
// scalable graph-based resource model for HPC scheduling introduced in
// "Fluxion: A Scalable Graph-Based Resource Model for HPC Scheduling
// Challenges" (Patki et al., SC-W/WORKS 2023).
//
// Fluxion represents a system as a directed graph of resource pools —
// clusters, racks, nodes, cores, GPUs, memory, burst buffers, network
// bandwidth, power — connected by typed edges grouped into named
// subsystems. Job requests arrive as abstract resource request graphs
// (canonical jobspecs); a depth-first traverser matches them against the
// store under a pluggable match policy, pruning its search with per-vertex
// aggregate planners and keeping those aggregates current with
// scheduler-driven filter updates.
//
// # Quick start
//
//	f, err := fluxion.New(
//		fluxion.WithRecipeYAML(recipe),           // or WithRecipe / WithJGF / WithGraph
//		fluxion.WithPolicy("first"),
//		fluxion.WithPruneFilters("ALL:core,ALL:node"),
//	)
//	...
//	alloc, err := f.MatchAllocate(1, jobspecYAML)
//	fmt.Println(alloc.Describe())
//	...
//	err = f.Cancel(1)
//
// The subpackages are importable directly for finer control:
// internal/planner (resource-over-time calendars), internal/resgraph (the
// store), internal/traverser (matching), internal/sched (queuing and
// backfilling), internal/grug (graph generation recipes), internal/jgf
// (serialization), and internal/workload (the paper's evaluation
// workloads).
package fluxion

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fluxion/internal/graphml"
	"fluxion/internal/grug"
	"fluxion/internal/jgf"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/query"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/shard"
	"fluxion/internal/traverser"
)

// Re-exported types: the public API surfaces these directly.
type (
	// Allocation is a selected resource set (immediate or reserved).
	Allocation = traverser.Allocation
	// Grant is one path/units pair inside an allocation.
	Grant = traverser.Grant
	// Jobspec is a parsed canonical job specification.
	Jobspec = jobspec.Jobspec
	// CompiledJobspec is a jobspec precompiled against an instance's
	// graph for repeated zero-allocation matching.
	CompiledJobspec = jobspec.Compiled
	// Graph is the resource graph store.
	Graph = resgraph.Graph
	// Vertex is one resource pool in the store.
	Vertex = resgraph.Vertex
	// Recipe is a GRUG generation recipe.
	Recipe = grug.Recipe
	// PruneSpec configures pruning-filter placement.
	PruneSpec = resgraph.PruneSpec
	// BlockSignature records why a match attempt failed: the pruning
	// subtree intervals, interned resource types, unit shortfalls, and the
	// root aggregates' earliest-fit hint. An event-driven scheduler
	// re-attempts a blocked job only when a capacity delta intersects its
	// signature (see internal/sched).
	BlockSignature = traverser.BlockSig
	// BlockReason is one recorded rejection inside a BlockSignature.
	BlockReason = traverser.BlockReason
	// ResourceDelta is one published capacity change: a free, a claim, or
	// a structural event, tagged with the touched subtree interval.
	ResourceDelta = resgraph.Delta
)

// Errors re-exported from the matching layer.
var (
	ErrNoMatch    = traverser.ErrNoMatch
	ErrUnknownJob = traverser.ErrUnknownJob
	ErrExists     = traverser.ErrExists
	// ErrUnknownType reports a jobspec requesting a resource type absent
	// from this instance's graph (see ValidateSpec).
	ErrUnknownType = traverser.ErrUnknownType
)

// DefaultHorizon is the planner horizon used unless WithHorizon overrides
// it: about 68 years of seconds, effectively unbounded for scheduling.
const DefaultHorizon = int64(1) << 31

// config collects construction options.
type config struct {
	base         int64
	horizon      int64
	policy       string
	prune        string
	pruneSpec    resgraph.PruneSpec
	subsystem    string
	matchWorkers int
	shardCut     string
	defense      *sched.DefenseConfig
	shardSup     *shard.SupervisorConfig

	recipe      *grug.Recipe
	recipeYAML  []byte
	jgfData     []byte
	graphmlData []byte
	graph       *resgraph.Graph
}

// Option configures New.
type Option func(*config) error

// WithRecipe builds the store from a GRUG recipe value.
func WithRecipe(r *grug.Recipe) Option {
	return func(c *config) error { c.recipe = r; return nil }
}

// WithRecipeYAML builds the store from a GRUG recipe document.
func WithRecipeYAML(data []byte) Option {
	return func(c *config) error { c.recipeYAML = data; return nil }
}

// WithJGF builds the store from a JSON Graph Format document.
func WithJGF(data []byte) Option {
	return func(c *config) error { c.jgfData = data; return nil }
}

// WithGraphML builds the store from a GraphML document.
func WithGraphML(data []byte) Option {
	return func(c *config) error { c.graphmlData = data; return nil }
}

// WithGraph adopts an already-built store. If the graph is not finalized,
// New applies the prune spec and finalizes it.
func WithGraph(g *resgraph.Graph) Option {
	return func(c *config) error { c.graph = g; return nil }
}

// WithPolicy selects the match policy: "first" (default), "high", "low",
// "locality", or "variation".
func WithPolicy(name string) Option {
	return func(c *config) error { c.policy = name; return nil }
}

// WithPruneFilters installs pruning filters from a flux-style spec such as
// "ALL:core" or "cluster:node,rack:node,node:core".
func WithPruneFilters(spec string) Option {
	return func(c *config) error { c.prune = spec; return nil }
}

// WithPruneSpec installs pruning filters from an already-parsed spec map.
// It is the programmatic twin of WithPruneFilters; the two are mutually
// exclusive.
func WithPruneSpec(spec PruneSpec) Option {
	return func(c *config) error { c.pruneSpec = spec; return nil }
}

// WithBase sets the planners' first schedulable time (default 0).
func WithBase(base int64) Option {
	return func(c *config) error { c.base = base; return nil }
}

// WithHorizon sets the planners' schedulable duration (default
// DefaultHorizon).
func WithHorizon(h int64) Option {
	return func(c *config) error {
		if h <= 0 {
			return fmt.Errorf("fluxion: horizon must be positive")
		}
		c.horizon = h
		return nil
	}
}

// WithSubsystem selects the subsystem the traverser walks (default
// containment).
func WithSubsystem(name string) Option {
	return func(c *config) error { c.subsystem = name; return nil }
}

// WithMatchWorkers sets the parallel match pipeline's worker count: how
// many traverser workers a queuing layer built on this instance should use
// to speculatively match pending jobs concurrently (see internal/sched).
// n <= 1 (the default) selects the sequential match loop. The value is a
// hint surfaced through MatchWorkers; the speculation primitives
// themselves (MatchSpeculate/Commit/Abandon) are always available.
func WithMatchWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("fluxion: match workers must be >= 0")
		}
		c.matchWorkers = n
		return nil
	}
}

// Fluxion is the top-level scheduler-facing handle: a resource graph store
// plus a traverser. It is safe for concurrent use.
type Fluxion struct {
	mu sync.Mutex
	g  *resgraph.Graph
	tr *traverser.Traverser
	// matchWorkers is the configured parallel-match worker count.
	matchWorkers int
	// MatchTime accumulates wall-clock time spent matching, for
	// benchmark harnesses.
	matchTime time.Duration
	matches   int64
}

// New builds a Fluxion instance from exactly one store source
// (WithRecipe, WithRecipeYAML, WithJGF, or WithGraph).
func New(opts ...Option) (*Fluxion, error) {
	c, g, err := storeFromOptions(opts...)
	if err != nil {
		return nil, err
	}
	policy, err := match.Lookup(c.policy)
	if err != nil {
		return nil, err
	}
	var topts []traverser.Option
	if c.subsystem != "" {
		topts = append(topts, traverser.WithSubsystem(c.subsystem))
	}
	tr, err := traverser.New(g, policy, topts...)
	if err != nil {
		return nil, err
	}
	return &Fluxion{g: g, tr: tr, matchWorkers: c.matchWorkers}, nil
}

// storeFromOptions resolves construction options into a finalized graph
// (shared by New and NewSharded): exactly one store source is required,
// and prune filters are applied before finalization.
func storeFromOptions(opts ...Option) (*config, *resgraph.Graph, error) {
	c := &config{horizon: DefaultHorizon}
	for _, o := range opts {
		if err := o(c); err != nil {
			return nil, nil, err
		}
	}
	sources := 0
	for _, set := range []bool{c.recipe != nil, c.recipeYAML != nil, c.jgfData != nil, c.graphmlData != nil, c.graph != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, nil, errors.New("fluxion: exactly one of WithRecipe/WithRecipeYAML/WithJGF/WithGraphML/WithGraph is required")
	}
	spec := c.pruneSpec
	if c.prune != "" {
		if spec != nil {
			return nil, nil, errors.New("fluxion: WithPruneFilters and WithPruneSpec are mutually exclusive")
		}
		parsed, err := resgraph.ParsePruneSpec(c.prune)
		if err != nil {
			return nil, nil, err
		}
		spec = parsed
	}
	g, err := buildStore(c, spec)
	if err != nil {
		return nil, nil, err
	}
	return c, g, nil
}

// buildStore materializes the configured store source into a finalized
// graph.
func buildStore(c *config, spec resgraph.PruneSpec) (*resgraph.Graph, error) {
	var g *resgraph.Graph
	var err error
	switch {
	case c.recipeYAML != nil:
		r, err := grug.ParseYAML(c.recipeYAML)
		if err != nil {
			return nil, err
		}
		c.recipe = r
		fallthrough
	case c.recipe != nil:
		g, err = grug.BuildGraph(c.recipe, c.base, c.horizon, spec)
	case c.jgfData != nil:
		g, err = jgf.Decode(c.jgfData, c.base, c.horizon, spec)
	case c.graphmlData != nil:
		g, err = graphml.Decode(c.graphmlData, c.base, c.horizon, spec)
	default:
		g = c.graph
		if !g.Finalized() {
			if len(spec) > 0 {
				if err := g.SetPruneSpec(spec); err != nil {
					return nil, err
				}
			}
			err = g.Finalize()
		}
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// MatchWorkers returns the configured parallel-match worker count
// (minimum 1).
func (f *Fluxion) MatchWorkers() int {
	if f.matchWorkers < 1 {
		return 1
	}
	return f.matchWorkers
}

// Graph returns the underlying resource graph store.
func (f *Fluxion) Graph() *resgraph.Graph { return f.g }

// Stat summarizes the store.
func (f *Fluxion) Stat() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("%s; %d jobs; %d matches in %v",
		f.g.Stats(), f.tr.JobCount(), f.matches, f.matchTime)
}

// MatchStats returns the cumulative number of match operations and the
// wall-clock time they took.
func (f *Fluxion) MatchStats() (int64, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.matches, f.matchTime
}

// ParseJobspec decodes a canonical jobspec document.
func ParseJobspec(data []byte) (*Jobspec, error) { return jobspec.ParseYAML(data) }

// MatchAllocate matches a jobspec at time `at` and commits the allocation
// under jobID.
func (f *Fluxion) MatchAllocate(jobID int64, spec *Jobspec, at int64) (*Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := time.Now()
	alloc, err := f.tr.MatchAllocate(jobID, spec, at)
	f.note(start)
	return alloc, err
}

// CompileJobspec precompiles a jobspec against this instance's graph for
// repeated matching through the *Compiled entry points: validation,
// request-tree flattening, and type interning happen once instead of on
// every match call. The result is immutable and safe to share across
// goroutines, but only valid for this instance.
func (f *Fluxion) CompileJobspec(spec *Jobspec) (*CompiledJobspec, error) {
	return f.tr.Compile(spec)
}

// MatchAllocateCompiled is MatchAllocate for a precompiled jobspec.
func (f *Fluxion) MatchAllocateCompiled(jobID int64, spec *CompiledJobspec, at int64) (*Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := time.Now()
	alloc, err := f.tr.MatchAllocateCompiled(jobID, spec, at)
	f.note(start)
	return alloc, err
}

// MatchAllocateOrReserveCompiled is MatchAllocateOrReserve for a
// precompiled jobspec.
func (f *Fluxion) MatchAllocateOrReserveCompiled(jobID int64, spec *CompiledJobspec, now int64) (*Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := time.Now()
	alloc, err := f.tr.MatchAllocateOrReserveCompiled(jobID, spec, now)
	f.note(start)
	return alloc, err
}

// MatchAllocateCompiledSig is MatchAllocateCompiled that, on ErrNoMatch,
// captures the attempt's blocking signature into sig (see BlockSignature;
// sig may be nil to skip capture).
func (f *Fluxion) MatchAllocateCompiledSig(jobID int64, spec *CompiledJobspec, at int64, sig *BlockSignature) (*Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := time.Now()
	alloc, err := f.tr.MatchAllocateCompiledSig(jobID, spec, at, sig)
	f.note(start)
	return alloc, err
}

// MatchAllocateOrReserveCompiledSig is MatchAllocateOrReserveCompiled with
// blocking-signature capture on failure.
func (f *Fluxion) MatchAllocateOrReserveCompiledSig(jobID int64, spec *CompiledJobspec, now int64, sig *BlockSignature) (*Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := time.Now()
	alloc, err := f.tr.MatchAllocateOrReserveCompiledSig(jobID, spec, now, sig)
	f.note(start)
	return alloc, err
}

// SetDeltaSink registers fn to receive every capacity delta the store
// publishes (frees on cancel/release, claims on reservation, structural
// events on grow/shrink/up/down). One sink at a time; nil unregisters. The
// sink runs synchronously on the publishing goroutine, possibly under
// graph locks: it must be fast and must not call back into the store. The
// sched package registers its wakeup index here; external callers can tap
// the same stream for monitoring.
func (f *Fluxion) SetDeltaSink(fn func(ResourceDelta)) { f.g.SetDeltaSink(fn) }

// TapDeltas registers fn as an additional observer of the delta stream,
// chaining in front of whatever sink is already installed (typically the
// sched package's wakeup index) instead of displacing it. It returns an
// untap function that restores the previous sink. Taps compose; untap in
// reverse registration order. The durability layer taps the stream to
// notice out-of-band store mutations that must force a snapshot.
func (f *Fluxion) TapDeltas(fn func(ResourceDelta)) (untap func()) {
	prev := f.g.DeltaSink()
	if prev == nil {
		f.g.SetDeltaSink(fn)
	} else {
		f.g.SetDeltaSink(func(d ResourceDelta) {
			prev(d)
			fn(d)
		})
	}
	return func() { f.g.SetDeltaSink(prev) }
}

// MatchSpeculateCompiled is MatchSpeculate for a precompiled jobspec; like
// MatchSpeculate it bypasses the Fluxion-level lock.
func (f *Fluxion) MatchSpeculateCompiled(jobID int64, spec *CompiledJobspec, at int64) (*Allocation, error) {
	return f.tr.MatchSpeculateCompiled(jobID, spec, at)
}

// MatchAllocateYAML is MatchAllocate for a raw jobspec document.
func (f *Fluxion) MatchAllocateYAML(jobID int64, specYAML []byte, at int64) (*Allocation, error) {
	spec, err := jobspec.ParseYAML(specYAML)
	if err != nil {
		return nil, err
	}
	return f.MatchAllocate(jobID, spec, at)
}

// MatchAllocateOrReserve matches now or reserves the earliest future time
// the request fits.
func (f *Fluxion) MatchAllocateOrReserve(jobID int64, spec *Jobspec, now int64) (*Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := time.Now()
	alloc, err := f.tr.MatchAllocateOrReserve(jobID, spec, now)
	f.note(start)
	return alloc, err
}

// MatchSpeculate matches a jobspec at time `at` against a read snapshot
// without committing anything. It deliberately bypasses the Fluxion-level
// lock — the traverser is safe for concurrent speculation — so callers can
// fan speculations across goroutines. The returned allocation must be
// handed to exactly one of Commit or Abandon.
func (f *Fluxion) MatchSpeculate(jobID int64, spec *Jobspec, at int64) (*Allocation, error) {
	return f.tr.MatchSpeculate(jobID, spec, at)
}

// Commit validates a speculative allocation against committed state and
// installs it; it fails with traverser.ErrConflict when a concurrent
// commit took the capacity first, in which case the job must be
// re-matched.
func (f *Fluxion) Commit(alloc *Allocation) error {
	start := time.Now()
	err := f.tr.Commit(alloc)
	f.mu.Lock()
	f.note(start)
	f.mu.Unlock()
	return err
}

// Abandon releases a speculative allocation without committing it.
func (f *Fluxion) Abandon(alloc *Allocation) { f.tr.Abandon(alloc) }

// MatchSatisfy reports whether the request could ever be satisfied
// (capacity-only check).
func (f *Fluxion) MatchSatisfy(spec *Jobspec) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.MatchSatisfy(spec)
}

// MatchSatisfyCompiled is MatchSatisfy for a precompiled jobspec.
func (f *Fluxion) MatchSatisfyCompiled(spec *CompiledJobspec) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.MatchSatisfyCompiled(spec)
}

// Cancel releases a job's resources or reservation.
func (f *Fluxion) Cancel(jobID int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.Cancel(jobID)
}

// Release shrinks a malleable job's allocation: the grants at the given
// vertex paths are freed while the rest of the allocation stays intact
// (paper §5.5).
func (f *Fluxion) Release(jobID int64, paths []string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.Release(jobID, paths)
}

// Info returns a job's allocation.
func (f *Fluxion) Info(jobID int64) (*Allocation, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.Info(jobID)
}

// Jobs lists live job IDs.
func (f *Fluxion) Jobs() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.Jobs()
}

// Traverser exposes the underlying traverser for advanced callers (e.g.
// the sched package).
func (f *Fluxion) Traverser() *traverser.Traverser { return f.tr }

// ValidateSpec checks a jobspec against this instance before it reaches
// the match kernel: structural well-formedness (positive counts, slot
// shape, the nesting-depth cap) plus graph-aware checks — every
// requested resource type must exist in the graph. Rejections wrap
// jobspec.ErrInvalid or ErrUnknownType. Submitting through
// internal/sched runs this automatically; direct Match callers can
// screen hostile specs with it first.
func (f *Fluxion) ValidateSpec(js *Jobspec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.ValidateSpec(js)
}

// Grow materializes a recipe subtree and attaches it beneath the vertex at
// parentPath (elasticity, paper §5.5). It returns the new subtree root.
func (f *Fluxion) Grow(parentPath string, sub *grug.Recipe) (*Vertex, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	parent := f.g.ByPath(parentPath)
	if parent == nil {
		return nil, fmt.Errorf("fluxion: no vertex at %q", parentPath)
	}
	root, err := grug.Build(f.g, sub)
	if err != nil {
		return nil, err
	}
	if err := f.g.Attach(parent, root); err != nil {
		return nil, err
	}
	return root, nil
}

// Shrink detaches the subtree rooted at path. It fails if any resource in
// the subtree is allocated or reserved.
func (f *Fluxion) Shrink(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.g.ByPath(path)
	if v == nil {
		return fmt.Errorf("fluxion: no vertex at %q", path)
	}
	return f.g.Detach(v)
}

// MarkDown takes the containment subtree rooted at path out of service:
// every job holding a grant inside it is evicted (its resources released
// everywhere), and the subtree's capacity is subtracted from every
// ancestor pruning filter so subsequent matches route around the failure.
// It returns the evicted allocations so a scheduler can requeue them.
// Marking an already-down subtree is a no-op.
func (f *Fluxion) MarkDown(path string) ([]*Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.MarkDown(path)
}

// MarkUp returns the subtree rooted at path to service, restoring its
// capacity in every ancestor pruning filter. Previously evicted jobs are
// not replayed; resubmit them through the scheduler.
func (f *Fluxion) MarkUp(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.MarkUp(path)
}

// SetStatus marks the vertex at path up or down. It routes through
// MarkUp/MarkDown, so downing a subtree evicts the jobs inside it and
// updates ancestor pruning filters; use MarkDown directly to learn which
// jobs were displaced.
func (f *Fluxion) SetStatus(path string, up bool) error {
	if up {
		return f.MarkUp(path)
	}
	_, err := f.MarkDown(path)
	return err
}

// Find returns the containment paths of vertices matching the given type
// and status filter ("" matches any type; status "up"/"down"/"" filters).
func (f *Fluxion) Find(typ, status string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for _, v := range f.g.Vertices() {
		if typ != "" && v.Type != typ {
			continue
		}
		if status != "" && v.Status.String() != status {
			continue
		}
		out = append(out, v.Path())
	}
	return out
}

// FindExpr returns the containment paths of vertices matching a query
// expression such as "type=node and status=up and perfclass=3" (see
// internal/query for the grammar).
func (f *Fluxion) FindExpr(expr string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	vs, err := query.Select(f.g, expr)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.Path())
	}
	return out, nil
}

// JGF serializes the store to the JSON Graph Format.
func (f *Fluxion) JGF() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return jgf.Encode(f.g)
}

// GraphML serializes the store to GraphML.
func (f *Fluxion) GraphML() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return graphml.Encode(f.g)
}

func (f *Fluxion) note(start time.Time) {
	f.matchTime += time.Since(start)
	f.matches++
}
