package fluxion

import (
	"fmt"

	"fluxion/internal/resgraph"
)

// SpawnInstance implements fully hierarchical scheduling (paper §5.6):
// it builds a child Fluxion instance whose resource graph store contains
// exactly the resources granted to jobID — pool vertices sized to the
// granted units, connected by a clone of the containment skeleton. The
// child schedules its own sub-jobs within the grant, independently of the
// parent; the parent-child relationship can extend to arbitrary depth.
//
// opts configure the child (policy, prune filters, base/horizon); sources
// (WithRecipe etc.) must not be passed. By default the child inherits the
// parent's planner base and horizon.
func (f *Fluxion) SpawnInstance(jobID int64, opts ...Option) (*Fluxion, error) {
	c := &config{base: f.g.Base(), horizon: f.g.Horizon()}
	for _, o := range opts {
		if err := o(c); err != nil {
			return nil, err
		}
	}
	if c.recipe != nil || c.recipeYAML != nil || c.jgfData != nil || c.graph != nil {
		return nil, fmt.Errorf("fluxion: SpawnInstance does not accept a store source option")
	}
	spec, err := resgraph.ParsePruneSpec(c.prune)
	if err != nil {
		return nil, err
	}

	g := resgraph.NewGraph(c.base, c.horizon)
	if len(spec) > 0 {
		if err := g.SetPruneSpec(spec); err != nil {
			return nil, err
		}
	}

	// The grant lookup and the clone of its subtree happen under one
	// critical section: looking the allocation up, dropping the lock, and
	// then walking alloc.Vertices would race a concurrent grant cancel —
	// the child could be built from a grant that no longer exists, reading
	// parent vertex state mid-mutation. A cancel that lands before the
	// lock is taken surfaces as a clean ErrUnknownJob instead. The lock is
	// released before the child graph is finalized: from here on only the
	// new graph is touched.
	if err := func() error {
		f.mu.Lock()
		defer f.mu.Unlock()
		alloc, ok := f.tr.Info(jobID)
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownJob, jobID)
		}

		// Accumulate granted units per vertex (a pool can be granted from
		// several slots of the same job).
		granted := make(map[*resgraph.Vertex]int64)
		order := make([]*resgraph.Vertex, 0, len(alloc.Vertices))
		for _, va := range alloc.Vertices {
			if _, seen := granted[va.V]; !seen {
				order = append(order, va.V)
			}
			granted[va.V] += va.Units
		}

		clones := make(map[*resgraph.Vertex]*resgraph.Vertex)
		var cloneOf func(v *resgraph.Vertex) (*resgraph.Vertex, error)
		cloneOf = func(v *resgraph.Vertex) (*resgraph.Vertex, error) {
			if nv, ok := clones[v]; ok {
				return nv, nil
			}
			nv, err := g.AddVertex(v.Type, v.ID, v.Size)
			if err != nil {
				return nil, err
			}
			nv.Unit = v.Unit
			for k, val := range v.Properties {
				nv.SetProperty(k, val)
			}
			clones[v] = nv
			if p := v.Parent(); p != nil {
				pp, err := cloneOf(p)
				if err != nil {
					return nil, err
				}
				if err := g.AddContainment(pp, nv); err != nil {
					return nil, err
				}
			}
			return nv, nil
		}
		for _, v := range order {
			nv, err := cloneOf(v)
			if err != nil {
				return err
			}
			// Partial pool grants shrink the child's pool to the granted
			// units; structural skeleton vertices (units 0) keep their
			// size so traversal semantics match the parent.
			if u := granted[v]; u > 0 {
				nv.Size = u
			}
		}
		return nil
	}(); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	child, err := New(WithGraph(g), WithPolicy(c.policy), withFinalizedSubsystem(c.subsystem))
	if err != nil {
		return nil, err
	}
	return child, nil
}

// withFinalizedSubsystem forwards a subsystem choice, tolerating "".
func withFinalizedSubsystem(name string) Option {
	return func(c *config) error {
		c.subsystem = name
		return nil
	}
}
