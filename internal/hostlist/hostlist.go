// Package hostlist implements the compressed hostname-range notation used
// across HPC tooling ("node[0-17]", "rack[0-3]", "gpu[0,2,4-7]"): encoding
// a set of numbered names into ranges and expanding the notation back.
// resource-query and the rv1 emitter use it to render node sets compactly.
package hostlist

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrSyntax is wrapped by all decode errors.
var ErrSyntax = errors.New("hostlist: syntax error")

// Compress renders a list of names like ["node0","node1","node3"] as
// "node[0-1,3]". Names are grouped by prefix; prefixes appear in first-use
// order, indices ascending, duplicates removed. Names without a numeric
// suffix pass through verbatim.
func Compress(names []string) string {
	type group struct {
		prefix string
		nums   []int64
	}
	var order []string
	groups := make(map[string]*group)
	var plain []string
	for _, name := range names {
		prefix, num, ok := splitNumericSuffix(name)
		if !ok {
			plain = append(plain, name)
			continue
		}
		g := groups[prefix]
		if g == nil {
			g = &group{prefix: prefix}
			groups[prefix] = g
			order = append(order, prefix)
		}
		g.nums = append(g.nums, num)
	}
	var parts []string
	for _, prefix := range order {
		g := groups[prefix]
		sort.Slice(g.nums, func(i, j int) bool { return g.nums[i] < g.nums[j] })
		g.nums = dedupe(g.nums)
		if len(g.nums) == 1 {
			parts = append(parts, fmt.Sprintf("%s%d", prefix, g.nums[0]))
			continue
		}
		parts = append(parts, prefix+"["+rangesOf(g.nums)+"]")
	}
	parts = append(parts, plain...)
	return strings.Join(parts, ",")
}

func dedupe(nums []int64) []int64 {
	out := nums[:0]
	for i, n := range nums {
		if i == 0 || n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

func rangesOf(nums []int64) string {
	var b strings.Builder
	for i := 0; i < len(nums); {
		j := i
		for j+1 < len(nums) && nums[j+1] == nums[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		switch {
		case j == i:
			fmt.Fprintf(&b, "%d", nums[i])
		case j == i+1:
			fmt.Fprintf(&b, "%d,%d", nums[i], nums[j])
		default:
			fmt.Fprintf(&b, "%d-%d", nums[i], nums[j])
		}
		i = j + 1
	}
	return b.String()
}

// splitNumericSuffix splits "node42" into ("node", 42, true).
func splitNumericSuffix(s string) (string, int64, bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) || i == 0 {
		return s, 0, false
	}
	n, err := strconv.ParseInt(s[i:], 10, 64)
	if err != nil {
		return s, 0, false
	}
	return s[:i], n, true
}

// Expand parses hostlist notation back into the full name list, e.g.
// "node[0-2,5],login1" -> [node0 node1 node2 node5 login1]. Bracketed
// ranges must be ascending and non-empty.
func Expand(s string) ([]string, error) {
	var out []string
	for _, tok := range splitTop(s) {
		if tok == "" {
			return nil, fmt.Errorf("%w: empty element", ErrSyntax)
		}
		open := strings.IndexByte(tok, '[')
		if open < 0 {
			if strings.ContainsAny(tok, "]") {
				return nil, fmt.Errorf("%w: stray ']' in %q", ErrSyntax, tok)
			}
			out = append(out, tok)
			continue
		}
		if !strings.HasSuffix(tok, "]") {
			return nil, fmt.Errorf("%w: unterminated range in %q", ErrSyntax, tok)
		}
		prefix := tok[:open]
		body := tok[open+1 : len(tok)-1]
		if body == "" {
			return nil, fmt.Errorf("%w: empty range in %q", ErrSyntax, tok)
		}
		for _, r := range strings.Split(body, ",") {
			lo, hi, err := parseRange(r)
			if err != nil {
				return nil, err
			}
			for n := lo; n <= hi; n++ {
				out = append(out, fmt.Sprintf("%s%d", prefix, n))
			}
		}
	}
	return out, nil
}

func parseRange(r string) (lo, hi int64, err error) {
	if dash := strings.IndexByte(r, '-'); dash > 0 {
		lo, err = strconv.ParseInt(r[:dash], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: bad range %q", ErrSyntax, r)
		}
		hi, err = strconv.ParseInt(r[dash+1:], 10, 64)
		if err != nil || hi < lo {
			return 0, 0, fmt.Errorf("%w: bad range %q", ErrSyntax, r)
		}
		return lo, hi, nil
	}
	lo, err = strconv.ParseInt(r, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad index %q", ErrSyntax, r)
	}
	return lo, lo, nil
}

// splitTop splits on commas that are outside brackets.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// Count returns the number of names the notation expands to without
// materializing them.
func Count(s string) (int, error) {
	names, err := Expand(s) // sets are small in practice; keep it simple
	if err != nil {
		return 0, err
	}
	return len(names), nil
}
