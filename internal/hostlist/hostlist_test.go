package hostlist

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompress(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"node0"}, "node0"},
		{[]string{"node0", "node1", "node2"}, "node[0-2]"},
		{[]string{"node0", "node1"}, "node[0,1]"},
		{[]string{"node2", "node0", "node1"}, "node[0-2]"},
		{[]string{"node0", "node1", "node3"}, "node[0,1,3]"},
		{[]string{"node0", "node2", "node3", "node4", "node9"}, "node[0,2-4,9]"},
		{[]string{"node0", "node0", "node1"}, "node[0,1]"},
		{[]string{"node0", "gpu1", "gpu2", "gpu3"}, "node0,gpu[1-3]"},
		{[]string{"login", "node1"}, "node1,login"},
		{[]string{"a10", "a9", "a11"}, "a[9-11]"},
	}
	for _, c := range cases {
		if got := Compress(c.in); got != c.want {
			t.Errorf("Compress(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExpand(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"node0", []string{"node0"}},
		{"node[0-2]", []string{"node0", "node1", "node2"}},
		{"node[0,2-3]", []string{"node0", "node2", "node3"}},
		{"node[0-1],rack[5]", []string{"node0", "node1", "rack5"}},
		{"login,node[1,3]", []string{"login", "node1", "node3"}},
	}
	for _, c := range cases {
		got, err := Expand(c.in)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("Expand(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	for _, in := range []string{"", "node[", "node[]", "node[3-1]", "node[x]", "node]", "a,,b", "node[1-]"} {
		if _, err := Expand(in); !errors.Is(err, ErrSyntax) {
			t.Errorf("Expand(%q): want ErrSyntax, got %v", in, err)
		}
	}
}

func TestCount(t *testing.T) {
	n, err := Count("node[0-9],login,gpu[0,5]")
	if err != nil || n != 13 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if _, err := Count("bad["); err == nil {
		t.Fatal("Count of bad input")
	}
}

// TestQuickRoundTrip property: Expand(Compress(names)) returns the sorted
// deduplicated input for numbered names.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		set := make(map[string]bool)
		for i := 0; i < count; i++ {
			set[fmt.Sprintf("node%d", rng.Intn(100))] = true
		}
		var names []string
		for name := range set {
			names = append(names, name)
		}
		got, err := Expand(Compress(names))
		if err != nil {
			return false
		}
		sortByNum := func(xs []string) {
			sort.Slice(xs, func(i, j int) bool {
				_, a, _ := splitNumericSuffix(xs[i])
				_, b, _ := splitNumericSuffix(xs[j])
				return a < b
			})
		}
		sortByNum(names)
		sortByNum(got)
		return reflect.DeepEqual(names, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitNumericSuffix(t *testing.T) {
	cases := []struct {
		in     string
		prefix string
		num    int64
		ok     bool
	}{
		{"node42", "node", 42, true},
		{"node", "node", 0, false},
		{"42", "42", 0, false},
		{"a0b1", "a0b", 1, true},
	}
	for _, c := range cases {
		p, n, ok := splitNumericSuffix(c.in)
		if ok != c.ok || (ok && (p != c.prefix || n != c.num)) {
			t.Errorf("splitNumericSuffix(%q) = (%q,%d,%v)", c.in, p, n, ok)
		}
	}
}
