// Package simcli implements the fluxion-sim driver: it replays a job
// trace through the queuing scheduler on a GRUG-generated system and
// reports the per-job timeline plus run metrics. It is the command-line
// face of internal/sched, factored out of cmd/fluxion-sim for testing.
//
// Beyond plain replay it supports seeded per-node fault injection
// (exponential MTBF/MTTR, deterministic for a given seed) and a
// crash-recovery drill that checkpoints mid-run, rebuilds the scheduler
// from the checkpoint, and verifies the resumed run converges to the same
// terminal state as the uninterrupted one.
package simcli

import (
	"fmt"
	"io"
	"sort"
	"time"

	"fluxion"
	"fluxion/internal/chaos"
	"fluxion/internal/durable"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/shard"
	"fluxion/internal/trace"
	"fluxion/internal/wal"
)

// simHorizon is the planner horizon for simulation runs: effectively
// unbounded simulated seconds.
const simHorizon = int64(1) << 40

// Config parameterizes one simulation run.
type Config struct {
	Recipe      *grug.Recipe
	PruneSpec   resgraph.PruneSpec
	MatchPolicy string
	QueuePolicy sched.QueuePolicy
	// QueueDepth bounds how many pending jobs each scheduling cycle
	// plans (0 = unbounded).
	QueueDepth int
	// MatchWorkers sets how many traverser workers speculatively match
	// pending jobs concurrently per cycle (<= 1 = sequential loop).
	MatchWorkers int
	// Timeline prints one line per job when true.
	Timeline bool
	// MaxSteps bounds the event loop (0 = drain completely).
	MaxSteps int

	// MTBF/MTTR (mean simulated seconds between node failures / to
	// repair) enable seeded per-node fault injection when both are
	// positive.
	MTBF int64
	MTTR int64
	// FaultSeed seeds the fault timeline; the same seed reproduces the
	// same failures event for event.
	FaultSeed int64
	// MaxRetries bounds failure-driven requeues per job (0 = scheduler
	// default).
	MaxRetries int
	// Drill checkpoints the run midway, rebuilds a scheduler from the
	// checkpoint, and verifies the resumed run reaches the same terminal
	// state.
	Drill bool
	// FullRequeue disables the event-driven incremental engine: every
	// cycle cancels all reservations and re-plans the whole pending queue
	// (the pre-incremental behavior, kept as an escape hatch and as the
	// baseline for experiments).
	FullRequeue bool

	// Shards > 1 runs the sharded scheduler (internal/shard): the graph
	// is partitioned into subtree shards cut at ShardCut, each with its
	// own scheduler loop behind a residue-routing root with work
	// stealing. Sharded runs are in-memory only: WAL durability, the
	// crash drill, fault injection, and job-level/storage chaos are
	// flat-scheduler features and are rejected in combination —
	// shard-level chaos (kills/stalls) is the sharded-only converse.
	Shards int
	// ShardCut is the containment type shards are cut at (default
	// "rack").
	ShardCut string

	// WALDir enables durable state when non-empty: every scheduler
	// mutation is journaled to a write-ahead log under this directory and
	// periodic snapshots bound replay. When the directory already holds
	// state from a crashed run, Run recovers it and resumes the trace
	// where the log ends instead of starting over.
	WALDir string
	// WALSyncInterval is the WAL group-commit fsync cadence (0 = the WAL
	// default of 10ms; negative = fsync every command).
	WALSyncInterval time.Duration
	// SnapshotEvery is how many journal command units elapse between
	// automatic snapshots (0 = durable.DefaultSnapshotEvery).
	SnapshotEvery int
	// WALFaults injects storage failures into the WAL (tests).
	WALFaults *wal.FaultPlan
	// WALKeepAll retains every WAL segment and snapshot instead of
	// compacting (archival mode; the crash drill truncates the full
	// history at every record boundary).
	WALKeepAll bool

	// Chaos composes every fault source behind one seeded plan: node
	// MTBF/MTTR (fills the fields above when they are unset), WAL storage
	// faults, the hostile-job streams (match panics, slow matches,
	// malformed specs), and shard kills/stalls (sharded runs only). When
	// the plan injects job-level faults the scheduler self-defense layer
	// auto-enables unless ChaosDry is set; when it injects shard faults
	// the shard supervisor auto-enables likewise.
	Chaos *chaos.Plan
	// ChaosDry runs the defense-free parity baseline: the plan's
	// poisoned jobs are filtered out of the trace up front and no faults
	// or defenses are installed. A chaos run and its dry twin must agree
	// on every surviving job's schedule.
	ChaosDry bool
	// Defense enables the scheduler self-defense layer (panic fences,
	// quarantine, cycle watchdog, admission backpressure) with the given
	// tuning. Set automatically for active chaos runs.
	Defense *sched.DefenseConfig
	// ShardSupervisor enables shard supervision and failover on sharded
	// runs (health state machine, quarantine-and-drain, reabsorption).
	// Auto-enabled with defaults when the chaos plan injects shard
	// faults.
	ShardSupervisor *shard.SupervisorConfig
}

// Result carries the outcome for programmatic callers.
type Result struct {
	Completed int
	Metrics   sched.Metrics
	// Scheduler is the flat scheduler (nil on sharded runs).
	Scheduler *sched.Scheduler
	// Sharded is the sharded scheduler (nil on flat runs).
	Sharded *shard.Sharded
	// Fluxion is the resource-layer handle the run scheduled against.
	Fluxion *fluxion.Fluxion
	// DrillRan/DrillOK report the crash-recovery drill (Config.Drill).
	DrillRan bool
	DrillOK  bool
	// Recovered reports that WAL state from a prior run was restored;
	// Recovery describes what the scan replayed and truncated.
	Recovered bool
	Recovery  wal.RecoveryStats
	// WALDegraded reports that a storage fault disabled durability
	// mid-run (the run completed non-durably).
	WALDegraded bool
}

// loopTarget is the discrete-event scheduler surface the looper drives,
// implemented by both *sched.Scheduler and *shard.Sharded.
type loopTarget interface {
	Now() int64
	HasEvents() bool
	NextEventAt() int64
	AdvanceTo(int64) error
	Step() bool
	Schedule()
	SubmitPriority(int64, *jobspec.Jobspec, int) (*sched.Job, error)
	Atomic(func())
}

// looper is the discrete-event loop: trace arrivals interleave with
// completion and node up/down events on the scheduler clock.
type looper struct {
	s     loopTarget
	jobs  []trace.Job
	i     int // next arrival index
	steps int
	max   int
	out   io.Writer
	// spec overrides jobspec construction per arrival (chaos malformed-
	// spec substitution); nil means the job's own spec.
	spec func(trace.Job) *jobspec.Jobspec
}

// drive advances the simulation until arrivals and events drain. When
// pause is non-nil it is consulted after every event step; returning true
// suspends the loop (resume by calling drive again).
func (l *looper) drive(pause func() bool) error {
	if l.max > 0 && l.steps >= l.max {
		return nil
	}
	for l.i < len(l.jobs) || l.s.HasEvents() {
		if l.i < len(l.jobs) && l.jobs[l.i].Submit <= l.s.Now() {
			// Submit everything due and re-plan the queue, as one journal
			// command unit: crash recovery lands before or after the whole
			// arrival batch, never between a submit and its cycle. A batch
			// whose submits were all rejected runs no cycle — rejections
			// leave no journal trace, so a recovered run that re-offers
			// them must not diverge by an extra cycle (Step schedules
			// after every event regardless).
			l.s.Atomic(func() {
				accepted := 0
				for l.i < len(l.jobs) && l.jobs[l.i].Submit <= l.s.Now() {
					j := l.jobs[l.i]
					js := j.Jobspec()
					if l.spec != nil {
						js = l.spec(j)
					}
					if _, err := l.s.SubmitPriority(j.ID, js, j.Priority); err != nil {
						fmt.Fprintf(l.out, "job %d rejected: %v\n", j.ID, err)
					} else {
						accepted++
					}
					l.i++
				}
				if accepted > 0 {
					l.s.Schedule()
				}
			})
			continue
		}
		// Next event: the earlier of the next arrival and the next
		// scheduler event.
		if l.i < len(l.jobs) && (!l.s.HasEvents() || l.jobs[l.i].Submit < l.s.NextEventAt()) {
			if err := l.s.AdvanceTo(l.jobs[l.i].Submit); err != nil {
				return err
			}
			continue
		}
		if !l.s.Step() {
			break
		}
		l.steps++
		if l.max > 0 && l.steps >= l.max {
			break
		}
		if pause != nil && pause() {
			return nil
		}
	}
	return nil
}

// Run replays the trace and writes a report to out.
func Run(cfg Config, jobs []trace.Job, out io.Writer) (*Result, error) {
	if cfg.Recipe == nil {
		return nil, fmt.Errorf("simcli: recipe is required")
	}
	if cfg.Shards > 1 {
		return runSharded(cfg, jobs, out)
	}
	plan := cfg.Chaos
	if plan.ShardActive() {
		return nil, fmt.Errorf("simcli: shard chaos requires a sharded run (-shards > 1)")
	}
	chaosLive := plan.Active() && !cfg.ChaosDry
	if plan != nil {
		if cfg.ChaosDry {
			// Parity baseline: the poisoned set never existed.
			jobs = plan.FilterTrace(jobs)
		} else {
			if plan.NodeMTBF > 0 && cfg.MTBF == 0 {
				cfg.MTBF, cfg.MTTR, cfg.FaultSeed = plan.NodeMTBF, plan.NodeMTTR, plan.Seed
			}
			if plan.Storage != nil && cfg.WALFaults == nil {
				cfg.WALFaults = plan.Storage
			}
			if chaosLive && cfg.Defense == nil {
				// Hostile jobs are incoming: enable the self-defense layer
				// with defaults (fences and quarantine active; deadline,
				// watchdog, and backpressure stay off until tuned).
				cfg.Defense = &sched.DefenseConfig{}
			}
		}
	}
	if (cfg.MTBF > 0) != (cfg.MTTR > 0) {
		return nil, fmt.Errorf("simcli: MTBF and MTTR must be set together")
	}
	if cfg.Drill && cfg.MatchWorkers > 1 {
		// The drill asserts bit-exact convergence between the original
		// and resumed runs; parallel matching guarantees policy
		// decisions, not identical vertex placement, so the comparison
		// would false-fail.
		return nil, fmt.Errorf("simcli: the crash-recovery drill requires sequential matching (match workers <= 1)")
	}
	spec := cfg.PruneSpec
	if spec == nil {
		spec = resgraph.PruneSpec{resgraph.ALL: {"core", "node"}}
	}
	qp := cfg.QueuePolicy
	if qp == "" {
		qp = sched.Conservative
	}
	var sopts []sched.SchedOption
	if cfg.QueueDepth > 0 {
		sopts = append(sopts, sched.WithQueueDepth(cfg.QueueDepth))
	}
	if cfg.MaxRetries > 0 {
		sopts = append(sopts, sched.WithMaxRetries(cfg.MaxRetries))
	}
	if cfg.MatchWorkers > 1 {
		sopts = append(sopts, sched.WithMatchWorkers(cfg.MatchWorkers))
	}
	sopts = append(sopts, sched.WithIncremental(!cfg.FullRequeue))
	if cfg.Defense != nil {
		sopts = append(sopts, sched.WithDefense(*cfg.Defense))
	}

	fresh := func() (*fluxion.Fluxion, *sched.Scheduler, error) {
		g, err := grug.BuildGraph(cfg.Recipe, 0, simHorizon, spec)
		if err != nil {
			return nil, nil, err
		}
		f, err := fluxion.New(fluxion.WithGraph(g), fluxion.WithPolicy(cfg.MatchPolicy))
		if err != nil {
			return nil, nil, err
		}
		s, err := sched.New(f.Traverser(), qp, sopts...)
		if err != nil {
			return nil, nil, err
		}
		return f, s, nil
	}

	var st *durable.Store
	var f *fluxion.Fluxion
	var s *sched.Scheduler
	recovered := false
	if cfg.WALDir != "" {
		var err error
		st, err = durable.Open(durable.Options{
			Dir:           cfg.WALDir,
			SyncInterval:  cfg.WALSyncInterval,
			SnapshotEvery: cfg.SnapshotEvery,
			KeepAll:       cfg.WALKeepAll,
			Faults:        cfg.WALFaults,
			Warn:          out,
		})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		if st.Recovered() {
			f, s, err = st.Restore(fresh, []fluxion.Option{
				fluxion.WithPolicy(cfg.MatchPolicy),
				fluxion.WithPruneSpec(spec),
				fluxion.WithHorizon(simHorizon),
			}, sopts)
			if err != nil {
				return nil, fmt.Errorf("simcli: wal recovery: %w", err)
			}
			recovered = true
			fmt.Fprintf(out, "wal: recovered %s\n", st.Stats())
		}
	}
	if s == nil {
		var err error
		if f, s, err = fresh(); err != nil {
			return nil, err
		}
	}
	g := f.Graph()
	if st != nil {
		st.Attach(f, s)
	}
	if chaosLive {
		s.SetMatchHook(plan.MatchHook())
	}

	mp := cfg.MatchPolicy
	if mp == "" {
		mp = "first"
	}
	engine := "incremental"
	if cfg.FullRequeue {
		engine = "full-requeue"
	}
	fmt.Fprintf(out, "system: %s\n", g.Stats())
	fmt.Fprintf(out, "policies: match=%s queue=%s engine=%s; %d jobs\n", mp, qp, engine, len(jobs))
	if cfg.MatchWorkers > 1 {
		fmt.Fprintf(out, "match workers: %d (parallel match pipeline)\n", cfg.MatchWorkers)
	}
	if plan != nil && plan.Active() {
		mode := "defended"
		if cfg.ChaosDry {
			mode = "dry (defense-free parity baseline)"
		}
		fmt.Fprintf(out, "chaos: %s mode=%s\n", plan, mode)
	}

	l := &looper{s: s, jobs: jobs, out: out, max: cfg.MaxSteps}
	if chaosLive && plan.MalformedFrac > 0 {
		l.spec = func(j trace.Job) *jobspec.Jobspec {
			if plan.Malformed(j.ID) {
				return plan.MalformedSpec(j.ID)
			}
			return j.Jobspec()
		}
	}
	if recovered {
		// Skip the trace prefix the recovered state already ingested.
		// Arrival batches commit atomically, so ingestion is a prefix of
		// the trace — but rejected submits (malformed specs, overload)
		// leave holes in it, so resume after the LAST present job.
		// Trailing rejected arrivals of an executed batch are re-offered
		// and rejected again, which is state-neutral.
		for i, j := range jobs {
			if _, ok := s.Job(j.ID); ok {
				l.i = i + 1
			}
		}
		fmt.Fprintf(out, "wal: resuming at t=%d with %d of %d arrivals ingested\n",
			s.Now(), l.i, len(jobs))
	}
	var inj *injector
	if cfg.MTBF > 0 {
		inj = newInjector(s, cfg.FaultSeed, cfg.MTBF, cfg.MTTR)
		inj.more = func() bool { return l.i < len(l.jobs) || s.Unfinished() > 0 }
		if !recovered {
			// Seed each node's first failure as one journal command; a
			// recovered run's pending events travel in the checkpoint and
			// replay, and future delays are pure functions of (seed, node,
			// time), so the fault timeline continues exactly.
			var ierr error
			s.Atomic(func() { ierr = inj.start(g) })
			if ierr != nil {
				return nil, ierr
			}
		}
		fmt.Fprintf(out, "faults: seed=%d mtbf=%ds mttr=%ds over %d nodes\n",
			cfg.FaultSeed, cfg.MTBF, cfg.MTTR, len(g.ByType("node")))
	}

	start := time.Now()
	var cp *drillCheckpoint
	if cfg.Drill {
		// Pause midway — after roughly half the jobs' worth of events —
		// and snapshot both state layers at the same instant.
		trigger := (len(jobs) + 1) / 2
		if err := l.drive(func() bool { return l.steps >= trigger }); err != nil {
			return nil, err
		}
		if l.i < len(jobs) || s.HasEvents() {
			cp = &drillCheckpoint{i: l.i, steps: l.steps}
			var err error
			if cp.resource, err = f.Checkpoint(); err != nil {
				return nil, err
			}
			if cp.sched, err = s.Checkpoint(); err != nil {
				return nil, err
			}
			fmt.Fprintf(out, "drill: checkpoint at t=%d (%d arrivals in, %d events done)\n",
				s.Now(), cp.i, cp.steps)
		}
	}
	if err := l.drive(nil); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	if cfg.Timeline {
		printTimeline(out, s, jobs)
	}
	m := s.Metrics()
	fmt.Fprintf(out, "metrics: %s\n", m)
	if inj != nil {
		fmt.Fprintf(out, "faults injected: downs=%d ups=%d\n", inj.downs, inj.ups)
	}
	ss := s.Stats()
	fmt.Fprintf(out, "sched: %d cycles, %d match attempts, %d woken, %d skipped\n",
		ss.Cycles, ss.MatchAttempts, ss.WokenJobs, ss.SkippedJobs)
	if cfg.Defense != nil {
		fmt.Fprintf(out, "defense: quarantined=%d degraded=%d overload-rejects=%d invalid-rejects=%d level=%d\n",
			ss.Quarantined, ss.DegradedCycles, ss.OverloadRejects, ss.InvalidSpecRejects, s.DefenseLevel())
	}
	fmt.Fprintf(out, "wall: %v for %d scheduling cycles\n", wall.Round(time.Millisecond), s.Cycles)

	res := &Result{Completed: m.Completed, Metrics: m, Scheduler: s, Fluxion: f}
	if st != nil {
		res.Recovered = recovered
		res.Recovery = st.Stats()
		if err := st.Close(); err != nil {
			fmt.Fprintf(out, "wal: %v\n", err)
		}
		res.WALDegraded = st.Degraded()
	}
	if cp != nil {
		res.DrillRan = true
		var err error
		res.DrillOK, err = runDrill(cfg, spec, jobs, cp, s, out)
		if err != nil {
			return nil, err
		}
		if !res.DrillOK {
			fmt.Fprintf(out, "drill: FAIL — resumed run diverged from the uninterrupted run\n")
		} else {
			fmt.Fprintf(out, "drill: PASS — resumed run converged to the same terminal state\n")
		}
	} else if cfg.Drill {
		fmt.Fprintf(out, "drill: skipped — run drained before the checkpoint trigger\n")
	}
	return res, nil
}

// drillCheckpoint is the paired mid-run snapshot: resource-graph state
// (allocations, statuses) and scheduler state (queue, clock, events).
type drillCheckpoint struct {
	resource []byte
	sched    []byte
	i, steps int
}

// runDrill rebuilds scheduler + store from the checkpoint, replays the
// remainder of the trace on the rebuilt instance, and compares every
// job's terminal state against the uninterrupted run.
func runDrill(cfg Config, spec resgraph.PruneSpec, jobs []trace.Job,
	cp *drillCheckpoint, orig *sched.Scheduler, out io.Writer) (bool, error) {
	f2, err := fluxion.Restore(cp.resource,
		fluxion.WithPolicy(cfg.MatchPolicy),
		fluxion.WithPruneSpec(spec),
		fluxion.WithHorizon(simHorizon))
	if err != nil {
		return false, fmt.Errorf("simcli: drill restore: %w", err)
	}
	specs := make(map[int64]*jobspec.Jobspec, len(jobs))
	for _, j := range jobs {
		specs[j.ID] = j.Jobspec()
	}
	sopts := []sched.SchedOption{sched.WithIncremental(!cfg.FullRequeue)}
	if cfg.Defense != nil {
		sopts = append(sopts, sched.WithDefense(*cfg.Defense))
	}
	s2, err := sched.Resume(f2.Traverser(), cp.sched, specs, sopts...)
	if err != nil {
		return false, fmt.Errorf("simcli: drill resume: %w", err)
	}
	if cfg.Chaos.Active() && !cfg.ChaosDry {
		// Re-arm the fault streams: jobs poisoned after the checkpoint
		// must poison identically in the resumed run.
		s2.SetMatchHook(cfg.Chaos.MatchHook())
	}
	l2 := &looper{s: s2, jobs: jobs, i: cp.i, steps: cp.steps, out: io.Discard, max: cfg.MaxSteps}
	if cfg.Chaos.Active() && !cfg.ChaosDry && cfg.Chaos.MalformedFrac > 0 {
		l2.spec = func(j trace.Job) *jobspec.Jobspec {
			if cfg.Chaos.Malformed(j.ID) {
				return cfg.Chaos.MalformedSpec(j.ID)
			}
			return j.Jobspec()
		}
	}
	if cfg.MTBF > 0 {
		// Re-attach a fresh injector; pending node events were restored
		// from the checkpoint and future delays are pure functions of
		// (seed, node, time), so the fault timeline replays exactly.
		inj := newInjector(s2, cfg.FaultSeed, cfg.MTBF, cfg.MTTR)
		inj.more = func() bool { return l2.i < len(l2.jobs) || s2.Unfinished() > 0 }
	}
	if err := l2.drive(nil); err != nil {
		return false, err
	}

	a, b := orig.Jobs(), s2.Jobs()
	if len(a) != len(b) {
		fmt.Fprintf(out, "drill: job count %d vs %d\n", len(a), len(b))
		return false, nil
	}
	ok := true
	for id, ja := range a {
		jb, exists := b[id]
		if !exists {
			fmt.Fprintf(out, "drill: job %d missing after resume\n", id)
			ok = false
			continue
		}
		if ja.State != jb.State || ja.StartAt != jb.StartAt || ja.EndAt != jb.EndAt {
			fmt.Fprintf(out, "drill: job %d diverged: %v@[%d,%d] vs %v@[%d,%d]\n",
				id, ja.State, ja.StartAt, ja.EndAt, jb.State, jb.StartAt, jb.EndAt)
			ok = false
		}
	}
	ma, mb := orig.Metrics(), s2.Metrics()
	if ma.Requeues != mb.Requeues || ma.LostCoreSeconds != mb.LostCoreSeconds || ma.Failed != mb.Failed {
		fmt.Fprintf(out, "drill: metrics diverged: %s vs %s\n", ma, mb)
		ok = false
	}
	return ok, nil
}

func printTimeline(out io.Writer, s interface {
	Job(int64) (*sched.Job, bool)
}, jobs []trace.Job) {
	ids := make([]int64, 0, len(jobs))
	for _, j := range jobs {
		ids = append(ids, j.ID)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	fmt.Fprintf(out, "%6s %8s %10s %10s %10s %8s %s\n", "job", "nodes", "submit", "start", "end", "wait", "state")
	for _, id := range ids {
		job, ok := s.Job(id)
		if !ok {
			continue
		}
		nodes := int64(0)
		if job.Alloc != nil {
			nodes = int64(len(job.Alloc.Nodes()))
		}
		wait := job.StartAt - job.Submit
		if job.State != sched.StateCompleted && job.State != sched.StateRunning {
			wait = 0
		}
		fmt.Fprintf(out, "%6d %8d %10d %10d %10d %8d %s\n",
			id, nodes, job.Submit, job.StartAt, job.EndAt, wait, job.State)
	}
}
