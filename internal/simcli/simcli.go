// Package simcli implements the fluxion-sim driver: it replays a job
// trace through the queuing scheduler on a GRUG-generated system and
// reports the per-job timeline plus run metrics. It is the command-line
// face of internal/sched, factored out of cmd/fluxion-sim for testing.
package simcli

import (
	"fmt"
	"io"
	"sort"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/trace"
	"fluxion/internal/traverser"
)

// Config parameterizes one simulation run.
type Config struct {
	Recipe      *grug.Recipe
	PruneSpec   resgraph.PruneSpec
	MatchPolicy string
	QueuePolicy sched.QueuePolicy
	// QueueDepth bounds how many pending jobs each scheduling cycle
	// plans (0 = unbounded).
	QueueDepth int
	// Timeline prints one line per job when true.
	Timeline bool
	// MaxSteps bounds the event loop (0 = drain completely).
	MaxSteps int
}

// Result carries the outcome for programmatic callers.
type Result struct {
	Completed int
	Metrics   sched.Metrics
	Scheduler *sched.Scheduler
}

// Run replays the trace and writes a report to out.
func Run(cfg Config, jobs []trace.Job, out io.Writer) (*Result, error) {
	if cfg.Recipe == nil {
		return nil, fmt.Errorf("simcli: recipe is required")
	}
	spec := cfg.PruneSpec
	if spec == nil {
		spec = resgraph.PruneSpec{resgraph.ALL: {"core", "node"}}
	}
	g, err := grug.BuildGraph(cfg.Recipe, 0, 1<<40, spec)
	if err != nil {
		return nil, err
	}
	policy, err := match.Lookup(cfg.MatchPolicy)
	if err != nil {
		return nil, err
	}
	tr, err := traverser.New(g, policy)
	if err != nil {
		return nil, err
	}
	qp := cfg.QueuePolicy
	if qp == "" {
		qp = sched.Conservative
	}
	var sopts []sched.SchedOption
	if cfg.QueueDepth > 0 {
		sopts = append(sopts, sched.WithQueueDepth(cfg.QueueDepth))
	}
	s, err := sched.New(tr, qp, sopts...)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(out, "system: %s\n", g.Stats())
	fmt.Fprintf(out, "policies: match=%s queue=%s; %d jobs\n", policy.Name(), qp, len(jobs))

	// Jobs are submitted at their trace submit times: arrivals and
	// completions interleave as discrete events.
	start := time.Now()
	i := 0
	steps := 0
	for i < len(jobs) || s.HasEvents() {
		if i < len(jobs) && jobs[i].Submit <= s.Now() {
			// Submit everything due and re-plan the queue.
			for i < len(jobs) && jobs[i].Submit <= s.Now() {
				if _, err := s.SubmitPriority(jobs[i].ID, jobs[i].Jobspec(), jobs[i].Priority); err != nil {
					fmt.Fprintf(out, "job %d rejected: %v\n", jobs[i].ID, err)
				}
				i++
			}
			s.Schedule()
			continue
		}
		// Next event: the earlier of the next arrival and the next
		// completion.
		if i < len(jobs) && (!s.HasEvents() || jobs[i].Submit < s.NextEventAt()) {
			if err := s.AdvanceTo(jobs[i].Submit); err != nil {
				return nil, err
			}
			continue
		}
		if !s.Step() {
			break
		}
		steps++
		if cfg.MaxSteps > 0 && steps >= cfg.MaxSteps {
			break
		}
	}
	wall := time.Since(start)

	if cfg.Timeline {
		printTimeline(out, s, jobs)
	}
	m := s.Metrics()
	fmt.Fprintf(out, "metrics: %s\n", m)
	fmt.Fprintf(out, "wall: %v for %d scheduling cycles\n", wall.Round(time.Millisecond), s.Cycles)
	return &Result{Completed: m.Completed, Metrics: m, Scheduler: s}, nil
}

func printTimeline(out io.Writer, s *sched.Scheduler, jobs []trace.Job) {
	ids := make([]int64, 0, len(jobs))
	for _, j := range jobs {
		ids = append(ids, j.ID)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	fmt.Fprintf(out, "%6s %8s %10s %10s %10s %8s %s\n", "job", "nodes", "submit", "start", "end", "wait", "state")
	for _, id := range ids {
		job, ok := s.Job(id)
		if !ok {
			continue
		}
		nodes := int64(0)
		if job.Alloc != nil {
			nodes = int64(len(job.Alloc.Nodes()))
		}
		wait := job.StartAt - job.Submit
		if job.State != sched.StateCompleted && job.State != sched.StateRunning {
			wait = 0
		}
		fmt.Fprintf(out, "%6d %8d %10d %10d %10d %8d %s\n",
			id, nodes, job.Submit, job.StartAt, job.EndAt, wait, job.State)
	}
}
