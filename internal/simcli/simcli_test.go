package simcli

import (
	"bytes"
	"strings"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/sched"
	"fluxion/internal/trace"
)

func smallRecipe() *grug.Recipe { return grug.Small(1, 4, 8, 0, 0) }

func TestRunSnapshotTrace(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 2, Nodes: 2, CoresPerNode: 8, Duration: 50},
		{ID: 3, Nodes: 8, CoresPerNode: 8, Duration: 50}, // unsatisfiable
	}
	var out bytes.Buffer
	res, err := Run(Config{Recipe: smallRecipe(), Timeline: true}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	s := out.String()
	for _, want := range []string{"system:", "metrics:", "completed=2", "unsatisfiable=1", "wall:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The timeline shows job 2 starting at 100 (after job 1 drains).
	j2, _ := res.Scheduler.Job(2)
	if j2.StartAt != 100 {
		t.Fatalf("j2 start = %d", j2.StartAt)
	}
}

func TestRunTimedArrivals(t *testing.T) {
	// Job 2 arrives at t=30 while job 1 runs; job 3 arrives after
	// everything drained (clock must jump forward).
	jobs := []trace.Job{
		{ID: 1, Submit: 0, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 2, Submit: 30, Nodes: 4, CoresPerNode: 8, Duration: 50},
		{ID: 3, Submit: 500, Nodes: 1, CoresPerNode: 8, Duration: 10},
	}
	var out bytes.Buffer
	res, err := Run(Config{Recipe: smallRecipe()}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	j2, _ := res.Scheduler.Job(2)
	if j2.Submit != 30 || j2.StartAt != 100 {
		t.Fatalf("j2 = %+v", j2)
	}
	j3, _ := res.Scheduler.Job(3)
	if j3.Submit != 500 || j3.StartAt != 500 {
		t.Fatalf("j3 = %+v", j3)
	}
}

func TestRunPolicies(t *testing.T) {
	jobs := trace.Synthesize(20, 4, 8, 3)
	for _, qp := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		var out bytes.Buffer
		res, err := Run(Config{Recipe: smallRecipe(), QueuePolicy: qp, MatchPolicy: "low"}, jobs, &out)
		if err != nil {
			t.Fatalf("%s: %v", qp, err)
		}
		if res.Completed != 20 {
			t.Fatalf("%s: completed = %d", qp, res.Completed)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := Run(Config{}, nil, &out); err == nil {
		t.Fatal("missing recipe accepted")
	}
	if _, err := Run(Config{Recipe: smallRecipe(), MatchPolicy: "bogus"}, nil, &out); err == nil {
		t.Fatal("bad match policy accepted")
	}
	if _, err := Run(Config{Recipe: smallRecipe(), QueuePolicy: "bogus"}, nil, &out); err == nil {
		t.Fatal("bad queue policy accepted")
	}
}

func TestMaxSteps(t *testing.T) {
	jobs := trace.Synthesize(30, 4, 8, 5)
	var out bytes.Buffer
	res, err := Run(Config{Recipe: smallRecipe(), MaxSteps: 1}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed >= 30 {
		t.Fatalf("MaxSteps ignored: completed = %d", res.Completed)
	}
}

// TestSoak runs a sizeable trace to completion under queue-depth-limited
// conservative backfilling and checks the invariants a long-lived
// scheduler must keep: everything completes and the store fully drains.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	jobs := trace.Synthesize(300, 32, 16, 99)
	var out bytes.Buffer
	res, err := Run(Config{
		Recipe:      grug.Small(8, 8, 16, 0, 0), // 64 nodes
		QueuePolicy: sched.Conservative,
		MatchPolicy: "first",
		QueueDepth:  16,
	}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 300 {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	m := res.Metrics
	if m.Utilization() <= 0 || m.Makespan <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	// The store drained: every planner is empty again.
	for _, v := range res.Scheduler.Jobs() {
		if v.State != sched.StateCompleted && v.State != sched.StateUnsatisfiable {
			t.Fatalf("job %d stuck in %v", v.ID, v.State)
		}
	}
}
