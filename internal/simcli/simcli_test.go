package simcli

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"fluxion/internal/chaos"
	"fluxion/internal/grug"
	"fluxion/internal/sched"
	"fluxion/internal/trace"
)

func smallRecipe() *grug.Recipe { return grug.Small(1, 4, 8, 0, 0) }

func TestRunSnapshotTrace(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 2, Nodes: 2, CoresPerNode: 8, Duration: 50},
		{ID: 3, Nodes: 8, CoresPerNode: 8, Duration: 50}, // unsatisfiable
	}
	var out bytes.Buffer
	res, err := Run(Config{Recipe: smallRecipe(), Timeline: true}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	s := out.String()
	for _, want := range []string{"system:", "metrics:", "completed=2", "unsatisfiable=1", "wall:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The timeline shows job 2 starting at 100 (after job 1 drains).
	j2, _ := res.Scheduler.Job(2)
	if j2.StartAt != 100 {
		t.Fatalf("j2 start = %d", j2.StartAt)
	}
}

func TestRunTimedArrivals(t *testing.T) {
	// Job 2 arrives at t=30 while job 1 runs; job 3 arrives after
	// everything drained (clock must jump forward).
	jobs := []trace.Job{
		{ID: 1, Submit: 0, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 2, Submit: 30, Nodes: 4, CoresPerNode: 8, Duration: 50},
		{ID: 3, Submit: 500, Nodes: 1, CoresPerNode: 8, Duration: 10},
	}
	var out bytes.Buffer
	res, err := Run(Config{Recipe: smallRecipe()}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	j2, _ := res.Scheduler.Job(2)
	if j2.Submit != 30 || j2.StartAt != 100 {
		t.Fatalf("j2 = %+v", j2)
	}
	j3, _ := res.Scheduler.Job(3)
	if j3.Submit != 500 || j3.StartAt != 500 {
		t.Fatalf("j3 = %+v", j3)
	}
}

func TestRunPolicies(t *testing.T) {
	jobs := trace.Synthesize(20, 4, 8, 3)
	for _, qp := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		var out bytes.Buffer
		res, err := Run(Config{Recipe: smallRecipe(), QueuePolicy: qp, MatchPolicy: "low"}, jobs, &out)
		if err != nil {
			t.Fatalf("%s: %v", qp, err)
		}
		if res.Completed != 20 {
			t.Fatalf("%s: completed = %d", qp, res.Completed)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := Run(Config{}, nil, &out); err == nil {
		t.Fatal("missing recipe accepted")
	}
	if _, err := Run(Config{Recipe: smallRecipe(), MatchPolicy: "bogus"}, nil, &out); err == nil {
		t.Fatal("bad match policy accepted")
	}
	if _, err := Run(Config{Recipe: smallRecipe(), QueuePolicy: "bogus"}, nil, &out); err == nil {
		t.Fatal("bad queue policy accepted")
	}
}

func TestMaxSteps(t *testing.T) {
	jobs := trace.Synthesize(30, 4, 8, 5)
	var out bytes.Buffer
	res, err := Run(Config{Recipe: smallRecipe(), MaxSteps: 1}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed >= 30 {
		t.Fatalf("MaxSteps ignored: completed = %d", res.Completed)
	}
}

// TestSoak runs a sizeable trace to completion under queue-depth-limited
// conservative backfilling and checks the invariants a long-lived
// scheduler must keep: everything completes and the store fully drains.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	jobs := trace.Synthesize(300, 32, 16, 99)
	var out bytes.Buffer
	res, err := Run(Config{
		Recipe:      grug.Small(8, 8, 16, 0, 0), // 64 nodes
		QueuePolicy: sched.Conservative,
		MatchPolicy: "first",
		QueueDepth:  16,
	}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 300 {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	m := res.Metrics
	if m.Utilization() <= 0 || m.Makespan <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	// The store drained: every planner is empty again.
	for _, v := range res.Scheduler.Jobs() {
		if v.State != sched.StateCompleted && v.State != sched.StateUnsatisfiable {
			t.Fatalf("job %d stuck in %v", v.ID, v.State)
		}
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Submit: 0, Nodes: 2, CoresPerNode: 8, Duration: 400},
		{ID: 2, Submit: 10, Nodes: 1, CoresPerNode: 8, Duration: 300},
		{ID: 3, Submit: 20, Nodes: 1, CoresPerNode: 8, Duration: 200},
	}
	run := func() (*Result, string) {
		var out bytes.Buffer
		res, err := Run(Config{
			Recipe: smallRecipe(), MTBF: 150, MTTR: 40, FaultSeed: 7,
		}, jobs, &out)
		if err != nil {
			t.Fatal(err)
		}
		return res, out.String()
	}
	// terminalLog digests the simulated outcome (wall-clock lines vary
	// run to run and are excluded).
	terminalLog := func(res *Result) string {
		var b strings.Builder
		m := res.Metrics
		fmt.Fprintf(&b, "requeues=%d lost=%d failed=%d completed=%d\n",
			m.Requeues, m.LostCoreSeconds, m.Failed, m.Completed)
		for _, j := range jobs {
			job, ok := res.Scheduler.Job(j.ID)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "job %d: %v [%d,%d] retries=%d\n",
				j.ID, job.State, job.StartAt, job.EndAt, job.Retries)
		}
		return b.String()
	}
	resA, outA := run()
	resB, _ := run()
	if a, b := terminalLog(resA), terminalLog(resB); a != b {
		t.Fatalf("fault runs diverged:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(outA, "faults: seed=7 mtbf=150s mttr=40s over 4 nodes") {
		t.Fatalf("missing fault banner:\n%s", outA)
	}
	if !strings.Contains(outA, "faults injected: downs=") {
		t.Fatalf("missing fault summary:\n%s", outA)
	}
	// A different seed must produce a different fault timeline. (Seeds 7
	// and 8 were checked to differ for this configuration.)
	res2, err := Run(Config{
		Recipe: smallRecipe(), MTBF: 150, MTTR: 40, FaultSeed: 8,
	}, jobs, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if terminalLog(res2) == terminalLog(resA) {
		t.Fatal("seed change did not alter the fault timeline")
	}
}

func TestFaultInjectionRequeuesAndCompletes(t *testing.T) {
	// One long job on a 4-node system with frequent faults: the run must
	// terminate and report failure costs in the metrics.
	jobs := []trace.Job{
		{ID: 1, Nodes: 1, CoresPerNode: 8, Duration: 500},
		{ID: 2, Nodes: 1, CoresPerNode: 8, Duration: 500},
	}
	var out bytes.Buffer
	res, err := Run(Config{
		Recipe: smallRecipe(), MTBF: 200, MTTR: 50, FaultSeed: 3, MaxRetries: 10,
	}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Completed+m.Failed != 2 {
		t.Fatalf("completed=%d failed=%d\n%s", m.Completed, m.Failed, out.String())
	}
	if m.Requeues > 0 && m.LostCoreSeconds <= 0 {
		t.Fatalf("requeues=%d but lostCoreSec=%d", m.Requeues, m.LostCoreSeconds)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	if _, err := Run(Config{Recipe: smallRecipe(), MTBF: 100}, nil, io.Discard); err == nil {
		t.Fatal("MTBF without MTTR accepted")
	}
	if _, err := Run(Config{Recipe: smallRecipe(), MTTR: 100}, nil, io.Discard); err == nil {
		t.Fatal("MTTR without MTBF accepted")
	}
}

func TestDrillConvergesWithoutFaults(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Submit: 0, Nodes: 2, CoresPerNode: 8, Duration: 100},
		{ID: 2, Submit: 10, Nodes: 2, CoresPerNode: 8, Duration: 80},
		{ID: 3, Submit: 20, Nodes: 4, CoresPerNode: 8, Duration: 50},
		{ID: 4, Submit: 150, Nodes: 1, CoresPerNode: 8, Duration: 40},
	}
	var out bytes.Buffer
	res, err := Run(Config{Recipe: smallRecipe(), Drill: true}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DrillRan {
		t.Fatalf("drill did not run:\n%s", out.String())
	}
	if !res.DrillOK {
		t.Fatalf("drill failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drill: PASS") {
		t.Fatalf("missing drill verdict:\n%s", out.String())
	}
}

func TestDrillConvergesUnderFaults(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Submit: 0, Nodes: 2, CoresPerNode: 8, Duration: 300},
		{ID: 2, Submit: 10, Nodes: 1, CoresPerNode: 8, Duration: 250},
		{ID: 3, Submit: 20, Nodes: 1, CoresPerNode: 8, Duration: 200},
		{ID: 4, Submit: 100, Nodes: 2, CoresPerNode: 8, Duration: 100},
	}
	var out bytes.Buffer
	res, err := Run(Config{
		Recipe: smallRecipe(), Drill: true,
		MTBF: 180, MTTR: 30, FaultSeed: 11, MaxRetries: 20,
	}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DrillRan || !res.DrillOK {
		t.Fatalf("drill under faults: ran=%v ok=%v\n%s", res.DrillRan, res.DrillOK, out.String())
	}
}

// TestMatchWorkersDecisionParity replays the same workload with the
// sequential loop and the 4-worker pipeline: every per-job scheduling
// decision (state, start, end) and the aggregate metrics must agree.
func TestMatchWorkersDecisionParity(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 2, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 3, Nodes: 2, CoresPerNode: 8, Duration: 40},
		{ID: 4, Nodes: 1, CoresPerNode: 8, Duration: 30},
		{ID: 5, Nodes: 1, CoresPerNode: 8, Duration: 200},
		{ID: 6, Nodes: 2, CoresPerNode: 8, Duration: 60},
	}
	for _, policy := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		var seqOut, parOut bytes.Buffer
		seq, err := Run(Config{Recipe: smallRecipe(), QueuePolicy: policy}, jobs, &seqOut)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(Config{Recipe: smallRecipe(), QueuePolicy: policy, MatchWorkers: 4}, jobs, &parOut)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Completed != par.Completed {
			t.Fatalf("%v: completed %d vs %d", policy, seq.Completed, par.Completed)
		}
		for _, j := range jobs {
			sj, _ := seq.Scheduler.Job(j.ID)
			pj, _ := par.Scheduler.Job(j.ID)
			if sj.State != pj.State || sj.StartAt != pj.StartAt || sj.EndAt != pj.EndAt {
				t.Errorf("%v: job %d diverged: %v@[%d,%d] vs %v@[%d,%d]",
					policy, j.ID, sj.State, sj.StartAt, sj.EndAt, pj.State, pj.StartAt, pj.EndAt)
			}
		}
		if !strings.Contains(parOut.String(), "match workers: 4") {
			t.Errorf("%v: banner missing from parallel run:\n%s", policy, parOut.String())
		}
	}
}

// TestDrillRejectsParallelWorkers: the drill asserts bit-exact
// convergence, which the parallel pipeline does not guarantee at the
// placement level, so the combination must be refused up front.
func TestDrillRejectsParallelWorkers(t *testing.T) {
	jobs := []trace.Job{{ID: 1, Nodes: 1, CoresPerNode: 8, Duration: 10}}
	_, err := Run(Config{Recipe: smallRecipe(), Drill: true, MatchWorkers: 4}, jobs, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "sequential matching") {
		t.Fatalf("err = %v, want sequential-matching rejection", err)
	}
}

func TestRunSharded(t *testing.T) {
	// Four single-rack shards; job sizes stay within one rack so every
	// job is routable and both arms drain completely.
	jobs := []trace.Job{
		{ID: 1, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 2, Nodes: 2, CoresPerNode: 8, Duration: 50},
		{ID: 3, Nodes: 4, CoresPerNode: 8, Duration: 80},
		{ID: 4, Submit: 30, Nodes: 1, CoresPerNode: 8, Duration: 20},
		{ID: 5, Submit: 60, Nodes: 2, CoresPerNode: 8, Duration: 40},
	}
	var out bytes.Buffer
	res, err := Run(Config{Recipe: grug.Small(4, 4, 8, 0, 0), Shards: 4, Timeline: true}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	if res.Sharded == nil || res.Scheduler != nil {
		t.Fatalf("sharded run returned scheduler=%v sharded=%v", res.Scheduler, res.Sharded)
	}
	s := out.String()
	for _, want := range []string{"shards: 4 cut=rack", "metrics:", "router: routed=5", "sched:", "wall:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if got := res.Sharded.Counts()[sched.StateCompleted]; got != len(jobs) {
		t.Fatalf("counts completed = %d", got)
	}
	if res.Sharded.Unfinished() != 0 {
		t.Fatalf("unfinished = %d", res.Sharded.Unfinished())
	}
}

func TestRunShardedRejectsFlatOnlyFeatures(t *testing.T) {
	base := Config{Recipe: grug.Small(4, 4, 8, 0, 0), Shards: 2}
	for name, mutate := range map[string]func(*Config){
		"wal":   func(c *Config) { c.WALDir = t.TempDir() },
		"drill": func(c *Config) { c.Drill = true },
		"fault": func(c *Config) { c.MTBF = 1000; c.MTTR = 10 },
		"chaos": func(c *Config) { c.Chaos = &chaos.Plan{Seed: 1, PanicFrac: 0.5} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg, []trace.Job{{ID: 1, Nodes: 1, CoresPerNode: 8, Duration: 10}}, io.Discard); err == nil {
			t.Errorf("%s: sharded run accepted a flat-only feature", name)
		}
	}
}

func TestRunShardedShardChaos(t *testing.T) {
	jobs := []trace.Job{
		{ID: 1, Nodes: 4, CoresPerNode: 8, Duration: 100},
		{ID: 2, Nodes: 2, CoresPerNode: 8, Duration: 50},
		{ID: 3, Nodes: 4, CoresPerNode: 8, Duration: 80},
		{ID: 4, Nodes: 1, CoresPerNode: 8, Duration: 20},
		{ID: 5, Nodes: 2, CoresPerNode: 8, Duration: 40},
	}
	// Seed 1 at 0.25 kills shard 3's cycles; the open-from-zero window
	// trips it on the very first scheduling round, so supervision is
	// provably live even in a short drain.
	plan := &chaos.Plan{Seed: 1, ShardKillFrac: 0.25}
	var out bytes.Buffer
	res, err := Run(Config{Recipe: grug.Small(4, 4, 8, 0, 0), Shards: 4, Chaos: plan}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed = %d\n%s", res.Completed, out.String())
	}
	if !res.Sharded.Supervised() {
		t.Fatal("shard chaos must auto-enable the supervisor")
	}
	s := out.String()
	for _, want := range []string{"mode=supervised", "supervisor: trips=", "-> suspect"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}

	// The dry twin ignores the plan: no hook, no supervisor, and the
	// schedule matches a plan-free run of the same trace.
	out.Reset()
	dry, err := Run(Config{Recipe: grug.Small(4, 4, 8, 0, 0), Shards: 4, Chaos: plan, ChaosDry: true}, jobs, &out)
	if err != nil {
		t.Fatal(err)
	}
	if dry.Sharded.Supervised() {
		t.Fatal("dry twin must not enable the supervisor")
	}
	if !strings.Contains(out.String(), "mode=dry") {
		t.Errorf("dry twin output missing mode=dry:\n%s", out.String())
	}
	for _, j := range jobs {
		cj, _ := res.Sharded.Job(j.ID)
		dj, _ := dry.Sharded.Job(j.ID)
		if cj.State != dj.State {
			t.Errorf("job %d: chaos state %v, dry state %v", j.ID, cj.State, dj.State)
		}
	}
}

func TestFlatRejectsShardChaos(t *testing.T) {
	cfg := Config{Recipe: smallRecipe(), Chaos: &chaos.Plan{Seed: 1, ShardKillFrac: 0.5}}
	if _, err := Run(cfg, []trace.Job{{ID: 1, Nodes: 1, CoresPerNode: 8, Duration: 10}}, io.Discard); err == nil {
		t.Fatal("flat run accepted a shard chaos plan")
	}
}
