package simcli

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
)

// injector drives per-node failure/repair events with exponentially
// distributed inter-arrival times. It is stateless by construction: every
// delay is a pure hash of (seed, node path, event time), so a scheduler
// resumed from a checkpoint — whose pending node events travel inside the
// scheduler checkpoint — replays the exact same fault timeline with a
// freshly attached injector. No RNG stream state exists to save.
type injector struct {
	s          *sched.Scheduler
	seed       int64
	mtbf, mttr int64 // mean seconds between failures / to repair
	// more reports whether the run still has work (queued arrivals or
	// unfinished jobs); failures stop being injected once it goes false
	// so the event loop terminates.
	more func() bool
	// downs/ups count injected events, for reporting only.
	downs, ups int
}

const (
	saltFail   = 0x6661696c // "fail"
	saltRepair = 0x72657072 // "repr"
)

// newInjector wires an injector into the scheduler's resource-event hook.
// Callers on a fresh run must also call start() to schedule each node's
// first failure; resumed runs must not (pending events were restored from
// the checkpoint).
func newInjector(s *sched.Scheduler, seed, mtbf, mttr int64) *injector {
	inj := &injector{s: s, seed: seed, mtbf: mtbf, mttr: mttr}
	s.SetResourceEventHook(inj.observe)
	return inj
}

// start schedules the initial failure for every node, in sorted path order
// for determinism.
func (inj *injector) start(g *resgraph.Graph) error {
	nodes := g.ByType("node")
	if len(nodes) == 0 {
		return fmt.Errorf("simcli: fault injection requires node vertices")
	}
	paths := make([]string, 0, len(nodes))
	for _, v := range nodes {
		paths = append(paths, v.Path())
	}
	sort.Strings(paths)
	for _, p := range paths {
		at := inj.s.Now() + inj.delay(p, inj.s.Now(), saltFail, inj.mtbf)
		if err := inj.s.ScheduleNodeDown(at, p); err != nil {
			return err
		}
	}
	return nil
}

// observe is the scheduler's resource-event hook: a failure schedules its
// repair, a repair schedules the node's next failure while work remains.
func (inj *injector) observe(at int64, path string, down bool) {
	if down {
		inj.downs++
		_ = inj.s.ScheduleNodeUp(at+inj.delay(path, at, saltRepair, inj.mttr), path)
		return
	}
	inj.ups++
	if inj.more != nil && !inj.more() {
		return
	}
	_ = inj.s.ScheduleNodeDown(at+inj.delay(path, at, saltFail, inj.mtbf), path)
}

// delay draws an exponential delay with the given mean, deterministically
// from (seed, path, at, salt). Delays are whole seconds, at least 1.
func (inj *injector) delay(path string, at int64, salt uint64, mean int64) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	x := mix(uint64(inj.seed) ^ h.Sum64() ^ uint64(at)*0x9e3779b97f4a7c15 ^ salt)
	// 53 high bits → uniform u in (0, 1]; -mean·ln(u) is exponential.
	u := (float64(x>>11) + 1) / (1 << 53)
	d := int64(math.Round(-float64(mean) * math.Log(u)))
	if d < 1 {
		d = 1
	}
	return d
}

// mix is the splitmix64 finalizer: a high-quality 64-bit avalanche.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
