package simcli

import (
	"fmt"
	"io"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/shard"
	"fluxion/internal/trace"
)

// runSharded replays the trace through the partitioned scheduler: the
// same looper drives the sharded router's lockstep event loop instead of
// a flat scheduler. Reporting mirrors the flat run — plus the router's
// placement counters — so decision/metric lines diff cleanly between
// `-shards 1` and `-shards N` runs of the same trace.
func runSharded(cfg Config, jobs []trace.Job, out io.Writer) (*Result, error) {
	switch {
	case cfg.WALDir != "":
		return nil, fmt.Errorf("simcli: sharded runs are WAL-free (drop -wal-dir or -shards)")
	case cfg.Drill:
		return nil, fmt.Errorf("simcli: the crash-recovery drill requires a flat scheduler (drop -drill or -shards)")
	case cfg.MTBF > 0 || cfg.MTTR > 0:
		return nil, fmt.Errorf("simcli: fault injection requires a flat scheduler (drop -mtbf/-mttr or -shards)")
	case cfg.Chaos.Active() || (cfg.Chaos != nil && cfg.Chaos.Storage != nil):
		return nil, fmt.Errorf("simcli: job-level and storage chaos require a flat scheduler (drop chaos flags or -shards)")
	}
	// Shard-level chaos is a sharded-run feature: the plan's kill/stall
	// hook feeds the supervisor's cycle fences. A dry run ignores the
	// plan — the clean twin a chaos run's surviving jobs are diffed
	// against.
	plan := cfg.Chaos
	shardChaos := plan.ShardActive() && !cfg.ChaosDry
	sup := cfg.ShardSupervisor
	if shardChaos && sup == nil {
		sup = &shard.SupervisorConfig{}
	}
	spec := cfg.PruneSpec
	if spec == nil {
		spec = resgraph.PruneSpec{resgraph.ALL: {"core", "node"}}
	}
	qp := cfg.QueuePolicy
	if qp == "" {
		qp = sched.Conservative
	}
	var sopts []sched.SchedOption
	if cfg.QueueDepth > 0 {
		sopts = append(sopts, sched.WithQueueDepth(cfg.QueueDepth))
	}
	if cfg.MaxRetries > 0 {
		sopts = append(sopts, sched.WithMaxRetries(cfg.MaxRetries))
	}
	if cfg.MatchWorkers > 1 {
		sopts = append(sopts, sched.WithMatchWorkers(cfg.MatchWorkers))
	}
	sopts = append(sopts, sched.WithIncremental(!cfg.FullRequeue))

	g, err := grug.BuildGraph(cfg.Recipe, 0, simHorizon, spec)
	if err != nil {
		return nil, err
	}
	cut := cfg.ShardCut
	if cut == "" {
		cut = shard.DefaultCutType
	}
	sh, err := shard.New(shard.Config{
		Graph:       g,
		Shards:      cfg.Shards,
		CutType:     cut,
		MatchPolicy: cfg.MatchPolicy,
		Queue:       qp,
		SchedOpts:   sopts,
		Defense:     cfg.Defense,
		Supervisor:  sup,
	})
	if err != nil {
		return nil, err
	}
	if shardChaos {
		sh.SetCycleHook(plan.ShardHook())
	}

	mp := cfg.MatchPolicy
	if mp == "" {
		mp = "first"
	}
	engine := "incremental"
	if cfg.FullRequeue {
		engine = "full-requeue"
	}
	fmt.Fprintf(out, "system: %s\n", g.Stats())
	fmt.Fprintf(out, "policies: match=%s queue=%s engine=%s; %d jobs\n", mp, qp, engine, len(jobs))
	fmt.Fprintf(out, "shards: %d cut=%s\n", cfg.Shards, cut)
	if cfg.MatchWorkers > 1 {
		fmt.Fprintf(out, "match workers: %d per shard (parallel match pipeline)\n", cfg.MatchWorkers)
	}
	if plan.ShardActive() {
		mode := "supervised"
		if cfg.ChaosDry {
			mode = "dry (supervision-free clean twin)"
		}
		fmt.Fprintf(out, "chaos: %s mode=%s\n", plan, mode)
	}

	l := &looper{s: sh, jobs: jobs, out: out, max: cfg.MaxSteps}
	start := time.Now()
	if err := l.drive(nil); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	if cfg.Timeline {
		printTimeline(out, sh, jobs)
	}
	m := sh.Metrics()
	fmt.Fprintf(out, "metrics: %s\n", m)
	rs := sh.RouterStats()
	fmt.Fprintf(out, "router: routed=%d rerouted=%d steals=%d unroutable=%d\n",
		rs.Routed, rs.Rerouted, rs.Steals, rs.Unroutable)
	if sh.Supervised() {
		sst := sh.SupervisorStats()
		fmt.Fprintf(out, "supervisor: trips=%d deadline-misses=%d failures=%d recoveries=%d drained=%d evicted=%d lost=%d\n",
			sst.Trips, sst.DeadlineMisses, sst.Failures, sst.Recoveries, sst.Drained, sst.Evicted, sst.Lost)
		for _, ev := range sh.HealthEvents() {
			fmt.Fprintf(out, "supervisor event: %s\n", ev)
		}
	}
	ss := sh.Stats()
	fmt.Fprintf(out, "sched: %d cycles, %d match attempts, %d woken, %d skipped\n",
		ss.Cycles, ss.MatchAttempts, ss.WokenJobs, ss.SkippedJobs)
	fmt.Fprintf(out, "wall: %v for %d scheduling cycles\n", wall.Round(time.Millisecond), sh.Cycles())

	return &Result{Completed: m.Completed, Metrics: m, Sharded: sh}, nil
}
