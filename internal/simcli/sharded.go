package simcli

import (
	"fmt"
	"io"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/shard"
	"fluxion/internal/trace"
)

// runSharded replays the trace through the partitioned scheduler: the
// same looper drives the sharded router's lockstep event loop instead of
// a flat scheduler. Reporting mirrors the flat run — plus the router's
// placement counters — so decision/metric lines diff cleanly between
// `-shards 1` and `-shards N` runs of the same trace.
func runSharded(cfg Config, jobs []trace.Job, out io.Writer) (*Result, error) {
	switch {
	case cfg.WALDir != "":
		return nil, fmt.Errorf("simcli: sharded runs are WAL-free (drop -wal-dir or -shards)")
	case cfg.Drill:
		return nil, fmt.Errorf("simcli: the crash-recovery drill requires a flat scheduler (drop -drill or -shards)")
	case cfg.MTBF > 0 || cfg.MTTR > 0:
		return nil, fmt.Errorf("simcli: fault injection requires a flat scheduler (drop -mtbf/-mttr or -shards)")
	case cfg.Chaos.Active():
		return nil, fmt.Errorf("simcli: chaos plans require a flat scheduler (drop chaos flags or -shards)")
	}
	spec := cfg.PruneSpec
	if spec == nil {
		spec = resgraph.PruneSpec{resgraph.ALL: {"core", "node"}}
	}
	qp := cfg.QueuePolicy
	if qp == "" {
		qp = sched.Conservative
	}
	var sopts []sched.SchedOption
	if cfg.QueueDepth > 0 {
		sopts = append(sopts, sched.WithQueueDepth(cfg.QueueDepth))
	}
	if cfg.MaxRetries > 0 {
		sopts = append(sopts, sched.WithMaxRetries(cfg.MaxRetries))
	}
	if cfg.MatchWorkers > 1 {
		sopts = append(sopts, sched.WithMatchWorkers(cfg.MatchWorkers))
	}
	sopts = append(sopts, sched.WithIncremental(!cfg.FullRequeue))
	if cfg.Defense != nil {
		sopts = append(sopts, sched.WithDefense(*cfg.Defense))
	}

	g, err := grug.BuildGraph(cfg.Recipe, 0, simHorizon, spec)
	if err != nil {
		return nil, err
	}
	cut := cfg.ShardCut
	if cut == "" {
		cut = shard.DefaultCutType
	}
	sh, err := shard.New(shard.Config{
		Graph:       g,
		Shards:      cfg.Shards,
		CutType:     cut,
		MatchPolicy: cfg.MatchPolicy,
		Queue:       qp,
		SchedOpts:   sopts,
	})
	if err != nil {
		return nil, err
	}

	mp := cfg.MatchPolicy
	if mp == "" {
		mp = "first"
	}
	engine := "incremental"
	if cfg.FullRequeue {
		engine = "full-requeue"
	}
	fmt.Fprintf(out, "system: %s\n", g.Stats())
	fmt.Fprintf(out, "policies: match=%s queue=%s engine=%s; %d jobs\n", mp, qp, engine, len(jobs))
	fmt.Fprintf(out, "shards: %d cut=%s\n", cfg.Shards, cut)
	if cfg.MatchWorkers > 1 {
		fmt.Fprintf(out, "match workers: %d per shard (parallel match pipeline)\n", cfg.MatchWorkers)
	}

	l := &looper{s: sh, jobs: jobs, out: out, max: cfg.MaxSteps}
	start := time.Now()
	if err := l.drive(nil); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	if cfg.Timeline {
		printTimeline(out, sh, jobs)
	}
	m := sh.Metrics()
	fmt.Fprintf(out, "metrics: %s\n", m)
	rs := sh.RouterStats()
	fmt.Fprintf(out, "router: routed=%d rerouted=%d steals=%d unroutable=%d\n",
		rs.Routed, rs.Rerouted, rs.Steals, rs.Unroutable)
	ss := sh.Stats()
	fmt.Fprintf(out, "sched: %d cycles, %d match attempts, %d woken, %d skipped\n",
		ss.Cycles, ss.MatchAttempts, ss.WokenJobs, ss.SkippedJobs)
	fmt.Fprintf(out, "wall: %v for %d scheduling cycles\n", wall.Round(time.Millisecond), sh.Cycles())

	return &Result{Completed: m.Completed, Metrics: m, Sharded: sh}, nil
}
