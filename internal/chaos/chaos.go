// Package chaos unifies the repo's fault sources behind one seeded,
// composable schedule: node MTBF/MTTR faults (internal/simcli's
// injector), storage faults (internal/wal's FaultPlan), and the
// hostile-input faults the scheduler self-defense layer exists for —
// injected match panics, slow-match latency, and malformed-spec
// streams. A Plan is pure data plus pure hash functions: every decision
// ("does job 17 panic?") is a stateless function of (Seed, salt, job
// ID), so the same plan replays identically across runs, across a
// checkpoint resume, and across the defense-free parity baseline.
//
// The parity contract drives the design. Poisoned(id) is the exact set
// of jobs the defenses are expected to reject (malformed specs) or
// quarantine (panicking matches). A chaos run with defenses enabled
// must schedule every job outside that set identically to a clean run
// whose trace was FilterTrace'd — that property test lives in
// parity_test.go and is the tentpole's acceptance gate.
package chaos

import (
	"fmt"
	"time"

	"fluxion/internal/jobspec"
	"fluxion/internal/trace"
	"fluxion/internal/wal"
)

// Hash salts separating the per-job fault streams.
const (
	saltPanic     = 0x70616e63 // "panc"
	saltSlow      = 0x736c6f77 // "slow"
	saltMalformed = 0x6d616c66 // "malf"
	saltShape     = 0x73686170 // "shap"
	saltShardKill = 0x736b696c // "skil"
	saltShardStl  = 0x7373746c // "sstl"
)

// Plan is one seeded chaos schedule. The zero value injects nothing;
// each knob composes independently.
type Plan struct {
	// Seed drives every per-job fault decision.
	Seed int64

	// NodeMTBF/NodeMTTR (mean simulated seconds between node failures /
	// to repair) enable node fault injection when both are positive;
	// drivers feed them to their node-fault injector.
	NodeMTBF int64
	NodeMTTR int64

	// Storage injects WAL faults (write/sync/truncate failures) when
	// non-nil; drivers feed it to durable.Open.
	Storage *wal.FaultPlan

	// PanicFrac is the fraction of jobs whose match attempts panic
	// (injected through the scheduler's match hook).
	PanicFrac float64
	// SlowFrac is the fraction of jobs whose match attempts stall for
	// SlowDelay before dispatching.
	SlowFrac  float64
	SlowDelay time.Duration
	// MalformedFrac is the fraction of jobs submitted with a malformed
	// jobspec instead of their real one.
	MalformedFrac float64

	// ShardKillFrac is the fraction of shards whose scheduling cycles
	// panic while the shard-fault window is open — injected through the
	// sharded supervisor's cycle hook (internal/shard), where the cycle
	// fence converts each panic into a health-state strike.
	ShardKillFrac float64
	// ShardStallFrac is the fraction of shards whose cycles stall for
	// ShardStallDelay inside the window (trips the cycle deadline when
	// the supervisor arms one).
	ShardStallFrac  float64
	ShardStallDelay time.Duration
	// ShardFaultFrom/ShardFaultUntil bound the shard-fault window in
	// simulated seconds. From 0 opens the window at time zero; Until 0
	// leaves it open forever — a closed window lets the supervisor's
	// recovery probes succeed and reabsorb the shard mid-run.
	ShardFaultFrom  int64
	ShardFaultUntil int64
}

// hits decides one per-job fault stream membership: a pure hash of
// (seed, salt, id) compared against the fraction.
func (p *Plan) hits(id int64, salt uint64, frac float64) bool {
	if p == nil || frac <= 0 {
		return false
	}
	x := mix(uint64(p.Seed)*0x9e3779b97f4a7c15 ^ uint64(id)*0xbf58476d1ce4e5b9 ^ salt)
	return float64(x>>11)/(1<<53) < frac
}

// Panics reports whether job id's match attempts panic under this plan.
func (p *Plan) Panics(id int64) bool { return p.hits(id, saltPanic, p.PanicFrac) }

// Slow reports whether job id's match attempts stall under this plan.
func (p *Plan) Slow(id int64) bool { return p.hits(id, saltSlow, p.SlowFrac) }

// Malformed reports whether job id submits a malformed spec.
func (p *Plan) Malformed(id int64) bool { return p.hits(id, saltMalformed, p.MalformedFrac) }

// Poisoned reports whether the defenses are expected to remove job id
// from the schedule — rejected at submit (malformed) or quarantined
// (panicking match). This is the set a defense-free parity baseline
// must filter out. Slow jobs are NOT poisoned: without a match deadline
// they schedule normally, just late.
func (p *Plan) Poisoned(id int64) bool { return p.Panics(id) || p.Malformed(id) }

// Active reports whether the plan injects any job-level fault (the
// signal for drivers to install the match hook and spec substitution).
func (p *Plan) Active() bool {
	return p != nil && (p.PanicFrac > 0 || p.SlowFrac > 0 || p.MalformedFrac > 0)
}

// MatchHook returns the scheduler match-hook injecting this plan's
// panic and latency faults; install it with Scheduler.SetMatchHook. The
// returned hook panics for jobs in the panic stream — the defense
// fence converts that into quarantine.
func (p *Plan) MatchHook() func(jobID int64) {
	return func(jobID int64) {
		if p.Slow(jobID) && p.SlowDelay > 0 {
			time.Sleep(p.SlowDelay)
		}
		if p.Panics(jobID) {
			panic(fmt.Sprintf("chaos: injected match panic (job %d, seed %d)", jobID, p.Seed))
		}
	}
}

// KillsShard reports whether shard idx's cycles panic under this plan
// (while the fault window is open).
func (p *Plan) KillsShard(idx int) bool {
	return p.hits(int64(idx), saltShardKill, p.ShardKillFrac)
}

// StallsShard reports whether shard idx's cycles stall under this plan.
func (p *Plan) StallsShard(idx int) bool {
	return p.hits(int64(idx), saltShardStl, p.ShardStallFrac)
}

// ShardActive reports whether the plan injects shard-level faults (the
// signal for drivers to enable the shard supervisor and install the
// cycle hook).
func (p *Plan) ShardActive() bool {
	return p != nil && (p.ShardKillFrac > 0 || p.ShardStallFrac > 0)
}

// shardWindow reports whether the shard-fault window is open at now.
func (p *Plan) shardWindow(now int64) bool {
	if now < p.ShardFaultFrom {
		return false
	}
	return p.ShardFaultUntil <= 0 || now < p.ShardFaultUntil
}

// ShardHook returns the supervisor cycle hook injecting this plan's
// shard kill/stall faults; install it with Sharded.SetCycleHook. The
// hook runs on whichever goroutine executes the shard's cycle and is a
// pure function of (plan, shard, now), so concurrent shards and
// repeated runs see identical faults.
func (p *Plan) ShardHook() func(shard int, now int64) {
	return func(shard int, now int64) {
		if !p.shardWindow(now) {
			return
		}
		if p.StallsShard(shard) && p.ShardStallDelay > 0 {
			time.Sleep(p.ShardStallDelay)
		}
		if p.KillsShard(shard) {
			panic(fmt.Sprintf("chaos: injected shard kill (shard %d, seed %d)", shard, p.Seed))
		}
	}
}

// MalformedSpec deterministically picks one malformed jobspec shape for
// job id — the hostile-input corpus the submit validator must reject.
// The shapes cover every rejection class: zero and negative counts,
// min above count, unknown resource types, empty type names, slot
// violations, an empty resource section, and depth-bomb nesting.
func (p *Plan) MalformedSpec(id int64) *jobspec.Jobspec {
	switch mix(uint64(p.Seed)^uint64(id)*0x94d049bb133111eb^saltShape) % 8 {
	case 0: // zero unit count
		return jobspec.New(60, jobspec.R("node", 0, jobspec.R("core", 1)))
	case 1: // negative unit count
		return jobspec.New(60, jobspec.R("node", 1, jobspec.R("core", -4)))
	case 2: // unknown resource type
		return jobspec.New(60, jobspec.R("node", 1, jobspec.R("quantum-fpga", 2)))
	case 3: // moldable min above max
		return jobspec.New(60, jobspec.Moldable("node", 8, 2, jobspec.R("core", 1)))
	case 4: // slot without a contained shape
		return jobspec.New(60, jobspec.R("node", 1, jobspec.SlotR(1)))
	case 5: // nested slot
		return jobspec.New(60, jobspec.SlotR(1, jobspec.SlotR(1, jobspec.R("core", 1))))
	case 6: // empty resource section
		return jobspec.New(60)
	default: // cycle-inducing nesting depth
		return DeepSpec(jobspec.MaxNestingDepth + 8)
	}
}

// DeepSpec builds a request nested depth levels — past
// jobspec.MaxNestingDepth it stands in for a cyclic request graph,
// which the depth cap must reject rather than recurse into forever.
func DeepSpec(depth int) *jobspec.Jobspec {
	r := jobspec.R("core", 1)
	for i := 1; i < depth; i++ {
		r = jobspec.R("node", 1, r)
	}
	return jobspec.New(60, r)
}

// FilterTrace returns jobs with this plan's poisoned set removed — the
// trace a defense-free parity baseline runs.
func (p *Plan) FilterTrace(jobs []trace.Job) []trace.Job {
	out := make([]trace.Job, 0, len(jobs))
	for _, j := range jobs {
		if !p.Poisoned(j.ID) {
			out = append(out, j)
		}
	}
	return out
}

// String summarizes the plan for run reports.
func (p *Plan) String() string {
	s := fmt.Sprintf("seed=%d panics=%.2f slow=%.2f/%s malformed=%.2f",
		p.Seed, p.PanicFrac, p.SlowFrac, p.SlowDelay, p.MalformedFrac)
	if p.ShardActive() {
		s += fmt.Sprintf(" shard-kill=%.2f shard-stall=%.2f/%s window=[%d,%d)",
			p.ShardKillFrac, p.ShardStallFrac, p.ShardStallDelay,
			p.ShardFaultFrom, p.ShardFaultUntil)
	}
	return s
}

// mix is the splitmix64 finalizer: a high-quality 64-bit avalanche.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
