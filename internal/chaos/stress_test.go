package chaos_test

import (
	"errors"
	"testing"
	"time"

	"fluxion/internal/chaos"
	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/trace"
	"fluxion/internal/traverser"
)

// TestChaosStress fires a seeded chaos schedule at a parallel-matching
// scheduler with every defense armed — run with -race. Injected panics
// ride speculation workers, slow matches trip the cycle watchdog, and
// malformed specs hammer the validator. Afterward: every job must be in
// a terminal state, every vertex planner and pruning filter must pass
// CheckInvariants (a quarantined job that leaked partial claims would
// fail here), and the degradation ladder must fully re-arm once the
// pressure clears.
func TestChaosStress(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(2, 4, 8, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(tr, sched.Conservative,
		sched.WithMatchWorkers(8),
		sched.WithDefense(sched.DefenseConfig{
			CycleDeadline: 100 * time.Microsecond,
			ConflictLimit: 8,
			AdmitHigh:     256,
		}))
	if err != nil {
		t.Fatal(err)
	}
	plan := &chaos.Plan{
		Seed:          42,
		PanicFrac:     0.20,
		SlowFrac:      0.30,
		SlowDelay:     500 * time.Microsecond,
		MalformedFrac: 0.10,
	}
	s.SetMatchHook(plan.MatchHook())

	jobs := trace.Synthesize(150, 4, 8, 9)
	submitted := map[int64]bool{}
	for i, j := range jobs {
		spec := j.Jobspec()
		if plan.Malformed(j.ID) {
			spec = plan.MalformedSpec(j.ID)
		}
		if _, err := s.Submit(j.ID, spec); err != nil {
			if !errors.Is(err, sched.ErrInvalidSpec) && !errors.Is(err, sched.ErrOverload) {
				t.Fatalf("job %d: untyped submit error: %v", j.ID, err)
			}
			continue
		}
		submitted[j.ID] = true
		// Interleave cycles and event steps with arrivals so quarantine,
		// degradation, and re-planning all happen mid-stream.
		if i%10 == 9 {
			s.Schedule()
			for k := 0; k < 3 && s.Step(); k++ {
			}
		}
	}
	s.Run(0)

	for id := range submitted {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("submitted job %d vanished", id)
		}
		switch j.State {
		case sched.StateCompleted, sched.StateUnsatisfiable, sched.StateQuarantined:
		default:
			t.Fatalf("job %d not terminal after drain: %v", id, j.State)
		}
		if plan.Panics(id) && j.State != sched.StateQuarantined {
			t.Fatalf("panicking job %d ended %v", id, j.State)
		}
	}
	ss := s.Stats()
	if ss.Quarantined == 0 || ss.InvalidSpecRejects == 0 {
		t.Fatalf("chaos did not bite: %+v", ss)
	}
	if ss.DegradedCycles == 0 {
		t.Fatal("watchdog never degraded despite 500µs slow matches against a 100µs deadline")
	}

	// Invariants: no partial claims, no corrupted planner/filter state.
	for _, v := range g.Vertices() {
		if p := v.Planner(); p != nil {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("vertex %s planner: %v", v.Path(), err)
			}
		}
		if f := v.Filter(); f != nil {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("vertex %s filter: %v", v.Path(), err)
			}
		}
	}

	// Pressure is gone (queue drained, hook idle on an empty queue): the
	// ladder must step all the way back down within a bounded number of
	// healthy cycles.
	for i := 0; i < 200 && s.DefenseLevel() > 0; i++ {
		s.Schedule()
	}
	if lvl := s.DefenseLevel(); lvl != 0 {
		t.Fatalf("watchdog did not re-arm: level=%d after pressure cleared", lvl)
	}
}
