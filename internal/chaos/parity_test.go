package chaos_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"fluxion/internal/chaos"
	"fluxion/internal/grug"
	"fluxion/internal/sched"
	"fluxion/internal/simcli"
	"fluxion/internal/trace"
)

// TestDecisionParity is the self-defense acceptance property: a chaos
// run with defenses enabled (panic fences, quarantine, submit
// validation) schedules every non-poisoned job identically — same
// state, start, and end — to a defense-free run whose trace simply
// never contained the poisoned jobs. Quarantine must be invisible to
// the surviving schedule, across every queue policy and both engines.
func TestDecisionParity(t *testing.T) {
	jobs := trace.Synthesize(150, 4, 8, 11)
	plan := &chaos.Plan{
		Seed:          31,
		PanicFrac:     0.15,
		SlowFrac:      0.10,
		SlowDelay:     50 * time.Microsecond,
		MalformedFrac: 0.12,
	}
	for _, qp := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		for _, full := range []bool{false, true} {
			engine := "incremental"
			if full {
				engine = "full-requeue"
			}
			t.Run(fmt.Sprintf("%s-%s", qp, engine), func(t *testing.T) {
				base := simcli.Config{
					Recipe:      grug.Small(2, 4, 8, 0, 0),
					QueuePolicy: qp,
					FullRequeue: full,
					Chaos:       plan,
				}
				dryCfg := base
				dryCfg.ChaosDry = true
				defended, err := simcli.Run(base, jobs, io.Discard)
				if err != nil {
					t.Fatalf("defended run: %v", err)
				}
				dry, err := simcli.Run(dryCfg, jobs, io.Discard)
				if err != nil {
					t.Fatalf("dry run: %v", err)
				}

				quarantined := 0
				for _, j := range jobs {
					dj, dok := defended.Scheduler.Job(j.ID)
					bj, bok := dry.Scheduler.Job(j.ID)
					switch {
					case plan.Malformed(j.ID):
						// Rejected at submit in the defended run,
						// filtered from the dry trace.
						if dok {
							t.Errorf("malformed job %d entered the defended run (%v)", j.ID, dj.State)
						}
						if bok {
							t.Errorf("malformed job %d entered the dry run", j.ID)
						}
					case plan.Panics(j.ID):
						if !dok || dj.State != sched.StateQuarantined || dj.Quarantine != sched.QuarantinePanic {
							t.Errorf("panicking job %d not quarantined in defended run", j.ID)
						} else {
							quarantined++
						}
						if bok {
							t.Errorf("panicking job %d present in dry run", j.ID)
						}
					default:
						if !dok || !bok {
							t.Fatalf("job %d missing: defended=%v dry=%v", j.ID, dok, bok)
						}
						if dj.State != bj.State || dj.StartAt != bj.StartAt || dj.EndAt != bj.EndAt {
							t.Errorf("parity: job %d = %v@[%d,%d] defended, %v@[%d,%d] dry",
								j.ID, dj.State, dj.StartAt, dj.EndAt, bj.State, bj.StartAt, bj.EndAt)
						}
					}
				}
				// The property is vacuous if the plan poisoned nothing.
				if quarantined == 0 {
					t.Fatal("chaos plan quarantined nothing — property did not bite")
				}
				if got := defended.Scheduler.Stats().Quarantined; int(got) != quarantined {
					t.Errorf("Stats().Quarantined = %d, counted %d", got, quarantined)
				}
				if defended.Scheduler.Stats().InvalidSpecRejects == 0 {
					t.Error("no malformed specs rejected — validation leg did not bite")
				}
			})
		}
	}
}

// TestPlanDeterminism pins the seeded-hash contract: the same plan
// answers identically across calls, and FilterTrace removes exactly the
// poisoned set.
func TestPlanDeterminism(t *testing.T) {
	plan := &chaos.Plan{Seed: 7, PanicFrac: 0.2, SlowFrac: 0.3, MalformedFrac: 0.25}
	jobs := trace.Synthesize(500, 4, 8, 3)
	poisoned := 0
	for _, j := range jobs {
		for i := 0; i < 3; i++ {
			if plan.Panics(j.ID) != plan.Panics(j.ID) || plan.Slow(j.ID) != plan.Slow(j.ID) ||
				plan.Malformed(j.ID) != plan.Malformed(j.ID) {
				t.Fatalf("job %d: fault decision not stable", j.ID)
			}
		}
		if plan.Poisoned(j.ID) {
			poisoned++
			if spec := plan.MalformedSpec(j.ID); spec == nil {
				t.Fatalf("job %d: no malformed spec", j.ID)
			}
		}
	}
	// ~38% of 500 should be poisoned; a hash catastrophe would show up
	// as an empty or full set.
	if poisoned < 100 || poisoned > 300 {
		t.Fatalf("poisoned = %d of %d — hash skew", poisoned, len(jobs))
	}
	kept := plan.FilterTrace(jobs)
	if len(kept)+poisoned != len(jobs) {
		t.Fatalf("FilterTrace kept %d, poisoned %d, total %d", len(kept), poisoned, len(jobs))
	}
	for _, j := range kept {
		if plan.Poisoned(j.ID) {
			t.Fatalf("FilterTrace kept poisoned job %d", j.ID)
		}
	}
	other := &chaos.Plan{Seed: 8, PanicFrac: 0.2, SlowFrac: 0.3, MalformedFrac: 0.25}
	diff := 0
	for _, j := range jobs {
		if plan.Poisoned(j.ID) != other.Poisoned(j.ID) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical poison sets")
	}
}

// TestMalformedSpecsAllRejected: every shape the malformed-spec stream
// emits must fail submit-time validation — if one ever became valid the
// chaos accounting (and the parity baseline) would silently drift.
func TestMalformedSpecsAllRejected(t *testing.T) {
	cfg := simcli.Config{Recipe: grug.Small(1, 2, 8, 0, 0)}
	res, err := simcli.Run(cfg, nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	plan := &chaos.Plan{Seed: 5}
	for id := int64(0); id < 64; id++ {
		if err := res.Fluxion.ValidateSpec(plan.MalformedSpec(id)); err == nil {
			t.Errorf("malformed spec for job %d validated cleanly", id)
		}
	}
}
