package match

import (
	"testing"

	"fluxion/internal/resgraph"
)

func mkNodes(t *testing.T, n int) (*resgraph.Graph, []*resgraph.Vertex) {
	t.Helper()
	g := resgraph.NewGraph(0, 1000)
	cl := g.MustAddVertex("cluster", -1, 1)
	var nodes []*resgraph.Vertex
	for i := 0; i < n; i++ {
		v := g.MustAddVertex("node", -1, 1)
		if err := g.AddContainment(cl, v); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, v)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, nodes
}

func names(vs []*resgraph.Vertex) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil || p.Name() != name {
			t.Errorf("Lookup(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := Lookup(""); err != nil || p.Name() != "first" {
		t.Errorf("default policy: %v, %v", p, err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestHighLowFirstOrder(t *testing.T) {
	_, nodes := mkNodes(t, 4)
	cands := []*resgraph.Vertex{nodes[2], nodes[0], nodes[3], nodes[1]}

	HighID{}.Order(cands, 1, nil)
	if cands[0].Name != "node3" || cands[3].Name != "node0" {
		t.Fatalf("high order = %v", names(cands))
	}
	LowID{}.Order(cands, 1, nil)
	if cands[0].Name != "node0" || cands[3].Name != "node3" {
		t.Fatalf("low order = %v", names(cands))
	}
	snapshot := names(cands)
	First{}.Order(cands, 1, nil)
	for i, n := range names(cands) {
		if n != snapshot[i] {
			t.Fatal("first must not reorder")
		}
	}
}

func TestLocalityGroupsSiblings(t *testing.T) {
	g := resgraph.NewGraph(0, 1000)
	cl := g.MustAddVertex("cluster", -1, 1)
	var nodes []*resgraph.Vertex
	for r := 0; r < 2; r++ {
		rack := g.MustAddVertex("rack", -1, 1)
		if err := g.AddContainment(cl, rack); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 2; n++ {
			v := g.MustAddVertex("node", -1, 1)
			if err := g.AddContainment(rack, v); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, v)
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	cands := []*resgraph.Vertex{nodes[3], nodes[0], nodes[2], nodes[1]}
	Locality{}.Order(cands, 1, nil)
	// rack0's nodes (0,1) first, then rack1's (2,3).
	want := []string{"node0", "node1", "node2", "node3"}
	for i, w := range want {
		if cands[i].Name != w {
			t.Fatalf("locality order = %v", names(cands))
		}
	}
}

func setClasses(nodes []*resgraph.Vertex, classes []int) {
	for i, n := range nodes {
		if classes[i] > 0 {
			n.SetProperty(PerfClassKey, itoa(classes[i]))
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestVariationSingleClassBestFit(t *testing.T) {
	_, nodes := mkNodes(t, 6)
	// classes: 1,1,1,2,2,3 — a 2-node job best-fits class 2.
	setClasses(nodes, []int{1, 1, 1, 2, 2, 3})
	cands := append([]*resgraph.Vertex(nil), nodes...)
	NewVariation("").Order(cands, 2, nil)
	v := NewVariation("")
	if v.ClassOf(cands[0], -1) != 2 || v.ClassOf(cands[1], -1) != 2 {
		t.Fatalf("order = %v", names(cands))
	}
}

func TestVariationWindowWhenNoSingleClass(t *testing.T) {
	_, nodes := mkNodes(t, 6)
	// classes: 1,2,2,4,4,4 — a 5-node job needs window [2,4]; the
	// narrowest covering window is classes 2..4 (2+0+3 = 5).
	setClasses(nodes, []int{1, 2, 2, 4, 4, 4})
	cands := append([]*resgraph.Vertex(nil), nodes...)
	NewVariation("").Order(cands, 5, nil)
	v := NewVariation("")
	// The class-1 node must sort after all window members.
	if v.ClassOf(cands[5], -1) != 1 {
		t.Fatalf("order = %v (last should be class 1)", names(cands))
	}
}

func TestVariationAvailabilityAware(t *testing.T) {
	_, nodes := mkNodes(t, 4)
	// All class 1, but nodes 0-1 are unavailable: a 2-node job should
	// see availables first.
	setClasses(nodes, []int{1, 1, 1, 1})
	cands := append([]*resgraph.Vertex(nil), nodes...)
	avail := func(v *resgraph.Vertex) bool { return v.ID >= 2 }
	NewVariation("").Order(cands, 2, avail)
	if cands[0].ID < 2 || cands[1].ID < 2 {
		t.Fatalf("order = %v", names(cands))
	}
}

func TestVariationUnclassifiedLast(t *testing.T) {
	_, nodes := mkNodes(t, 3)
	setClasses(nodes, []int{0, 2, 2}) // node0 unclassified
	cands := append([]*resgraph.Vertex(nil), nodes...)
	NewVariation("").Order(cands, 2, nil)
	if cands[2].Name != "node0" {
		t.Fatalf("order = %v", names(cands))
	}
}

func TestVariationClassOf(t *testing.T) {
	_, nodes := mkNodes(t, 2)
	v := NewVariation("")
	if v.ClassOf(nodes[0], 7) != 7 {
		t.Fatal("fallback for missing class")
	}
	nodes[0].SetProperty(PerfClassKey, "junk")
	if v.ClassOf(nodes[0], 7) != 7 {
		t.Fatal("fallback for malformed class")
	}
	nodes[0].SetProperty(PerfClassKey, "3")
	if v.ClassOf(nodes[0], 7) != 3 {
		t.Fatal("parse class")
	}
}

func TestVariationEmptyCandidates(t *testing.T) {
	NewVariation("").Order(nil, 3, nil) // must not panic
}

func TestVariationFallbackNoWindow(t *testing.T) {
	// Needed exceeds every contiguous window: the fallback orders by
	// fullest class first.
	_, nodes := mkNodes(t, 5)
	setClasses(nodes, []int{1, 3, 3, 3, 5})
	cands := append([]*resgraph.Vertex(nil), nodes...)
	NewVariation("").Order(cands, 50, nil)
	v := NewVariation("")
	if v.ClassOf(cands[0], -1) != 3 {
		t.Fatalf("fallback order = %v", names(cands))
	}
}
