// Package match implements Fluxion's pluggable match policies (paper §3.2,
// step 4): the scoring callbacks the traverser invokes to rank candidate
// resource vertices. A policy only orders candidates; the traverser owns
// feasibility, so policies and the resource model stay decoupled (paper
// §3.5, separation of concerns).
package match

import (
	"fmt"
	"sort"
	"strconv"

	"fluxion/internal/resgraph"
)

// Policy orders candidate vertices into preference order.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Order sorts cands in place, most preferred first. needed is the
	// number of units still required from the candidates; avail reports
	// whether a candidate currently has capacity in the match window.
	// Order may call avail at most once per candidate.
	Order(cands []*resgraph.Vertex, needed int64, avail func(*resgraph.Vertex) bool)
}

// Lookup returns a registered policy by name: "first", "high", "low",
// "locality", or "variation".
func Lookup(name string) (Policy, error) {
	switch name {
	case "first", "":
		return First{}, nil
	case "high":
		return HighID{}, nil
	case "low":
		return LowID{}, nil
	case "locality":
		return Locality{}, nil
	case "variation":
		return NewVariation(""), nil
	default:
		return nil, fmt.Errorf("match: unknown policy %q", name)
	}
}

// Names lists the registered policy names.
func Names() []string { return []string{"first", "high", "low", "locality", "variation"} }

// IsTraversalOrder reports whether p preserves traversal order (its
// Order is a no-op). The traverser exploits this: under a
// traversal-order policy a candidate list never needs re-sorting, so
// first-fit scans can resume from a cursor instead of rescanning.
func IsTraversalOrder(p Policy) bool {
	_, ok := p.(First)
	return ok
}

// First keeps candidates in traversal (creation) order: the first match
// wins.
type First struct{}

// Name implements Policy.
func (First) Name() string { return "first" }

// Order implements Policy (no-op: traversal order is already preference
// order).
func (First) Order([]*resgraph.Vertex, int64, func(*resgraph.Vertex) bool) {}

// HighID prefers vertices with higher logical IDs — the paper's first
// baseline, mimicking production clusters that sort candidate nodes by ID
// descending (§6.3).
type HighID struct{}

// Name implements Policy.
func (HighID) Name() string { return "high" }

// Order implements Policy.
func (HighID) Order(cands []*resgraph.Vertex, _ int64, _ func(*resgraph.Vertex) bool) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].ID > cands[j].ID })
}

// LowID prefers vertices with lower logical IDs — the paper's second
// baseline.
type LowID struct{}

// Name implements Policy.
func (LowID) Name() string { return "low" }

// Order implements Policy.
func (LowID) Order(cands []*resgraph.Vertex, _ int64, _ func(*resgraph.Vertex) bool) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
}

// Locality keeps siblings together: candidates are grouped by containment
// parent, fullest-first is approximated by preferring groups that appear
// earlier in traversal order, and ordered by ID within a group.
type Locality struct{}

// Name implements Policy.
func (Locality) Name() string { return "locality" }

// Order implements Policy.
func (Locality) Order(cands []*resgraph.Vertex, _ int64, _ func(*resgraph.Vertex) bool) {
	sort.SliceStable(cands, func(i, j int) bool {
		pi, pj := parentUniq(cands[i]), parentUniq(cands[j])
		if pi != pj {
			return pi < pj
		}
		return cands[i].ID < cands[j].ID
	})
}

func parentUniq(v *resgraph.Vertex) int64 {
	if p := v.Parent(); p != nil {
		return p.UniqID
	}
	return -1
}

// Variation is the paper's variation-aware policy (§5.2, §6.3): every
// compute node carries a performance-class property (1 = fastest bin), and
// the policy packs each job's allocation into as few classes as possible
// to minimize rank-to-rank manufacturing variation.
//
// Given the available candidates per class it prefers, in order:
//  1. the single class with the fewest free candidates still >= needed
//     (best fit, so large same-class pools survive for large jobs);
//  2. otherwise the narrowest contiguous class window covering needed.
//
// Candidates without the property sort last (class MaxClass+1).
type Variation struct {
	// Key is the property holding the class ("perfclass" by default).
	Key string
}

// PerfClassKey is the default vertex property consulted by Variation.
const PerfClassKey = "perfclass"

// NewVariation returns a Variation policy reading the given property key
// ("" means PerfClassKey).
func NewVariation(key string) Variation {
	if key == "" {
		key = PerfClassKey
	}
	return Variation{Key: key}
}

// Name implements Policy.
func (Variation) Name() string { return "variation" }

// ClassOf parses v's performance class, returning fallback when absent or
// malformed.
func (p Variation) ClassOf(v *resgraph.Vertex, fallback int) int {
	s := v.Property(p.Key)
	if s == "" {
		return fallback
	}
	c, err := strconv.Atoi(s)
	if err != nil {
		return fallback
	}
	return c
}

// Order implements Policy.
func (p Variation) Order(cands []*resgraph.Vertex, needed int64, avail func(*resgraph.Vertex) bool) {
	if len(cands) == 0 {
		return
	}
	// Bucket available candidates by class.
	maxClass := 0
	classes := make(map[int]int64)
	classOf := make(map[*resgraph.Vertex]int, len(cands))
	availOf := make(map[*resgraph.Vertex]bool, len(cands))
	for _, v := range cands {
		c := p.ClassOf(v, -1)
		classOf[v] = c
		if c > maxClass {
			maxClass = c
		}
		ok := avail == nil || avail(v)
		availOf[v] = ok
		if ok && c >= 0 {
			classes[c]++
		}
	}
	for v, c := range classOf {
		if c < 0 {
			classOf[v] = maxClass + 1 // unclassified sorts last
		}
	}

	rank := p.classRanks(classes, maxClass, needed)
	sort.SliceStable(cands, func(i, j int) bool {
		vi, vj := cands[i], cands[j]
		ri, rj := rankOf(rank, classOf[vi]), rankOf(rank, classOf[vj])
		if ri != rj {
			return ri < rj
		}
		// Within a class, available candidates first, then by ID.
		if availOf[vi] != availOf[vj] {
			return availOf[vi]
		}
		return vi.ID < vj.ID
	})
}

// classRanks computes the preference rank of each class.
func (p Variation) classRanks(free map[int]int64, maxClass int, needed int64) map[int]int {
	rank := make(map[int]int, len(free))
	// 1. A single class can host the job: best fit, tie on lower class.
	best := -1
	var bestFree int64
	for c, n := range free {
		if n >= needed {
			if best < 0 || n < bestFree || (n == bestFree && c < best) {
				best, bestFree = c, n
			}
		}
	}
	if best >= 0 {
		rank[best] = 0
		// Remaining classes by distance from the chosen one, so any
		// spill stays in adjacent performance bins.
		next := 1
		for d := 1; d <= maxClass+1; d++ {
			for _, c := range []int{best + d, best - d} {
				if _, ok := free[c]; ok {
					rank[c] = next
					next++
				}
			}
		}
		return rank
	}
	// 2. No single class suffices: narrowest contiguous window
	// [a, b] whose free sum covers needed; tie on larger sum, then
	// lower a.
	bestA, bestB, bestSum := -1, -1, int64(-1)
	for a := 1; a <= maxClass; a++ {
		var sum int64
		for b := a; b <= maxClass; b++ {
			sum += free[b]
			if sum < needed {
				continue
			}
			width, bestWidth := b-a, bestB-bestA
			if bestA < 0 || width < bestWidth || (width == bestWidth && sum > bestSum) {
				bestA, bestB, bestSum = a, b, sum
			}
			break
		}
	}
	if bestA < 0 {
		// Not satisfiable from one window; fall back to fullest
		// classes first to minimize spread pressure.
		type cf struct {
			c int
			n int64
		}
		var all []cf
		for c, n := range free {
			all = append(all, cf{c, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].c < all[j].c
		})
		for i, x := range all {
			rank[x.c] = i
		}
		return rank
	}
	next := 0
	for c := bestA; c <= bestB; c++ {
		rank[c] = next
		next++
	}
	// Classes outside the window by distance from it.
	for d := 1; d <= maxClass+1; d++ {
		for _, c := range []int{bestB + d, bestA - d} {
			if _, ok := free[c]; ok {
				if _, done := rank[c]; !done {
					rank[c] = next
					next++
				}
			}
		}
	}
	return rank
}

func rankOf(rank map[int]int, class int) int {
	if r, ok := rank[class]; ok {
		return r
	}
	return 1 << 30
}
