package yamlite

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func parse(t *testing.T, src string) any {
	t.Helper()
	v, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return v
}

func TestScalars(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"a: 1", map[string]any{"a": int64(1)}},
		{"a: -17", map[string]any{"a": int64(-17)}},
		{"a: 0x10", map[string]any{"a": int64(16)}},
		{"a: 3.5", map[string]any{"a": 3.5}},
		{"a: true", map[string]any{"a": true}},
		{"a: false", map[string]any{"a": false}},
		{"a: null", map[string]any{"a": nil}},
		{"a: ~", map[string]any{"a": nil}},
		{"a: hello", map[string]any{"a": "hello"}},
		{"a: hello world", map[string]any{"a": "hello world"}},
		{`a: "quoted: string"`, map[string]any{"a": "quoted: string"}},
		{`a: 'single ''quoted'''`, map[string]any{"a": "single 'quoted'"}},
		{`a: "tab\there"`, map[string]any{"a": "tab\there"}},
		{`a: "123"`, map[string]any{"a": "123"}},
	}
	for _, c := range cases {
		if got := parse(t, c.src); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestNestedMapping(t *testing.T) {
	src := `
version: 1
attributes:
  system:
    duration: 3600
    queue: batch
`
	want := map[string]any{
		"version": int64(1),
		"attributes": map[string]any{
			"system": map[string]any{
				"duration": int64(3600),
				"queue":    "batch",
			},
		},
	}
	if got := parse(t, src); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v", got)
	}
}

func TestSequences(t *testing.T) {
	src := `
items:
  - 1
  - two
  - true
`
	want := map[string]any{"items": []any{int64(1), "two", true}}
	if got := parse(t, src); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v", got)
	}
}

func TestSequenceOfMappings(t *testing.T) {
	src := `
resources:
  - type: node
    count: 4
    with:
      - type: core
        count: 10
      - type: memory
        count: 8
`
	got := parse(t, src)
	res, ok := GetList(got, "resources")
	if !ok || len(res) != 1 {
		t.Fatalf("resources = %#v", got)
	}
	node := res[0]
	if typ, _ := GetString(node, "type"); typ != "node" {
		t.Fatalf("type = %v", node)
	}
	if c, _ := GetInt(node, "count"); c != 4 {
		t.Fatalf("count = %v", node)
	}
	with, ok := GetList(node, "with")
	if !ok || len(with) != 2 {
		t.Fatalf("with = %#v", with)
	}
	if typ, _ := GetString(with[1], "type"); typ != "memory" {
		t.Fatalf("with[1] = %#v", with[1])
	}
}

func TestNestedSequences(t *testing.T) {
	src := `
matrix:
  -
    - 1
    - 2
  -
    - 3
    - 4
`
	want := map[string]any{"matrix": []any{[]any{int64(1), int64(2)}, []any{int64(3), int64(4)}}}
	if got := parse(t, src); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v", got)
	}
}

func TestTopLevelSequence(t *testing.T) {
	src := `
- type: a
- type: b
`
	got := parse(t, src)
	seq, ok := got.([]any)
	if !ok || len(seq) != 2 {
		t.Fatalf("got %#v", got)
	}
}

func TestFlowCollections(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"a: [1, 2, 3]", map[string]any{"a": []any{int64(1), int64(2), int64(3)}}},
		{"a: []", map[string]any{"a": []any(nil)}},
		{"a: {}", map[string]any{"a": map[string]any{}}},
		{"a: {x: 1, y: two}", map[string]any{"a": map[string]any{"x": int64(1), "y": "two"}}},
		{"a: [[1], [2, 3]]", map[string]any{"a": []any{[]any{int64(1)}, []any{int64(2), int64(3)}}}},
		{`a: {k: [1, {z: "s"}]}`, map[string]any{"a": map[string]any{"k": []any{int64(1), map[string]any{"z": "s"}}}}},
	}
	for _, c := range cases {
		if got := parse(t, c.src); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
# leading comment
a: 1 # trailing comment
b: "hash # inside quotes"
# whole-line comment
c: 3
`
	want := map[string]any{"a": int64(1), "b": "hash # inside quotes", "c": int64(3)}
	if got := parse(t, src); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v", got)
	}
}

func TestQuotedKeys(t *testing.T) {
	src := `"key with: colon": 1`
	want := map[string]any{"key with: colon": int64(1)}
	if got := parse(t, src); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v", got)
	}
}

func TestEmptyDocument(t *testing.T) {
	for _, src := range []string{"", "\n", "# only a comment\n", "---\n"} {
		v, err := ParseString(src)
		if err != nil || v != nil {
			t.Errorf("Parse(%q) = %#v, %v; want nil, nil", src, v, err)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"\tindented: with tab",
		"a: &anchor 1",
		"just a scalar without key",
		"a: [1, 2",
		"a: {x: 1",
		"a: \"unterminated",
		"a: 1\n  b: 2",           // over-indented child of a scalar-valued key
		"a: 1\na: 2",             // duplicate key
		"a: 1\n- seq in mapping", // sequence entry inside mapping
		"a: [1] trailing",        // trailing content after flow
		"a: 'x' y",               // trailing content after quoted string
		"items:\n  - 1\n    - 2", // bad nested indentation
	}
	for _, src := range cases {
		if _, err := ParseString(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q): want ErrSyntax, got %v", src, err)
		}
	}
}

func TestAccessors(t *testing.T) {
	doc := parse(t, `
top:
  n: 42
  f: 2.5
  s: str
  b: true
  list: [1]
`)
	topM, ok := GetMap(doc, "top")
	if !ok || topM == nil {
		t.Fatal("GetMap failed")
	}
	if n, ok := GetInt(topM, "n"); !ok || n != 42 {
		t.Errorf("GetInt = %d, %v", n, ok)
	}
	if f, ok := GetFloat(topM, "f"); !ok || f != 2.5 {
		t.Errorf("GetFloat = %g, %v", f, ok)
	}
	if f, ok := GetFloat(topM, "n"); !ok || f != 42 {
		t.Errorf("GetFloat(int) = %g, %v", f, ok)
	}
	if s, ok := GetString(topM, "s"); !ok || s != "str" {
		t.Errorf("GetString = %q, %v", s, ok)
	}
	if b, ok := GetBool(topM, "b"); !ok || !b {
		t.Errorf("GetBool = %v, %v", b, ok)
	}
	if l, ok := GetList(topM, "list"); !ok || len(l) != 1 {
		t.Errorf("GetList = %v, %v", l, ok)
	}
	if _, ok := GetInt(topM, "missing"); ok {
		t.Error("GetInt on missing key should fail")
	}
	if _, ok := GetInt(topM, "s"); ok {
		t.Error("GetInt on string should fail")
	}
	if v, ok := GetPath(doc, "top.n"); !ok || v != int64(42) {
		t.Errorf("GetPath = %v, %v", v, ok)
	}
	if _, ok := GetPath(doc, "top.n.deeper"); ok {
		t.Error("GetPath through scalar should fail")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	docs := []any{
		map[string]any{"a": int64(1), "b": "two", "c": true, "d": nil},
		map[string]any{
			"resources": []any{
				map[string]any{"type": "node", "count": int64(4), "with": []any{
					map[string]any{"type": "core", "count": int64(10)},
				}},
			},
		},
		map[string]any{"weird": "has: colon", "empty": "", "num": "007", "neg": int64(-3), "f": 1.25},
		[]any{int64(1), "x", []any{map[string]any{"k": "v"}}},
		map[string]any{"nested": map[string]any{"deep": map[string]any{"leaf": int64(9)}}},
	}
	for _, doc := range docs {
		out := Marshal(doc)
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("round-trip parse failed for %#v:\n%s\n%v", doc, out, err)
		}
		if !reflect.DeepEqual(normalize(back), normalize(doc)) {
			t.Fatalf("round-trip mismatch:\nin:  %#v\nout: %#v\nyaml:\n%s", doc, back, out)
		}
	}
}

// normalize converts nil slices vs empty slices consistently for DeepEqual.
func normalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(x))
		for k, vv := range x {
			m[k] = normalize(vv)
		}
		return m
	case []any:
		if len(x) == 0 {
			return []any(nil)
		}
		s := make([]any, len(x))
		for i, vv := range x {
			s[i] = normalize(vv)
		}
		return s
	default:
		return v
	}
}

// TestQuickStringRoundTrip property: any string survives a
// Marshal/Parse round trip as a mapping value.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// The subset does not preserve non-UTF8 or exotic control
		// chars; restrict to printable-ish input plus the escapes we
		// support.
		for _, r := range s {
			if r != '\n' && r != '\t' && r != '\r' && (r < 32 || r == 127) {
				return true // skip
			}
		}
		doc := map[string]any{"v": s}
		back, err := Parse(Marshal(doc))
		if err != nil {
			return false
		}
		m, ok := back.(map[string]any)
		return ok && m["v"] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntRoundTrip property: any int64 survives a round trip.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		back, err := Parse(Marshal(map[string]any{"v": n}))
		if err != nil {
			return false
		}
		m, ok := back.(map[string]any)
		return ok && m["v"] == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeepNesting(t *testing.T) {
	src := `
l1:
  l2:
    l3:
      l4:
        - deep: true
          list:
            - a
            - b
`
	got := parse(t, src)
	v, ok := GetPath(got, "l1.l2.l3.l4")
	if !ok {
		t.Fatalf("path missing: %#v", got)
	}
	seq := v.([]any)
	if d, _ := GetBool(seq[0], "deep"); !d {
		t.Fatalf("deep = %#v", seq[0])
	}
	l, _ := GetList(seq[0], "list")
	if len(l) != 2 || l[0] != "a" {
		t.Fatalf("list = %#v", l)
	}
}

func TestGetIntFloatConversions(t *testing.T) {
	doc := parse(t, "a: 2.0\nb: 2.5\nc: 7")
	if n, ok := GetInt(doc, "a"); !ok || n != 2 {
		t.Errorf("GetInt(2.0) = %d, %v", n, ok)
	}
	if _, ok := GetInt(doc, "b"); ok {
		t.Error("GetInt(2.5) should fail")
	}
	if f, ok := GetFloat(doc, "c"); !ok || f != 7 {
		t.Errorf("GetFloat(7) = %g, %v", f, ok)
	}
	if _, ok := GetInt(nil, "a"); ok {
		t.Error("GetInt on non-map")
	}
	if _, ok := GetMap(nil, "a"); ok {
		t.Error("GetMap on non-map")
	}
	if _, ok := GetList(nil, "a"); ok {
		t.Error("GetList on non-map")
	}
	if _, ok := GetString(nil, "a"); ok {
		t.Error("GetString on non-map")
	}
	if _, ok := GetBool(nil, "a"); ok {
		t.Error("GetBool on non-map")
	}
}

func TestMarshalScalarEdgeCases(t *testing.T) {
	doc := map[string]any{
		"int":     42, // plain int, not int64
		"null":    nil,
		"empty":   "",
		"colon":   "a: b",
		"dashy":   "- listish",
		"spacey":  " padded ",
		"boolstr": "true",
		"numstr":  "12",
	}
	back, err := Parse(Marshal(doc))
	if err != nil {
		t.Fatalf("%v\n%s", err, Marshal(doc))
	}
	m := back.(map[string]any)
	if m["int"] != int64(42) || m["null"] != nil || m["empty"] != "" {
		t.Fatalf("scalars: %#v", m)
	}
	for _, k := range []string{"colon", "dashy", "spacey", "boolstr", "numstr"} {
		if m[k] != doc[k] {
			t.Errorf("%s: %#v != %#v", k, m[k], doc[k])
		}
	}
}
