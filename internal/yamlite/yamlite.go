// Package yamlite is a small, dependency-free reader and writer for the
// YAML subset used by Flux's canonical jobspec and by GRUG resource-graph
// recipes.
//
// Supported constructs: block mappings and sequences nested by indentation,
// inline flow sequences ([a, b]) and mappings ({k: v}), single- and
// double-quoted strings, plain scalars (null, booleans, integers, floats,
// strings), and # comments. Unsupported YAML (anchors, aliases, tags,
// multi-document streams, block scalars) is rejected with an error rather
// than misparsed.
//
// Parse returns map[string]any, []any, string, int64, float64, bool, or
// nil. The companion accessors (GetMap, GetList, GetString, GetInt, ...)
// make destructuring terse for the jobspec and GRUG readers.
package yamlite

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("yamlite: syntax error")

type line struct {
	indent int
	text   string // content without indentation or trailing comment
	num    int    // 1-based physical line number
}

// Parse decodes one YAML document.
func Parse(data []byte) (any, error) {
	lines, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, nil
	}
	p := &parser{lines: lines}
	v, err := p.parseBlock(0, false)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("%w: line %d: unexpected content %q (bad indentation?)", ErrSyntax, l.num, l.text)
	}
	return v, nil
}

// ParseString decodes one YAML document from a string.
func ParseString(s string) (any, error) { return Parse([]byte(s)) }

// splitLines strips comments and blank lines and computes indentation.
func splitLines(src string) ([]line, error) {
	var out []line
	for num, raw := range strings.Split(src, "\n") {
		// Strip document markers.
		trimmed := strings.TrimRight(raw, " \t\r")
		if trimmed == "---" || trimmed == "..." {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if indent < len(trimmed) && trimmed[indent] == '\t' {
			return nil, fmt.Errorf("%w: line %d: tab indentation is not allowed", ErrSyntax, num+1)
		}
		text := trimmed[indent:]
		text = stripComment(text)
		text = strings.TrimRight(text, " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "&") || strings.HasPrefix(text, "*") || strings.HasPrefix(text, "|") || strings.HasPrefix(text, ">") {
			return nil, fmt.Errorf("%w: line %d: unsupported YAML construct %q", ErrSyntax, num+1, text[:1])
		}
		out = append(out, line{indent: indent, text: text, num: num + 1})
	}
	return out, nil
}

// stripComment removes a trailing # comment that is outside quotes. A '#'
// only starts a comment at the beginning of the line or after whitespace.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if inDouble && i > 0 && s[i-1] == '\\' {
				continue
			}
			inDouble = !inDouble
		case c == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

func isSeqEntry(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// isMapEntry reports whether text begins a "key: value" mapping entry.
func isMapEntry(text string) bool {
	if text[0] == '{' || text[0] == '[' {
		return false // flow collection, not a block mapping
	}
	if text[0] == '"' || text[0] == '\'' {
		_, n, err := scanQuoted(text, 0)
		if err != nil {
			return false
		}
		for n < len(text) && text[n] == ' ' {
			n++
		}
		return n < len(text) && text[n] == ':'
	}
	for j := 0; j < len(text); j++ {
		if text[j] == ':' && (j+1 == len(text) || text[j+1] == ' ') {
			return true
		}
	}
	return false
}

// parseBlock parses the block starting at the current line, which must be
// indented at least minIndent. It consumes all lines belonging to the
// block. allowScalar permits a bare scalar block (a sequence entry like
// "- 42"); elsewhere a scalar without a key is a syntax error.
func (p *parser) parseBlock(minIndent int, allowScalar bool) (any, error) {
	l, ok := p.peek()
	if !ok || l.indent < minIndent {
		return nil, nil
	}
	switch {
	case isSeqEntry(l.text):
		return p.parseSequence(l.indent)
	case isMapEntry(l.text):
		return p.parseMapping(l.indent)
	case allowScalar:
		v, err := parseScalarOrFlow(l.text, l.num)
		if err != nil {
			return nil, err
		}
		p.pos++
		if next, ok := p.peek(); ok && next.indent > l.indent {
			return nil, fmt.Errorf("%w: line %d: unexpected indentation after scalar", ErrSyntax, next.num)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%w: line %d: expected \"key: value\", got %q", ErrSyntax, l.num, l.text)
	}
}

func (p *parser) parseSequence(indent int) (any, error) {
	var seq []any
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			if ok && l.indent > indent {
				return nil, fmt.Errorf("%w: line %d: bad indentation in sequence", ErrSyntax, l.num)
			}
			return seq, nil
		}
		rest := strings.TrimPrefix(l.text, "-")
		trimmedRest := strings.TrimLeft(rest, " ")
		pad := len(l.text) - len(trimmedRest) // offset of payload within the line
		if trimmedRest == "" {
			// "-" alone: value is the following deeper block.
			p.pos++
			v, err := p.parseBlock(indent+1, true)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		// Rewrite the entry as a synthetic line so "- key: value" with
		// continuation keys parses as a nested mapping.
		p.lines[p.pos] = line{indent: indent + pad, text: trimmedRest, num: l.num}
		v, err := p.parseBlock(indent+1, true)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
}

func (p *parser) parseMapping(indent int) (any, error) {
	m := make(map[string]any)
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent {
			if ok && l.indent > indent {
				return nil, fmt.Errorf("%w: line %d: bad indentation in mapping", ErrSyntax, l.num)
			}
			return m, nil
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("%w: line %d: sequence entry inside mapping", ErrSyntax, l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("%w: line %d: duplicate key %q", ErrSyntax, l.num, key)
		}
		if rest == "" {
			p.pos++
			v, err := p.parseBlock(indent+1, false)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		v, err := parseScalarOrFlow(rest, l.num)
		if err != nil {
			return nil, err
		}
		m[key] = v
		p.pos++
	}
}

// splitKey splits "key: value" handling quoted keys. rest is "" when the
// value is a nested block.
func splitKey(l line) (key, rest string, err error) {
	s := l.text
	var i int
	switch {
	case s[0] == '"' || s[0] == '\'':
		q, n, err := scanQuoted(s, 0)
		if err != nil {
			return "", "", fmt.Errorf("%w: line %d: %v", ErrSyntax, l.num, err)
		}
		key, i = q, n
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) || s[i] != ':' {
			return "", "", fmt.Errorf("%w: line %d: expected ':' after quoted key", ErrSyntax, l.num)
		}
	default:
		idx := -1
		for j := 0; j < len(s); j++ {
			if s[j] == ':' && (j+1 == len(s) || s[j+1] == ' ') {
				idx = j
				break
			}
		}
		if idx < 0 {
			return "", "", fmt.Errorf("%w: line %d: expected \"key: value\", got %q", ErrSyntax, l.num, s)
		}
		key = strings.TrimSpace(s[:idx])
		if key == "" {
			return "", "", fmt.Errorf("%w: line %d: empty key", ErrSyntax, l.num)
		}
		i = idx
	}
	rest = strings.TrimSpace(s[i+1:])
	return key, rest, nil
}

// scanQuoted scans a quoted string starting at s[i] and returns its decoded
// value and the index just past the closing quote.
func scanQuoted(s string, i int) (string, int, error) {
	quote := s[i]
	var b strings.Builder
	j := i + 1
	for j < len(s) {
		c := s[j]
		switch {
		case quote == '\'' && c == '\'':
			if j+1 < len(s) && s[j+1] == '\'' { // '' escape
				b.WriteByte('\'')
				j += 2
				continue
			}
			return b.String(), j + 1, nil
		case quote == '"' && c == '\\':
			if j+1 >= len(s) {
				return "", 0, errors.New("dangling escape")
			}
			switch e := s[j+1]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\\', '/':
				b.WriteByte(e)
			case '0':
				b.WriteByte(0)
			default:
				return "", 0, fmt.Errorf("unsupported escape \\%c", e)
			}
			j += 2
		case quote == '"' && c == '"':
			return b.String(), j + 1, nil
		default:
			b.WriteByte(c)
			j++
		}
	}
	return "", 0, errors.New("unterminated quoted string")
}

// parseScalarOrFlow parses an inline value: a flow collection or a scalar.
func parseScalarOrFlow(s string, lineNum int) (any, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s[0] == '&' || s[0] == '*' || s[0] == '|' || s[0] == '>' || s[0] == '!' {
		return nil, fmt.Errorf("%w: line %d: unsupported YAML construct %q", ErrSyntax, lineNum, s[:1])
	}
	if s[0] == '[' || s[0] == '{' {
		v, n, err := parseFlow(s, 0)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNum, err)
		}
		if rest := strings.TrimSpace(s[n:]); rest != "" {
			return nil, fmt.Errorf("%w: line %d: trailing content %q after flow value", ErrSyntax, lineNum, rest)
		}
		return v, nil
	}
	if s[0] == '"' || s[0] == '\'' {
		q, n, err := scanQuoted(s, 0)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNum, err)
		}
		if rest := strings.TrimSpace(s[n:]); rest != "" {
			return nil, fmt.Errorf("%w: line %d: trailing content %q after string", ErrSyntax, lineNum, rest)
		}
		return q, nil
	}
	return plainScalar(s), nil
}

// plainScalar interprets an unquoted scalar.
func plainScalar(s string) any {
	switch s {
	case "null", "~", "Null", "NULL":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// parseFlow parses a flow collection starting at s[i]; returns the value
// and the index just past it.
func parseFlow(s string, i int) (any, int, error) {
	switch s[i] {
	case '[':
		var seq []any
		j := skipSpace(s, i+1)
		if j < len(s) && s[j] == ']' {
			return seq, j + 1, nil
		}
		for {
			v, n, err := parseFlowValue(s, j)
			if err != nil {
				return nil, 0, err
			}
			seq = append(seq, v)
			j = skipSpace(s, n)
			if j >= len(s) {
				return nil, 0, errors.New("unterminated flow sequence")
			}
			switch s[j] {
			case ',':
				j = skipSpace(s, j+1)
			case ']':
				return seq, j + 1, nil
			default:
				return nil, 0, fmt.Errorf("expected ',' or ']' at %q", s[j:])
			}
		}
	case '{':
		m := make(map[string]any)
		j := skipSpace(s, i+1)
		if j < len(s) && s[j] == '}' {
			return m, j + 1, nil
		}
		for {
			var key string
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				q, n, err := scanQuoted(s, j)
				if err != nil {
					return nil, 0, err
				}
				key, j = q, skipSpace(s, n)
			} else {
				n := j
				for n < len(s) && s[n] != ':' && s[n] != ',' && s[n] != '}' {
					n++
				}
				key = strings.TrimSpace(s[j:n])
				j = n
			}
			if j >= len(s) || s[j] != ':' {
				return nil, 0, errors.New("expected ':' in flow mapping")
			}
			v, n, err := parseFlowValue(s, skipSpace(s, j+1))
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
			j = skipSpace(s, n)
			if j >= len(s) {
				return nil, 0, errors.New("unterminated flow mapping")
			}
			switch s[j] {
			case ',':
				j = skipSpace(s, j+1)
			case '}':
				return m, j + 1, nil
			default:
				return nil, 0, fmt.Errorf("expected ',' or '}' at %q", s[j:])
			}
		}
	}
	return nil, 0, fmt.Errorf("not a flow collection at %q", s[i:])
}

func parseFlowValue(s string, i int) (any, int, error) {
	if i >= len(s) {
		return nil, 0, errors.New("unexpected end of flow value")
	}
	switch s[i] {
	case '[', '{':
		return parseFlow(s, i)
	case '"', '\'':
		v, n, err := scanQuoted(s, i)
		return v, n, err
	}
	n := i
	for n < len(s) && s[n] != ',' && s[n] != ']' && s[n] != '}' {
		n++
	}
	return plainScalar(strings.TrimSpace(s[i:n])), n, nil
}

func skipSpace(s string, i int) int {
	for i < len(s) && s[i] == ' ' {
		i++
	}
	return i
}
