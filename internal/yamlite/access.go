package yamlite

import (
	"fmt"
	"sort"
	"strings"
)

// Accessors for destructuring parsed documents. Each returns the zero value
// and false when the path is absent or the type does not match.

// GetMap returns v[key] as a mapping.
func GetMap(v any, key string) (map[string]any, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, false
	}
	child, ok := m[key].(map[string]any)
	return child, ok
}

// GetList returns v[key] as a sequence.
func GetList(v any, key string) ([]any, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, false
	}
	child, ok := m[key].([]any)
	return child, ok
}

// GetString returns v[key] as a string.
func GetString(v any, key string) (string, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return "", false
	}
	s, ok := m[key].(string)
	return s, ok
}

// GetInt returns v[key] as an int64, converting from float64 when the
// value is integral.
func GetInt(v any, key string) (int64, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return 0, false
	}
	switch n := m[key].(type) {
	case int64:
		return n, true
	case float64:
		if n == float64(int64(n)) {
			return int64(n), true
		}
	}
	return 0, false
}

// GetFloat returns v[key] as a float64, converting from int64.
func GetFloat(v any, key string) (float64, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return 0, false
	}
	switch n := m[key].(type) {
	case float64:
		return n, true
	case int64:
		return float64(n), true
	}
	return 0, false
}

// GetBool returns v[key] as a bool.
func GetBool(v any, key string) (bool, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return false, false
	}
	b, ok := m[key].(bool)
	return b, ok
}

// GetPath walks a dotted path ("attributes.system.duration") through
// nested mappings.
func GetPath(v any, path string) (any, bool) {
	cur := v
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// Marshal renders a value in the same YAML subset Parse accepts. Mapping
// keys are emitted in sorted order for deterministic output.
func Marshal(v any) []byte {
	var b strings.Builder
	marshalValue(&b, v, 0, false)
	return []byte(b.String())
}

func marshalValue(b *strings.Builder, v any, indent int, inline bool) {
	switch x := v.(type) {
	case map[string]any:
		if len(x) == 0 {
			b.WriteString("{}\n")
			return
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if !inline || i > 0 {
				b.WriteString(strings.Repeat(" ", indent))
			}
			b.WriteString(quoteIfNeeded(k))
			child := x[k]
			if isScalar(child) {
				b.WriteString(": ")
				b.WriteString(scalarString(child))
				b.WriteByte('\n')
			} else {
				b.WriteString(":\n")
				marshalValue(b, child, indent+2, false)
			}
		}
	case []any:
		if len(x) == 0 {
			b.WriteString("[]\n")
			return
		}
		for _, item := range x {
			b.WriteString(strings.Repeat(" ", indent))
			b.WriteString("- ")
			if isScalar(item) {
				b.WriteString(scalarString(item))
				b.WriteByte('\n')
			} else {
				marshalValue(b, item, indent+2, true)
			}
		}
	default:
		b.WriteString(strings.Repeat(" ", indent))
		b.WriteString(scalarString(v))
		b.WriteByte('\n')
	}
}

func isScalar(v any) bool {
	switch v.(type) {
	case map[string]any, []any:
		return false
	}
	return true
}

func scalarString(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return quoteIfNeeded(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return fmt.Sprintf("%d", x)
	case int:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// quoteIfNeeded quotes strings that would not round-trip as plain scalars.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if plain, ok := plainScalar(s).(string); ok && plain == s &&
		!strings.ContainsAny(s, ":#\"'[]{}\n\t") &&
		!strings.HasPrefix(s, "- ") && s != "-" &&
		s == strings.TrimSpace(s) {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\t", `\t`, "\r", `\r`)
	return `"` + r.Replace(s) + `"`
}
