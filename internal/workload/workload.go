// Package workload provides the synthetic workloads driving the paper's
// evaluation: the manufacturing-variation model and performance-class
// binning of §6.3 (Equations 1 and 2), and the job-trace generator standing
// in for the quartz production queue snapshot.
//
// The paper's inputs are proprietary (per-node benchmark measurements under
// a 50 W socket power cap, and a job-queue snapshot). The substitutes here
// are seeded synthetic equivalents calibrated to the published summary
// statistics: a 2.47x max/min spread for the MG-like benchmark, 1.91x for
// the LULESH-like one, and a 200-job trace with capacity-cluster node-count
// and duration distributions. The variation-aware policy consumes only the
// per-node class labels, so any distribution with the same spread and
// binning exercises the identical code path (see DESIGN.md §3).
package workload

import (
	"math"
	"math/rand"
	"sort"

	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// Paper-calibrated benchmark spreads (§6.3): slowest/fastest node ratios.
const (
	MGSpread     = 2.47
	LULESHSpread = 1.91
)

// NumClasses is the number of performance classes in Equation 1.
const NumClasses = 5

// VariationModel holds per-node synthetic variation data.
type VariationModel struct {
	// MG and LULESH are the per-node median runtimes of the two
	// synthetic benchmarks, normalized so the fastest node is 1.0.
	MG     []float64
	LULESH []float64
	// TNorm is the combined, rank-normalized time score in [0, 1]
	// (0 = fastest node).
	TNorm []float64
	// Class is the Equation 1 performance class per node (1..5).
	Class []int
}

// Eq1Class bins a normalized time score per paper Equation 1.
func Eq1Class(t float64) int {
	switch {
	case t <= 0.10:
		return 1
	case t <= 0.25:
		return 2
	case t <= 0.40:
		return 3
	case t <= 0.60:
		return 4
	default:
		return 5
	}
}

// GenerateVariation synthesizes variation data for n nodes. Each
// benchmark's per-node runtime is the median of five noisy repetitions of
// a right-skewed draw (most nodes fast, a tail of slow parts — the shape
// manufacturing variation produces), rescaled so the max/min ratio matches
// the published spread exactly.
func GenerateVariation(n int, seed int64) *VariationModel {
	rng := rand.New(rand.NewSource(seed))
	m := &VariationModel{
		MG:     make([]float64, n),
		LULESH: make([]float64, n),
		TNorm:  make([]float64, n),
		Class:  make([]int, n),
	}
	m.MG = synthBenchmark(rng, n, MGSpread)
	m.LULESH = synthBenchmark(rng, n, LULESHSpread)

	// Combined score: average of the per-benchmark min-max-normalized
	// medians, then converted to a percentile rank (the paper bins "top
	// 10% nodes" etc., i.e. by rank).
	combined := make([]float64, n)
	mgN := minMaxNormalize(m.MG)
	luN := minMaxNormalize(m.LULESH)
	for i := range combined {
		combined[i] = (mgN[i] + luN[i]) / 2
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return combined[order[a]] < combined[order[b]] })
	for rank, idx := range order {
		m.TNorm[idx] = float64(rank) / float64(n-1)
		m.Class[idx] = Eq1Class(m.TNorm[idx])
	}
	return m
}

// synthBenchmark draws n median-of-five runtimes with the given max/min
// spread.
func synthBenchmark(rng *rand.Rand, n int, spread float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Right-skewed position in [0, 1]: squaring biases toward
		// fast nodes.
		u := rng.Float64()
		u = u * u
		base := math.Exp(u * math.Log(spread))
		// Median of five noisy repetitions (±1% run-to-run noise).
		reps := make([]float64, 5)
		for r := range reps {
			reps[r] = base * (1 + 0.01*(rng.Float64()*2-1))
		}
		sort.Float64s(reps)
		out[i] = reps[2]
	}
	// Rescale to the exact published spread.
	lo, hi := out[0], out[0]
	for _, v := range out {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for i, v := range out {
		frac := (v - lo) / (hi - lo)
		out[i] = 1 + frac*(spread-1)
	}
	return out
}

func minMaxNormalize(xs []float64) []float64 {
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]float64, len(xs))
	if hi == lo {
		return out
	}
	for i, v := range xs {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}

// ClassHistogram counts nodes per performance class (paper Figure 7a).
func (m *VariationModel) ClassHistogram() map[int]int {
	out := make(map[int]int)
	for _, c := range m.Class {
		out[c]++
	}
	return out
}

// Apply labels the graph's node vertices with their performance class, in
// node-ID order. It returns the number of nodes labeled.
func (m *VariationModel) Apply(g *resgraph.Graph) int {
	nodes := g.ByType("node")
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	n := 0
	for i, v := range nodes {
		if i >= len(m.Class) {
			break
		}
		v.SetProperty(match.PerfClassKey, itoa(m.Class[i]))
		n++
	}
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TraceJob is one job of a synthetic queue snapshot: a whole-node
// allocation of Nodes nodes for Duration seconds.
type TraceJob struct {
	ID       int64
	Nodes    int64
	Duration int64
}

// Jobspec renders the trace job as a canonical whole-node request:
// Nodes exclusive nodes, each with coresPerNode cores.
func (tj TraceJob) Jobspec(coresPerNode int64) *jobspec.Jobspec {
	return jobspec.New(tj.Duration,
		jobspec.RX("node", tj.Nodes, jobspec.R("core", coresPerNode)))
}

// GenerateTrace synthesizes n queue-snapshot jobs. Node counts follow a
// power-of-two-biased log-uniform distribution in [1, maxNodes] (capacity
// clusters run mostly small-to-mid jobs with a heavy tail), and durations
// are log-uniform between 5 minutes and 12 hours, matching the paper's
// conservative-backfilling horizon.
func GenerateTrace(n int, maxNodes int64, seed int64) []TraceJob {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]TraceJob, n)
	maxExp := math.Log2(float64(maxNodes))
	for i := range jobs {
		e := rng.Float64() * maxExp
		nodes := int64(math.Exp2(e))
		if rng.Intn(2) == 0 {
			// Half the jobs land exactly on a power of two.
			nodes = int64(math.Exp2(math.Floor(e)))
		}
		if nodes < 1 {
			nodes = 1
		}
		if nodes > maxNodes {
			nodes = maxNodes
		}
		const minDur, maxDur = 300.0, 43200.0
		d := minDur * math.Exp(rng.Float64()*math.Log(maxDur/minDur))
		jobs[i] = TraceJob{ID: int64(i + 1), Nodes: nodes, Duration: int64(d)}
	}
	return jobs
}

// FigureOfMerit computes paper Equation 2 for one allocation: the spread
// (max - min) of performance classes across the job's nodes. Jobs on a
// single class score 0; unlabeled nodes are ignored.
func FigureOfMerit(alloc *traverser.Allocation, policy match.Variation) int {
	minC, maxC := 0, 0
	first := true
	for _, v := range alloc.Nodes() {
		c := policy.ClassOf(v, -1)
		if c < 0 {
			continue
		}
		if first {
			minC, maxC = c, c
			first = false
			continue
		}
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	return maxC - minC
}

// FomHistogram tallies figure-of-merit values over a set of allocations
// (paper Table 1 / Figure 8). The histogram always covers 0..NumClasses-1.
func FomHistogram(allocs []*traverser.Allocation, policy match.Variation) []int {
	hist := make([]int, NumClasses)
	for _, a := range allocs {
		f := FigureOfMerit(a, policy)
		if f >= 0 && f < len(hist) {
			hist[f]++
		}
	}
	return hist
}
