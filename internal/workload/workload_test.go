package workload

import (
	"math"
	"testing"
	"testing/quick"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

func TestEq1Boundaries(t *testing.T) {
	cases := []struct {
		t    float64
		want int
	}{
		{0, 1}, {0.10, 1}, {0.1001, 2}, {0.25, 2}, {0.26, 3},
		{0.40, 3}, {0.41, 4}, {0.60, 4}, {0.61, 5}, {1.0, 5},
	}
	for _, c := range cases {
		if got := Eq1Class(c.t); got != c.want {
			t.Errorf("Eq1Class(%g) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestGenerateVariationSpreads(t *testing.T) {
	m := GenerateVariation(2418, 42)
	for name, xs := range map[string][]float64{"MG": m.MG, "LULESH": m.LULESH} {
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		spread := hi / lo
		want := MGSpread
		if name == "LULESH" {
			want = LULESHSpread
		}
		if math.Abs(spread-want) > 1e-9 {
			t.Errorf("%s spread = %g, want %g", name, spread, want)
		}
	}
}

func TestGenerateVariationDeterministic(t *testing.T) {
	a := GenerateVariation(100, 7)
	b := GenerateVariation(100, 7)
	for i := range a.Class {
		if a.Class[i] != b.Class[i] || a.TNorm[i] != b.TNorm[i] {
			t.Fatal("same seed must reproduce the model")
		}
	}
	c := GenerateVariation(100, 8)
	same := true
	for i := range a.TNorm {
		if a.TNorm[i] != c.TNorm[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical models")
	}
}

func TestClassHistogramMatchesEq1Fractions(t *testing.T) {
	// Percentile binning means the histogram follows Eq. 1's ranges:
	// 10%, 15%, 15%, 20%, 40% of 2418 nodes.
	m := GenerateVariation(2418, 1)
	h := m.ClassHistogram()
	want := map[int]float64{1: 0.10, 2: 0.15, 3: 0.15, 4: 0.20, 5: 0.40}
	total := 0
	for c := 1; c <= NumClasses; c++ {
		total += h[c]
	}
	if total != 2418 {
		t.Fatalf("total = %d", total)
	}
	for c, frac := range want {
		got := float64(h[c]) / 2418
		if math.Abs(got-frac) > 0.01 {
			t.Errorf("class %d fraction = %.3f, want ~%.2f", c, got, frac)
		}
	}
}

func TestApplyLabelsNodes(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(2, 3, 2, 0, 0), 0, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := GenerateVariation(6, 3)
	if n := m.Apply(g); n != 6 {
		t.Fatalf("labeled %d nodes", n)
	}
	pol := match.NewVariation("")
	for i, v := range g.ByType("node") {
		if c := pol.ClassOf(v, -1); c != m.Class[i] && v.ID == int64(i) {
			t.Fatalf("node %d class %d, want %d", v.ID, c, m.Class[i])
		}
	}
	// Model larger than graph: labels all nodes, returns node count.
	g2, _ := grug.BuildGraph(grug.Small(1, 2, 2, 0, 0), 0, 1000, nil)
	if n := GenerateVariation(50, 3).Apply(g2); n != 2 {
		t.Fatalf("labeled %d", n)
	}
}

func TestGenerateTraceBounds(t *testing.T) {
	jobs := GenerateTrace(200, 256, 9)
	if len(jobs) != 200 {
		t.Fatalf("len = %d", len(jobs))
	}
	small := 0
	for _, j := range jobs {
		if j.Nodes < 1 || j.Nodes > 256 {
			t.Fatalf("job %d nodes = %d", j.ID, j.Nodes)
		}
		if j.Duration < 300 || j.Duration > 43200 {
			t.Fatalf("job %d duration = %d", j.ID, j.Duration)
		}
		if j.Nodes <= 16 {
			small++
		}
	}
	// Log-uniform: most jobs are small.
	if small < 100 {
		t.Fatalf("only %d/200 jobs <= 16 nodes; distribution skewed large", small)
	}
}

func TestTraceJobspec(t *testing.T) {
	tj := TraceJob{ID: 1, Nodes: 4, Duration: 600}
	js := tj.Jobspec(36)
	if err := js.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := js.TotalCounts()
	if counts["node"] != 4 || counts["core"] != 144 || js.Duration != 600 {
		t.Fatalf("counts = %v, dur = %d", counts, js.Duration)
	}
}

func TestFigureOfMerit(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(1, 4, 2, 0, 0), 0, 1<<30,
		resgraph.PruneSpec{resgraph.ALL: {"core"}})
	if err != nil {
		t.Fatal(err)
	}
	classes := []string{"1", "1", "3", "5"}
	for i, v := range g.ByType("node") {
		v.SetProperty(match.PerfClassKey, classes[i])
	}
	tr, err := traverser.New(g, match.LowID{})
	if err != nil {
		t.Fatal(err)
	}
	pol := match.NewVariation("")

	// Job on nodes 0,1 (both class 1): fom 0.
	a1, err := tr.MatchAllocate(1, jobspec.New(10, jobspec.SlotR(2, jobspec.R("node", 1, jobspec.R("core", 2)))), 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := FigureOfMerit(a1, pol); f != 0 {
		t.Fatalf("fom = %d, want 0", f)
	}
	// Job on nodes 2,3 (classes 3 and 5): fom 2.
	a2, err := tr.MatchAllocate(2, jobspec.New(10, jobspec.SlotR(2, jobspec.R("node", 1, jobspec.R("core", 2)))), 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := FigureOfMerit(a2, pol); f != 2 {
		t.Fatalf("fom = %d, want 2", f)
	}
	hist := FomHistogram([]*traverser.Allocation{a1, a2}, pol)
	if hist[0] != 1 || hist[2] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

// TestQuickEq1Monotonic property: class is monotone in the score.
func TestQuickEq1Monotonic(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return Eq1Class(a) <= Eq1Class(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n int
		w string
	}{{0, "0"}, {5, "5"}, {42, "42"}, {2418, "2418"}} {
		if got := itoa(c.n); got != c.w {
			t.Errorf("itoa(%d) = %q", c.n, got)
		}
	}
}
