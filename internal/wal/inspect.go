package wal

// Offline inspection of a closed log directory, used by the crash-drill
// harness: Frames enumerates every committed record boundary with its
// file offset so a drill can truncate the directory at each one and
// assert that recovery from the truncated copy reproduces the uncrashed
// run exactly.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FramePos locates one record in a log directory.
type FramePos struct {
	// Path is the segment file holding the record.
	Path string
	// LSN is the record's log sequence number.
	LSN uint64
	// Start and End are the record's byte offsets within Path;
	// truncating Path at End (and removing later segments) simulates a
	// crash immediately after this record reached disk.
	Start, End int64
	// Type and Commit echo the frame header.
	Type   byte
	Commit bool
}

// Frames lists every valid record in dir's segments in LSN order. It
// reads the files as they are — no truncation or repair — stopping each
// segment at its first invalid frame. Intended for tests and drills.
func Frames(dir string) ([]FramePos, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWAL, err)
	}
	var out []FramePos
	for _, p := range names {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWAL, err)
		}
		if len(data) < segHeaderSize || string(data[:8]) != segMagic {
			continue
		}
		lsn := binary.LittleEndian.Uint64(data[8:16])
		off := segHeaderSize
		for off < len(data) {
			typ, commit, _, next, ok := parseFrame(data, off, DefaultMaxRecord)
			if !ok {
				break
			}
			out = append(out, FramePos{Path: p, LSN: lsn, Start: int64(off),
				End: int64(next), Type: typ, Commit: commit})
			off = next
			lsn++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out, nil
}

// SnapshotPos locates one snapshot file.
type SnapshotPos struct {
	Path string
	LSN  uint64
}

// Snapshots lists the valid snapshots in dir, newest first.
func Snapshots(dir string) ([]SnapshotPos, error) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWAL, err)
	}
	var out []SnapshotPos
	for _, p := range names {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWAL, err)
		}
		if lsn, _, ok := parseSnapshot(data); ok {
			out = append(out, SnapshotPos{Path: p, LSN: lsn})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN > out[j].LSN })
	return out, nil
}

// TruncateAt simulates a crash at frame boundary (or mid-frame) offset
// `at` in file path, removing every segment and snapshot in dir that
// could let recovery see past that point: later segments, and snapshots
// covering an LSN beyond boundLSN. Drills call this on a copy of a live
// log directory.
func TruncateAt(dir, path string, at int64, boundLSN uint64) error {
	if err := os.Truncate(path, at); err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	var cutFirst uint64
	if data, err := os.ReadFile(path); err == nil && len(data) >= segHeaderSize {
		cutFirst = binary.LittleEndian.Uint64(data[8:16])
	}
	for _, p := range segs {
		if p == path {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "%016x.wal", &first); err != nil {
			continue
		}
		if first > cutFirst {
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("%w: %v", ErrWAL, err)
			}
		}
	}
	snaps, err := Snapshots(dir)
	if err != nil {
		return err
	}
	for _, s := range snaps {
		if s.LSN > boundLSN {
			if err := os.Remove(s.Path); err != nil {
				return fmt.Errorf("%w: %v", ErrWAL, err)
			}
		}
	}
	return nil
}
