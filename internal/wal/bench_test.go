package wal

import (
	"testing"
	"time"
)

// nullSyncer discards writes so the benchmark measures the append path
// (framing, CRC, buffering), not the disk.
type nullSyncer struct{}

func (nullSyncer) Write(p []byte) (int, error) { return len(p), nil }
func (nullSyncer) Sync() error                 { return nil }
func (nullSyncer) Close() error                { return nil }

// BenchmarkWALAppend gates the per-record append path: group commit
// means the hot scheduling loop only frames and buffers, so this must
// stay allocation-free and in the tens of nanoseconds.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	o := Options{
		SyncInterval: time.Hour, // flusher never fires during the run
		SegmentBytes: 1 << 40,
		NewSyncer:    func(string) (WriteSyncer, error) { return nullSyncer{}, nil },
	}
	l, err := Open(dir, o)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(byte(i%7+1), i%8 == 7, payload); err != nil {
			b.Fatal(err)
		}
	}
}
