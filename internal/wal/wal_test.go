package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testOptions syncs on every commit (no background flusher) so tests
// are deterministic about what reached disk.
func testOptions() Options {
	return Options{SyncInterval: -1}
}

func mustOpen(t *testing.T, dir string, o Options) *Log {
	t.Helper()
	l, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, commitEvery int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("record-%03d", i))
		commit := commitEvery > 0 && (i+1)%commitEvery == 0
		if _, err := l.Append(byte(i%7+1), commit, payload); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	appendN(t, l, 10, 2)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Errorf("record %d: LSN %d, want %d", i, r.LSN, i+1)
		}
		want := fmt.Sprintf("record-%03d", i)
		if string(r.Payload) != want {
			t.Errorf("record %d: payload %q, want %q", i, r.Payload, want)
		}
		if r.Commit != ((i+1)%2 == 0) {
			t.Errorf("record %d: commit %v", i, r.Commit)
		}
		if r.Type != byte(i%7+1) {
			t.Errorf("record %d: type %d", i, r.Type)
		}
	}
	st := l2.Stats()
	if st.RecordsReplayed != 10 || st.TruncatedBytes != 0 || st.LastLSN != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUncommittedTailRollback(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	appendN(t, l, 6, 3) // commits at 3 and 6
	// Three trailing records with no commit flag.
	for i := 0; i < 3; i++ {
		if _, err := l.Append(1, false, []byte("uncommitted")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6 (uncommitted tail dropped)", len(recs))
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Error("expected TruncatedBytes > 0 for rolled-back tail")
	}
	// New appends continue the LSN sequence from the last commit.
	lsn, err := l2.Append(1, true, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 7 {
		t.Errorf("post-recovery LSN = %d, want 7", lsn)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, frameHeaderSize - 1} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, testOptions())
			appendN(t, l, 5, 1)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("segments: %v %v", segs, err)
			}
			// Tear the tail of the only populated segment.
			p := segs[0]
			fi, _ := os.Stat(p)
			if err := os.Truncate(p, fi.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}

			l2 := mustOpen(t, dir, testOptions())
			defer l2.Close()
			recs := collect(t, l2)
			if len(recs) != 4 {
				t.Fatalf("replayed %d records, want 4 after torn tail", len(recs))
			}
			if st := l2.Stats(); st.TruncatedBytes == 0 {
				t.Error("expected TruncatedBytes > 0")
			}
		})
	}
}

func TestBitFlipTruncatesFromCorruption(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	appendN(t, l, 8, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	frames, err := Frames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 8 {
		t.Fatalf("Frames = %d, want 8", len(frames))
	}
	// Flip one payload byte in the 5th record: records 5..8 must go.
	f := frames[4]
	data, _ := os.ReadFile(f.Path)
	data[f.Start+frameHeaderSize] ^= 0x40
	if err := os.WriteFile(f.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 after bit flip in record 5", len(recs))
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Error("expected TruncatedBytes > 0")
	}
}

func TestSegmentRotationAndContinuity(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.SegmentBytes = 1 // rotate after every commit
	l := mustOpen(t, dir, o)
	appendN(t, l, 9, 3) // three commit units -> three populated segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want >= 3", len(segs))
	}
	l2 := mustOpen(t, dir, o)
	defer l2.Close()
	if recs := collect(t, l2); len(recs) != 9 {
		t.Fatalf("replayed %d records across segments, want 9", len(recs))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	appendN(t, l, 6, 3)
	payload := []byte(`{"state":"through-6"}`)
	if err := l.SaveSnapshot(payload); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	appendN(t, l, 4, 2) // LSNs 7..10
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	lsn, got, ok := l2.Snapshot()
	if !ok || lsn != 6 || !bytes.Equal(got, payload) {
		t.Fatalf("Snapshot = (%d, %q, %v), want (6, %q, true)", lsn, got, ok, payload)
	}
	recs := collect(t, l2)
	if len(recs) != 4 || recs[0].LSN != 7 {
		t.Fatalf("replay after snapshot: %d records first LSN %d, want 4 from 7",
			len(recs), recs[0].LSN)
	}
	st := l2.Stats()
	if st.SnapshotLSN != 6 || st.RecordsReplayed != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOptions())
	appendN(t, l, 4, 2)
	if err := l.SaveSnapshot([]byte("old-snap")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 2)
	if err := l.SaveSnapshot([]byte("new-snap")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot.
	newest := filepath.Join(dir, snapName(8))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	lsn, got, ok := l2.Snapshot()
	if !ok || lsn != 4 || string(got) != "old-snap" {
		t.Fatalf("Snapshot = (%d, %q, %v), want fallback to (4, old-snap)", lsn, got, ok)
	}
	// Records 5..8 must still replay on top of the older snapshot.
	if recs := collect(t, l2); len(recs) != 4 || recs[0].LSN != 5 {
		t.Fatalf("replay = %d records from LSN %v, want 4 from 5", len(recs), recs)
	}
}

func TestSnapshotCompactionRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.SegmentBytes = 1 // segment per commit
	l := mustOpen(t, dir, o)
	for round := 0; round < 4; round++ {
		appendN(t, l, 3, 3)
		if err := l.SaveSnapshot([]byte(fmt.Sprintf("snap-%d", round))); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := Snapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != DefaultKeepSnapshots {
		t.Fatalf("kept %d snapshots, want %d", len(snaps), DefaultKeepSnapshots)
	}
	// Segments covered by the oldest kept snapshot (LSN 6) are gone.
	frames, err := Frames(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if f.LSN <= snaps[len(snaps)-1].LSN {
			t.Errorf("segment record LSN %d survived compaction below snapshot %d",
				f.LSN, snaps[len(snaps)-1].LSN)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted directory still recovers to the same state.
	l2 := mustOpen(t, dir, o)
	defer l2.Close()
	if lsn, got, ok := l2.Snapshot(); !ok || lsn != 12 || string(got) != "snap-3" {
		t.Fatalf("Snapshot after compaction = (%d, %q, %v)", lsn, got, ok)
	}
	if recs := collect(t, l2); len(recs) != 0 {
		t.Fatalf("replay = %d records, want 0 (snapshot current)", len(recs))
	}
}

func TestMissingPrefixIsError(t *testing.T) {
	// A gap between the snapshot and the oldest surviving post-snapshot
	// record is unrecoverable: the surviving records cannot be applied
	// consistently on top of the snapshot, so Open must refuse rather
	// than silently skip committed state.
	dir := t.TempDir()
	o := testOptions()
	o.SegmentBytes = 1 // rotate after every commit: one record per segment
	l := mustOpen(t, dir, o)
	appendN(t, l, 2, 1)
	if err := l.SaveSnapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 1) // LSNs 3..6, one segment each
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segName(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, o); err == nil || !errors.Is(err, ErrWAL) {
		t.Fatalf("Open = %v, want wrapped ErrWAL for missing log prefix", err)
	}
}

func TestIntraLogHoleDropsSuffix(t *testing.T) {
	// A hole in the middle of the log (a deleted segment) truncates
	// everything at and after the hole, like tail corruption would.
	dir := t.TempDir()
	o := testOptions()
	o.SegmentBytes = 1
	l := mustOpen(t, dir, o)
	appendN(t, l, 6, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segName(3))); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, o)
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 2 {
		t.Fatalf("replay = %d records, want 2 (suffix past hole dropped)", len(recs))
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Error("expected TruncatedBytes > 0 for dropped suffix")
	}
}

func TestFaultInjectionStickyError(t *testing.T) {
	t.Run("fsync", func(t *testing.T) {
		plan := &FaultPlan{FailSyncAt: 2}
		o := testOptions()
		o.NewSyncer = plan.NewSyncer
		l := mustOpen(t, t.TempDir(), o)
		defer l.Close()
		var appendErr error
		for i := 0; i < 10 && appendErr == nil; i++ {
			_, appendErr = l.Append(1, true, []byte("x"))
		}
		if appendErr == nil {
			t.Fatal("no error after injected fsync failure")
		}
		if !errors.Is(appendErr, ErrWAL) {
			t.Errorf("error %v does not wrap ErrWAL", appendErr)
		}
		if l.Err() == nil {
			t.Error("error not sticky")
		}
		if _, err := l.Append(1, true, []byte("y")); !errors.Is(err, ErrWAL) {
			t.Errorf("append after failure = %v, want wrapped ErrWAL", err)
		}
	})
	t.Run("short-write", func(t *testing.T) {
		plan := &FaultPlan{ShortWriteAt: 3}
		o := testOptions()
		o.NewSyncer = plan.NewSyncer
		l := mustOpen(t, t.TempDir(), o)
		defer l.Close()
		var appendErr error
		for i := 0; i < 10 && appendErr == nil; i++ {
			_, appendErr = l.Append(1, true, []byte("payload-payload-payload"))
		}
		if !errors.Is(appendErr, ErrWAL) {
			t.Fatalf("error %v, want wrapped ErrWAL after short write", appendErr)
		}
	})
	t.Run("write", func(t *testing.T) {
		plan := &FaultPlan{FailWriteAt: 2}
		o := testOptions()
		o.NewSyncer = plan.NewSyncer
		l := mustOpen(t, t.TempDir(), o)
		defer l.Close()
		var appendErr error
		for i := 0; i < 10 && appendErr == nil; i++ {
			_, appendErr = l.Append(1, true, []byte("x"))
		}
		if !errors.Is(appendErr, ErrWAL) || !errors.Is(appendErr, ErrInjected) {
			t.Fatalf("error %v, want wrapped ErrWAL+ErrInjected", appendErr)
		}
	})
}

// TestShortWriteRecovers proves a crash after a short write still
// recovers: the torn frame truncates away and committed records before
// it survive.
func TestShortWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{ShortWriteAt: 3}
	o := testOptions()
	o.NewSyncer = plan.NewSyncer
	l := mustOpen(t, dir, o)
	n := 0
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, true, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			break
		}
		n++
	}
	_ = l.Close() // may report the sticky error; the files are what matter

	l2 := mustOpen(t, dir, testOptions())
	defer l2.Close()
	recs := collect(t, l2)
	// The torn half-frame was the failed append: everything that
	// succeeded survives, the tear truncates away.
	if len(recs) != n || n == 0 {
		t.Fatalf("recovered %d records after short write, want the %d successful appends", len(recs), n)
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Error("expected TruncatedBytes > 0 for the torn half-frame")
	}
	for i, r := range recs {
		if want := fmt.Sprintf("rec-%d", i); string(r.Payload) != want {
			t.Errorf("record %d = %q, want %q", i, r.Payload, want)
		}
	}
}

func TestAppendAllocationFree(t *testing.T) {
	o := Options{SyncInterval: 1e9, SegmentBytes: 1 << 40}
	l := mustOpen(t, t.TempDir(), o)
	defer l.Close()
	payload := bytes.Repeat([]byte("p"), 64)
	// Warm the buffer past its high-water mark.
	for i := 0; i < 100; i++ {
		if _, err := l.Append(1, i%8 == 7, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := l.Append(1, false, payload); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.1 {
		t.Errorf("Append allocates %.2f/op, want 0", avg)
	}
}

func TestMaxRecordRejected(t *testing.T) {
	o := testOptions()
	o.MaxRecord = 16
	l := mustOpen(t, t.TempDir(), o)
	defer l.Close()
	if _, err := l.Append(1, true, make([]byte, 17)); !errors.Is(err, ErrWAL) {
		t.Fatalf("oversized append = %v, want wrapped ErrWAL", err)
	}
	if l.Err() != nil {
		t.Error("oversized append must not poison the log")
	}
}

func TestTruncateAtEveryBoundary(t *testing.T) {
	// For every committed frame boundary, truncating there and
	// recovering yields exactly the records up to the last commit at or
	// before the boundary.
	refDir := t.TempDir()
	o := testOptions()
	o.SegmentBytes = 256
	l := mustOpen(t, refDir, o)
	appendN(t, l, 20, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	frames, err := Frames(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 20 {
		t.Fatalf("Frames = %d, want 20", len(frames))
	}
	for _, f := range frames {
		f := f
		t.Run(fmt.Sprintf("lsn-%d", f.LSN), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, refDir, dir)
			if err := TruncateAt(dir, filepath.Join(dir, filepath.Base(f.Path)), f.End, f.LSN); err != nil {
				t.Fatal(err)
			}
			l2 := mustOpen(t, dir, o)
			defer l2.Close()
			recs := collect(t, l2)
			wantLast := f.LSN - f.LSN%2 // commits every 2nd record
			if f.Commit {
				wantLast = f.LSN
			}
			if uint64(len(recs)) != wantLast {
				t.Fatalf("boundary %d: recovered %d records, want %d", f.LSN, len(recs), wantLast)
			}
		})
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
