package wal

// Snapshot files are the checkpoint half of the snapshot-plus-log
// scheme. Each is a single self-checking blob:
//
//	8 bytes  magic "FXSNAP01"
//	u64 LE   LSN the snapshot covers through
//	u32 LE   payload length
//	u32 LE   CRC32C of the payload
//	...      payload (opaque to this package)
//
// Files are named snap-%016x.snap by covered LSN and written to a
// temporary name first, then renamed, so a crash mid-write leaves
// either no file or a torn temp file — never a half-valid snapshot
// under the final name. A torn or CRC-failing snapshot is removed at
// Open and recovery falls back to the next-newest one, which is why
// retention keeps at least two.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

const (
	snapMagic      = "FXSNAP01" // 8 bytes
	snapHeaderSize = 24         // magic + u64 lsn + u32 len + u32 crc
)

func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// parseSnapshot validates a snapshot blob and returns its covered LSN
// and payload.
func parseSnapshot(data []byte) (lsn uint64, payload []byte, ok bool) {
	if len(data) < snapHeaderSize || string(data[:8]) != snapMagic {
		return 0, nil, false
	}
	lsn = binary.LittleEndian.Uint64(data[8:16])
	n := int(binary.LittleEndian.Uint32(data[16:20]))
	want := binary.LittleEndian.Uint32(data[20:24])
	if len(data) != snapHeaderSize+n {
		return 0, nil, false
	}
	payload = data[snapHeaderSize:]
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil, false
	}
	return lsn, payload, true
}

// loadSnapshots scans the directory for snapshot files, removes invalid
// ones (counting their bytes as truncated), and loads the newest valid
// payload.
func (l *Log) loadSnapshots() error {
	names, err := filepath.Glob(filepath.Join(l.dir, "snap-*.snap"))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	// Stray temp files from a crashed SaveSnapshot.
	if tmps, err := filepath.Glob(filepath.Join(l.dir, "snap-*.tmp")); err == nil {
		for _, p := range tmps {
			if fi, err := os.Stat(p); err == nil {
				l.stats.TruncatedBytes += fi.Size()
			}
			_ = os.Remove(p)
		}
	}
	for _, p := range names {
		data, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrWAL, err)
		}
		lsn, payload, ok := parseSnapshot(data)
		if !ok || snapName(lsn) != filepath.Base(p) {
			l.stats.TruncatedBytes += int64(len(data))
			_ = os.Remove(p)
			continue
		}
		l.snaps = append(l.snaps, snapInfo{path: p, lsn: lsn})
		if lsn > l.snapLSN {
			l.snapLSN = lsn
			l.snapshot = payload
		}
	}
	sort.Slice(l.snaps, func(i, j int) bool { return l.snaps[i].lsn > l.snaps[j].lsn })
	if l.snapLSN > 0 {
		if fi, err := os.Stat(filepath.Join(l.dir, snapName(l.snapLSN))); err == nil {
			l.stats.SnapshotAge = time.Since(fi.ModTime())
		}
		l.nextLSN = l.snapLSN + 1
	}
	return nil
}

// SaveSnapshot durably writes payload as a snapshot covering every
// record appended so far, then retires snapshots and segments made
// redundant by it: the newest KeepSnapshots snapshots survive, plus any
// segment that may still hold records after the oldest survivor's LSN.
// The active segment is rotated first so retirement can consider it.
func (l *Log) SaveSnapshot(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.rotateLocked(); err != nil {
		return err
	}
	lsn := l.nextLSN - 1
	final := filepath.Join(l.dir, snapName(lsn))
	tmp := final + ".tmp"
	w, err := l.o.NewSyncer(tmp)
	if err != nil {
		return l.fail(err)
	}
	hdr := make([]byte, snapHeaderSize, snapHeaderSize+len(payload))
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(payload, castagnoli))
	blob := append(hdr, payload...)
	n, werr := w.Write(blob)
	if werr == nil && n < len(blob) {
		werr = fmt.Errorf("short write (%d of %d bytes)", n, len(blob))
	}
	if werr == nil {
		werr = w.Sync()
	}
	if cerr := w.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return l.fail(werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return l.fail(err)
	}
	l.snaps = append([]snapInfo{{path: final, lsn: lsn}}, l.snaps...)
	l.snapLSN = lsn
	l.snapshot = append([]byte(nil), payload...)
	l.compactLocked()
	return nil
}

// compactLocked deletes snapshots beyond the retention count and
// segments whose records are all covered by the oldest retained
// snapshot. Deletion failures are ignored: a leftover file replays as a
// no-op or is retried next time.
func (l *Log) compactLocked() {
	if l.o.KeepAll {
		return
	}
	for len(l.snaps) > l.o.KeepSnapshots {
		last := l.snaps[len(l.snaps)-1]
		_ = os.Remove(last.path)
		l.snaps = l.snaps[:len(l.snaps)-1]
	}
	oldest := l.snaps[len(l.snaps)-1].lsn
	// A closed segment holds records [first, nextSegFirst); it is
	// redundant when every one of them is ≤ the oldest retained
	// snapshot's LSN, i.e. when the *next* segment starts at or before
	// oldest+1.
	keep := l.segs[:0]
	for i, s := range l.segs {
		next := l.curFirst
		if i+1 < len(l.segs) {
			next = l.segs[i+1].first
		}
		if next <= oldest+1 {
			_ = os.Remove(s.path)
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
}
