package wal

// Storage fault injection. FaultPlan wraps the default file syncer with
// deterministic failure triggers — short writes, write errors, fsync
// errors — counted globally across every file the log opens, so a test
// can say "the 3rd write anywhere fails" and exercise the sticky-error
// degradation path regardless of segment rotation timing. Bit flips and
// torn tails are applied to files at rest by test helpers instead (see
// Frames), since they model post-crash on-disk damage rather than
// failing syscalls.

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// ErrInjected marks failures produced by a FaultPlan.
var ErrInjected = errors.New("wal: injected fault")

// FaultPlan builds WriteSyncers that fail on demand. Counters are
// global across all files created through the plan and start at 1.
// Zero-valued triggers never fire.
type FaultPlan struct {
	// FailWriteAt makes the Nth Write call return an error.
	FailWriteAt int64
	// ShortWriteAt makes the Nth Write call write only half its input
	// (to the underlying file) and report the truncated count.
	ShortWriteAt int64
	// FailSyncAt makes the Nth Sync call return an error.
	FailSyncAt int64

	writes int64
	syncs  int64
}

// NewSyncer is an Options.NewSyncer implementation applying the plan.
func (p *FaultPlan) NewSyncer(path string) (WriteSyncer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, plan: p}, nil
}

type faultFile struct {
	f    *os.File
	plan *FaultPlan
}

func (w *faultFile) Write(p []byte) (int, error) {
	n := atomic.AddInt64(&w.plan.writes, 1)
	if w.plan.FailWriteAt != 0 && n == w.plan.FailWriteAt {
		return 0, fmt.Errorf("%w: write #%d", ErrInjected, n)
	}
	if w.plan.ShortWriteAt != 0 && n == w.plan.ShortWriteAt {
		half := len(p) / 2
		if _, err := w.f.Write(p[:half]); err != nil {
			return 0, err
		}
		return half, nil
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	n := atomic.AddInt64(&w.plan.syncs, 1)
	if w.plan.FailSyncAt != 0 && n == w.plan.FailSyncAt {
		return fmt.Errorf("%w: fsync #%d", ErrInjected, n)
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error { return w.f.Close() }
