package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALOpen feeds arbitrary bytes to the log recovery path as a
// segment file and a snapshot file. Open must never panic: corrupt
// input either truncates away (success) or surfaces a wrapped ErrWAL.
func FuzzWALOpen(f *testing.F) {
	// Seed with real on-disk bytes: a populated segment and snapshot.
	seedDir := f.TempDir()
	l, err := Open(seedDir, Options{SyncInterval: -1})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(byte(i+1), i%2 == 1, []byte("seed-payload")); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.SaveSnapshot([]byte(`{"seed":"snapshot"}`)); err != nil {
		f.Fatal(err)
	}
	if _, err := l.Append(9, true, []byte("post-snap")); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(seedDir, "*.wal"))
	for _, p := range segs {
		if data, err := os.ReadFile(p); err == nil && len(data) > segHeaderSize {
			f.Add(data, []byte(nil))
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(seedDir, "snap-*.snap"))
	for _, p := range snaps {
		if data, err := os.ReadFile(p); err == nil {
			f.Add([]byte(nil), data)
		}
	}
	f.Add([]byte(segMagic), []byte(snapMagic))

	f.Fuzz(func(t *testing.T, seg, snap []byte) {
		dir := t.TempDir()
		if len(seg) > 0 {
			if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
				t.Skip()
			}
		}
		if len(snap) > 0 {
			// Name the snapshot for whatever LSN its header claims, so
			// a self-consistent fuzz input exercises the load path.
			lsn := uint64(2)
			if got, _, ok := parseSnapshot(snap); ok {
				lsn = got
			}
			if err := os.WriteFile(filepath.Join(dir, snapName(lsn)), snap, 0o644); err != nil {
				t.Skip()
			}
		}
		l, err := Open(dir, Options{SyncInterval: -1})
		if err != nil {
			if !errors.Is(err, ErrWAL) {
				t.Fatalf("Open error %v does not wrap ErrWAL", err)
			}
			return
		}
		// The recovered log must be usable: replay everything and append.
		if err := l.Replay(func(Record) error { return nil }); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if _, err := l.Append(1, true, []byte("post-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}
