// Package wal implements the append-only write-ahead log under the
// scheduler's durability subsystem. It turns the point-in-time
// Checkpoint documents (fluxion + sched) into the *snapshot* half of a
// snapshot-plus-log scheme: every state-mutating scheduler operation is
// framed as one length-prefixed, CRC32C-protected record and appended to
// a segmented log, so a crash loses at most the un-fsynced group-commit
// window instead of everything since the last checkpoint.
//
// Layout of one frame (little-endian):
//
//	u32  payload length
//	u32  CRC32C over type ‖ flags ‖ payload (Castagnoli)
//	u8   record type (opaque to this package)
//	u8   flags (bit 0: commit — ends an atomic command unit)
//	...  payload
//
// Segments are files named %016x.wal by the LSN of their first record,
// with a 16-byte header (magic + first LSN). Records carry implicit
// LSNs: the segment's first LSN plus the record's index. Segments only
// rotate immediately after a commit frame, so an uncommitted tail is
// always confined to the final segment.
//
// Group commit: Append only copies the frame into an in-memory buffer;
// a background flusher writes and fsyncs the buffer every SyncInterval
// (or when FlushBytes accumulate), so the hot scheduling loop never
// blocks on a per-record fsync. The durability window is therefore the
// sync interval; recovery rolls back to the last complete command unit
// on disk regardless of where the crash landed.
//
// Recovery (Open) loads the newest valid snapshot, scans the segments,
// truncates at the first torn or CRC-failing frame, discards any
// trailing records past the last commit flag, and exposes the rest via
// Replay. Corruption truncates; it never fails the open. Only a missing
// log prefix (records between the snapshot and the oldest surviving
// segment) is unrecoverable and surfaces as a wrapped ErrWAL.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrWAL is wrapped by every log failure this package reports: decode
// errors on corrupt input, unrecoverable gaps, and storage-layer write or
// fsync failures (which make the log sticky-failed so callers can degrade
// to a clearly reported non-durable mode).
var ErrWAL = errors.New("wal: log failure")

const (
	segMagic        = "FXWAL001" // 8 bytes
	segHeaderSize   = 16         // magic + u64 first LSN
	frameHeaderSize = 10         // u32 len + u32 crc + type + flags

	flagCommit = 0x01
)

// Tunable defaults; zero values in Options select these.
const (
	DefaultSyncInterval  = 10 * time.Millisecond
	DefaultFlushBytes    = 256 << 10
	DefaultSegmentBytes  = 8 << 20
	DefaultMaxRecord     = 16 << 20
	DefaultKeepSnapshots = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteSyncer is the storage surface the log writes through; *os.File
// satisfies it. Tests inject failing implementations (see FaultPlan).
type WriteSyncer interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Options tunes a Log. Zero values select the defaults above.
type Options struct {
	// SyncInterval is the group-commit window: buffered frames are
	// written and fsynced at this period. Negative syncs on every commit
	// frame instead (no background flusher — deterministic, for tests).
	SyncInterval time.Duration
	// FlushBytes flushes early when this many bytes are buffered.
	FlushBytes int
	// SegmentBytes rotates to a new segment after a commit frame once
	// the current segment exceeds this size.
	SegmentBytes int64
	// MaxRecord bounds decoded payload sizes; larger length prefixes are
	// treated as corruption.
	MaxRecord int
	// KeepSnapshots is how many snapshots to retain; segments whose
	// records are all covered by the oldest retained snapshot are
	// deleted when a new snapshot is saved. Minimum (and default) 2, so
	// a torn newest snapshot can always fall back to a replayable older
	// one. Set large to disable compaction.
	KeepSnapshots int
	// KeepAll disables compaction entirely: every segment and snapshot
	// is retained. Archival mode, used by crash drills that need to
	// truncate the log at every historical record boundary.
	KeepAll bool
	// NewSyncer creates the storage for a new segment or snapshot file;
	// the default creates a plain file. Fault-injection hooks go here.
	NewSyncer func(path string) (WriteSyncer, error)
}

func (o *Options) fill() {
	if o.SyncInterval == 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = DefaultFlushBytes
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MaxRecord <= 0 {
		o.MaxRecord = DefaultMaxRecord
	}
	if o.KeepSnapshots < 2 {
		o.KeepSnapshots = DefaultKeepSnapshots
	}
	if o.NewSyncer == nil {
		o.NewSyncer = func(path string) (WriteSyncer, error) { return os.Create(path) }
	}
}

// RecoveryStats describes what Open found and repaired.
type RecoveryStats struct {
	// SegmentsScanned counts segment files examined.
	SegmentsScanned int
	// RecordsReplayed counts records available to Replay (after the
	// snapshot, up to the last complete command unit).
	RecordsReplayed int
	// TruncatedBytes counts bytes dropped: torn tails, frames past a
	// CRC failure, uncommitted trailing records, and corrupt snapshots.
	TruncatedBytes int64
	// SnapshotAge is the wall-clock age of the loaded snapshot file
	// (zero when starting without one).
	SnapshotAge time.Duration
	// SnapshotLSN is the LSN the loaded snapshot covers through (0 =
	// no snapshot).
	SnapshotLSN uint64
	// LastLSN is the last committed record on disk (0 = empty log).
	LastLSN uint64
}

// Record is one recovered frame.
type Record struct {
	LSN     uint64
	Type    byte
	Commit  bool
	Payload []byte
}

type segInfo struct {
	path  string
	first uint64
}

type snapInfo struct {
	path string
	lsn  uint64
}

// Log is an open write-ahead log directory.
type Log struct {
	dir string
	o   Options

	mu        sync.Mutex
	cur       WriteSyncer
	curPath   string
	curFirst  uint64
	curSize   int64 // header + written + buffered bytes
	buf       []byte
	dirtySync bool // bytes written since the last successful fsync
	nextLSN   uint64
	err       error // sticky; wrapped ErrWAL

	segs  []segInfo  // closed segments, ascending first LSN
	snaps []snapInfo // valid snapshots, newest first

	snapshot []byte
	snapLSN  uint64
	replay   []Record
	stats    RecoveryStats

	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// Open recovers the log in dir (creating it if absent) and prepares it
// for appending. Corrupt tails are truncated, uncommitted trailing
// records rolled back, and the newest valid snapshot loaded; inspect the
// results with Snapshot, Replay, and Stats. Appends go to a fresh
// segment starting at the recovered LSN.
func Open(dir string, o Options) (*Log, error) {
	o.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrWAL, err)
	}
	l := &Log{dir: dir, o: o, nextLSN: 1}
	if err := l.loadSnapshots(); err != nil {
		return nil, err
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	l.stats.RecordsReplayed = len(l.replay)
	l.stats.SnapshotLSN = l.snapLSN
	l.stats.LastLSN = l.nextLSN - 1
	if err := l.rotateLocked(); err != nil {
		return nil, l.err
	}
	l.stop = make(chan struct{})
	if o.SyncInterval > 0 {
		l.wg.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Err returns the sticky failure, if any. Once a write or fsync fails
// the log stops accepting appends and every call reports this error;
// callers should degrade to non-durable operation and say so.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns what recovery found.
func (l *Log) Stats() RecoveryStats { return l.stats }

// Snapshot returns the newest valid snapshot payload and the LSN it
// covers through; ok is false when the log has no usable snapshot.
func (l *Log) Snapshot() (lsn uint64, payload []byte, ok bool) {
	if l.snapLSN == 0 {
		return 0, nil, false
	}
	return l.snapLSN, l.snapshot, true
}

// SnapshotLSN returns the LSN covered by the newest snapshot (0 = none).
func (l *Log) SnapshotLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapLSN
}

// Replay calls fn for every recovered record after the snapshot, in LSN
// order, stopping at fn's first error.
func (l *Log) Replay(fn func(r Record) error) error {
	for _, r := range l.replay {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Append frames one record into the group-commit buffer and returns its
// LSN. commit marks the record as the end of an atomic command unit:
// recovery discards trailing records past the last commit, so crashes
// always recover to a command boundary. Append never fsyncs directly
// (the flusher does, or a FlushBytes overflow); it is therefore cheap
// and allocation-free in steady state.
func (l *Log) Append(typ byte, commit bool, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if len(payload) > l.o.MaxRecord {
		return 0, fmt.Errorf("%w: record of %d bytes exceeds max %d", ErrWAL, len(payload), l.o.MaxRecord)
	}
	var flags byte
	if commit {
		flags = flagCommit
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[8] = typ
	hdr[9] = flags
	start := len(l.buf)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	// type ‖ flags ‖ payload are contiguous in the buffer; CRC them in
	// place so the hot path never materializes a temporary slice.
	crc := crc32.Update(0, castagnoli, l.buf[start+8:])
	binary.LittleEndian.PutUint32(l.buf[start+4:start+8], crc)
	l.curSize += int64(frameHeaderSize + len(payload))
	lsn := l.nextLSN
	l.nextLSN++

	switch {
	case len(l.buf) >= l.o.FlushBytes,
		commit && l.o.SyncInterval < 0:
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
	}
	if commit && l.curSize >= l.o.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// Sync flushes and fsyncs all buffered frames now.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// Close flushes, fsyncs, and closes the log. It is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		l.wg.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.flushLocked()
	if l.cur != nil {
		if cerr := l.cur.Close(); cerr != nil && ferr == nil {
			ferr = fmt.Errorf("%w: %v", ErrWAL, cerr)
		}
		l.cur = nil
	}
	return ferr
}

func (l *Log) flushLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.o.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			_ = l.flushLocked()
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// flushLocked writes the buffer to the active segment and fsyncs.
func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.cur == nil {
		return nil
	}
	if len(l.buf) > 0 {
		n, err := l.cur.Write(l.buf)
		if err == nil && n < len(l.buf) {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(l.buf))
		}
		if err != nil {
			return l.fail(err)
		}
		l.buf = l.buf[:0]
		l.dirtySync = true
	}
	if l.dirtySync {
		if err := l.cur.Sync(); err != nil {
			return l.fail(err)
		}
		l.dirtySync = false
	}
	return nil
}

// fail records the sticky failure.
func (l *Log) fail(err error) error {
	l.err = fmt.Errorf("%w: %w", ErrWAL, err)
	return l.err
}

// rotateLocked closes the active segment (flushing first) and starts a
// new one whose first LSN is the next to be appended. A no-op when the
// active segment holds no records yet: closing it would recreate the
// same filename (segments are named by first LSN) and double-track it.
func (l *Log) rotateLocked() error {
	if l.cur != nil && l.curFirst == l.nextLSN {
		return nil
	}
	if l.cur != nil {
		if err := l.flushLocked(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			return l.fail(err)
		}
		l.segs = append(l.segs, segInfo{path: l.curPath, first: l.curFirst})
		l.cur = nil
	}
	path := filepath.Join(l.dir, segName(l.nextLSN))
	w, err := l.o.NewSyncer(path)
	if err != nil {
		return l.fail(err)
	}
	l.cur = w
	l.curPath = path
	l.curFirst = l.nextLSN
	l.curSize = segHeaderSize
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], l.nextLSN)
	l.buf = append(l.buf, hdr[:]...)
	l.dirtySync = true
	return nil
}

func segName(first uint64) string { return fmt.Sprintf("%016x.wal", first) }

// parseFrame decodes the frame at data[off:]. A short, oversized, or
// CRC-failing frame returns ok=false: the caller truncates there.
func parseFrame(data []byte, off, maxRecord int) (typ byte, commit bool, payload []byte, next int, ok bool) {
	if len(data)-off < frameHeaderSize {
		return 0, false, nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if n > maxRecord || off+frameHeaderSize+n > len(data) {
		return 0, false, nil, 0, false
	}
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	typ = data[off+8]
	flags := data[off+9]
	payload = data[off+frameHeaderSize : off+frameHeaderSize+n]
	if crc32.Checksum(data[off+8:off+frameHeaderSize+n], castagnoli) != want {
		return 0, false, nil, 0, false
	}
	return typ, flags&flagCommit != 0, payload, off + frameHeaderSize + n, true
}

// framePos locates one recovered record on disk, for uncommitted-tail
// truncation.
type framePos struct {
	path       string
	start, end int64
}

// scan reads every segment, truncating at the first corruption and
// rolling back trailing records past the last commit flag.
func (l *Log) scan() error {
	names, err := filepath.Glob(filepath.Join(l.dir, "*.wal"))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	type segFile struct {
		path  string
		first uint64
	}
	var files []segFile
	for _, p := range names {
		var first uint64
		base := filepath.Base(p)
		if _, err := fmt.Sscanf(base, "%016x.wal", &first); err != nil || segName(first) != base {
			continue // not one of ours
		}
		files = append(files, segFile{path: p, first: first})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].first < files[j].first })

	var (
		recs      []Record
		pos       []framePos
		lastGood  int // record count through the last commit flag
		expected  uint64
		corrupted bool
		scanned   []segInfo
		perSeg    = make(map[string]int) // surviving records per segment
	)
	dropFrom := len(files)
	for i, sf := range files {
		if corrupted {
			dropFrom = i
			break
		}
		data, err := os.ReadFile(sf.path)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrWAL, err)
		}
		l.stats.SegmentsScanned++
		if len(data) < segHeaderSize || string(data[:8]) != segMagic ||
			binary.LittleEndian.Uint64(data[8:16]) != sf.first {
			// An unreadable header leaves no usable records: drop the
			// file and everything after it.
			l.stats.TruncatedBytes += int64(len(data))
			_ = os.Remove(sf.path)
			dropFrom = i + 1
			break
		}
		if expected != 0 && sf.first != expected {
			// A hole in the LSN sequence: nothing at or past it can be
			// replayed consistently.
			dropFrom = i
			break
		}
		off := segHeaderSize
		lsn := sf.first
		for off < len(data) {
			typ, commit, payload, next, ok := parseFrame(data, off, l.o.MaxRecord)
			if !ok {
				l.stats.TruncatedBytes += int64(len(data) - off)
				if err := os.Truncate(sf.path, int64(off)); err != nil {
					return fmt.Errorf("%w: %v", ErrWAL, err)
				}
				corrupted = true
				dropFrom = i + 1
				break
			}
			recs = append(recs, Record{LSN: lsn, Type: typ, Commit: commit,
				Payload: append([]byte(nil), payload...)})
			pos = append(pos, framePos{path: sf.path, start: int64(off), end: int64(next)})
			perSeg[sf.path]++
			if commit {
				lastGood = len(recs)
			}
			off = next
			lsn++
		}
		expected = lsn
		scanned = append(scanned, segInfo{path: sf.path, first: sf.first})
	}
	for _, sf := range files[dropFrom:] {
		if fi, err := os.Stat(sf.path); err == nil {
			l.stats.TruncatedBytes += fi.Size()
		}
		_ = os.Remove(sf.path)
	}

	// Roll back the uncommitted tail: truncate each touched file to the
	// first dropped record's offset.
	if lastGood < len(recs) {
		cut := make(map[string]int64)
		for _, p := range pos[lastGood:] {
			if c, ok := cut[p.path]; !ok || p.start < c {
				cut[p.path] = p.start
			}
			l.stats.TruncatedBytes += p.end - p.start
			perSeg[p.path]--
		}
		for path, at := range cut {
			if err := os.Truncate(path, at); err != nil {
				return fmt.Errorf("%w: %v", ErrWAL, err)
			}
		}
		recs = recs[:lastGood]
	}

	// A segment left with no records (header-only) carries no state and,
	// if trailing, its name could collide with the fresh active segment
	// the upcoming rotation creates — delete instead of tracking it.
	for _, s := range scanned {
		if perSeg[s.path] == 0 {
			_ = os.Remove(s.path)
			continue
		}
		l.segs = append(l.segs, s)
	}

	if n := len(recs); n > 0 {
		l.nextLSN = recs[n-1].LSN + 1
	}
	if l.snapLSN >= l.nextLSN {
		l.nextLSN = l.snapLSN + 1
	}
	// Keep only records the snapshot does not already cover, and verify
	// the log reaches back far enough to replay from it.
	i := 0
	for i < len(recs) && recs[i].LSN <= l.snapLSN {
		i++
	}
	l.replay = recs[i:]
	if len(l.replay) > 0 && l.replay[0].LSN != l.snapLSN+1 {
		return fmt.Errorf("%w: log starts at LSN %d but snapshot covers through %d",
			ErrWAL, l.replay[0].LSN, l.snapLSN)
	}
	// A segment whose last record precedes the oldest retained snapshot
	// may survive a crashed compaction; it replays as a no-op, so leave
	// it for the next SaveSnapshot to retire.
	return nil
}

// String renders the stats compactly for status lines.
func (st RecoveryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d segments, %d records to replay", st.SegmentsScanned, st.RecordsReplayed)
	if st.SnapshotLSN > 0 {
		fmt.Fprintf(&b, ", snapshot@%d (%s old)", st.SnapshotLSN, st.SnapshotAge.Round(time.Millisecond))
	} else {
		b.WriteString(", no snapshot")
	}
	if st.TruncatedBytes > 0 {
		fmt.Fprintf(&b, ", %dB truncated", st.TruncatedBytes)
	}
	return b.String()
}
