// Package grug reads and materializes resource-graph generation recipes —
// Fluxion's GRUG (Generating Resources Using Graphs) mechanism. A recipe is
// a compact hierarchical description ("a cluster contains 56 racks, each
// containing 18 nodes, ...") that the builder unrolls into a full resource
// graph store.
//
// The paper's resource-query utility consumes GRUG files to simulate
// systems of thousands of nodes on a single machine (§6.1); the presets in
// this package reproduce the four levels of detail evaluated there, plus
// the quartz system used in the variation-aware case study (§6.3).
package grug

import (
	"errors"
	"fmt"

	"fluxion/internal/resgraph"
	"fluxion/internal/yamlite"
)

// ErrInvalid is wrapped by all recipe errors.
var ErrInvalid = errors.New("grug: invalid recipe")

// Node describes one level of the generation hierarchy: Count instances of
// a Type-typed pool (each of Size units) per parent instance, each
// containing the With sub-levels.
type Node struct {
	Type       string
	Count      int64
	Size       int64 // pool size per vertex; default 1
	Unit       string
	Properties map[string]string
	With       []*Node
}

// Recipe is a named generation recipe rooted at a single vertex.
type Recipe struct {
	Name string
	Root *Node
}

// N builds a recipe node with size 1.
func N(typ string, count int64, with ...*Node) *Node {
	return &Node{Type: typ, Count: count, Size: 1, With: with}
}

// NP builds a pool recipe node with the given per-vertex size.
func NP(typ string, count, size int64, unit string, with ...*Node) *Node {
	return &Node{Type: typ, Count: count, Size: size, Unit: unit, With: with}
}

// Validate checks the recipe for positive counts and sizes and a single
// root instance.
func (r *Recipe) Validate() error {
	if r.Root == nil {
		return fmt.Errorf("%w: missing root", ErrInvalid)
	}
	if r.Root.Count > 1 {
		return fmt.Errorf("%w: root count must be 1", ErrInvalid)
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Type == "" {
			return fmt.Errorf("%w: node with empty type", ErrInvalid)
		}
		if n.Count < 0 || (n != r.Root && n.Count == 0) {
			return fmt.Errorf("%w: node %q count %d", ErrInvalid, n.Type, n.Count)
		}
		if n.Size < 0 {
			return fmt.Errorf("%w: node %q size %d", ErrInvalid, n.Type, n.Size)
		}
		for _, c := range n.With {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(r.Root)
}

// TotalVertices returns the number of vertices the recipe unrolls to.
func (r *Recipe) TotalVertices() int64 {
	var walk func(n *Node) int64
	walk = func(n *Node) int64 {
		var per int64 = 1
		for _, c := range n.With {
			per += walk(c)
		}
		count := n.Count
		if count == 0 {
			count = 1
		}
		return count * per
	}
	if r.Root == nil {
		return 0
	}
	return walk(r.Root)
}

// Build unrolls the recipe into graph g (which must not be finalized). It
// returns the created root vertex.
func Build(g *resgraph.Graph, r *Recipe) (*resgraph.Vertex, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return buildNode(g, nil, r.Root)
}

func buildNode(g *resgraph.Graph, parent *resgraph.Vertex, n *Node) (*resgraph.Vertex, error) {
	count := n.Count
	if count == 0 {
		count = 1
	}
	var first *resgraph.Vertex
	for i := int64(0); i < count; i++ {
		size := n.Size
		if size == 0 {
			size = 1
		}
		v, err := g.AddVertex(n.Type, -1, size)
		if err != nil {
			return nil, err
		}
		v.Unit = n.Unit
		for k, val := range n.Properties {
			v.SetProperty(k, val)
		}
		if parent != nil {
			if err := g.AddContainment(parent, v); err != nil {
				return nil, err
			}
		}
		if first == nil {
			first = v
		}
		for _, c := range n.With {
			if _, err := buildNode(g, v, c); err != nil {
				return nil, err
			}
		}
	}
	return first, nil
}

// BuildGraph materializes a recipe into a fresh, finalized graph with the
// given planner range and prune spec.
func BuildGraph(r *Recipe, base, horizon int64, spec resgraph.PruneSpec) (*resgraph.Graph, error) {
	g := resgraph.NewGraph(base, horizon)
	if spec != nil {
		if err := g.SetPruneSpec(spec); err != nil {
			return nil, err
		}
	}
	if _, err := Build(g, r); err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseYAML reads a recipe document:
//
//	name: my-cluster
//	root:
//	  type: cluster
//	  with:
//	    - type: node
//	      count: 4
//	      with:
//	        - {type: core, count: 8}
//	        - {type: memory, count: 4, size: 16, unit: GB}
func ParseYAML(data []byte) (*Recipe, error) {
	doc, err := yamlite.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("grug: %w", err)
	}
	r := &Recipe{}
	if name, ok := yamlite.GetString(doc, "name"); ok {
		r.Name = name
	}
	rootMap, ok := yamlite.GetMap(doc, "root")
	if !ok {
		return nil, fmt.Errorf("%w: missing root section", ErrInvalid)
	}
	if r.Root, err = parseNode(rootMap); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

func parseNode(m map[string]any) (*Node, error) {
	n := &Node{Count: 1, Size: 1}
	var ok bool
	if n.Type, ok = yamlite.GetString(m, "type"); !ok {
		return nil, fmt.Errorf("%w: node missing type", ErrInvalid)
	}
	if c, ok := yamlite.GetInt(m, "count"); ok {
		n.Count = c
	}
	if s, ok := yamlite.GetInt(m, "size"); ok {
		n.Size = s
	}
	if u, ok := yamlite.GetString(m, "unit"); ok {
		n.Unit = u
	}
	if props, ok := yamlite.GetMap(m, "properties"); ok {
		n.Properties = make(map[string]string, len(props))
		for k, v := range props {
			n.Properties[k] = fmt.Sprintf("%v", v)
		}
	}
	if with, ok := yamlite.GetList(m, "with"); ok {
		for _, item := range with {
			cm, ok := item.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("%w: with entry is not a mapping", ErrInvalid)
			}
			c, err := parseNode(cm)
			if err != nil {
				return nil, err
			}
			n.With = append(n.With, c)
		}
	}
	return n, nil
}

// YAML renders the recipe back to its document form.
func (r *Recipe) YAML() []byte {
	doc := map[string]any{"root": nodeToAny(r.Root)}
	if r.Name != "" {
		doc["name"] = r.Name
	}
	return yamlite.Marshal(doc)
}

func nodeToAny(n *Node) map[string]any {
	m := map[string]any{"type": n.Type, "count": n.Count}
	if n.Size > 1 {
		m["size"] = n.Size
	}
	if n.Unit != "" {
		m["unit"] = n.Unit
	}
	if len(n.Properties) > 0 {
		p := make(map[string]any, len(n.Properties))
		for k, v := range n.Properties {
			p[k] = v
		}
		m["properties"] = p
	}
	if len(n.With) > 0 {
		with := make([]any, len(n.With))
		for i, c := range n.With {
			with[i] = nodeToAny(c)
		}
		m["with"] = with
	}
	return m
}
