package grug

import (
	"errors"
	"testing"

	"fluxion/internal/resgraph"
)

func TestBuildSmall(t *testing.T) {
	g, err := BuildGraph(Small(2, 3, 4, 16, 0), 0, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	root := g.Root(resgraph.Containment)
	agg := root.Aggregates()
	if agg["rack"] != 2 || agg["node"] != 6 || agg["core"] != 24 || agg["memory"] != 96 {
		t.Fatalf("aggregates = %v", agg)
	}
	// 1 cluster + 2 racks + 6 nodes + 24 cores + 6 memory = 39.
	if g.Len() != 39 {
		t.Fatalf("Len = %d", g.Len())
	}
	if v := g.ByPath("/cluster0/rack1/node4/core17"); v == nil {
		t.Fatal("deep path missing")
	}
}

func TestLODPresetsEquivalentCapacity(t *testing.T) {
	// All four LODs describe the same 1008-node system: 40320 cores,
	// 4032 GPUs, 258048 GB memory, 1612800 GB burst buffer.
	want := map[string]int64{
		"node": 1008, "core": 40320, "gpu": 4032,
		"memory": 258048, "bb": 1612800,
	}
	for _, r := range LODPresets() {
		g, err := BuildGraph(r, 0, 1<<20, nil)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		agg := g.Root(resgraph.Containment).Aggregates()
		for typ, n := range want {
			if agg[typ] != n {
				t.Errorf("%s: agg[%s] = %d, want %d", r.Name, typ, agg[typ], n)
			}
		}
	}
}

func TestLODVertexCounts(t *testing.T) {
	// High: 1 + 56 + 1008 + 2016 sockets + 2016*(20+2+8+8) = 79689.
	// Med: 1 + 56 + 1008 + 1008*(40+4+8+8) = 61545.
	// Low: 1 + 1008 + 1008*(8+4+4+4) = 21169.
	// Low2: Low + 56 racks = 21225.
	want := map[string]int64{
		"medium-1008-high": 79689,
		"medium-1008-med":  61545,
		"medium-1008-low":  21169,
		"medium-1008-low2": 21225,
	}
	for _, r := range LODPresets() {
		if got := r.TotalVertices(); got != want[r.Name] {
			t.Errorf("%s: TotalVertices = %d, want %d", r.Name, got, want[r.Name])
		}
		g, err := BuildGraph(r, 0, 1<<20, nil)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if int64(g.Len()) != want[r.Name] {
			t.Errorf("%s: built %d vertices, want %d", r.Name, g.Len(), want[r.Name])
		}
	}
}

func TestQuartzPaper(t *testing.T) {
	r := QuartzPaper()
	g, err := BuildGraph(r, 0, 1<<20, resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	agg := g.Root(resgraph.Containment).Aggregates()
	if agg["node"] != 2418 || agg["core"] != 87048 || agg["rack"] != 39 {
		t.Fatalf("aggregates = %v", agg)
	}
	if g.Root(resgraph.Containment).Filter().Total("node") != 2418 {
		t.Fatal("root node filter total")
	}
}

func TestDisaggregated(t *testing.T) {
	g, err := BuildGraph(Disaggregated(2, 1, 1, 1), 0, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := g.Root(resgraph.Containment).Aggregates()
	if agg["core"] != 2*16*32 || agg["gpu"] != 64 || agg["memory"] != 64*128 || agg["bb"] != 32*1024 {
		t.Fatalf("aggregates = %v", agg)
	}
}

func TestRecipeYAMLRoundTrip(t *testing.T) {
	orig := MedLOD()
	back, err := ParseYAML(orig.YAML())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, orig.YAML())
	}
	if back.Name != orig.Name {
		t.Fatalf("name = %q", back.Name)
	}
	if back.TotalVertices() != orig.TotalVertices() {
		t.Fatalf("vertices: %d vs %d", back.TotalVertices(), orig.TotalVertices())
	}
	// Build both and compare aggregates.
	g1, err := BuildGraph(orig, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGraph(back, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	a1 := g1.Root(resgraph.Containment).Aggregates()
	a2 := g2.Root(resgraph.Containment).Aggregates()
	for typ, n := range a1 {
		if a2[typ] != n {
			t.Errorf("agg[%s]: %d vs %d", typ, a2[typ], n)
		}
	}
}

func TestParseYAMLWithProperties(t *testing.T) {
	src := `
name: tagged
root:
  type: cluster
  with:
    - type: node
      count: 2
      properties:
        perfclass: 3
        vendor: amd
      with:
        - {type: core, count: 4}
`
	r, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(r, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.ByType("node")
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Property("perfclass") != "3" || n.Property("vendor") != "amd" {
			t.Fatalf("properties = %v", n.Properties)
		}
	}
}

func TestRecipeValidation(t *testing.T) {
	cases := []struct {
		name string
		r    *Recipe
	}{
		{"nil root", &Recipe{}},
		{"root count", &Recipe{Root: N("cluster", 2)}},
		{"zero count child", &Recipe{Root: N("cluster", 1, N("node", 0))}},
		{"empty type", &Recipe{Root: N("cluster", 1, N("", 1))}},
		{"bad size", &Recipe{Root: N("cluster", 1, &Node{Type: "x", Count: 1, Size: -1})}},
	}
	for _, c := range cases {
		if err := c.r.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	if _, err := ParseYAML([]byte("name: x")); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing root: %v", err)
	}
	if _, err := ParseYAML([]byte("root:\n  count: 1")); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing type: %v", err)
	}
}

func TestBuildIntoExistingGraph(t *testing.T) {
	g := resgraph.NewGraph(0, 100)
	root, err := Build(g, Small(1, 2, 2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if root.Type != "cluster" {
		t.Fatalf("root = %v", root)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 10 { // cluster + rack + 2 nodes + 4 cores... 1+1+2+4 = 8? plus nothing else
		// cluster(1) + rack(1) + node(2) + core(4) = 8
		if g.Len() != 8 {
			t.Fatalf("Len = %d", g.Len())
		}
	}
	// Invalid recipe refuses to build.
	if _, err := Build(g, &Recipe{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil root: %v", err)
	}
	// TotalVertices of empty recipe.
	if (&Recipe{}).TotalVertices() != 0 {
		t.Fatal("empty TotalVertices")
	}
}

func TestNodeDefaults(t *testing.T) {
	// Count 0 on a non-root node is invalid, but Size 0 defaults to 1
	// during build via the zero-size guard.
	n := &Node{Type: "x", Count: 1}
	r := &Recipe{Root: N("cluster", 1)}
	r.Root.With = []*Node{n}
	g := resgraph.NewGraph(0, 100)
	if _, err := Build(g, r); err != nil {
		t.Fatal(err)
	}
	if v := g.ByType("x"); len(v) != 1 || v[0].Size != 1 {
		t.Fatalf("x = %v", v)
	}
}
