package grug

import "fmt"

// Presets reproducing the systems evaluated in the paper.
//
// The four LOD recipes model the same 1008-node medium-size system (paper
// §6.1) at decreasing levels of detail; all four expose identical total
// capacity (40 cores, 4 GPUs, 256 GB memory, 1600 GB burst buffer per
// node), differing only in how the capacity is factored into vertices.

// HighLOD is the paper's High configuration: 1 cluster, 56 racks, 18 nodes
// per rack, 2 sockets per node, each socket holding 20 cores, 2 GPUs,
// 8 memory pools of 16 GB, and 8 burst-buffer pools of 100 GB.
func HighLOD() *Recipe { return HighLODRacks(56) }

// HighLODRacks is HighLOD scaled to the given rack count (18 nodes each).
func HighLODRacks(racks int64) *Recipe {
	return &Recipe{
		Name: fmt.Sprintf("medium-%d-high", racks*18),
		Root: N("cluster", 1,
			N("rack", racks,
				N("node", 18,
					N("socket", 2,
						N("core", 20),
						N("gpu", 2),
						NP("memory", 8, 16, "GB"),
						NP("bb", 8, 100, "GB"))))),
	}
}

// MedLOD coarsens the node-local level: sockets removed, 40 cores and 4
// GPUs directly under each node, 8 memory pools of 32 GB, 8 burst-buffer
// pools of 200 GB.
func MedLOD() *Recipe { return MedLODRacks(56) }

// MedLODRacks is MedLOD scaled to the given rack count.
func MedLODRacks(racks int64) *Recipe {
	return &Recipe{
		Name: fmt.Sprintf("medium-%d-med", racks*18),
		Root: N("cluster", 1,
			N("rack", racks,
				N("node", 18,
					N("core", 40),
					N("gpu", 4),
					NP("memory", 8, 32, "GB"),
					NP("bb", 8, 200, "GB")))),
	}
}

// lowNode is the Low/Low2 node-local shape: cores federated into 8 pools
// of 5, 4 memory pools of 64 GB, 4 burst-buffer pools of 400 GB.
func lowNode(count int64) *Node {
	return N("node", count,
		NP("core", 8, 5, ""),
		N("gpu", 4),
		NP("memory", 4, 64, "GB"),
		NP("bb", 4, 400, "GB"))
}

// LowLOD coarsens both levels: racks removed (1008 nodes directly under the
// cluster) and the Low node-local shape.
func LowLOD() *Recipe { return LowLODRacks(56) }

// LowLODRacks is LowLOD scaled to the node count of the given rack count.
func LowLODRacks(racks int64) *Recipe {
	return &Recipe{
		Name: fmt.Sprintf("medium-%d-low", racks*18),
		Root: N("cluster", 1, lowNode(racks*18)),
	}
}

// Low2LOD is identical to LowLOD except the rack level is kept, so pruning
// filters can cut the search space at a higher level (§6.1).
func Low2LOD() *Recipe { return Low2LODRacks(56) }

// Low2LODRacks is Low2LOD scaled to the given rack count.
func Low2LODRacks(racks int64) *Recipe {
	return &Recipe{
		Name: fmt.Sprintf("medium-%d-low2", racks*18),
		Root: N("cluster", 1, N("rack", racks, lowNode(18))),
	}
}

// LODPresets returns the four §6.1 recipes keyed by their paper labels in
// evaluation order.
func LODPresets() []*Recipe {
	return []*Recipe{HighLOD(), MedLOD(), LowLOD(), Low2LOD()}
}

// LODPresetsScaled returns the four §6.1 recipes scaled to racks racks
// (racks*18 nodes), preserving the per-node shapes.
func LODPresetsScaled(racks int64) []*Recipe {
	return []*Recipe{HighLODRacks(racks), MedLODRacks(racks), LowLODRacks(racks), Low2LODRacks(racks)}
}

// Quartz models the §6.3 case-study system: racks racks of nodesPerRack
// Broadwell nodes with coresPerNode cores each. The paper uses 39 racks ×
// 62 nodes × 36 cores (2418 nodes of the 2604-node quartz cluster).
func Quartz(racks, nodesPerRack, coresPerNode int64) *Recipe {
	return &Recipe{
		Name: fmt.Sprintf("quartz-%d", racks*nodesPerRack),
		Root: N("cluster", 1,
			N("rack", racks,
				N("node", nodesPerRack,
					N("core", coresPerNode)))),
	}
}

// QuartzPaper is the exact §6.3 configuration.
func QuartzPaper() *Recipe { return Quartz(39, 62, 36) }

// Small returns a tiny cluster for examples and tests: racks racks ×
// nodesPerRack nodes × (cores cores, memGB GB of memory in 1 GB pools of
// size memGB... a single pool of memGB units, bbGB of burst buffer).
func Small(racks, nodesPerRack, cores, memGB, bbGB int64) *Recipe {
	node := N("node", nodesPerRack, N("core", cores))
	if memGB > 0 {
		node.With = append(node.With, NP("memory", 1, memGB, "GB"))
	}
	if bbGB > 0 {
		node.With = append(node.With, NP("bb", 1, bbGB, "GB"))
	}
	return &Recipe{
		Name: "small",
		Root: N("cluster", 1, N("rack", racks, node)),
	}
}

// Disaggregated models the paper's §5.4 disaggregated supercomputer:
// specialized racks for CPUs, GPUs, memory, and burst buffers connected to
// one cluster vertex.
func Disaggregated(cpuRacks, gpuRacks, memRacks, bbRacks int64) *Recipe {
	return &Recipe{
		Name: "disaggregated",
		Root: N("cluster", 1,
			N("cpu-rack", cpuRacks, N("cpu-sled", 16, N("core", 32))),
			N("gpu-rack", gpuRacks, N("gpu-sled", 8, N("gpu", 8))),
			N("mem-rack", memRacks, NP("memory", 64, 128, "GB")),
			N("bb-rack", bbRacks, NP("bb", 32, 1024, "GB"))),
	}
}
