package planner

import (
	"errors"
	"testing"
)

// Tests for the dense type index (IndexTypes/PlannerByID) and the
// list-form span entry point (AddSpanList) the match kernel's SDFU
// update uses.

func testIDOf() func(string) int32 {
	ids := map[string]int32{"core": 3, "memory": 7, "gpu": 1}
	return func(rt string) int32 {
		if id, ok := ids[rt]; ok {
			return id
		}
		return -1
	}
}

func TestIndexTypesPlannerByID(t *testing.T) {
	m := newTestMulti(t)
	if m.PlannerByID(3) != nil {
		t.Fatal("PlannerByID indexed before IndexTypes")
	}
	m.IndexTypes(testIDOf())
	for rt, id := range map[string]int32{"core": 3, "memory": 7, "gpu": 1} {
		if m.PlannerByID(id) != m.Planner(rt) {
			t.Fatalf("PlannerByID(%d) != Planner(%q)", id, rt)
		}
	}
	// Untracked IDs, negatives, and out-of-range IDs return nil.
	for _, id := range []int32{-1, 0, 2, 6, 100} {
		if m.PlannerByID(id) != nil {
			t.Fatalf("PlannerByID(%d) = non-nil for untracked type", id)
		}
	}
}

func TestIndexTypesSurvivesUpdate(t *testing.T) {
	m := newTestMulti(t)
	idOf := func(rt string) int32 {
		switch rt {
		case "core":
			return 0
		case "memory":
			return 1
		case "gpu":
			return 2
		case "bb":
			return 5
		}
		return -1
	}
	m.IndexTypes(idOf)
	// Update creating a new member type must reindex with the retained
	// idOf so PlannerByID keeps working.
	if err := m.Update("bb", 8); err != nil {
		t.Fatal(err)
	}
	if m.PlannerByID(5) == nil || m.PlannerByID(5) != m.Planner("bb") {
		t.Fatal("new member type not indexed after Update")
	}
	if m.PlannerByID(0) != m.Planner("core") {
		t.Fatal("existing index lost after Update")
	}
}

func TestAddSpanListClaimsAndRemoves(t *testing.T) {
	m := newTestMulti(t) // core: 40, memory: 256, gpu: 4
	id, err := m.AddSpanList(10, 100, []string{"core", "memory", "gpu"}, []int64{8, 32, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Planner("core").AvailDuring(10, 100); got != 32 {
		t.Fatalf("core avail = %d, want 32", got)
	}
	if got, _ := m.Planner("memory").AvailDuring(10, 100); got != 224 {
		t.Fatalf("memory avail = %d, want 224", got)
	}
	// Zero-count entries must not claim anything.
	if got, _ := m.Planner("gpu").AvailDuring(10, 100); got != 4 {
		t.Fatalf("gpu avail = %d, want 4 (zero-count entry claimed)", got)
	}
	if err := m.RemoveSpan(id); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Planner("core").AvailDuring(10, 100); got != 40 {
		t.Fatalf("core avail after remove = %d, want 40", got)
	}
}

func TestAddSpanListErrors(t *testing.T) {
	m := newTestMulti(t)
	if _, err := m.AddSpanList(0, 10, []string{"core"}, []int64{1, 2}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("length mismatch: err = %v", err)
	}
	if _, err := m.AddSpanList(0, 10, []string{"nope"}, []int64{1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown type: err = %v", err)
	}
	if _, err := m.AddSpanList(0, 10, []string{"core"}, []int64{-1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative count: err = %v", err)
	}
	// Partial failure must roll back the members already added: memory
	// request exceeds its pool, so the preceding core claim must revert.
	if _, err := m.AddSpanList(0, 10, []string{"core", "memory"}, []int64{8, 1000}); err == nil {
		t.Fatal("over-capacity span list accepted")
	}
	if got, _ := m.Planner("core").AvailDuring(0, 10); got != 40 {
		t.Fatalf("core avail = %d after failed list, want 40 (rollback)", got)
	}
}
