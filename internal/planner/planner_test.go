package planner

import (
	"errors"
	"math/rand"
	"testing"

	"fluxion/internal/rbtree"
)

func mustAdd(t *testing.T, p *Planner, start, dur, req int64) int64 {
	t.Helper()
	id, err := p.AddSpan(start, dur, req)
	if err != nil {
		t.Fatalf("AddSpan(%d,%d,%d): %v", start, dur, req, err)
	}
	return id
}

// TestPaperFigure3 replays the worked example from paper §4.1 / Figure 3:
// an 8-unit pool with three jobs. The prose lists the second job as
// <3,3,1>, but the stated query answers (earliest 6-for-1 at t5, earliest
// 6-for-2 at t7) correspond to the figure's span covering [1,5), so the
// second span here uses duration 4.
func TestPaperFigure3(t *testing.T) {
	p := MustNew(0, 100, 8, "memory")
	mustAdd(t, p, 0, 1, 8) // <8,1,0>
	mustAdd(t, p, 1, 4, 3) // figure span: 3 units over [1,5)
	mustAdd(t, p, 6, 1, 7) // <7,1,6>

	// Availability timeline: t0:0, t1..t4:5, t5:8, t6:1, t7+:8.
	wantAvail := map[int64]int64{0: 0, 1: 5, 2: 5, 3: 5, 4: 5, 5: 8, 6: 1, 7: 8, 50: 8}
	for at, want := range wantAvail {
		got, err := p.AvailAt(at)
		if err != nil || got != want {
			t.Errorf("AvailAt(%d) = %d, %v; want %d", at, got, err, want)
		}
	}

	// "Can a request of 5 resource units for a duration of 2 be planned
	// at t1 or t6? Yes for t1, no for t6."
	if !p.CanFit(1, 2, 5) {
		t.Error("CanFit(1,2,5) = false, want true")
	}
	if p.CanFit(6, 2, 5) {
		t.Error("CanFit(6,2,5) = true, want false")
	}

	// "Given a job with 6 resource units for 1 duration unit, the
	// earliest point is t5; for a duration of 2 it is t7."
	if got, err := p.AvailTimeFirst(0, 1, 6); err != nil || got != 5 {
		t.Errorf("AvailTimeFirst(0,1,6) = %d, %v; want 5", got, err)
	}
	if got, err := p.AvailTimeFirst(0, 2, 6); err != nil || got != 7 {
		t.Errorf("AvailTimeFirst(0,2,6) = %d, %v; want 7", got, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, 8, "x"); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero horizon: err = %v", err)
	}
	if _, err := New(0, 10, 0, "x"); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero total: err = %v", err)
	}
	if _, err := New(5, 10, 3, "x"); err != nil {
		t.Errorf("valid: err = %v", err)
	}
}

func TestAddSpanValidation(t *testing.T) {
	p := MustNew(0, 100, 10, "core")
	if _, err := p.AddSpan(-1, 5, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("before base: %v", err)
	}
	if _, err := p.AddSpan(98, 5, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("past horizon: %v", err)
	}
	if _, err := p.AddSpan(0, 0, 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero duration: %v", err)
	}
	if _, err := p.AddSpan(0, 5, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero request: %v", err)
	}
	if _, err := p.AddSpan(0, 5, 11); !errors.Is(err, ErrNoSpace) {
		t.Errorf("over capacity: %v", err)
	}
	mustAdd(t, p, 0, 10, 6)
	if _, err := p.AddSpan(5, 10, 5); !errors.Is(err, ErrNoSpace) {
		t.Errorf("overlap overflow: %v", err)
	}
	if _, err := p.AddSpan(10, 10, 5); err != nil {
		t.Errorf("adjacent span should fit: %v", err)
	}
}

func TestSpanLookupAndRemove(t *testing.T) {
	p := MustNew(0, 1000, 4, "gpu")
	id := mustAdd(t, p, 10, 20, 3)
	s, err := p.Span(id)
	if err != nil || s.Start != 10 || s.Last != 30 || s.Planned != 3 {
		t.Fatalf("Span(%d) = %+v, %v", id, s, err)
	}
	if avail, _ := p.AvailAt(15); avail != 1 {
		t.Fatalf("AvailAt(15) = %d, want 1", avail)
	}
	if err := p.RemoveSpan(id); err != nil {
		t.Fatal(err)
	}
	if avail, _ := p.AvailAt(15); avail != 4 {
		t.Fatalf("after remove, AvailAt(15) = %d, want 4", avail)
	}
	if err := p.RemoveSpan(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	if _, err := p.Span(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Span after remove: %v", err)
	}
	if p.PointCount() != 1 {
		t.Fatalf("points not garbage collected: %d", p.PointCount())
	}
}

func TestPointGarbageCollectionSharedBoundary(t *testing.T) {
	p := MustNew(0, 100, 10, "core")
	a := mustAdd(t, p, 0, 10, 2) // boundary at 10
	b := mustAdd(t, p, 10, 10, 2)
	if p.PointCount() != 3 { // 0, 10, 20
		t.Fatalf("points = %d, want 3", p.PointCount())
	}
	if err := p.RemoveSpan(a); err != nil {
		t.Fatal(err)
	}
	// Point 10 still referenced by span b.
	if p.PointCount() != 3 {
		t.Fatalf("points = %d, want 3 (10 still referenced)", p.PointCount())
	}
	if err := p.RemoveSpan(b); err != nil {
		t.Fatal(err)
	}
	if p.PointCount() != 1 {
		t.Fatalf("points = %d, want 1", p.PointCount())
	}
}

func TestAvailTimeFirstFromOffset(t *testing.T) {
	p := MustNew(0, 1000, 8, "mem")
	mustAdd(t, p, 0, 100, 8) // fully busy [0,100)
	mustAdd(t, p, 200, 50, 6)

	// Earliest 4-for-10 from 0 is 100.
	if got, err := p.AvailTimeFirst(0, 10, 4); err != nil || got != 100 {
		t.Fatalf("got %d, %v; want 100", got, err)
	}
	// From 150 (not a scheduled point), 150 itself qualifies.
	if got, err := p.AvailTimeFirst(150, 10, 4); err != nil || got != 150 {
		t.Fatalf("got %d, %v; want 150", got, err)
	}
	// 4-for-100 from 150 collides with [200,250) usage; earliest is 250.
	if got, err := p.AvailTimeFirst(150, 100, 4); err != nil || got != 250 {
		t.Fatalf("got %d, %v; want 250", got, err)
	}
	// Request exceeding total.
	if _, err := p.AvailTimeFirst(0, 1, 9); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Window longer than the remaining horizon.
	if _, err := p.AvailTimeFirst(999, 5, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
}

func TestAvailTimeFirstNoSpace(t *testing.T) {
	p := MustNew(0, 100, 4, "c")
	mustAdd(t, p, 0, 100, 3)
	// 2 units never fit anywhere within the horizon.
	if _, err := p.AvailTimeFirst(0, 10, 2); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// ET tree must be restored after the failed search.
	if got, err := p.AvailTimeFirst(0, 10, 1); err != nil || got != 0 {
		t.Fatalf("after failed search: got %d, %v; want 0", got, err)
	}
}

func TestUpdateGrowShrink(t *testing.T) {
	p := MustNew(0, 100, 10, "core")
	mustAdd(t, p, 0, 50, 8)
	if err := p.Update(-3); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("shrink below usage: %v", err)
	}
	if err := p.Update(-2); err != nil {
		t.Fatalf("shrink to fit: %v", err)
	}
	if p.Total() != 8 {
		t.Fatalf("Total = %d, want 8", p.Total())
	}
	if avail, _ := p.AvailAt(10); avail != 0 {
		t.Fatalf("AvailAt(10) = %d, want 0", avail)
	}
	if err := p.Update(4); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if avail, _ := p.AvailAt(10); avail != 4 {
		t.Fatalf("AvailAt(10) = %d, want 4", avail)
	}
	if avail, _ := p.AvailAt(60); avail != 12 {
		t.Fatalf("AvailAt(60) = %d, want 12", avail)
	}
}

func TestPointsIteration(t *testing.T) {
	p := MustNew(0, 100, 8, "m")
	mustAdd(t, p, 10, 10, 5)
	var ats, avails []int64
	p.Points(func(at, avail int64) bool {
		ats = append(ats, at)
		avails = append(avails, avail)
		return true
	})
	wantAts := []int64{0, 10, 20}
	wantAv := []int64{8, 3, 8}
	if len(ats) != 3 {
		t.Fatalf("points: %v", ats)
	}
	for i := range wantAts {
		if ats[i] != wantAts[i] || avails[i] != wantAv[i] {
			t.Fatalf("point %d: (%d,%d), want (%d,%d)", i, ats[i], avails[i], wantAts[i], wantAv[i])
		}
	}
}

// refModel is a brute-force per-tick availability model used to validate
// the planner under randomized workloads.
type refModel struct {
	total int64
	use   []int64 // per tick
}

func newRef(total int64, horizon int) *refModel {
	return &refModel{total: total, use: make([]int64, horizon)}
}

func (r *refModel) availDuring(start, dur int64) int64 {
	min := r.total
	for t := start; t < start+dur; t++ {
		if a := r.total - r.use[t]; a < min {
			min = a
		}
	}
	return min
}

func (r *refModel) add(start, dur, req int64) {
	for t := start; t < start+dur; t++ {
		r.use[t] += req
	}
}

func (r *refModel) remove(start, dur, req int64) {
	for t := start; t < start+dur; t++ {
		r.use[t] -= req
	}
}

func (r *refModel) availTimeFirst(at, dur, req int64) int64 {
	for t := at; t+dur <= int64(len(r.use)); t++ {
		if r.availDuring(t, dur) >= req {
			return t
		}
	}
	return -1
}

// TestRandomAgainstReference cross-checks every planner query against the
// brute-force model across thousands of random add/remove operations.
func TestRandomAgainstReference(t *testing.T) {
	const (
		horizon = 240
		total   = 16
	)
	rng := rand.New(rand.NewSource(99))
	p := MustNew(0, horizon, total, "x")
	ref := newRef(total, horizon)
	type live struct {
		id              int64
		start, dur, req int64
	}
	var spans []live

	for op := 0; op < 6000; op++ {
		switch {
		case len(spans) == 0 || rng.Intn(100) < 50:
			start := int64(rng.Intn(horizon - 1))
			dur := int64(rng.Intn(int(int64(horizon)-start))) + 1
			req := int64(rng.Intn(total)) + 1
			wantOK := ref.availDuring(start, dur) >= req
			id, err := p.AddSpan(start, dur, req)
			if wantOK != (err == nil) {
				t.Fatalf("op %d: AddSpan(%d,%d,%d) err=%v, ref ok=%v", op, start, dur, req, err, wantOK)
			}
			if err == nil {
				ref.add(start, dur, req)
				spans = append(spans, live{id, start, dur, req})
			}
		default:
			i := rng.Intn(len(spans))
			s := spans[i]
			if err := p.RemoveSpan(s.id); err != nil {
				t.Fatalf("op %d: RemoveSpan: %v", op, err)
			}
			ref.remove(s.start, s.dur, s.req)
			spans = append(spans[:i], spans[i+1:]...)
		}

		// Cross-check queries.
		at := int64(rng.Intn(horizon))
		if got, err := p.AvailAt(at); err != nil || got != ref.availDuring(at, 1) {
			t.Fatalf("op %d: AvailAt(%d) = %d, %v; ref %d", op, at, got, err, ref.availDuring(at, 1))
		}
		dur := int64(rng.Intn(horizon-int(at))) + 1
		if got, err := p.AvailDuring(at, dur); err != nil || got != ref.availDuring(at, dur) {
			t.Fatalf("op %d: AvailDuring(%d,%d) = %d, %v; ref %d", op, at, dur, got, err, ref.availDuring(at, dur))
		}
		req := int64(rng.Intn(total)) + 1
		qdur := int64(rng.Intn(40)) + 1
		qat := int64(rng.Intn(horizon - 40))
		want := ref.availTimeFirst(qat, qdur, req)
		got, err := p.AvailTimeFirst(qat, qdur, req)
		if want == -1 {
			if err == nil {
				t.Fatalf("op %d: AvailTimeFirst(%d,%d,%d) = %d, ref says none", op, qat, qdur, req, got)
			}
		} else if err != nil || got != want {
			t.Fatalf("op %d: AvailTimeFirst(%d,%d,%d) = %d, %v; ref %d", op, qat, qdur, req, got, err, want)
		}
	}
}

// TestETTreeRestoredAfterSearch verifies the stash-and-reinsert iteration
// leaves the ET tree intact (point count preserved, subsequent queries
// agree with a fresh scan).
func TestETTreeRestoredAfterSearch(t *testing.T) {
	p := MustNew(0, 10000, 32, "c")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		start := int64(rng.Intn(9000))
		dur := int64(rng.Intn(500)) + 1
		req := int64(rng.Intn(8)) + 1
		_, _ = p.AddSpan(start, dur, req)
	}
	before := p.PointCount()
	// Query from a late offset so many satisfying points get stashed.
	t1, err1 := p.AvailTimeFirst(8000, 100, 30)
	if p.PointCount() != before {
		t.Fatalf("point count changed: %d -> %d", before, p.PointCount())
	}
	t2, err2 := p.AvailTimeFirst(8000, 100, 30)
	if t1 != t2 || (err1 == nil) != (err2 == nil) {
		t.Fatalf("repeat query disagrees: (%d,%v) vs (%d,%v)", t1, err1, t2, err2)
	}
}

func TestManySpansLogarithmicShape(t *testing.T) {
	// Smoke-check that a planner with many spans still answers queries;
	// the benchmark harness measures the scaling shape (paper Fig. 6b).
	p := MustNew(0, 43200, 128, "r")
	rng := rand.New(rand.NewSource(1))
	added := 0
	for i := 0; i < 5000; i++ {
		req := int64(rng.Intn(128)) + 1
		dur := int64(rng.Intn(4000)) + 1
		at, err := p.AvailTimeFirst(0, dur, req)
		if err != nil {
			continue
		}
		if _, err := p.AddSpan(at, dur, req); err != nil {
			t.Fatalf("AddSpan after AvailTimeFirst: %v", err)
		}
		added++
	}
	if added < 100 {
		t.Fatalf("only %d spans added", added)
	}
	if _, err := p.AvailAt(100); err != nil {
		t.Fatal(err)
	}
}

func TestSpansIteration(t *testing.T) {
	p := MustNew(0, 1000, 8, "m")
	id1 := mustAdd(t, p, 0, 10, 2)
	id2 := mustAdd(t, p, 5, 10, 3)
	var got []Span
	p.Spans(func(s Span) bool { got = append(got, s); return true })
	if len(got) != 2 || got[0].ID != id1 || got[1].ID != id2 {
		t.Fatalf("spans = %+v", got)
	}
	if got[1].Start != 5 || got[1].Last != 15 || got[1].Planned != 3 {
		t.Fatalf("span2 = %+v", got[1])
	}
	n := 0
	p.Spans(func(Span) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop: %d", n)
	}
}

func TestUtilization(t *testing.T) {
	p := MustNew(0, 1000, 10, "c")
	mustAdd(t, p, 0, 10, 10) // 100 unit-seconds
	mustAdd(t, p, 10, 10, 5) // 50
	// [0,20): 150 of 200 = 0.75.
	u, err := p.Utilization(0, 20)
	if err != nil || u != 0.75 {
		t.Fatalf("u = %v, %v", u, err)
	}
	// Window starting mid-span: [5,15): 50 + 25 = 75 of 100.
	u, err = p.Utilization(5, 15)
	if err != nil || u != 0.75 {
		t.Fatalf("mid u = %v, %v", u, err)
	}
	// Idle tail.
	u, err = p.Utilization(20, 1000)
	if err != nil || u != 0 {
		t.Fatalf("idle u = %v, %v", u, err)
	}
	// Errors.
	if _, err := p.Utilization(10, 10); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty window: %v", err)
	}
	if _, err := p.Utilization(-1, 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
}

// TestAvailPointTimeAfterAgainstReference cross-checks the augmented
// SP-tree candidate iterator against brute force.
func TestAvailPointTimeAfterAgainstReference(t *testing.T) {
	const horizon, total = 300, 12
	rng := rand.New(rand.NewSource(17))
	p := MustNew(0, horizon, total, "x")
	ref := newRef(total, horizon)
	for i := 0; i < 120; i++ {
		start := int64(rng.Intn(horizon - 1))
		dur := int64(rng.Intn(int(int64(horizon)-start))) + 1
		req := int64(rng.Intn(total)) + 1
		if ref.availDuring(start, dur) >= req {
			mustAdd(t, p, start, dur, req)
			ref.add(start, dur, req)
		}
	}
	// Collect the true point times.
	pointTimes := map[int64]bool{}
	p.Points(func(at, _ int64) bool { pointTimes[at] = true; return true })

	for q := 0; q < 500; q++ {
		after := int64(rng.Intn(horizon)) - 5
		dur := int64(rng.Intn(40)) + 1
		req := int64(rng.Intn(total)) + 1
		got, err := p.AvailPointTimeAfter(after, dur, req)
		// Reference: earliest point time > after where the window fits.
		want := int64(-1)
		for t2 := after + 1; t2+dur <= horizon; t2++ {
			if pointTimes[t2] && ref.availDuring(t2, dur) >= req {
				want = t2
				break
			}
		}
		if want == -1 {
			if err == nil {
				t.Fatalf("q%d: after=%d dur=%d req=%d: got %d, want none", q, after, dur, req, got)
			}
		} else if err != nil || got != want {
			t.Fatalf("q%d: after=%d dur=%d req=%d: got %d (%v), want %d", q, after, dur, req, got, err, want)
		}
	}
}

// TestSPAugmentationValid verifies the max-remaining/max-at augmentation
// after random mutations via an exhaustive subtree walk.
func TestSPAugmentationValid(t *testing.T) {
	p := MustNew(0, 500, 10, "x")
	rng := rand.New(rand.NewSource(23))
	var ids []int64
	for op := 0; op < 2000; op++ {
		if len(ids) == 0 || rng.Intn(100) < 55 {
			start := int64(rng.Intn(400))
			dur := int64(rng.Intn(99)) + 1
			req := int64(rng.Intn(3)) + 1
			if id, err := p.AddSpan(start, dur, req); err == nil {
				ids = append(ids, id)
			}
		} else {
			i := rng.Intn(len(ids))
			if err := p.RemoveSpan(ids[i]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:i], ids[i+1:]...)
		}
		if op%100 == 0 {
			validateSPAug(t, p)
		}
	}
	validateSPAug(t, p)
}

func validateSPAug(t *testing.T, p *Planner) {
	t.Helper()
	if !p.active() {
		return
	}
	var walk func(n int32) (maxRem, maxAt int64)
	walk = func(n int32) (int64, int64) {
		if n == rbtree.None {
			return -1 << 62, -1 << 62
		}
		pt := p.pts[p.sp.Item(n)]
		maxRem, maxAt := pt.remaining, pt.at
		for _, c := range [2]int32{p.sp.Left(n), p.sp.Right(n)} {
			r, a := walk(c)
			if r > maxRem {
				maxRem = r
			}
			if a > maxAt {
				maxAt = a
			}
		}
		if pt.spMaxRemaining != maxRem || pt.spMaxAt != maxAt {
			t.Fatalf("aug stale at t=%d: (%d,%d) want (%d,%d)",
				pt.at, pt.spMaxRemaining, pt.spMaxAt, maxRem, maxAt)
		}
		return maxRem, maxAt
	}
	walk(p.sp.Root())
}
