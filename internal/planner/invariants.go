package planner

import (
	"fmt"

	"fluxion/internal/rbtree"
)

// CheckInvariants validates the planner's internal consistency: the SP and
// ET trees agree, every scheduled point's amounts are exactly what the live
// spans imply, and the tree augmentations (ET subtree-minimum time, SP
// max-remaining/max-time) are correct. It is the oracle behind the
// concurrency stress tests — after any interleaving of AddSpan/RemoveSpan
// and queries, a planner must still satisfy all of these.
func (p *Planner) CheckInvariants() error {
	p.mu.RLock()
	defer p.mu.RUnlock()

	if !p.active() {
		// Flat planner: no slab calendar may exist while spans are live.
		if len(p.spans) != 0 {
			return fmt.Errorf("planner: flat (no calendar) but %d spans live", len(p.spans))
		}
		if p.total < 0 {
			return fmt.Errorf("planner: negative total %d", p.total)
		}
		return nil
	}

	if p.sp.Len() != p.et.Len() {
		return fmt.Errorf("planner: SP tree has %d points, ET tree %d", p.sp.Len(), p.et.Len())
	}

	// Walk the SP tree in time order, recomputing the expected profile
	// from the span set.
	prev := int64(-1 << 62)
	sawBase := false
	for n := p.sp.Min(); n != rbtree.None; n = p.sp.Next(n) {
		pt := &p.pts[p.sp.Item(n)]
		if pt.at <= prev {
			return fmt.Errorf("planner: SP points out of order (%d after %d)", pt.at, prev)
		}
		prev = pt.at
		if pt.at == p.base {
			sawBase = true
		}
		if pt.scheduled+pt.remaining != p.total {
			return fmt.Errorf("planner: point %d: scheduled %d + remaining %d != total %d",
				pt.at, pt.scheduled, pt.remaining, p.total)
		}
		if pt.remaining < 0 {
			return fmt.Errorf("planner: point %d double-booked: remaining %d", pt.at, pt.remaining)
		}
		var want int64
		var bounds int32
		for _, s := range p.spans {
			if s.Start <= pt.at && pt.at < s.Last {
				want += s.Planned
			}
			if s.Start == pt.at || s.Last == pt.at {
				bounds++
			}
		}
		if pt.scheduled != want {
			return fmt.Errorf("planner: point %d: scheduled %d but spans imply %d", pt.at, pt.scheduled, want)
		}
		if pt.refCount != bounds {
			return fmt.Errorf("planner: point %d: refCount %d but %d span boundaries", pt.at, pt.refCount, bounds)
		}
		if pt.at != p.base && bounds == 0 {
			return fmt.Errorf("planner: point %d is unreferenced garbage", pt.at)
		}
		if !pt.inET {
			return fmt.Errorf("planner: point %d missing from ET tree", pt.at)
		}
	}
	if !sawBase {
		return fmt.Errorf("planner: base point %d missing", p.base)
	}

	// Every span's boundaries must exist as scheduled points.
	for id, s := range p.spans {
		if f := p.floorPoint(s.Start); f == noPoint || p.pts[f].at != s.Start {
			return fmt.Errorf("planner: span %d start %d has no scheduled point", id, s.Start)
		}
		if f := p.floorPoint(s.Last); f == noPoint || p.pts[f].at != s.Last {
			return fmt.Errorf("planner: span %d end %d has no scheduled point", id, s.Last)
		}
	}

	if err := p.checkETAug(p.et.Root()); err != nil {
		return err
	}
	return p.checkSPAug(p.sp.Root())
}

// checkETAug verifies the subtree-minimum-time augmentation of the ET tree.
func (p *Planner) checkETAug(n int32) error {
	if n == rbtree.None {
		return nil
	}
	i := p.et.Item(n)
	min := i
	for _, c := range [2]int32{p.et.Left(n), p.et.Right(n)} {
		if c == rbtree.None {
			continue
		}
		if err := p.checkETAug(c); err != nil {
			return err
		}
		if m := p.pts[p.et.Item(c)].subtreeMin; p.pts[m].at < p.pts[min].at {
			min = m
		}
	}
	if p.pts[i].subtreeMin != min {
		return fmt.Errorf("planner: ET point %d: subtreeMin %d, want %d",
			p.pts[i].at, p.pts[p.pts[i].subtreeMin].at, p.pts[min].at)
	}
	return nil
}

// checkSPAug verifies the max-remaining / max-time augmentations of the SP
// tree.
func (p *Planner) checkSPAug(n int32) error {
	if n == rbtree.None {
		return nil
	}
	pt := &p.pts[p.sp.Item(n)]
	maxRem, maxAt := pt.remaining, pt.at
	for _, c := range [2]int32{p.sp.Left(n), p.sp.Right(n)} {
		if c == rbtree.None {
			continue
		}
		if err := p.checkSPAug(c); err != nil {
			return err
		}
		ci := &p.pts[p.sp.Item(c)]
		if ci.spMaxRemaining > maxRem {
			maxRem = ci.spMaxRemaining
		}
		if ci.spMaxAt > maxAt {
			maxAt = ci.spMaxAt
		}
	}
	if pt.spMaxRemaining != maxRem || pt.spMaxAt != maxAt {
		return fmt.Errorf("planner: SP point %d: aug (%d,%d), want (%d,%d)",
			pt.at, pt.spMaxRemaining, pt.spMaxAt, maxRem, maxAt)
	}
	return nil
}

// CheckInvariants validates every member planner.
func (m *Multi) CheckInvariants() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, rt := range m.types {
		if err := m.byType[rt].CheckInvariants(); err != nil {
			return fmt.Errorf("multi member %q: %w", rt, err)
		}
	}
	// Every multi-span's members must still exist in their planners.
	for id, members := range m.spans {
		for _, ms := range members {
			if _, err := m.byType[ms.rt].Span(ms.id); err != nil {
				return fmt.Errorf("multi-span %d member %q/%d: %w", id, ms.rt, ms.id, err)
			}
		}
	}
	return nil
}
