package planner

import (
	"fmt"

	"fluxion/internal/rbtree"
)

// CheckInvariants validates the planner's internal consistency: the SP and
// ET trees agree, every scheduled point's amounts are exactly what the live
// spans imply, and the tree augmentations (ET subtree-minimum time, SP
// max-remaining/max-time) are correct. It is the oracle behind the
// concurrency stress tests — after any interleaving of AddSpan/RemoveSpan
// and queries, a planner must still satisfy all of these.
func (p *Planner) CheckInvariants() error {
	p.mu.RLock()
	defer p.mu.RUnlock()

	if p.sp.Len() != p.et.Len() {
		return fmt.Errorf("planner: SP tree has %d points, ET tree %d", p.sp.Len(), p.et.Len())
	}

	// Walk the SP tree in time order, recomputing the expected profile
	// from the span set.
	prev := int64(-1 << 62)
	sawBase := false
	points := 0
	for n := p.sp.Min(); n != nil; n = n.Next() {
		pt := n.Item()
		points++
		if pt.at <= prev {
			return fmt.Errorf("planner: SP points out of order (%d after %d)", pt.at, prev)
		}
		prev = pt.at
		if pt.at == p.base {
			sawBase = true
		}
		if pt.scheduled+pt.remaining != p.total {
			return fmt.Errorf("planner: point %d: scheduled %d + remaining %d != total %d",
				pt.at, pt.scheduled, pt.remaining, p.total)
		}
		if pt.remaining < 0 {
			return fmt.Errorf("planner: point %d double-booked: remaining %d", pt.at, pt.remaining)
		}
		var want int64
		var bounds int
		for _, s := range p.spans {
			if s.Start <= pt.at && pt.at < s.Last {
				want += s.Planned
			}
			if s.Start == pt.at || s.Last == pt.at {
				bounds++
			}
		}
		if pt.scheduled != want {
			return fmt.Errorf("planner: point %d: scheduled %d but spans imply %d", pt.at, pt.scheduled, want)
		}
		if pt.refCount != bounds {
			return fmt.Errorf("planner: point %d: refCount %d but %d span boundaries", pt.at, pt.refCount, bounds)
		}
		if pt.at != p.base && bounds == 0 {
			return fmt.Errorf("planner: point %d is unreferenced garbage", pt.at)
		}
		if !pt.inET {
			return fmt.Errorf("planner: point %d missing from ET tree", pt.at)
		}
	}
	if !sawBase {
		return fmt.Errorf("planner: base point %d missing", p.base)
	}

	// Every span's boundaries must exist as scheduled points.
	for id, s := range p.spans {
		if f := p.floorPoint(s.Start); f == nil || f.at != s.Start {
			return fmt.Errorf("planner: span %d start %d has no scheduled point", id, s.Start)
		}
		if f := p.floorPoint(s.Last); f == nil || f.at != s.Last {
			return fmt.Errorf("planner: span %d end %d has no scheduled point", id, s.Last)
		}
	}

	if err := checkETAug(p.et.Root()); err != nil {
		return err
	}
	return checkSPAug(p.sp.Root())
}

// checkETAug verifies the subtree-minimum-time augmentation of the ET tree.
func checkETAug(n *rbtree.Node[*schedPoint]) error {
	if n == nil {
		return nil
	}
	pt := n.Item()
	min := pt
	for _, c := range []*rbtree.Node[*schedPoint]{n.Left(), n.Right()} {
		if c == nil {
			continue
		}
		if err := checkETAug(c); err != nil {
			return err
		}
		if m := c.Item().subtreeMin; m.at < min.at {
			min = m
		}
	}
	if pt.subtreeMin != min {
		return fmt.Errorf("planner: ET point %d: subtreeMin %d, want %d", pt.at, pt.subtreeMin.at, min.at)
	}
	return nil
}

// checkSPAug verifies the max-remaining / max-time augmentations of the SP
// tree.
func checkSPAug(n *rbtree.Node[*schedPoint]) error {
	if n == nil {
		return nil
	}
	pt := n.Item()
	maxRem, maxAt := pt.remaining, pt.at
	for _, c := range []*rbtree.Node[*schedPoint]{n.Left(), n.Right()} {
		if c == nil {
			continue
		}
		if err := checkSPAug(c); err != nil {
			return err
		}
		ci := c.Item()
		if ci.spMaxRemaining > maxRem {
			maxRem = ci.spMaxRemaining
		}
		if ci.spMaxAt > maxAt {
			maxAt = ci.spMaxAt
		}
	}
	if pt.spMaxRemaining != maxRem || pt.spMaxAt != maxAt {
		return fmt.Errorf("planner: SP point %d: aug (%d,%d), want (%d,%d)",
			pt.at, pt.spMaxRemaining, pt.spMaxAt, maxRem, maxAt)
	}
	return nil
}

// CheckInvariants validates every member planner.
func (m *Multi) CheckInvariants() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, rt := range m.types {
		if err := m.byType[rt].CheckInvariants(); err != nil {
			return fmt.Errorf("multi member %q: %w", rt, err)
		}
	}
	// Every multi-span's members must still exist in their planners.
	for id, members := range m.spans {
		for _, ms := range members {
			if _, err := m.byType[ms.rt].Span(ms.id); err != nil {
				return fmt.Errorf("multi-span %d member %q/%d: %w", id, ms.rt, ms.id, err)
			}
		}
	}
	return nil
}
