package planner

import (
	"fmt"
	"sort"
	"sync"
)

// Multi aggregates one Planner per resource type over a common time range.
// Fluxion attaches a Multi to high-level resource vertices (cluster, rack,
// node) as a pruning filter: each member planner tracks the aggregate
// amount of one low-level resource type available in the subtree (paper
// §3.4), and the root's Multi drives PlannerMultiAvailTimeFirst when
// searching for the earliest time a whole request can be satisfied.
// A Multi is safe for concurrent use: queries run under a reader lock and
// member planners additionally lock themselves, while AddSpan/RemoveSpan/
// Update serialize under the writer lock so multi-span registration stays
// atomic with respect to concurrent readers.
type Multi struct {
	mu      sync.RWMutex
	base    int64
	horizon int64
	types   []string // sorted, stable iteration order
	byType  map[string]*Planner

	// byID is the dense member-planner index built by IndexTypes: the
	// match kernel resolves interned type IDs through it instead of the
	// string map. idOf re-indexes types created later by Update.
	byID []*Planner
	idOf func(string) int32

	spans      map[int64][]memberSpan // multi-span ID -> member spans
	nextSpanID int64
}

// memberSpan records one member planner's span inside a multi-span.
type memberSpan struct {
	rt string
	id int64
}

// NewMulti creates a Multi covering [base, base+horizon) with one member
// planner per entry of totals (resource type -> pool size). Types with a
// non-positive total are rejected.
func NewMulti(base, horizon int64, totals map[string]int64) (*Multi, error) {
	if len(totals) == 0 {
		return nil, fmt.Errorf("%w: no resource types", ErrInvalid)
	}
	m := &Multi{
		base:       base,
		horizon:    horizon,
		byType:     make(map[string]*Planner, len(totals)),
		spans:      make(map[int64][]memberSpan),
		nextSpanID: 1,
	}
	for rt, total := range totals {
		p, err := New(base, horizon, total, rt)
		if err != nil {
			return nil, fmt.Errorf("type %q: %w", rt, err)
		}
		m.byType[rt] = p
		m.types = append(m.types, rt)
	}
	sort.Strings(m.types)
	return m, nil
}

// Types returns the member resource types in sorted order.
func (m *Multi) Types() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.types...)
}

// Planner returns the member planner for rt, or nil.
func (m *Multi) Planner(rt string) *Planner {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.byType[rt]
}

// IndexTypes builds the dense member-planner index consulted by
// PlannerByID, assigning each member type the ID idOf returns. idOf is
// retained so member planners created later by Update are indexed too.
// The resource graph calls this at filter-install time with its intern
// table's ID function.
func (m *Multi) IndexTypes(idOf func(string) int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.idOf = idOf
	m.reindex()
}

// reindex rebuilds byID from byType; callers hold m.mu.
func (m *Multi) reindex() {
	if m.idOf == nil {
		return
	}
	max := int32(-1)
	ids := make([]int32, len(m.types))
	for i, rt := range m.types {
		ids[i] = m.idOf(rt)
		if ids[i] > max {
			max = ids[i]
		}
	}
	m.byID = make([]*Planner, max+1)
	for i, rt := range m.types {
		m.byID[ids[i]] = m.byType[rt]
	}
}

// PlannerByID returns the member planner for an interned type ID, or
// nil when the type is untracked (or IndexTypes was never called).
func (m *Multi) PlannerByID(id int32) *Planner {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if id < 0 || int(id) >= len(m.byID) {
		return nil
	}
	return m.byID[id]
}

// ShortfallByID returns the missing units for an interned type ID over
// [start, start+duration) — max(0, request - avail). Untracked types
// have no shortfall: this filter cannot be what rejected them.
func (m *Multi) ShortfallByID(id int32, start, duration, request int64) int64 {
	p := m.PlannerByID(id)
	if p == nil {
		return 0
	}
	return p.ShortfallDuring(start, duration, request)
}

// Total returns the pool size for rt (0 if absent).
func (m *Multi) Total(rt string) int64 {
	m.mu.RLock()
	p := m.byType[rt]
	m.mu.RUnlock()
	if p != nil {
		return p.Total()
	}
	return 0
}

// SpanCount returns the number of live multi-spans.
func (m *Multi) SpanCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.spans)
}

// checkRequest validates a request map against member planners. Types
// absent from the Multi are an error; zero counts are ignored.
func (m *Multi) checkRequest(request map[string]int64) error {
	for rt, c := range request {
		if c < 0 {
			return fmt.Errorf("%w: negative count for %q", ErrInvalid, rt)
		}
		if c == 0 {
			continue
		}
		if m.byType[rt] == nil {
			return fmt.Errorf("%w: unknown resource type %q", ErrInvalid, rt)
		}
	}
	return nil
}

// CanFit reports whether every requested amount fits throughout
// [start, start+duration) in its member planner.
func (m *Multi) CanFit(start, duration int64, request map[string]int64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.canFit(start, duration, request)
}

// canFit is CanFit without locking; callers hold m.mu.
func (m *Multi) canFit(start, duration int64, request map[string]int64) bool {
	if m.checkRequest(request) != nil {
		return false
	}
	for rt, c := range request {
		if c == 0 {
			continue
		}
		if !m.byType[rt].CanFit(start, duration, c) {
			return false
		}
	}
	return true
}

// AvailTimeFirst returns the earliest time t >= at at which every requested
// amount is available for duration (paper: PlannerMultiAvailTimeFirst).
// Candidate times are at itself and the availability change points of every
// requested type; each candidate is validated against all member planners.
func (m *Multi) AvailTimeFirst(at, duration int64, request map[string]int64) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkRequest(request); err != nil {
		return -1, err
	}
	if m.canFit(at, duration, request) {
		return at, nil
	}
	empty := true
	for _, c := range request {
		if c > 0 {
			empty = false
			break
		}
	}
	if empty {
		return at, nil
	}
	return m.nextCandidate(at, duration, request)
}

// nextCandidate walks the merged availability change points of all
// requested types, strictly after `after`, and returns the first one at
// which every member fits.
func (m *Multi) nextCandidate(after, duration int64, request map[string]int64) (int64, error) {
	t := after
	for {
		// Earliest next point among requested types where that type
		// itself fits for duration.
		var cand int64 = -1
		for _, rt := range m.types {
			c := request[rt]
			if c == 0 {
				continue
			}
			x, err := m.byType[rt].AvailPointTimeAfter(t, duration, c)
			if err != nil {
				continue // no more points for this type
			}
			if cand < 0 || x < cand {
				cand = x
			}
		}
		if cand < 0 {
			return -1, ErrNoSpace
		}
		if m.canFit(cand, duration, request) {
			return cand, nil
		}
		t = cand
	}
}

// AvailPointTimeAfter returns the earliest availability change point
// strictly after `after` at which every requested amount fits for
// duration. It drives reservation candidate-time iteration: each call with
// the previous result advances to the next distinct point.
func (m *Multi) AvailPointTimeAfter(after, duration int64, request map[string]int64) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkRequest(request); err != nil {
		return -1, err
	}
	empty := true
	for _, c := range request {
		if c > 0 {
			empty = false
			break
		}
	}
	if empty {
		return -1, fmt.Errorf("%w: empty request has no change points", ErrInvalid)
	}
	return m.nextCandidate(after, duration, request)
}

// AddSpan plans every requested amount during [start, start+duration) and
// returns a multi-span ID. The operation is atomic: if any member fails,
// already-added member spans are rolled back.
func (m *Multi) AddSpan(start, duration int64, request map[string]int64) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkRequest(request); err != nil {
		return -1, err
	}
	var members []memberSpan
	for _, rt := range m.types {
		c := request[rt]
		if c == 0 {
			continue
		}
		id, err := m.byType[rt].AddSpan(start, duration, c)
		if err != nil {
			m.rollbackMembers(members)
			return -1, fmt.Errorf("type %q: %w", rt, err)
		}
		members = append(members, memberSpan{rt: rt, id: id})
	}
	id := m.nextSpanID
	m.nextSpanID++
	m.spans[id] = members
	return id, nil
}

// AddSpanList is AddSpan with the request given as parallel type/count
// slices instead of a map, for callers (SDFU) that accumulate requests
// in reusable scratch buffers. Zero counts are skipped; unknown types
// and negative counts fail with nothing planned. The operation is
// atomic like AddSpan.
func (m *Multi) AddSpanList(start, duration int64, types []string, counts []int64) (int64, error) {
	if len(types) != len(counts) {
		return -1, fmt.Errorf("%w: %d types vs %d counts", ErrInvalid, len(types), len(counts))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, rt := range types {
		if counts[i] < 0 {
			return -1, fmt.Errorf("%w: negative count for %q", ErrInvalid, rt)
		}
		if counts[i] > 0 && m.byType[rt] == nil {
			return -1, fmt.Errorf("%w: unknown resource type %q", ErrInvalid, rt)
		}
	}
	var members []memberSpan
	for i, rt := range types {
		c := counts[i]
		if c == 0 {
			continue
		}
		id, err := m.byType[rt].AddSpan(start, duration, c)
		if err != nil {
			m.rollbackMembers(members)
			return -1, fmt.Errorf("type %q: %w", rt, err)
		}
		members = append(members, memberSpan{rt: rt, id: id})
	}
	id := m.nextSpanID
	m.nextSpanID++
	m.spans[id] = members
	return id, nil
}

// rollbackMembers removes already-added member spans after a partial
// failure; callers hold m.mu.
func (m *Multi) rollbackMembers(members []memberSpan) {
	for _, ms := range members {
		_ = m.byType[ms.rt].RemoveSpan(ms.id)
	}
}

// RemoveSpan unplans a multi-span.
func (m *Multi) RemoveSpan(id int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	members, ok := m.spans[id]
	if !ok {
		return fmt.Errorf("%w: multi-span %d", ErrNotFound, id)
	}
	delete(m.spans, id)
	var firstErr error
	for _, ms := range members {
		if err := m.byType[ms.rt].RemoveSpan(ms.id); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("type %q: %w", ms.rt, err)
		}
	}
	return firstErr
}

// Update grows or shrinks the pool of rt by delta units across the horizon,
// creating the member planner on first growth of an unknown type.
func (m *Multi) Update(rt string, delta int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.byType[rt]
	if p == nil {
		if delta <= 0 {
			return fmt.Errorf("%w: unknown resource type %q", ErrInvalid, rt)
		}
		np, err := New(m.base, m.horizon, delta, rt)
		if err != nil {
			return err
		}
		m.byType[rt] = np
		m.types = append(m.types, rt)
		sort.Strings(m.types)
		m.reindex()
		return nil
	}
	return p.Update(delta)
}
