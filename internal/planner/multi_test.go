package planner

import (
	"errors"
	"testing"
)

func newTestMulti(t *testing.T) *Multi {
	t.Helper()
	m, err := NewMulti(0, 1000, map[string]int64{"core": 40, "memory": 256, "gpu": 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiBasics(t *testing.T) {
	m := newTestMulti(t)
	if got := m.Types(); len(got) != 3 || got[0] != "core" || got[1] != "gpu" || got[2] != "memory" {
		t.Fatalf("Types() = %v", got)
	}
	if m.Total("core") != 40 || m.Total("nope") != 0 {
		t.Fatalf("Total mismatch")
	}
	if m.Planner("gpu") == nil || m.Planner("nope") != nil {
		t.Fatalf("Planner accessor mismatch")
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := NewMulti(0, 100, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty totals: %v", err)
	}
	if _, err := NewMulti(0, 100, map[string]int64{"c": 0}); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero total: %v", err)
	}
	m := newTestMulti(t)
	if _, err := m.AddSpan(0, 10, map[string]int64{"disk": 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown type: %v", err)
	}
	if _, err := m.AddSpan(0, 10, map[string]int64{"core": -1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative: %v", err)
	}
}

func TestMultiAddRemove(t *testing.T) {
	m := newTestMulti(t)
	req := map[string]int64{"core": 10, "memory": 64, "gpu": 1}
	id, err := m.AddSpan(0, 100, req)
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanFit(0, 100, map[string]int64{"core": 30, "memory": 192, "gpu": 3}) {
		t.Error("remaining capacity should fit")
	}
	if m.CanFit(0, 100, map[string]int64{"core": 31}) {
		t.Error("31 cores should not fit")
	}
	if err := m.RemoveSpan(id); err != nil {
		t.Fatal(err)
	}
	if !m.CanFit(0, 100, map[string]int64{"core": 40, "memory": 256, "gpu": 4}) {
		t.Error("full capacity should fit after removal")
	}
	if err := m.RemoveSpan(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestMultiAtomicRollback(t *testing.T) {
	m := newTestMulti(t)
	// Saturate gpus during [50, 60).
	if _, err := m.AddSpan(50, 10, map[string]int64{"gpu": 4}); err != nil {
		t.Fatal(err)
	}
	// This request fits cores/memory but not gpus: must roll back fully.
	if _, err := m.AddSpan(40, 30, map[string]int64{"core": 10, "memory": 10, "gpu": 1}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if !m.CanFit(40, 30, map[string]int64{"core": 40, "memory": 256}) {
		t.Error("core/memory spans were not rolled back")
	}
}

func TestMultiAvailTimeFirst(t *testing.T) {
	m := newTestMulti(t)
	// cores busy [0,100), gpus busy [50,150).
	if _, err := m.AddSpan(0, 100, map[string]int64{"core": 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSpan(50, 100, map[string]int64{"gpu": 4}); err != nil {
		t.Fatal(err)
	}
	// A request needing both becomes feasible only at 150.
	got, err := m.AvailTimeFirst(0, 10, map[string]int64{"core": 1, "gpu": 1})
	if err != nil || got != 150 {
		t.Fatalf("AvailTimeFirst = %d, %v; want 150", got, err)
	}
	// Memory-only request fits immediately.
	got, err = m.AvailTimeFirst(0, 10, map[string]int64{"memory": 256})
	if err != nil || got != 0 {
		t.Fatalf("memory-only = %d, %v; want 0", got, err)
	}
	// Empty request fits at the query time.
	got, err = m.AvailTimeFirst(42, 10, nil)
	if err != nil || got != 42 {
		t.Fatalf("empty request = %d, %v; want 42", got, err)
	}
	// Impossible request.
	if _, err := m.AvailTimeFirst(0, 10, map[string]int64{"gpu": 5}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
}

func TestMultiUpdate(t *testing.T) {
	m := newTestMulti(t)
	if err := m.Update("core", 8); err != nil {
		t.Fatal(err)
	}
	if m.Total("core") != 48 {
		t.Fatalf("core total = %d, want 48", m.Total("core"))
	}
	// Growing an unknown type creates its planner.
	if err := m.Update("ssd", 16); err != nil {
		t.Fatal(err)
	}
	if m.Total("ssd") != 16 {
		t.Fatalf("ssd total = %d", m.Total("ssd"))
	}
	if got := m.Types(); len(got) != 4 {
		t.Fatalf("Types() = %v", got)
	}
	// Shrinking an unknown type is an error.
	if err := m.Update("tape", -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("shrink unknown: %v", err)
	}
	// Shrink below usage fails.
	if _, err := m.AddSpan(0, 10, map[string]int64{"gpu": 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Update("gpu", -1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("shrink busy gpu: %v", err)
	}
}

func TestMultiSpanCount(t *testing.T) {
	m := newTestMulti(t)
	id1, _ := m.AddSpan(0, 10, map[string]int64{"core": 1})
	id2, _ := m.AddSpan(0, 10, map[string]int64{"gpu": 1, "memory": 8})
	if m.SpanCount() != 2 {
		t.Fatalf("SpanCount = %d", m.SpanCount())
	}
	_ = m.RemoveSpan(id1)
	_ = m.RemoveSpan(id2)
	if m.SpanCount() != 0 {
		t.Fatalf("SpanCount = %d after removals", m.SpanCount())
	}
}

func TestMultiAvailTimeFirstNonAnchorBlocking(t *testing.T) {
	// Regression: the earliest feasible time can be a change point of a
	// type other than the scarcest one. Cores (huge slack) free at 100,
	// gpus (scarce) free at 150 — but make cores the later-blocking
	// type: cores busy [0,150), gpus busy [0,100).
	m, err := NewMulti(0, 1000, map[string]int64{"core": 40, "gpu": 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSpan(0, 150, map[string]int64{"core": 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSpan(0, 100, map[string]int64{"gpu": 4}); err != nil {
		t.Fatal(err)
	}
	got, err := m.AvailTimeFirst(0, 10, map[string]int64{"core": 1, "gpu": 1})
	if err != nil || got != 150 {
		t.Fatalf("AvailTimeFirst = %d, %v; want 150", got, err)
	}
}

func TestMultiAvailPointTimeAfter(t *testing.T) {
	m := newTestMulti(t)
	if _, err := m.AddSpan(0, 100, map[string]int64{"core": 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSpan(200, 50, map[string]int64{"gpu": 4}); err != nil {
		t.Fatal(err)
	}
	req := map[string]int64{"core": 1, "gpu": 1}
	// First change point after 0 where both fit: 100.
	got, err := m.AvailPointTimeAfter(0, 10, req)
	if err != nil || got != 100 {
		t.Fatalf("first = %d, %v; want 100", got, err)
	}
	// Next after 100: the gpu release point at 250.
	got, err = m.AvailPointTimeAfter(100, 10, req)
	if err != nil || got != 250 {
		t.Fatalf("second = %d, %v; want 250", got, err)
	}
	// No more change points after 250.
	if _, err := m.AvailPointTimeAfter(250, 10, req); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("third: %v", err)
	}
	// Empty request is rejected.
	if _, err := m.AvailPointTimeAfter(0, 10, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty: %v", err)
	}
}

func TestPlannerAvailPointTimeAfter(t *testing.T) {
	p := MustNew(0, 1000, 8, "c")
	mustAddMulti := func(start, dur, req int64) {
		t.Helper()
		if _, err := p.AddSpan(start, dur, req); err != nil {
			t.Fatal(err)
		}
	}
	mustAddMulti(0, 100, 8)
	mustAddMulti(150, 50, 8)
	// Points: 0(0), 100(8), 150(0), 200(8).
	got, err := p.AvailPointTimeAfter(0, 10, 4)
	if err != nil || got != 100 {
		t.Fatalf("after 0 = %d, %v; want 100", got, err)
	}
	got, err = p.AvailPointTimeAfter(100, 10, 4)
	if err != nil || got != 200 {
		t.Fatalf("after 100 = %d, %v; want 200", got, err)
	}
	// 40-long window from 100 hits the busy [150,200) stretch.
	got, err = p.AvailPointTimeAfter(99, 60, 4)
	if err != nil || got != 200 {
		t.Fatalf("long window = %d, %v; want 200", got, err)
	}
	if _, err := p.AvailPointTimeAfter(200, 10, 4); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("exhausted: %v", err)
	}
}
