package planner

import (
	"fmt"
	"sort"

	"fluxion/internal/rbtree"
)

// Snapshot is an immutable, point-in-time copy of a Planner's availability
// step function. It answers the read-side queries the match kernel needs
// (AvailDuring, CanFit, ShortfallDuring, AvailAt) with zero locking and
// zero allocation: the step function is two parallel sorted arrays, and a
// query is a binary-search floor plus a linear scan of the window.
//
// Snapshots are the leaves of the resource graph's MVCC epochs: an epoch
// holds one Snapshot per vertex planner (and per filter member), match
// workers read them without any synchronization, and the single writer
// replaces them wholesale when it publishes the next epoch. A Snapshot is
// never mutated after Snapshot() returns.
type Snapshot struct {
	base    int64
	horizon int64
	total   int64

	// times is the sorted scheduled-point times (times[0] == base);
	// avail[i] is the units available throughout [times[i], times[i+1]).
	times []int64
	avail []int64
}

// Snapshot captures the planner's current step function. The copy is
// taken under the reader lock; the result shares nothing with the live
// planner. A flat planner snapshots to the single virtual base point.
func (p *Planner) Snapshot() *Snapshot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.active() {
		return &Snapshot{
			base:    p.base,
			horizon: p.horizon,
			total:   p.total,
			times:   []int64{p.base},
			avail:   []int64{p.total},
		}
	}
	n := p.sp.Len()
	s := &Snapshot{
		base:    p.base,
		horizon: p.horizon,
		total:   p.total,
		times:   make([]int64, 0, n),
		avail:   make([]int64, 0, n),
	}
	for node := p.sp.Min(); node != rbtree.None; node = p.sp.Next(node) {
		pt := &p.pts[p.sp.Item(node)]
		s.times = append(s.times, pt.at)
		s.avail = append(s.avail, pt.remaining)
	}
	return s
}

// Base returns the first schedulable time.
func (s *Snapshot) Base() int64 { return s.base }

// Horizon returns the schedulable duration from Base.
func (s *Snapshot) Horizon() int64 { return s.horizon }

// Total returns the pool size at capture time.
func (s *Snapshot) Total() int64 { return s.total }

// PointCount returns the number of captured scheduled points.
func (s *Snapshot) PointCount() int { return len(s.times) }

// IsFlat reports whether the snapshot is the single full-availability base
// point a span-free planner captures. Flat snapshots of equal pool size
// are interchangeable, which is what lets the resource graph share one per
// distinct pool size across a whole epoch.
func (s *Snapshot) IsFlat() bool {
	return len(s.times) == 1 && s.avail[0] == s.total
}

// end returns the exclusive end of the schedulable range.
func (s *Snapshot) end() int64 { return s.base + s.horizon }

// floor returns the index of the last point at or before t (-1 if t is
// before the base point).
func (s *Snapshot) floor(t int64) int {
	// sort.Search over an int64 slice compiles to a tight loop and
	// allocates nothing.
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t })
	return i - 1
}

// AvailAt returns the units available at instant t.
func (s *Snapshot) AvailAt(t int64) (int64, error) {
	if t < s.base || t >= s.end() {
		return 0, fmt.Errorf("%w: t=%d", ErrOutOfRange, t)
	}
	return s.avail[s.floor(t)], nil
}

// AvailDuring returns the minimum units available throughout
// [start, start+duration).
func (s *Snapshot) AvailDuring(start, duration int64) (int64, error) {
	if duration <= 0 {
		return 0, fmt.Errorf("%w: duration=%d", ErrInvalid, duration)
	}
	if start < s.base || start+duration > s.end() {
		return 0, fmt.Errorf("%w: window [%d,%d)", ErrOutOfRange, start, start+duration)
	}
	i := s.floor(start)
	min := s.avail[i]
	for i++; i < len(s.times) && s.times[i] < start+duration; i++ {
		if s.avail[i] < min {
			min = s.avail[i]
		}
	}
	return min, nil
}

// CanFit reports whether request units fit throughout [start,
// start+duration).
func (s *Snapshot) CanFit(start, duration, request int64) bool {
	avail, err := s.AvailDuring(start, duration)
	return err == nil && avail >= request
}

// ShortfallDuring returns how many of the requested units are missing
// throughout [start, start+duration); a window outside the snapshot's
// range is fully short.
func (s *Snapshot) ShortfallDuring(start, duration, request int64) int64 {
	avail, err := s.AvailDuring(start, duration)
	if err != nil || avail < 0 {
		return request
	}
	if avail >= request {
		return 0
	}
	return request - avail
}

// MultiSnapshot is the immutable counterpart of Multi: per-resource-type
// snapshots indexed by the same dense interned type IDs Multi.IndexTypes
// assigned. It backs the epoch view of a vertex's ancestor filter.
type MultiSnapshot struct {
	byID []*Snapshot
}

// SnapshotByID captures every member planner indexed by IndexTypes. The
// result is keyed exactly like the live Multi's PlannerByID.
func (m *Multi) SnapshotByID() *MultiSnapshot {
	return m.SnapshotByIDWith((*Planner).Snapshot)
}

// SnapshotByIDWith is SnapshotByID with member capture delegated to snap,
// letting the caller substitute a caching capture: the resource graph
// dedups the snapshots of flat planners (no spans), which at rest is
// almost all of them, so an epoch holds O(distinct pool sizes) snapshot
// objects instead of one per vertex.
func (m *Multi) SnapshotByIDWith(snap func(p *Planner) *Snapshot) *MultiSnapshot {
	m.mu.RLock()
	byID := make([]*Planner, len(m.byID))
	copy(byID, m.byID)
	m.mu.RUnlock()
	ms := &MultiSnapshot{byID: make([]*Snapshot, len(byID))}
	for i, p := range byID {
		if p != nil {
			ms.byID[i] = snap(p)
		}
	}
	return ms
}

// ByID returns the member snapshot for a dense interned type ID, or nil
// when the type has no member (or was not indexed at capture time).
func (ms *MultiSnapshot) ByID(id int32) *Snapshot {
	if ms == nil || id < 0 || int(id) >= len(ms.byID) {
		return nil
	}
	return ms.byID[id]
}
