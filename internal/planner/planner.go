// Package planner implements Fluxion's scalable scheduled-time-point
// management (paper §4.1).
//
// A Planner tracks the availability of a single resource pool over time,
// like a physical calendar. Activities are spans: an amount of the resource
// planned for a half-open time window [start, start+duration). Span
// boundaries induce scheduled points; between two consecutive points the
// amount in use is constant.
//
// Two red-black trees index the points:
//
//   - the scheduled-point (SP) tree, keyed by time, answers "how much is
//     available at time t" and window-minimum queries in O(log N + K);
//   - the earliest-time (ET) tree, keyed by remaining capacity and
//     augmented with the subtree-minimum scheduled time, answers "what is
//     the earliest point at which request r fits" in O(log N) (paper
//     Algorithm 1).
//
// The representation is slab-based: scheduled points live in one flat
// slice per planner and the two trees are index-linked arenas
// (rbtree.Arena), so an active calendar with N points costs three
// contiguous allocations instead of ~3N heap objects. A planner with no
// spans is *flat*: it holds no slab and no trees at all — availability is
// total everywhere — which makes the resting per-vertex calendar a few
// plain fields. The slab and trees materialize on the first AddSpan and
// are reset (capacity retained) when the last span is removed.
package planner

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fluxion/internal/rbtree"
)

// Errors returned by Planner operations.
var (
	// ErrOutOfRange reports a time outside [Base, Base+Horizon).
	ErrOutOfRange = errors.New("planner: time out of range")
	// ErrInvalid reports an invalid argument (non-positive duration,
	// negative or oversized request).
	ErrInvalid = errors.New("planner: invalid argument")
	// ErrNoSpace reports that the request cannot be satisfied in the
	// queried window (or, for AvailTimeFirst, anywhere on the horizon).
	ErrNoSpace = errors.New("planner: insufficient resources")
	// ErrNotFound reports an unknown span ID.
	ErrNotFound = errors.New("planner: span not found")
)

// noPoint is the null point-slab index.
const noPoint int32 = -1

// schedPoint is one scheduled time point: the boundary of at least one span
// (or the planner's base point). scheduled/remaining describe the interval
// [at, nextPoint.at). Points live in the planner's slab and reference each
// other and their tree nodes by index.
type schedPoint struct {
	at        int64
	scheduled int64
	remaining int64

	// SP-tree augmentation: the maximum remaining and maximum at in
	// the SP subtree rooted at this point's node. They power the
	// time-filtered candidate search (nextPointGE) that iterates
	// qualifying scheduled points in O(log N) each.
	spMaxRemaining int64
	spMaxAt        int64

	// ET-tree augmentation: the slab index of the point with the minimum
	// at in the ET subtree rooted at this point's node. Doubles as the
	// freelist link while the slot is free.
	subtreeMin int32

	refCount int32 // spans starting or ending here; base point is pinned

	spNode int32 // this point's node in the SP arena
	etNode int32 // this point's node in the ET arena
	inET   bool
}

// Span is a planned activity: planned units reserved during [Start, Last).
type Span struct {
	ID      int64
	Start   int64
	Last    int64 // exclusive end
	Planned int64
}

// Planner tracks one resource pool's availability over time.
//
// A Planner is safe for concurrent use: availability queries (AvailAt,
// AvailDuring, CanFit, AvailTimeFirst, AvailPointTimeAfter, Points, Spans,
// Utilization) run concurrently under a reader lock, while mutations
// (AddSpan, RemoveSpan, Update) serialize under the writer lock. This is
// the per-vertex lock of the parallel match pipeline: many traverser
// workers may probe one pool's calendar while at most one commits to it.
type Planner struct {
	mu           sync.RWMutex
	base         int64
	horizon      int64
	total        int64
	resourceType string

	// Lazy calendar: nil/empty until the first AddSpan. While no spans
	// exist the planner is flat — remaining == total over the whole
	// horizon — and every query short-circuits on plain fields.
	sp  *rbtree.Arena[int32]
	et  *rbtree.Arena[int32]
	pts []schedPoint
	// freePt heads the slab freelist, linked through subtreeMin.
	freePt int32

	// spans holds live spans by value, keyed by ID. The map is allocated
	// lazily on the first AddSpan and dropped on demotion, so a resting
	// planner carries no map header or buckets.
	spans      map[int64]Span
	nextSpanID int64
}

// New creates a planner for a pool of total units of resourceType, covering
// times in [base, base+horizon). horizon and total must be positive.
func New(base, horizon, total int64, resourceType string) (*Planner, error) {
	p := new(Planner)
	if err := Init(p, base, horizon, total, resourceType); err != nil {
		return nil, err
	}
	return p, nil
}

// Init initializes p in place, exactly like New but without allocating.
// The resource graph carves its per-vertex planners out of one contiguous
// slab at Finalize, so a million resting planners are one allocation
// instead of a million heap objects. p must be zero-valued (or otherwise
// unused); Init does not free an existing calendar.
func Init(p *Planner, base, horizon, total int64, resourceType string) error {
	if horizon <= 0 || total <= 0 {
		return fmt.Errorf("%w: horizon=%d total=%d", ErrInvalid, horizon, total)
	}
	if base > (1<<62) || horizon > (1<<62) {
		return fmt.Errorf("%w: base/horizon too large", ErrInvalid)
	}
	p.base = base
	p.horizon = horizon
	p.total = total
	p.resourceType = resourceType
	p.freePt = noPoint
	p.nextSpanID = 1
	return nil
}

// MustNew is New but panics on error; for tests and static configuration.
func MustNew(base, horizon, total int64, resourceType string) *Planner {
	p, err := New(base, horizon, total, resourceType)
	if err != nil {
		panic(err)
	}
	return p
}

// active reports whether the slab calendar is live (at least the base
// point exists). Callers hold p.mu.
func (p *Planner) active() bool { return p.sp != nil && p.sp.Len() > 0 }

// spLess orders SP-tree items (point indices) by time.
func (p *Planner) spLess(a, b int32) bool { return p.pts[a].at < p.pts[b].at }

// etLess orders ET-tree items by remaining capacity, then time.
func (p *Planner) etLess(a, b int32) bool {
	pa, pb := &p.pts[a], &p.pts[b]
	if pa.remaining != pb.remaining {
		return pa.remaining < pb.remaining
	}
	return pa.at < pb.at
}

func (p *Planner) etUpdate(n int32) {
	i := p.et.Item(n)
	m := i
	if l := p.et.Left(n); l != rbtree.None {
		if lm := p.pts[p.et.Item(l)].subtreeMin; p.pts[lm].at < p.pts[m].at {
			m = lm
		}
	}
	if r := p.et.Right(n); r != rbtree.None {
		if rm := p.pts[p.et.Item(r)].subtreeMin; p.pts[rm].at < p.pts[m].at {
			m = rm
		}
	}
	p.pts[i].subtreeMin = m
}

func (p *Planner) spUpdate(n int32) {
	i := p.sp.Item(n)
	pt := &p.pts[i]
	maxRem, maxAt := pt.remaining, pt.at
	if l := p.sp.Left(n); l != rbtree.None {
		if li := &p.pts[p.sp.Item(l)]; li.spMaxRemaining > maxRem {
			maxRem = li.spMaxRemaining
		}
	}
	if r := p.sp.Right(n); r != rbtree.None {
		ri := &p.pts[p.sp.Item(r)]
		if ri.spMaxRemaining > maxRem {
			maxRem = ri.spMaxRemaining
		}
		if ri.spMaxAt > maxAt {
			maxAt = ri.spMaxAt
		}
	}
	pt.spMaxRemaining = maxRem
	pt.spMaxAt = maxAt
}

// materialize builds the slab calendar: trees plus the base point. Called
// under the writer lock on the first AddSpan (and again after a demotion).
func (p *Planner) materialize() {
	if p.sp == nil {
		p.sp = rbtree.NewArena(p.spLess)
		p.et = rbtree.NewArena(p.etLess)
		p.sp.SetUpdate(p.spUpdate)
		p.et.SetUpdate(p.etUpdate)
	}
	if p.sp.Len() == 0 {
		i := p.allocPoint(p.base, 0, p.total)
		pt := &p.pts[i]
		pt.subtreeMin = i
		pt.spMaxRemaining, pt.spMaxAt = p.total, p.base
		pt.spNode = p.sp.Insert(i)
		pt.etNode = p.et.Insert(i)
		pt.inET = true
	}
}

// demote drops the slab calendar once the last span is gone, keeping the
// allocated capacity so a busy/idle/busy vertex does not churn the heap.
func (p *Planner) demote() {
	p.sp.Reset()
	p.et.Reset()
	p.pts = p.pts[:0]
	p.freePt = noPoint
}

// allocPoint takes a slot from the slab freelist or grows the slab.
func (p *Planner) allocPoint(at, scheduled, remaining int64) int32 {
	if f := p.freePt; f != noPoint {
		p.freePt = p.pts[f].subtreeMin
		p.pts[f] = schedPoint{at: at, scheduled: scheduled, remaining: remaining}
		return f
	}
	p.pts = append(p.pts, schedPoint{at: at, scheduled: scheduled, remaining: remaining})
	return int32(len(p.pts) - 1)
}

// freePoint recycles a slab slot onto the freelist.
func (p *Planner) freePoint(i int32) {
	p.pts[i] = schedPoint{subtreeMin: p.freePt}
	p.freePt = i
}

// Base returns the first schedulable time.
func (p *Planner) Base() int64 { return p.base }

// Horizon returns the schedulable duration from Base.
func (p *Planner) Horizon() int64 { return p.horizon }

// Total returns the pool size.
func (p *Planner) Total() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.total
}

// FlatTotal returns the pool size and true when the planner is flat (no
// spans: availability is Total over the whole horizon). Epoch snapshotting
// uses it to share one Snapshot among all resting planners of equal size.
func (p *Planner) FlatTotal() (int64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.total, len(p.spans) == 0
}

// ResourceType returns the label given at construction.
func (p *Planner) ResourceType() string { return p.resourceType }

// SpanCount returns the number of live spans.
func (p *Planner) SpanCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.spans)
}

// PointCount returns the number of scheduled points (including the base
// point; a flat planner reports 1 for its virtual base point).
func (p *Planner) PointCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.active() {
		return 1
	}
	return p.sp.Len()
}

// Span returns a copy of the span with the given ID.
func (p *Planner) Span(id int64) (Span, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s, ok := p.spans[id]
	if !ok {
		return Span{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return s, nil
}

// end returns the exclusive end of the schedulable range.
func (p *Planner) end() int64 { return p.base + p.horizon }

// floorPoint returns the slab index of the last point at or before t
// (noPoint if t < base). Callers must have checked p.active().
func (p *Planner) floorPoint(t int64) int32 {
	// Predicate search: building a probe schedPoint for Floor would put
	// one heap allocation on every availability query.
	n := p.sp.FloorFunc(func(i int32) bool { return p.pts[i].at > t })
	if n == rbtree.None {
		return noPoint
	}
	return p.sp.Item(n)
}

// reposition refreshes both trees after a point's remaining value changed:
// the ET tree is re-keyed (remaining is its key) and the SP tree's
// max-remaining augmentation recomputed in place.
func (p *Planner) reposition(i int32) {
	pt := &p.pts[i]
	if pt.inET {
		p.et.Delete(pt.etNode)
	}
	pt.subtreeMin = i
	pt.etNode = p.et.Insert(i)
	pt.inET = true
	p.sp.Refresh(p.pts[i].spNode)
}

// getOrCreatePoint returns the point at exactly time t, creating it (with
// the scheduled amount inherited from its predecessor) if needed.
func (p *Planner) getOrCreatePoint(t int64) int32 {
	f := p.floorPoint(t)
	if p.pts[f].at == t {
		return f
	}
	i := p.allocPoint(t, p.pts[f].scheduled, p.pts[f].remaining)
	pt := &p.pts[i]
	pt.subtreeMin = i
	pt.spMaxRemaining, pt.spMaxAt = pt.remaining, pt.at
	sn := p.sp.Insert(i)
	en := p.et.Insert(i)
	pt = &p.pts[i] // Insert may have run update hooks; re-take the pointer
	pt.spNode = sn
	pt.etNode = en
	pt.inET = true
	return i
}

// dropPoint removes a point from both trees and recycles its slot.
func (p *Planner) dropPoint(i int32) {
	pt := &p.pts[i]
	p.sp.Delete(pt.spNode)
	if pt.inET {
		p.et.Delete(pt.etNode)
		pt.inET = false
	}
	p.freePoint(i)
}

// AvailAt returns the units available at instant t.
func (p *Planner) AvailAt(t int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if t < p.base || t >= p.end() {
		return 0, fmt.Errorf("%w: t=%d", ErrOutOfRange, t)
	}
	if !p.active() {
		return p.total, nil
	}
	return p.pts[p.floorPoint(t)].remaining, nil
}

// AvailDuring returns the minimum units available throughout
// [start, start+duration).
func (p *Planner) AvailDuring(start, duration int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.availDuring(start, duration)
}

// availDuring is AvailDuring without locking; callers hold p.mu.
func (p *Planner) availDuring(start, duration int64) (int64, error) {
	if duration <= 0 {
		return 0, fmt.Errorf("%w: duration=%d", ErrInvalid, duration)
	}
	if start < p.base || start+duration > p.end() {
		return 0, fmt.Errorf("%w: window [%d,%d)", ErrOutOfRange, start, start+duration)
	}
	if !p.active() {
		return p.total, nil
	}
	f := p.floorPoint(start)
	min := p.pts[f].remaining
	for n := p.sp.Next(p.pts[f].spNode); n != rbtree.None; n = p.sp.Next(n) {
		pt := &p.pts[p.sp.Item(n)]
		if pt.at >= start+duration {
			break
		}
		if pt.remaining < min {
			min = pt.remaining
		}
	}
	return min, nil
}

// CanFit reports whether request units fit throughout [start, start+duration).
func (p *Planner) CanFit(start, duration, request int64) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.canFit(start, duration, request)
}

// canFit is CanFit without locking; callers hold p.mu.
func (p *Planner) canFit(start, duration, request int64) bool {
	avail, err := p.availDuring(start, duration)
	return err == nil && avail >= request
}

// ShortfallDuring returns how many of the requested units are missing
// throughout [start, start+duration): max(0, request - AvailDuring). A
// window that falls outside the planner's range is fully short. Blocking
// signatures record this so a wakeup index can tell whether enough
// capacity was freed to make a re-match worthwhile.
func (p *Planner) ShortfallDuring(start, duration, request int64) int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	avail, err := p.availDuring(start, duration)
	if err != nil || avail < 0 {
		return request
	}
	if avail >= request {
		return 0
	}
	return request - avail
}

// minTimeGE returns the scheduled point with the smallest at among points
// whose remaining >= request (paper Algorithm 1: FINDANCHOR + FINDETPOINT,
// realized by chasing the subtree-minimum augmentation).
func (p *Planner) minTimeGE(request int64) int32 {
	best := noPoint
	n := p.et.Root()
	for n != rbtree.None {
		i := p.et.Item(n)
		pt := &p.pts[i]
		if pt.remaining >= request {
			// This node and its whole right subtree satisfy the
			// request: the right subtree's earliest time is a
			// single augmented lookup (RIGHTET in the paper).
			if best == noPoint || pt.at < p.pts[best].at {
				best = i
			}
			if r := p.et.Right(n); r != rbtree.None {
				if m := p.pts[p.et.Item(r)].subtreeMin; best == noPoint || p.pts[m].at < p.pts[best].at {
					best = m
				}
			}
			n = p.et.Left(n) // earlier times may hide among smaller remainders
		} else {
			n = p.et.Right(n)
		}
	}
	return best
}

// nextPointGE returns the earliest scheduled point strictly after `after`
// whose remaining capacity is at least request, or noPoint. It descends the
// SP tree pruning subtrees by the max-remaining and max-time augmentations,
// so each call is O(log N) — the candidate iterator behind AvailTimeFirst
// and AvailPointTimeAfter. (flux-sched iterates by temporarily unlinking
// ET-tree nodes; the augmented search visits the same candidates without
// mutating the trees.)
func (p *Planner) nextPointGE(after, request int64) int32 {
	return p.nextPointGEAt(p.sp.Root(), after, request)
}

func (p *Planner) nextPointGEAt(n int32, after, request int64) int32 {
	if n == rbtree.None {
		return noPoint
	}
	i := p.sp.Item(n)
	pt := &p.pts[i]
	if pt.spMaxRemaining < request || pt.spMaxAt <= after {
		return noPoint
	}
	if pt.at > after {
		if r := p.nextPointGEAt(p.sp.Left(n), after, request); r != noPoint {
			return r
		}
		if p.pts[i].remaining >= request {
			return i
		}
	}
	return p.nextPointGEAt(p.sp.Right(n), after, request)
}

// AvailTimeFirst returns the earliest time t >= at such that request units
// are available throughout [t, t+duration). It first tries at itself;
// afterwards the earliest candidate comes from the ET tree (paper
// Algorithm 1) and subsequent candidates — points that qualify on
// remaining capacity but fail the span check (SPANOK) — from the SP
// tree's augmented time-filtered search.
func (p *Planner) AvailTimeFirst(at, duration, request int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if duration <= 0 || request < 0 {
		return -1, fmt.Errorf("%w: duration=%d request=%d", ErrInvalid, duration, request)
	}
	if request > p.total {
		return -1, fmt.Errorf("%w: request %d > total %d", ErrNoSpace, request, p.total)
	}
	if at < p.base {
		at = p.base
	}
	if at+duration > p.end() {
		return -1, fmt.Errorf("%w: window start %d", ErrOutOfRange, at)
	}
	if p.canFit(at, duration, request) {
		return at, nil
	}
	// First candidate via Algorithm 1 (FINDEARLIESTAT on the ET tree).
	pt := p.minTimeGE(request)
	for pt != noPoint {
		t := p.pts[pt].at
		if t > at {
			if t+duration > p.end() {
				// Candidates arrive in increasing time order;
				// all later ones overflow the horizon too.
				return -1, ErrNoSpace
			}
			if p.canFit(t, duration, request) {
				return t, nil
			}
		}
		pt = p.nextPointGE(max64(t, at), request)
	}
	return -1, ErrNoSpace
}

// AvailPointTimeAfter returns the earliest scheduled-point time strictly
// greater than after at which request units are available throughout the
// following duration. Unlike AvailTimeFirst it never returns `after`
// itself, which makes it the candidate-time iterator for reservations:
// repeated calls with the previous result walk distinct availability
// change points (paper §3.4, Figure 2).
func (p *Planner) AvailPointTimeAfter(after, duration, request int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if duration <= 0 || request < 0 {
		return -1, fmt.Errorf("%w: duration=%d request=%d", ErrInvalid, duration, request)
	}
	if request > p.total {
		return -1, fmt.Errorf("%w: request %d > total %d", ErrNoSpace, request, p.total)
	}
	if !p.active() {
		// Flat planner: the only availability change point is the
		// virtual base point.
		if p.base > after && p.base+duration <= p.end() {
			return p.base, nil
		}
		return -1, ErrNoSpace
	}
	t := after
	for {
		pt := p.nextPointGE(t, request)
		if pt == noPoint {
			return -1, ErrNoSpace
		}
		at := p.pts[pt].at
		if at+duration > p.end() {
			return -1, ErrNoSpace
		}
		if p.canFit(at, duration, request) {
			return at, nil
		}
		t = at
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// AddSpan plans request units during [start, start+duration) and returns
// the span ID. It fails with ErrNoSpace if the window cannot hold the
// request.
func (p *Planner) AddSpan(start, duration, request int64) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if duration <= 0 || request <= 0 {
		return -1, fmt.Errorf("%w: duration=%d request=%d", ErrInvalid, duration, request)
	}
	avail, err := p.availDuring(start, duration)
	if err != nil {
		return -1, err
	}
	if avail < request {
		return -1, fmt.Errorf("%w: want %d, have %d in [%d,%d)", ErrNoSpace, request, avail, start, start+duration)
	}
	p.materialize()
	p1 := p.getOrCreatePoint(start)
	p2 := p.getOrCreatePoint(start + duration)
	p.pts[p1].refCount++
	p.pts[p2].refCount++
	for n := p.pts[p1].spNode; n != rbtree.None; {
		i := p.sp.Item(n)
		if p.pts[i].at >= start+duration {
			break
		}
		n = p.sp.Next(n) // advance before reposition re-links the node
		p.pts[i].scheduled += request
		p.pts[i].remaining -= request
		p.reposition(i)
	}
	id := p.nextSpanID
	p.nextSpanID++
	if p.spans == nil {
		p.spans = make(map[int64]Span, 4)
	}
	p.spans[id] = Span{ID: id, Start: start, Last: start + duration, Planned: request}
	return id, nil
}

// RemoveSpan unplans the span with the given ID, releasing its resources
// and garbage-collecting boundary points no span references anymore. When
// the last span goes, the slab calendar is demoted back to flat.
func (p *Planner) RemoveSpan(id int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.spans[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	delete(p.spans, id)
	if len(p.spans) == 0 {
		p.spans = nil
		p.demote()
		return nil
	}
	start := p.floorPoint(s.Start)
	boundary := [2]int32{noPoint, noPoint}
	for n := p.pts[start].spNode; n != rbtree.None; {
		i := p.sp.Item(n)
		at := p.pts[i].at
		if at > s.Last {
			break
		}
		n = p.sp.Next(n) // advance before any mutation of the point
		if at == s.Start {
			p.pts[i].refCount--
			boundary[0] = i
		}
		if at == s.Last {
			p.pts[i].refCount--
			boundary[1] = i
			break
		}
		if at >= s.Start {
			p.pts[i].scheduled -= s.Planned
			p.pts[i].remaining += s.Planned
			p.reposition(i)
		}
	}
	for _, i := range boundary {
		if i != noPoint && p.pts[i].refCount <= 0 && p.pts[i].at != p.base {
			p.dropPoint(i)
		}
	}
	return nil
}

// Update grows or shrinks the pool by delta units, applied uniformly across
// the whole horizon. Shrinking fails with ErrNoSpace if any point would go
// negative.
func (p *Planner) Update(delta int64) error {
	if delta == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active() {
		if p.total+delta < 0 {
			return fmt.Errorf("%w: shrink by %d leaves point %d negative", ErrNoSpace, -delta, p.base)
		}
		p.total += delta
		return nil
	}
	if delta < 0 {
		for n := p.sp.Min(); n != rbtree.None; n = p.sp.Next(n) {
			if pt := &p.pts[p.sp.Item(n)]; pt.remaining+delta < 0 {
				return fmt.Errorf("%w: shrink by %d leaves point %d negative", ErrNoSpace, -delta, pt.at)
			}
		}
	}
	p.total += delta
	for n := p.sp.Min(); n != rbtree.None; {
		i := p.sp.Item(n)
		n = p.sp.Next(n) // advance before reposition re-links the node
		p.pts[i].remaining += delta
		p.reposition(i)
	}
	return nil
}

// Points invokes fn for every scheduled point in time order with that
// point's time and available amount, stopping early if fn returns false.
func (p *Planner) Points(fn func(at, avail int64) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.active() {
		fn(p.base, p.total)
		return
	}
	for n := p.sp.Min(); n != rbtree.None; n = p.sp.Next(n) {
		pt := &p.pts[p.sp.Item(n)]
		if !fn(pt.at, pt.remaining) {
			return
		}
	}
}

// Spans invokes fn for every live span in ascending ID order, stopping
// early if fn returns false.
func (p *Planner) Spans(fn func(s Span) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ids := make([]int64, 0, len(p.spans))
	for id := range p.spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !fn(p.spans[id]) {
			return
		}
	}
}

// Utilization returns the fraction of unit-seconds in use over [from, to):
// the integral of scheduled capacity divided by total * (to - from).
func (p *Planner) Utilization(from, to int64) (float64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if to <= from {
		return 0, fmt.Errorf("%w: window [%d,%d)", ErrInvalid, from, to)
	}
	if from < p.base || to > p.end() {
		return 0, fmt.Errorf("%w: window [%d,%d)", ErrOutOfRange, from, to)
	}
	if !p.active() {
		return 0, nil
	}
	var used int64
	cur := p.floorPoint(from)
	curAt := from
	for n := p.sp.Next(p.pts[cur].spNode); ; n = p.sp.Next(n) {
		segEnd := to
		next := noPoint
		if n != rbtree.None {
			next = p.sp.Item(n)
			if p.pts[next].at < to {
				segEnd = p.pts[next].at
			}
		}
		used += p.pts[cur].scheduled * (segEnd - curAt)
		if next == noPoint || p.pts[next].at >= to {
			break
		}
		cur, curAt = next, p.pts[next].at
	}
	return float64(used) / float64(p.total*(to-from)), nil
}
