// Package planner implements Fluxion's scalable scheduled-time-point
// management (paper §4.1).
//
// A Planner tracks the availability of a single resource pool over time,
// like a physical calendar. Activities are spans: an amount of the resource
// planned for a half-open time window [start, start+duration). Span
// boundaries induce scheduled points; between two consecutive points the
// amount in use is constant.
//
// Two red-black trees index the points:
//
//   - the scheduled-point (SP) tree, keyed by time, answers "how much is
//     available at time t" and window-minimum queries in O(log N + K);
//   - the earliest-time (ET) tree, keyed by remaining capacity and
//     augmented with the subtree-minimum scheduled time, answers "what is
//     the earliest point at which request r fits" in O(log N) (paper
//     Algorithm 1).
package planner

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fluxion/internal/rbtree"
)

// Errors returned by Planner operations.
var (
	// ErrOutOfRange reports a time outside [Base, Base+Horizon).
	ErrOutOfRange = errors.New("planner: time out of range")
	// ErrInvalid reports an invalid argument (non-positive duration,
	// negative or oversized request).
	ErrInvalid = errors.New("planner: invalid argument")
	// ErrNoSpace reports that the request cannot be satisfied in the
	// queried window (or, for AvailTimeFirst, anywhere on the horizon).
	ErrNoSpace = errors.New("planner: insufficient resources")
	// ErrNotFound reports an unknown span ID.
	ErrNotFound = errors.New("planner: span not found")
)

// schedPoint is one scheduled time point: the boundary of at least one span
// (or the planner's base point). scheduled/remaining describe the interval
// [at, nextPoint.at).
type schedPoint struct {
	at        int64
	scheduled int64
	remaining int64
	refCount  int // spans starting or ending here; base point is pinned

	// ET-tree augmentation: the point with the minimum at in the ET
	// subtree rooted at this point's node.
	subtreeMin *schedPoint

	// SP-tree augmentation: the maximum remaining and maximum at in
	// the SP subtree rooted at this point's node. They power the
	// time-filtered candidate search (nextPointGE) that iterates
	// qualifying scheduled points in O(log N) each.
	spMaxRemaining int64
	spMaxAt        int64

	spNode *rbtree.Node[*schedPoint]
	etNode *rbtree.Node[*schedPoint]
	inET   bool
}

// Span is a planned activity: planned units reserved during [Start, Last).
type Span struct {
	ID      int64
	Start   int64
	Last    int64 // exclusive end
	Planned int64
}

// Planner tracks one resource pool's availability over time.
//
// A Planner is safe for concurrent use: availability queries (AvailAt,
// AvailDuring, CanFit, AvailTimeFirst, AvailPointTimeAfter, Points, Spans,
// Utilization) run concurrently under a reader lock, while mutations
// (AddSpan, RemoveSpan, Update) serialize under the writer lock. This is
// the per-vertex lock of the parallel match pipeline: many traverser
// workers may probe one pool's calendar while at most one commits to it.
type Planner struct {
	mu           sync.RWMutex
	base         int64
	horizon      int64
	total        int64
	resourceType string

	sp *rbtree.Tree[*schedPoint]
	et *rbtree.Tree[*schedPoint]

	spans      map[int64]*Span
	nextSpanID int64
}

func spLess(a, b *schedPoint) bool { return a.at < b.at }

func etLess(a, b *schedPoint) bool {
	if a.remaining != b.remaining {
		return a.remaining < b.remaining
	}
	return a.at < b.at
}

func etUpdate(n *rbtree.Node[*schedPoint]) {
	p := n.Item()
	m := p
	if l := n.Left(); l != nil && l.Item().subtreeMin.at < m.at {
		m = l.Item().subtreeMin
	}
	if r := n.Right(); r != nil && r.Item().subtreeMin.at < m.at {
		m = r.Item().subtreeMin
	}
	p.subtreeMin = m
}

func spUpdate(n *rbtree.Node[*schedPoint]) {
	p := n.Item()
	maxRem, maxAt := p.remaining, p.at
	if l := n.Left(); l != nil {
		if li := l.Item(); li.spMaxRemaining > maxRem {
			maxRem = li.spMaxRemaining
		}
	}
	if r := n.Right(); r != nil {
		ri := r.Item()
		if ri.spMaxRemaining > maxRem {
			maxRem = ri.spMaxRemaining
		}
		if ri.spMaxAt > maxAt {
			maxAt = ri.spMaxAt
		}
	}
	p.spMaxRemaining = maxRem
	p.spMaxAt = maxAt
}

// New creates a planner for a pool of total units of resourceType, covering
// times in [base, base+horizon). horizon and total must be positive.
func New(base, horizon, total int64, resourceType string) (*Planner, error) {
	if horizon <= 0 || total <= 0 {
		return nil, fmt.Errorf("%w: horizon=%d total=%d", ErrInvalid, horizon, total)
	}
	if base > (1<<62) || horizon > (1<<62) {
		return nil, fmt.Errorf("%w: base/horizon too large", ErrInvalid)
	}
	p := &Planner{
		base:         base,
		horizon:      horizon,
		total:        total,
		resourceType: resourceType,
		sp:           rbtree.New(spLess),
		et:           rbtree.New(etLess),
		spans:        make(map[int64]*Span),
		nextSpanID:   1,
	}
	p.et.SetUpdate(etUpdate)
	p.sp.SetUpdate(spUpdate)
	p0 := &schedPoint{at: base, scheduled: 0, remaining: total}
	p0.subtreeMin = p0
	p0.spMaxRemaining, p0.spMaxAt = total, base
	p0.spNode = p.sp.Insert(p0)
	p0.etNode = p.et.Insert(p0)
	p0.inET = true
	return p, nil
}

// MustNew is New but panics on error; for tests and static configuration.
func MustNew(base, horizon, total int64, resourceType string) *Planner {
	p, err := New(base, horizon, total, resourceType)
	if err != nil {
		panic(err)
	}
	return p
}

// Base returns the first schedulable time.
func (p *Planner) Base() int64 { return p.base }

// Horizon returns the schedulable duration from Base.
func (p *Planner) Horizon() int64 { return p.horizon }

// Total returns the pool size.
func (p *Planner) Total() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.total
}

// ResourceType returns the label given at construction.
func (p *Planner) ResourceType() string { return p.resourceType }

// SpanCount returns the number of live spans.
func (p *Planner) SpanCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.spans)
}

// PointCount returns the number of scheduled points (including the base
// point).
func (p *Planner) PointCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sp.Len()
}

// Span returns a copy of the span with the given ID.
func (p *Planner) Span(id int64) (Span, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s, ok := p.spans[id]
	if !ok {
		return Span{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return *s, nil
}

// end returns the exclusive end of the schedulable range.
func (p *Planner) end() int64 { return p.base + p.horizon }

// floorPoint returns the last point at or before t (nil if t < base).
func (p *Planner) floorPoint(t int64) *schedPoint {
	// Predicate search: building a probe schedPoint for Floor would put
	// one heap allocation on every availability query.
	n := p.sp.FloorFunc(func(pt *schedPoint) bool { return pt.at > t })
	if n == nil {
		return nil
	}
	return n.Item()
}

// reposition refreshes both trees after a point's remaining value changed:
// the ET tree is re-keyed (remaining is its key) and the SP tree's
// max-remaining augmentation recomputed in place.
func (p *Planner) reposition(pt *schedPoint) {
	if pt.inET {
		p.et.Delete(pt.etNode)
	}
	pt.subtreeMin = pt
	pt.etNode = p.et.Insert(pt)
	pt.inET = true
	p.sp.Refresh(pt.spNode)
}

// getOrCreatePoint returns the point at exactly time t, creating it (with
// the scheduled amount inherited from its predecessor) if needed.
func (p *Planner) getOrCreatePoint(t int64) *schedPoint {
	f := p.floorPoint(t)
	if f.at == t {
		return f
	}
	np := &schedPoint{at: t, scheduled: f.scheduled, remaining: f.remaining}
	np.subtreeMin = np
	np.spMaxRemaining, np.spMaxAt = np.remaining, np.at
	np.spNode = p.sp.Insert(np)
	np.etNode = p.et.Insert(np)
	np.inET = true
	return np
}

// dropPoint removes a point from both trees.
func (p *Planner) dropPoint(pt *schedPoint) {
	p.sp.Delete(pt.spNode)
	if pt.inET {
		p.et.Delete(pt.etNode)
		pt.inET = false
	}
}

// AvailAt returns the units available at instant t.
func (p *Planner) AvailAt(t int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if t < p.base || t >= p.end() {
		return 0, fmt.Errorf("%w: t=%d", ErrOutOfRange, t)
	}
	return p.floorPoint(t).remaining, nil
}

// AvailDuring returns the minimum units available throughout
// [start, start+duration).
func (p *Planner) AvailDuring(start, duration int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.availDuring(start, duration)
}

// availDuring is AvailDuring without locking; callers hold p.mu.
func (p *Planner) availDuring(start, duration int64) (int64, error) {
	if duration <= 0 {
		return 0, fmt.Errorf("%w: duration=%d", ErrInvalid, duration)
	}
	if start < p.base || start+duration > p.end() {
		return 0, fmt.Errorf("%w: window [%d,%d)", ErrOutOfRange, start, start+duration)
	}
	f := p.floorPoint(start)
	min := f.remaining
	for n := f.spNode.Next(); n != nil; n = n.Next() {
		pt := n.Item()
		if pt.at >= start+duration {
			break
		}
		if pt.remaining < min {
			min = pt.remaining
		}
	}
	return min, nil
}

// CanFit reports whether request units fit throughout [start, start+duration).
func (p *Planner) CanFit(start, duration, request int64) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.canFit(start, duration, request)
}

// canFit is CanFit without locking; callers hold p.mu.
func (p *Planner) canFit(start, duration, request int64) bool {
	avail, err := p.availDuring(start, duration)
	return err == nil && avail >= request
}

// ShortfallDuring returns how many of the requested units are missing
// throughout [start, start+duration): max(0, request - AvailDuring). A
// window that falls outside the planner's range is fully short. Blocking
// signatures record this so a wakeup index can tell whether enough
// capacity was freed to make a re-match worthwhile.
func (p *Planner) ShortfallDuring(start, duration, request int64) int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	avail, err := p.availDuring(start, duration)
	if err != nil || avail < 0 {
		return request
	}
	if avail >= request {
		return 0
	}
	return request - avail
}

// minTimeGE returns the scheduled point with the smallest at among points
// whose remaining >= request (paper Algorithm 1: FINDANCHOR + FINDETPOINT,
// realized by chasing the subtree-minimum augmentation).
func (p *Planner) minTimeGE(request int64) *schedPoint {
	var best *schedPoint
	n := p.et.Root()
	for n != nil {
		pt := n.Item()
		if pt.remaining >= request {
			// This node and its whole right subtree satisfy the
			// request: the right subtree's earliest time is a
			// single augmented lookup (RIGHTET in the paper).
			if best == nil || pt.at < best.at {
				best = pt
			}
			if r := n.Right(); r != nil {
				if m := r.Item().subtreeMin; best == nil || m.at < best.at {
					best = m
				}
			}
			n = n.Left() // earlier times may hide among smaller remainders
		} else {
			n = n.Right()
		}
	}
	return best
}

// nextPointGE returns the earliest scheduled point strictly after `after`
// whose remaining capacity is at least request, or nil. It descends the SP
// tree pruning subtrees by the max-remaining and max-time augmentations,
// so each call is O(log N) — the candidate iterator behind AvailTimeFirst
// and AvailPointTimeAfter. (flux-sched iterates by temporarily unlinking
// ET-tree nodes; the augmented search visits the same candidates without
// mutating the trees.)
func (p *Planner) nextPointGE(after, request int64) *schedPoint {
	var rec func(n *rbtree.Node[*schedPoint]) *schedPoint
	rec = func(n *rbtree.Node[*schedPoint]) *schedPoint {
		if n == nil {
			return nil
		}
		pt := n.Item()
		if pt.spMaxRemaining < request || pt.spMaxAt <= after {
			return nil
		}
		if pt.at > after {
			if r := rec(n.Left()); r != nil {
				return r
			}
			if pt.remaining >= request {
				return pt
			}
		}
		return rec(n.Right())
	}
	return rec(p.sp.Root())
}

// AvailTimeFirst returns the earliest time t >= at such that request units
// are available throughout [t, t+duration). It first tries at itself;
// afterwards the earliest candidate comes from the ET tree (paper
// Algorithm 1) and subsequent candidates — points that qualify on
// remaining capacity but fail the span check (SPANOK) — from the SP
// tree's augmented time-filtered search.
func (p *Planner) AvailTimeFirst(at, duration, request int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if duration <= 0 || request < 0 {
		return -1, fmt.Errorf("%w: duration=%d request=%d", ErrInvalid, duration, request)
	}
	if request > p.total {
		return -1, fmt.Errorf("%w: request %d > total %d", ErrNoSpace, request, p.total)
	}
	if at < p.base {
		at = p.base
	}
	if at+duration > p.end() {
		return -1, fmt.Errorf("%w: window start %d", ErrOutOfRange, at)
	}
	if p.canFit(at, duration, request) {
		return at, nil
	}
	// First candidate via Algorithm 1 (FINDEARLIESTAT on the ET tree).
	pt := p.minTimeGE(request)
	for pt != nil {
		t := pt.at
		if t > at {
			if t+duration > p.end() {
				// Candidates arrive in increasing time order;
				// all later ones overflow the horizon too.
				return -1, ErrNoSpace
			}
			if p.canFit(t, duration, request) {
				return t, nil
			}
		}
		pt = p.nextPointGE(max64(t, at), request)
	}
	return -1, ErrNoSpace
}

// AvailPointTimeAfter returns the earliest scheduled-point time strictly
// greater than after at which request units are available throughout the
// following duration. Unlike AvailTimeFirst it never returns `after`
// itself, which makes it the candidate-time iterator for reservations:
// repeated calls with the previous result walk distinct availability
// change points (paper §3.4, Figure 2).
func (p *Planner) AvailPointTimeAfter(after, duration, request int64) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if duration <= 0 || request < 0 {
		return -1, fmt.Errorf("%w: duration=%d request=%d", ErrInvalid, duration, request)
	}
	if request > p.total {
		return -1, fmt.Errorf("%w: request %d > total %d", ErrNoSpace, request, p.total)
	}
	t := after
	for {
		pt := p.nextPointGE(t, request)
		if pt == nil {
			return -1, ErrNoSpace
		}
		if pt.at+duration > p.end() {
			return -1, ErrNoSpace
		}
		if p.canFit(pt.at, duration, request) {
			return pt.at, nil
		}
		t = pt.at
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// AddSpan plans request units during [start, start+duration) and returns
// the span ID. It fails with ErrNoSpace if the window cannot hold the
// request.
func (p *Planner) AddSpan(start, duration, request int64) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if duration <= 0 || request <= 0 {
		return -1, fmt.Errorf("%w: duration=%d request=%d", ErrInvalid, duration, request)
	}
	avail, err := p.availDuring(start, duration)
	if err != nil {
		return -1, err
	}
	if avail < request {
		return -1, fmt.Errorf("%w: want %d, have %d in [%d,%d)", ErrNoSpace, request, avail, start, start+duration)
	}
	p1 := p.getOrCreatePoint(start)
	p2 := p.getOrCreatePoint(start + duration)
	p1.refCount++
	p2.refCount++
	for n := p1.spNode; n != nil; n = n.Next() {
		pt := n.Item()
		if pt.at >= start+duration {
			break
		}
		pt.scheduled += request
		pt.remaining -= request
		p.reposition(pt)
	}
	id := p.nextSpanID
	p.nextSpanID++
	p.spans[id] = &Span{ID: id, Start: start, Last: start + duration, Planned: request}
	return id, nil
}

// RemoveSpan unplans the span with the given ID, releasing its resources
// and garbage-collecting boundary points no span references anymore.
func (p *Planner) RemoveSpan(id int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.spans[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	delete(p.spans, id)
	start := p.floorPoint(s.Start)
	var boundary [2]*schedPoint
	for n := start.spNode; n != nil; {
		pt := n.Item()
		if pt.at > s.Last {
			break
		}
		n = n.Next() // advance before any mutation of pt
		if pt.at == s.Start {
			pt.refCount--
			boundary[0] = pt
		}
		if pt.at == s.Last {
			pt.refCount--
			boundary[1] = pt
			break
		}
		if pt.at >= s.Start {
			pt.scheduled -= s.Planned
			pt.remaining += s.Planned
			p.reposition(pt)
		}
	}
	for _, pt := range boundary {
		if pt != nil && pt.refCount <= 0 && pt.at != p.base {
			p.dropPoint(pt)
		}
	}
	return nil
}

// Update grows or shrinks the pool by delta units, applied uniformly across
// the whole horizon. Shrinking fails with ErrNoSpace if any point would go
// negative.
func (p *Planner) Update(delta int64) error {
	if delta == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if delta < 0 {
		for n := p.sp.Min(); n != nil; n = n.Next() {
			if n.Item().remaining+delta < 0 {
				return fmt.Errorf("%w: shrink by %d leaves point %d negative", ErrNoSpace, -delta, n.Item().at)
			}
		}
	}
	p.total += delta
	for n := p.sp.Min(); n != nil; n = n.Next() {
		pt := n.Item()
		pt.remaining += delta
		p.reposition(pt)
	}
	return nil
}

// Points invokes fn for every scheduled point in time order with that
// point's time and available amount, stopping early if fn returns false.
func (p *Planner) Points(fn func(at, avail int64) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for n := p.sp.Min(); n != nil; n = n.Next() {
		if !fn(n.Item().at, n.Item().remaining) {
			return
		}
	}
}

// Spans invokes fn for every live span in ascending ID order, stopping
// early if fn returns false.
func (p *Planner) Spans(fn func(s Span) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ids := make([]int64, 0, len(p.spans))
	for id := range p.spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !fn(*p.spans[id]) {
			return
		}
	}
}

// Utilization returns the fraction of unit-seconds in use over [from, to):
// the integral of scheduled capacity divided by total * (to - from).
func (p *Planner) Utilization(from, to int64) (float64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if to <= from {
		return 0, fmt.Errorf("%w: window [%d,%d)", ErrInvalid, from, to)
	}
	if from < p.base || to > p.end() {
		return 0, fmt.Errorf("%w: window [%d,%d)", ErrOutOfRange, from, to)
	}
	var used int64
	cur := p.floorPoint(from)
	curAt := from
	for n := cur.spNode.Next(); ; n = n.Next() {
		segEnd := to
		var next *schedPoint
		if n != nil {
			next = n.Item()
			if next.at < to {
				segEnd = next.at
			}
		}
		used += cur.scheduled * (segEnd - curAt)
		if next == nil || next.at >= to {
			break
		}
		cur, curAt = next, next.at
	}
	return float64(used) / float64(p.total*(to-from)), nil
}
