package sched

import (
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// newSchedMVCC is newSchedOpts with an explicit MVCC toggle on the
// traverser, for comparing the epoch-snapshot matching path against the
// legacy locked path.
func newSchedMVCC(t testing.TB, policy QueuePolicy, mvcc bool, racks, nodes, cores int64, opts ...SchedOption) *Scheduler {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(racks, nodes, cores, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{}, traverser.WithMVCC(mvcc))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, policy, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMVCCMatchesLegacyDecisions is the cross-configuration decision-parity
// property: seeded random workloads run against epoch-snapshot MVCC
// matching must produce per-job decisions (state, start, end) identical to
// the legacy RWMutex/claim-counter path, for every queue policy, in both
// the full-requeue and incremental engines. Parity holds because job
// placement is a pure function of (jobID, graph state) in both
// configurations: the same jobID-derived first-fit rotation applies on
// every path, and speculative commits validate against live state before
// publishing, so a stale epoch can only cause a conflict-and-retry, never
// a different final decision.
//
// The deterministic modes are compared directly. Full-parallel runs are
// excluded here for the same reason TestIncrementalMatchesFullDecisions
// uses the sequential loop as its reference: full-parallel placements are
// not canonical (see parallel.go). TestParallelVsSequentialBothPaths below
// covers the parallel pipeline for both configurations.
func TestMVCCMatchesLegacyDecisions(t *testing.T) {
	type mode struct {
		name string
		opts []SchedOption
	}
	modes := []mode{
		{"full-seq", []SchedOption{WithIncremental(false)}},
		{"incr-w1", []SchedOption{WithIncremental(true), WithMatchWorkers(1)}},
		{"incr-w3", []SchedOption{WithIncremental(true), WithMatchWorkers(3)}},
	}
	for _, policy := range []QueuePolicy{FCFS, EASY, Conservative} {
		for seed := int64(1); seed <= 4; seed++ {
			for _, m := range modes {
				legacy := newSchedMVCC(t, policy, false, 1, 4, 4, m.opts...)
				drive(t, legacy, randomWorkload(seed, 40))
				mvcc := newSchedMVCC(t, policy, true, 1, 4, 4, m.opts...)
				drive(t, mvcc, randomWorkload(seed, 40))

				for id, lj := range legacy.Jobs() {
					mj, ok := mvcc.Job(id)
					if !ok {
						t.Fatalf("%s/%s/seed%d: job %d missing under MVCC", policy, m.name, seed, id)
					}
					if lj.State != mj.State || lj.StartAt != mj.StartAt || lj.EndAt != mj.EndAt {
						t.Errorf("%s/%s/seed%d: job %d diverged: legacy %v@[%d,%d] vs mvcc %v@[%d,%d]",
							policy, m.name, seed, id,
							lj.State, lj.StartAt, lj.EndAt, mj.State, mj.StartAt, mj.EndAt)
					}
				}
				if legacy.Now() != mvcc.Now() {
					t.Errorf("%s/%s/seed%d: makespan diverged: legacy %d vs mvcc %d",
						policy, m.name, seed, legacy.Now(), mvcc.Now())
				}
				if t.Failed() {
					return
				}
			}
		}
	}
}

// TestParallelVsSequentialBothPaths extends the parallel-vs-sequential
// decision guarantee to both matching configurations: for each of MVCC and
// legacy, the parallel pipeline at several worker counts must reproduce
// that same configuration's sequential decision timeline on the fixed
// mixed workload.
func TestParallelVsSequentialBothPaths(t *testing.T) {
	for _, mvcc := range []bool{false, true} {
		for _, policy := range []QueuePolicy{FCFS, EASY, Conservative} {
			seq := newSchedMVCC(t, policy, mvcc, 1, 4, 4, WithMatchWorkers(1))
			runWorkload(t, seq)
			for _, workers := range []int{2, 4} {
				par := newSchedMVCC(t, policy, mvcc, 1, 4, 4, WithMatchWorkers(workers))
				runWorkload(t, par)
				for id, sj := range seq.Jobs() {
					pj, ok := par.Job(id)
					if !ok {
						t.Fatalf("mvcc=%v/%s/w%d: job %d missing", mvcc, policy, workers, id)
					}
					if sj.State != pj.State || sj.StartAt != pj.StartAt || sj.EndAt != pj.EndAt {
						t.Errorf("mvcc=%v/%s/w%d: job %d diverged: %v@[%d,%d] vs %v@[%d,%d]",
							mvcc, policy, workers, id,
							sj.State, sj.StartAt, sj.EndAt, pj.State, pj.StartAt, pj.EndAt)
					}
				}
			}
		}
	}
}
