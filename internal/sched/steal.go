package sched

import (
	"fmt"

	"fluxion/internal/traverser"
)

// This file is the scheduler side of sharded work stealing
// (internal/shard): a router that owns several schedulers needs to pull
// a job out of one loop and resubmit it to another. Withdraw is that
// hook — and doubles as a general job-removal API (cancel a queued job,
// drop an unsatisfiable record, reset a benchmark harness).

// PendingJobs returns the jobs currently in StatePending, in queue
// order — the candidates a rebalancer may steal (reserved jobs hold
// planner claims and stay put). The returned slice is a snapshot.
func (s *Scheduler) PendingJobs() []*Job {
	var out []*Job
	for _, j := range s.pending {
		if j.State == StatePending {
			out = append(out, j)
		}
	}
	return out
}

// Withdraw removes a job from the scheduler entirely and returns it:
// pending jobs leave the queue, reserved jobs drop their reservation,
// running jobs release their allocation (the completion event goes
// stale), terminal jobs just leave the table. The returned Job keeps its
// Spec, Submit, Priority, and Retries so a caller can resubmit it
// elsewhere; graph-specific state (the compiled spec, the blocking
// signature, the allocation) is cleared.
func (s *Scheduler) Withdraw(id int64) (*Job, error) {
	job := s.jobs[id]
	if job == nil {
		return nil, fmt.Errorf("%w: %d", traverser.ErrUnknownJob, id)
	}
	s.jBegin()
	defer s.jEnd()
	s.jrec(Rec{Kind: RecWithdraw, ID: id})
	if job.Alloc != nil || job.State == StateRunning || job.State == StateReserved {
		_ = s.tr.Cancel(id)
	}
	s.unqueue(job)
	delete(s.reserved, id)
	delete(s.jobs, id)
	job.State = StatePending
	job.Alloc = nil
	job.compiled = nil
	job.sigOK = false
	job.sigReserve = false
	job.poisoned = false
	job.conflicts = 0
	job.Quarantine = QuarantineNone
	job.QuarantineMsg = ""
	return job, nil
}
