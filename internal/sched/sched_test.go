package sched

import (
	"errors"
	"strings"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// newSched builds a scheduler over a racks×nodes×cores system.
func newSched(t *testing.T, policy QueuePolicy, racks, nodes, cores int64) *Scheduler {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(racks, nodes, cores, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// nodeJob requests n whole nodes (all cores) for dur seconds.
func nodeJob(n, cores, dur int64) *jobspec.Jobspec {
	return jobspec.New(dur, jobspec.SlotR(n, jobspec.R("node", 1, jobspec.R("core", cores))))
}

func TestUnknownPolicy(t *testing.T) {
	s := newSched(t, Conservative, 1, 1, 1)
	if _, err := New(s.tr, "bogus"); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("bogus policy: %v", err)
	}
}

func TestConservativeBackfillTimeline(t *testing.T) {
	// 1 rack × 2 nodes × 4 cores.
	s := newSched(t, Conservative, 1, 2, 4)
	// j1 takes both nodes for 100s; j2 (1 node, 50s) must wait; j3
	// (1 node, 100s) queues behind.
	mustSubmit(t, s, 1, nodeJob(2, 4, 100))
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))
	mustSubmit(t, s, 3, nodeJob(1, 4, 100))
	s.Schedule()

	j1, _ := s.Job(1)
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j1.State != StateRunning || j1.StartAt != 0 {
		t.Fatalf("j1 = %v@%d", j1.State, j1.StartAt)
	}
	if j2.State != StateReserved || j2.Alloc.At != 100 {
		t.Fatalf("j2 = %v@%d", j2.State, j2.Alloc.At)
	}
	// Conservative: j3 also holds a reservation (both nodes free at
	// 100, so j3 runs alongside j2).
	if j3.State != StateReserved || j3.Alloc.At != 100 {
		t.Fatalf("j3 = %v@%d", j3.State, j3.Alloc.At)
	}

	done := s.Run(0)
	if done != 3 {
		t.Fatalf("completed = %d", done)
	}
	if j2.StartAt != 100 || j3.StartAt != 100 {
		t.Fatalf("starts: j2=%d j3=%d", j2.StartAt, j3.StartAt)
	}
	if s.Now() != 200 {
		t.Fatalf("makespan end = %d", s.Now())
	}
}

func TestEASYBackfillsAroundHead(t *testing.T) {
	// 2 nodes. j1 runs on one node for 100s. j2 (head, needs both
	// nodes) reserves at 100. j3 (1 node, 50s) backfills immediately
	// because it completes before the head's reservation.
	s := newSched(t, EASY, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 100))
	mustSubmit(t, s, 3, nodeJob(1, 4, 50))
	s.Schedule()

	j1, _ := s.Job(1)
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j1.State != StateRunning {
		t.Fatalf("j1 = %v", j1.State)
	}
	if j2.State != StateReserved || j2.Alloc.At != 100 {
		t.Fatalf("j2 = %v@%d", j2.State, j2.Alloc.At)
	}
	if j3.State != StateRunning || j3.StartAt != 0 {
		t.Fatalf("j3 should backfill: %v@%d", j3.State, j3.StartAt)
	}
	// j3 must not delay the head: j2 still starts at 100.
	s.Run(0)
	if j2.StartAt != 100 {
		t.Fatalf("head delayed to %d", j2.StartAt)
	}
}

func TestEASYDoesNotBackfillDelayingJob(t *testing.T) {
	// Same as above but j3 runs 200s on the node j1 frees at 100 —
	// that would delay the head, and the head's reservation spans
	// prevent it.
	s := newSched(t, EASY, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 100))
	mustSubmit(t, s, 3, nodeJob(1, 4, 200))
	s.Schedule()
	j3, _ := s.Job(3)
	if j3.State != StatePending {
		t.Fatalf("j3 = %v, want pending", j3.State)
	}
	s.Run(0)
	j2, _ := s.Job(2)
	if j2.StartAt != 100 {
		t.Fatalf("head start = %d", j2.StartAt)
	}
	if j3.StartAt < 200 {
		t.Fatalf("j3 start = %d, want >= 200", j3.StartAt)
	}
}

func TestFCFSNeverBackfills(t *testing.T) {
	s := newSched(t, FCFS, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 100)) // blocks
	mustSubmit(t, s, 3, nodeJob(1, 4, 50))  // would fit, must wait
	s.Schedule()
	j3, _ := s.Job(3)
	if j3.State != StatePending {
		t.Fatalf("FCFS backfilled j3: %v", j3.State)
	}
	done := s.Run(0)
	if done != 3 {
		t.Fatalf("completed = %d", done)
	}
	j2, _ := s.Job(2)
	if j2.StartAt != 100 {
		t.Fatalf("j2 start = %d", j2.StartAt)
	}
	if j3.StartAt < 200 {
		t.Fatalf("j3 start = %d, want >= 200 (after j2)", j3.StartAt)
	}
}

func TestUnsatisfiableRejectedAtSubmit(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	job, err := s.Submit(1, nodeJob(3, 4, 10)) // only 2 nodes exist
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateUnsatisfiable {
		t.Fatalf("state = %v", job.State)
	}
	s.Schedule()
	if c := s.Counts(); c[StateUnsatisfiable] != 1 || c[StateRunning] != 0 {
		t.Fatalf("counts = %v", c)
	}
}

func TestDuplicateSubmit(t *testing.T) {
	s := newSched(t, Conservative, 1, 1, 1)
	mustSubmit(t, s, 1, nodeJob(1, 1, 10))
	if _, err := s.Submit(1, nodeJob(1, 1, 10)); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}

func TestManyJobsDrainCompletely(t *testing.T) {
	s := newSched(t, Conservative, 2, 4, 8)
	for i := int64(1); i <= 40; i++ {
		n := int64(1 + i%3) // 1..3 nodes
		dur := int64(10 + (i%7)*13)
		mustSubmit(t, s, i, nodeJob(n, 8, dur))
	}
	done := s.Run(0)
	if done != 40 {
		t.Fatalf("completed = %d, want 40; counts=%v", done, s.Counts())
	}
	// All planners drained: a full-system job fits right now.
	full := nodeJob(8, 8, 10)
	if _, err := s.tr.MatchAllocate(999, full, s.Now()); err != nil {
		t.Fatalf("system not drained: %v", err)
	}
}

func TestMatchDurationRecorded(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 10))
	s.Schedule()
	j, _ := s.Job(1)
	if j.MatchDuration <= 0 {
		t.Fatal("MatchDuration not recorded")
	}
}

func TestJobStateStrings(t *testing.T) {
	want := map[JobState]string{
		StatePending: "pending", StateReserved: "reserved",
		StateRunning: "running", StateCompleted: "completed",
		StateUnsatisfiable: "unsatisfiable", JobState(99): "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func mustSubmit(t *testing.T, s *Scheduler, id int64, spec *jobspec.Jobspec) *Job {
	t.Helper()
	job, err := s.Submit(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestMetrics(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(2, 4, 100)) // both nodes [0,100)
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))  // waits until 100
	mustSubmit(t, s, 3, nodeJob(4, 4, 50))  // unsatisfiable
	done := s.Run(0)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	m := s.Metrics()
	if m.Completed != 2 || m.Unsatisfiable != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Makespan != 150 {
		t.Fatalf("makespan = %d", m.Makespan)
	}
	if m.MeanWait != 50 || m.MaxWait != 100 {
		t.Fatalf("waits = %.1f / %d", m.MeanWait, m.MaxWait)
	}
	// Node-seconds: j1 = 2*100, j2 = 1*50 => 250 of 2*150 = 83.3%.
	if m.NodeSecondsUsed != 250 || m.NodeSecondsTotal != 300 {
		t.Fatalf("node-seconds = %d/%d", m.NodeSecondsUsed, m.NodeSecondsTotal)
	}
	if u := m.Utilization(); u < 0.83 || u > 0.84 {
		t.Fatalf("utilization = %f", u)
	}
	if s := m.String(); !strings.Contains(s, "completed=2") || !strings.Contains(s, "util=") {
		t.Fatalf("String = %q", s)
	}
	if (Metrics{}).Utilization() != 0 {
		t.Fatal("zero metrics utilization")
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := newSched(t, FCFS, 1, 1, 4)
	// Low-priority job submitted first; high-priority job jumps ahead.
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	if _, err := s.SubmitPriority(2, nodeJob(1, 4, 100), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitPriority(3, nodeJob(1, 4, 100), 10); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	j1, _ := s.Job(1)
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j2.StartAt != 0 {
		t.Fatalf("high-priority j2 started at %d", j2.StartAt)
	}
	// Equal priorities keep submit order: j3 after j2.
	if j3.StartAt != 100 {
		t.Fatalf("j3 started at %d", j3.StartAt)
	}
	if j1.StartAt != 200 {
		t.Fatalf("low-priority j1 started at %d", j1.StartAt)
	}
}

func TestQueueDepth(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(1, 2, 4, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, Conservative, WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 (allocated) and job 2 (reserved) fill the depth-2 window,
	// so jobs 3 and 4 are not even planned this cycle.
	mustSubmit(t, s, 1, nodeJob(2, 4, 100))
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))
	mustSubmit(t, s, 3, nodeJob(1, 4, 50))
	mustSubmit(t, s, 4, nodeJob(1, 4, 50))
	s.Schedule()
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	j4, _ := s.Job(4)
	if j2.State != StateReserved {
		t.Fatalf("j2 = %v", j2.State)
	}
	if j3.State != StatePending || j4.State != StatePending || j4.Alloc != nil {
		t.Fatalf("beyond-depth jobs planned: %v %v", j3.State, j4.State)
	}
	// The run still drains everything.
	if done := s.Run(0); done != 4 {
		t.Fatalf("completed = %d", done)
	}
}

func TestAdvanceTo(t *testing.T) {
	s := newSched(t, Conservative, 1, 1, 4)
	if s.HasEvents() || s.NextEventAt() != -1 {
		t.Fatal("fresh scheduler has no events")
	}
	if err := s.AdvanceTo(100); err != nil || s.Now() != 100 {
		t.Fatalf("advance: %v now=%d", err, s.Now())
	}
	if err := s.AdvanceTo(50); err == nil {
		t.Fatal("backwards advance accepted")
	}
	mustSubmit(t, s, 1, nodeJob(1, 4, 10))
	s.Schedule()
	if !s.HasEvents() || s.NextEventAt() != 110 {
		t.Fatalf("event at %d", s.NextEventAt())
	}
	if err := s.AdvanceTo(200); err == nil {
		t.Fatal("advance past completion accepted")
	}
	if err := s.AdvanceTo(105); err != nil {
		t.Fatalf("advance before completion: %v", err)
	}
}
