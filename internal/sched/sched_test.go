package sched

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// newSched builds a scheduler over a racks×nodes×cores system.
func newSched(t *testing.T, policy QueuePolicy, racks, nodes, cores int64) *Scheduler {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(racks, nodes, cores, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// nodeJob requests n whole nodes (all cores) for dur seconds.
func nodeJob(n, cores, dur int64) *jobspec.Jobspec {
	return jobspec.New(dur, jobspec.SlotR(n, jobspec.R("node", 1, jobspec.R("core", cores))))
}

func TestUnknownPolicy(t *testing.T) {
	s := newSched(t, Conservative, 1, 1, 1)
	if _, err := New(s.tr, "bogus"); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("bogus policy: %v", err)
	}
}

func TestConservativeBackfillTimeline(t *testing.T) {
	// 1 rack × 2 nodes × 4 cores.
	s := newSched(t, Conservative, 1, 2, 4)
	// j1 takes both nodes for 100s; j2 (1 node, 50s) must wait; j3
	// (1 node, 100s) queues behind.
	mustSubmit(t, s, 1, nodeJob(2, 4, 100))
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))
	mustSubmit(t, s, 3, nodeJob(1, 4, 100))
	s.Schedule()

	j1, _ := s.Job(1)
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j1.State != StateRunning || j1.StartAt != 0 {
		t.Fatalf("j1 = %v@%d", j1.State, j1.StartAt)
	}
	if j2.State != StateReserved || j2.Alloc.At != 100 {
		t.Fatalf("j2 = %v@%d", j2.State, j2.Alloc.At)
	}
	// Conservative: j3 also holds a reservation (both nodes free at
	// 100, so j3 runs alongside j2).
	if j3.State != StateReserved || j3.Alloc.At != 100 {
		t.Fatalf("j3 = %v@%d", j3.State, j3.Alloc.At)
	}

	done := s.Run(0)
	if done != 3 {
		t.Fatalf("completed = %d", done)
	}
	if j2.StartAt != 100 || j3.StartAt != 100 {
		t.Fatalf("starts: j2=%d j3=%d", j2.StartAt, j3.StartAt)
	}
	if s.Now() != 200 {
		t.Fatalf("makespan end = %d", s.Now())
	}
}

func TestEASYBackfillsAroundHead(t *testing.T) {
	// 2 nodes. j1 runs on one node for 100s. j2 (head, needs both
	// nodes) reserves at 100. j3 (1 node, 50s) backfills immediately
	// because it completes before the head's reservation.
	s := newSched(t, EASY, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 100))
	mustSubmit(t, s, 3, nodeJob(1, 4, 50))
	s.Schedule()

	j1, _ := s.Job(1)
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j1.State != StateRunning {
		t.Fatalf("j1 = %v", j1.State)
	}
	if j2.State != StateReserved || j2.Alloc.At != 100 {
		t.Fatalf("j2 = %v@%d", j2.State, j2.Alloc.At)
	}
	if j3.State != StateRunning || j3.StartAt != 0 {
		t.Fatalf("j3 should backfill: %v@%d", j3.State, j3.StartAt)
	}
	// j3 must not delay the head: j2 still starts at 100.
	s.Run(0)
	if j2.StartAt != 100 {
		t.Fatalf("head delayed to %d", j2.StartAt)
	}
}

func TestEASYDoesNotBackfillDelayingJob(t *testing.T) {
	// Same as above but j3 runs 200s on the node j1 frees at 100 —
	// that would delay the head, and the head's reservation spans
	// prevent it.
	s := newSched(t, EASY, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 100))
	mustSubmit(t, s, 3, nodeJob(1, 4, 200))
	s.Schedule()
	j3, _ := s.Job(3)
	if j3.State != StatePending {
		t.Fatalf("j3 = %v, want pending", j3.State)
	}
	s.Run(0)
	j2, _ := s.Job(2)
	if j2.StartAt != 100 {
		t.Fatalf("head start = %d", j2.StartAt)
	}
	if j3.StartAt < 200 {
		t.Fatalf("j3 start = %d, want >= 200", j3.StartAt)
	}
}

func TestFCFSNeverBackfills(t *testing.T) {
	s := newSched(t, FCFS, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 100)) // blocks
	mustSubmit(t, s, 3, nodeJob(1, 4, 50))  // would fit, must wait
	s.Schedule()
	j3, _ := s.Job(3)
	if j3.State != StatePending {
		t.Fatalf("FCFS backfilled j3: %v", j3.State)
	}
	done := s.Run(0)
	if done != 3 {
		t.Fatalf("completed = %d", done)
	}
	j2, _ := s.Job(2)
	if j2.StartAt != 100 {
		t.Fatalf("j2 start = %d", j2.StartAt)
	}
	if j3.StartAt < 200 {
		t.Fatalf("j3 start = %d, want >= 200 (after j2)", j3.StartAt)
	}
}

func TestUnsatisfiableRejectedAtSubmit(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	job, err := s.Submit(1, nodeJob(3, 4, 10)) // only 2 nodes exist
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateUnsatisfiable {
		t.Fatalf("state = %v", job.State)
	}
	s.Schedule()
	if c := s.Counts(); c[StateUnsatisfiable] != 1 || c[StateRunning] != 0 {
		t.Fatalf("counts = %v", c)
	}
}

func TestDuplicateSubmit(t *testing.T) {
	s := newSched(t, Conservative, 1, 1, 1)
	mustSubmit(t, s, 1, nodeJob(1, 1, 10))
	if _, err := s.Submit(1, nodeJob(1, 1, 10)); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}

func TestManyJobsDrainCompletely(t *testing.T) {
	s := newSched(t, Conservative, 2, 4, 8)
	for i := int64(1); i <= 40; i++ {
		n := int64(1 + i%3) // 1..3 nodes
		dur := int64(10 + (i%7)*13)
		mustSubmit(t, s, i, nodeJob(n, 8, dur))
	}
	done := s.Run(0)
	if done != 40 {
		t.Fatalf("completed = %d, want 40; counts=%v", done, s.Counts())
	}
	// All planners drained: a full-system job fits right now.
	full := nodeJob(8, 8, 10)
	if _, err := s.tr.MatchAllocate(999, full, s.Now()); err != nil {
		t.Fatalf("system not drained: %v", err)
	}
}

func TestMatchDurationRecorded(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 10))
	s.Schedule()
	j, _ := s.Job(1)
	if j.MatchDuration <= 0 {
		t.Fatal("MatchDuration not recorded")
	}
}

func TestJobStateStrings(t *testing.T) {
	want := map[JobState]string{
		StatePending: "pending", StateReserved: "reserved",
		StateRunning: "running", StateCompleted: "completed",
		StateUnsatisfiable: "unsatisfiable", JobState(99): "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func mustSubmit(t testing.TB, s *Scheduler, id int64, spec *jobspec.Jobspec) *Job {
	t.Helper()
	job, err := s.Submit(id, spec)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestMetrics(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(2, 4, 100)) // both nodes [0,100)
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))  // waits until 100
	mustSubmit(t, s, 3, nodeJob(4, 4, 50))  // unsatisfiable
	done := s.Run(0)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	m := s.Metrics()
	if m.Completed != 2 || m.Unsatisfiable != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Makespan != 150 {
		t.Fatalf("makespan = %d", m.Makespan)
	}
	if m.MeanWait != 50 || m.MaxWait != 100 {
		t.Fatalf("waits = %.1f / %d", m.MeanWait, m.MaxWait)
	}
	// Node-seconds: j1 = 2*100, j2 = 1*50 => 250 of 2*150 = 83.3%.
	if m.NodeSecondsUsed != 250 || m.NodeSecondsTotal != 300 {
		t.Fatalf("node-seconds = %d/%d", m.NodeSecondsUsed, m.NodeSecondsTotal)
	}
	if u := m.Utilization(); u < 0.83 || u > 0.84 {
		t.Fatalf("utilization = %f", u)
	}
	if s := m.String(); !strings.Contains(s, "completed=2") || !strings.Contains(s, "util=") {
		t.Fatalf("String = %q", s)
	}
	if (Metrics{}).Utilization() != 0 {
		t.Fatal("zero metrics utilization")
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := newSched(t, FCFS, 1, 1, 4)
	// Low-priority job submitted first; high-priority job jumps ahead.
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	if _, err := s.SubmitPriority(2, nodeJob(1, 4, 100), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitPriority(3, nodeJob(1, 4, 100), 10); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	j1, _ := s.Job(1)
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j2.StartAt != 0 {
		t.Fatalf("high-priority j2 started at %d", j2.StartAt)
	}
	// Equal priorities keep submit order: j3 after j2.
	if j3.StartAt != 100 {
		t.Fatalf("j3 started at %d", j3.StartAt)
	}
	if j1.StartAt != 200 {
		t.Fatalf("low-priority j1 started at %d", j1.StartAt)
	}
}

func TestQueueDepth(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(1, 2, 4, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, Conservative, WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 (allocated) and job 2 (reserved) fill the depth-2 window,
	// so jobs 3 and 4 are not even planned this cycle.
	mustSubmit(t, s, 1, nodeJob(2, 4, 100))
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))
	mustSubmit(t, s, 3, nodeJob(1, 4, 50))
	mustSubmit(t, s, 4, nodeJob(1, 4, 50))
	s.Schedule()
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	j4, _ := s.Job(4)
	if j2.State != StateReserved {
		t.Fatalf("j2 = %v", j2.State)
	}
	if j3.State != StatePending || j4.State != StatePending || j4.Alloc != nil {
		t.Fatalf("beyond-depth jobs planned: %v %v", j3.State, j4.State)
	}
	// The run still drains everything.
	if done := s.Run(0); done != 4 {
		t.Fatalf("completed = %d", done)
	}
}

func TestAdvanceTo(t *testing.T) {
	s := newSched(t, Conservative, 1, 1, 4)
	if s.HasEvents() || s.NextEventAt() != -1 {
		t.Fatal("fresh scheduler has no events")
	}
	if err := s.AdvanceTo(100); err != nil || s.Now() != 100 {
		t.Fatalf("advance: %v now=%d", err, s.Now())
	}
	if err := s.AdvanceTo(50); err == nil {
		t.Fatal("backwards advance accepted")
	}
	mustSubmit(t, s, 1, nodeJob(1, 4, 10))
	s.Schedule()
	if !s.HasEvents() || s.NextEventAt() != 110 {
		t.Fatalf("event at %d", s.NextEventAt())
	}
	if err := s.AdvanceTo(200); err == nil {
		t.Fatal("advance past completion accepted")
	}
	if err := s.AdvanceTo(105); err != nil {
		t.Fatalf("advance before completion: %v", err)
	}
}

func TestNodeDownEvictsAndRequeues(t *testing.T) {
	// 1 rack × 2 nodes × 4 cores; j1 runs on one node for 100s.
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	s.Schedule()
	j1, _ := s.Job(1)
	if j1.State != StateRunning {
		t.Fatalf("j1 = %v", j1.State)
	}
	victim := j1.Alloc.Nodes()[0].Path()

	// Fail the node at t=40.
	if err := s.AdvanceTo(40); err != nil {
		t.Fatal(err)
	}
	evicted, err := s.NodeDown(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v", evicted)
	}
	if j1.State != StatePending || j1.Retries != 1 {
		t.Fatalf("j1 = %v retries=%d", j1.State, j1.Retries)
	}
	s.Schedule()
	// The job restarts on the surviving node at t=40.
	if j1.State != StateRunning || j1.StartAt != 40 {
		t.Fatalf("restart: %v @%d", j1.State, j1.StartAt)
	}
	if j1.Alloc.Nodes()[0].Path() == victim {
		t.Fatal("restarted on the failed node")
	}
	if s.Run(0) != 1 {
		t.Fatal("job did not complete")
	}
	if j1.EndAt != 140 {
		t.Fatalf("end = %d", j1.EndAt)
	}
	m := s.Metrics()
	if m.Requeues != 1 || m.LostCoreSeconds != 4*40 {
		t.Fatalf("metrics = %+v", m)
	}
	if !strings.Contains(m.String(), "requeues=1 lostCoreSec=160") {
		t.Fatalf("metrics string = %s", m)
	}
}

func TestNodeDownStaleCompletionSkipped(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	s.Schedule()
	j1, _ := s.Job(1)
	victim := j1.Alloc.Nodes()[0].Path()
	if err := s.AdvanceTo(40); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NodeDown(victim); err != nil {
		t.Fatal(err)
	}
	s.Schedule() // restarts at 40, new completion at 140
	// The stale completion event at t=100 must not surface.
	if at := s.NextEventAt(); at != 140 {
		t.Fatalf("next event = %d", at)
	}
	if err := s.AdvanceTo(120); err != nil {
		t.Fatalf("advance past stale event: %v", err)
	}
}

func TestMaxRetriesMovesJobToFailed(t *testing.T) {
	// Single node: every restart lands on the same node, which we keep
	// killing. With MaxRetries=2 the third eviction fails the job.
	g, err := grug.BuildGraph(grug.Small(1, 1, 4, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, Conservative, WithMaxRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	s.Schedule()
	j1, _ := s.Job(1)
	node := j1.Alloc.Nodes()[0].Path()
	for i := 0; i < 3; i++ {
		if _, err := s.NodeDown(node); err != nil {
			t.Fatal(err)
		}
		if err := s.NodeUp(node); err != nil {
			t.Fatal(err)
		}
		s.Schedule()
	}
	if j1.State != StateFailed || j1.Retries != 3 {
		t.Fatalf("j1 = %v retries=%d", j1.State, j1.Retries)
	}
	// Failed jobs never reschedule.
	if s.Run(0) != 0 {
		t.Fatal("failed job completed")
	}
	m := s.Metrics()
	if m.Failed != 1 || m.Requeues != 3 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestNodeDownReleasesReservation(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(2, 4, 100)) // fills the system
	mustSubmit(t, s, 2, nodeJob(2, 4, 50))  // reserved at t=100
	s.Schedule()
	j2, _ := s.Job(2)
	if j2.State != StateReserved {
		t.Fatalf("j2 = %v", j2.State)
	}
	node := j2.Alloc.Nodes()[0].Path()
	evicted, err := s.NodeDown(node)
	if err != nil {
		t.Fatal(err)
	}
	// Both the running job and the reservation touch the node.
	if len(evicted) != 2 {
		t.Fatalf("evicted = %v", evicted)
	}
	if j2.State != StatePending || j2.Retries != 0 {
		t.Fatalf("j2 = %v retries=%d (reservations cost no retry)", j2.State, j2.Retries)
	}
}

func TestScheduledResourceEventsInterleave(t *testing.T) {
	// j1 runs 0-100 on node A; node B fails at t=10 and repairs at
	// t=30; j2 (submitted at the start) can then run on B from t=30.
	s := newSched(t, Conservative, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(2, 4, 100)) // both nodes 0-100
	mustSubmit(t, s, 2, nodeJob(1, 4, 20))
	s.Schedule()
	j1, _ := s.Job(1)
	nodeB := j1.Alloc.Nodes()[1].Path()

	var hookEvents []string
	s.SetResourceEventHook(func(at int64, path string, down bool) {
		hookEvents = append(hookEvents, fmt.Sprintf("%d:%v:%s", at, down, path))
	})
	if err := s.ScheduleNodeDown(10, nodeB); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleNodeUp(30, nodeB); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleNodeDown(5, nodeB); err == nil {
		_ = err // t=5 is still in the future here; fine
	}
	done := s.Run(0)
	if done != 2 {
		t.Fatalf("completed = %d", done)
	}
	if len(hookEvents) < 2 || !strings.Contains(hookEvents[0], "true") {
		t.Fatalf("hook = %v", hookEvents)
	}
	// j1 was evicted at 10 (lost both nodes' grant on B? no — j1 holds
	// both nodes, so it requeues and restarts once B repairs).
	if j1.Retries != 1 || j1.State != StateCompleted {
		t.Fatalf("j1 = %v retries=%d", j1.State, j1.Retries)
	}
	if s.ScheduleNodeDown(0, nodeB) == nil {
		t.Fatal("past event accepted")
	}
}

func TestSchedulerCheckpointResume(t *testing.T) {
	// Run A: uninterrupted. Run B: checkpoint mid-run, rebuild, resume.
	// Terminal states and times must agree.
	type runResult struct {
		states map[int64]JobState
		ends   map[int64]int64
	}
	terminal := func(s *Scheduler) runResult {
		r := runResult{states: map[int64]JobState{}, ends: map[int64]int64{}}
		for id, j := range s.Jobs() {
			r.states[id] = j.State
			r.ends[id] = j.EndAt
		}
		return r
	}
	specs := map[int64]*jobspec.Jobspec{
		1: nodeJob(2, 4, 100), 2: nodeJob(1, 4, 50), 3: nodeJob(1, 4, 100), 4: nodeJob(2, 4, 30),
	}
	build := func() *Scheduler {
		s := newSched(t, Conservative, 1, 2, 4)
		for id := int64(1); id <= 4; id++ {
			mustSubmit(t, s, id, specs[id])
		}
		s.Schedule()
		return s
	}

	sA := build()
	sA.Run(0)
	want := terminal(sA)

	sB := build()
	if !sB.Step() { // partially drain
		t.Fatal("no events")
	}
	data, err := sB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the resource side the way fluxion.Restore would: fresh
	// graph, reinstall the live allocations, then resume the scheduler.
	g, err := grug.BuildGraph(grug.Small(1, 2, 4, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sB.tr.Jobs() {
		a, _ := sB.tr.Info(id)
		if _, err := tr2.Reinstall(id, a.At, a.Duration, a.Reserved, a.Grants()); err != nil {
			t.Fatal(err)
		}
	}
	sC, err := Resume(tr2, data, specs)
	if err != nil {
		t.Fatal(err)
	}
	if sC.Now() != sB.Now() {
		t.Fatalf("clock: %d vs %d", sC.Now(), sB.Now())
	}
	sC.Run(0)
	got := terminal(sC)
	for id := range want.states {
		if want.states[id] != got.states[id] || want.ends[id] != got.ends[id] {
			t.Fatalf("job %d: want %v@%d got %v@%d", id,
				want.states[id], want.ends[id], got.states[id], got.ends[id])
		}
	}
}

func TestResumeErrors(t *testing.T) {
	s := newSched(t, Conservative, 1, 1, 4)
	if _, err := Resume(s.tr, []byte("junk"), nil); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("junk: %v", err)
	}
	if _, err := Resume(s.tr, []byte(`{"version":9}`), nil); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("version: %v", err)
	}
	// A pending job without a jobspec cannot resume.
	mustSubmit(t, s, 1, nodeJob(1, 4, 10))
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(s.tr, data, nil); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("missing spec: %v", err)
	}
}
