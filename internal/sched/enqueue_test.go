package sched

import "testing"

// queueIDs snapshots the pending queue order.
func queueIDs(s *Scheduler) []int64 {
	out := make([]int64, len(s.pending))
	for i, j := range s.pending {
		out[i] = j.ID
	}
	return out
}

func wantQueue(t *testing.T, s *Scheduler, want ...int64) {
	t.Helper()
	got := queueIDs(s)
	if len(got) != len(want) {
		t.Fatalf("queue = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("queue = %v, want %v", got, want)
		}
	}
}

// TestEnqueueStableFIFOWithinPriority checks that enqueue keeps strict
// submission order among jobs of equal priority while higher priorities
// insert ahead of lower ones (and behind earlier equals).
func TestEnqueueStableFIFOWithinPriority(t *testing.T) {
	s := newSched(t, FCFS, 1, 1, 1)
	submit := func(id int64, prio int) {
		if _, err := s.SubmitPriority(id, nodeJob(1, 1, 10), prio); err != nil {
			t.Fatal(err)
		}
	}
	submit(1, 0)
	submit(2, 0)
	submit(3, 1)
	submit(4, 0)
	submit(5, 1)
	submit(6, 2)
	wantQueue(t, s, 6, 3, 5, 1, 2, 4)
}

// TestEnqueuePriorityWithQueueDepth checks that the queue-depth window
// applies to the priority-ordered queue: a late high-priority submission
// enters the planning window and a low-priority job beyond the depth
// bound is not even match-attempted.
func TestEnqueuePriorityWithQueueDepth(t *testing.T) {
	s := newSchedOpts(t, FCFS, 1, 1, 4,
		WithQueueDepth(1), WithIncremental(false))
	mustSubmit(t, s, 1, nodeJob(1, 4, 50)) // fills the node
	if _, err := s.SubmitPriority(2, nodeJob(1, 4, 50), 0); err != nil {
		t.Fatal(err)
	}
	s.Schedule()
	if _, err := s.SubmitPriority(3, nodeJob(1, 4, 50), 5); err != nil {
		t.Fatal(err)
	}
	wantQueue(t, s, 3, 2)
	before := s.Stats().MatchAttempts
	s.Schedule()
	// Depth 1: only job 3 (the priority head) is attempted; job 2 sits
	// beyond the window without a match.
	if got := s.Stats().MatchAttempts - before; got != 1 {
		t.Fatalf("depth-bounded cycle did %d match attempts, want 1", got)
	}
	s.Run(0)
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j3.StartAt >= j2.StartAt {
		t.Fatalf("priority head started at %d, behind depth-excluded job at %d",
			j3.StartAt, j2.StartAt)
	}
}

// TestEnqueueRequeueAfterFailurePosition checks that a job evicted by a
// node failure re-enters the queue behind already-pending jobs of equal
// priority (it keeps its priority but loses its original position).
func TestEnqueueRequeueAfterFailurePosition(t *testing.T) {
	s := newSched(t, FCFS, 1, 2, 4)
	j1 := mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(1, 4, 100))
	s.Schedule() // both nodes busy
	mustSubmit(t, s, 3, nodeJob(1, 4, 100))
	mustSubmit(t, s, 4, nodeJob(1, 4, 100))
	wantQueue(t, s, 3, 4)
	if _, err := s.NodeDown(j1.Alloc.Nodes()[0].Path()); err != nil {
		t.Fatal(err)
	}
	// Job 1 was evicted and requeued: equal priority, so behind 3 and 4.
	wantQueue(t, s, 3, 4, 1)
	if j1.Retries != 1 || j1.State != StatePending {
		t.Fatalf("evicted job: retries=%d state=%v", j1.Retries, j1.State)
	}
}
