package sched

// This file is the scheduler half of the durability subsystem
// (internal/wal, internal/durable): a typed effect journal. When a
// journal sink is attached, every state-mutating operation emits one
// flat record describing its effect — submit, start, reserve, convert,
// demote, complete, requeue, node down/up, event push/pop, clock moves —
// *before* applying the mutation (write-ahead discipline; the sink
// appends to a WAL). Apply replays a record stream over a scheduler
// restored from the paired checkpoint, reproducing the exact state
// without re-running any matching.
//
// Records group into atomic command units: jBegin/jEnd bracket every
// public entry point, and when the outermost bracket closes with records
// emitted, a RecCommit marks the boundary. WAL recovery discards records
// past the last commit, so a crash always recovers to a driver-step
// boundary — never into the middle of a scheduling cycle or an eviction
// cascade. Multi-call driver steps (submit a batch, then Schedule) wrap
// themselves in Atomic to widen the unit.

import (
	"container/heap"
	"errors"
	"fmt"

	"fluxion/internal/jobspec"
	"fluxion/internal/traverser"
)

// ErrReplay is wrapped by all journal replay failures.
var ErrReplay = errors.New("sched: journal replay failed")

// RecKind discriminates journal records.
type RecKind uint8

// Journal record kinds. The zero value is invalid so a zeroed frame
// cannot masquerade as a real record.
const (
	RecInvalid RecKind = iota
	// RecSubmit records a job submission (ID, At=submit time, Priority,
	// Unsat, Spec). Unsatisfiable submissions are journaled too: the job
	// table includes them.
	RecSubmit
	// RecCycle records one scheduling cycle (the Cycles counter is
	// checkpointed state).
	RecCycle
	// RecStart records a pending job starting: At is the allocation
	// time, Duration its length, Grants the placement to reinstall.
	RecStart
	// RecReserve records a future reservation (same payload as RecStart).
	RecReserve
	// RecConvert records a matured reservation starting in place; the
	// allocation is already installed, only bookkeeping flips.
	RecConvert
	// RecUnreserve records a reservation demoted back to pending (its
	// traverser claim is cancelled; the job keeps its queue position).
	RecUnreserve
	// RecDrop records a reservation evicted by a node failure (the
	// traverser claim is already gone; job-side state resets).
	RecDrop
	// RecComplete records a running job finishing.
	RecComplete
	// RecRequeue records a running job evicted by a node failure and
	// requeued (Retries is the post-eviction count, LostCore the
	// core-seconds charged).
	RecRequeue
	// RecFail is RecRequeue for a job that exhausted its retries.
	RecFail
	// RecDown records marking the subtree at Path down.
	RecDown
	// RecUp records marking the subtree at Path up.
	RecUp
	// RecEvent records pushing a future node event (At, Down, Path).
	RecEvent
	// RecEventPop records dispatching (removing) a node event.
	RecEventPop
	// RecClock records the simulated clock moving to At.
	RecClock
	// RecCommit marks the end of an atomic command unit.
	RecCommit
	// RecQuarantine records a job moved to StateQuarantined by the
	// defense layer (Retries carries the QuarantineReason code, Path the
	// human-readable message), so quarantine survives crash recovery.
	RecQuarantine
	// RecUnquarantine records a quarantined job released back to the
	// pending queue.
	RecUnquarantine
	// RecWithdraw records a job removed from the scheduler entirely
	// (sharded work stealing, or an explicit cancel of a queued job);
	// any traverser claim is released.
	RecWithdraw
)

func (k RecKind) String() string {
	switch k {
	case RecSubmit:
		return "submit"
	case RecCycle:
		return "cycle"
	case RecStart:
		return "start"
	case RecReserve:
		return "reserve"
	case RecConvert:
		return "convert"
	case RecUnreserve:
		return "unreserve"
	case RecDrop:
		return "drop"
	case RecComplete:
		return "complete"
	case RecRequeue:
		return "requeue"
	case RecFail:
		return "fail"
	case RecDown:
		return "down"
	case RecUp:
		return "up"
	case RecEvent:
		return "event"
	case RecEventPop:
		return "event-pop"
	case RecClock:
		return "clock"
	case RecCommit:
		return "commit"
	case RecQuarantine:
		return "quarantine"
	case RecUnquarantine:
		return "unquarantine"
	case RecWithdraw:
		return "withdraw"
	default:
		return "invalid"
	}
}

// Rec is one journal record: a flat union across kinds (unused fields
// are zero). The pointer handed to the journal sink is reused between
// emissions — sinks must serialize synchronously and not retain it (or
// its Grants slice / Spec pointer) past the call.
type Rec struct {
	Kind     RecKind
	ID       int64 // job ID
	At       int64 // submit time / alloc time / event time / clock
	Duration int64 // allocation duration
	Priority int
	Unsat    bool // RecSubmit: rejected as unsatisfiable
	Down     bool // RecEvent / RecEventPop: node-down vs node-up
	Path     string
	Retries  int   // RecRequeue / RecFail: post-eviction retry count
	LostCore int64 // RecRequeue / RecFail: lost core-seconds charged
	Grants   []traverser.Grant
	Spec     *jobspec.Jobspec // RecSubmit
}

// SetJournal attaches fn as the scheduler's journal sink (nil detaches).
// fn is called synchronously from every mutating operation with a reused
// *Rec; it must not retain the pointer. While a sink is attached the
// scheduler allocates grant slices on start/reserve paths; detached, the
// hot loop stays allocation-free.
func (s *Scheduler) SetJournal(fn func(*Rec)) { s.journal = fn }

// Atomic runs fn as one journal command unit: records emitted inside it
// commit together, so crash recovery lands either before or after the
// whole of fn, never inside. Drivers wrap multi-call steps (arrival
// batch + Schedule, fault-timeline seeding) in Atomic.
func (s *Scheduler) Atomic(fn func()) {
	s.jBegin()
	defer s.jEnd()
	fn()
}

// ForceFullWake voids all incremental-engine skip state so the next
// cycle re-attempts every pending job. Recovery calls it after replay:
// blocking signatures are transient and died with the process.
func (s *Scheduler) ForceFullWake() { s.wakeup.forceFullWake() }

// InCommand reports whether a journal command unit is open: a mutation
// observed while false happened outside any journaled operation and will
// not be reproduced by replay (the durability layer snapshots instead).
func (s *Scheduler) InCommand() bool { return s.jDepth > 0 }

// jBegin opens (or nests into) a journal command unit.
func (s *Scheduler) jBegin() { s.jDepth++ }

// jEnd closes a command unit; the outermost close emits RecCommit if
// any record was emitted inside.
func (s *Scheduler) jEnd() {
	s.jDepth--
	if s.jDepth == 0 && s.jDirty {
		s.jDirty = false
		if s.journal != nil {
			s.jbuf = Rec{Kind: RecCommit}
			s.journal(&s.jbuf)
		}
	}
}

// jrec emits one record through the reused buffer. Callers guard with
// `s.journal != nil` when building the record costs anything (grants).
func (s *Scheduler) jrec(r Rec) {
	if s.journal == nil {
		return
	}
	s.jbuf = r
	s.jDirty = true
	s.journal(&s.jbuf)
}

// unqueue removes job from the pending queue, preserving order.
func (s *Scheduler) unqueue(job *Job) {
	for i, j := range s.pending {
		if j == job {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// Apply replays one journal record's effect. The scheduler must have
// been restored from the checkpoint the journal was written against
// (same clock, jobs, queue, and installed allocations); records are
// applied in LSN order. No matching runs during replay — records carry
// their placements — so replay cost is O(records), not O(match).
func (s *Scheduler) Apply(r *Rec) error {
	switch r.Kind {
	case RecSubmit:
		if _, dup := s.jobs[r.ID]; dup {
			return fmt.Errorf("%w: submit of existing job %d", ErrReplay, r.ID)
		}
		if r.Spec == nil {
			return fmt.Errorf("%w: submit of job %d without jobspec", ErrReplay, r.ID)
		}
		job := &Job{ID: r.ID, Spec: r.Spec, Submit: r.At, Priority: r.Priority, State: StatePending}
		if r.Unsat {
			job.State = StateUnsatisfiable
			s.jobs[r.ID] = job
			return nil
		}
		s.jobs[r.ID] = job
		s.enqueue(job)
	case RecCycle:
		s.Cycles++
		s.stats.Cycles++
	case RecClock:
		if r.At < s.now {
			return fmt.Errorf("%w: clock moving backwards (%d -> %d)", ErrReplay, s.now, r.At)
		}
		s.now = r.At
	case RecStart:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		alloc, err := s.tr.Reinstall(r.ID, r.At, r.Duration, false, r.Grants)
		if err != nil {
			return fmt.Errorf("%w: reinstall start of job %d: %v", ErrReplay, r.ID, err)
		}
		s.unqueue(job)
		s.start(job, alloc)
	case RecReserve:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		alloc, err := s.tr.Reinstall(r.ID, r.At, r.Duration, true, r.Grants)
		if err != nil {
			return fmt.Errorf("%w: reinstall reservation of job %d: %v", ErrReplay, r.ID, err)
		}
		s.reserve(job, alloc)
	case RecConvert:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		if job.State != StateReserved || job.Alloc == nil {
			return fmt.Errorf("%w: convert of job %d in state %s", ErrReplay, r.ID, job.State)
		}
		s.unqueue(job)
		s.convert(job)
	case RecUnreserve:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		s.demote(job)
	case RecDrop:
		// A reservation evicted by MarkDown: the traverser claim is
		// already gone, reset only the job side.
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		delete(s.reserved, job.ID)
		job.State = StatePending
		job.Alloc = nil
		job.sigOK = false
	case RecComplete:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		s.complete(job.ID)
	case RecRequeue, RecFail:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		s.requeues++
		s.lostCoreSec += r.LostCore
		job.Retries = r.Retries
		job.Alloc = nil
		job.sigOK = false
		if r.Kind == RecFail {
			job.State = StateFailed
			return nil
		}
		job.State = StatePending
		s.enqueue(job)
	case RecDown:
		// Evicted jobs are handled by the explicit RecRequeue/RecFail/
		// RecDrop records that follow; the mark itself reproduces the
		// graph-status and traverser-side effects.
		if _, err := s.tr.MarkDown(r.Path); err != nil {
			return fmt.Errorf("%w: mark down %q: %v", ErrReplay, r.Path, err)
		}
	case RecUp:
		if err := s.tr.MarkUp(r.Path); err != nil {
			return fmt.Errorf("%w: mark up %q: %v", ErrReplay, r.Path, err)
		}
	case RecEvent:
		heap.Push(&s.events, event{at: r.At, kind: eventKindOf(r.Down), path: r.Path})
	case RecEventPop:
		kind := eventKindOf(r.Down)
		for i := range s.events {
			e := s.events[i]
			if e.at == r.At && e.kind == kind && e.path == r.Path {
				heap.Remove(&s.events, i)
				return nil
			}
		}
		return fmt.Errorf("%w: no %s event at %d for %q to pop", ErrReplay, kind, r.At, r.Path)
	case RecQuarantine:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		if job.State == StateReserved {
			// Defensive: the live path demotes (journaling RecUnreserve)
			// before quarantining, so a reserved job here means a
			// hand-built log; demote to release the traverser claim.
			s.demote(job)
		}
		s.unqueue(job)
		s.quarantine(job, QuarantineReason(r.Retries), r.Path)
	case RecUnquarantine:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		if job.State != StateQuarantined {
			return fmt.Errorf("%w: unquarantine of job %d in state %s", ErrReplay, r.ID, job.State)
		}
		s.release(job)
	case RecWithdraw:
		job, err := s.replayJob(r)
		if err != nil {
			return err
		}
		if job.Alloc != nil || job.State == StateRunning || job.State == StateReserved {
			_ = s.tr.Cancel(r.ID)
		}
		s.unqueue(job)
		delete(s.reserved, r.ID)
		delete(s.jobs, r.ID)
	case RecCommit:
		// Command boundary; no state change.
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrReplay, r.Kind)
	}
	return nil
}

// replayJob resolves a record's job, which must already exist.
func (s *Scheduler) replayJob(r *Rec) (*Job, error) {
	job := s.jobs[r.ID]
	if job == nil {
		return nil, fmt.Errorf("%w: %s record for unknown job %d", ErrReplay, r.Kind, r.ID)
	}
	return job, nil
}

func eventKindOf(down bool) eventKind {
	if down {
		return evNodeDown
	}
	return evNodeUp
}
