package sched

import (
	"fmt"
	"time"

	"fluxion/internal/traverser"
)

// This file implements the event-driven incremental scheduling engine.
// The full-requeue loop (scheduleSequential / scheduleParallel with
// WithIncremental(false)) re-plans the whole pending queue every cycle:
// O(pending × match). The incremental engine keeps the same decisions —
// which jobs start, when, and in what state — while doing only O(woken ×
// match) work in steady state:
//
//   - a blocked job carries the blocking signature of its last failed
//     attempt (traverser.BlockSig); it is re-attempted only when the
//     cycle's drained deltas intersect the signature (wakeup.go), when
//     its root-aggregate hint matures, or when the environment changed
//     in a way signatures cannot track (structural events, demotions);
//   - standing EASY/conservative reservations are carried across cycles
//     instead of being cancelled and re-planned; a reservation is
//     dropped only when a delta touches its claim window, its queue
//     position's policy branch changes, or any demotion happened ahead
//     of it in the cycle;
//   - a reservation whose start time matures (Alloc.At == now) converts
//     to running in place, with no match at all.
//
// Decision parity with the full loop rests on a replay argument: an
// incremental cycle is a resume of the full loop's deterministic walk.
// A job's outcome at its queue position depends only on the running
// allocations and the decisions of jobs ahead of it (reservations behind
// it are cancelled upfront by the full loop and never exist at its
// replay position). Skips are sound because the environment at a skipped
// job's position is never better than when its signature was captured:
// attempts only claim capacity, kept reservations re-create the full
// loop's own re-plan, and everything that can add capacity — frees,
// structural changes, demotions — either wakes the job or clears its
// signature. Before the first real match of a cycle, every reservation
// behind that queue position is demoted (dropSuffix) so the attempt sees
// exactly the full loop's environment; demotions in turn clear the
// signatures of every job behind them, since their muted cancel frees
// capacity signatures cannot see.

// dirKind is the per-job action a cycle's classification pass decides.
type dirKind uint8

const (
	// dirDepth keeps a job pending past the queue-depth bound, unmatched.
	dirDepth dirKind = iota
	// dirFail synthesizes the FCFS behind-blocked-head failure (the full
	// loop does not match these either).
	dirFail
	// dirSkip keeps a blocked job pending without matching: its
	// signature proves the full loop's attempt would fail.
	dirSkip
	// dirSkipIfBlocked resolves at process time: behind a blocked head
	// the signature justifies skipping, at the head the job must attempt
	// (its signature does not cover the reservation probe).
	dirSkipIfBlocked
	// dirKeep carries a standing reservation across the cycle.
	dirKeep
	// dirConvert starts a matured reservation (Alloc.At == now) in place.
	dirConvert
	// dirAttempt re-matches the job under the policy branch.
	dirAttempt
)

// directive is one classified queue entry, in queue order.
type directive struct {
	job  *Job
	kind dirKind
	// specIdx indexes the cycle's attempt list for parallel speculation;
	// -1 when the job is resolved without a speculative match.
	specIdx int32
}

// blockState is the classification pass's three-valued view of the full
// loop's `blocked` flag: attempts have unknown outcomes until process
// time, so the flag may be provably false, provably true, or unknown.
type blockState uint8

const (
	bNo blockState = iota
	bYes
	bUnknown
)

// scheduleIncremental runs one incremental cycle. The wakeup index has
// been drained into s.plan and the delta sink is muted for the duration.
func (s *Scheduler) scheduleIncremental() {
	now := s.now
	horizonEnd := s.tr.Graph().Base() + s.tr.Graph().Horizon()

	// Wake pre-pass: apply the cycle's deltas to every blocked job's
	// signature exactly once (wakes decrements shortfalls in place), and
	// test every standing reservation for invalidation. A job whose
	// attempt window would be horizon-clamped is never skipped or kept:
	// its effective duration shrinks as the clock advances, which the
	// signature's fixed window cannot model.
	for _, job := range s.pending {
		job.woken = false
		job.invalidated = false
		clamped := job.Spec == nil || job.Spec.Duration <= 0 ||
			now+job.Spec.Duration > horizonEnd
		switch job.State {
		case StatePending:
			if job.sigOK {
				if clamped {
					job.sigOK = false
				} else if s.plan.wakes(&job.sig, now) {
					// A spent signature no longer certifies failure;
					// the job attempts every cycle until re-captured.
					job.woken = true
					job.sigOK = false
				}
			}
		case StateReserved:
			job.invalidated = clamped || s.plan.invalidates(job, now)
		}
	}

	// Classification pass: walk the queue in order and decide each job's
	// directive, tracking the provable blocked state and demoting
	// reservations the full loop would not have re-created.
	resAhead := 0
	for _, job := range s.pending {
		if job.State == StateReserved {
			resAhead++
		}
	}

	dirs := s.directives[:0]
	var attempts []*Job
	blockedSt := bNo
	wakeAll := false // a demotion happened: signatures behind it are void
	planned := 0

	for i, job := range s.pending {
		switch job.State {
		case StatePending, StateReserved:
		default:
			continue // dropped from the queue, as in the full loop
		}

		if s.queueDepth > 0 && planned >= s.queueDepth {
			if job.State == StateReserved {
				// The full loop would not re-create a reservation past
				// the depth bound.
				resAhead--
				s.demote(job)
				wakeAll = true
			}
			if wakeAll {
				job.sigOK = false
			}
			dirs = append(dirs, directive{job: job, kind: dirDepth, specIdx: -1})
			continue
		}
		planned++

		if job.State == StateReserved {
			resAhead--
			branchOK := s.policy == Conservative || (s.policy == EASY && blockedSt == bNo)
			switch {
			case branchOK && job.Alloc != nil && job.Alloc.At == now:
				// Matured: the full loop's re-match at this position
				// succeeds at `now` (the reservation's own claims prove
				// feasibility), so start it without matching.
				dirs = append(dirs, directive{job: job, kind: dirConvert, specIdx: -1})
				continue
			case branchOK && !wakeAll && !job.invalidated &&
				job.Alloc != nil && job.Alloc.At > now:
				dirs = append(dirs, directive{job: job, kind: dirKeep, specIdx: -1})
				blockedSt = bYes
				continue
			default:
				s.demote(job)
				wakeAll = true
				// Re-classify as pending below.
			}
		}

		if blockedSt == bYes && (s.policy == FCFS || s.shedBackfill()) {
			// Behind a provably blocked head nothing matches under FCFS;
			// the shed-backfill ladder rung extends the same fail-fast to
			// EASY/conservative backfill probes.
			if wakeAll {
				job.sigOK = false
			}
			dirs = append(dirs, directive{job: job, kind: dirFail, specIdx: -1})
			continue
		}
		if wakeAll {
			job.sigOK = false
		}

		if job.sigOK {
			skip := false
			switch {
			case s.policy == FCFS:
				// Both FCFS branches fail under a valid signature
				// (behind a blocked head nothing matches; at the head
				// the signature certifies the immediate match fails).
				skip = true
				blockedSt = bYes
			case s.policy == EASY && blockedSt == bYes:
				skip = true // backfill branch: immediate match fails
			case job.sigReserve:
				// Conservative, or EASY at/possibly-at the head: the
				// signature covers the reservation probe too.
				skip = true
				blockedSt = bYes
			case s.policy == EASY && blockedSt == bUnknown:
				// Skippable behind a blocked head, must attempt at the
				// head; resolved when the process pass knows.
				dirs = append(dirs, directive{job: job, kind: dirSkipIfBlocked, specIdx: -1})
				continue
			}
			if skip {
				dirs = append(dirs, directive{job: job, kind: dirSkip, specIdx: -1})
				continue
			}
		}

		if bound := s.attemptBound(); bound > 0 && len(attempts) >= bound {
			// Degraded bounded wake: the cycle's attempt budget is
			// spent. Keep the job pending untouched — valid reservations
			// ahead stay installed, so shedding causes no demotion churn.
			dirs = append(dirs, directive{job: job, kind: dirDepth, specIdx: -1})
			continue
		}

		// Attempt. The full loop's match at this position runs with no
		// reservation behind it in the planners; demote any that stand.
		if resAhead > 0 {
			s.dropSuffix(i)
			resAhead = 0
			wakeAll = true
		}
		dirs = append(dirs, directive{job: job, kind: dirAttempt, specIdx: int32(len(attempts))})
		attempts = append(attempts, job)
		if !(s.policy == EASY && blockedSt == bYes) {
			blockedSt = bUnknown
		}
	}
	s.directives = dirs

	// Process pass: execute the directives in queue order with the real
	// blocked flag, exactly mirroring the full loop's outcome handling.
	blocked := false
	still := s.pending[:0]
	workers := s.cycleWorkers() // sequential ladder rung forces 1
	parallel := workers > 1
	var specs []*traverser.Allocation
	specDone := 0

	for _, d := range dirs {
		job := d.job
		var spec *traverser.Allocation
		switch d.kind {
		case dirDepth:
			still = append(still, job)
			continue
		case dirFail:
			blocked = true
			still = append(still, job)
			continue
		case dirSkip, dirKeep:
			blocked = true
			still = append(still, job)
			s.stats.SkippedJobs++
			continue
		case dirConvert:
			s.convert(job)
			continue
		case dirSkipIfBlocked:
			if blocked {
				still = append(still, job)
				s.stats.SkippedJobs++
				continue
			}
			// Head position: attempt sequentially (no speculation).
		case dirAttempt:
			if parallel && int(d.specIdx) >= specDone && !(s.policy == FCFS && blocked) {
				end := specDone + workers
				if end > len(attempts) {
					end = len(attempts)
				}
				specs = append(specs, s.speculateBatch(attempts[specDone:end])...)
				specDone = end
			}
			if int(d.specIdx) >= 0 && int(d.specIdx) < len(specs) {
				spec = specs[d.specIdx]
			}
		}

		if job.woken {
			s.stats.WokenJobs++
		}
		start := time.Now()
		alloc, err := s.resolveAttempt(job, spec, blocked)
		job.MatchDuration += time.Since(start)
		switch {
		case job.poisoned:
			// Quarantine without touching `blocked`: jobs behind see the
			// schedule of a run where this job never existed.
			s.quarantinePoisoned(job)
		case err != nil:
			blocked = true
			still = append(still, job)
		case alloc.Reserved:
			s.reserve(job, alloc)
			blocked = true
			still = append(still, job)
		default:
			s.start(job, alloc)
		}
	}
	s.pending = still
}

// resolveAttempt turns one attempt directive into an allocation under the
// policy branch for its position, committing a speculation when one is
// available (parallel pipeline) and capturing a fresh blocking signature
// on failure.
func (s *Scheduler) resolveAttempt(job *Job, spec *traverser.Allocation, blocked bool) (*traverser.Allocation, error) {
	if job.poisoned {
		// The speculation worker's fence caught a panic for this job;
		// release its claims and let the cycle loop quarantine it.
		if spec != nil {
			s.tr.Abandon(spec)
		}
		return nil, fmt.Errorf("%w: job %d: %s", ErrPoisoned, job.ID, job.QuarantineMsg)
	}
	if spec != nil {
		if s.policy == FCFS && blocked {
			s.tr.Abandon(spec)
			spec = nil
		} else if err := s.tr.Commit(spec); err == nil {
			job.sigOK = false
			job.conflicts = 0
			return spec, nil
		} else if s.noteConflict(job) {
			// Conflict budget exhausted: quarantine at this position.
			return nil, fmt.Errorf("%w: job %d: %s", ErrPoisoned, job.ID, job.QuarantineMsg)
		}
		// Conflict: an earlier commit took the capacity; fall through to
		// a fresh match at this queue position.
	}
	switch {
	case s.policy == FCFS:
		if blocked {
			// The signature (if any) survives: nothing matched, so it
			// still certifies the last real attempt's failure.
			return nil, traverser.ErrNoMatch
		}
		return s.matchAllocateSig(job, s.now)
	case blocked && s.shedBackfill():
		// Degraded: shed the backfill probe behind the blocked head.
		return nil, traverser.ErrNoMatch
	case s.policy == EASY && blocked:
		return s.matchAllocateSig(job, s.now)
	default: // Conservative always; EASY head
		return s.matchAllocateOrReserveSig(job, s.now)
	}
}

// convert starts a matured reservation in place: its planner spans are
// already exactly a running allocation's, so only the bookkeeping flips.
func (s *Scheduler) convert(job *Job) {
	delete(s.reserved, job.ID)
	job.Alloc.Reserved = false
	job.sigOK = false
	s.start(job, job.Alloc)
}

// demote cancels a standing reservation back to pending (the full loop
// does this for every reservation at the top of each cycle). The cancel's
// frees are muted: within the cycle the queue walk itself accounts for
// them, and signatures behind the demotion point are cleared by wakeAll.
func (s *Scheduler) demote(job *Job) {
	s.jrec(Rec{Kind: RecUnreserve, ID: job.ID})
	_ = s.tr.Cancel(job.ID)
	delete(s.reserved, job.ID)
	job.State = StatePending
	job.Alloc = nil
	job.sigOK = false
}

// dropSuffix demotes every standing reservation behind queue position i.
func (s *Scheduler) dropSuffix(i int) {
	for _, job := range s.pending[i+1:] {
		if job.State == StateReserved {
			s.demote(job)
		}
	}
}
