package sched

import (
	"fmt"
	"strings"
	"time"
)

// Metrics summarizes a scheduler run.
type Metrics struct {
	Completed     int
	Unsatisfiable int
	// Makespan is the simulated time between the earliest submit and
	// the last completion.
	Makespan int64
	// MeanWait is the mean simulated queue wait (start - submit) over
	// completed jobs.
	MeanWait float64
	// MaxWait is the maximum simulated wait.
	MaxWait int64
	// TotalMatch is the accumulated wall-clock matcher time.
	TotalMatch time.Duration
	// NodeSecondsUsed / NodeSecondsTotal approximate utilization for
	// whole-node workloads: granted node-seconds over capacity
	// node-seconds across the makespan.
	NodeSecondsUsed  int64
	NodeSecondsTotal int64
	// Requeues counts failure-driven evictions of running jobs that sent
	// the job back to the pending queue (or to StateFailed).
	Requeues int
	// LostCoreSeconds is the core-time evicted jobs had already consumed
	// and must redo — the direct cost of resource failures.
	LostCoreSeconds int64
	// Failed counts jobs that exhausted their failure-requeue budget.
	Failed int
	// Quarantined counts jobs currently in StateQuarantined (poisoned
	// work the defense layer set aside; see defense.go).
	Quarantined int
}

// Utilization returns NodeSecondsUsed / NodeSecondsTotal (0 when no
// capacity elapsed).
func (m Metrics) Utilization() float64 {
	if m.NodeSecondsTotal == 0 {
		return 0
	}
	return float64(m.NodeSecondsUsed) / float64(m.NodeSecondsTotal)
}

// String renders a one-line summary.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%d makespan=%ds meanWait=%.1fs maxWait=%ds match=%v",
		m.Completed, m.Makespan, m.MeanWait, m.MaxWait, m.TotalMatch.Round(time.Millisecond))
	if m.NodeSecondsTotal > 0 {
		fmt.Fprintf(&b, " util=%.1f%%", 100*m.Utilization())
	}
	if m.Unsatisfiable > 0 {
		fmt.Fprintf(&b, " unsatisfiable=%d", m.Unsatisfiable)
	}
	if m.Requeues > 0 || m.LostCoreSeconds > 0 {
		fmt.Fprintf(&b, " requeues=%d lostCoreSec=%d", m.Requeues, m.LostCoreSeconds)
	}
	if m.Failed > 0 {
		fmt.Fprintf(&b, " failed=%d", m.Failed)
	}
	if m.Quarantined > 0 {
		fmt.Fprintf(&b, " quarantined=%d", m.Quarantined)
	}
	return b.String()
}

// Metrics computes run statistics from the scheduler's current state.
// Call it after Run (or after draining manually).
func (s *Scheduler) Metrics() Metrics {
	var m Metrics
	var firstSubmit, lastEnd int64 = 1 << 62, 0
	var waits int64
	nodeCapacity := int64(0)
	if root := s.tr.Graph().Root("containment"); root != nil {
		nodeCapacity = root.Aggregates()["node"]
	}
	m.Requeues = s.requeues
	m.LostCoreSeconds = s.lostCoreSec
	for _, j := range s.jobs {
		m.TotalMatch += j.MatchDuration
		switch j.State {
		case StateFailed:
			m.Failed++
			continue
		case StateQuarantined:
			m.Quarantined++
			continue
		case StateUnsatisfiable:
			m.Unsatisfiable++
			continue
		case StateCompleted:
			m.Completed++
		default:
			continue
		}
		if j.Submit < firstSubmit {
			firstSubmit = j.Submit
		}
		if j.EndAt > lastEnd {
			lastEnd = j.EndAt
		}
		wait := j.StartAt - j.Submit
		waits += wait
		if wait > m.MaxWait {
			m.MaxWait = wait
		}
		if j.Alloc != nil {
			m.NodeSecondsUsed += int64(len(j.Alloc.Nodes())) * (j.EndAt - j.StartAt)
		}
	}
	if m.Completed > 0 {
		m.Makespan = lastEnd - firstSubmit
		m.MeanWait = float64(waits) / float64(m.Completed)
		m.NodeSecondsTotal = nodeCapacity * m.Makespan
	}
	return m
}
