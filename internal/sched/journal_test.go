package sched

import (
	"bytes"
	"fmt"
	"testing"

	"fluxion/internal/traverser"
)

// journalTrace captures a live run's record stream plus a reference
// checkpoint at every commit boundary, for replay-parity assertions.
type journalTrace struct {
	recs    []Rec
	commits []int      // record count at each commit (inclusive)
	refs    [][]byte   // scheduler checkpoint at each commit
	s       *Scheduler // the live scheduler being traced
	t       *testing.T
}

func (tr *journalTrace) sink(r *Rec) {
	c := *r
	if r.Grants != nil {
		c.Grants = append([]traverser.Grant(nil), r.Grants...)
	}
	tr.recs = append(tr.recs, c)
	if r.Kind == RecCommit {
		cp, err := tr.s.Checkpoint()
		if err != nil {
			tr.t.Fatalf("checkpoint at commit: %v", err)
		}
		tr.commits = append(tr.commits, len(tr.recs))
		tr.refs = append(tr.refs, cp)
	}
}

// journalSched builds the fixed 2-node/4-core fixture every journal
// test drives (helper shared with incremental_test.go).
func journalSched(t testing.TB, policy QueuePolicy, opts ...SchedOption) *Scheduler {
	t.Helper()
	return newSchedOpts(t, policy, 1, 2, 4, opts...)
}

// driveJournalWorkload exercises every record kind: satisfiable and
// unsatisfiable submits with priorities, scheduling cycles (starts,
// reservations, converts, demotions), a node failure evicting a running
// job and dropping a reservation, the repair, and clock movement.
func driveJournalWorkload(t testing.TB, s *Scheduler) {
	t.Helper()
	s.Atomic(func() {
		mustSubmit(t, s, 1, nodeJob(2, 4, 100))
		mustSubmit(t, s, 2, nodeJob(1, 4, 50))
		mustSubmit(t, s, 3, nodeJob(1, 4, 100))
		mustSubmit(t, s, 4, nodeJob(100, 4, 10)) // unsatisfiable
		if _, err := s.SubmitPriority(5, nodeJob(1, 4, 20), 7); err != nil {
			t.Fatal(err)
		}
		s.Schedule()
	})
	if err := s.ScheduleNodeDown(30, "/cluster0/rack0/node0"); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleNodeUp(60, "/cluster0/rack0/node0"); err != nil {
		t.Fatal(err)
	}
	s.Atomic(func() {
		if err := s.AdvanceTo(10); err != nil {
			t.Fatal(err)
		}
		mustSubmit(t, s, 6, nodeJob(1, 4, 40))
		s.Schedule()
	})
	for s.Step() {
	}
}

// TestJournalReplayParity drives a failure-laden workload with the
// journal attached and replays the record stream into a fresh scheduler,
// asserting byte-identical checkpoints at EVERY commit boundary — the
// journal leg of the WAL crash-recovery invariant.
func TestJournalReplayParity(t *testing.T) {
	cases := []struct {
		name   string
		policy QueuePolicy
		opts   []SchedOption
	}{
		{"fcfs", FCFS, nil},
		{"easy", EASY, nil},
		{"conservative", Conservative, nil},
		{"conservative-full-requeue", Conservative, []SchedOption{WithIncremental(false)}},
		{"conservative-parallel", Conservative, []SchedOption{WithMatchWorkers(4)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live := journalSched(t, tc.policy, tc.opts...)
			trace := &journalTrace{s: live, t: t}
			live.SetJournal(trace.sink)
			driveJournalWorkload(t, live)
			if len(trace.commits) == 0 {
				t.Fatal("no commits recorded")
			}

			for bi, n := range trace.commits {
				replay := journalSched(t, tc.policy, tc.opts...)
				for i := 0; i < n; i++ {
					if err := replay.Apply(&trace.recs[i]); err != nil {
						t.Fatalf("boundary %d: apply record %d (%s): %v",
							bi, i, trace.recs[i].Kind, err)
					}
				}
				got, err := replay.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, trace.refs[bi]) {
					t.Fatalf("boundary %d (after %d records): checkpoint mismatch\nlive:\n%s\nreplay:\n%s",
						bi, n, trace.refs[bi], got)
				}
			}

			// At the terminal boundary, the traverser sides agree too.
			replay := journalSched(t, tc.policy, tc.opts...)
			for i := range trace.recs {
				if err := replay.Apply(&trace.recs[i]); err != nil {
					t.Fatal(err)
				}
			}
			liveJobs, replayJobs := live.tr.Jobs(), replay.tr.Jobs()
			if fmt.Sprint(liveJobs) != fmt.Sprint(replayJobs) {
				t.Fatalf("traverser jobs: live %v replay %v", liveJobs, replayJobs)
			}
			for _, id := range liveJobs {
				la, _ := live.tr.Info(id)
				ra, _ := replay.tr.Info(id)
				if la.At != ra.At || la.Duration != ra.Duration || la.Reserved != ra.Reserved ||
					fmt.Sprint(la.Grants()) != fmt.Sprint(ra.Grants()) {
					t.Fatalf("job %d allocation diverged: live %+v replay %+v", id, la, ra)
				}
			}
		})
	}
}

// TestJournalReplayThenLive replays a journal prefix and then continues
// scheduling live: post-recovery decisions must match the uncrashed run.
func TestJournalReplayThenLive(t *testing.T) {
	for _, policy := range []QueuePolicy{FCFS, EASY, Conservative} {
		t.Run(string(policy), func(t *testing.T) {
			live := journalSched(t, policy)
			trace := &journalTrace{s: live, t: t}
			live.SetJournal(trace.sink)
			driveJournalWorkload(t, live)
			want, err := live.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			// Cut at the commit closest to halfway through the stream.
			cut := trace.commits[len(trace.commits)/2]
			replay := journalSched(t, policy)
			for i := 0; i < cut; i++ {
				if err := replay.Apply(&trace.recs[i]); err != nil {
					t.Fatal(err)
				}
			}
			replay.ForceFullWake()
			for replay.Step() {
			}
			got, err := replay.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("post-replay live run diverged\nwant:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

// TestJournalCommitBoundaries asserts the bracketing discipline: every
// stream ends each command with a commit, Atomic widens units, and no
// records leak outside brackets.
func TestJournalCommitBoundaries(t *testing.T) {
	s := journalSched(t, Conservative)
	var recs []Rec
	s.SetJournal(func(r *Rec) { recs = append(recs, *r) })

	s.Atomic(func() {
		mustSubmit(t, s, 1, nodeJob(1, 4, 10))
		mustSubmit(t, s, 2, nodeJob(1, 4, 10))
		s.Schedule()
	})
	commits := 0
	for _, r := range recs {
		if r.Kind == RecCommit {
			commits++
		}
	}
	if commits != 1 {
		t.Fatalf("atomic batch emitted %d commits, want 1", commits)
	}
	if recs[len(recs)-1].Kind != RecCommit {
		t.Fatalf("stream does not end with commit: %v", recs[len(recs)-1].Kind)
	}

	// A lone submit is its own unit.
	n := len(recs)
	mustSubmit(t, s, 3, nodeJob(1, 4, 10))
	tail := recs[n:]
	if len(tail) != 2 || tail[0].Kind != RecSubmit || tail[1].Kind != RecCommit {
		t.Fatalf("lone submit stream = %v", tail)
	}
}

// TestEventHeapResume is the pending-event round-trip: node down/up
// events scheduled for the future must survive checkpoint→resume and
// fire in the same deterministic order (time, then completions before
// repairs before failures).
func TestEventHeapResume(t *testing.T) {
	s := journalSched(t, Conservative)
	// Same-instant pair at t=60 checks intra-instant ordering (up
	// before down), around events at 50 and 70.
	for _, ev := range []struct {
		at   int64
		path string
		down bool
	}{
		{50, "/cluster0/rack0/node0", true},
		{60, "/cluster0/rack0/node1", true},
		{60, "/cluster0/rack0/node0", false},
		{70, "/cluster0/rack0/node1", false},
	} {
		var err error
		if ev.down {
			err = s.ScheduleNodeDown(ev.at, ev.path)
		} else {
			err = s.ScheduleNodeUp(ev.at, ev.path)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	r := journalSched(t, Conservative)
	resumed, err := Resume(r.tr, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed checkpoint is byte-identical: the heap round-tripped.
	data2, err := resumed.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("checkpoint not stable across resume\nbefore:\n%s\nafter:\n%s", data, data2)
	}

	type firing struct {
		at   int64
		path string
		down bool
	}
	var fired []firing
	resumed.SetResourceEventHook(func(at int64, path string, down bool) {
		fired = append(fired, firing{at, path, down})
	})
	for resumed.Step() {
	}
	want := []firing{
		{50, "/cluster0/rack0/node0", true},
		{60, "/cluster0/rack0/node0", false}, // up sorts before down at the same instant
		{60, "/cluster0/rack0/node1", true},
		{70, "/cluster0/rack0/node1", false},
	}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("events fired out of order after resume:\n got %v\nwant %v", fired, want)
	}
	if resumed.Now() != 70 {
		t.Fatalf("clock after drain = %d, want 70", resumed.Now())
	}
}
