package sched

import (
	"fmt"
	"sync"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// BenchmarkParallelMatch measures speculative match throughput against a
// pinned MVCC epoch at several worker counts. Every worker matches
// lock-free against the same immutable snapshot — no graph reader lock,
// no per-vertex claim atomics — so throughput should scale near-linearly
// with workers up to the core count. CI's parallel-scaling gate runs the
// w1/w8 pair and fails the build if 8 workers deliver less than 2x the
// single-worker throughput (ns/op at w8 must be under half of w1).
//
// b.N counts total matches across all workers, so ns/op is wall time per
// match: perfect scaling halves it per worker doubling.
func BenchmarkParallelMatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			g, err := grug.BuildGraph(grug.Small(4, 16, 16, 0, 0), 0, 1<<40,
				resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := traverser.New(g, match.First{})
			if err != nil {
				b.Fatal(err)
			}
			tr.EnableSteering()
			cjs, err := tr.Compile(nodeJob(2, 8, 100))
			if err != nil {
				b.Fatal(err)
			}
			ep := tr.PinEpoch()
			if ep == nil {
				b.Fatal("no epoch pinned")
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				n := b.N / workers
				if w == 0 {
					n += b.N % workers
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					base := int64(w) << 32
					for i := 0; i < n; i++ {
						alloc, err := tr.MatchSpeculateCompiledEpoch(base+int64(i)+1, cjs, 0, ep)
						if err != nil {
							b.Errorf("worker %d: %v", w, err)
							return
						}
						tr.Abandon(alloc)
					}
				}(w, n)
			}
			wg.Wait()
		})
	}
}
