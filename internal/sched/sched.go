// Package sched implements the queuing layer above the Fluxion traverser:
// a discrete-event simulated clock and three queue policies — pure FCFS,
// EASY backfilling, and conservative backfilling (the paper's evaluation
// policy, §6.2/§6.3).
//
// The scheduler drives Fluxion exactly the way flux-sched's qmanager does:
// each scheduling cycle drops all standing reservations and re-plans the
// pending queue front to back with MatchAllocateOrReserve, so reservations
// always reflect the current resource-time state (paper §3.4).
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"fluxion/internal/jobspec"
	"fluxion/internal/traverser"
)

// QueuePolicy selects how the pending queue is planned.
type QueuePolicy string

const (
	// FCFS allocates strictly in order and stops at the first job that
	// does not fit now (no backfilling, no reservations).
	FCFS QueuePolicy = "fcfs"
	// EASY reserves the queue head and backfills later jobs only if
	// they fit immediately.
	EASY QueuePolicy = "easy"
	// Conservative reserves every pending job (the paper's setting).
	Conservative QueuePolicy = "conservative"
)

// JobState is a job's lifecycle state.
type JobState int

// Job lifecycle states.
const (
	StatePending JobState = iota
	StateReserved
	StateRunning
	StateCompleted
	StateUnsatisfiable
)

func (s JobState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateReserved:
		return "reserved"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateUnsatisfiable:
		return "unsatisfiable"
	default:
		return "unknown"
	}
}

// Job is one schedulable unit of work.
type Job struct {
	ID     int64
	Spec   *jobspec.Jobspec
	Submit int64 // simulated submit time
	// Priority orders the pending queue: higher runs first, ties by
	// submit order. Set it before (or via) SubmitPriority.
	Priority int

	State   JobState
	StartAt int64 // simulated start (allocation) time
	EndAt   int64
	// MatchDuration accumulates the wall-clock time spent inside the
	// matcher for this job across scheduling cycles — the per-job
	// scheduling overhead reported in paper Figure 7b.
	MatchDuration time.Duration
	// Alloc is the live or reserved selected resource set.
	Alloc *traverser.Allocation
}

// ErrUnknownPolicy reports an unrecognized queue policy.
var ErrUnknownPolicy = errors.New("sched: unknown queue policy")

type event struct {
	at    int64
	jobID int64
}

type eventHeap []event

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].jobID < h[j].jobID
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Scheduler runs jobs on a Fluxion traverser under a queue policy.
type Scheduler struct {
	tr     *traverser.Traverser
	policy QueuePolicy

	now      int64
	pending  []*Job // submit order; includes reserved jobs
	jobs     map[int64]*Job
	reserved map[int64]*Job
	events   eventHeap

	// Cycles counts scheduling cycles run.
	Cycles int
	// queueDepth bounds how many pending jobs each cycle plans
	// (flux-sched qmanager's queue-depth knob); 0 = unbounded.
	queueDepth int
}

// SchedOption configures New.
type SchedOption func(*Scheduler)

// WithQueueDepth bounds how many pending jobs each scheduling cycle plans.
// Deep queues trade reservation fidelity for cycle latency exactly as in
// flux-sched's qmanager; 0 (the default) plans the whole queue.
func WithQueueDepth(n int) SchedOption {
	return func(s *Scheduler) { s.queueDepth = n }
}

// New creates a scheduler at simulated time = the graph's planner base.
func New(tr *traverser.Traverser, policy QueuePolicy, opts ...SchedOption) (*Scheduler, error) {
	switch policy {
	case FCFS, EASY, Conservative:
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, policy)
	}
	s := &Scheduler{
		tr:       tr,
		policy:   policy,
		now:      tr.Graph().Base(),
		jobs:     make(map[int64]*Job),
		reserved: make(map[int64]*Job),
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Now returns the simulated clock.
func (s *Scheduler) Now() int64 { return s.now }

// Job returns a submitted job by ID.
func (s *Scheduler) Job(id int64) (*Job, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all submitted jobs keyed by ID. The map is live.
func (s *Scheduler) Jobs() map[int64]*Job { return s.jobs }

// Submit enqueues a job without scheduling it; call Schedule (or Run) to
// plan the queue. Unsatisfiable jobs are rejected immediately, mirroring
// Fluxion's satisfiability check at ingest.
func (s *Scheduler) Submit(id int64, spec *jobspec.Jobspec) (*Job, error) {
	return s.SubmitPriority(id, spec, 0)
}

// SubmitPriority is Submit with an explicit queue priority (higher runs
// first; equal priorities keep submit order).
func (s *Scheduler) SubmitPriority(id int64, spec *jobspec.Jobspec, priority int) (*Job, error) {
	if _, dup := s.jobs[id]; dup {
		return nil, fmt.Errorf("sched: job %d already submitted", id)
	}
	job := &Job{ID: id, Spec: spec, Submit: s.now, Priority: priority, State: StatePending}
	ok, err := s.tr.MatchSatisfy(spec)
	if err != nil {
		return nil, err
	}
	if !ok {
		job.State = StateUnsatisfiable
		s.jobs[id] = job
		return job, nil
	}
	s.jobs[id] = job
	// Insert in priority order (stable behind equal priorities).
	i := len(s.pending)
	for i > 0 && s.pending[i-1].Priority < priority {
		i--
	}
	s.pending = append(s.pending, nil)
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = job
	return job, nil
}

// Schedule runs one scheduling cycle at the current simulated time: all
// standing reservations are dropped and the pending queue is re-planned in
// submit order under the queue policy.
func (s *Scheduler) Schedule() {
	s.Cycles++
	for id, job := range s.reserved {
		_ = s.tr.Cancel(id)
		job.State = StatePending
		job.Alloc = nil
	}
	s.reserved = make(map[int64]*Job)

	still := s.pending[:0]
	blocked := false // FCFS: stop at first failure; EASY: head reserved
	planned := 0
	for _, job := range s.pending {
		if job.State != StatePending {
			continue
		}
		if s.queueDepth > 0 && planned >= s.queueDepth {
			still = append(still, job)
			continue
		}
		planned++
		var alloc *traverser.Allocation
		var err error
		start := time.Now()
		switch {
		case s.policy == FCFS:
			if blocked {
				err = traverser.ErrNoMatch
			} else {
				alloc, err = s.tr.MatchAllocate(job.ID, job.Spec, s.now)
			}
		case s.policy == EASY && blocked:
			alloc, err = s.tr.MatchAllocate(job.ID, job.Spec, s.now)
		default: // Conservative always; EASY head
			alloc, err = s.tr.MatchAllocateOrReserve(job.ID, job.Spec, s.now)
		}
		job.MatchDuration += time.Since(start)
		switch {
		case err != nil:
			blocked = true
			still = append(still, job)
		case alloc.Reserved:
			job.State = StateReserved
			job.Alloc = alloc
			s.reserved[job.ID] = job
			blocked = true
			still = append(still, job)
		default:
			s.start(job, alloc)
		}
	}
	s.pending = still
}

// start transitions a job to running and schedules its completion.
func (s *Scheduler) start(job *Job, alloc *traverser.Allocation) {
	job.State = StateRunning
	job.Alloc = alloc
	job.StartAt = alloc.At
	job.EndAt = alloc.At + alloc.Duration
	heap.Push(&s.events, event{at: job.EndAt, jobID: job.ID})
}

// HasEvents reports whether completion events are pending.
func (s *Scheduler) HasEvents() bool { return len(s.events) > 0 }

// NextEventAt returns the time of the next completion event (only valid
// when HasEvents).
func (s *Scheduler) NextEventAt() int64 {
	if len(s.events) == 0 {
		return -1
	}
	return s.events[0].at
}

// AdvanceTo moves the simulated clock forward to t without processing
// events; it fails if that would skip a pending completion or move
// backwards. Use it to model job arrivals between completions.
func (s *Scheduler) AdvanceTo(t int64) error {
	if t < s.now {
		return fmt.Errorf("sched: cannot move clock backwards (%d -> %d)", s.now, t)
	}
	if len(s.events) > 0 && s.events[0].at < t {
		return fmt.Errorf("sched: advancing to %d would skip completion at %d", t, s.events[0].at)
	}
	s.now = t
	return nil
}

// Step advances the clock to the next completion event, retires every job
// completing at that instant, and runs a scheduling cycle. It returns
// false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.complete(e.jobID)
	for len(s.events) > 0 && s.events[0].at == s.now {
		e := heap.Pop(&s.events).(event)
		s.complete(e.jobID)
	}
	s.Schedule()
	return true
}

func (s *Scheduler) complete(id int64) {
	job := s.jobs[id]
	if job == nil || job.State != StateRunning {
		return
	}
	_ = s.tr.Cancel(id)
	job.State = StateCompleted
}

// Run schedules the queue and steps the clock until every satisfiable job
// has completed (or maxSteps cycles elapse; 0 means unbounded). It returns
// the number of completed jobs.
func (s *Scheduler) Run(maxSteps int) int {
	s.Schedule()
	steps := 0
	for s.Step() {
		steps++
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
	}
	done := 0
	for _, j := range s.jobs {
		if j.State == StateCompleted {
			done++
		}
	}
	return done
}

// Counts tallies jobs per state.
func (s *Scheduler) Counts() map[JobState]int {
	out := make(map[JobState]int)
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}
