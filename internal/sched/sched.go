// Package sched implements the queuing layer above the Fluxion traverser:
// a discrete-event simulated clock and three queue policies — pure FCFS,
// EASY backfilling, and conservative backfilling (the paper's evaluation
// policy, §6.2/§6.3).
//
// The scheduler drives Fluxion exactly the way flux-sched's qmanager does:
// each scheduling cycle drops all standing reservations and re-plans the
// pending queue front to back with MatchAllocateOrReserve, so reservations
// always reflect the current resource-time state (paper §3.4).
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// QueuePolicy selects how the pending queue is planned.
type QueuePolicy string

const (
	// FCFS allocates strictly in order and stops at the first job that
	// does not fit now (no backfilling, no reservations).
	FCFS QueuePolicy = "fcfs"
	// EASY reserves the queue head and backfills later jobs only if
	// they fit immediately.
	EASY QueuePolicy = "easy"
	// Conservative reserves every pending job (the paper's setting).
	Conservative QueuePolicy = "conservative"
)

// JobState is a job's lifecycle state.
type JobState int

// Job lifecycle states.
const (
	StatePending JobState = iota
	StateReserved
	StateRunning
	StateCompleted
	StateUnsatisfiable
	// StateFailed marks a job evicted by resource failures more times
	// than MaxRetries allows; it will not be requeued again.
	StateFailed
	// StateQuarantined marks a poisoned job set aside by the defense
	// layer (defense.go): out of the pending queue, never retried, until
	// an operator calls ReleaseQuarantined.
	StateQuarantined
)

func (s JobState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateReserved:
		return "reserved"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateUnsatisfiable:
		return "unsatisfiable"
	case StateFailed:
		return "failed"
	case StateQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// parseJobState is the inverse of JobState.String, for checkpoint decode.
func parseJobState(s string) (JobState, error) {
	for _, st := range []JobState{StatePending, StateReserved, StateRunning,
		StateCompleted, StateUnsatisfiable, StateFailed, StateQuarantined} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown job state %q", s)
}

// Job is one schedulable unit of work.
type Job struct {
	ID     int64
	Spec   *jobspec.Jobspec
	Submit int64 // simulated submit time
	// Priority orders the pending queue: higher runs first, ties by
	// submit order. Set it before (or via) SubmitPriority.
	Priority int

	State   JobState
	StartAt int64 // simulated start (allocation) time
	EndAt   int64
	// Retries counts how many times the job was evicted by a resource
	// failure and requeued. Exceeding the scheduler's MaxRetries moves
	// the job to StateFailed.
	Retries int
	// MatchDuration accumulates the wall-clock time spent inside the
	// matcher for this job across scheduling cycles — the per-job
	// scheduling overhead reported in paper Figure 7b.
	MatchDuration time.Duration
	// Alloc is the live or reserved selected resource set.
	Alloc *traverser.Allocation

	// QuarantineMsg and Quarantine (packed below with the scratch flags)
	// record why a quarantined job was set aside (defense.go); meaningful
	// only in StateQuarantined. The match fence stages the pending
	// reason/message in the same fields (with poisoned set) between the
	// attempt and the cycle loop's quarantine, which always lands within
	// the same cycle.
	QuarantineMsg string

	// compiled caches Spec compiled against the scheduler's graph, so
	// the job is flattened and interned once at submit instead of on
	// every match attempt across scheduling cycles.
	compiled *jobspec.Compiled

	// Incremental-engine state (transient; never checkpointed). sig is
	// the blocking signature of the job's last failed attempt, valid
	// while sigOK; sigReserve records that the failed attempt included a
	// reservation probe (allocate-or-reserve), so the signature also
	// justifies skipping reservation re-attempts. woken and invalidated
	// are per-cycle scratch set by the wake pre-pass.
	sig         traverser.BlockSig
	sigOK       bool
	sigReserve  bool
	woken       bool
	invalidated bool

	// Defense scratch (transient): poisoned flags the job for quarantine
	// at its cycle position — set by the match fence, possibly on a
	// speculation worker, and consumed by the cycle loop after the
	// barrier. conflicts counts consecutive speculative-commit rollbacks
	// toward DefenseConfig.ConflictLimit. Kept narrow on purpose: the
	// classification loop walks every pending job each cycle, so Job
	// size is cycle-time (the quarantine reason/message stage in the
	// exported fields above rather than a second copy here).
	poisoned   bool
	Quarantine QuarantineReason
	conflicts  int32
}

// ErrUnknownPolicy reports an unrecognized queue policy.
var ErrUnknownPolicy = errors.New("sched: unknown queue policy")

// eventKind discriminates scheduler events: job completions and resource
// failure/repair events share one simulated-time event queue so a fault
// timeline interleaves deterministically with the workload.
type eventKind int

const (
	// evComplete retires a running job.
	evComplete eventKind = iota
	// evNodeUp returns a containment subtree to service.
	evNodeUp
	// evNodeDown takes a containment subtree out of service, evicting
	// and requeueing the jobs running on it.
	evNodeDown
)

func (k eventKind) String() string {
	switch k {
	case evComplete:
		return "complete"
	case evNodeUp:
		return "node-up"
	case evNodeDown:
		return "node-down"
	default:
		return "unknown"
	}
}

type event struct {
	at    int64
	kind  eventKind
	jobID int64  // evComplete
	path  string // evNodeUp / evNodeDown
}

type eventHeap []event

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	// Same-instant ordering is part of the deterministic contract:
	// completions first (a job finishing the moment its node dies is not
	// a casualty), then repairs, then failures.
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	if h[i].jobID != h[j].jobID {
		return h[i].jobID < h[j].jobID
	}
	return h[i].path < h[j].path
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Scheduler runs jobs on a Fluxion traverser under a queue policy.
type Scheduler struct {
	tr     *traverser.Traverser
	policy QueuePolicy

	now      int64
	pending  []*Job // submit order; includes reserved jobs
	jobs     map[int64]*Job
	reserved map[int64]*Job
	events   eventHeap

	// Cycles counts scheduling cycles run.
	Cycles int
	// queueDepth bounds how many pending jobs each cycle plans
	// (flux-sched qmanager's queue-depth knob); 0 = unbounded.
	queueDepth int
	// matchWorkers sets how many traverser workers speculatively match
	// pending jobs concurrently per cycle; <= 1 keeps the sequential
	// loop.
	matchWorkers int
	// maxRetries bounds failure-driven requeues per job; exceeding it
	// moves the job to StateFailed. 0 = unbounded retries.
	maxRetries int

	// incremental enables the event-driven engine: blocked jobs are
	// skipped until a capacity delta intersects their blocking signature,
	// and reservations are carried across cycles (incremental.go). Off,
	// every cycle re-plans the whole queue (flux-sched qmanager style).
	incremental bool
	// wakeup buffers capacity deltas between cycles; plan and directives
	// are reusable per-cycle scratch.
	wakeup     wakeupIndex
	plan       cyclePlan
	directives []directive
	// stats tallies incremental-engine effectiveness (see Stats).
	stats Stats

	// defense, when non-nil, is the self-defense layer (defense.go):
	// panic fences, quarantine, the cycle watchdog, and admission
	// backpressure. Nil keeps every match on the raw zero-allocation
	// path.
	defense *defenseState

	// Failure-domain accounting, surfaced through Metrics.
	requeues    int
	lostCoreSec int64

	// resourceHook, when set, observes every node-down/node-up event the
	// event loop dispatches; fault injectors use it to schedule the
	// follow-up repair or next failure.
	resourceHook func(at int64, path string, down bool)

	// journal, when set, receives one effect record before every state
	// mutation (journal.go); jbuf is the reused record buffer, and
	// jDepth/jDirty track the open command unit for commit markers.
	journal func(*Rec)
	jbuf    Rec
	jDepth  int
	jDirty  bool
}

// SchedOption configures New.
type SchedOption func(*Scheduler)

// WithQueueDepth bounds how many pending jobs each scheduling cycle plans.
// Deep queues trade reservation fidelity for cycle latency exactly as in
// flux-sched's qmanager; 0 (the default) plans the whole queue.
func WithQueueDepth(n int) SchedOption {
	return func(s *Scheduler) { s.queueDepth = n }
}

// WithMaxRetries bounds how many times a job evicted by resource failures
// is requeued before landing in StateFailed. 0 retries forever; the
// default is DefaultMaxRetries.
func WithMaxRetries(n int) SchedOption {
	return func(s *Scheduler) { s.maxRetries = n }
}

// WithMatchWorkers sets how many traverser workers speculatively match
// pending jobs concurrently during each scheduling cycle (the parallel
// match pipeline). n <= 1 (the default) keeps the sequential loop. See
// parallel.go for the commit-ordering semantics.
func WithMatchWorkers(n int) SchedOption {
	return func(s *Scheduler) { s.matchWorkers = n }
}

// WithIncremental toggles the event-driven incremental engine (default
// on). Off restores the full-requeue loop: every cycle cancels all
// reservations and re-plans the entire pending queue. Scheduling
// decisions (which jobs start, when, and in what state) are identical
// either way; only the work per cycle differs.
func WithIncremental(on bool) SchedOption {
	return func(s *Scheduler) { s.incremental = on }
}

// Stats counts scheduling work, surfacing what the incremental engine
// saves: MatchAttempts is every traverser match call (allocate, reserve,
// or speculate); WokenJobs counts blocked jobs re-attempted because a
// delta intersected their signature; SkippedJobs counts blocked jobs a
// cycle proved undisturbed and did not re-match. The defense counters
// (defense.go) tally quarantined jobs, cycles run with the degradation
// ladder engaged, submits rejected by admission backpressure, and
// jobspecs rejected as invalid at submit.
type Stats struct {
	Cycles        int64
	MatchAttempts int64
	WokenJobs     int64
	SkippedJobs   int64
	// Quarantined counts jobs moved to StateQuarantined (including
	// re-quarantines after a release).
	Quarantined int64
	// DegradedCycles counts scheduling cycles that started with the
	// degradation ladder above normal.
	DegradedCycles int64
	// OverloadRejects counts submits rejected with ErrOverload.
	OverloadRejects int64
	// InvalidSpecRejects counts submits rejected with ErrInvalidSpec.
	InvalidSpecRejects int64
}

// Stats returns the scheduler's cumulative work counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// MatchWorkers returns the configured match worker count (minimum 1).
func (s *Scheduler) MatchWorkers() int {
	if s.matchWorkers < 1 {
		return 1
	}
	return s.matchWorkers
}

// DefaultMaxRetries is the default failure-requeue bound per job.
const DefaultMaxRetries = 3

// SetResourceEventHook registers fn to observe every node-down/node-up
// event dispatched from the event queue (not direct NodeDown/NodeUp
// calls). Fault injectors use it to schedule follow-up events.
func (s *Scheduler) SetResourceEventHook(fn func(at int64, path string, down bool)) {
	s.resourceHook = fn
}

// New creates a scheduler at simulated time = the graph's planner base.
func New(tr *traverser.Traverser, policy QueuePolicy, opts ...SchedOption) (*Scheduler, error) {
	switch policy {
	case FCFS, EASY, Conservative:
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, policy)
	}
	s := &Scheduler{
		tr:          tr,
		policy:      policy,
		now:         tr.Graph().Base(),
		jobs:        make(map[int64]*Job),
		reserved:    make(map[int64]*Job),
		maxRetries:  DefaultMaxRetries,
		incremental: true,
	}
	for _, o := range opts {
		o(s)
	}
	// The scheduler owns all matching on its traverser, so per-job
	// first-fit steering is safe to enable: every path (speculation,
	// sequential fallback, incremental wakeup) places a job identically,
	// while concurrent speculators spread across disjoint candidates.
	tr.EnableSteering()
	if s.incremental {
		// Subscribe to the store's capacity deltas. Publication is
		// synchronous and the sink only buffers, so this is safe under
		// graph locks.
		tr.Graph().SetDeltaSink(s.wakeup.publish)
	}
	return s, nil
}

// Now returns the simulated clock.
func (s *Scheduler) Now() int64 { return s.now }

// Job returns a submitted job by ID.
func (s *Scheduler) Job(id int64) (*Job, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all submitted jobs keyed by ID. The map is live.
func (s *Scheduler) Jobs() map[int64]*Job { return s.jobs }

// Submit enqueues a job without scheduling it; call Schedule (or Run) to
// plan the queue. Unsatisfiable jobs are rejected immediately, mirroring
// Fluxion's satisfiability check at ingest.
func (s *Scheduler) Submit(id int64, spec *jobspec.Jobspec) (*Job, error) {
	return s.SubmitPriority(id, spec, 0)
}

// SubmitPriority is Submit with an explicit queue priority (higher runs
// first; equal priorities keep submit order).
func (s *Scheduler) SubmitPriority(id int64, spec *jobspec.Jobspec, priority int) (*Job, error) {
	if _, dup := s.jobs[id]; dup {
		return nil, fmt.Errorf("sched: job %d already submitted", id)
	}
	// Structural and unknown-type validation happens before anything
	// else: a hostile spec must not reach the match kernel, the intern
	// table, or the journal.
	if err := s.tr.ValidateSpec(spec); err != nil {
		s.stats.InvalidSpecRejects++
		return nil, fmt.Errorf("%w: job %d: %v", ErrInvalidSpec, id, err)
	}
	if err := s.admit(); err != nil {
		return nil, fmt.Errorf("job %d: %w", id, err)
	}
	job := &Job{ID: id, Spec: spec, Submit: s.now, Priority: priority, State: StatePending}
	cjs, err := s.tr.Compile(spec)
	if err != nil {
		return nil, err
	}
	job.compiled = cjs
	ok, err := s.tr.MatchSatisfyCompiled(cjs)
	if err != nil {
		return nil, err
	}
	if s.journal != nil {
		s.jBegin()
		defer s.jEnd()
		s.jrec(Rec{Kind: RecSubmit, ID: id, At: s.now, Priority: priority, Unsat: !ok, Spec: spec})
	}
	if !ok {
		job.State = StateUnsatisfiable
		s.jobs[id] = job
		return job, nil
	}
	s.jobs[id] = job
	s.enqueue(job)
	return job, nil
}

// compiledSpec returns job.Spec compiled against the scheduler's graph,
// compiling lazily and caching on the job (jobs restored from a
// checkpoint reach here without passing through Submit). It returns nil
// when compilation fails; callers fall back to the per-call path.
func (s *Scheduler) compiledSpec(job *Job) *jobspec.Compiled {
	if job.compiled == nil {
		c, err := s.tr.Compile(job.Spec)
		if err != nil {
			return nil
		}
		job.compiled = c
	}
	return job.compiled
}

// matchOp enumerates the traverser match entry points so the defense
// fence can dispatch by value — a closure per attempt would allocate on
// the zero-alloc hot path.
type matchOp uint8

const (
	opAllocate matchOp = iota
	opAllocateOrReserve
	opSpeculate
	opAllocateSig
	opAllocateOrReserveSig
)

// dispatchMatch routes one match attempt through the defense fence when
// a defense layer is configured, or straight to the traverser otherwise
// (the zero-allocation hot path). ep is the pinned MVCC epoch for
// speculative attempts (nil everywhere else: the committing entry points
// match live state under the traverser's locks).
func (s *Scheduler) dispatchMatch(op matchOp, job *Job, at int64, ep *resgraph.Epoch) (*traverser.Allocation, error) {
	if s.defense != nil {
		return s.fencedMatch(op, job, at, ep)
	}
	return s.rawMatch(op, job, at, ep)
}

// rawMatch is the unfenced dispatch across the match entry points,
// preferring the compiled fast path when the job's spec compiles (jobs
// restored from a checkpoint reach here without passing through Submit).
// The Sig forms capture a blocking signature on ErrNoMatch, arming the
// incremental engine's skip test for later cycles; a captured
// reservation-probe signature additionally justifies conservative-mode
// skips (sigReserve).
func (s *Scheduler) rawMatch(op matchOp, job *Job, at int64, ep *resgraph.Epoch) (*traverser.Allocation, error) {
	cjs := s.compiledSpec(job)
	switch op {
	case opAllocate:
		if cjs != nil {
			return s.tr.MatchAllocateCompiled(job.ID, cjs, at)
		}
		return s.tr.MatchAllocate(job.ID, job.Spec, at)
	case opAllocateOrReserve:
		if cjs != nil {
			return s.tr.MatchAllocateOrReserveCompiled(job.ID, cjs, at)
		}
		return s.tr.MatchAllocateOrReserve(job.ID, job.Spec, at)
	case opSpeculate:
		if cjs != nil {
			return s.tr.MatchSpeculateCompiledEpoch(job.ID, cjs, at, ep)
		}
		// Uncompiled specs pin their own epoch inside the traverser; with
		// the cycle's epoch batch open no transition can be published
		// mid-cycle, so the self-pinned epoch equals the batch's.
		return s.tr.MatchSpeculate(job.ID, job.Spec, at)
	case opAllocateSig:
		job.sigOK = false
		if cjs == nil {
			return s.tr.MatchAllocate(job.ID, job.Spec, at)
		}
		alloc, err := s.tr.MatchAllocateCompiledSig(job.ID, cjs, at, &job.sig)
		if err != nil && errors.Is(err, traverser.ErrNoMatch) {
			job.sigOK = true
			job.sigReserve = false
		}
		return alloc, err
	default: // opAllocateOrReserveSig
		job.sigOK = false
		if cjs == nil {
			return s.tr.MatchAllocateOrReserve(job.ID, job.Spec, at)
		}
		alloc, err := s.tr.MatchAllocateOrReserveCompiledSig(job.ID, cjs, at, &job.sig)
		if err != nil && errors.Is(err, traverser.ErrNoMatch) {
			job.sigOK = true
			job.sigReserve = true
		}
		return alloc, err
	}
}

// matchAllocate matches job at time `at` through the traverser's
// compiled fast path when the job's spec compiles.
func (s *Scheduler) matchAllocate(job *Job, at int64) (*traverser.Allocation, error) {
	s.stats.MatchAttempts++
	return s.dispatchMatch(opAllocate, job, at, nil)
}

// matchAllocateOrReserve is matchAllocate's allocate-else-reserve form.
func (s *Scheduler) matchAllocateOrReserve(job *Job, at int64) (*traverser.Allocation, error) {
	s.stats.MatchAttempts++
	return s.dispatchMatch(opAllocateOrReserve, job, at, nil)
}

// matchSpeculate is matchAllocate's speculative form (parallel pipeline),
// matching lock-free against ep, the MVCC epoch its batch pinned. It runs
// on worker goroutines: the attempt counter is charged by speculateBatch
// after the barrier, not here. With a defense layer the fence runs on the
// worker, so a panicking speculation poisons its job instead of killing
// the process.
func (s *Scheduler) matchSpeculate(job *Job, at int64, ep *resgraph.Epoch) (*traverser.Allocation, error) {
	return s.dispatchMatch(opSpeculate, job, at, ep)
}

// matchAllocateSig is matchAllocate with blocking-signature capture.
func (s *Scheduler) matchAllocateSig(job *Job, at int64) (*traverser.Allocation, error) {
	s.stats.MatchAttempts++
	return s.dispatchMatch(opAllocateSig, job, at, nil)
}

// matchAllocateOrReserveSig is matchAllocateOrReserve with signature
// capture covering the reservation probe.
func (s *Scheduler) matchAllocateOrReserveSig(job *Job, at int64) (*traverser.Allocation, error) {
	s.stats.MatchAttempts++
	return s.dispatchMatch(opAllocateOrReserveSig, job, at, nil)
}

// enqueue inserts a job into the pending queue in priority order (stable
// behind equal priorities). Requeued jobs re-enter here, behind peers of
// their priority.
func (s *Scheduler) enqueue(job *Job) {
	i := len(s.pending)
	for i > 0 && s.pending[i-1].Priority < job.Priority {
		i--
	}
	s.pending = append(s.pending, nil)
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = job
}

// Schedule runs one scheduling cycle at the current simulated time under
// the queue policy. With the incremental engine (the default) the cycle
// re-attempts only jobs whose blocking signature intersects a capacity
// delta since the last cycle, carrying valid reservations over
// (incremental.go). With WithIncremental(false) all standing reservations
// are dropped and the pending queue is re-planned front to back. Either
// way, with WithMatchWorkers(n > 1) the immediate-fit matching fans out
// across a worker pool (parallel.go); otherwise the queue is planned
// sequentially.
func (s *Scheduler) Schedule() {
	s.jBegin()
	defer s.jEnd()
	s.Cycles++
	s.stats.Cycles++
	s.jrec(Rec{Kind: RecCycle})
	if d := s.defense; d != nil {
		if d.level > ladderNormal {
			s.stats.DegradedCycles++
		}
		if d.cfg.CycleDeadline > 0 {
			// Watchdog: args to a deferred call evaluate now, so the
			// ladder observes this cycle's true duration on every exit
			// path below.
			defer d.observeCycle(time.Now())
		}
	}

	g := s.tr.Graph()
	if s.incremental {
		s.wakeup.drain(s.now, &s.plan)
		// Mute the sink for the cycle: our own cancels and matches are
		// ordered by the queue walk and must not wake next cycle.
		s.wakeup.mute(true)
		defer s.wakeup.mute(false)
		// Batch the cycle's epoch transitions: speculation batches pin one
		// pre-cycle epoch and every mutation the cycle commits publishes as
		// a single transition at cycle end. Registered after the mute defer
		// so (LIFO) the batch closes — flushing its buffered deltas — while
		// the sink is still muted.
		g.BeginEpochBatch()
		defer g.EndEpochBatch()
		s.scheduleIncremental()
		return
	}

	g.BeginEpochBatch()
	defer g.EndEpochBatch()

	for id := range s.reserved {
		s.demote(s.reserved[id])
	}

	if s.cycleWorkers() > 1 {
		s.scheduleParallel()
		return
	}
	s.scheduleSequential()
}

// scheduleSequential plans the pending queue front to back on the calling
// goroutine.
func (s *Scheduler) scheduleSequential() {
	still := s.pending[:0]
	blocked := false // FCFS: stop at first failure; EASY: head reserved
	planned := 0
	depth := s.planBound()
	for _, job := range s.pending {
		if job.State != StatePending {
			continue
		}
		if depth > 0 && planned >= depth {
			still = append(still, job)
			continue
		}
		planned++
		var alloc *traverser.Allocation
		var err error
		start := time.Now()
		switch {
		case s.policy == FCFS:
			if blocked {
				err = traverser.ErrNoMatch
			} else {
				alloc, err = s.matchAllocate(job, s.now)
			}
		case blocked && s.shedBackfill():
			// Degraded: shed the backfill probe behind the blocked head
			// (the cycle watchdog's first ladder rung).
			err = traverser.ErrNoMatch
		case s.policy == EASY && blocked:
			alloc, err = s.matchAllocate(job, s.now)
		default: // Conservative always; EASY head
			alloc, err = s.matchAllocateOrReserve(job, s.now)
		}
		job.MatchDuration += time.Since(start)
		switch {
		case job.poisoned:
			// Quarantine without touching `blocked`: jobs behind see the
			// schedule of a run where this job never existed.
			s.quarantinePoisoned(job)
		case err != nil:
			blocked = true
			still = append(still, job)
		case alloc.Reserved:
			s.reserve(job, alloc)
			blocked = true
			still = append(still, job)
		default:
			s.start(job, alloc)
		}
	}
	s.pending = still
}

// start transitions a job to running and schedules its completion. A
// job arriving here in StateReserved is a maturing reservation
// (convert): its allocation is already installed, so the journal records
// the flip instead of the placement.
func (s *Scheduler) start(job *Job, alloc *traverser.Allocation) {
	if s.journal != nil {
		if job.State == StateReserved {
			s.jrec(Rec{Kind: RecConvert, ID: job.ID, At: alloc.At, Duration: alloc.Duration})
		} else {
			s.jrec(Rec{Kind: RecStart, ID: job.ID, At: alloc.At, Duration: alloc.Duration,
				Grants: alloc.Grants()})
		}
	}
	job.State = StateRunning
	job.Alloc = alloc
	job.StartAt = alloc.At
	job.EndAt = alloc.At + alloc.Duration
	job.conflicts = 0
	heap.Push(&s.events, event{at: job.EndAt, kind: evComplete, jobID: job.ID})
}

// reserve records a future reservation: the single chokepoint behind the
// sequential, parallel, and incremental planners. The job keeps its
// queue position (callers append it to the surviving pending list).
func (s *Scheduler) reserve(job *Job, alloc *traverser.Allocation) {
	if s.journal != nil {
		s.jrec(Rec{Kind: RecReserve, ID: job.ID, At: alloc.At, Duration: alloc.Duration,
			Grants: alloc.Grants()})
	}
	job.State = StateReserved
	job.Alloc = alloc
	s.reserved[job.ID] = job
}

// stale reports whether an event no longer applies: a completion whose job
// was evicted (and possibly restarted with a different end time) must not
// fire. Resource events are never stale.
func (s *Scheduler) stale(e event) bool {
	if e.kind != evComplete {
		return false
	}
	job := s.jobs[e.jobID]
	return job == nil || job.State != StateRunning || job.EndAt != e.at
}

// skim drops stale events from the head of the queue so HasEvents,
// NextEventAt, and AdvanceTo see only events that will actually fire.
func (s *Scheduler) skim() {
	for len(s.events) > 0 && s.stale(s.events[0]) {
		heap.Pop(&s.events)
	}
}

// HasEvents reports whether completion or resource events are pending.
func (s *Scheduler) HasEvents() bool {
	s.skim()
	return len(s.events) > 0
}

// NextEventAt returns the time of the next live event (only valid when
// HasEvents).
func (s *Scheduler) NextEventAt() int64 {
	s.skim()
	if len(s.events) == 0 {
		return -1
	}
	return s.events[0].at
}

// AdvanceTo moves the simulated clock forward to t without processing
// events; it fails if that would skip a pending event or move backwards.
// Use it to model job arrivals between completions.
func (s *Scheduler) AdvanceTo(t int64) error {
	if t < s.now {
		return fmt.Errorf("sched: cannot move clock backwards (%d -> %d)", s.now, t)
	}
	s.skim()
	if len(s.events) > 0 && s.events[0].at < t {
		return fmt.Errorf("sched: advancing to %d would skip event at %d", t, s.events[0].at)
	}
	s.jBegin()
	defer s.jEnd()
	s.jrec(Rec{Kind: RecClock, At: t})
	s.now = t
	return nil
}

// Step advances the clock to the next event, dispatches every event firing
// at that instant (completions before repairs before failures), and runs a
// scheduling cycle. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	s.skim()
	if len(s.events) == 0 {
		return false
	}
	s.jBegin()
	defer s.jEnd()
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.jrec(Rec{Kind: RecClock, At: e.at})
	s.dispatch(e)
	for {
		s.skim()
		if len(s.events) == 0 || s.events[0].at != s.now {
			break
		}
		s.dispatch(heap.Pop(&s.events).(event))
	}
	s.Schedule()
	return true
}

// dispatch applies one event at the current clock. Node events journal
// their removal from the heap (completions need not: a replayed
// completion leaves its event stale, and stale events never fire).
func (s *Scheduler) dispatch(e event) {
	switch e.kind {
	case evComplete:
		s.complete(e.jobID)
	case evNodeDown:
		s.jrec(Rec{Kind: RecEventPop, At: e.at, Down: true, Path: e.path})
		_, _ = s.NodeDown(e.path)
		if s.resourceHook != nil {
			s.resourceHook(e.at, e.path, true)
		}
	case evNodeUp:
		s.jrec(Rec{Kind: RecEventPop, At: e.at, Down: false, Path: e.path})
		_ = s.NodeUp(e.path)
		if s.resourceHook != nil {
			s.resourceHook(e.at, e.path, false)
		}
	}
}

func (s *Scheduler) complete(id int64) {
	job := s.jobs[id]
	if job == nil || job.State != StateRunning {
		return
	}
	s.jrec(Rec{Kind: RecComplete, ID: id})
	_ = s.tr.Cancel(id)
	job.State = StateCompleted
}

// ScheduleNodeDown enqueues a failure of the containment subtree at path
// for simulated time at.
func (s *Scheduler) ScheduleNodeDown(at int64, path string) error {
	return s.scheduleResource(at, path, evNodeDown)
}

// ScheduleNodeUp enqueues a repair of the containment subtree at path for
// simulated time at.
func (s *Scheduler) ScheduleNodeUp(at int64, path string) error {
	return s.scheduleResource(at, path, evNodeUp)
}

func (s *Scheduler) scheduleResource(at int64, path string, kind eventKind) error {
	if at < s.now {
		return fmt.Errorf("sched: %s at %d is in the past (now %d)", kind, at, s.now)
	}
	s.jBegin()
	defer s.jEnd()
	s.jrec(Rec{Kind: RecEvent, At: at, Down: kind == evNodeDown, Path: path})
	heap.Push(&s.events, event{at: at, kind: kind, path: path})
	return nil
}

// NodeDown takes the containment subtree at path out of service now: jobs
// running or reserved on it are evicted and requeued with their retry
// counter bumped (running jobs only); a job evicted more than MaxRetries
// times moves to StateFailed. Lost core-seconds — work the evicted jobs
// had completed and must redo — are accumulated for Metrics. The evicted
// job IDs are returned. Callers driving the scheduler directly should run
// Schedule afterwards; event-loop dispatch does so automatically.
func (s *Scheduler) NodeDown(path string) ([]int64, error) {
	s.jBegin()
	defer s.jEnd()
	evicted, err := s.tr.MarkDown(path)
	if err != nil {
		return nil, err
	}
	// Journal the mark ahead of the per-job eviction records; replay
	// re-runs MarkDown (reproducing graph status and traverser-side
	// evictions) and the records below reproduce the job handling.
	// MarkDown returns evictions in ascending job-ID order, so the
	// record stream is deterministic.
	s.jrec(Rec{Kind: RecDown, Path: path})
	ids := make([]int64, 0, len(evicted))
	for _, alloc := range evicted {
		ids = append(ids, alloc.JobID)
		job := s.jobs[alloc.JobID]
		if job == nil {
			continue
		}
		switch job.State {
		case StateRunning:
			s.requeues++
			lost := alloc.Units("core") * (s.now - job.StartAt)
			s.lostCoreSec += lost
			job.Retries++
			job.Alloc = nil
			job.sigOK = false
			if s.maxRetries > 0 && job.Retries > s.maxRetries {
				s.jrec(Rec{Kind: RecFail, ID: job.ID, Retries: job.Retries, LostCore: lost})
				job.State = StateFailed
				continue
			}
			s.jrec(Rec{Kind: RecRequeue, ID: job.ID, Retries: job.Retries, LostCore: lost})
			job.State = StatePending
			s.enqueue(job)
		case StateReserved:
			// A reservation on failed resources is just re-planned;
			// the job never started, so it costs no retry.
			s.jrec(Rec{Kind: RecDrop, ID: job.ID})
			delete(s.reserved, job.ID)
			job.State = StatePending
			job.Alloc = nil
			job.sigOK = false
		}
	}
	return ids, nil
}

// NodeUp returns the containment subtree at path to service now. The
// restored capacity is used from the next scheduling cycle on.
func (s *Scheduler) NodeUp(path string) error {
	s.jBegin()
	defer s.jEnd()
	if err := s.tr.MarkUp(path); err != nil {
		return err
	}
	s.jrec(Rec{Kind: RecUp, Path: path})
	return nil
}

// Unfinished counts jobs still pending, reserved, or running — the signal
// fault injectors use to stop scheduling new failures once the workload
// has drained.
func (s *Scheduler) Unfinished() int {
	n := 0
	for _, j := range s.jobs {
		switch j.State {
		case StatePending, StateReserved, StateRunning:
			n++
		}
	}
	return n
}

// Run schedules the queue and steps the clock until every satisfiable job
// has completed (or maxSteps cycles elapse; 0 means unbounded). It returns
// the number of completed jobs.
func (s *Scheduler) Run(maxSteps int) int {
	s.Schedule()
	steps := 0
	for s.Step() {
		steps++
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
	}
	done := 0
	for _, j := range s.jobs {
		if j.State == StateCompleted {
			done++
		}
	}
	return done
}

// Counts tallies jobs per state.
func (s *Scheduler) Counts() map[JobState]int {
	out := make(map[JobState]int)
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}
