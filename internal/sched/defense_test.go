package sched

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"fluxion/internal/jobspec"
)

// TestPanicQuarantineParity drives every engine with a match hook that
// panics for one job and asserts (a) the panic is contained: the job is
// quarantined with QuarantinePanic and the run completes, and (b)
// decision parity: every other job schedules exactly as in a run where
// the poisoned job was never submitted.
func TestPanicQuarantineParity(t *testing.T) {
	cases := []struct {
		name   string
		policy QueuePolicy
		opts   []SchedOption
	}{
		{"fcfs-incremental", FCFS, nil},
		{"easy-incremental", EASY, nil},
		{"conservative-incremental", Conservative, nil},
		{"conservative-full-requeue", Conservative, []SchedOption{WithIncremental(false)}},
		{"conservative-parallel", Conservative, []SchedOption{WithMatchWorkers(4)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]SchedOption{WithDefense(DefenseConfig{})}, tc.opts...)
			s := newSchedOpts(t, tc.policy, 1, 2, 4, opts...)
			s.SetMatchHook(func(id int64) {
				if id == 2 {
					panic("injected")
				}
			})
			mustSubmit(t, s, 1, nodeJob(1, 4, 100))
			mustSubmit(t, s, 2, nodeJob(1, 4, 30))
			mustSubmit(t, s, 3, nodeJob(2, 4, 50))
			mustSubmit(t, s, 4, nodeJob(1, 4, 20))
			if done := s.Run(0); done != 3 {
				t.Fatalf("completed = %d", done)
			}
			j2, _ := s.Job(2)
			if j2.State != StateQuarantined || j2.Quarantine != QuarantinePanic {
				t.Fatalf("j2 = %v reason=%v", j2.State, j2.Quarantine)
			}
			if !strings.Contains(j2.QuarantineMsg, "injected") {
				t.Fatalf("quarantine msg = %q", j2.QuarantineMsg)
			}
			if got := s.Stats().Quarantined; got != 1 {
				t.Fatalf("Stats().Quarantined = %d", got)
			}
			if ids := s.Quarantined(); len(ids) != 1 || ids[0] != 2 {
				t.Fatalf("Quarantined() = %v", ids)
			}
			if m := s.Metrics(); m.Quarantined != 1 {
				t.Fatalf("Metrics().Quarantined = %d", m.Quarantined)
			}

			// Baseline: same workload minus the poisoned job, no defense.
			base := newSchedOpts(t, tc.policy, 1, 2, 4, tc.opts...)
			mustSubmit(t, base, 1, nodeJob(1, 4, 100))
			mustSubmit(t, base, 3, nodeJob(2, 4, 50))
			mustSubmit(t, base, 4, nodeJob(1, 4, 20))
			base.Run(0)
			for _, id := range []int64{1, 3, 4} {
				ja, _ := s.Job(id)
				jb, _ := base.Job(id)
				if ja.State != jb.State || ja.StartAt != jb.StartAt || ja.EndAt != jb.EndAt {
					t.Fatalf("parity: job %d = %v@[%d,%d], baseline %v@[%d,%d]",
						id, ja.State, ja.StartAt, ja.EndAt, jb.State, jb.StartAt, jb.EndAt)
				}
			}
		})
	}
}

// TestMatchDeadlineQuarantine: a failed attempt over MatchDeadline
// quarantines the job; successful attempts are never deadline-checked.
func TestMatchDeadlineQuarantine(t *testing.T) {
	s := newSchedOpts(t, FCFS, 1, 2, 4,
		WithDefense(DefenseConfig{MatchDeadline: time.Nanosecond}))
	mustSubmit(t, s, 1, nodeJob(2, 4, 100)) // takes both nodes; succeeds
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))  // blocked: fails, and any failure beats 1ns
	s.Schedule()
	j1, _ := s.Job(1)
	j2, _ := s.Job(2)
	if j1.State != StateRunning {
		t.Fatalf("j1 = %v (slow-success must not quarantine)", j1.State)
	}
	if j2.State != StateQuarantined || j2.Quarantine != QuarantineDeadline {
		t.Fatalf("j2 = %v reason=%v msg=%q", j2.State, j2.Quarantine, j2.QuarantineMsg)
	}
}

// TestConflictBudget exercises noteConflict: below the limit the job
// keeps retrying, at the limit it is poisoned with QuarantineConflict,
// and without a defense (or limit) the budget is off.
func TestConflictBudget(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4,
		WithDefense(DefenseConfig{ConflictLimit: 3}))
	job := mustSubmit(t, s, 1, nodeJob(1, 4, 10))
	for i := 0; i < 2; i++ {
		if s.noteConflict(job) {
			t.Fatalf("poisoned after %d conflicts (limit 3)", i+1)
		}
	}
	if !s.noteConflict(job) || !job.poisoned || job.Quarantine != QuarantineConflict {
		t.Fatalf("conflict %d: poisoned=%v reason=%v", 3, job.poisoned, job.Quarantine)
	}

	off := newSched(t, Conservative, 1, 2, 4)
	j := mustSubmit(t, off, 1, nodeJob(1, 4, 10))
	for i := 0; i < 100; i++ {
		if off.noteConflict(j) {
			t.Fatal("conflict budget fired without defense")
		}
	}
}

// TestManualQuarantineRelease covers the operator API: pending and
// reserved jobs can be quarantined (reservations are demoted first),
// running jobs cannot, and a released job re-enters the queue and
// schedules normally.
func TestManualQuarantineRelease(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4, WithDefense(DefenseConfig{}))
	mustSubmit(t, s, 1, nodeJob(2, 4, 100))
	mustSubmit(t, s, 2, nodeJob(1, 4, 50))
	s.Schedule()
	j2, _ := s.Job(2)
	if j2.State != StateReserved {
		t.Fatalf("j2 = %v", j2.State)
	}
	if err := s.Quarantine(2, ""); err != nil {
		t.Fatal(err)
	}
	if j2.State != StateQuarantined || j2.Quarantine != QuarantineManual || j2.Alloc != nil {
		t.Fatalf("j2 = %v reason=%v alloc=%v", j2.State, j2.Quarantine, j2.Alloc)
	}
	if err := s.Quarantine(1, "x"); err == nil {
		t.Fatal("quarantining a running job must fail")
	}
	if err := s.Quarantine(99, "x"); err == nil {
		t.Fatal("quarantining an unknown job must fail")
	}
	if err := s.ReleaseQuarantined(1); !errors.Is(err, ErrNotQuarantined) {
		t.Fatalf("release of non-quarantined job: %v", err)
	}
	if err := s.ReleaseQuarantined(2); err != nil {
		t.Fatal(err)
	}
	if j2.State != StatePending || j2.Quarantine != QuarantineNone {
		t.Fatalf("released j2 = %v reason=%v", j2.State, j2.Quarantine)
	}
	if done := s.Run(0); done != 2 {
		t.Fatalf("completed = %d", done)
	}
}

// TestAdmissionBackpressure: submits are refused at the high watermark
// and the gate stays latched (hysteresis) until the queue drains to the
// low watermark.
func TestAdmissionBackpressure(t *testing.T) {
	s := newSchedOpts(t, FCFS, 1, 1, 4,
		WithDefense(DefenseConfig{AdmitHigh: 3, AdmitLow: 1}))
	for id := int64(1); id <= 3; id++ {
		mustSubmit(t, s, id, nodeJob(1, 4, 100))
	}
	// Queue depth 3 >= high: latch shut.
	if _, err := s.Submit(4, nodeJob(1, 4, 100)); !errors.Is(err, ErrOverload) {
		t.Fatalf("submit over high watermark: %v", err)
	}
	if !s.Overloaded() || s.Stats().OverloadRejects != 1 {
		t.Fatalf("overloaded=%v rejects=%d", s.Overloaded(), s.Stats().OverloadRejects)
	}
	s.Schedule() // j1 starts; depth 2 — still above low, still latched
	if _, err := s.Submit(5, nodeJob(1, 4, 100)); !errors.Is(err, ErrOverload) {
		t.Fatalf("submit while latched: %v", err)
	}
	if !s.Step() { // j1 completes, j2 starts; depth 1 == low
		t.Fatal("no event to step")
	}
	if _, err := s.Submit(6, nodeJob(1, 4, 100)); err != nil {
		t.Fatalf("submit after drain to low watermark: %v", err)
	}
	if s.Overloaded() {
		t.Fatal("gate still latched after draining to the low watermark")
	}
	if got := s.Stats().OverloadRejects; got != 2 {
		t.Fatalf("OverloadRejects = %d", got)
	}
}

// TestInvalidSpecRejected: structurally invalid and unknown-type specs
// bounce at submit with ErrInvalidSpec and never enter the queue.
func TestInvalidSpecRejected(t *testing.T) {
	s := newSched(t, Conservative, 1, 2, 4)
	bad := map[string]func() (int64, error){
		"zero-count": func() (int64, error) {
			_, err := s.Submit(10, nodeJob(0, 4, 10))
			return 10, err
		},
		"unknown-type": func() (int64, error) {
			_, err := s.Submit(11, jobspec.New(10, jobspec.R("gpu", 1)))
			return 11, err
		},
		"nil-spec": func() (int64, error) {
			_, err := s.Submit(12, nil)
			return 12, err
		},
	}
	for name, fn := range bad {
		id, err := fn()
		if !errors.Is(err, ErrInvalidSpec) {
			t.Fatalf("%s: err = %v", name, err)
		}
		if _, ok := s.Job(id); ok {
			t.Fatalf("%s: rejected job %d entered the table", name, id)
		}
	}
	if got := s.Stats().InvalidSpecRejects; got != 3 {
		t.Fatalf("InvalidSpecRejects = %d", got)
	}
}

// TestLadderClimbRearm white-boxes the watchdog state machine: each
// over-deadline cycle climbs one rung (capped at sequential), RearmAfter
// healthy cycles step back down one rung, and the accessors report the
// shed work at each rung.
func TestLadderClimbRearm(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4,
		WithMatchWorkers(4),
		WithDefense(DefenseConfig{CycleDeadline: time.Hour, RearmAfter: 2, BoundedWake: 5}))
	d := s.defense
	late := func() { d.observeCycle(time.Now().Add(-2 * time.Hour)) }
	ontime := func() { d.observeCycle(time.Now()) }

	if s.shedBackfill() || s.attemptBound() != 0 || s.cycleWorkers() != 4 {
		t.Fatal("rung 0 must shed nothing")
	}
	late()
	if s.DefenseLevel() != ladderShedBackfill || !s.shedBackfill() || s.attemptBound() != 0 {
		t.Fatalf("after 1 late cycle: level=%d", s.DefenseLevel())
	}
	late()
	if s.DefenseLevel() != ladderBoundedWake || s.attemptBound() != 5 || s.cycleWorkers() != 4 {
		t.Fatalf("after 2 late cycles: level=%d bound=%d", s.DefenseLevel(), s.attemptBound())
	}
	late()
	if s.DefenseLevel() != ladderSequential || s.cycleWorkers() != 1 {
		t.Fatalf("after 3 late cycles: level=%d workers=%d", s.DefenseLevel(), s.cycleWorkers())
	}
	late()
	if s.DefenseLevel() != ladderSequential {
		t.Fatalf("ladder overflowed: level=%d", s.DefenseLevel())
	}
	// One healthy cycle is not enough; RearmAfter=2 steps down one rung,
	// and an intervening late cycle resets the calm streak.
	ontime()
	if s.DefenseLevel() != ladderSequential {
		t.Fatal("re-armed too early")
	}
	ontime()
	if s.DefenseLevel() != ladderBoundedWake {
		t.Fatalf("after 2 healthy: level=%d", s.DefenseLevel())
	}
	ontime()
	late()
	if s.DefenseLevel() != ladderSequential {
		t.Fatalf("late cycle must climb and reset calm: level=%d", s.DefenseLevel())
	}
	for i := 0; i < 6; i++ {
		ontime()
	}
	if s.DefenseLevel() != ladderNormal {
		t.Fatalf("ladder did not fully re-arm: level=%d", s.DefenseLevel())
	}
	for i := 0; i < 4; i++ {
		ontime()
	}
	if s.DefenseLevel() != ladderNormal {
		t.Fatal("healthy cycles at rung 0 must be a no-op")
	}
}

// TestWatchdogCountsDegradedCycles: with an impossible cycle deadline
// every cycle after the first degrades, and DegradedCycles counts them.
func TestWatchdogCountsDegradedCycles(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4,
		WithDefense(DefenseConfig{CycleDeadline: time.Nanosecond}))
	mustSubmit(t, s, 1, nodeJob(1, 4, 10))
	s.Schedule() // first cycle: level climbs after the cycle
	s.Schedule()
	s.Schedule()
	if s.DefenseLevel() == 0 {
		t.Fatal("watchdog never fired")
	}
	if got := s.Stats().DegradedCycles; got < 2 {
		t.Fatalf("DegradedCycles = %d", got)
	}
}

// TestShedBackfillRung: at the shed-backfill rung a conservative
// scheduler stops probing behind the blocked head — the head itself
// still reserves (EASY keeps its guarantee), but jobs after it are
// skipped instead of matched, cutting per-cycle work to O(1) probes.
func TestShedBackfillRung(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4, WithDefense(DefenseConfig{CycleDeadline: time.Hour}))
	s.defense.level = ladderShedBackfill
	mustSubmit(t, s, 1, nodeJob(2, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 50)) // head: blocks, still reserves
	mustSubmit(t, s, 3, nodeJob(1, 4, 10)) // behind the head: probe shed
	s.Schedule()
	j2, _ := s.Job(2)
	j3, _ := s.Job(3)
	if j2.State != StateReserved {
		t.Fatalf("blocked head = %v (must keep its reservation)", j2.State)
	}
	// Undegraded conservative would reserve (or backfill) j3; the shed
	// rung leaves it plain pending.
	if j3.State != StatePending {
		t.Fatalf("j3 = %v (backfill probe not shed)", j3.State)
	}
	if done := s.Run(0); done != 3 {
		t.Fatalf("completed = %d", done)
	}
}

// TestQuarantineCheckpointRoundTrip: quarantine survives Checkpoint →
// Resume with reason and message intact, the job stays out of pending,
// and release still works on the resumed scheduler.
func TestQuarantineCheckpointRoundTrip(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4, WithDefense(DefenseConfig{}))
	s.SetMatchHook(func(id int64) {
		if id == 2 {
			panic("poisoned wire")
		}
	})
	mustSubmit(t, s, 1, nodeJob(1, 4, 100))
	mustSubmit(t, s, 2, nodeJob(1, 4, 30))
	s.Schedule()
	j2, _ := s.Job(2)
	if j2.State != StateQuarantined {
		t.Fatalf("j2 = %v", j2.State)
	}
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the scheduler over the same (still-live) traverser, as a
	// crash-recovery drill would over a restored one.
	specs := map[int64]*jobspec.Jobspec{1: nodeJob(1, 4, 100), 2: nodeJob(1, 4, 30)}
	resumed, err := Resume(s.tr, data, specs, WithDefense(DefenseConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	q, ok := resumed.Job(2)
	if !ok || q.State != StateQuarantined || q.Quarantine != QuarantinePanic {
		t.Fatalf("resumed j2 = %+v", q)
	}
	if !strings.Contains(q.QuarantineMsg, "poisoned wire") {
		t.Fatalf("resumed msg = %q", q.QuarantineMsg)
	}
	if ids := resumed.Quarantined(); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("resumed Quarantined() = %v", ids)
	}
	if err := resumed.ReleaseQuarantined(2); err != nil {
		t.Fatal(err)
	}
	if done := resumed.Run(0); done != 2 {
		t.Fatalf("completed after release = %d", done)
	}
}

// TestAdversarialCheckpoint feeds corrupted and adversarial checkpoints
// to Resume: every mutation must come back as ErrCheckpoint, never a
// panic, and most critically a quarantined job must not be resurrected
// into the pending queue.
func TestAdversarialCheckpoint(t *testing.T) {
	s := newSchedOpts(t, FCFS, 1, 2, 4, WithDefense(DefenseConfig{}))
	mustSubmit(t, s, 1, nodeJob(2, 4, 100)) // running
	mustSubmit(t, s, 2, nodeJob(1, 4, 30))  // quarantined below
	mustSubmit(t, s, 3, nodeJob(1, 4, 30))  // pending
	s.Schedule()
	if err := s.Quarantine(2, "hostile"); err != nil {
		t.Fatal(err)
	}
	good, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	specs := map[int64]*jobspec.Jobspec{
		1: nodeJob(2, 4, 100), 2: nodeJob(1, 4, 30), 3: nodeJob(1, 4, 30),
	}

	// The unmutated checkpoint must resume (over the still-live
	// traverser, which holds job 1's allocation).
	if _, err := Resume(s.tr, good, specs); err != nil {
		t.Fatalf("good checkpoint: %v", err)
	}

	mutate := func(fn func(*Checkpoint)) []byte {
		var cp Checkpoint
		if err := json.Unmarshal(good, &cp); err != nil {
			t.Fatal(err)
		}
		fn(&cp)
		data, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		miss map[int64]*jobspec.Jobspec // specs override (nil = full map)
	}{
		{"quarantined-in-pending", mutate(func(cp *Checkpoint) {
			cp.Pending = append(cp.Pending, 2)
		}), nil},
		{"running-in-pending", mutate(func(cp *Checkpoint) {
			cp.Pending = append(cp.Pending, 1)
		}), nil},
		{"duplicate-pending", mutate(func(cp *Checkpoint) {
			cp.Pending = append(cp.Pending, cp.Pending[0])
		}), nil},
		{"unknown-pending", mutate(func(cp *Checkpoint) {
			cp.Pending = append(cp.Pending, 404)
		}), nil},
		{"bogus-quarantine-reason", mutate(func(cp *Checkpoint) {
			for i := range cp.Jobs {
				if cp.Jobs[i].ID == 2 {
					cp.Jobs[i].Quarantine = "bogus"
				}
			}
		}), nil},
		{"quarantined-without-spec", good, map[int64]*jobspec.Jobspec{
			1: specs[1], 3: specs[3],
		}},
		{"truncated", good[:len(good)/2], nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := specs
			if tc.miss != nil {
				sp = tc.miss
			}
			if _, err := Resume(s.tr, tc.data, sp); !errors.Is(err, ErrCheckpoint) {
				t.Fatalf("err = %v (want ErrCheckpoint)", err)
			}
		})
	}
}

// TestJournalQuarantineReplay drives a workload through panic
// quarantine, manual quarantine, and release with the journal attached,
// then replays the record stream and asserts byte-identical checkpoints
// at every commit boundary — quarantine's leg of the WAL invariant.
func TestJournalQuarantineReplay(t *testing.T) {
	live := journalSched(t, Conservative, WithDefense(DefenseConfig{}))
	tr := &journalTrace{s: live, t: t}
	live.SetJournal(tr.sink)
	live.SetMatchHook(func(id int64) {
		if id == 3 {
			panic("journal poison")
		}
	})
	live.Atomic(func() {
		mustSubmit(t, live, 1, nodeJob(1, 4, 100))
		mustSubmit(t, live, 2, nodeJob(1, 4, 50))
		mustSubmit(t, live, 3, nodeJob(1, 4, 30))
		mustSubmit(t, live, 4, nodeJob(2, 4, 40))
		live.Schedule()
	})
	if err := live.Quarantine(4, "operator hold"); err != nil {
		t.Fatal(err)
	}
	if err := live.ReleaseQuarantined(4); err != nil {
		t.Fatal(err)
	}
	live.Atomic(func() { live.Schedule() })
	for live.Step() {
	}
	if len(tr.commits) == 0 {
		t.Fatal("no commits recorded")
	}
	j3, _ := live.Job(3)
	if j3.State != StateQuarantined {
		t.Fatalf("j3 = %v", j3.State)
	}

	for bi, n := range tr.commits {
		replay := journalSched(t, Conservative, WithDefense(DefenseConfig{}))
		for i := 0; i < n; i++ {
			if err := replay.Apply(&tr.recs[i]); err != nil {
				t.Fatalf("boundary %d: apply record %d (%s): %v", bi, i, tr.recs[i].Kind, err)
			}
		}
		got, err := replay.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(tr.refs[bi]) {
			t.Fatalf("boundary %d: checkpoint mismatch\nlive:\n%s\nreplay:\n%s", bi, tr.refs[bi], got)
		}
	}
}

// TestQuarantineReasonStrings pins the String/parse round-trip the
// checkpoint format depends on.
func TestQuarantineReasonStrings(t *testing.T) {
	for _, r := range []QuarantineReason{QuarantineNone, QuarantinePanic,
		QuarantineDeadline, QuarantineConflict, QuarantineManual} {
		back, err := parseQuarantineReason(r.String())
		if err != nil || back != r {
			t.Fatalf("round-trip %v: %v, %v", r, back, err)
		}
	}
	if _, err := parseQuarantineReason("bogus"); err == nil {
		t.Fatal("bogus reason must not parse")
	}
	if QuarantineReason(200).String() != "unknown" {
		t.Fatal("out-of-range reason String")
	}
	if StateQuarantined.String() != "quarantined" {
		t.Fatalf("StateQuarantined.String() = %q", StateQuarantined.String())
	}
	if st, err := parseJobState("quarantined"); err != nil || st != StateQuarantined {
		t.Fatalf("parseJobState(quarantined) = %v, %v", st, err)
	}
}
