package sched

import (
	"errors"
	"testing"

	"fluxion/internal/jobspec"
)

// FuzzResume feeds arbitrary bytes to Resume: corrupted checkpoints must
// come back as wrapped ErrCheckpoint — never a panic — and anything that
// resumes must yield a working scheduler.
func FuzzResume(f *testing.F) {
	// Seed with real checkpoint bytes from a driven scheduler so the
	// fuzzer starts from the actual wire format.
	seed := journalSched(f, Conservative)
	driveJournalWorkload(f, seed)
	data, err := seed.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	empty := journalSched(f, FCFS)
	if data, err = empty.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"policy":"conservative","jobs":[{"id":1,"state":"running"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := journalSched(t, Conservative)
		resumed, err := Resume(s.tr, data, nil)
		if err != nil {
			if !errors.Is(err, ErrCheckpoint) {
				t.Fatalf("resume error does not wrap ErrCheckpoint: %v", err)
			}
			return
		}
		// A resumed scheduler must be drivable.
		resumed.Schedule()
		for i := 0; i < 64 && resumed.Step(); i++ {
		}
	})
}

// FuzzSubmitSpec feeds arbitrary jobspec documents to Submit: the
// validator must either accept the job or reject it with a typed error
// (ErrInvalidSpec / ErrOverload) — never panic, and never let a hostile
// spec reach the match kernel. The corpus seeds the rejection classes
// the chaos harness's malformed-spec stream generates.
func FuzzSubmitSpec(f *testing.F) {
	seed := func(js *jobspec.Jobspec) { f.Add(js.YAML()) }
	seed(nodeJob(1, 4, 50))                                                         // valid
	seed(jobspec.New(60, jobspec.R("node", 0, jobspec.R("core", 1))))               // zero count
	seed(jobspec.New(60, jobspec.R("node", 1, jobspec.R("core", -4))))              // negative count
	seed(jobspec.New(60, jobspec.R("node", 1, jobspec.R("quantum-fpga", 2))))       // unknown type
	seed(jobspec.New(60, jobspec.Moldable("node", 8, 2, jobspec.R("core", 1))))     // min > max
	seed(jobspec.New(60, jobspec.R("node", 1, jobspec.SlotR(1))))                   // empty slot
	seed(jobspec.New(60, jobspec.SlotR(1, jobspec.SlotR(1, jobspec.R("core", 1))))) // nested slot
	seed(jobspec.New(60))                                                           // no resources
	deep := jobspec.R("core", 1)
	for i := 0; i < jobspec.MaxNestingDepth+8; i++ {
		deep = jobspec.R("node", 1, deep)
	}
	seed(jobspec.New(60, deep)) // depth bomb
	f.Add([]byte("version: 9999\nresources: []\n"))

	s := journalSched(f, Conservative,
		WithDefense(DefenseConfig{AdmitHigh: 64}))
	id := int64(0)
	f.Fuzz(func(t *testing.T, data []byte) {
		js, err := jobspec.ParseYAML(data)
		if err != nil {
			return
		}
		id++
		if _, err := s.Submit(id, js); err != nil {
			if !errors.Is(err, ErrInvalidSpec) && !errors.Is(err, ErrOverload) {
				t.Fatalf("submit rejected with untyped error: %v", err)
			}
			return
		}
		// Accepted specs must survive a scheduling cycle and some draining.
		s.Schedule()
		for i := 0; i < 4 && s.Step(); i++ {
		}
	})
}
