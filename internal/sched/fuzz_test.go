package sched

import (
	"errors"
	"testing"
)

// FuzzResume feeds arbitrary bytes to Resume: corrupted checkpoints must
// come back as wrapped ErrCheckpoint — never a panic — and anything that
// resumes must yield a working scheduler.
func FuzzResume(f *testing.F) {
	// Seed with real checkpoint bytes from a driven scheduler so the
	// fuzzer starts from the actual wire format.
	seed := journalSched(f, Conservative)
	driveJournalWorkload(f, seed)
	data, err := seed.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	empty := journalSched(f, FCFS)
	if data, err = empty.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"policy":"conservative","jobs":[{"id":1,"state":"running"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := journalSched(t, Conservative)
		resumed, err := Resume(s.tr, data, nil)
		if err != nil {
			if !errors.Is(err, ErrCheckpoint) {
				t.Fatalf("resume error does not wrap ErrCheckpoint: %v", err)
			}
			return
		}
		// A resumed scheduler must be drivable.
		resumed.Schedule()
		for i := 0; i < 64 && resumed.Step(); i++ {
		}
	})
}
