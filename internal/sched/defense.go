package sched

// This file implements the scheduler self-defense layer: the loop must
// survive hostile inputs, stuck work, and overload instead of crashing
// or stalling, because it is the long-running core a daemon stands on.
//
// Four defenses compose, all opt-in via WithDefense:
//
//   - panic isolation: every traverser match attempt (sequential,
//     speculative worker, incremental resolve) runs behind a recover()
//     fence that converts a panic into a typed ErrPoisoned failure for
//     that one job;
//   - poison-job quarantine: a job whose match panics, whose failed
//     attempt exceeds MatchDeadline, or which trips ConflictLimit
//     consecutive speculative-commit rollbacks is moved to
//     StateQuarantined — out of the pending queue, never retried — with
//     inspect/release APIs and journal records so quarantine survives a
//     crash (RecQuarantine/RecUnquarantine);
//   - cycle watchdog: a deadline on each scheduling cycle drives a
//     degradation ladder that sheds work one rung at a time (skip
//     backfill probes behind a blocked head → bound how many jobs a
//     cycle attempts → fall back to sequential matching) and re-arms —
//     steps back down — after RearmAfter consecutive healthy cycles;
//   - admission backpressure: SubmitPriority rejects with ErrOverload
//     once the pending queue crosses AdmitHigh, and keeps rejecting
//     until it drains to AdmitLow (hysteresis, so admission does not
//     flap at the watermark).
//
// Decision parity is the design invariant: a quarantined job must leave
// every other job's schedule untouched. Quarantine never sets the cycle
// loops' `blocked` flag and a poisoned attempt never commits capacity,
// so the queue walk behind a quarantined job sees exactly the
// environment of a run where that job never existed. The parity property
// test lives in internal/chaos.
//
// Hot-path discipline: with no defense configured (s.defense == nil)
// every match helper dispatches straight to the traverser — no deferred
// recover, no time.Now, no closure — so the zero-allocation benchmarks
// (BenchmarkSchedCycle, BenchmarkLODMatch) are unaffected.
//
// Known limitation, by design: the fence makes *injected* and
// entry-point panics safe (the traverser unlocks via defers and its
// match scratch resets per attempt). A panic thrown from deep inside a
// commit-mode walk after planner spans were written would leave partial
// claims; the fence still contains it to one job, but such a job should
// not be released from quarantine.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// Typed defense errors.
var (
	// ErrPoisoned marks a job failed by the defense layer: its match
	// attempt panicked, blew the per-attempt deadline, or exhausted the
	// conflict budget. The job is quarantined, not retried.
	ErrPoisoned = errors.New("sched: job poisoned")
	// ErrOverload rejects a submit while the pending queue is above the
	// admission watermarks.
	ErrOverload = errors.New("sched: submit queue overloaded")
	// ErrInvalidSpec rejects a structurally invalid or unknown-type
	// jobspec at submit, before it reaches the match kernel.
	ErrInvalidSpec = errors.New("sched: invalid jobspec")
	// ErrNotQuarantined reports a release/inspect call for a job that is
	// not quarantined.
	ErrNotQuarantined = errors.New("sched: job not quarantined")
)

// QuarantineReason records why a job was quarantined.
type QuarantineReason uint8

// Quarantine reasons.
const (
	QuarantineNone QuarantineReason = iota
	// QuarantinePanic: a match attempt panicked.
	QuarantinePanic
	// QuarantineDeadline: a failed match attempt exceeded MatchDeadline.
	QuarantineDeadline
	// QuarantineConflict: ConflictLimit consecutive speculative commits
	// rolled back with ErrConflict.
	QuarantineConflict
	// QuarantineManual: an operator called Quarantine directly.
	QuarantineManual
)

func (r QuarantineReason) String() string {
	switch r {
	case QuarantineNone:
		return "none"
	case QuarantinePanic:
		return "panic"
	case QuarantineDeadline:
		return "deadline"
	case QuarantineConflict:
		return "conflict"
	case QuarantineManual:
		return "manual"
	default:
		return "unknown"
	}
}

// parseQuarantineReason is the inverse of String, for checkpoint decode.
func parseQuarantineReason(s string) (QuarantineReason, error) {
	for _, r := range []QuarantineReason{QuarantineNone, QuarantinePanic,
		QuarantineDeadline, QuarantineConflict, QuarantineManual} {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown quarantine reason %q", s)
}

// Degradation ladder rungs, shed in order and re-armed in reverse.
const (
	ladderNormal       = 0 // full service
	ladderShedBackfill = 1 // skip backfill probes behind a blocked head
	ladderBoundedWake  = 2 // bound how many jobs a cycle attempts
	ladderSequential   = 3 // demote parallel matching to the sequential loop
)

// Defaults for DefenseConfig zero fields.
const (
	// DefaultRearmAfter is how many consecutive healthy cycles step the
	// ladder down one rung.
	DefaultRearmAfter = 4
	// DefaultBoundedWake is the per-cycle attempt cap at the
	// bounded-wake rung.
	DefaultBoundedWake = 32
)

// DefenseConfig parameterizes the self-defense layer. The zero value
// enables only the panic fences: every other defense is off until its
// knob is set.
type DefenseConfig struct {
	// MatchDeadline quarantines a job whose *failed* match attempt took
	// longer than this (0 = off). Slow successful attempts are allowed:
	// their allocation already committed, and aggregate slowness is the
	// cycle watchdog's job.
	MatchDeadline time.Duration
	// ConflictLimit quarantines a job after this many consecutive
	// speculative-commit ErrConflict rollbacks (0 = off).
	ConflictLimit int
	// CycleDeadline arms the cycle watchdog: a scheduling cycle running
	// longer than this climbs the degradation ladder one rung (0 = off).
	CycleDeadline time.Duration
	// RearmAfter is how many consecutive under-deadline cycles step the
	// ladder back down one rung (default DefaultRearmAfter).
	RearmAfter int
	// BoundedWake caps how many pending jobs a cycle attempts at the
	// bounded-wake rung (default DefaultBoundedWake).
	BoundedWake int
	// AdmitHigh is the pending-queue high watermark: submits are
	// rejected with ErrOverload at or above it (0 = no backpressure).
	AdmitHigh int
	// AdmitLow re-opens admission once the pending queue drains to this
	// depth (default AdmitHigh/2).
	AdmitLow int
}

// defenseState is the live defense machinery hanging off the scheduler.
type defenseState struct {
	cfg DefenseConfig
	// level is the current degradation-ladder rung; calm counts
	// consecutive healthy cycles toward stepping back down.
	level int
	calm  int
	// overloaded latches admission shut between AdmitHigh and AdmitLow.
	overloaded bool
	// hook, when set, observes every fenced match attempt before it
	// dispatches — the chaos harness's injection point for panics and
	// latency. Panics thrown from the hook are recovered by the fence.
	hook func(jobID int64)
}

// WithDefense enables the self-defense layer: panic fences around all
// match attempts, plus whichever quarantine/watchdog/admission defenses
// cfg switches on. Without this option the scheduler runs the raw
// zero-allocation match path.
func WithDefense(cfg DefenseConfig) SchedOption {
	return func(s *Scheduler) { s.defense = &defenseState{cfg: cfg} }
}

// SetMatchHook registers fn to observe every fenced match attempt (nil
// removes it). The hook runs on the matching goroutine before dispatch;
// a panic it throws is recovered by the fence and poisons that job —
// this is the chaos harness's injection point. Calling it on a scheduler
// built without WithDefense enables the fences with a zero config.
func (s *Scheduler) SetMatchHook(fn func(jobID int64)) {
	if s.defense == nil {
		s.defense = &defenseState{}
	}
	s.defense.hook = fn
}

// DefenseLevel returns the current degradation-ladder rung (0 = full
// service, 3 = sequential fallback).
func (s *Scheduler) DefenseLevel() int {
	if s.defense == nil {
		return 0
	}
	return s.defense.level
}

// Overloaded reports whether admission is currently latched shut.
func (s *Scheduler) Overloaded() bool {
	return s.defense != nil && s.defense.overloaded
}

// fencedMatch wraps one match attempt in the defense envelope: the chaos
// hook, a recover() fence converting panics into ErrPoisoned, and the
// per-attempt deadline on failure. It runs on whatever goroutine the
// attempt runs on (including speculation workers), so the fence contains
// worker panics that would otherwise kill the process.
func (s *Scheduler) fencedMatch(op matchOp, job *Job, at int64, ep *resgraph.Epoch) (alloc *traverser.Allocation, err error) {
	d := s.defense
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			s.poison(job, QuarantinePanic, fmt.Sprintf("match panicked: %v", r))
			alloc, err = nil, fmt.Errorf("%w: job %d: %s", ErrPoisoned, job.ID, job.QuarantineMsg)
		}
	}()
	if d.hook != nil {
		d.hook(job.ID)
	}
	alloc, err = s.rawMatch(op, job, at, ep)
	if err != nil && d.cfg.MatchDeadline > 0 {
		if el := time.Since(start); el > d.cfg.MatchDeadline {
			s.poison(job, QuarantineDeadline,
				fmt.Sprintf("failed match attempt took %v (deadline %v)",
					el.Round(time.Millisecond), d.cfg.MatchDeadline))
			err = fmt.Errorf("%w: job %d: %s", ErrPoisoned, job.ID, job.QuarantineMsg)
		}
	}
	return alloc, err
}

// poison marks a job for quarantine at its cycle position, staging the
// reason and message in the exported quarantine fields (the loop's
// quarantine lands in the same cycle). It is safe on speculation
// workers: each worker owns its job, and the cycle loop reads the flag
// only after the speculation barrier.
func (s *Scheduler) poison(job *Job, reason QuarantineReason, msg string) {
	job.poisoned = true
	job.Quarantine = reason
	job.QuarantineMsg = msg
	job.sigOK = false
}

// noteConflict charges one speculative-commit rollback against the job's
// conflict budget, poisoning it at the limit. Returns true when the job
// just became poisoned.
func (s *Scheduler) noteConflict(job *Job) bool {
	d := s.defense
	if d == nil || d.cfg.ConflictLimit <= 0 {
		return false
	}
	job.conflicts++
	if int(job.conflicts) < d.cfg.ConflictLimit {
		return false
	}
	s.poison(job, QuarantineConflict,
		fmt.Sprintf("%d consecutive speculative-commit conflicts", job.conflicts))
	return true
}

// quarantine moves a job into StateQuarantined: out of the pending queue
// and reservation table, journaled so the state survives a crash. The
// caller is responsible for the job's queue slot (cycle loops drop it;
// the manual API unqueues first).
func (s *Scheduler) quarantine(job *Job, reason QuarantineReason, msg string) {
	s.jrec(Rec{Kind: RecQuarantine, ID: job.ID, Retries: int(reason), Path: msg})
	delete(s.reserved, job.ID)
	job.State = StateQuarantined
	job.Quarantine = reason
	job.QuarantineMsg = msg
	job.Alloc = nil
	job.sigOK = false
	job.poisoned = false
	job.conflicts = 0
	s.stats.Quarantined++
}

// quarantinePoisoned quarantines a job flagged by the fence inside a
// cycle loop. The cycle's `blocked` flag is deliberately untouched and
// the job is not appended to the surviving queue: jobs behind it see
// exactly the schedule of a run where it never existed.
func (s *Scheduler) quarantinePoisoned(job *Job) {
	s.quarantine(job, job.Quarantine, job.QuarantineMsg)
}

// Quarantine manually quarantines a pending or reserved job (operator
// API; running jobs cannot be quarantined — cancel them first).
func (s *Scheduler) Quarantine(id int64, msg string) error {
	job := s.jobs[id]
	if job == nil {
		return fmt.Errorf("%w: %d", traverser.ErrUnknownJob, id)
	}
	s.jBegin()
	defer s.jEnd()
	switch job.State {
	case StateReserved:
		s.demote(job)
	case StatePending:
	default:
		return fmt.Errorf("sched: cannot quarantine job %d in state %s", id, job.State)
	}
	s.unqueue(job)
	if msg == "" {
		msg = "quarantined by operator"
	}
	s.quarantine(job, QuarantineManual, msg)
	return nil
}

// ReleaseQuarantined returns a quarantined job to the pending queue (it
// re-enters behind peers of its priority). The release is journaled, so
// it too survives a crash.
func (s *Scheduler) ReleaseQuarantined(id int64) error {
	job := s.jobs[id]
	if job == nil {
		return fmt.Errorf("%w: %d", traverser.ErrUnknownJob, id)
	}
	if job.State != StateQuarantined {
		return fmt.Errorf("%w: job %d is %s", ErrNotQuarantined, id, job.State)
	}
	if job.Spec == nil {
		return fmt.Errorf("%w: job %d has no jobspec to re-schedule", ErrNotQuarantined, id)
	}
	s.jBegin()
	defer s.jEnd()
	s.jrec(Rec{Kind: RecUnquarantine, ID: id})
	s.release(job)
	return nil
}

// release is the journal-free half of ReleaseQuarantined, shared with
// replay.
func (s *Scheduler) release(job *Job) {
	job.State = StatePending
	job.Quarantine = QuarantineNone
	job.QuarantineMsg = ""
	job.poisoned = false
	job.conflicts = 0
	s.enqueue(job)
}

// Quarantined returns the IDs of all quarantined jobs, sorted.
func (s *Scheduler) Quarantined() []int64 {
	var out []int64
	for id, j := range s.jobs {
		if j.State == StateQuarantined {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// admit applies admission backpressure before a submit: above AdmitHigh
// the gate latches shut and stays shut until the pending queue drains to
// AdmitLow.
func (s *Scheduler) admit() error {
	d := s.defense
	if d == nil || d.cfg.AdmitHigh <= 0 {
		return nil
	}
	low := d.cfg.AdmitLow
	if low <= 0 || low > d.cfg.AdmitHigh {
		low = d.cfg.AdmitHigh / 2
	}
	depth := len(s.pending)
	if d.overloaded {
		if depth > low {
			s.stats.OverloadRejects++
			return fmt.Errorf("%w: %d pending (admission resumes at %d)", ErrOverload, depth, low)
		}
		d.overloaded = false
	}
	if depth >= d.cfg.AdmitHigh {
		d.overloaded = true
		s.stats.OverloadRejects++
		return fmt.Errorf("%w: %d pending (high watermark %d)", ErrOverload, depth, d.cfg.AdmitHigh)
	}
	return nil
}

// observeCycle is the cycle watchdog, deferred from Schedule with the
// cycle's start time: an over-deadline cycle climbs the degradation
// ladder one rung; RearmAfter consecutive healthy cycles step back down
// one rung, so the ladder fully re-arms once pressure clears.
func (d *defenseState) observeCycle(start time.Time) {
	if time.Since(start) > d.cfg.CycleDeadline {
		if d.level < ladderSequential {
			d.level++
		}
		d.calm = 0
		return
	}
	if d.level == 0 {
		return
	}
	d.calm++
	need := d.cfg.RearmAfter
	if need <= 0 {
		need = DefaultRearmAfter
	}
	if d.calm >= need {
		d.level--
		d.calm = 0
	}
}

// Ladder accessors, consulted by the cycle loops. All are nil-safe and
// collapse to the undegraded answer without defense.

// cycleWorkers is the effective parallel-match worker count: the
// sequential-fallback rung forces 1.
func (s *Scheduler) cycleWorkers() int {
	if s.defense != nil && s.defense.level >= ladderSequential {
		return 1
	}
	return s.matchWorkers
}

// shedBackfill reports whether this cycle sheds backfill probes behind a
// blocked head (EASY/conservative degrade toward FCFS-like behavior).
func (s *Scheduler) shedBackfill() bool {
	return s.defense != nil && s.defense.level >= ladderShedBackfill
}

// attemptBound is the per-cycle attempt cap at the bounded-wake rung
// (0 = unbounded).
func (s *Scheduler) attemptBound() int {
	if s.defense == nil || s.defense.level < ladderBoundedWake {
		return 0
	}
	if s.defense.cfg.BoundedWake > 0 {
		return s.defense.cfg.BoundedWake
	}
	return DefaultBoundedWake
}

// planBound folds the bounded-wake cap into the configured queue depth
// for the full-requeue loops.
func (s *Scheduler) planBound() int {
	b := s.attemptBound()
	switch {
	case b == 0:
		return s.queueDepth
	case s.queueDepth == 0 || b < s.queueDepth:
		return b
	default:
		return s.queueDepth
	}
}
