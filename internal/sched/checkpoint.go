package sched

import (
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"fluxion/internal/jobspec"
	"fluxion/internal/traverser"
)

// ErrCheckpoint is wrapped by all scheduler checkpoint decode/resume
// errors.
var ErrCheckpoint = errors.New("sched: bad checkpoint")

// Checkpoint is the serializable scheduler state: clock, queue order, job
// lifecycle, and the pending resource-event timeline. Allocations are NOT
// part of it — they live in the resource graph and travel through the
// fluxion-level checkpoint; Resume reconnects them from the restored
// traverser. Completion events are likewise rebuilt from running jobs'
// end times.
type Checkpoint struct {
	Version    int               `json:"version"`
	Now        int64             `json:"now"`
	Cycles     int               `json:"cycles"`
	Policy     QueuePolicy       `json:"policy"`
	QueueDepth int               `json:"queue_depth,omitempty"`
	MaxRetries int               `json:"max_retries"`
	Requeues   int               `json:"requeues,omitempty"`
	LostCore   int64             `json:"lost_core_seconds,omitempty"`
	Jobs       []jobCheckpoint   `json:"jobs"`
	Pending    []int64           `json:"pending"` // queue order
	Events     []eventCheckpoint `json:"events,omitempty"`
}

type jobCheckpoint struct {
	ID       int64  `json:"id"`
	Submit   int64  `json:"submit"`
	Priority int    `json:"priority,omitempty"`
	State    string `json:"state"`
	StartAt  int64  `json:"start_at,omitempty"`
	EndAt    int64  `json:"end_at,omitempty"`
	Retries  int    `json:"retries,omitempty"`
	// Quarantine reason and message, present only for quarantined jobs.
	Quarantine    string `json:"quarantine,omitempty"`
	QuarantineMsg string `json:"quarantine_msg,omitempty"`
}

type eventCheckpoint struct {
	At   int64  `json:"at"`
	Kind string `json:"kind"`
	Path string `json:"path"`
}

// Checkpoint captures the scheduler's state for crash recovery. Pair it
// with the resource-level checkpoint taken at the same instant.
func (s *Scheduler) Checkpoint() ([]byte, error) {
	cp := Checkpoint{
		Version:    1,
		Now:        s.now,
		Cycles:     s.Cycles,
		Policy:     s.policy,
		QueueDepth: s.queueDepth,
		MaxRetries: s.maxRetries,
		Requeues:   s.requeues,
		LostCore:   s.lostCoreSec,
	}
	ids := make([]int64, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		j := s.jobs[id]
		jc := jobCheckpoint{
			ID: j.ID, Submit: j.Submit, Priority: j.Priority,
			State: j.State.String(), StartAt: j.StartAt, EndAt: j.EndAt,
			Retries: j.Retries,
		}
		if j.State == StateQuarantined {
			jc.Quarantine = j.Quarantine.String()
			jc.QuarantineMsg = j.QuarantineMsg
		}
		cp.Jobs = append(cp.Jobs, jc)
	}
	for _, j := range s.pending {
		cp.Pending = append(cp.Pending, j.ID)
	}
	// Persist the resource-event timeline in deterministic order;
	// completions are reconstructed from running jobs at Resume.
	evs := append(eventHeap(nil), s.events...)
	for evs.Len() > 0 {
		e := heap.Pop(&evs).(event)
		if e.kind == evComplete {
			continue
		}
		cp.Events = append(cp.Events, eventCheckpoint{At: e.at, Kind: e.kind.String(), Path: e.path})
	}
	return json.MarshalIndent(cp, "", "  ")
}

// Resume rebuilds a scheduler from a Checkpoint over a traverser that has
// already been restored (its allocations reinstalled, e.g. by
// fluxion.Restore). specs supplies the jobspec for every job that may
// still be scheduled (pending, reserved, or running); completed, failed,
// and unsatisfiable jobs resume without one. opts (e.g. WithIncremental,
// WithMatchWorkers) are applied on top of the checkpointed configuration.
func Resume(tr *traverser.Traverser, data []byte, specs map[int64]*jobspec.Jobspec, opts ...SchedOption) (*Scheduler, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	if cp.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpoint, cp.Version)
	}
	allOpts := append([]SchedOption{WithQueueDepth(cp.QueueDepth), WithMaxRetries(cp.MaxRetries)}, opts...)
	s, err := New(tr, cp.Policy, allOpts...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	// Blocking signatures and wakeup deltas are transient and were lost
	// with the process: force the first post-resume cycle to re-plan
	// everything, which is always decision-safe.
	s.wakeup.forceFullWake()
	s.now = cp.Now
	s.Cycles = cp.Cycles
	s.requeues = cp.Requeues
	s.lostCoreSec = cp.LostCore
	for _, jc := range cp.Jobs {
		state, err := parseJobState(jc.State)
		if err != nil {
			return nil, fmt.Errorf("%w: job %d: %v", ErrCheckpoint, jc.ID, err)
		}
		job := &Job{
			ID: jc.ID, Submit: jc.Submit, Priority: jc.Priority,
			State: state, StartAt: jc.StartAt, EndAt: jc.EndAt,
			Retries: jc.Retries, Spec: specs[jc.ID],
		}
		switch state {
		case StatePending, StateReserved, StateRunning, StateQuarantined:
			if job.Spec == nil {
				return nil, fmt.Errorf("%w: job %d (%s) has no jobspec", ErrCheckpoint, jc.ID, state)
			}
		}
		if state == StateQuarantined {
			// Quarantine metadata must round-trip so the release API
			// and inspection survive a restart. An absent reason (a
			// hand-edited document) decodes as manual.
			if jc.Quarantine == "" {
				job.Quarantine = QuarantineManual
			} else {
				reason, err := parseQuarantineReason(jc.Quarantine)
				if err != nil {
					return nil, fmt.Errorf("%w: job %d: %v", ErrCheckpoint, jc.ID, err)
				}
				job.Quarantine = reason
			}
			job.QuarantineMsg = jc.QuarantineMsg
		}
		switch state {
		case StateReserved, StateRunning:
			alloc, ok := tr.Info(jc.ID)
			if !ok {
				return nil, fmt.Errorf("%w: job %d (%s) has no restored allocation", ErrCheckpoint, jc.ID, state)
			}
			job.Alloc = alloc
			if state == StateReserved {
				s.reserved[jc.ID] = job
			} else {
				heap.Push(&s.events, event{at: job.EndAt, kind: evComplete, jobID: job.ID})
			}
		}
		s.jobs[jc.ID] = job
	}
	seen := make(map[int64]bool, len(cp.Pending))
	for _, id := range cp.Pending {
		job, ok := s.jobs[id]
		if !ok {
			return nil, fmt.Errorf("%w: pending queue references unknown job %d", ErrCheckpoint, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: pending queue lists job %d twice", ErrCheckpoint, id)
		}
		seen[id] = true
		// Only schedulable jobs may sit in the queue: an adversarial or
		// corrupted checkpoint must not resurrect quarantined (or
		// terminal) jobs into pending.
		switch job.State {
		case StatePending, StateReserved:
		default:
			return nil, fmt.Errorf("%w: pending queue references job %d in state %s",
				ErrCheckpoint, id, job.State)
		}
		s.pending = append(s.pending, job)
	}
	for _, ec := range cp.Events {
		var kind eventKind
		switch ec.Kind {
		case evNodeDown.String():
			kind = evNodeDown
		case evNodeUp.String():
			kind = evNodeUp
		default:
			return nil, fmt.Errorf("%w: unknown event kind %q", ErrCheckpoint, ec.Kind)
		}
		heap.Push(&s.events, event{at: ec.At, kind: kind, path: ec.Path})
	}
	return s, nil
}
