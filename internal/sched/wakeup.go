package sched

import (
	"sync"

	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// This file implements the wakeup index: the scheduler's inbox for
// capacity deltas published by the resource store (resgraph.Delta). Each
// scheduling cycle drains the inbox into a cyclePlan and tests every
// blocked job's signature (traverser.BlockSig) against the accumulated
// deltas — only intersecting jobs are re-attempted, the rest are skipped
// wholesale (see incremental.go).
//
// Delta handling is deliberately conservative:
//
//   - structural deltas (topology or status changes) void every standing
//     signature and reservation: everything wakes;
//   - the free list is bounded; on overflow the cycle degrades to a
//     structural-equivalent full wake rather than dropping deltas;
//   - claim deltas are ignored: new claims can never unblock a job, and
//     the cycle that created them already accounted for them in queue
//     order.

// maxFreeDeltas bounds the buffered free list. Beyond it the index
// degrades to a full wake, which is always sound.
const maxFreeDeltas = 512

// wakeupIndex buffers capacity deltas between scheduling cycles. publish
// is called synchronously from the resource store, possibly under graph
// locks and from match-worker goroutines, so it must stay lock-cheap and
// must not call back into the store.
type wakeupIndex struct {
	mu         sync.Mutex
	muted      bool
	structural bool
	frees      []resgraph.Delta
}

// publish is the resgraph.SetDeltaSink target.
func (w *wakeupIndex) publish(d resgraph.Delta) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.muted {
		// The scheduler's own cycle is running: its cancels and matches
		// are already ordered by the queue walk, so self-deltas carry no
		// wakeup information (and would otherwise cascade forever).
		return
	}
	switch d.Kind {
	case resgraph.DeltaStructural:
		w.structural = true
		w.frees = w.frees[:0]
	case resgraph.DeltaFree:
		if w.structural {
			return // already waking everything
		}
		if len(w.frees) >= maxFreeDeltas {
			w.structural = true
			w.frees = w.frees[:0]
			return
		}
		w.frees = append(w.frees, d)
	case resgraph.DeltaClaim:
		// Claims cannot unblock anyone.
	}
}

// forceFullWake marks the index structural so the next cycle re-attempts
// every job and re-plans every reservation (used after checkpoint resume,
// when signatures and buffered deltas were lost with the process).
func (w *wakeupIndex) forceFullWake() {
	w.mu.Lock()
	w.structural = true
	w.frees = w.frees[:0]
	w.mu.Unlock()
}

// mute toggles self-delta suppression around a scheduling cycle.
func (w *wakeupIndex) mute(on bool) {
	w.mu.Lock()
	w.muted = on
	w.mu.Unlock()
}

// drain moves the buffered deltas into plan and resets the index. Frees
// entirely in the past (To <= now) are dropped: capacity that is already
// gone again by `now` — or that was an on-schedule completion, whose
// time-based effect the signature's HintAt covers — cannot relieve an
// immediate attempt at `now`.
func (w *wakeupIndex) drain(now int64, plan *cyclePlan) {
	w.mu.Lock()
	defer w.mu.Unlock()
	plan.structural = w.structural
	plan.frees = plan.frees[:0]
	for _, f := range w.frees {
		if f.To > now {
			plan.frees = append(plan.frees, f)
		}
	}
	w.structural = false
	w.frees = w.frees[:0]
}

// cyclePlan is one cycle's drained delta view.
type cyclePlan struct {
	structural bool
	frees      []resgraph.Delta
}

// empty reports whether the plan carries no wake information at all.
func (p *cyclePlan) empty() bool {
	return !p.structural && len(p.frees) == 0
}

// wakes decides whether a blocked job must be re-attempted at `now`,
// decrementing the signature's shortfalls in place by the matching frees
// (accumulation across cycles: a shortfall relieved half now and half in
// a later cycle still wakes). Call it exactly once per job per cycle.
func (p *cyclePlan) wakes(sig *traverser.BlockSig, now int64) bool {
	if p.structural || !sig.Valid {
		return true
	}
	if now >= sig.HintAt {
		// The root-aggregate hint matured: the clock alone may now admit
		// the job (on-schedule completions shift the attempt window past
		// their spans without changing future availability, so no free
		// survives drain to signal them). HintAt == At means the hint had
		// no discriminating power — the job then attempts every cycle.
		return true
	}
	if len(p.frees) == 0 {
		return false
	}
	if sig.Overflow || sig.WakeAnyFree {
		return true
	}
	woken := false
	for _, f := range p.frees {
		// The attempt window at `now` is [now, now+d(now)); d(now) <=
		// d(At) for deadline-clamped durations, so testing against the
		// captured Dur only widens the overlap — sound side.
		if f.From >= now+sig.Dur {
			continue
		}
		for i := range sig.Reasons {
			r := &sig.Reasons[i]
			if r.Shortfall <= 0 {
				continue
			}
			if f.TypeID != r.TypeID && r.TypeID != traverser.AnyType {
				continue
			}
			if f.TreeIn < r.TreeOut && r.TreeIn < f.TreeOut {
				r.Shortfall -= f.Amount
				if r.Shortfall <= 0 {
					woken = true
				}
			}
		}
	}
	return woken
}

// invalidates decides whether a standing reservation must be dropped and
// re-planned: any structural change, or any free overlapping the
// reservation's window — earlier-starting capacity may now admit the job
// sooner, and conservatively re-planning is always sound. Frees are not
// type-filtered: shared structural grants (racks, switches) consumed by
// the reservation are not in the jobspec's totals.
func (p *cyclePlan) invalidates(job *Job, now int64) bool {
	if p.structural || job.Alloc == nil {
		return true
	}
	if job.Alloc.At < now {
		// The reservation's start slipped into the past without maturing
		// (clock advanced past it): force a re-plan.
		return true
	}
	resEnd := job.Alloc.At + job.Alloc.Duration
	for _, f := range p.frees {
		if f.From < resEnd {
			return true
		}
	}
	return false
}
