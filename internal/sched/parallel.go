package sched

import (
	"fmt"
	"sync"
	"time"

	"fluxion/internal/traverser"
)

// This file implements the parallel match pipeline: each scheduling cycle,
// batches of pending jobs are speculatively matched against a read
// snapshot by a pool of traverser workers, then their allocations are
// committed strictly in queue order (priority, then submit/job order).
//
// The determinism contract is the commit stage, not the speculation stage:
// whatever the workers race to find, a job's allocation is only accepted
// in its queue position and only if the queue policy would have admitted
// the job there (FCFS stops at the first failure, EASY backfills only
// immediate fits behind the reserved head, Conservative reserves
// everything). A speculation that lost its capacity to an earlier commit
// fails Commit with ErrConflict and the job falls back to the sequential
// match path at its queue position, so the scheduling decisions — which
// jobs start, which block, which reserve — match the policy exactly.
// Vertex placement may differ from a sequential run (speculators steer
// around each other's claims), but every placement is validated against
// committed planner state before it becomes visible.

// scheduleParallel plans the pending queue with a pool of speculative
// match workers, committing in queue order.
func (s *Scheduler) scheduleParallel() {
	// Classify the queue: jobs this cycle plans (in order) vs. jobs kept
	// pending untouched. keep preserves the original queue order for
	// everything that remains pending after the cycle.
	keep := make([]bool, len(s.pending))
	var work []*Job
	var workIdx []int
	planned := 0
	depth := s.planBound()
	for i, job := range s.pending {
		if job.State != StatePending {
			continue
		}
		if depth > 0 && planned >= depth {
			keep[i] = true
			continue
		}
		planned++
		work = append(work, job)
		workIdx = append(workIdx, i)
	}

	blocked := false // FCFS: stop at first failure; EASY: head reserved
	for off := 0; off < len(work); off += s.matchWorkers {
		end := off + s.matchWorkers
		if end > len(work) {
			end = len(work)
		}
		batch := work[off:end]
		if blocked && (s.policy == FCFS || s.shedBackfill()) {
			// Nothing behind a blocked FCFS head can start (and the shed
			// rung skips backfill probes); skip the speculation
			// round-trip entirely.
			for i := range batch {
				keep[workIdx[off+i]] = true
			}
			continue
		}
		specs := s.speculateBatch(batch)
		for i, job := range batch {
			spec := specs[i]
			if job.poisoned {
				// A worker's fence caught a panic (or deadline) for this
				// job: quarantine it without touching `blocked`, so jobs
				// behind see the schedule of a run without it.
				if spec != nil {
					s.tr.Abandon(spec)
				}
				s.quarantinePoisoned(job)
				continue
			}
			if blocked && (s.policy == FCFS || s.shedBackfill()) {
				if spec != nil {
					s.tr.Abandon(spec)
				}
				keep[workIdx[off+i]] = true
				continue
			}
			start := time.Now()
			alloc, err := s.commitOrFallback(job, spec, blocked)
			job.MatchDuration += time.Since(start)
			switch {
			case job.poisoned:
				// Poisoned during the fallback match or by the conflict
				// budget.
				s.quarantinePoisoned(job)
			case err != nil:
				blocked = true
				keep[workIdx[off+i]] = true
			case alloc.Reserved:
				s.reserve(job, alloc)
				blocked = true
				keep[workIdx[off+i]] = true
			default:
				s.start(job, alloc)
			}
		}
	}

	still := s.pending[:0]
	for i, job := range s.pending {
		if keep[i] {
			still = append(still, job)
		}
	}
	s.pending = still
}

// speculateBatch fans one batch out across the worker pool. The batch
// pins the graph's current MVCC epoch once; each worker speculatively
// matches its job at the current time against that immutable snapshot
// with no synchronization at all. Failed speculations are nil. Per-job
// match time is charged to MatchDuration after the barrier.
func (s *Scheduler) speculateBatch(batch []*Job) []*traverser.Allocation {
	specs := make([]*traverser.Allocation, len(batch))
	durs := make([]time.Duration, len(batch))
	ep := s.tr.PinEpoch()
	var wg sync.WaitGroup
	for i, job := range batch {
		wg.Add(1)
		go func(i int, job *Job) {
			defer wg.Done()
			start := time.Now()
			if a, err := s.matchSpeculate(job, s.now, ep); err == nil {
				specs[i] = a
			}
			durs[i] = time.Since(start)
		}(i, job)
	}
	wg.Wait()
	s.stats.MatchAttempts += int64(len(batch))
	for i, job := range batch {
		job.MatchDuration += durs[i]
	}
	return specs
}

// commitOrFallback turns a job's speculation into a committed allocation,
// or re-matches it sequentially under the queue-policy rules for its
// position (blocked carries the FCFS/EASY head state).
func (s *Scheduler) commitOrFallback(job *Job, spec *traverser.Allocation, blocked bool) (*traverser.Allocation, error) {
	if spec != nil {
		if err := s.tr.Commit(spec); err == nil {
			job.conflicts = 0
			return spec, nil
		}
		// Conflict: an earlier commit took the capacity. Fall through to
		// a fresh match at this queue position. (Commit consumed the
		// speculation's claims.)
		if s.noteConflict(job) {
			return nil, fmt.Errorf("%w: job %d: %s", ErrPoisoned, job.ID, job.QuarantineMsg)
		}
	}
	switch {
	case s.policy == FCFS:
		if blocked {
			return nil, traverser.ErrNoMatch
		}
		return s.matchAllocate(job, s.now)
	case blocked && s.shedBackfill():
		return nil, traverser.ErrNoMatch
	case s.policy == EASY && blocked:
		return s.matchAllocate(job, s.now)
	default: // Conservative always; EASY head
		return s.matchAllocateOrReserve(job, s.now)
	}
}
