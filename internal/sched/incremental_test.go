package sched

import (
	"math/rand"
	"sync"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// newSchedOpts builds a scheduler over a racks×nodes×cores system with
// arbitrary options.
func newSchedOpts(t testing.TB, policy QueuePolicy, racks, nodes, cores int64, opts ...SchedOption) *Scheduler {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(racks, nodes, cores, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, policy, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// arrival is one workload entry for the randomized parity driver.
type arrival struct {
	at       int64
	id       int64
	priority int
	spec     *jobspec.Jobspec
}

// randomWorkload generates a reproducible arrival sequence: mixed node
// and core requests, staggered arrival times, and occasional priority
// jumps (which insert ahead of standing reservations).
func randomWorkload(seed int64, n int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	out := make([]arrival, 0, n)
	at := int64(0)
	for i := 0; i < n; i++ {
		at += rng.Int63n(40)
		nodes := 1 + rng.Int63n(3)
		cores := int64(4)
		if rng.Intn(3) == 0 {
			cores = 1 + rng.Int63n(4) // fragmenting core-level requests
		}
		dur := 20 + rng.Int63n(150)
		prio := 0
		if rng.Intn(5) == 0 {
			prio = 1 + rng.Intn(3)
		}
		out = append(out, arrival{
			at: at, id: int64(i + 1), priority: prio,
			spec: nodeJob(nodes, cores, dur),
		})
	}
	return out
}

// drive replays an arrival sequence through the scheduler: events fire in
// order, each arrival triggers a scheduling cycle, and the run drains.
func drive(t *testing.T, s *Scheduler, work []arrival) {
	t.Helper()
	s.Schedule()
	for _, a := range work {
		for s.HasEvents() && s.NextEventAt() <= a.at {
			s.Step()
		}
		if err := s.AdvanceTo(a.at); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitPriority(a.id, a.spec, a.priority); err != nil {
			t.Fatal(err)
		}
		s.Schedule()
	}
	s.Run(0)
}

// TestIncrementalMatchesFullDecisions is the decision-parity property
// test: random workloads run through the incremental engine must produce
// identical per-job decisions (state, start, end) to the sequential
// full-requeue loop, for every policy, both sequentially and with match
// workers. The sequential full loop is the reference even for the
// parallel runs: the parallel pipeline's own placements may drift from
// sequential across cycles (speculators steer around each other — see
// parallel.go), so full-parallel start times are not canonical, while the
// incremental engine's sparse attempt batches reproduce the sequential
// placements exactly.
func TestIncrementalMatchesFullDecisions(t *testing.T) {
	for _, policy := range []QueuePolicy{FCFS, EASY, Conservative} {
		for seed := int64(1); seed <= 5; seed++ {
			full := newSchedOpts(t, policy, 1, 4, 4, WithIncremental(false))
			drive(t, full, randomWorkload(seed, 40))
			for _, workers := range []int{1, 3} {
				inc := newSchedOpts(t, policy, 1, 4, 4,
					WithIncremental(true), WithMatchWorkers(workers))
				drive(t, inc, randomWorkload(seed, 40))

				for id, fj := range full.Jobs() {
					ij, ok := inc.Job(id)
					if !ok {
						t.Fatalf("%s/w%d/seed%d: job %d missing", policy, workers, seed, id)
					}
					if fj.State != ij.State || fj.StartAt != ij.StartAt || fj.EndAt != ij.EndAt {
						t.Errorf("%s/w%d/seed%d: job %d diverged: full %v@[%d,%d] vs inc %v@[%d,%d]",
							policy, workers, seed, id,
							fj.State, fj.StartAt, fj.EndAt, ij.State, ij.StartAt, ij.EndAt)
					}
				}
				if full.Now() != inc.Now() {
					t.Errorf("%s/w%d/seed%d: makespan diverged: %d vs %d",
						policy, workers, seed, full.Now(), inc.Now())
				}
				if t.Failed() {
					return
				}
			}
		}
	}
}

// TestIncrementalParityUnderFaults repeats the parity check with a
// node-down/node-up drill interleaved into the timeline (structural
// deltas must wake everything both modes would re-plan).
func TestIncrementalParityUnderFaults(t *testing.T) {
	for _, policy := range []QueuePolicy{FCFS, EASY, Conservative} {
		for seed := int64(1); seed <= 3; seed++ {
			run := func(incremental bool) *Scheduler {
				s := newSchedOpts(t, policy, 1, 4, 4, WithIncremental(incremental))
				node := s.tr.Graph().ByType("node")[1].Path()
				if err := s.ScheduleNodeDown(60, node); err != nil {
					t.Fatal(err)
				}
				if err := s.ScheduleNodeUp(200, node); err != nil {
					t.Fatal(err)
				}
				drive(t, s, randomWorkload(seed, 30))
				return s
			}
			full := run(false)
			inc := run(true)
			for id, fj := range full.Jobs() {
				ij, _ := inc.Job(id)
				if ij == nil || fj.State != ij.State || fj.StartAt != ij.StartAt || fj.EndAt != ij.EndAt {
					t.Fatalf("%s/seed%d: job %d diverged under faults", policy, seed, id)
				}
			}
		}
	}
}

// TestIncrementalMatchAttemptReduction is the headline perf property: on
// a deep conservative queue the incremental engine must do at least 5×
// fewer match attempts than full requeue, with identical decisions.
func TestIncrementalMatchAttemptReduction(t *testing.T) {
	const pendingJobs = 520
	run := func(incremental bool) *Scheduler {
		s := newSchedOpts(t, Conservative, 1, 8, 4, WithIncremental(incremental))
		for i := int64(1); i <= pendingJobs; i++ {
			mustSubmit(t, s, i, nodeJob(1, 4, 100))
		}
		s.Run(0)
		return s
	}
	full := run(false)
	inc := run(true)

	for id, fj := range full.Jobs() {
		ij, _ := inc.Job(id)
		if ij == nil || fj.State != ij.State || fj.StartAt != ij.StartAt || fj.EndAt != ij.EndAt {
			t.Fatalf("deep queue: job %d diverged", id)
		}
	}
	fa, ia := full.Stats().MatchAttempts, inc.Stats().MatchAttempts
	if ia == 0 || fa < 5*ia {
		t.Fatalf("incremental saved too little: full=%d incremental=%d (want >= 5x)", fa, ia)
	}
	if inc.Stats().SkippedJobs == 0 {
		t.Fatal("no jobs were skipped on a deep queue")
	}
	t.Logf("attempts: full=%d incremental=%d (%.1fx), woken=%d skipped=%d",
		fa, ia, float64(fa)/float64(ia), inc.Stats().WokenJobs, inc.Stats().SkippedJobs)
}

// TestIncrementalEASYSkipsBackfill checks the EASY steady state: blocked
// backfill candidates are signature-skipped instead of re-matched.
func TestIncrementalEASYSkipsBackfill(t *testing.T) {
	s := newSchedOpts(t, EASY, 1, 2, 4)
	mustSubmit(t, s, 1, nodeJob(2, 4, 100)) // fills the system
	mustSubmit(t, s, 2, nodeJob(2, 4, 100)) // head: reserves at 100
	mustSubmit(t, s, 3, nodeJob(2, 4, 100)) // blocked backfill candidate
	mustSubmit(t, s, 4, nodeJob(2, 4, 100)) // blocked backfill candidate
	s.Schedule()
	base := s.Stats()
	// An empty-delta cycle must re-attempt nothing: the head reservation
	// is carried, the backfill candidates are signature-skipped.
	s.Schedule()
	st := s.Stats()
	if got := st.MatchAttempts - base.MatchAttempts; got != 0 {
		t.Fatalf("idle cycle did %d match attempts", got)
	}
	if st.SkippedJobs <= base.SkippedJobs {
		t.Fatal("idle cycle skipped nothing")
	}
	if done := s.Run(0); done != 4 {
		t.Fatalf("completed = %d", done)
	}
}

// TestIncrementalPlannerInvariants runs a workload under the incremental
// engine and validates every vertex planner and pruning filter afterward.
func TestIncrementalPlannerInvariants(t *testing.T) {
	s := newSchedOpts(t, Conservative, 2, 4, 4)
	drive(t, s, randomWorkload(7, 60))
	g := s.tr.Graph()
	for _, v := range g.Vertices() {
		if p := v.Planner(); p != nil {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("vertex %s planner: %v", v.Path(), err)
			}
		}
		if f := v.Filter(); f != nil {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("vertex %s filter: %v", v.Path(), err)
			}
		}
	}
}

// TestIncrementalDeltaPublicationRace hammers the wakeup index from
// concurrent publishers while the scheduler runs cycles; run with -race.
// Spurious deltas are always sound (they can only cause extra wakes), so
// the assertion is just completion plus data-race freedom.
func TestIncrementalDeltaPublicationRace(t *testing.T) {
	s := newSchedOpts(t, EASY, 1, 4, 4)
	g := s.tr.Graph()
	nodes := g.ByType("node")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := nodes[(i+w)%len(nodes)]
				switch i % 3 {
				case 0:
					g.PublishSpanDelta(resgraph.DeltaFree, v, 1, int64(i), int64(i+100))
				case 1:
					g.PublishSpanDelta(resgraph.DeltaClaim, v, 1, int64(i), int64(i+100))
				default:
					g.PublishSpanDelta(resgraph.DeltaFree, v, 2, int64(i+50), int64(i+200))
				}
				i++
			}
		}(w)
	}
	for i := int64(1); i <= 40; i++ {
		mustSubmit(t, s, i, nodeJob(1+i%3, 4, 30+(i%5)*20))
	}
	done := s.Run(0)
	close(stop)
	wg.Wait()
	if done != 40 {
		t.Fatalf("completed = %d", done)
	}
}

// TestIncrementalCheckpointResume verifies a checkpoint taken mid-run
// resumes under the incremental engine: the first post-resume cycle
// re-plans everything (signatures are transient) and the run completes.
func TestIncrementalCheckpointResume(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4)
	specs := map[int64]*jobspec.Jobspec{}
	for i := int64(1); i <= 6; i++ {
		sp := nodeJob(1+i%2, 4, 50)
		specs[i] = sp
		mustSubmit(t, s, i, sp)
	}
	s.Schedule()
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the scheduler over the same (still-live) traverser, as a
	// crash-recovery drill would over a restored one.
	r, err := Resume(s.tr, data, specs, WithIncremental(true))
	if err != nil {
		t.Fatal(err)
	}
	if done := r.Run(0); done != 6 {
		t.Fatalf("completed = %d", done)
	}
	if r.Stats().MatchAttempts == 0 {
		t.Fatal("post-resume run did no matching")
	}
}

// TestWithIncrementalOffRestoresFullLoop sanity-checks the escape hatch:
// the full loop re-matches the whole queue every cycle.
func TestWithIncrementalOffRestoresFullLoop(t *testing.T) {
	s := newSchedOpts(t, Conservative, 1, 2, 4, WithIncremental(false))
	mustSubmit(t, s, 1, nodeJob(2, 4, 100))
	mustSubmit(t, s, 2, nodeJob(2, 4, 100))
	s.Schedule()
	before := s.Stats().MatchAttempts
	s.Schedule()
	if got := s.Stats().MatchAttempts - before; got == 0 {
		t.Fatal("full loop did not re-match on an idle cycle")
	}
	if s.Stats().SkippedJobs != 0 {
		t.Fatal("full loop should never skip")
	}
}

// TestStatsCycles checks the cycle counter mirrors Cycles.
func TestStatsCycles(t *testing.T) {
	s := newSchedOpts(t, FCFS, 1, 1, 1)
	s.Schedule()
	s.Schedule()
	if st := s.Stats(); st.Cycles != 2 || int(st.Cycles) != s.Cycles {
		t.Fatalf("stats = %+v, Cycles = %d", st, s.Cycles)
	}
}
