package sched

import (
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// newSchedWorkers is newSched with a match-worker count.
func newSchedWorkers(t *testing.T, policy QueuePolicy, racks, nodes, cores int64, workers int) *Scheduler {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(racks, nodes, cores, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, policy, WithMatchWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runWorkload submits a fixed mixed workload and drains the event loop,
// returning the scheduler for inspection. Arrival pattern: a node-hogging
// head job, mid-size followers, and small backfill candidates.
func runWorkload(t *testing.T, s *Scheduler) {
	t.Helper()
	id := int64(1)
	submit := func(nodes, dur int64) {
		mustSubmit(t, s, id, nodeJob(nodes, 4, dur))
		id++
	}
	submit(4, 100) // fills the system
	submit(4, 100) // must wait for everything
	submit(2, 40)  // EASY/Conservative backfill candidates
	submit(1, 30)
	submit(1, 200)
	submit(2, 60)
	s.Run(0)
}

// TestParallelMatchesSequentialDecisions runs the same workload through
// the sequential loop and the parallel pipeline at several worker counts
// and asserts the scheduling decisions — per-job start and end times —
// are identical for every queue policy. (Vertex placement may differ; the
// decision timeline must not.)
func TestParallelMatchesSequentialDecisions(t *testing.T) {
	for _, policy := range []QueuePolicy{FCFS, EASY, Conservative} {
		seq := newSchedWorkers(t, policy, 1, 4, 4, 1)
		runWorkload(t, seq)
		for _, workers := range []int{2, 4} {
			par := newSchedWorkers(t, policy, 1, 4, 4, workers)
			runWorkload(t, par)
			for id, sj := range seq.Jobs() {
				pj, ok := par.Job(id)
				if !ok {
					t.Fatalf("%s/%d workers: job %d missing", policy, workers, id)
				}
				if sj.State != pj.State || sj.StartAt != pj.StartAt || sj.EndAt != pj.EndAt {
					t.Errorf("%s/%d workers: job %d diverged: %v@[%d,%d] vs %v@[%d,%d]",
						policy, workers, id,
						sj.State, sj.StartAt, sj.EndAt, pj.State, pj.StartAt, pj.EndAt)
				}
			}
		}
	}
}

// TestParallelQueueDepth verifies the queue-depth bound and pending-order
// preservation survive the parallel path: jobs beyond the depth stay
// pending in their original order.
func TestParallelQueueDepth(t *testing.T) {
	g, err := grug.BuildGraph(grug.Small(1, 2, 4, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, Conservative, WithQueueDepth(2), WithMatchWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 fills the system; 2 reserves; 3 and 4 are beyond the depth.
	for id := int64(1); id <= 4; id++ {
		mustSubmit(t, s, id, nodeJob(2, 4, 100))
	}
	s.Schedule()
	if j, _ := s.Job(1); j.State != StateRunning {
		t.Fatalf("job 1: %v", j.State)
	}
	if j, _ := s.Job(2); j.State != StateReserved {
		t.Fatalf("job 2: %v", j.State)
	}
	for id := int64(3); id <= 4; id++ {
		if j, _ := s.Job(id); j.State != StatePending {
			t.Fatalf("job %d: %v", id, j.State)
		}
	}
	// Pending order must be preserved: 2 (reserved head), then 3, 4.
	want := []int64{2, 3, 4}
	if len(s.pending) != len(want) {
		t.Fatalf("pending len %d, want %d", len(s.pending), len(want))
	}
	for i, id := range want {
		if s.pending[i].ID != id {
			t.Fatalf("pending[%d] = %d, want %d", i, s.pending[i].ID, id)
		}
	}
}

// TestParallelFCFSBlocks verifies FCFS semantics under the parallel
// pipeline: nothing behind the first non-fitting job may start, even when
// a speculation for it succeeded.
func TestParallelFCFSBlocks(t *testing.T) {
	s := newSchedWorkers(t, FCFS, 1, 2, 4, 4)
	mustSubmit(t, s, 1, nodeJob(1, 4, 100)) // takes one of two nodes
	mustSubmit(t, s, 2, nodeJob(2, 4, 10))  // needs both -> blocks
	mustSubmit(t, s, 3, nodeJob(1, 4, 10))  // fits the free node, must NOT start
	s.Schedule()
	if j, _ := s.Job(1); j.State != StateRunning {
		t.Fatalf("job 1: %v", j.State)
	}
	if j, _ := s.Job(2); j.State != StatePending {
		t.Fatalf("job 2: %v", j.State)
	}
	if j, _ := s.Job(3); j.State != StatePending {
		t.Fatalf("job 3: %v", j.State)
	}
}
