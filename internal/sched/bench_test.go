package sched

import (
	"fmt"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// BenchmarkSchedCycle measures the steady-state cost of one scheduling
// cycle over a deep conservative queue: 8 nodes, N single-node jobs, all
// but 8 blocked behind standing reservations. This is the tentpole
// incremental-scheduling scenario — with full requeue every cycle cancels
// and re-plans all N reservations (O(pending × match)); the incremental
// engine carries them over and skips the blocked tail on their blocking
// signatures (O(woken × match), zero matches on an idle cycle).
func BenchmarkSchedCycle(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		for _, mode := range []struct {
			name        string
			incremental bool
		}{{"full", false}, {"incr", true}} {
			b.Run(fmt.Sprintf("%s-%d", mode.name, n), func(b *testing.B) {
				g, err := grug.BuildGraph(grug.Small(1, 8, 4, 0, 0), 0, 1<<40,
					resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
				if err != nil {
					b.Fatal(err)
				}
				tr, err := traverser.New(g, match.First{})
				if err != nil {
					b.Fatal(err)
				}
				s, err := New(tr, Conservative, WithIncremental(mode.incremental))
				if err != nil {
					b.Fatal(err)
				}
				spec := nodeJob(1, 4, 100)
				for i := 1; i <= n; i++ {
					if _, err := s.Submit(int64(i), spec); err != nil {
						b.Fatal(err)
					}
				}
				s.Schedule() // initial plan: 8 running, n-8 reserved
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Schedule()
				}
			})
		}
	}
}
