package sched

import (
	"runtime"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// benchSettleHeap returns the live heap after forcing collection twice.
func benchSettleHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// BenchmarkSchedMemory measures the resting memory cost of one pending
// job in a deep conservative backlog: heap growth across submitting and
// planning 4096 single-node jobs on an 8-node system (8 run, the rest
// hold standing reservations), divided by the queue depth. The bytes/job
// metric is gated raw by benchdiff, like allocs/op, so a regression in
// the job, reservation, or wakeup-index footprint fails CI even when
// cycle latency stays flat.
func BenchmarkSchedMemory(b *testing.B) {
	const jobs = 4096
	b.Run("pending4096", func(b *testing.B) {
		var bytesPerJob float64
		for i := 0; i < b.N; i++ {
			g, err := grug.BuildGraph(grug.Small(1, 8, 4, 0, 0), 0, 1<<40,
				resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := traverser.New(g, match.First{})
			if err != nil {
				b.Fatal(err)
			}
			s, err := New(tr, Conservative, WithIncremental(true))
			if err != nil {
				b.Fatal(err)
			}
			heap0 := benchSettleHeap()
			spec := nodeJob(1, 4, 100)
			for j := 1; j <= jobs; j++ {
				if _, err := s.Submit(int64(j), spec); err != nil {
					b.Fatal(err)
				}
			}
			s.Schedule()
			heap1 := benchSettleHeap()
			bytesPerJob = float64(heap1-heap0) / float64(jobs)
			runtime.KeepAlive(s)
		}
		b.ReportMetric(bytesPerJob, "bytes/job")
	})
}
