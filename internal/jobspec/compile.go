package jobspec

import (
	"fmt"
	"sort"

	"fluxion/internal/intern"
)

// This file implements the jobspec compilation pass feeding Fluxion's
// zero-allocation match kernel. Compile flattens the request tree into
// an immutable array form with resource types interned as dense IDs
// (shared with the resource graph's type table) and the per-instance
// aggregate needs of every request vertex precomputed, so the matcher
// never rebuilds string-keyed maps while traversing.

// TypeCount pairs a resource type — both its name and its interned
// ID — with a unit count.
type TypeCount struct {
	Type  string
	ID    int32
	Units int64
}

// CNode is one flattened request vertex of a compiled jobspec. Nodes
// reference their children by index into the compiled node array.
type CNode struct {
	// Type and TypeID name the requested resource type (TypeID is the
	// interned form; slots intern the Slot pseudo type).
	Type   string
	TypeID int32
	// Count is the requested unit count per parent instance; Min is the
	// resolved smallest acceptable count (MinCount: Min for moldable
	// requests, Count for rigid ones).
	Count, Min int64
	// Exclusive marks whole-vertex exclusive allocation.
	Exclusive bool
	// IsSlot marks the task-container pseudo vertex.
	IsSlot bool
	// With indexes the nested requests in the node array.
	With []int32
	// Needs is the aggregate units per type one instance of this request
	// requires (the matcher's pruning bound), sorted by type name.
	Needs []TypeCount
}

// Compiled is the matcher-ready form of a validated Jobspec: the
// request tree flattened into nodes, plus the whole request's total
// counts. A Compiled is immutable after Compile and safe for concurrent
// use; callers must not modify the slices its accessors return. It
// remembers the intern table it was compiled against so a traverser can
// reject specs compiled for a different graph.
type Compiled struct {
	spec   *Jobspec
	table  *intern.Table
	nodes  []CNode
	roots  []int32
	totals []TypeCount
}

// Compile validates js and flattens it against the given intern table
// (typically Graph.Types() of the graph it will be matched on). The
// jobspec must not be mutated afterwards; compile again after any
// change.
func Compile(js *Jobspec, tab *intern.Table) (*Compiled, error) {
	if tab == nil {
		return nil, fmt.Errorf("%w: compile requires an intern table", ErrInvalid)
	}
	if err := js.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{spec: js, table: tab}
	c.roots = make([]int32, 0, len(js.Resources))
	for _, r := range js.Resources {
		c.roots = append(c.roots, c.flatten(r, tab))
	}
	for i := range c.nodes {
		c.nodes[i].Needs = compileNeeds(&c.nodes[i], c.nodes)
	}
	c.totals = internCounts(js.TotalCounts(), tab)
	return c, nil
}

// flatten appends r's subtree to c.nodes in pre-order and returns r's
// node index.
func (c *Compiled) flatten(r *Resource, tab *intern.Table) int32 {
	idx := int32(len(c.nodes))
	c.nodes = append(c.nodes, CNode{
		Type:      r.Type,
		TypeID:    tab.ID(r.Type),
		Count:     r.Count,
		Min:       r.MinCount(),
		Exclusive: r.Exclusive,
		IsSlot:    r.Type == Slot,
	})
	if len(r.With) > 0 {
		with := make([]int32, 0, len(r.With))
		for _, child := range r.With {
			with = append(with, c.flatten(child, tab))
		}
		c.nodes[idx].With = with
	}
	return idx
}

// compileNeeds computes one request instance's aggregate needs per type
// — the same quantity the interpreted matcher derived per candidate
// with instanceNeeds: one unit of the node's own type (or the nested
// shape for slots) plus the subtree multiplied down at minimum counts.
func compileNeeds(n *CNode, nodes []CNode) []TypeCount {
	agg := make(map[int32]*TypeCount)
	add := func(x *CNode, units int64) {
		tc := agg[x.TypeID]
		if tc == nil {
			tc = &TypeCount{Type: x.Type, ID: x.TypeID}
			agg[x.TypeID] = tc
		}
		tc.Units += units
	}
	var walk func(x *CNode, mult int64)
	walk = func(x *CNode, mult int64) {
		units := mult * x.Min
		if !x.IsSlot {
			add(x, units)
		}
		for _, ci := range x.With {
			walk(&nodes[ci], units)
		}
	}
	if n.IsSlot {
		for _, ci := range n.With {
			walk(&nodes[ci], 1)
		}
	} else {
		add(n, 1)
		for _, ci := range n.With {
			walk(&nodes[ci], 1)
		}
	}
	out := make([]TypeCount, 0, len(agg))
	for _, tc := range agg {
		out = append(out, *tc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// internCounts converts a type->units map into a sorted TypeCount
// slice.
func internCounts(counts map[string]int64, tab *intern.Table) []TypeCount {
	out := make([]TypeCount, 0, len(counts))
	for rt, n := range counts {
		out = append(out, TypeCount{Type: rt, ID: tab.ID(rt), Units: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// Spec returns the source jobspec.
func (c *Compiled) Spec() *Jobspec { return c.spec }

// Table returns the intern table the spec was compiled against.
func (c *Compiled) Table() *intern.Table { return c.table }

// Nodes returns the flattened request vertices. The slice is live; do
// not modify.
func (c *Compiled) Nodes() []CNode { return c.nodes }

// Roots returns the indexes of the top-level requests in Nodes.
func (c *Compiled) Roots() []int32 { return c.roots }

// Totals returns the whole request's aggregate units per type at
// minimum counts (TotalCounts interned), sorted by type name. The slice
// is live; do not modify.
func (c *Compiled) Totals() []TypeCount { return c.totals }
