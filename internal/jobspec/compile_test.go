package jobspec

import (
	"errors"
	"reflect"
	"testing"

	"fluxion/internal/intern"
)

func TestCompileFlattening(t *testing.T) {
	tab := intern.NewTable()
	js := New(3600, R("node", 2, SlotR(3, R("core", 4), R("memory", 8))))
	c, err := Compile(js, tab)
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec() != js || c.Table() != tab {
		t.Fatal("Spec/Table accessors do not round-trip")
	}
	nodes := c.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("len(nodes) = %d, want 4", len(nodes))
	}
	if !reflect.DeepEqual(c.Roots(), []int32{0}) {
		t.Fatalf("roots = %v", c.Roots())
	}
	// Pre-order: node, slot, core, memory.
	wantTypes := []string{"node", Slot, "core", "memory"}
	wantCounts := []int64{2, 3, 4, 8}
	for i, n := range nodes {
		if n.Type != wantTypes[i] || n.Count != wantCounts[i] {
			t.Fatalf("node %d = %s[%d], want %s[%d]", i, n.Type, n.Count, wantTypes[i], wantCounts[i])
		}
		if n.TypeID != tab.ID(n.Type) {
			t.Fatalf("node %d TypeID %d != interned %d", i, n.TypeID, tab.ID(n.Type))
		}
		if n.Min != n.Count {
			t.Fatalf("rigid node %d has Min %d != Count %d", i, n.Min, n.Count)
		}
	}
	if !nodes[1].IsSlot || nodes[0].IsSlot {
		t.Fatal("IsSlot mis-flagged")
	}
	if !reflect.DeepEqual(nodes[0].With, []int32{1}) || !reflect.DeepEqual(nodes[1].With, []int32{2, 3}) {
		t.Fatalf("With links wrong: %v / %v", nodes[0].With, nodes[1].With)
	}
}

func TestCompileNeeds(t *testing.T) {
	tab := intern.NewTable()
	js := New(0, R("node", 2, SlotR(3, R("core", 4), R("memory", 8))))
	c, err := Compile(js, tab)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	// One node instance: itself + 3 slots × (4 cores + 8 memory).
	wantNode := []TypeCount{
		{Type: "core", ID: tab.ID("core"), Units: 12},
		{Type: "memory", ID: tab.ID("memory"), Units: 24},
		{Type: "node", ID: tab.ID("node"), Units: 1},
	}
	if !reflect.DeepEqual(nodes[0].Needs, wantNode) {
		t.Fatalf("node Needs = %v, want %v", nodes[0].Needs, wantNode)
	}
	// One slot instance: the contained shape, slot itself transparent.
	wantSlot := []TypeCount{
		{Type: "core", ID: tab.ID("core"), Units: 4},
		{Type: "memory", ID: tab.ID("memory"), Units: 8},
	}
	if !reflect.DeepEqual(nodes[1].Needs, wantSlot) {
		t.Fatalf("slot Needs = %v, want %v", nodes[1].Needs, wantSlot)
	}
	// A leaf needs one unit of its own type per instance.
	wantCore := []TypeCount{{Type: "core", ID: tab.ID("core"), Units: 1}}
	if !reflect.DeepEqual(nodes[2].Needs, wantCore) {
		t.Fatalf("core Needs = %v", nodes[2].Needs)
	}
}

func TestCompileMoldableNeedsUseMin(t *testing.T) {
	tab := intern.NewTable()
	js := New(0, SlotR(2, Moldable("core", 2, 8)))
	c, err := Compile(js, tab)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	if nodes[1].Min != 2 || nodes[1].Count != 8 {
		t.Fatalf("moldable core Min/Count = %d/%d", nodes[1].Min, nodes[1].Count)
	}
	// Needs bound at the floor a feasible grant must reach.
	want := []TypeCount{{Type: "core", ID: tab.ID("core"), Units: 2}}
	if !reflect.DeepEqual(nodes[0].Needs, want) {
		t.Fatalf("slot Needs = %v, want %v", nodes[0].Needs, want)
	}
}

func TestCompileTotalsMatchTotalCounts(t *testing.T) {
	tab := intern.NewTable()
	js := New(0, R("node", 2, SlotR(3, Moldable("core", 2, 4), R("memory", 8))))
	c, err := Compile(js, tab)
	if err != nil {
		t.Fatal(err)
	}
	want := js.TotalCounts()
	got := make(map[string]int64)
	prev := ""
	for _, tc := range c.Totals() {
		if tc.Type < prev {
			t.Fatalf("Totals not sorted: %q after %q", tc.Type, prev)
		}
		prev = tc.Type
		if tc.ID != tab.ID(tc.Type) {
			t.Fatalf("%s: ID %d != interned %d", tc.Type, tc.ID, tab.ID(tc.Type))
		}
		got[tc.Type] = tc.Units
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Totals = %v, want TotalCounts = %v", got, want)
	}
}

func TestCompileErrors(t *testing.T) {
	tab := intern.NewTable()
	if _, err := Compile(New(0, R("core", 1)), nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil table: err = %v, want ErrInvalid", err)
	}
	if _, err := Compile(New(0, R("core", 0)), tab); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid spec: err = %v, want ErrInvalid", err)
	}
	if _, err := Compile(New(0), tab); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty spec: err = %v, want ErrInvalid", err)
	}
}
