// Package jobspec implements Flux's canonical job specification: the
// abstract resource request graph that is Fluxion's matching input (paper
// §4.2, Figure 4).
//
// A request is a small tree of typed resource vertices. Every vertex except
// slot names a physical resource type and a per-parent-instance count; an
// exclusive vertex must be allocated wholly to the job (the paper's
// box-shaped vertices), a non-exclusive one may be shared (circles). The
// slot vertex marks the resource shape the program's processes are
// contained, bound, and executed in; everything beneath a slot is
// implicitly exclusive.
package jobspec

import (
	"errors"
	"fmt"
	"strings"

	"fluxion/internal/yamlite"
)

// Slot is the pseudo resource type marking the task container shape.
const Slot = "slot"

// MaxNestingDepth bounds how deep a request tree may nest. Real request
// shapes are a handful of levels (cluster→rack→node→slot→core); the cap
// stops adversarial or cycle-inducing nesting from driving the recursive
// validator and compiler to unbounded depth.
const MaxNestingDepth = 64

// ErrInvalid is wrapped by all jobspec validation errors.
var ErrInvalid = errors.New("jobspec: invalid")

// Resource is one vertex of the abstract resource request graph.
type Resource struct {
	// Type is the resource type name ("node", "core", "memory", ...) or
	// Slot.
	Type string
	// Count is the number of units requested per parent instance: whole
	// vertices for structural resources, pool units (e.g. GB) for
	// pooled resources. For moldable requests Count is the desired
	// maximum.
	Count int64
	// Min, when positive, makes the request moldable (paper §1, §5.5):
	// the matcher grants as many units as fit, down to Min. Zero means
	// rigid (exactly Count).
	Min int64
	// Exclusive marks the vertex for whole-vertex exclusive allocation.
	Exclusive bool
	// Label names a slot (optional).
	Label string
	// With holds the nested requests contained in each instance.
	With []*Resource
}

// MinCount returns the smallest acceptable unit count: Min for moldable
// requests, Count for rigid ones.
func (r *Resource) MinCount() int64 {
	if r.Min > 0 {
		return r.Min
	}
	return r.Count
}

// Moldable constructs a moldable request vertex granting between min and
// max units.
func Moldable(typ string, min, max int64, with ...*Resource) *Resource {
	return &Resource{Type: typ, Count: max, Min: min, With: with}
}

// Task describes what to execute inside a slot (the canonical jobspec
// tasks section): a command bound to the slot label, replicated per slot.
type Task struct {
	// Command is the argv to execute.
	Command []string
	// Slot names the slot label the task binds to ("" binds to the
	// unlabeled slot).
	Slot string
	// PerSlot is the number of task instances per matched slot
	// (count.per_slot, default 1).
	PerSlot int64
}

// Jobspec is a parsed canonical job specification.
type Jobspec struct {
	Version   int64
	Resources []*Resource
	// Tasks binds commands to slots; optional for pure resource
	// allocations (e.g. storage-only grants).
	Tasks []*Task
	// Duration is the requested walltime in seconds
	// (attributes.system.duration); 0 means unlimited.
	Duration int64
	// Name is an optional job name (attributes.system.job.name).
	Name string
}

// New returns a jobspec with the given duration and request forest.
func New(duration int64, resources ...*Resource) *Jobspec {
	return &Jobspec{Version: 1, Duration: duration, Resources: resources}
}

// R is a convenience constructor for request vertices.
func R(typ string, count int64, with ...*Resource) *Resource {
	return &Resource{Type: typ, Count: count, With: with}
}

// RX is R with Exclusive set.
func RX(typ string, count int64, with ...*Resource) *Resource {
	return &Resource{Type: typ, Count: count, Exclusive: true, With: with}
}

// SlotR constructs a slot vertex containing the given shape.
func SlotR(count int64, with ...*Resource) *Resource {
	return &Resource{Type: Slot, Count: count, With: with}
}

// NodeLocal builds the paper's node-local request shape (Figure 4a and the
// E1 workload): nodes shareable compute nodes, each holding slots slots of
// cores cores, memGB memory units, and bb burst-buffer units. Zero counts
// omit that resource.
func NodeLocal(nodes, slots, cores, memGB, bb, duration int64) *Jobspec {
	var shape []*Resource
	if cores > 0 {
		shape = append(shape, R("core", cores))
	}
	if memGB > 0 {
		shape = append(shape, R("memory", memGB))
	}
	if bb > 0 {
		shape = append(shape, R("bb", bb))
	}
	return New(duration, R("node", nodes, SlotR(slots, shape...)))
}

// Validate checks structural well-formedness: positive counts, non-empty
// types, slots that contain a shape, no nested slots, and nesting no
// deeper than MaxNestingDepth (a cyclic resource graph would otherwise
// recurse forever).
func (j *Jobspec) Validate() error {
	if len(j.Resources) == 0 {
		return fmt.Errorf("%w: empty resource section", ErrInvalid)
	}
	var walk func(r *Resource, inSlot bool, depth int) error
	walk = func(r *Resource, inSlot bool, depth int) error {
		if depth > MaxNestingDepth {
			return fmt.Errorf("%w: resource nesting exceeds depth %d", ErrInvalid, MaxNestingDepth)
		}
		if r.Type == "" {
			return fmt.Errorf("%w: resource with empty type", ErrInvalid)
		}
		if r.Count <= 0 {
			return fmt.Errorf("%w: resource %q has count %d", ErrInvalid, r.Type, r.Count)
		}
		if r.Min < 0 || r.Min > r.Count {
			return fmt.Errorf("%w: resource %q has min %d outside [0, %d]", ErrInvalid, r.Type, r.Min, r.Count)
		}
		if r.Type == Slot {
			if inSlot {
				return fmt.Errorf("%w: nested slot", ErrInvalid)
			}
			if len(r.With) == 0 {
				return fmt.Errorf("%w: slot without contained shape", ErrInvalid)
			}
			inSlot = true
		}
		for _, c := range r.With {
			if err := walk(c, inSlot, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range j.Resources {
		if err := walk(r, false, 1); err != nil {
			return err
		}
	}
	if len(j.Tasks) > 0 {
		labels := j.slotLabels()
		for _, task := range j.Tasks {
			if len(task.Command) == 0 {
				return fmt.Errorf("%w: task with empty command", ErrInvalid)
			}
			if task.PerSlot < 0 {
				return fmt.Errorf("%w: task per_slot %d", ErrInvalid, task.PerSlot)
			}
			if !labels[task.Slot] {
				return fmt.Errorf("%w: task references unknown slot %q", ErrInvalid, task.Slot)
			}
		}
	}
	return nil
}

// slotLabels collects the labels of every slot in the request forest.
func (j *Jobspec) slotLabels() map[string]bool {
	out := make(map[string]bool)
	var walk func(r *Resource)
	walk = func(r *Resource) {
		if r.Type == Slot {
			out[r.Label] = true
		}
		for _, c := range r.With {
			walk(c)
		}
	}
	for _, r := range j.Resources {
		walk(r)
	}
	return out
}

// TotalCounts returns the aggregate number of units of each physical
// resource type the whole request needs (counts multiplied down the tree,
// slots transparent). Moldable requests count at their minimum, so the
// result is the floor a feasible allocation must reach — the conservative
// bound the root pruning filter uses to find candidate scheduling times.
func (j *Jobspec) TotalCounts() map[string]int64 {
	agg := make(map[string]int64)
	var walk func(r *Resource, mult int64)
	walk = func(r *Resource, mult int64) {
		n := mult * r.MinCount()
		if r.Type != Slot {
			agg[r.Type] += n
		}
		for _, c := range r.With {
			walk(c, n)
		}
	}
	for _, r := range j.Resources {
		walk(r, 1)
	}
	return agg
}

// ParseYAML decodes a canonical jobspec document.
func ParseYAML(data []byte) (*Jobspec, error) {
	doc, err := yamlite.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	if doc == nil {
		return nil, fmt.Errorf("%w: empty document", ErrInvalid)
	}
	j := &Jobspec{Version: 1}
	if v, ok := yamlite.GetInt(doc, "version"); ok {
		j.Version = v
	}
	resList, ok := yamlite.GetList(doc, "resources")
	if !ok {
		return nil, fmt.Errorf("%w: missing resources section", ErrInvalid)
	}
	j.Resources, err = parseResources(resList)
	if err != nil {
		return nil, err
	}
	if d, ok := yamlite.GetPath(doc, "attributes.system.duration"); ok {
		switch x := d.(type) {
		case int64:
			j.Duration = x
		case float64:
			j.Duration = int64(x)
		default:
			return nil, fmt.Errorf("%w: duration must be a number", ErrInvalid)
		}
	}
	if n, ok := yamlite.GetPath(doc, "attributes.system.job.name"); ok {
		if s, ok := n.(string); ok {
			j.Name = s
		}
	}
	if tasks, ok := yamlite.GetList(doc, "tasks"); ok {
		j.Tasks, err = parseTasks(tasks)
		if err != nil {
			return nil, err
		}
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

func parseTasks(list []any) ([]*Task, error) {
	var out []*Task
	for _, item := range list {
		m, ok := item.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("%w: task entry is not a mapping", ErrInvalid)
		}
		task := &Task{PerSlot: 1}
		cmd, ok := m["command"].([]any)
		if !ok {
			return nil, fmt.Errorf("%w: task missing command list", ErrInvalid)
		}
		for _, c := range cmd {
			s, ok := c.(string)
			if !ok {
				s = fmt.Sprintf("%v", c)
			}
			task.Command = append(task.Command, s)
		}
		if s, ok := yamlite.GetString(m, "slot"); ok {
			task.Slot = s
		}
		if count, ok := yamlite.GetMap(m, "count"); ok {
			if ps, ok := yamlite.GetInt(count, "per_slot"); ok {
				task.PerSlot = ps
			}
		}
		out = append(out, task)
	}
	return out, nil
}

func parseResources(list []any) ([]*Resource, error) {
	var out []*Resource
	for _, item := range list {
		m, ok := item.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("%w: resource entry is not a mapping", ErrInvalid)
		}
		r := &Resource{Count: 1}
		if r.Type, ok = yamlite.GetString(m, "type"); !ok {
			return nil, fmt.Errorf("%w: resource entry missing type", ErrInvalid)
		}
		switch c := m["count"].(type) {
		case int64:
			r.Count = c
		case map[string]any:
			// Moldable form: count: {min: 2, max: 8}.
			if max, ok := yamlite.GetInt(c, "max"); ok {
				r.Count = max
			} else {
				return nil, fmt.Errorf("%w: count object missing max", ErrInvalid)
			}
			if min, ok := yamlite.GetInt(c, "min"); ok {
				r.Min = min
			}
		case nil:
		default:
			return nil, fmt.Errorf("%w: bad count %v", ErrInvalid, c)
		}
		if x, ok := yamlite.GetBool(m, "exclusive"); ok {
			r.Exclusive = x
		}
		if l, ok := yamlite.GetString(m, "label"); ok {
			r.Label = l
		}
		if with, ok := yamlite.GetList(m, "with"); ok {
			children, err := parseResources(with)
			if err != nil {
				return nil, err
			}
			r.With = children
		}
		out = append(out, r)
	}
	return out, nil
}

// YAML renders the jobspec back to canonical YAML.
func (j *Jobspec) YAML() []byte {
	doc := map[string]any{
		"version":   j.Version,
		"resources": resourcesToAny(j.Resources),
	}
	system := map[string]any{}
	if j.Duration > 0 {
		system["duration"] = j.Duration
	}
	if j.Name != "" {
		system["job"] = map[string]any{"name": j.Name}
	}
	if len(system) > 0 {
		doc["attributes"] = map[string]any{"system": system}
	}
	if len(j.Tasks) > 0 {
		tasks := make([]any, 0, len(j.Tasks))
		for _, task := range j.Tasks {
			cmd := make([]any, len(task.Command))
			for i, c := range task.Command {
				cmd[i] = c
			}
			m := map[string]any{"command": cmd}
			if task.Slot != "" {
				m["slot"] = task.Slot
			}
			if task.PerSlot != 1 {
				m["count"] = map[string]any{"per_slot": task.PerSlot}
			}
			tasks = append(tasks, m)
		}
		doc["tasks"] = tasks
	}
	return yamlite.Marshal(doc)
}

func resourcesToAny(rs []*Resource) []any {
	out := make([]any, 0, len(rs))
	for _, r := range rs {
		m := map[string]any{"type": r.Type, "count": r.Count}
		if r.Min > 0 {
			m["count"] = map[string]any{"min": r.Min, "max": r.Count}
		}
		if r.Exclusive {
			m["exclusive"] = true
		}
		if r.Label != "" {
			m["label"] = r.Label
		}
		if len(r.With) > 0 {
			m["with"] = resourcesToAny(r.With)
		}
		out = append(out, m)
	}
	return out
}

// String renders a compact one-line summary like
// "node[4]->slot[1]->{core[10],memory[8]}".
func (j *Jobspec) String() string {
	parts := make([]string, 0, len(j.Resources))
	for _, r := range j.Resources {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ",")
}

// String renders a compact summary of the request subtree.
func (r *Resource) String() string {
	var b strings.Builder
	if r.Min > 0 {
		b.WriteString(fmt.Sprintf("%s[%d-%d]", r.Type, r.Min, r.Count))
	} else {
		b.WriteString(fmt.Sprintf("%s[%d]", r.Type, r.Count))
	}
	if r.Exclusive {
		b.WriteByte('!')
	}
	switch len(r.With) {
	case 0:
	case 1:
		b.WriteString("->")
		b.WriteString(r.With[0].String())
	default:
		b.WriteString("->{")
		for i, c := range r.With {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.String())
		}
		b.WriteByte('}')
	}
	return b.String()
}
