package jobspec

import (
	"errors"
	"reflect"
	"testing"
)

// paperFig4a is the jobspec of paper Figure 4a: an exclusive slot with two
// sockets of 5 cores, 1 gpu, and 16 memory units within a shareable node.
const paperFig4a = `
version: 1
resources:
  - type: node
    count: 1
    with:
      - type: slot
        count: 1
        label: default
        with:
          - type: socket
            count: 2
            with:
              - type: core
                count: 5
              - type: gpu
                count: 1
              - type: memory
                count: 16
attributes:
  system:
    duration: 3600
`

func TestParsePaperFig4a(t *testing.T) {
	j, err := ParseYAML([]byte(paperFig4a))
	if err != nil {
		t.Fatal(err)
	}
	if j.Duration != 3600 {
		t.Errorf("Duration = %d", j.Duration)
	}
	if len(j.Resources) != 1 {
		t.Fatalf("Resources = %d", len(j.Resources))
	}
	node := j.Resources[0]
	if node.Type != "node" || node.Count != 1 || node.Exclusive {
		t.Fatalf("node = %+v", node)
	}
	slot := node.With[0]
	if slot.Type != Slot || slot.Count != 1 || slot.Label != "default" {
		t.Fatalf("slot = %+v", slot)
	}
	socket := slot.With[0]
	if socket.Type != "socket" || socket.Count != 2 || len(socket.With) != 3 {
		t.Fatalf("socket = %+v", socket)
	}
}

func TestParsePaperFig4b(t *testing.T) {
	// Figure 4b: slots pinned at rack level — slots of 2 nodes with at
	// least 22 cores and 2 gpus, spread across 2 racks.
	src := `
version: 1
resources:
  - type: rack
    count: 2
    with:
      - type: slot
        count: 2
        with:
          - type: node
            count: 2
            with:
              - type: core
                count: 22
              - type: gpu
                count: 2
`
	j, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"rack": 2, "node": 8, "core": 176, "gpu": 16}
	if got := j.TotalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TotalCounts = %v, want %v", got, want)
	}
}

func TestParsePaperFig4c(t *testing.T) {
	// Figure 4c: 128 exclusive I/O bandwidth units within a shared pfs.
	src := `
version: 1
resources:
  - type: pfs
    count: 1
    with:
      - type: bw
        count: 128
        exclusive: true
`
	j, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	bw := j.Resources[0].With[0]
	if !bw.Exclusive || bw.Count != 128 {
		t.Fatalf("bw = %+v", bw)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no resources", "version: 1"},
		{"missing type", "resources:\n  - count: 1"},
		{"zero count", "resources:\n  - type: node\n    count: 0"},
		{"negative count", "resources:\n  - type: node\n    count: -2"},
		{"empty slot", "resources:\n  - type: slot\n    count: 1"},
		{"nested slot", `
resources:
  - type: slot
    count: 1
    with:
      - type: slot
        count: 1
        with:
          - type: core
            count: 1
`},
		{"bad duration", `
resources:
  - type: node
    count: 1
attributes:
  system:
    duration: soon
`},
	}
	for _, c := range cases {
		if _, err := ParseYAML([]byte(c.src)); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: want ErrInvalid, got %v", c.name, err)
		}
	}
}

func TestBuilders(t *testing.T) {
	j := NodeLocal(1, 1, 10, 8, 1, 3600)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"node": 1, "core": 10, "memory": 8, "bb": 1}
	if got := j.TotalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TotalCounts = %v", got)
	}
	j2 := NodeLocal(4, 2, 36, 0, 0, 60)
	want2 := map[string]int64{"node": 4, "core": 288}
	if got := j2.TotalCounts(); !reflect.DeepEqual(got, want2) {
		t.Fatalf("TotalCounts = %v, want %v", got, want2)
	}
}

func TestYAMLRoundTrip(t *testing.T) {
	orig := New(7200,
		R("cluster", 1,
			SlotR(4,
				RX("node", 2, R("core", 22), R("gpu", 2)))))
	orig.Name = "roundtrip"
	back, err := ParseYAML(orig.YAML())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, orig.YAML())
	}
	if back.Duration != 7200 || back.Name != "roundtrip" {
		t.Fatalf("attributes lost: %+v", back)
	}
	if !reflect.DeepEqual(back.Resources, orig.Resources) {
		t.Fatalf("resources mismatch:\n%+v\n%+v", back.Resources[0], orig.Resources[0])
	}
}

func TestString(t *testing.T) {
	j := New(60, R("node", 4, SlotR(1, R("core", 10), R("memory", 8))))
	got := j.String()
	want := "node[4]->slot[1]->{core[10],memory[8]}"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	jx := New(60, RX("bw", 128))
	if got := jx.String(); got != "bw[128]!" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTotalCountsSlotMultiplier(t *testing.T) {
	// 3 slots each of 2 nodes with 4 cores: 6 nodes, 24 cores.
	j := New(0, SlotR(3, R("node", 2, R("core", 4))))
	want := map[string]int64{"node": 6, "core": 24}
	if got := j.TotalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TotalCounts = %v", got)
	}
}

func TestDefaultCount(t *testing.T) {
	j, err := ParseYAML([]byte("resources:\n  - type: node"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Resources[0].Count != 1 {
		t.Fatalf("default count = %d", j.Resources[0].Count)
	}
}

func TestParseTasks(t *testing.T) {
	src := `
version: 1
resources:
  - type: node
    count: 1
    with:
      - type: slot
        count: 2
        label: worker
        with:
          - {type: core, count: 4}
tasks:
  - command: [myapp, --verbose]
    slot: worker
    count:
      per_slot: 2
`
	j, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(j.Tasks))
	}
	task := j.Tasks[0]
	if !reflect.DeepEqual(task.Command, []string{"myapp", "--verbose"}) {
		t.Fatalf("command = %v", task.Command)
	}
	if task.Slot != "worker" || task.PerSlot != 2 {
		t.Fatalf("task = %+v", task)
	}
	// Round trip through YAML.
	back, err := ParseYAML(j.YAML())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, j.YAML())
	}
	if !reflect.DeepEqual(back.Tasks, j.Tasks) {
		t.Fatalf("tasks mismatch: %+v vs %+v", back.Tasks[0], j.Tasks[0])
	}
}

func TestTaskValidation(t *testing.T) {
	base := func() *Jobspec {
		return New(10, R("node", 1, SlotR(1, R("core", 1))))
	}
	j := base()
	j.Tasks = []*Task{{Command: nil, PerSlot: 1}}
	if err := j.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty command: %v", err)
	}
	j = base()
	j.Tasks = []*Task{{Command: []string{"a"}, Slot: "nope", PerSlot: 1}}
	if err := j.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown slot: %v", err)
	}
	j = base()
	j.Tasks = []*Task{{Command: []string{"a"}, PerSlot: -1}}
	if err := j.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative per_slot: %v", err)
	}
	j = base()
	j.Tasks = []*Task{{Command: []string{"a"}, PerSlot: 1}}
	if err := j.Validate(); err != nil {
		t.Errorf("valid unlabeled-slot task: %v", err)
	}
	// Task missing a command list is a parse error.
	if _, err := ParseYAML([]byte("resources:\n  - type: node\ntasks:\n  - slot: x")); !errors.Is(err, ErrInvalid) {
		t.Errorf("missing command: %v", err)
	}
}

func TestMoldableCountObject(t *testing.T) {
	src := `
version: 1
resources:
  - type: node
    count: 1
    with:
      - type: slot
        count: 1
        with:
          - type: core
            count: {min: 2, max: 8}
`
	j, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	core := j.Resources[0].With[0].With[0]
	if core.Count != 8 || core.Min != 2 || core.MinCount() != 2 {
		t.Fatalf("core = %+v", core)
	}
	// TotalCounts uses the floor.
	if got := j.TotalCounts()["core"]; got != 2 {
		t.Fatalf("TotalCounts core = %d", got)
	}
	// Round trip preserves the range.
	back, err := ParseYAML(j.YAML())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, j.YAML())
	}
	bc := back.Resources[0].With[0].With[0]
	if bc.Count != 8 || bc.Min != 2 {
		t.Fatalf("round trip = %+v", bc)
	}
	// Bad forms.
	for _, bad := range []string{
		"resources:\n  - type: core\n    count: {min: 2}",
		"resources:\n  - type: core\n    count: {min: 9, max: 8}",
		"resources:\n  - type: core\n    count: soon",
	} {
		if _, err := ParseYAML([]byte(bad)); !errors.Is(err, ErrInvalid) {
			t.Errorf("bad count %q: %v", bad, err)
		}
	}
}

func TestMoldableString(t *testing.T) {
	j := New(0, SlotR(1, Moldable("core", 2, 8)))
	if got := j.String(); got != "slot[1]->core[2-8]" {
		t.Fatalf("String = %q", got)
	}
}
