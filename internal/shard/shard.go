// Package shard implements sharded scheduling: the cluster graph is
// partitioned into N subtree shards (cut at a configurable containment
// level, racks by default), each shard runs its own independent
// incremental scheduler loop over its own slab graph and in-memory
// state, and a thin root router places every incoming job on a shard
// using per-shard aggregate residues — the SDFU filter/aggregate
// machinery lifted one level, kept fresh through each shard graph's
// delta sink.
//
// The decision loop stays discrete-event and lockstep: all shard clocks
// advance together, shards with events at the step instant run their
// cycles concurrently (their state is fully disjoint), and after every
// round a rebalancer work-steals still-pending jobs from saturated
// shards to shards whose residues fit them now.
//
// With one shard the router degenerates to a pass-through over a
// vertex-for-vertex clone of the flat graph, and the sharded scheduler
// is decision-identical to the flat one (property-tested in
// parity_test.go). With N shards, decision throughput scales with N —
// cycles run concurrently over graphs 1/N the size — at a quantified
// decision-quality cost (experiments E12): cross-shard fragmentation
// can delay or strand jobs a flat scheduler would have placed.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
)

// DefaultCutType is the containment level shards are cut at.
const DefaultCutType = "rack"

// DefaultStealsPerRound bounds how many jobs one rebalance round moves.
const DefaultStealsPerRound = 8

// DefaultMaxStealsPerJob bounds how often a single job may be stolen,
// preventing ping-pong between saturated shards.
const DefaultMaxStealsPerJob = 2

// Config parameterizes New.
type Config struct {
	// Graph is the finalized flat cluster graph to partition. It is only
	// read (Partition clones it); the caller keeps ownership.
	Graph *resgraph.Graph
	// Shards is the partition width (>= 1).
	Shards int
	// CutType is the containment type units are cut at (default "rack").
	CutType string
	// MatchPolicy names the per-shard match policy (default "first").
	MatchPolicy string
	// Queue is the per-shard queue policy (default Conservative).
	Queue sched.QueuePolicy
	// SchedOpts apply to every shard scheduler (queue depth, retries…).
	// Sharded runs are WAL-free; do not attach journals to the shards.
	SchedOpts []sched.SchedOption
	// StealsPerRound bounds rebalance work per round (0 = default,
	// negative = stealing disabled).
	StealsPerRound int
	// MaxStealsPerJob bounds how often one job may move (0 = default).
	MaxStealsPerJob int
}

// RouterStats counts the router's placement work.
type RouterStats struct {
	// Routed counts jobs placed on a shard at submit.
	Routed int64
	// Rerouted counts submit-time overflows: the residue-ranked shard
	// declared the job unsatisfiable and the router moved on to the
	// next-best shard.
	Rerouted int64
	// Steals counts jobs the rebalancer moved between shards.
	Steals int64
	// Unroutable counts jobs no shard could ever fit (a job spanning
	// more than one shard's capacity is unsatisfiable under sharding;
	// this is part of the quantified quality cost of hierarchy).
	Unroutable int64
}

// shardState is one partition: its graph, traverser, scheduler loop,
// and the router-side residue/demand caches.
type shardState struct {
	idx int
	g   *resgraph.Graph
	tr  *traverser.Traverser
	s   *sched.Scheduler

	// cap is the shard's static aggregate capacity per resource type
	// (the root vertex's containment aggregates), fixed at build.
	cap map[string]int64

	// residue caches the shard root filter's free units per type at
	// residueAt; dirty is set from the shard graph's delta sink (any
	// free, claim, or structural delta invalidates the cache) and by
	// hand after every scheduling cycle (immediate allocations are
	// deliberately delta-silent). The cache is also keyed by the clock,
	// since availability is time-dependent even without deltas.
	residue   map[string]int64
	residueAt int64
	dirty     bool

	// queued is the aggregate resource demand of jobs routed here and
	// not yet running (pending + reserved), refreshed every rebalance
	// round and maintained incrementally between rounds.
	queued map[string]int64
}

// Sharded is N independent shard scheduler loops behind one
// residue-routing front door. It mirrors the sched.Scheduler driver
// surface (Submit/Schedule/Step/AdvanceTo/Run/Metrics) so drivers can
// swap it in for a flat scheduler.
//
// Sharded is not safe for concurrent use: like sched.Scheduler it is a
// single-driver discrete-event loop (the concurrency is inside — shard
// cycles run in parallel).
type Sharded struct {
	shards []*shardState
	byJob  map[int64]int // job ID -> owning shard
	steals map[int64]int // job ID -> times stolen
	stats  RouterStats

	policy          sched.QueuePolicy
	stealsPerRound  int
	maxStealsPerJob int

	// needScratch is reused per routing decision.
	needScratch map[string]int64
}

// New partitions cfg.Graph and builds one incremental scheduler loop
// per shard.
func New(cfg Config) (*Sharded, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("shard: graph is required")
	}
	n := cfg.Shards
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d", n)
	}
	cut := cfg.CutType
	if cut == "" {
		cut = DefaultCutType
	}
	qp := cfg.Queue
	if qp == "" {
		qp = sched.Conservative
	}
	parts, err := cfg.Graph.Partition(cut, n)
	if err != nil {
		return nil, err
	}
	sh := &Sharded{
		shards:          make([]*shardState, n),
		byJob:           make(map[int64]int),
		steals:          make(map[int64]int),
		policy:          qp,
		stealsPerRound:  cfg.StealsPerRound,
		maxStealsPerJob: cfg.MaxStealsPerJob,
		needScratch:     make(map[string]int64),
	}
	if sh.stealsPerRound == 0 {
		sh.stealsPerRound = DefaultStealsPerRound
	}
	if sh.maxStealsPerJob == 0 {
		sh.maxStealsPerJob = DefaultMaxStealsPerJob
	}
	for k, g := range parts {
		pol, err := match.Lookup(cfg.MatchPolicy)
		if err != nil {
			return nil, err
		}
		tr, err := traverser.New(g, pol)
		if err != nil {
			return nil, err
		}
		s, err := sched.New(tr, qp, cfg.SchedOpts...)
		if err != nil {
			return nil, err
		}
		st := &shardState{
			idx:     k,
			g:       g,
			tr:      tr,
			s:       s,
			residue: make(map[string]int64),
			queued:  make(map[string]int64),
			dirty:   true,
		}
		root := g.Root(resgraph.Containment)
		st.cap = make(map[string]int64, 8)
		for t, c := range root.Aggregates() {
			st.cap[t] = c
		}
		// Chain the router's residue invalidation behind whatever sink
		// sched.New installed (the incremental wakeup index). Delta
		// publication is synchronous and per-graph, so the flag write
		// happens on whichever goroutine runs this shard's cycle; the
		// router reads it only after the cycle barrier.
		prev := g.DeltaSink()
		if prev == nil {
			g.SetDeltaSink(func(resgraph.Delta) { st.dirty = true })
		} else {
			g.SetDeltaSink(func(d resgraph.Delta) {
				prev(d)
				st.dirty = true
			})
		}
		sh.shards[k] = st
	}
	return sh, nil
}

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// ShardScheduler exposes shard i's scheduler loop (tests, stats).
func (sh *Sharded) ShardScheduler(i int) *sched.Scheduler { return sh.shards[i].s }

// ShardGraph exposes shard i's resource graph (tests, stats).
func (sh *Sharded) ShardGraph(i int) *resgraph.Graph { return sh.shards[i].g }

// RouterStats returns the router's cumulative placement counters.
func (sh *Sharded) RouterStats() RouterStats { return sh.stats }

// Job returns a submitted job by ID, from whichever shard owns it.
func (sh *Sharded) Job(id int64) (*sched.Job, bool) {
	k, ok := sh.byJob[id]
	if !ok {
		return nil, false
	}
	return sh.shards[k].s.Job(id)
}

// Jobs returns a merged snapshot of every shard's job table.
func (sh *Sharded) Jobs() map[int64]*sched.Job {
	out := make(map[int64]*sched.Job)
	for _, st := range sh.shards {
		for id, j := range st.s.Jobs() {
			out[id] = j
		}
	}
	return out
}

// Atomic runs fn; sharded runs are journal-free, so there is no command
// unit to widen — the method exists so drivers written against
// sched.Scheduler work unchanged.
func (sh *Sharded) Atomic(fn func()) { fn() }

// Counts tallies jobs per state across all shards.
func (sh *Sharded) Counts() map[sched.JobState]int {
	out := make(map[sched.JobState]int)
	for _, st := range sh.shards {
		for _, j := range st.s.Jobs() {
			out[j.State]++
		}
	}
	return out
}

// Unfinished counts jobs still pending, reserved, or running.
func (sh *Sharded) Unfinished() int {
	n := 0
	for _, st := range sh.shards {
		n += st.s.Unfinished()
	}
	return n
}

// Stats sums the shard schedulers' work counters.
func (sh *Sharded) Stats() sched.Stats {
	var out sched.Stats
	for _, st := range sh.shards {
		s := st.s.Stats()
		out.Cycles += s.Cycles
		out.MatchAttempts += s.MatchAttempts
		out.WokenJobs += s.WokenJobs
		out.SkippedJobs += s.SkippedJobs
		out.Quarantined += s.Quarantined
		out.DegradedCycles += s.DegradedCycles
		out.OverloadRejects += s.OverloadRejects
		out.InvalidSpecRejects += s.InvalidSpecRejects
	}
	return out
}

// Cycles sums scheduling cycles across shards.
func (sh *Sharded) Cycles() int {
	n := 0
	for _, st := range sh.shards {
		n += st.s.Cycles
	}
	return n
}

// Metrics computes run statistics over the merged job table, mirroring
// sched.Metrics: utilization and makespan span the whole system (node
// capacity summed across shard roots, makespan from the global earliest
// submit to the global last completion).
func (sh *Sharded) Metrics() sched.Metrics {
	var m sched.Metrics
	var firstSubmit, lastEnd int64 = 1 << 62, 0
	var waits int64
	nodeCapacity := int64(0)
	for _, st := range sh.shards {
		if root := st.g.Root(resgraph.Containment); root != nil {
			nodeCapacity += root.Aggregates()["node"]
		}
		sm := st.s.Metrics()
		m.Requeues += sm.Requeues
		m.LostCoreSeconds += sm.LostCoreSeconds
	}
	for _, st := range sh.shards {
		for _, j := range st.s.Jobs() {
			m.TotalMatch += j.MatchDuration
			switch j.State {
			case sched.StateFailed:
				m.Failed++
				continue
			case sched.StateQuarantined:
				m.Quarantined++
				continue
			case sched.StateUnsatisfiable:
				m.Unsatisfiable++
				continue
			case sched.StateCompleted:
				m.Completed++
			default:
				continue
			}
			if j.Submit < firstSubmit {
				firstSubmit = j.Submit
			}
			if j.EndAt > lastEnd {
				lastEnd = j.EndAt
			}
			wait := j.StartAt - j.Submit
			waits += wait
			if wait > m.MaxWait {
				m.MaxWait = wait
			}
			if j.Alloc != nil {
				m.NodeSecondsUsed += int64(len(j.Alloc.Nodes())) * (j.EndAt - j.StartAt)
			}
		}
	}
	if m.Completed > 0 {
		m.Makespan = lastEnd - firstSubmit
		m.MeanWait = float64(waits) / float64(m.Completed)
		m.NodeSecondsTotal = nodeCapacity * m.Makespan
	}
	return m
}

// Withdraw removes a job from whichever shard owns it (see
// sched.Scheduler.Withdraw).
func (sh *Sharded) Withdraw(id int64) (*sched.Job, error) {
	k, ok := sh.byJob[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", traverser.ErrUnknownJob, id)
	}
	job, err := sh.shards[k].s.Withdraw(id)
	if err != nil {
		return nil, err
	}
	delete(sh.byJob, id)
	delete(sh.steals, id)
	sh.shards[k].refreshDemand()
	return job, nil
}

// Now returns the lockstep simulated clock (all shard clocks agree).
func (sh *Sharded) Now() int64 { return sh.shards[0].s.Now() }

// HasEvents reports whether any shard has pending events.
func (sh *Sharded) HasEvents() bool {
	for _, st := range sh.shards {
		if st.s.HasEvents() {
			return true
		}
	}
	return false
}

// NextEventAt returns the earliest pending event time across shards
// (-1 when none).
func (sh *Sharded) NextEventAt() int64 {
	at := int64(-1)
	for _, st := range sh.shards {
		if !st.s.HasEvents() {
			continue
		}
		if t := st.s.NextEventAt(); at < 0 || t < at {
			at = t
		}
	}
	return at
}

// AdvanceTo moves every shard clock forward to t in lockstep.
func (sh *Sharded) AdvanceTo(t int64) error {
	for _, st := range sh.shards {
		if err := st.s.AdvanceTo(t); err != nil {
			return err
		}
	}
	return nil
}

// Step advances every shard to the next global event instant: shards
// with events there run their Step (dispatch + cycle) concurrently —
// their graphs, planners, and queues are fully disjoint — and the rest
// just advance their clocks. One rebalance round follows. Returns false
// when no events remain anywhere.
func (sh *Sharded) Step() bool {
	t := sh.NextEventAt()
	if t < 0 {
		return false
	}
	var steppers []*shardState
	for _, st := range sh.shards {
		if st.s.HasEvents() && st.s.NextEventAt() == t {
			steppers = append(steppers, st)
		} else if err := st.s.AdvanceTo(t); err != nil {
			// Unreachable by construction (t is the global minimum);
			// surface loudly rather than silently desynchronizing.
			panic(fmt.Sprintf("shard: lockstep advance to %d: %v", t, err))
		}
	}
	// A cycle's immediate allocations publish no delta (a claim cannot
	// unblock a waiting job, so the wakeup index ignores them), but they
	// do consume residue: dirty the cache by hand after every cycle.
	runParallel(steppers, func(st *shardState) { st.s.Step(); st.dirty = true })
	sh.rebalance()
	return true
}

// Schedule runs one scheduling cycle on every shard concurrently, then
// one rebalance round.
func (sh *Sharded) Schedule() {
	runParallel(sh.shards, func(st *shardState) { st.s.Schedule(); st.dirty = true })
	sh.rebalance()
}

// Run schedules and steps until every satisfiable job completes (or
// maxSteps, 0 = unbounded). Returns completed jobs.
func (sh *Sharded) Run(maxSteps int) int {
	sh.Schedule()
	steps := 0
	for sh.Step() {
		steps++
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
	}
	done := 0
	for _, st := range sh.shards {
		for _, j := range st.s.Jobs() {
			if j.State == sched.StateCompleted {
				done++
			}
		}
	}
	return done
}

// runParallel fans fn across the given shards. A single shard runs
// inline: the 1-shard configuration takes exactly the flat scheduler's
// code path, goroutine-free.
func runParallel(shards []*shardState, fn func(*shardState)) {
	if len(shards) == 0 {
		return
	}
	if len(shards) == 1 {
		fn(shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, st := range shards {
		wg.Add(1)
		go func(st *shardState) {
			defer wg.Done()
			fn(st)
		}(st)
	}
	wg.Wait()
}

// sortCands orders routing candidates by descending headroom, ties by
// shard index (deterministic for a given graph + queue state).
func sortCands(cands []cand) {
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
}
