// Package shard implements sharded scheduling: the cluster graph is
// partitioned into N subtree shards (cut at a configurable containment
// level, racks by default), each shard runs its own independent
// incremental scheduler loop over its own slab graph and in-memory
// state, and a thin root router places every incoming job on a shard
// using per-shard aggregate residues — the SDFU filter/aggregate
// machinery lifted one level, kept fresh through each shard graph's
// delta sink.
//
// The decision loop stays discrete-event and lockstep: all shard clocks
// advance together, shards with events at the step instant run their
// cycles concurrently (their state is fully disjoint), and after every
// round a rebalancer work-steals still-pending jobs from saturated
// shards to shards whose residues fit them now.
//
// With one shard the router degenerates to a pass-through over a
// vertex-for-vertex clone of the flat graph, and the sharded scheduler
// is decision-identical to the flat one (property-tested in
// parity_test.go). With N shards, decision throughput scales with N —
// cycles run concurrently over graphs 1/N the size — at a quantified
// decision-quality cost (experiments E12): cross-shard fragmentation
// can delay or strand jobs a flat scheduler would have placed.
//
// Shards are also the failure domains: with Config.Supervisor set every
// per-shard cycle runs behind a panic fence and cycle deadline feeding
// a per-shard health state machine, and a shard declared failed is
// quarantined — drained, excluded from routing, and later reabsorbed
// from a fresh partition (supervisor.go).
package shard

import (
	"fmt"
	"sort"
	"sync"

	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
)

// DefaultCutType is the containment level shards are cut at.
const DefaultCutType = "rack"

// DefaultStealsPerRound bounds how many jobs one rebalance round moves.
const DefaultStealsPerRound = 8

// DefaultMaxStealsPerJob bounds how often a single job may be stolen,
// preventing ping-pong between saturated shards.
const DefaultMaxStealsPerJob = 2

// Config parameterizes New.
type Config struct {
	// Graph is the finalized flat cluster graph to partition. It is only
	// read (Partition clones it); the caller keeps ownership. The router
	// keeps a reference so a failed shard can be rebuilt from a fresh
	// partition at reabsorb time.
	Graph *resgraph.Graph
	// Shards is the partition width (>= 1).
	Shards int
	// CutType is the containment type units are cut at (default "rack").
	CutType string
	// MatchPolicy names the per-shard match policy (default "first").
	MatchPolicy string
	// Queue is the per-shard queue policy (default Conservative).
	Queue sched.QueuePolicy
	// SchedOpts apply to every shard scheduler (queue depth, retries…).
	// Sharded runs are WAL-free; do not attach journals to the shards.
	SchedOpts []sched.SchedOption
	// Defense applies the sched self-defense layer (panic fences around
	// match attempts, poison-job quarantine, cycle watchdog, admission
	// backpressure) to every shard scheduler. Nil leaves the raw match
	// path. Equivalent to appending sched.WithDefense to SchedOpts; kept
	// as a first-class field so fluxion.NewSharded can plumb it through.
	Defense *sched.DefenseConfig
	// Supervisor enables the shard supervision layer: per-shard cycle
	// fences and deadlines, the health state machine, failover drains,
	// and reabsorption (see supervisor.go). Nil disables supervision and
	// cycles dispatch straight to the shard schedulers.
	Supervisor *SupervisorConfig
	// StealsPerRound bounds rebalance work per round (0 = default,
	// negative = stealing disabled).
	StealsPerRound int
	// MaxStealsPerJob bounds how often one job may move (0 = default).
	MaxStealsPerJob int
}

// RouterStats counts the router's placement work.
type RouterStats struct {
	// Routed counts jobs placed on a shard at submit.
	Routed int64
	// Rerouted counts submit-time overflows: the residue-ranked shard
	// declared the job unsatisfiable and the router moved on to the
	// next-best shard.
	Rerouted int64
	// Steals counts jobs the rebalancer moved between shards.
	Steals int64
	// Unroutable counts jobs no shard could ever fit (a job spanning
	// more than one shard's capacity is unsatisfiable under sharding;
	// this is part of the quantified quality cost of hierarchy).
	Unroutable int64
}

// retiredShard is the byJob sentinel for jobs whose owning scheduler was
// discarded at reabsorb time (their terminal records live in the
// supervisor's retired table) and for jobs lost to a shard failure.
const retiredShard = -1

// shardState is one partition: its graph, traverser, scheduler loop,
// the router-side residue/demand caches, and the supervisor-side health
// bookkeeping.
type shardState struct {
	idx int
	g   *resgraph.Graph
	tr  *traverser.Traverser
	s   *sched.Scheduler

	// cap is the shard's static aggregate capacity per resource type
	// (the root vertex's containment aggregates), fixed at build.
	cap map[string]int64

	// residue caches the shard root filter's free units per type at
	// residueAt; dirty is set from the shard graph's delta sink (any
	// free, claim, or structural delta invalidates the cache) and by
	// hand after every scheduling cycle (immediate allocations are
	// deliberately delta-silent). The cache is also keyed by the clock,
	// since availability is time-dependent even without deltas.
	residue   map[string]int64
	residueAt int64
	dirty     bool

	// queued is the aggregate resource demand of jobs routed here and
	// not yet running (pending + reserved), refreshed every rebalance
	// round and maintained incrementally between rounds.
	queued map[string]int64

	// Supervisor state (supervisor.go). health is Healthy (zero value)
	// when no supervisor is configured. cycled/tripped/slow are the
	// cycle outcome flags: written by the fenced cycle on whichever
	// goroutine ran it, consumed by supervise() after the cycle barrier.
	health     Health
	strikes    int   // consecutive bad cycles while Healthy
	probeFails int   // counted bad probe cycles while Suspect
	backoff    int   // rounds between counted probes, doubling per fail
	countdown  int   // rounds until the next counted probe
	graceUntil int64 // deadline to await a failed shard's running jobs
	awaiting   bool  // failed shard still awaiting running jobs
	cycled     bool  // ran a fenced cycle this round
	tripped    bool
	tripMsg    string
	slow       bool
}

// placeable reports whether the router may place new work on the shard:
// failed shards are excluded from residue scoring entirely, which is the
// root-view equivalent of marking their subtrees down.
func (st *shardState) placeable() bool { return st.health != Failed }

// eventful reports whether the lockstep driver still owes the shard
// event dispatch: live shards always, failed shards only while awaiting
// running jobs under the grace timeout. A failed shard past that is
// dark — its clock freezes until reabsorption rebuilds it.
func (st *shardState) eventful() bool { return st.health != Failed || st.awaiting }

// Sharded is N independent shard scheduler loops behind one
// residue-routing front door. It mirrors the sched.Scheduler driver
// surface (Submit/Schedule/Step/AdvanceTo/Run/Metrics) so drivers can
// swap it in for a flat scheduler.
//
// Public methods are safe for concurrent use: a single mutex serializes
// the driver surface (the concurrency is inside — shard cycles run in
// parallel under the lock). Discrete-event semantics still assume one
// logical driver advancing the clock; concurrent callers see a
// consistent snapshot between steps.
type Sharded struct {
	mu sync.Mutex

	shards []*shardState
	byJob  map[int64]int // job ID -> owning shard (retiredShard = retired)
	steals map[int64]int // job ID -> times stolen
	stats  RouterStats

	// Partition inputs, kept so reabsorption can rebuild a failed
	// shard's slab graph and scheduler from scratch.
	srcGraph    *resgraph.Graph
	cutType     string
	matchPolicy string
	schedOpts   []sched.SchedOption

	policy          sched.QueuePolicy
	stealsPerRound  int
	maxStealsPerJob int

	// sup is the supervision layer (nil = unsupervised cycles).
	sup *supervisor

	// needScratch is reused per routing decision.
	needScratch map[string]int64
}

// New partitions cfg.Graph and builds one incremental scheduler loop
// per shard.
func New(cfg Config) (*Sharded, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("shard: graph is required")
	}
	n := cfg.Shards
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d", n)
	}
	cut := cfg.CutType
	if cut == "" {
		cut = DefaultCutType
	}
	qp := cfg.Queue
	if qp == "" {
		qp = sched.Conservative
	}
	parts, err := cfg.Graph.Partition(cut, n)
	if err != nil {
		return nil, err
	}
	sopts := cfg.SchedOpts
	if cfg.Defense != nil {
		// Clamp capacity so the append cannot scribble on the caller's
		// backing array.
		sopts = append(sopts[:len(sopts):len(sopts)], sched.WithDefense(*cfg.Defense))
	}
	sh := &Sharded{
		shards:          make([]*shardState, n),
		byJob:           make(map[int64]int),
		steals:          make(map[int64]int),
		srcGraph:        cfg.Graph,
		cutType:         cut,
		matchPolicy:     cfg.MatchPolicy,
		schedOpts:       sopts,
		policy:          qp,
		stealsPerRound:  cfg.StealsPerRound,
		maxStealsPerJob: cfg.MaxStealsPerJob,
		needScratch:     make(map[string]int64),
	}
	if sh.stealsPerRound == 0 {
		sh.stealsPerRound = DefaultStealsPerRound
	}
	if sh.maxStealsPerJob == 0 {
		sh.maxStealsPerJob = DefaultMaxStealsPerJob
	}
	if cfg.Supervisor != nil {
		sh.sup = newSupervisor(*cfg.Supervisor)
	}
	for k, g := range parts {
		st := &shardState{
			idx:     k,
			residue: make(map[string]int64),
			queued:  make(map[string]int64),
		}
		tr, s, err := sh.buildCore(g)
		if err != nil {
			return nil, err
		}
		st.attach(g, tr, s)
		sh.shards[k] = st
	}
	return sh, nil
}

// buildCore constructs a shard's traverser and scheduler over g from the
// router's recorded configuration — shared between New and reabsorption.
func (sh *Sharded) buildCore(g *resgraph.Graph) (*traverser.Traverser, *sched.Scheduler, error) {
	pol, err := match.Lookup(sh.matchPolicy)
	if err != nil {
		return nil, nil, err
	}
	tr, err := traverser.New(g, pol)
	if err != nil {
		return nil, nil, err
	}
	s, err := sched.New(tr, sh.policy, sh.schedOpts...)
	if err != nil {
		return nil, nil, err
	}
	return tr, s, nil
}

// attach wires a freshly built graph/traverser/scheduler triple into the
// shard slot: static capacity from the root aggregates, and the router's
// residue invalidation chained behind whatever delta sink sched.New
// installed (the incremental wakeup index). Delta publication is
// synchronous and per-graph, so the flag write happens on whichever
// goroutine runs this shard's cycle; the router reads it only after the
// cycle barrier.
func (st *shardState) attach(g *resgraph.Graph, tr *traverser.Traverser, s *sched.Scheduler) {
	st.g, st.tr, st.s = g, tr, s
	root := g.Root(resgraph.Containment)
	st.cap = make(map[string]int64, 8)
	for t, c := range root.Aggregates() {
		st.cap[t] = c
	}
	prev := g.DeltaSink()
	if prev == nil {
		g.SetDeltaSink(func(resgraph.Delta) { st.dirty = true })
	} else {
		g.SetDeltaSink(func(d resgraph.Delta) {
			prev(d)
			st.dirty = true
		})
	}
	for t := range st.residue {
		delete(st.residue, t)
	}
	for t := range st.queued {
		delete(st.queued, t)
	}
	st.residueAt = 0
	st.dirty = true
}

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// ShardScheduler exposes shard i's scheduler loop (tests, stats). The
// pointer is replaced when a failed shard is reabsorbed.
func (sh *Sharded) ShardScheduler(i int) *sched.Scheduler {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.shards[i].s
}

// ShardGraph exposes shard i's resource graph (tests, stats). The
// pointer is replaced when a failed shard is reabsorbed.
func (sh *Sharded) ShardGraph(i int) *resgraph.Graph {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.shards[i].g
}

// RouterStats returns the router's cumulative placement counters.
func (sh *Sharded) RouterStats() RouterStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stats
}

// Job returns a submitted job by ID, from whichever shard owns it —
// including terminal records retired from reabsorbed shards.
func (sh *Sharded) Job(id int64) (*sched.Job, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.job(id)
}

func (sh *Sharded) job(id int64) (*sched.Job, bool) {
	k, ok := sh.byJob[id]
	if !ok {
		return nil, false
	}
	if k == retiredShard {
		j, ok := sh.sup.retired[id]
		return j, ok
	}
	return sh.shards[k].s.Job(id)
}

// eachJob visits every job the router knows: live shard tables plus the
// retired records preserved across reabsorptions.
func (sh *Sharded) eachJob(fn func(*sched.Job)) {
	for _, st := range sh.shards {
		for _, j := range st.s.Jobs() {
			fn(j)
		}
	}
	if sh.sup != nil {
		for _, j := range sh.sup.retired {
			fn(j)
		}
	}
}

// Jobs returns a merged snapshot of every shard's job table (plus
// retired records from reabsorbed shards).
func (sh *Sharded) Jobs() map[int64]*sched.Job {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[int64]*sched.Job)
	sh.eachJob(func(j *sched.Job) { out[j.ID] = j })
	return out
}

// Atomic runs fn; sharded runs are journal-free, so there is no command
// unit to widen — the method exists so drivers written against
// sched.Scheduler work unchanged. fn may call the public driver surface
// (it runs outside the router lock).
func (sh *Sharded) Atomic(fn func()) { fn() }

// Counts tallies jobs per state across all shards.
func (sh *Sharded) Counts() map[sched.JobState]int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[sched.JobState]int)
	sh.eachJob(func(j *sched.Job) { out[j.State]++ })
	return out
}

// Unfinished counts jobs still pending, reserved, or running.
func (sh *Sharded) Unfinished() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := 0
	for _, st := range sh.shards {
		n += st.s.Unfinished()
	}
	return n
}

// Stats sums the shard schedulers' work counters, including counters
// folded in from schedulers discarded at reabsorb time.
func (sh *Sharded) Stats() sched.Stats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out sched.Stats
	if sh.sup != nil {
		out = sh.sup.retiredStats
	}
	for _, st := range sh.shards {
		s := st.s.Stats()
		out.Cycles += s.Cycles
		out.MatchAttempts += s.MatchAttempts
		out.WokenJobs += s.WokenJobs
		out.SkippedJobs += s.SkippedJobs
		out.Quarantined += s.Quarantined
		out.DegradedCycles += s.DegradedCycles
		out.OverloadRejects += s.OverloadRejects
		out.InvalidSpecRejects += s.InvalidSpecRejects
	}
	return out
}

// Cycles sums scheduling cycles across shards.
func (sh *Sharded) Cycles() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := 0
	if sh.sup != nil {
		n = sh.sup.retiredCycles
	}
	for _, st := range sh.shards {
		n += st.s.Cycles
	}
	return n
}

// Metrics computes run statistics over the merged job table, mirroring
// sched.Metrics: utilization and makespan span the whole system (node
// capacity summed across shard roots, makespan from the global earliest
// submit to the global last completion). Requeue and lost-core counters
// fold in both live shards and schedulers discarded at reabsorb time.
func (sh *Sharded) Metrics() sched.Metrics {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var m sched.Metrics
	var firstSubmit, lastEnd int64 = 1 << 62, 0
	var waits int64
	nodeCapacity := int64(0)
	if sh.sup != nil {
		m.Requeues = sh.sup.retiredMetrics.Requeues
		m.LostCoreSeconds = sh.sup.retiredMetrics.LostCoreSeconds
	}
	for _, st := range sh.shards {
		if root := st.g.Root(resgraph.Containment); root != nil {
			nodeCapacity += root.Aggregates()["node"]
		}
		sm := st.s.Metrics()
		m.Requeues += sm.Requeues
		m.LostCoreSeconds += sm.LostCoreSeconds
	}
	sh.eachJob(func(j *sched.Job) {
		m.TotalMatch += j.MatchDuration
		switch j.State {
		case sched.StateFailed:
			m.Failed++
			return
		case sched.StateQuarantined:
			m.Quarantined++
			return
		case sched.StateUnsatisfiable:
			m.Unsatisfiable++
			return
		case sched.StateCompleted:
			m.Completed++
		default:
			return
		}
		if j.Submit < firstSubmit {
			firstSubmit = j.Submit
		}
		if j.EndAt > lastEnd {
			lastEnd = j.EndAt
		}
		wait := j.StartAt - j.Submit
		waits += wait
		if wait > m.MaxWait {
			m.MaxWait = wait
		}
		if j.Alloc != nil {
			m.NodeSecondsUsed += int64(len(j.Alloc.Nodes())) * (j.EndAt - j.StartAt)
		}
	})
	if m.Completed > 0 {
		m.Makespan = lastEnd - firstSubmit
		m.MeanWait = float64(waits) / float64(m.Completed)
		m.NodeSecondsTotal = nodeCapacity * m.Makespan
	}
	return m
}

// Withdraw removes a job from whichever shard owns it (see
// sched.Scheduler.Withdraw). Retired records are simply dropped.
func (sh *Sharded) Withdraw(id int64) (*sched.Job, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	k, ok := sh.byJob[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", traverser.ErrUnknownJob, id)
	}
	if k == retiredShard {
		job := sh.sup.retired[id]
		delete(sh.sup.retired, id)
		delete(sh.byJob, id)
		delete(sh.steals, id)
		return job, nil
	}
	job, err := sh.shards[k].s.Withdraw(id)
	if err != nil {
		return nil, err
	}
	delete(sh.byJob, id)
	delete(sh.steals, id)
	sh.shards[k].refreshDemand()
	return job, nil
}

// Now returns the lockstep simulated clock: the maximum across shard
// clocks. Live clocks agree after every step, but a dark (failed) shard
// freezes at its failure time and uneven AdvanceTo progress is possible
// between steps — the max is the time the system as a whole has reached
// and never regresses.
func (sh *Sharded) Now() int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.now()
}

func (sh *Sharded) now() int64 {
	t := int64(0)
	for _, st := range sh.shards {
		if n := st.s.Now(); n > t {
			t = n
		}
	}
	return t
}

// HasEvents reports whether any live shard has pending events.
func (sh *Sharded) HasEvents() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.hasEvents()
}

func (sh *Sharded) hasEvents() bool {
	for _, st := range sh.shards {
		if st.eventful() && st.s.HasEvents() {
			return true
		}
	}
	return false
}

// NextEventAt returns the earliest pending event time across live
// shards (-1 when none).
func (sh *Sharded) NextEventAt() int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.nextEventAt()
}

func (sh *Sharded) nextEventAt() int64 {
	at := int64(-1)
	for _, st := range sh.shards {
		if !st.eventful() || !st.s.HasEvents() {
			continue
		}
		if t := st.s.NextEventAt(); at < 0 || t < at {
			at = t
		}
	}
	return at
}

// AdvanceTo moves every live shard clock forward to t in lockstep. Dark
// shards stay frozen; reabsorption advances them when they rebuild.
func (sh *Sharded) AdvanceTo(t int64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.advanceTo(t)
}

func (sh *Sharded) advanceTo(t int64) error {
	for _, st := range sh.shards {
		if !st.eventful() {
			continue
		}
		if err := st.s.AdvanceTo(t); err != nil {
			return err
		}
	}
	return nil
}

// Step advances every live shard to the next global event instant:
// shards with events there run their Step (dispatch + cycle)
// concurrently — their graphs, planners, and queues are fully disjoint —
// and the rest just advance their clocks. The supervisor then digests
// cycle outcomes (health transitions, failover drains, recovery probes)
// and one rebalance round follows. Returns false when no events remain
// on any live shard.
func (sh *Sharded) Step() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.step()
}

func (sh *Sharded) step() bool {
	t := sh.nextEventAt()
	if t < 0 {
		return false
	}
	var steppers []*shardState
	for _, st := range sh.shards {
		if !st.eventful() {
			continue
		}
		if st.s.HasEvents() && st.s.NextEventAt() == t {
			steppers = append(steppers, st)
		} else if err := st.s.AdvanceTo(t); err != nil {
			// Unreachable by construction (t is the global minimum);
			// surface loudly rather than silently desynchronizing.
			panic(fmt.Sprintf("shard: lockstep advance to %d: %v", t, err))
		}
	}
	sh.runCycles(steppers, true)
	sh.supervise()
	sh.rebalance()
	return true
}

// Schedule runs one scheduling cycle on every live shard concurrently,
// then the supervisor digest and one rebalance round.
func (sh *Sharded) Schedule() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.schedule()
}

func (sh *Sharded) schedule() {
	var active []*shardState
	for _, st := range sh.shards {
		if st.health != Failed {
			active = append(active, st)
		}
	}
	sh.runCycles(active, false)
	sh.supervise()
	sh.rebalance()
}

// runCycles fans one cycle (step = event dispatch + cycle, otherwise a
// plain scheduling cycle) across the given shards. Without a supervisor
// the cycles dispatch straight to the shard schedulers — no fence, no
// clock reads — preserving the unsupervised hot path; with one, every
// cycle runs inside the panic fence and deadline watch (supervisor.go).
//
// A cycle's immediate allocations publish no delta (a claim cannot
// unblock a waiting job, so the wakeup index ignores them), but they do
// consume residue: the cache is dirtied by hand after every cycle.
func (sh *Sharded) runCycles(shards []*shardState, step bool) {
	if sh.sup == nil {
		if step {
			runParallel(shards, func(st *shardState) { st.s.Step(); st.dirty = true })
		} else {
			runParallel(shards, func(st *shardState) { st.s.Schedule(); st.dirty = true })
		}
		return
	}
	runParallel(shards, func(st *shardState) { sh.fencedCycle(st, step) })
}

// Run schedules and steps until every satisfiable job completes (or
// maxSteps, 0 = unbounded). Returns completed jobs.
func (sh *Sharded) Run(maxSteps int) int {
	sh.Schedule()
	steps := 0
	for sh.Step() {
		steps++
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
	}
	done := 0
	for _, j := range sh.Jobs() {
		if j.State == sched.StateCompleted {
			done++
		}
	}
	return done
}

// runParallel fans fn across the given shards. A single shard runs
// inline: the 1-shard configuration takes exactly the flat scheduler's
// code path, goroutine-free.
func runParallel(shards []*shardState, fn func(*shardState)) {
	if len(shards) == 0 {
		return
	}
	if len(shards) == 1 {
		fn(shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, st := range shards {
		wg.Add(1)
		go func(st *shardState) {
			defer wg.Done()
			fn(st)
		}(st)
	}
	wg.Wait()
}

// sortCands orders routing candidates by descending headroom, ties by
// shard index (deterministic for a given graph + queue state).
func sortCands(cands []cand) {
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
}
