package shard

// This file is the shard supervision layer: shards are the scheduler's
// failure domains, and the supervisor makes a shard failure a contained,
// recoverable event instead of a process-wide crash or a wedged lockstep
// driver.
//
// Every supervised cycle runs behind a panic fence and (optionally) a
// wall-clock cycle deadline — the per-shard analogue of the
// internal/sched defense fences, one level up: sched's fence contains a
// poisoned *job*, this one contains a poisoned *shard*. Cycle outcomes
// drive a per-shard health state machine:
//
//	Healthy --consecutive bad cycles--> Suspect
//	Suspect --good cycle--> Healthy
//	Suspect --probe failures (exponential backoff)--> Failed
//	Failed  --rebuild probe succeeds--> Recovering --> Healthy
//
// A Suspect shard stays fully in rotation (the discrete-event lockstep
// cannot pause a shard without skipping its events); suspicion only
// changes the bookkeeping — probes are counted cycles spaced by a
// doubling backoff, so a shard flapping under transient load gets
// geometrically more slack before the failover hammer falls.
//
// Failing a shard quarantines it: the router stops placing to it and
// drops its subtrees from residue scoring (placeable()), its pending and
// reserved jobs drain to surviving shards through the work-stealing
// submit path, and its running jobs are awaited under a simulated-time
// grace window — completions still dispatch through fenced cycles — or
// evicted through the sched.NodeDown requeue path when the grace expires
// or a fault trips during the wait. A drained shard goes dark: excluded
// from the lockstep clock entirely, frozen until reabsorption.
//
// Reabsorption rebuilds the shard from scratch: partitioning is
// deterministic, so re-partitioning the source graph reproduces the
// shard's exact subtree; a fresh traverser/scheduler is built over it,
// advanced to the lockstep clock, and probed with one fenced cycle (the
// chaos hook included — a persisting fault fails the probe and the
// rebuild is discarded). On success the old scheduler's terminal job
// records and counters are retired into the supervisor's tables and the
// new core is attached. The same rebuild path backs the operator
// Reabsorb and the automatic recovery probes.

import (
	"fmt"
	"sort"
	"time"

	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
)

// Health is a shard's supervision state.
type Health uint8

// Shard health states.
const (
	// Healthy shards take placements and run cycles normally.
	Healthy Health = iota
	// Suspect shards tripped the cycle fence or deadline; they stay in
	// rotation while backoff probes decide between recovery and failure.
	Suspect
	// Failed shards are quarantined: unroutable, drained, and (once any
	// running jobs resolve) dark until reabsorbed.
	Failed
	// Recovering is the transient state while a rebuild probe runs.
	Recovering
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Recovering:
		return "recovering"
	default:
		return "unknown"
	}
}

// Supervisor defaults (see SupervisorConfig).
const (
	DefaultSuspectAfter  = 1
	DefaultFailAfter     = 2
	DefaultProbeBackoff  = 1
	DefaultRecoveryProbe = 4
	DefaultGraceSeconds  = 60
)

// SupervisorConfig parameterizes the shard supervision layer. The zero
// value enables supervision with the defaults above.
type SupervisorConfig struct {
	// SuspectAfter is how many consecutive bad cycles (fence trips or
	// deadline misses) move a healthy shard to Suspect (default 1).
	SuspectAfter int
	// FailAfter is how many counted probe failures move a suspect shard
	// to Failed (default 2). Probes are spaced by an exponentially
	// doubling round backoff starting at ProbeBackoff.
	FailAfter int
	// ProbeBackoff is the initial number of rounds between counted
	// probes while Suspect (default 1); it doubles after each failure.
	ProbeBackoff int
	// RecoveryProbe is the initial number of supervise rounds between
	// automatic reabsorption attempts for a failed shard (default 4,
	// doubling after each failed probe). Negative disables automatic
	// recovery — the shard stays down until an operator Reabsorb.
	RecoveryProbe int
	// GraceSeconds bounds, in simulated seconds, how long a failed
	// shard's running jobs are awaited before being evicted through the
	// requeue path (default 60). Negative evicts immediately.
	GraceSeconds int64
	// CycleDeadline is the wall-clock budget per shard cycle; exceeding
	// it counts as a bad cycle (0 disables the deadline watch).
	CycleDeadline time.Duration
}

// HealthEvent is one health-state transition, for the supervisor event
// log (operator forensics, CI artifacts).
type HealthEvent struct {
	// At is the simulated time of the transition.
	At int64
	// Shard is the shard index.
	Shard int
	// From and To are the states. From == To marks an in-state action
	// (eviction of a failed shard's running jobs).
	From, To Health
	// Reason is the trigger: the panic message, "cycle deadline
	// exceeded", an operator note, "reabsorbed", …
	Reason string
}

func (e HealthEvent) String() string {
	return fmt.Sprintf("t=%d shard %d %s -> %s (%s)", e.At, e.Shard, e.From, e.To, e.Reason)
}

// SupervisorStats counts the supervision layer's work.
type SupervisorStats struct {
	// Trips counts cycle panic-fence trips.
	Trips int64
	// DeadlineMisses counts cycles over the cycle deadline.
	DeadlineMisses int64
	// Failures counts Suspect→Failed (and operator-forced) transitions.
	Failures int64
	// Recoveries counts successful reabsorptions.
	Recoveries int64
	// Probes counts counted suspect probes and recovery probes.
	Probes int64
	// Drained counts pending/reserved jobs moved off failed shards onto
	// survivors.
	Drained int64
	// Evicted counts running jobs evicted from failed shards through the
	// requeue path.
	Evicted int64
	// Lost counts jobs no surviving shard could hold (recorded
	// StateFailed) plus non-terminal stragglers discarded at retire.
	Lost int64
}

// supervisor is the supervision state shared across shards: config, the
// event log, counters, the chaos cycle hook, and the retired-job tables
// that preserve history across reabsorptions.
type supervisor struct {
	cfg       SupervisorConfig
	events    []HealthEvent
	stats     SupervisorStats
	cycleHook func(shard int, now int64)

	// retired holds terminal job records whose owning scheduler was
	// discarded at reabsorb time, plus jobs lost to failures; byJob maps
	// them to the retiredShard sentinel.
	retired map[int64]*sched.Job
	// retiredMetrics/retiredStats/retiredCycles fold discarded
	// schedulers' counters into the merged accessors.
	retiredMetrics sched.Metrics
	retiredStats   sched.Stats
	retiredCycles  int
	// touched records every job a failover moved, evicted, or lost —
	// the complement of the decision-parity set.
	touched map[int64]struct{}
}

// newSupervisor resolves defaults.
func newSupervisor(cfg SupervisorConfig) *supervisor {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.ProbeBackoff <= 0 {
		cfg.ProbeBackoff = DefaultProbeBackoff
	}
	if cfg.RecoveryProbe == 0 {
		cfg.RecoveryProbe = DefaultRecoveryProbe
	}
	if cfg.GraceSeconds == 0 {
		cfg.GraceSeconds = DefaultGraceSeconds
	}
	return &supervisor{
		cfg:     cfg,
		retired: make(map[int64]*sched.Job),
		touched: make(map[int64]struct{}),
	}
}

// SetCycleHook installs fn at the top of every supervised shard cycle —
// the chaos injection point (chaos.Plan.ShardHook). Installing a hook on
// an unsupervised Sharded enables a default-config supervisor, mirroring
// sched.SetMatchHook: injecting faults implies wanting the fences.
func (sh *Sharded) SetCycleHook(fn func(shard int, now int64)) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sup == nil {
		sh.sup = newSupervisor(SupervisorConfig{})
	}
	sh.sup.cycleHook = fn
}

// Supervised reports whether the shard supervision layer is enabled.
func (sh *Sharded) Supervised() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sup != nil
}

// ShardHealth returns shard i's supervision state (Healthy when
// unsupervised).
func (sh *Sharded) ShardHealth(i int) Health {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.shards[i].health
}

// HealthEvents returns a copy of the supervisor's transition log.
func (sh *Sharded) HealthEvents() []HealthEvent {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sup == nil {
		return nil
	}
	out := make([]HealthEvent, len(sh.sup.events))
	copy(out, sh.sup.events)
	return out
}

// SupervisorStats returns the supervision layer's counters.
func (sh *Sharded) SupervisorStats() SupervisorStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sup == nil {
		return SupervisorStats{}
	}
	return sh.sup.stats
}

// TouchedJobs returns the sorted IDs of every job a failover moved,
// evicted, or lost — the jobs excluded from decision-parity claims.
func (sh *Sharded) TouchedJobs() []int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sup == nil {
		return nil
	}
	out := make([]int64, 0, len(sh.sup.touched))
	for id := range sh.sup.touched {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// FailShard administratively fails shard i with the given reason: the
// router stops placing to it, pending and reserved jobs drain to the
// survivors, running jobs are awaited under the grace window (or evicted
// immediately when grace is negative). The shard returns to rotation via
// automatic recovery probes or an operator Reabsorb. Enables a
// default-config supervisor if none is configured.
func (sh *Sharded) FailShard(i int, reason string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if i < 0 || i >= len(sh.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	if sh.sup == nil {
		sh.sup = newSupervisor(SupervisorConfig{})
	}
	st := sh.shards[i]
	if st.health == Failed {
		return nil
	}
	sh.failShard(st, sh.now(), "operator: "+reason)
	return nil
}

// Reabsorb rebuilds failed shard i from a fresh partition and returns it
// to rotation — the operator override of the automatic probe schedule.
// Running jobs still awaited under grace are evicted first.
func (sh *Sharded) Reabsorb(i int) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if i < 0 || i >= len(sh.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	st := sh.shards[i]
	if st.health != Failed {
		return fmt.Errorf("shard: shard %d is %s, not failed", i, st.health)
	}
	if st.awaiting {
		sh.evictShard(st, sh.now(), "operator reabsorb")
	}
	sh.sup.stats.Probes++
	return sh.tryReabsorb(st)
}

// fencedCycle runs one shard cycle (step = event dispatch + cycle,
// otherwise a plain scheduling cycle) behind the supervisor's panic
// fence and deadline watch, recording the outcome in the shard's trip
// flags. It runs on the shard's cycle goroutine; each shard writes only
// its own flags and supervise() consumes them after the cycle barrier.
//
// The chaos hook runs inside the fence, before dispatch: an injected
// kill panics out before any event or queue mutation, so a killed cycle
// leaves the shard scheduler's state exactly as it was — important for
// the decision-parity property, and true of sched's own fences for
// organic panics (the traverser unlocks via defers).
func (sh *Sharded) fencedCycle(st *shardState, step bool) {
	deadline := sh.sup.cfg.CycleDeadline
	var started time.Time
	if deadline > 0 {
		started = time.Now()
	}
	st.cycled = true
	func() {
		defer func() {
			if r := recover(); r != nil {
				st.tripped = true
				st.tripMsg = fmt.Sprint(r)
			}
		}()
		if hook := sh.sup.cycleHook; hook != nil {
			hook(st.idx, st.s.Now())
		}
		if step {
			st.s.Step()
		} else {
			st.s.Schedule()
		}
	}()
	st.dirty = true
	if deadline > 0 && time.Since(started) > deadline {
		st.slow = true
	}
}

// supervise digests the round's cycle outcomes after the cycle barrier:
// trip/deadline flags drive each shard's health state machine, failed
// shards' grace windows are policed, and recovery probes fire on their
// backoff schedule. Runs with the router lock held, shards in index
// order — transitions are deterministic for a given cycle outcome.
func (sh *Sharded) supervise() {
	sup := sh.sup
	if sup == nil {
		return
	}
	now := sh.now()
	for _, st := range sh.shards {
		cycled := st.cycled
		bad := st.tripped || st.slow
		reason := st.tripMsg
		if reason == "" && st.slow {
			reason = "cycle deadline exceeded"
		}
		if st.tripped {
			sup.stats.Trips++
		}
		if st.slow {
			sup.stats.DeadlineMisses++
		}
		st.cycled, st.tripped, st.slow, st.tripMsg = false, false, false, ""
		switch st.health {
		case Healthy:
			if !cycled {
				continue
			}
			if !bad {
				st.strikes = 0
				continue
			}
			st.strikes++
			if st.strikes >= sup.cfg.SuspectAfter {
				sh.transition(st, Suspect, reason)
				st.probeFails = 0
				st.backoff = sup.cfg.ProbeBackoff
				st.countdown = 0
			}
		case Suspect:
			if !cycled {
				// No fenced cycle ran this round (a lockstep step with
				// no event here), so there is no verdict to digest: a
				// quiet shard is neither recovered nor worse.
				continue
			}
			if !bad {
				sh.transition(st, Healthy, "cycle recovered")
				st.strikes, st.probeFails = 0, 0
				continue
			}
			if st.countdown > 0 {
				st.countdown--
				continue
			}
			sup.stats.Probes++
			st.probeFails++
			if st.probeFails >= sup.cfg.FailAfter {
				sh.failShard(st, now, reason)
			} else {
				st.countdown = st.backoff
				st.backoff *= 2
			}
		case Failed:
			if st.awaiting {
				if runningCount(st) == 0 {
					// The awaited running jobs all resolved; go dark.
					st.awaiting = false
				} else if bad || now >= st.graceUntil {
					why := "grace expired, evicting running jobs"
					if bad {
						why = "cycle fault while awaiting: " + reason
					}
					sh.evictShard(st, now, why)
				}
			}
			if !st.awaiting && sup.cfg.RecoveryProbe > 0 {
				if st.countdown > 0 {
					st.countdown--
				} else {
					sup.stats.Probes++
					if sh.tryReabsorb(st) != nil {
						st.countdown = st.backoff
						st.backoff *= 2
					}
				}
			}
		}
	}
}

// transition logs and applies one health-state change.
func (sh *Sharded) transition(st *shardState, to Health, reason string) {
	sh.sup.events = append(sh.sup.events, HealthEvent{
		At: sh.now(), Shard: st.idx, From: st.health, To: to, Reason: reason,
	})
	st.health = to
}

// runningCount counts a shard's jobs in StateRunning.
func runningCount(st *shardState) int {
	n := 0
	for _, j := range st.s.Jobs() {
		if j.State == sched.StateRunning {
			n++
		}
	}
	return n
}

// failShard quarantines a shard: transition to Failed, drain its queue
// to survivors, and settle its running jobs (await under grace, or evict
// immediately when grace is negative). Recovery probes are armed with
// the doubling backoff.
func (sh *Sharded) failShard(st *shardState, now int64, reason string) {
	sup := sh.sup
	sup.stats.Failures++
	sh.transition(st, Failed, reason)
	sh.drainShard(st)
	switch {
	case runningCount(st) == 0:
		st.awaiting = false
	case sup.cfg.GraceSeconds < 0:
		sh.evictShard(st, now, "no grace, evicting running jobs")
	default:
		st.awaiting = true
		st.graceUntil = now + sup.cfg.GraceSeconds
	}
	if sup.cfg.RecoveryProbe > 0 {
		st.countdown = sup.cfg.RecoveryProbe
		st.backoff = sup.cfg.RecoveryProbe * 2
	}
}

// drainShard moves every pending and reserved job off a failed shard
// onto the surviving shards through the work-stealing submit path:
// candidates ranked by residue headroom (negative headroom still
// qualifies — the job fits later; only static-capacity misfits are
// excluded), submit preserving original Submit/Retries so wait metrics
// stay honest, overflow re-routing on an unsatisfiable verdict. A job no
// survivor's capacity can ever hold is recorded lost (StateFailed) — a
// real cost of losing the shard, counted, not hidden. Receivers run one
// fenced catch-up cycle so drained jobs get a decision this round.
func (sh *Sharded) drainShard(st *shardState) {
	sup := sh.sup
	ids := make([]int64, 0, 8)
	for _, j := range st.s.PendingJobs() {
		ids = append(ids, j.ID)
	}
	var reserved []int64
	for id, j := range st.s.Jobs() {
		if j.State == sched.StateReserved {
			reserved = append(reserved, id)
		}
	}
	sort.Slice(reserved, func(a, b int) bool { return reserved[a] < reserved[b] })
	ids = append(ids, reserved...)
	if len(ids) == 0 {
		return
	}
	now := sh.now()
	need := make(map[string]int64, 4)
	receivers := make(map[int]*shardState)
	for _, id := range ids {
		job, err := st.s.Withdraw(id)
		if err != nil {
			continue
		}
		sup.touched[id] = struct{}{}
		totalsInto(job.Spec, need)
		var cands []cand
		for i, tst := range sh.shards {
			if tst == st || !tst.placeable() {
				continue
			}
			if score, ok := tst.headroom(need, now); ok {
				cands = append(cands, cand{idx: i, score: score})
			}
		}
		sortCands(cands)
		placed := false
		for ci, c := range cands {
			tst := sh.shards[c.idx]
			nj, err := tst.s.SubmitPriority(job.ID, job.Spec, job.Priority)
			if err != nil {
				continue
			}
			if nj.State == sched.StateUnsatisfiable && ci+1 < len(cands) {
				if _, werr := tst.s.Withdraw(job.ID); werr == nil {
					continue
				}
			}
			nj.Submit = job.Submit
			nj.Retries = job.Retries
			sh.byJob[id] = c.idx
			if nj.State != sched.StateUnsatisfiable {
				addDemand(tst.queued, need)
				sup.stats.Drained++
				receivers[c.idx] = tst
			}
			placed = true
			break
		}
		if !placed {
			job.State = sched.StateFailed
			sup.retired[id] = job
			sh.byJob[id] = retiredShard
			sup.stats.Lost++
		}
	}
	if len(receivers) == 0 {
		return
	}
	list := make([]*shardState, 0, len(receivers))
	for _, tst := range receivers {
		list = append(list, tst)
	}
	sort.Slice(list, func(a, b int) bool { return list[a].idx < list[b].idx })
	sh.runCycles(list, false)
}

// evictShard forces a failed shard's running jobs through the requeue
// path — sched.NodeDown on the shard root marks the whole subtree down,
// evicting running jobs (Retries++, lost core-seconds accounted) and
// dropping reservations — then drains the requeued jobs to survivors and
// takes the shard dark.
func (sh *Sharded) evictShard(st *shardState, now int64, why string) {
	sup := sh.sup
	running := runningCount(st)
	if root := st.g.Root(resgraph.Containment); root != nil {
		if evicted, err := st.s.NodeDown(root.Path()); err == nil {
			for _, id := range evicted {
				sup.touched[id] = struct{}{}
			}
		}
	}
	sup.stats.Evicted += int64(running)
	sup.events = append(sup.events, HealthEvent{
		At: now, Shard: st.idx, From: Failed, To: Failed, Reason: why,
	})
	st.awaiting = false
	sh.drainShard(st)
}

// tryReabsorb rebuilds a failed shard from a fresh partition of the
// source graph (partitioning is deterministic — the rebuilt subtree is
// vertex-for-vertex the shard's original resources), advances it to the
// lockstep clock, and probes it with one fenced cycle. On success the
// old scheduler's records are retired and the new core attached; on
// failure the rebuild is discarded and the shard stays Failed.
func (sh *Sharded) tryReabsorb(st *shardState) error {
	sup := sh.sup
	sh.transition(st, Recovering, "rebuilding from partition")
	fail := func(err error) error {
		sh.transition(st, Failed, "recovery failed: "+err.Error())
		return err
	}
	parts, err := sh.srcGraph.Partition(sh.cutType, len(sh.shards))
	if err != nil {
		return fail(err)
	}
	g := parts[st.idx]
	tr, s, err := sh.buildCore(g)
	if err != nil {
		return fail(err)
	}
	if err := s.AdvanceTo(sh.now()); err != nil {
		return fail(err)
	}
	if err := sh.probeCycle(st.idx, s); err != nil {
		return fail(err)
	}
	sh.retire(st)
	st.attach(g, tr, s)
	st.strikes, st.probeFails, st.countdown, st.backoff = 0, 0, 0, 0
	st.graceUntil, st.awaiting = 0, false
	sh.transition(st, Healthy, "reabsorbed")
	sup.stats.Recoveries++
	return nil
}

// probeCycle runs one fenced scheduling cycle on a rebuilt scheduler —
// cycle hook included, so a still-open chaos fault window (or a real
// recurring fault) fails the probe before the rebuild is committed.
func (sh *Sharded) probeCycle(idx int, s *sched.Scheduler) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe panic: %v", r)
		}
	}()
	started := time.Now()
	if hook := sh.sup.cycleHook; hook != nil {
		hook(idx, s.Now())
	}
	s.Schedule()
	if d := sh.sup.cfg.CycleDeadline; d > 0 && time.Since(started) > d {
		return fmt.Errorf("probe exceeded cycle deadline %s", d)
	}
	return nil
}

// retire preserves a discarded scheduler's history before reabsorption
// replaces it: terminal job records move to the supervisor's retired
// table (byJob keeps resolving them), work counters fold into the
// retired accumulators, and any non-terminal straggler — impossible when
// the drain/evict path ran, defended against anyway — is recorded lost.
func (sh *Sharded) retire(st *shardState) {
	sup := sh.sup
	for id, j := range st.s.Jobs() {
		switch j.State {
		case sched.StateCompleted, sched.StateFailed, sched.StateUnsatisfiable, sched.StateQuarantined:
		default:
			j.State = sched.StateFailed
			sup.stats.Lost++
			sup.touched[id] = struct{}{}
		}
		sup.retired[id] = j
		sh.byJob[id] = retiredShard
	}
	m := st.s.Metrics()
	sup.retiredMetrics.Requeues += m.Requeues
	sup.retiredMetrics.LostCoreSeconds += m.LostCoreSeconds
	stats := st.s.Stats()
	sup.retiredStats.Cycles += stats.Cycles
	sup.retiredStats.MatchAttempts += stats.MatchAttempts
	sup.retiredStats.WokenJobs += stats.WokenJobs
	sup.retiredStats.SkippedJobs += stats.SkippedJobs
	sup.retiredStats.Quarantined += stats.Quarantined
	sup.retiredStats.DegradedCycles += stats.DegradedCycles
	sup.retiredStats.OverloadRejects += stats.OverloadRejects
	sup.retiredStats.InvalidSpecRejects += stats.InvalidSpecRejects
	sup.retiredCycles += st.s.Cycles
}
