package shard

import (
	"errors"
	"testing"

	"fluxion/internal/sched"
	"fluxion/internal/traverser"
)

// TestRoutingSpreadsLoad: on an idle system, successive full-shard jobs
// must land on distinct shards (headroom routing), not pile onto one.
func TestRoutingSpreadsLoad(t *testing.T) {
	sh := newSharded(t, sched.FCFS, "first", 2, 2, 2, 4)
	mustSubmit := func(id, nodes, dur int64) *sched.Job {
		t.Helper()
		j, err := sh.Submit(id, nodeJob(nodes, 4, dur))
		if err != nil {
			t.Fatal(err)
		}
		sh.Schedule()
		return j
	}
	mustSubmit(1, 2, 100)
	mustSubmit(2, 2, 100)
	k1, k2 := sh.byJob[1], sh.byJob[2]
	if k1 == k2 {
		t.Fatalf("both full-shard jobs routed to shard %d", k1)
	}
	for id := int64(1); id <= 2; id++ {
		if j, ok := sh.Job(id); !ok || j.State != sched.StateRunning {
			t.Fatalf("job %d not running (%v)", id, j)
		}
	}
}

// TestWorkStealing: a job left pending on a saturated shard is stolen by
// the rebalancer as soon as another shard's residues fit it, keeping its
// original submit time. FCFS never reserves, so the blocked job stays
// stealable.
func TestWorkStealing(t *testing.T) {
	sh := newSharded(t, sched.FCFS, "first", 2, 2, 2, 4)
	submit := func(id, nodes, dur int64) {
		t.Helper()
		if _, err := sh.Submit(id, nodeJob(nodes, 4, dur)); err != nil {
			t.Fatal(err)
		}
		sh.Schedule()
	}
	submit(1, 2, 100) // fills shard 0 until t=100
	submit(2, 2, 10)  // fills shard 1 until t=10
	if err := sh.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	submit(3, 2, 50) // blocked everywhere; ties to shard 0's queue
	if got := sh.RouterStats().Steals; got != 0 {
		t.Fatalf("premature steal (%d) while no shard had room", got)
	}
	origin := sh.byJob[3]
	sh.Run(0)
	j, ok := sh.Job(3)
	if !ok || j.State != sched.StateCompleted {
		t.Fatalf("job 3 did not complete: %v", j)
	}
	if sh.RouterStats().Steals == 0 {
		t.Fatal("rebalancer never stole the blocked job")
	}
	if sh.byJob[3] == origin {
		t.Fatalf("job 3 still on origin shard %d", origin)
	}
	if j.Submit != 5 {
		t.Errorf("steal lost the submit time: got %d, want 5", j.Submit)
	}
	if j.StartAt != 10 {
		t.Errorf("stolen job started at %d, want 10 (the moment shard 1 drained)", j.StartAt)
	}
}

// TestMaxStealsPerJobCap: a job that has exhausted its per-job steal
// budget stays put even when another shard could take it — the
// anti-ping-pong bound. Replays the TestWorkStealing scenario with job
// 3's budget pre-spent: no steal happens and the job waits out its
// origin shard instead of starting the moment the other shard drains.
func TestMaxStealsPerJobCap(t *testing.T) {
	sh := newSharded(t, sched.FCFS, "first", 2, 2, 2, 4)
	submit := func(id, nodes, dur int64) {
		t.Helper()
		if _, err := sh.Submit(id, nodeJob(nodes, 4, dur)); err != nil {
			t.Fatal(err)
		}
		sh.Schedule()
	}
	submit(1, 2, 100) // fills shard 0 until t=100
	submit(2, 2, 10)  // fills shard 1 until t=10
	if err := sh.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	submit(3, 2, 50) // blocked everywhere; ties to shard 0's queue
	sh.steals[3] = sh.maxStealsPerJob
	origin := sh.byJob[3]
	sh.Run(0)
	if got := sh.RouterStats().Steals; got != 0 {
		t.Fatalf("capped job stolen anyway (%d steals)", got)
	}
	if sh.byJob[3] != origin {
		t.Fatalf("job 3 moved off shard %d despite a spent steal budget", origin)
	}
	j, ok := sh.Job(3)
	if !ok || j.State != sched.StateCompleted {
		t.Fatalf("job 3 did not complete: %v", j)
	}
	if j.StartAt != 100 {
		t.Errorf("job 3 started at %d, want 100 (waits out its origin shard)", j.StartAt)
	}
}

// TestOverflowReroute: the router's headroom ranking can prefer a shard
// whose surviving (post-failure) capacity cannot hold the job — static
// caps are fixed at build and the healthier shard can be buried in queued
// demand. The submit must then overflow: withdrawn from the first choice
// and rerouted to the next-best shard instead of being recorded
// unsatisfiable.
func TestOverflowReroute(t *testing.T) {
	// 3 racks × 2 nodes, 2 shards: shard 0 owns racks 0+2 (4 nodes),
	// shard 1 owns rack 1 (2 nodes).
	sh := newSharded(t, sched.FCFS, "first", 2, 3, 2, 4)
	// Kill 3 of shard 0's nodes: 1 survivor, static cap still 4.
	for _, path := range []string{"/cluster0/rack0/node0", "/cluster0/rack0/node1", "/cluster0/rack2/node4"} {
		if _, err := sh.ShardScheduler(0).NodeDown(path); err != nil {
			t.Fatal(err)
		}
	}
	// Fill shard 1 (residue 0 there; shard 0 keeps residue 1).
	if _, err := sh.Submit(1, nodeJob(2, 4, 500)); err != nil {
		t.Fatal(err)
	}
	sh.Schedule()
	if sh.byJob[1] != 1 {
		t.Fatalf("setup: job 1 routed to shard %d, want 1", sh.byJob[1])
	}
	// 2-node job: shard 0 scores higher (-1 vs -2) but only 1 node
	// survives there — unsatisfiable on arrival, must reroute to shard 1.
	j, err := sh.Submit(2, nodeJob(2, 4, 50))
	if err != nil {
		t.Fatal(err)
	}
	if sh.RouterStats().Rerouted != 1 {
		t.Fatalf("rerouted = %d, want 1", sh.RouterStats().Rerouted)
	}
	if sh.byJob[2] != 1 {
		t.Fatalf("job 2 on shard %d after overflow, want 1", sh.byJob[2])
	}
	if j.State == sched.StateUnsatisfiable {
		t.Fatal("job 2 recorded unsatisfiable despite a feasible shard")
	}
	sh.Run(0)
	if j, _ := sh.Job(2); j.State != sched.StateCompleted {
		t.Fatalf("job 2 finished %v", j.State)
	}
}

// TestUnroutableJob: a job larger than every shard's static capacity is
// recorded unsatisfiable (on shard 0), counted as unroutable — the
// quantified quality cost of partitioning.
func TestUnroutableJob(t *testing.T) {
	sh := newSharded(t, sched.FCFS, "first", 2, 3, 2, 4) // caps 4 and 2 nodes
	j, err := sh.Submit(1, nodeJob(5, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != sched.StateUnsatisfiable {
		t.Fatalf("5-node job state %v, want unsatisfiable", j.State)
	}
	if sh.RouterStats().Unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1", sh.RouterStats().Unroutable)
	}
	if _, ok := sh.Job(1); !ok {
		t.Fatal("unroutable job missing from router table")
	}
}

// TestShardedWithdraw: withdrawing via the router removes the job from
// its owning shard and the routing table; duplicates and unknown IDs
// error cleanly.
func TestShardedWithdraw(t *testing.T) {
	sh := newSharded(t, sched.FCFS, "first", 2, 2, 2, 4)
	if _, err := sh.Submit(1, nodeJob(1, 4, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Submit(1, nodeJob(1, 4, 100)); err == nil {
		t.Fatal("duplicate submit accepted")
	}
	if _, err := sh.Withdraw(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := sh.Job(1); ok {
		t.Fatal("withdrawn job still visible")
	}
	if _, err := sh.Withdraw(1); !errors.Is(err, traverser.ErrUnknownJob) {
		t.Fatalf("second withdraw: %v, want ErrUnknownJob", err)
	}
	// The ID is free for resubmission.
	if _, err := sh.Submit(1, nodeJob(1, 4, 10)); err != nil {
		t.Fatal(err)
	}
	sh.Run(0)
	if j, _ := sh.Job(1); j.State != sched.StateCompleted {
		t.Fatalf("resubmitted job finished %v", j.State)
	}
}

// TestConfigValidation covers New's error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 1}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := testGraph(t, 2, 2, 4)
	if _, err := New(Config{Graph: g, Shards: 0}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := New(Config{Graph: g, Shards: 3}); err == nil {
		t.Fatal("3 shards from 2 racks accepted")
	}
	if _, err := New(Config{Graph: g, Shards: 2, CutType: "nope"}); err == nil {
		t.Fatal("unknown cut type accepted")
	}
	if _, err := New(Config{Graph: g, Shards: 2, MatchPolicy: "bogus"}); err == nil {
		t.Fatal("unknown match policy accepted")
	}
}
