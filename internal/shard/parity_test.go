package shard

import (
	"math/rand"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
)

var testPrune = resgraph.PruneSpec{resgraph.ALL: {"core", "node"}}

func testGraph(t testing.TB, racks, nodes, cores int64) *resgraph.Graph {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(racks, nodes, cores, 0, 0), 0, 1<<40, testPrune)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newFlat(t testing.TB, policy sched.QueuePolicy, matchPolicy string, racks, nodes, cores int64) *sched.Scheduler {
	t.Helper()
	g := testGraph(t, racks, nodes, cores)
	pol, err := match.Lookup(matchPolicy)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traverser.New(g, pol)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(tr, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newSharded(t testing.TB, policy sched.QueuePolicy, matchPolicy string, shards int, racks, nodes, cores int64) *Sharded {
	t.Helper()
	sh, err := New(Config{
		Graph:       testGraph(t, racks, nodes, cores),
		Shards:      shards,
		MatchPolicy: matchPolicy,
		Queue:       policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func nodeJob(n, cores, dur int64) *jobspec.Jobspec {
	return jobspec.New(dur, jobspec.SlotR(n, jobspec.R("node", 1, jobspec.R("core", cores))))
}

type arrival struct {
	at       int64
	id       int64
	priority int
	spec     *jobspec.Jobspec
}

// randomWorkload mirrors the sched package's parity workload: mixed node
// and core requests, staggered arrivals, occasional priority jumps.
func randomWorkload(seed int64, n int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	out := make([]arrival, 0, n)
	at := int64(0)
	for i := 0; i < n; i++ {
		at += rng.Int63n(40)
		nodes := 1 + rng.Int63n(3)
		cores := int64(4)
		if rng.Intn(3) == 0 {
			cores = 1 + rng.Int63n(4)
		}
		dur := 20 + rng.Int63n(150)
		prio := 0
		if rng.Intn(5) == 0 {
			prio = 1 + rng.Intn(3)
		}
		out = append(out, arrival{
			at: at, id: int64(i + 1), priority: prio,
			spec: nodeJob(nodes, cores, dur),
		})
	}
	return out
}

// driver is the discrete-event surface shared by the flat scheduler and
// the sharded router, so one replay loop drives both.
type driver interface {
	HasEvents() bool
	NextEventAt() int64
	Step() bool
	AdvanceTo(int64) error
	SubmitPriority(int64, *jobspec.Jobspec, int) (*sched.Job, error)
	Schedule()
	Run(int) int
	Jobs() map[int64]*sched.Job
	Now() int64
}

func drive(t *testing.T, d driver, work []arrival) {
	t.Helper()
	d.Schedule()
	for _, a := range work {
		for d.HasEvents() && d.NextEventAt() <= a.at {
			d.Step()
		}
		if err := d.AdvanceTo(a.at); err != nil {
			t.Fatal(err)
		}
		if _, err := d.SubmitPriority(a.id, a.spec, a.priority); err != nil {
			t.Fatal(err)
		}
		d.Schedule()
	}
	d.Run(0)
}

// TestOneShardMatchesFlatDecisions is the sharding parity property: with
// a single shard the router is a pass-through over a vertex-for-vertex
// clone of the flat graph, so the sharded scheduler must produce per-job
// decisions (state, start, end) identical to the flat scheduler — for
// every queue policy, several match policies, and several seeds. This
// pins the partition clone (pre-order, paths, intern sequence), the
// router (exactly one candidate), and the lockstep clock to the flat
// code path.
func TestOneShardMatchesFlatDecisions(t *testing.T) {
	for _, policy := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		for _, mp := range []string{"first", "low", "locality"} {
			for seed := int64(1); seed <= 3; seed++ {
				flat := newFlat(t, policy, mp, 2, 4, 4)
				drive(t, flat, randomWorkload(seed, 40))
				sh := newSharded(t, policy, mp, 1, 2, 4, 4)
				drive(t, sh, randomWorkload(seed, 40))

				for id, fj := range flat.Jobs() {
					sj, ok := sh.Job(id)
					if !ok {
						t.Fatalf("%s/%s/seed%d: job %d missing under sharding", policy, mp, seed, id)
					}
					if fj.State != sj.State || fj.StartAt != sj.StartAt || fj.EndAt != sj.EndAt {
						t.Errorf("%s/%s/seed%d: job %d diverged: flat %v@[%d,%d] vs sharded %v@[%d,%d]",
							policy, mp, seed, id,
							fj.State, fj.StartAt, fj.EndAt, sj.State, sj.StartAt, sj.EndAt)
					}
				}
				if flat.Now() != sh.Now() {
					t.Errorf("%s/%s/seed%d: makespan diverged: flat %d vs sharded %d",
						policy, mp, seed, flat.Now(), sh.Now())
				}
				if t.Failed() {
					return
				}
			}
		}
	}
}

// TestShardedCompletesWorkload checks the multi-shard loop end to end:
// every satisfiable job completes, none are lost across router tables,
// and the router accounted for every placement.
func TestShardedCompletesWorkload(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, policy := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
			sh := newSharded(t, policy, "first", n, 4, 4, 4)
			work := randomWorkload(7, 60)
			drive(t, sh, work)
			jobs := sh.Jobs()
			if len(jobs) != len(work) {
				t.Fatalf("%d shards/%s: %d jobs recorded, want %d", n, policy, len(jobs), len(work))
			}
			for id, j := range jobs {
				if j.State != sched.StateCompleted {
					t.Errorf("%d shards/%s: job %d finished %v", n, policy, id, j.State)
				}
				if _, ok := sh.Job(id); !ok {
					t.Errorf("%d shards/%s: job %d missing from router table", n, policy, id)
				}
			}
			st := sh.RouterStats()
			if st.Routed != int64(len(work)) {
				t.Errorf("%d shards/%s: routed %d, want %d", n, policy, st.Routed, len(work))
			}
			if st.Unroutable != 0 {
				t.Errorf("%d shards/%s: unexpected unroutable %d", n, policy, st.Unroutable)
			}
		}
	}
}
