package shard

import (
	"sync/atomic"
	"testing"
	"time"

	"fluxion/internal/chaos"
	"fluxion/internal/sched"
)

// newSupervised builds a supervised sharded scheduler for tests.
func newSupervised(t testing.TB, cfg SupervisorConfig, shards int, racks, nodes, cores int64) *Sharded {
	t.Helper()
	sh, err := New(Config{
		Graph:      testGraph(t, racks, nodes, cores),
		Shards:     shards,
		Queue:      sched.FCFS,
		Supervisor: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// killSwitch is an atomically togglable cycle hook targeting one shard.
type killSwitch struct {
	victim int
	on     atomic.Bool
}

func (k *killSwitch) hook(shard int, now int64) {
	if k.on.Load() && shard == k.victim {
		panic("test: injected shard kill")
	}
}

// TestHealthStateMachine walks the supervision state machine round by
// round: healthy → suspect on a fence trip, suspect → healthy on a good
// cycle, and suspect → failed only after FailAfter counted probes spaced
// by the doubling backoff.
func TestHealthStateMachine(t *testing.T) {
	sh := newSupervised(t, SupervisorConfig{
		SuspectAfter: 1, FailAfter: 2, ProbeBackoff: 1,
		RecoveryProbe: -1, GraceSeconds: -1,
	}, 2, 2, 2, 4)
	ks := &killSwitch{victim: 1}
	sh.SetCycleHook(ks.hook)

	sh.Schedule()
	if h := sh.ShardHealth(1); h != Healthy {
		t.Fatalf("clean cycle: health %v, want healthy", h)
	}

	// One trip suspects; one good cycle heals.
	ks.on.Store(true)
	sh.Schedule()
	if h := sh.ShardHealth(1); h != Suspect {
		t.Fatalf("after 1 trip: health %v, want suspect", h)
	}
	ks.on.Store(false)
	sh.Schedule()
	if h := sh.ShardHealth(1); h != Healthy {
		t.Fatalf("after recovery cycle: health %v, want healthy", h)
	}

	// Persistent fault: R1 suspect, R2 counted probe #1 (backoff -> 1),
	// R3 backoff round, R4 counted probe #2 -> failed.
	ks.on.Store(true)
	want := []Health{Suspect, Suspect, Suspect, Failed}
	for i, w := range want {
		sh.Schedule()
		if h := sh.ShardHealth(1); h != w {
			t.Fatalf("persistent fault round %d: health %v, want %v", i+1, h, w)
		}
	}
	if h := sh.ShardHealth(0); h != Healthy {
		t.Fatalf("bystander shard health %v, want healthy", h)
	}

	st := sh.SupervisorStats()
	if st.Trips != 5 {
		t.Errorf("trips = %d, want 5", st.Trips)
	}
	if st.Probes != 2 {
		t.Errorf("probes = %d, want 2", st.Probes)
	}
	if st.Failures != 1 {
		t.Errorf("failures = %d, want 1", st.Failures)
	}
	// Failed + RecoveryProbe<0: the shard stays dark, no new trips.
	sh.Schedule()
	if got := sh.SupervisorStats().Trips; got != st.Trips {
		t.Errorf("dark shard still cycling: trips %d -> %d", st.Trips, got)
	}

	// The event log tells the same story.
	var seq []string
	for _, e := range sh.HealthEvents() {
		if e.Shard == 1 {
			seq = append(seq, e.From.String()+">"+e.To.String())
		}
	}
	wantSeq := []string{"healthy>suspect", "suspect>healthy", "healthy>suspect", "suspect>failed"}
	if len(seq) != len(wantSeq) {
		t.Fatalf("event log %v, want %v", seq, wantSeq)
	}
	for i := range wantSeq {
		if seq[i] != wantSeq[i] {
			t.Fatalf("event log %v, want %v", seq, wantSeq)
		}
	}
}

// TestCycleDeadlineTripsSuspect: a stalled (not panicking) cycle over
// the deadline counts as a bad cycle and suspects the shard; recovery on
// the next fast cycle.
func TestCycleDeadlineTripsSuspect(t *testing.T) {
	sh := newSupervised(t, SupervisorConfig{
		CycleDeadline: time.Millisecond, RecoveryProbe: -1,
	}, 2, 2, 2, 4)
	var stall atomic.Bool
	sh.SetCycleHook(func(shard int, now int64) {
		if stall.Load() && shard == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	})
	stall.Store(true)
	sh.Schedule()
	if h := sh.ShardHealth(0); h != Suspect {
		t.Fatalf("after stalled cycle: health %v, want suspect", h)
	}
	if st := sh.SupervisorStats(); st.DeadlineMisses == 0 || st.Trips != 0 {
		t.Fatalf("stats %+v: want deadline misses without fence trips", st)
	}
	stall.Store(false)
	sh.Schedule()
	if h := sh.ShardHealth(0); h != Healthy {
		t.Fatalf("after fast cycle: health %v, want healthy", h)
	}
}

// TestFailoverDrainsPendingAndEvictsRunning: failing a shard moves its
// pending jobs to survivors through the steal path (submit time and
// retries preserved) and, with no grace, forces its running jobs through
// the requeue path onto survivors too. Nothing is lost; the failed shard
// takes no further placements.
func TestFailoverDrainsPendingAndEvictsRunning(t *testing.T) {
	sh := newSupervised(t, SupervisorConfig{
		RecoveryProbe: -1, GraceSeconds: -1,
	}, 2, 2, 2, 4)
	submit := func(id, nodes, dur int64) {
		t.Helper()
		if _, err := sh.Submit(id, nodeJob(nodes, 4, dur)); err != nil {
			t.Fatal(err)
		}
		sh.Schedule()
	}
	submit(1, 2, 100) // fills one shard until t=100
	submit(2, 2, 10)  // fills the other until t=10
	if err := sh.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	submit(3, 2, 50) // blocked everywhere, pending on job 1's shard
	victim := sh.byJob[1]
	if sh.byJob[3] != victim {
		t.Fatalf("setup: job 3 on shard %d, want %d (job 1's)", sh.byJob[3], victim)
	}
	survivor := 1 - victim

	if err := sh.FailShard(victim, "test drill"); err != nil {
		t.Fatal(err)
	}
	if h := sh.ShardHealth(victim); h != Failed {
		t.Fatalf("victim health %v, want failed", h)
	}
	for id := int64(1); id <= 3; id++ {
		if id == 2 {
			continue
		}
		if sh.byJob[id] != survivor {
			t.Fatalf("job %d on shard %d after failover, want %d", id, sh.byJob[id], survivor)
		}
	}
	st := sh.SupervisorStats()
	if st.Drained != 2 || st.Evicted != 1 || st.Lost != 0 {
		t.Fatalf("stats %+v: want drained=2 evicted=1 lost=0", st)
	}

	sh.Run(0)
	for id := int64(1); id <= 3; id++ {
		j, ok := sh.Job(id)
		if !ok || j.State != sched.StateCompleted {
			t.Fatalf("job %d finished %v", id, j)
		}
	}
	if j, _ := sh.Job(3); j.Submit != 5 {
		t.Errorf("drain lost job 3's submit time: got %d, want 5", j.Submit)
	}
	if j, _ := sh.Job(1); j.Retries != 1 {
		t.Errorf("evicted job 1 retries = %d, want 1", j.Retries)
	}
	if m := sh.Metrics(); m.Requeues != 1 || m.LostCoreSeconds == 0 {
		t.Errorf("metrics requeues=%d lost-core=%d: want 1 and >0", m.Requeues, m.LostCoreSeconds)
	}
	touched := sh.TouchedJobs()
	if len(touched) != 2 || touched[0] != 1 || touched[1] != 3 {
		t.Errorf("touched jobs %v, want [1 3]", touched)
	}
}

// TestDrainLostJob: a pending job no surviving shard's static capacity
// can hold is recorded lost (StateFailed) — visible through the router's
// job table and counted, not silently dropped.
func TestDrainLostJob(t *testing.T) {
	// 3 racks × 2 nodes, 2 shards: shard 0 owns 4 nodes, shard 1 owns 2.
	sh := newSupervised(t, SupervisorConfig{
		RecoveryProbe: -1, GraceSeconds: -1,
	}, 2, 3, 2, 4)
	if _, err := sh.Submit(1, nodeJob(3, 4, 50)); err != nil {
		t.Fatal(err)
	}
	if sh.byJob[1] != 0 {
		t.Fatalf("setup: 3-node job on shard %d, want 0", sh.byJob[1])
	}
	if err := sh.FailShard(0, "test"); err != nil {
		t.Fatal(err)
	}
	j, ok := sh.Job(1)
	if !ok {
		t.Fatal("lost job vanished from the router table")
	}
	if j.State != sched.StateFailed {
		t.Fatalf("lost job state %v, want failed", j.State)
	}
	if st := sh.SupervisorStats(); st.Lost != 1 {
		t.Fatalf("lost = %d, want 1", st.Lost)
	}
	if m := sh.Metrics(); m.Failed != 1 {
		t.Fatalf("metrics failed = %d, want 1", m.Failed)
	}
}

// TestKillAndReabsorbDrill is the acceptance drill: a 4-shard run with
// one shard chaos-killed mid-workload drains every non-lost job to the
// survivors, and after the fault clears and Reabsorb runs, the shard is
// healthy, takes placements again, and the run completes every job.
func TestKillAndReabsorbDrill(t *testing.T) {
	sh := newSupervised(t, SupervisorConfig{
		FailAfter: 1, RecoveryProbe: -1, GraceSeconds: -1,
	}, 4, 4, 2, 4)
	ks := &killSwitch{victim: 2}
	sh.SetCycleHook(ks.hook)

	const jobs = 16
	for id := int64(1); id <= jobs; id++ {
		if _, err := sh.Submit(id, nodeJob(1+id%2, 4, 30+10*(id%5))); err != nil {
			t.Fatal(err)
		}
	}
	sh.Schedule()

	// Kill shard 2 mid-workload: suspect, then fail on the counted probe.
	ks.on.Store(true)
	sh.Schedule()
	sh.Schedule()
	if h := sh.ShardHealth(2); h != Failed {
		t.Fatalf("victim health %v after kill, want failed", h)
	}
	st := sh.SupervisorStats()
	if st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
	for id := int64(1); id <= jobs; id++ {
		if sh.byJob[id] == 2 {
			if j, _ := sh.Job(id); j.State != sched.StateUnsatisfiable {
				t.Fatalf("job %d (%v) still owned by the failed shard", id, j.State)
			}
		}
	}

	// Fault clears; operator reabsorbs.
	ks.on.Store(false)
	if err := sh.Reabsorb(2); err != nil {
		t.Fatal(err)
	}
	if h := sh.ShardHealth(2); h != Healthy {
		t.Fatalf("health %v after reabsorb, want healthy", h)
	}
	if got := sh.SupervisorStats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}

	// The rebuilt shard must accept placements: it is idle while the
	// survivors carry the drained backlog, so a full-shard job routes to
	// it, and its post-run residues account for every placement.
	if _, err := sh.Submit(100, nodeJob(2, 4, 20)); err != nil {
		t.Fatal(err)
	}
	if sh.byJob[100] != 2 {
		t.Fatalf("post-reabsorb job routed to shard %d, want the idle shard 2", sh.byJob[100])
	}
	sh.Run(0)
	counts := sh.Counts()
	if lost := sh.SupervisorStats().Lost; lost != 0 {
		t.Fatalf("lost = %d, want 0 (every drained job fits a survivor)", lost)
	}
	if counts[sched.StateCompleted] != jobs+1 {
		t.Fatalf("completed = %d, want %d (counts %v)", counts[sched.StateCompleted], jobs+1, counts)
	}
	// Router residues consistent: with everything complete, the rebuilt
	// shard's residues equal its static capacity.
	vst := sh.shards[2]
	for rt, c := range vst.cap {
		if got := vst.residues(sh.Now())[rt]; got != c {
			t.Errorf("shard 2 residue[%s] = %d, want %d (all jobs done)", rt, got, c)
		}
	}
}

// TestAutoRecoveryProbes: with the fault window closed, the automatic
// recovery probe schedule reabsorbs a failed shard without operator
// intervention.
func TestAutoRecoveryProbes(t *testing.T) {
	sh := newSupervised(t, SupervisorConfig{
		FailAfter: 1, RecoveryProbe: 1, GraceSeconds: -1,
	}, 2, 2, 2, 4)
	ks := &killSwitch{victim: 1}
	sh.SetCycleHook(ks.hook)
	ks.on.Store(true)
	sh.Schedule()
	sh.Schedule()
	if h := sh.ShardHealth(1); h != Failed {
		t.Fatalf("health %v, want failed", h)
	}
	// While the fault persists, probes fail and back off.
	sh.Schedule()
	sh.Schedule()
	if h := sh.ShardHealth(1); h != Failed {
		t.Fatalf("health %v while fault persists, want failed", h)
	}
	ks.on.Store(false)
	for i := 0; i < 8 && sh.ShardHealth(1) != Healthy; i++ {
		sh.Schedule()
	}
	if h := sh.ShardHealth(1); h != Healthy {
		t.Fatalf("health %v after fault cleared, want healthy (auto probe)", h)
	}
	if got := sh.SupervisorStats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
}

// findKillSeed scans chaos seeds for one whose shard-kill hash hits
// exactly one of n shards at the given intensity.
func findKillSeed(t testing.TB, n int, frac float64) (int64, int) {
	t.Helper()
	for seed := int64(1); seed < 4096; seed++ {
		p := &chaos.Plan{Seed: seed, ShardKillFrac: frac}
		victim, hits := -1, 0
		for i := 0; i < n; i++ {
			if p.KillsShard(i) {
				victim, hits = i, hits+1
			}
		}
		if hits == 1 {
			return seed, victim
		}
	}
	t.Fatal("no seed kills exactly one shard")
	return 0, 0
}

// TestShardKillDecisionParity is the tentpole acceptance property: under
// seeded shard-kill chaos, jobs never placed on the killed shard must
// schedule identically (state, start, end, owning shard) to a fault-free
// run that simply excludes that shard — the fault's blast radius is
// exactly the victim. The chaos run kills the shard before any
// placements (fault window open from t=0, detection inside the warmup
// rounds), so no job is ever routed there; the twin run administratively
// fails the same shard upfront. Checked across every queue policy and
// two workload seeds.
func TestShardKillDecisionParity(t *testing.T) {
	const shards = 4
	chaosSeed, victim := findKillSeed(t, shards, 0.25)
	plan := &chaos.Plan{Seed: chaosSeed, ShardKillFrac: 0.25}
	cfg := SupervisorConfig{FailAfter: 1, RecoveryProbe: -1, GraceSeconds: -1}

	for _, policy := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		for seed := int64(1); seed <= 2; seed++ {
			work := randomWorkload(seed, 40)

			live, err := New(Config{
				Graph: testGraph(t, shards, 4, 4), Shards: shards,
				Queue: policy, Supervisor: &cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			live.SetCycleHook(plan.ShardHook())
			for i := 0; i < 4; i++ {
				live.Schedule()
			}
			if h := live.ShardHealth(victim); h != Failed {
				t.Fatalf("victim %d health %v after warmup, want failed", victim, h)
			}

			twin, err := New(Config{
				Graph: testGraph(t, shards, 4, 4), Shards: shards,
				Queue: policy, Supervisor: &cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := twin.FailShard(victim, "parity twin"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				twin.Schedule()
			}

			drive(t, live, work)
			drive(t, twin, work)

			if got := live.TouchedJobs(); len(got) != 0 {
				t.Fatalf("%s/seed%d: failover touched jobs %v — parity claim would be vacuous", policy, seed, got)
			}
			lj, tj := live.Jobs(), twin.Jobs()
			if len(lj) != len(work) || len(tj) != len(work) {
				t.Fatalf("%s/seed%d: job tables %d/%d, want %d", policy, seed, len(lj), len(tj), len(work))
			}
			completed := 0
			for id, a := range lj {
				b, ok := tj[id]
				if !ok {
					t.Fatalf("%s/seed%d: job %d missing from twin", policy, seed, id)
				}
				if a.State != b.State || a.StartAt != b.StartAt || a.EndAt != b.EndAt {
					t.Errorf("%s/seed%d: job %d diverged: chaos %v@[%d,%d] vs twin %v@[%d,%d]",
						policy, seed, id, a.State, a.StartAt, a.EndAt, b.State, b.StartAt, b.EndAt)
				}
				if live.byJob[id] != twin.byJob[id] {
					t.Errorf("%s/seed%d: job %d placement diverged: shard %d vs %d",
						policy, seed, id, live.byJob[id], twin.byJob[id])
				}
				if live.byJob[id] == victim {
					t.Errorf("%s/seed%d: job %d placed on the killed shard", policy, seed, id)
				}
				if a.State == sched.StateCompleted {
					completed++
				}
			}
			if completed == 0 {
				t.Fatalf("%s/seed%d: no job completed — property is vacuous", policy, seed)
			}
			if live.Now() != twin.Now() {
				t.Errorf("%s/seed%d: clocks diverged: %d vs %d", policy, seed, live.Now(), twin.Now())
			}
			if t.Failed() {
				return
			}
		}
	}
}
