package shard

import (
	"strings"
	"sync"
	"testing"

	"fluxion/internal/sched"
)

// TestConcurrentChurn hammers the router's public surface from many
// goroutines while a driver loop steps the clock and an operator
// goroutine fails and reabsorbs a shard in a loop — the -race exercise
// for the router mutex and the failover paths. Correctness bar: no data
// race, no deadlock, and after a final drain every surviving job is
// terminal and accounted for.
func TestConcurrentChurn(t *testing.T) {
	sh, err := New(Config{
		Graph:      testGraph(t, 4, 2, 4),
		Shards:     4,
		Queue:      sched.FCFS,
		Supervisor: &SupervisorConfig{GraceSeconds: -1, RecoveryProbe: -1},
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		submitters   = 3
		perSubmitter = 40
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Driver: the discrete-event loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh.Schedule()
			sh.Step()
		}
	}()

	// Operator: shard 3 flaps between failed and reabsorbed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sh.FailShard(3, "churn drill")
			_ = sh.Reabsorb(3)
		}
	}()

	// Readers: every accessor, continuously.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sh.Now()
				sh.Jobs()
				sh.Job(1)
				sh.Counts()
				sh.Stats()
				sh.Metrics()
				sh.RouterStats()
				sh.SupervisorStats()
				sh.HealthEvents()
				sh.Unfinished()
				for i := 0; i < sh.Shards(); i++ {
					sh.ShardHealth(i)
				}
			}
		}()
	}

	// Submitters: disjoint ID ranges; every fourth own job withdrawn.
	var subWG sync.WaitGroup
	withdrawn := make([]map[int64]bool, submitters)
	for g := 0; g < submitters; g++ {
		subWG.Add(1)
		withdrawn[g] = make(map[int64]bool)
		go func(g int) {
			defer subWG.Done()
			base := int64(g+1) * 1000
			for i := int64(0); i < perSubmitter; i++ {
				id := base + i
				if _, err := sh.Submit(id, nodeJob(1+i%2, 1+i%4, 10+i%30)); err != nil {
					// "no live shard" is legal while the operator has
					// shard 3 down and the rest are mid-reabsorb churn —
					// anything else is a bug.
					if !strings.Contains(err.Error(), "no live shard") {
						t.Errorf("submit %d: %v", id, err)
					}
					withdrawn[g][id] = true
					continue
				}
				if i%4 == 3 {
					if _, err := sh.Withdraw(id); err != nil {
						t.Errorf("withdraw %d: %v", id, err)
					}
					withdrawn[g][id] = true
				}
			}
		}(g)
	}
	subWG.Wait()
	close(stop)
	wg.Wait()

	// Final drain: everything still owned must reach a terminal state.
	sh.Run(0)
	jobs := sh.Jobs()
	for g := 0; g < submitters; g++ {
		base := int64(g+1) * 1000
		for i := int64(0); i < perSubmitter; i++ {
			id := base + i
			j, ok := jobs[id]
			if withdrawn[g][id] {
				continue
			}
			if !ok {
				t.Errorf("job %d vanished", id)
				continue
			}
			switch j.State {
			case sched.StateCompleted, sched.StateFailed, sched.StateUnsatisfiable:
			default:
				t.Errorf("job %d not terminal: %v", id, j.State)
			}
		}
	}
}
