package shard

import (
	"fmt"
	"sort"

	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
)

// This file is the router: submit-time shard selection by per-shard
// aggregate residues, overflow re-routing, and the work-stealing
// rebalancer.

// addTotals accumulates a request tree's per-type unit totals into out.
// Counts multiply down the nesting ("4 nodes × 8 cores" adds 32 cores);
// slot pseudo-vertices are structural and contribute only their
// multiplier. Moldable requests count their minimum acceptable size —
// the router routes on what the job needs to start at all.
func addTotals(rs []*jobspec.Resource, mult int64, out map[string]int64) {
	for _, r := range rs {
		n := mult * r.MinCount()
		if r.Type != "slot" {
			out[r.Type] += n
		}
		addTotals(r.With, n, out)
	}
}

// totalsInto clears out and fills it with spec's per-type totals.
func totalsInto(spec *jobspec.Jobspec, out map[string]int64) {
	for t := range out {
		delete(out, t)
	}
	if spec != nil {
		addTotals(spec.Resources, 1, out)
	}
}

// residues returns the shard's free units per type at now, recomputed
// when a delta dirtied the cache or the clock moved. The source is the
// shard root's SDFU pruning filter — the same aggregate machinery match
// traversal prunes with, read one level up. Types the filter does not
// track fall back to static capacity.
func (st *shardState) residues(now int64) map[string]int64 {
	if !st.dirty && st.residueAt == now {
		return st.residue
	}
	for t := range st.residue {
		delete(st.residue, t)
	}
	root := st.g.Root(resgraph.Containment)
	if f := root.Filter(); f != nil {
		for _, rt := range f.Types() {
			if p := f.Planner(rt); p != nil {
				if avail, err := p.AvailAt(now); err == nil {
					st.residue[rt] = avail
				}
			}
		}
	}
	for t, c := range st.cap {
		if _, tracked := st.residue[t]; !tracked {
			st.residue[t] = c
		}
	}
	st.dirty = false
	st.residueAt = now
	return st.residue
}

// refreshDemand recomputes the shard's queued (pending + reserved)
// aggregate demand from its job table.
func (st *shardState) refreshDemand() {
	for t := range st.queued {
		delete(st.queued, t)
	}
	for _, j := range st.s.Jobs() {
		if j.State == sched.StatePending || j.State == sched.StateReserved {
			if j.Spec != nil {
				addTotals(j.Spec.Resources, 1, st.queued)
			}
		}
	}
}

// cand is one routing candidate: a shard and its headroom score.
type cand struct {
	idx   int
	score int64
}

// headroom scores a shard for a job with the given per-type needs: the
// minimum over requested types of (residue − queued demand − need). A
// negative score means the job does not fit the shard's instantaneous
// residues (it may still fit later — reservations handle that); ok is
// false when the shard's static capacity can never hold the job.
func (st *shardState) headroom(need map[string]int64, now int64) (int64, bool) {
	res := st.residues(now)
	best := int64(1) << 62
	for t, n := range need {
		if n <= 0 {
			continue
		}
		if st.cap[t] < n {
			return 0, false
		}
		if h := res[t] - st.queued[t] - n; h < best {
			best = h
		}
	}
	return best, true
}

// Submit routes and enqueues a job (see SubmitPriority).
func (sh *Sharded) Submit(id int64, spec *jobspec.Jobspec) (*sched.Job, error) {
	return sh.SubmitPriority(id, spec, 0)
}

// SubmitPriority routes the job to the shard with the most residue
// headroom for its aggregate needs and submits it there. Failed shards
// are skipped — quarantine removes their subtrees from the router's
// view. When the chosen shard rejects the job as unsatisfiable (down
// capacity, fragmentation its aggregates could not see), the router
// withdraws it and re-routes to the next-best shard before giving up. A
// job no live shard's static capacity can hold is submitted to the
// first live shard so it is recorded unsatisfiable with flat-scheduler
// semantics.
func (sh *Sharded) SubmitPriority(id int64, spec *jobspec.Jobspec, priority int) (*sched.Job, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.submitPriority(id, spec, priority)
}

func (sh *Sharded) submitPriority(id int64, spec *jobspec.Jobspec, priority int) (*sched.Job, error) {
	if _, dup := sh.byJob[id]; dup {
		return nil, fmt.Errorf("sched: job %d already submitted", id)
	}
	totalsInto(spec, sh.needScratch)
	need := sh.needScratch
	now := sh.now()
	var cands []cand
	fallback := -1
	for i, st := range sh.shards {
		if !st.placeable() {
			continue
		}
		if fallback < 0 {
			fallback = i
		}
		if score, ok := st.headroom(need, now); ok {
			cands = append(cands, cand{idx: i, score: score})
		}
	}
	if fallback < 0 {
		return nil, fmt.Errorf("shard: no live shard to accept job %d (all failed)", id)
	}
	if len(cands) == 0 {
		// Too big for every live shard: record the unsatisfiable verdict
		// on the first live shard. This is a real quality loss vs. the
		// flat scheduler (which might have placed the job across shard
		// boundaries) and is counted, not hidden.
		sh.stats.Unroutable++
		job, err := sh.shards[fallback].s.SubmitPriority(id, spec, priority)
		if err != nil {
			return nil, err
		}
		sh.byJob[id] = fallback
		return job, nil
	}
	sortCands(cands)
	for ci, c := range cands {
		st := sh.shards[c.idx]
		job, err := st.s.SubmitPriority(id, spec, priority)
		if err != nil {
			return nil, err
		}
		if job.State == sched.StateUnsatisfiable && ci+1 < len(cands) {
			// Overflow: the aggregate said fit, satisfiability said no.
			// Withdraw and try the next-best shard.
			if _, werr := st.s.Withdraw(id); werr == nil {
				sh.stats.Rerouted++
				continue
			}
		}
		sh.byJob[id] = c.idx
		if job.State != sched.StateUnsatisfiable {
			sh.stats.Routed++
			addDemand(st.queued, need)
		}
		return job, nil
	}
	// Every candidate declared the job unsatisfiable; keep the last
	// shard's verdict so the job table records it once.
	last := sh.shards[cands[len(cands)-1].idx]
	job, err := last.s.SubmitPriority(id, spec, priority)
	if err != nil {
		return nil, err
	}
	sh.byJob[id] = cands[len(cands)-1].idx
	return job, nil
}

// addDemand folds need into a shard's queued-demand cache.
func addDemand(queued, need map[string]int64) {
	for t, n := range need {
		queued[t] += n
	}
}

// rebalance is the work-stealing round run after every Schedule/Step:
// jobs still pending on a shard after its cycle (blocked there) move to
// a shard whose instantaneous residues minus queued demand cover them.
// Receiving shards run one catch-up cycle so stolen jobs get a decision
// this round. Steals are bounded per round and per job, and a stolen
// job keeps its original submit time so wait metrics stay honest.
// Failed shards neither donate (their queues were drained at failure)
// nor receive.
func (sh *Sharded) rebalance() {
	if len(sh.shards) < 2 || sh.stealsPerRound < 0 {
		return
	}
	for _, st := range sh.shards {
		if st.placeable() {
			st.refreshDemand()
		}
	}
	now := sh.now()
	budget := sh.stealsPerRound
	need := make(map[string]int64, 4)
	receivers := make(map[int]*shardState)
	for _, st := range sh.shards {
		if budget <= 0 {
			break
		}
		if !st.placeable() {
			continue
		}
		for _, job := range st.s.PendingJobs() {
			if budget <= 0 {
				break
			}
			if sh.steals[job.ID] >= sh.maxStealsPerJob {
				continue
			}
			totalsInto(job.Spec, need)
			best := -1
			var bestScore int64
			for ti, tst := range sh.shards {
				if ti == st.idx || !tst.placeable() {
					continue
				}
				score, ok := tst.headroom(need, now)
				if !ok || score < 0 {
					continue
				}
				if best < 0 || score > bestScore {
					best, bestScore = ti, score
				}
			}
			if best < 0 {
				continue
			}
			stolen, err := st.s.Withdraw(job.ID)
			if err != nil {
				continue
			}
			tst := sh.shards[best]
			nj, err := tst.s.SubmitPriority(stolen.ID, stolen.Spec, stolen.Priority)
			if err != nil || nj.State == sched.StateUnsatisfiable {
				// Should not happen (headroom pre-checked); put it back.
				if nj != nil {
					_, _ = tst.s.Withdraw(stolen.ID)
				}
				if rj, rerr := st.s.SubmitPriority(stolen.ID, stolen.Spec, stolen.Priority); rerr == nil {
					rj.Submit = stolen.Submit
					rj.Retries = stolen.Retries
				} else {
					delete(sh.byJob, stolen.ID)
				}
				continue
			}
			nj.Submit = stolen.Submit
			nj.Retries = stolen.Retries
			sh.byJob[stolen.ID] = best
			sh.steals[stolen.ID]++
			sh.stats.Steals++
			addDemand(tst.queued, need)
			st.refreshDemand()
			receivers[best] = tst
			budget--
		}
	}
	if len(receivers) == 0 {
		return
	}
	list := make([]*shardState, 0, len(receivers))
	for _, st := range receivers {
		list = append(list, st)
	}
	sort.Slice(list, func(a, b int) bool { return list[a].idx < list[b].idx })
	sh.runCycles(list, false)
}
