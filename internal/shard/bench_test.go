package shard

import (
	"fmt"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
)

// benchRacks sizes the benchmark system: 70 high-LOD racks is 99,611
// vertices — the ~100k-vertex scale the sharding design targets.
const benchRacks = 70

// benchBatch is how many single-node jobs one measured scheduling round
// places (32 per shard at 8 shards).
const benchBatch = 256

// benchSharded caches one Sharded per shard count: the ~100k-vertex
// build + partition costs ~1s, and go test re-enters each sub-benchmark
// several times while calibrating b.N. State is reset by withdrawing
// every placed job after each measured round, so reuse is safe.
var benchSharded = map[int]*Sharded{}

// benchNextID keeps job IDs unique across rounds and calibration reruns.
var benchNextID int64

func benchSetup(b *testing.B, shards int) *Sharded {
	if sh, ok := benchSharded[shards]; ok {
		return sh
	}
	g, err := grug.BuildGraph(grug.HighLODRacks(benchRacks), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		b.Fatal(err)
	}
	// Supervision enabled with defaults: the fenced-cycle path is what
	// production sharded runs take, and the benchdiff gate holds it to
	// the unsupervised baseline (fences and health checks must stay off
	// the healthy hot path).
	sh, err := New(Config{Graph: g, Shards: shards, Queue: sched.FCFS,
		Supervisor: &SupervisorConfig{}})
	if err != nil {
		b.Fatal(err)
	}
	benchSharded[shards] = sh
	return sh
}

// BenchmarkShardedThroughput measures decision throughput on the ~100k-
// vertex system as the shard count sweeps 1/2/4/8: each op routes and
// places a fresh batch of 256 single-node jobs in one scheduling round.
// Submit-side routing and the withdraw reset run off the clock; the
// measured region is the concurrent per-shard cycles plus the rebalance
// barrier. Shard state is fully disjoint, so ns/op should fall near-
// linearly with the shard count up to the core count (the s1/s8 ratio is
// gated raw in CI — see the shard scaling gate in ci.yml).
func BenchmarkShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("s%d", shards), func(b *testing.B) {
			sh := benchSetup(b, shards)
			spec := jobspec.New(1<<30, jobspec.SlotR(1,
				jobspec.R("node", 1, jobspec.R("core", 10))))
			ids := make([]int64, benchBatch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := range ids {
					benchNextID++
					ids[j] = benchNextID
					if _, err := sh.Submit(benchNextID, spec); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				sh.Schedule()
				b.StopTimer()
				for _, id := range ids {
					job, ok := sh.Job(id)
					if !ok || job.State != sched.StateRunning {
						b.Fatalf("job %d not running after round: %+v", id, job)
					}
					if _, err := sh.Withdraw(id); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
		})
	}
}
