package query

import (
	"errors"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
)

func testGraph(t *testing.T) *resgraph.Graph {
	t.Helper()
	g, err := grug.BuildGraph(grug.Small(2, 2, 2, 16, 0), 0, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.ByType("node")
	nodes[0].SetProperty("perfclass", "1")
	nodes[1].SetProperty("perfclass", "2")
	nodes[2].SetProperty("perfclass", "2")
	nodes[3].Status = resgraph.StatusDown
	return g
}

func count(t *testing.T, g *resgraph.Graph, expr string) int {
	t.Helper()
	vs, err := Select(g, expr)
	if err != nil {
		t.Fatalf("Select(%q): %v", expr, err)
	}
	return len(vs)
}

func TestSelect(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		expr string
		want int
	}{
		{"", g.Len()},
		{"type=node", 4},
		{"type=core", 8},
		{"type=node and status=down", 1},
		{"type=node and status=up", 3},
		{"type=node and perfclass=2", 2},
		{"perfclass=2", 2},
		{"type=node and not perfclass=2", 2},
		{"type=core or type=gpu", 8},
		{"(type=core or type=memory) and path=/cluster0/rack0", 6},
		{"path=/cluster0/rack1", 9}, // rack + 2 nodes + 4 cores + 2 memory
		{"name=node3", 1},
		{"type=node and (perfclass=1 or perfclass=2)", 3},
		{"not type=node and not type=core", 7}, // cluster + 2 racks + 4 memory
		{"vendor=amd", 0},
	}
	for _, c := range cases {
		if got := count(t, g, c.expr); got != c.want {
			t.Errorf("Select(%q) = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestAndBindsTighterThanOr(t *testing.T) {
	g := testGraph(t)
	// type=node and perfclass=1 or type=core
	// == (node&pc1) | core == 1 + 8 = 9.
	if got := count(t, g, "type=node and perfclass=1 or type=core"); got != 9 {
		t.Fatalf("precedence: %d", got)
	}
	// With explicit grouping the other way: node and (pc1 or core) == 1.
	if got := count(t, g, "type=node and (perfclass=1 or type=core)"); got != 1 {
		t.Fatalf("grouped: %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		"type", "=x", "type=", "type=node and", "and type=node",
		"(type=node", "type=node)", "not", "status=sideways",
		"type=node or or type=core",
	} {
		if _, err := Parse(expr); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q): %v", expr, err)
		}
	}
}

func TestPathSubtreePrefix(t *testing.T) {
	g := testGraph(t)
	// Exact-path match includes the vertex itself.
	if got := count(t, g, "path=/cluster0/rack0/node0"); got != 4 { // node + 2 cores + 1 memory
		t.Fatalf("node subtree = %d", got)
	}
	// A prefix that is not a path component boundary must not match
	// (no accidental /cluster0/rack1 matching /cluster0/rack10).
	if got := count(t, g, "path=/cluster0/rack"); got != 0 {
		t.Fatalf("partial component matched: %d", got)
	}
}
