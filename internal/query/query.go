// Package query implements the small predicate language behind Fluxion's
// find operation: expressions like
//
//	type=node and status=up and perfclass=3
//	(type=core or type=gpu) and not status=down
//
// evaluated against resource graph vertices. Terms match the vertex's
// type, status, name, path prefix, or any property; `and` binds tighter
// than `or`; `not` negates a term; parentheses group.
package query

import (
	"errors"
	"fmt"
	"strings"

	"fluxion/internal/resgraph"
)

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("query: syntax error")

// Predicate evaluates to true when a vertex matches.
type Predicate func(v *resgraph.Vertex) bool

// Parse compiles an expression into a predicate. The empty expression
// matches everything.
func Parse(expr string) (Predicate, error) {
	toks, err := lex(expr)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return func(*resgraph.Vertex) bool { return true }, nil
	}
	p := &parser{toks: toks}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("%w: unexpected %q", ErrSyntax, p.toks[p.pos])
	}
	return pred, nil
}

// Select returns the vertices of g matching expr, in creation order.
func Select(g *resgraph.Graph, expr string) ([]*resgraph.Vertex, error) {
	pred, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	var out []*resgraph.Vertex
	for _, v := range g.Vertices() {
		if pred(v) {
			out = append(out, v)
		}
	}
	return out, nil
}

func lex(expr string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(expr) && !strings.ContainsRune(" \t()", rune(expr[j])) {
				j++
			}
			toks = append(toks, expr[i:j])
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(v *resgraph.Vertex) bool { return l(v) || right(v) }
	}
	return left, nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(v *resgraph.Vertex) bool { return l(v) && right(v) }
	}
	return left, nil
}

func (p *parser) parseUnary() (Predicate, error) {
	switch {
	case strings.EqualFold(p.peek(), "not"):
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(v *resgraph.Vertex) bool { return !inner(v) }, nil
	case p.peek() == "(":
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("%w: missing ')'", ErrSyntax)
		}
		p.pos++
		return inner, nil
	case p.peek() == "" || p.peek() == ")":
		return nil, fmt.Errorf("%w: expected a term", ErrSyntax)
	default:
		return p.parseTerm()
	}
}

// parseTerm compiles one key=value term.
func (p *parser) parseTerm() (Predicate, error) {
	tok := p.toks[p.pos]
	p.pos++
	eq := strings.IndexByte(tok, '=')
	if eq <= 0 || eq == len(tok)-1 {
		return nil, fmt.Errorf("%w: bad term %q (want key=value)", ErrSyntax, tok)
	}
	key, value := tok[:eq], tok[eq+1:]
	switch key {
	case "type":
		return func(v *resgraph.Vertex) bool { return v.Type == value }, nil
	case "status":
		if value != "up" && value != "down" {
			return nil, fmt.Errorf("%w: status must be up or down, got %q", ErrSyntax, value)
		}
		return func(v *resgraph.Vertex) bool { return v.Status.String() == value }, nil
	case "name":
		return func(v *resgraph.Vertex) bool { return v.Name == value }, nil
	case "path":
		// Prefix match: path=/cluster0/rack1 selects the subtree.
		return func(v *resgraph.Vertex) bool {
			path := v.Path()
			return path == value || strings.HasPrefix(path, value+"/")
		}, nil
	default:
		// Any other key matches a vertex property.
		return func(v *resgraph.Vertex) bool { return v.Property(key) == value }, nil
	}
}
