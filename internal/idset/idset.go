// Package idset implements Flux's idset notation: compact sets of
// non-negative integer IDs rendered as ranges ("0-3,7,9-12"). Resource
// sets (rv1), rank lists, and core/GPU grants all use it. The
// representation is an ordered list of disjoint, non-adjacent ranges, so
// membership and set algebra stay O(ranges).
package idset

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("idset: syntax error")

type span struct{ lo, hi int64 } // inclusive

// Set is a set of non-negative integers. The zero value is an empty set
// ready to use. Sets are not safe for concurrent mutation.
type Set struct {
	spans []span // sorted, disjoint, non-adjacent
}

// New returns a set holding the given IDs.
func New(ids ...int64) *Set {
	s := &Set{}
	for _, id := range ids {
		s.Insert(id)
	}
	return s
}

// Parse decodes idset notation ("" is the empty set).
func Parse(text string) (*Set, error) {
	s := &Set{}
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ",") {
		lo, hi, err := parseRange(part)
		if err != nil {
			return nil, err
		}
		s.InsertRange(lo, hi)
	}
	return s, nil
}

func parseRange(part string) (int64, int64, error) {
	if dash := strings.IndexByte(part, '-'); dash > 0 {
		lo, err1 := strconv.ParseInt(part[:dash], 10, 64)
		hi, err2 := strconv.ParseInt(part[dash+1:], 10, 64)
		if err1 != nil || err2 != nil || lo < 0 || hi < lo {
			return 0, 0, fmt.Errorf("%w: bad range %q", ErrSyntax, part)
		}
		return lo, hi, nil
	}
	n, err := strconv.ParseInt(part, 10, 64)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("%w: bad id %q", ErrSyntax, part)
	}
	return n, n, nil
}

// Insert adds one ID.
func (s *Set) Insert(id int64) { s.InsertRange(id, id) }

// InsertRange adds every ID in [lo, hi] (inclusive); lo must be >= 0 and
// <= hi or the call is a no-op.
func (s *Set) InsertRange(lo, hi int64) {
	if lo < 0 || hi < lo {
		return
	}
	// Find insertion window: all spans overlapping or adjacent to
	// [lo, hi].
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].hi >= lo-1 })
	j := i
	for j < len(s.spans) && s.spans[j].lo <= hi+1 {
		j++
	}
	if i < j {
		if s.spans[i].lo < lo {
			lo = s.spans[i].lo
		}
		if s.spans[j-1].hi > hi {
			hi = s.spans[j-1].hi
		}
	}
	merged := append(s.spans[:i:i], span{lo, hi})
	s.spans = append(merged, s.spans[j:]...)
}

// Delete removes one ID.
func (s *Set) Delete(id int64) { s.DeleteRange(id, id) }

// DeleteRange removes every ID in [lo, hi].
func (s *Set) DeleteRange(lo, hi int64) {
	if hi < lo {
		return
	}
	var out []span
	for _, sp := range s.spans {
		if sp.hi < lo || sp.lo > hi {
			out = append(out, sp)
			continue
		}
		if sp.lo < lo {
			out = append(out, span{sp.lo, lo - 1})
		}
		if sp.hi > hi {
			out = append(out, span{hi + 1, sp.hi})
		}
	}
	s.spans = out
}

// Contains reports membership.
func (s *Set) Contains(id int64) bool {
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].hi >= id })
	return i < len(s.spans) && s.spans[i].lo <= id
}

// Count returns the set's cardinality.
func (s *Set) Count() int64 {
	var n int64
	for _, sp := range s.spans {
		n += sp.hi - sp.lo + 1
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return len(s.spans) == 0 }

// Min returns the smallest member (or -1 if empty).
func (s *Set) Min() int64 {
	if len(s.spans) == 0 {
		return -1
	}
	return s.spans[0].lo
}

// Max returns the largest member (or -1 if empty).
func (s *Set) Max() int64 {
	if len(s.spans) == 0 {
		return -1
	}
	return s.spans[len(s.spans)-1].hi
}

// Each calls fn on every member in ascending order until fn returns
// false.
func (s *Set) Each(fn func(id int64) bool) {
	for _, sp := range s.spans {
		for id := sp.lo; id <= sp.hi; id++ {
			if !fn(id) {
				return
			}
		}
	}
}

// Slice returns all members ascending.
func (s *Set) Slice() []int64 {
	out := make([]int64, 0, s.Count())
	s.Each(func(id int64) bool { out = append(out, id); return true })
	return out
}

// Union returns a new set holding members of either set.
func (s *Set) Union(o *Set) *Set {
	out := s.Clone()
	for _, sp := range o.spans {
		out.InsertRange(sp.lo, sp.hi)
	}
	return out
}

// Intersect returns a new set holding members of both sets.
func (s *Set) Intersect(o *Set) *Set {
	out := &Set{}
	i, j := 0, 0
	for i < len(s.spans) && j < len(o.spans) {
		a, b := s.spans[i], o.spans[j]
		lo, hi := max64(a.lo, b.lo), min64(a.hi, b.hi)
		if lo <= hi {
			out.spans = append(out.spans, span{lo, hi})
		}
		if a.hi < b.hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns a new set holding members of s not in o.
func (s *Set) Subtract(o *Set) *Set {
	out := s.Clone()
	for _, sp := range o.spans {
		out.DeleteRange(sp.lo, sp.hi)
	}
	return out
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	return &Set{spans: append([]span(nil), s.spans...)}
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	if len(s.spans) != len(o.spans) {
		return false
	}
	for i, sp := range s.spans {
		if sp != o.spans[i] {
			return false
		}
	}
	return true
}

// String renders idset notation ("" for the empty set). Pairs render as
// "a,b" and longer runs as "a-b", matching flux's writer.
func (s *Set) String() string {
	var b strings.Builder
	for i, sp := range s.spans {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case sp.lo == sp.hi:
			fmt.Fprintf(&b, "%d", sp.lo)
		case sp.lo+1 == sp.hi:
			fmt.Fprintf(&b, "%d,%d", sp.lo, sp.hi)
		default:
			fmt.Fprintf(&b, "%d-%d", sp.lo, sp.hi)
		}
	}
	return b.String()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
