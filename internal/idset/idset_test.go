package idset

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(3, 1, 2, 7)
	if got := s.String(); got != "1-3,7" {
		t.Fatalf("String = %q", got)
	}
	if s.Count() != 4 || s.Empty() {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Min() != 1 || s.Max() != 7 {
		t.Fatalf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	for _, id := range []int64{1, 2, 3, 7} {
		if !s.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
	for _, id := range []int64{0, 4, 6, 8} {
		if s.Contains(id) {
			t.Fatalf("unexpected %d", id)
		}
	}
	empty := New()
	if !empty.Empty() || empty.Min() != -1 || empty.Max() != -1 || empty.String() != "" {
		t.Fatal("empty set misbehaves")
	}
}

func TestStringPairs(t *testing.T) {
	// Two-element runs render "a,b" like flux; 3+ render "a-b".
	if got := New(0, 1).String(); got != "0,1" {
		t.Fatalf("pair = %q", got)
	}
	if got := New(0, 1, 2).String(); got != "0-2" {
		t.Fatalf("run = %q", got)
	}
}

func TestInsertMerging(t *testing.T) {
	s := New()
	s.InsertRange(10, 20)
	s.InsertRange(30, 40)
	s.InsertRange(21, 29) // bridges the gap
	if got := s.String(); got != "10-40" {
		t.Fatalf("merge = %q", got)
	}
	s.Insert(9) // adjacent below
	s.Insert(41)
	if got := s.String(); got != "9-41" {
		t.Fatalf("adjacent = %q", got)
	}
	s.InsertRange(5, 50) // superset
	if got := s.String(); got != "5-50" {
		t.Fatalf("superset = %q", got)
	}
	s.InsertRange(7, 9) // fully inside
	if got := s.String(); got != "5-50" {
		t.Fatalf("inside = %q", got)
	}
	s.InsertRange(5, 3) // invalid: no-op
	s.Insert(-1)
	if got := s.String(); got != "5-50" {
		t.Fatalf("invalid insert changed set: %q", got)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.InsertRange(0, 10)
	s.Delete(5) // split
	if got := s.String(); got != "0-4,6-10" {
		t.Fatalf("split = %q", got)
	}
	s.DeleteRange(0, 2) // trim head
	if got := s.String(); got != "3,4,6-10" {
		t.Fatalf("trim = %q", got)
	}
	s.DeleteRange(8, 100) // trim tail across end
	if got := s.String(); got != "3,4,6,7" {
		t.Fatalf("tail = %q", got)
	}
	s.DeleteRange(0, 100)
	if !s.Empty() {
		t.Fatalf("clear = %q", s.String())
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("0-3,7,9-12")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 3, 7, 9, 10, 11, 12}
	if !reflect.DeepEqual(s.Slice(), want) {
		t.Fatalf("Slice = %v", s.Slice())
	}
	if s2, err := Parse(""); err != nil || !s2.Empty() {
		t.Fatalf("empty parse: %v %v", s2, err)
	}
	for _, bad := range []string{"x", "3-1", "-1", "1-", "1,,2", "1, 2"} {
		if _, err := Parse(bad); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q): %v", bad, err)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a, _ := Parse("0-9")
	b, _ := Parse("5-14")
	if got := a.Union(b).String(); got != "0-14" {
		t.Fatalf("union = %q", got)
	}
	if got := a.Intersect(b).String(); got != "5-9" {
		t.Fatalf("intersect = %q", got)
	}
	if got := a.Subtract(b).String(); got != "0-4" {
		t.Fatalf("subtract = %q", got)
	}
	if got := b.Subtract(a).String(); got != "10-14" {
		t.Fatalf("subtract2 = %q", got)
	}
	if !a.Clone().Equal(a) || a.Equal(b) {
		t.Fatal("Equal/Clone broken")
	}
	disjoint, _ := Parse("20-30")
	if !a.Intersect(disjoint).Empty() {
		t.Fatal("disjoint intersect non-empty")
	}
}

func TestEachEarlyStop(t *testing.T) {
	s, _ := Parse("0-100")
	n := 0
	s.Each(func(int64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Each stopped at %d", n)
	}
}

// TestRandomAgainstMap drives the set with random ops against a map
// reference.
func TestRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New()
	ref := map[int64]bool{}
	for op := 0; op < 20000; op++ {
		id := int64(rng.Intn(300))
		if rng.Intn(2) == 0 {
			s.Insert(id)
			ref[id] = true
		} else {
			s.Delete(id)
			delete(ref, id)
		}
		if op%500 == 0 {
			if int64(len(ref)) != s.Count() {
				t.Fatalf("op %d: count %d vs %d", op, s.Count(), len(ref))
			}
			for id := int64(0); id < 300; id++ {
				if s.Contains(id) != ref[id] {
					t.Fatalf("op %d: Contains(%d) = %v", op, id, s.Contains(id))
				}
			}
		}
	}
	// Round trip through notation.
	back, err := Parse(s.String())
	if err != nil || !back.Equal(s) {
		t.Fatalf("round trip: %v", err)
	}
}

// TestQuickRoundTrip property: any ID slice round-trips through notation.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		for _, v := range raw {
			s.Insert(int64(v))
		}
		back, err := Parse(s.String())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlgebraLaws property: set algebra agrees with map semantics.
func TestQuickAlgebraLaws(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(), New()
		am, bm := map[int64]bool{}, map[int64]bool{}
		for _, v := range xs {
			a.Insert(int64(v))
			am[int64(v)] = true
		}
		for _, v := range ys {
			b.Insert(int64(v))
			bm[int64(v)] = true
		}
		u, i, d := a.Union(b), a.Intersect(b), a.Subtract(b)
		for id := int64(0); id < 256; id++ {
			if u.Contains(id) != (am[id] || bm[id]) {
				return false
			}
			if i.Contains(id) != (am[id] && bm[id]) {
				return false
			}
			if d.Contains(id) != (am[id] && !bm[id]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
