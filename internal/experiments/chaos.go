package experiments

// E9 — chaos/self-defense study: how the defended scheduler holds up as
// the fault intensity climbs. One synthetic trace is replayed through
// the full simulator at each intensity with every defense armed; the
// chaos plan poisons a growing fraction of the jobs (injected match
// panics, malformed specs) and slows a growing fraction of the honest
// ones. The headline property is that the survival rate of clean jobs
// stays at 1.0 across the whole sweep — quarantine absorbs the hostile
// jobs and the degradation ladder absorbs the latency pressure, while
// the degraded-cycle fraction and quarantine counts climb with the
// intensity.

import (
	"fmt"
	"io"
	"time"

	"fluxion/internal/chaos"
	"fluxion/internal/grug"
	"fluxion/internal/sched"
	"fluxion/internal/simcli"
	"fluxion/internal/trace"
)

// ChaosConfig parameterizes the E9 chaos sweep.
type ChaosConfig struct {
	Racks        int64 // system scale
	NodesPerRack int64
	Cores        int64
	Jobs         int   // trace length
	Seed         int64 // trace and chaos-plan seed
	// Intensities is the fault-intensity sweep. At intensity f each job
	// independently panics with probability f/2, submits a malformed
	// spec with probability f/2, and matches slowly with probability f.
	Intensities []float64
	// SlowDelay is how long a slow match stalls inside the kernel.
	SlowDelay time.Duration
	// CycleDeadline arms the cycle watchdog for every run; slow matches
	// push cycles past it and climb the degradation ladder.
	CycleDeadline time.Duration
}

// DefaultChaos sweeps intensity 0 → 0.5 on the small two-rack system.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{
		Racks: 2, NodesPerRack: 4, Cores: 8,
		Jobs: 200, Seed: 23,
		Intensities:   []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5},
		SlowDelay:     400 * time.Microsecond,
		CycleDeadline: 250 * time.Microsecond,
	}
}

// ChaosResult is one intensity sample point.
type ChaosResult struct {
	Intensity float64
	// Clean is how many trace jobs the plan did not poison; Survived is
	// how many of those completed. The self-defense contract is
	// SurvivalRate == 1 at every intensity.
	Clean        int
	Survived     int
	SurvivalRate float64
	// Quarantined / InvalidRejects / OverloadRejects are the defense
	// counters: poisoned jobs absorbed without harming the clean ones.
	Quarantined     int64
	InvalidRejects  int64
	OverloadRejects int64
	// DegradedFrac is DegradedCycles/Cycles: how often the watchdog had
	// the ladder above normal.
	Cycles         int64
	DegradedCycles int64
	DegradedFrac   float64
	Wall           time.Duration
}

// RunChaos replays the trace once per intensity, defenses armed.
func RunChaos(cfg ChaosConfig) ([]ChaosResult, error) {
	jobs := trace.Synthesize(cfg.Jobs, cfg.NodesPerRack, cfg.Cores, cfg.Seed)
	// Stagger arrivals one second apart: the synthetic trace submits
	// everything at t=0, which would concentrate every slow match in a
	// single giant first cycle and show the watchdog exactly one late
	// cycle at any intensity. Spread out, each slow arrival pressures
	// its own cycle and the degraded fraction tracks the intensity.
	for i := range jobs {
		jobs[i].Submit = int64(i)
	}
	out := make([]ChaosResult, 0, len(cfg.Intensities))
	for _, intensity := range cfg.Intensities {
		plan := &chaos.Plan{
			Seed:          cfg.Seed,
			PanicFrac:     intensity / 2,
			SlowFrac:      intensity,
			SlowDelay:     cfg.SlowDelay,
			MalformedFrac: intensity / 2,
		}
		// ConflictLimit stays off: with parallel speculation an honest
		// job can lose commit races repeatedly, and quarantining it
		// would (correctly) show up here as a survival failure.
		scfg := simcli.Config{
			Recipe:       grug.Small(cfg.Racks, cfg.NodesPerRack, cfg.Cores, 0, 0),
			QueuePolicy:  sched.Conservative,
			MatchWorkers: 4,
			Chaos:        plan,
			Defense:      &sched.DefenseConfig{CycleDeadline: cfg.CycleDeadline},
		}
		start := time.Now()
		res, err := simcli.Run(scfg, jobs, io.Discard)
		if err != nil {
			return nil, fmt.Errorf("chaos experiment at intensity %.2f: %w", intensity, err)
		}
		r := ChaosResult{Intensity: intensity, Wall: time.Since(start)}
		for _, j := range jobs {
			if plan.Poisoned(j.ID) {
				continue
			}
			r.Clean++
			if sj, ok := res.Scheduler.Job(j.ID); ok && sj.State == sched.StateCompleted {
				r.Survived++
			}
		}
		if r.Clean > 0 {
			r.SurvivalRate = float64(r.Survived) / float64(r.Clean)
		}
		ss := res.Scheduler.Stats()
		r.Quarantined = ss.Quarantined
		r.InvalidRejects = ss.InvalidSpecRejects
		r.OverloadRejects = ss.OverloadRejects
		r.Cycles = ss.Cycles
		r.DegradedCycles = ss.DegradedCycles
		if r.Cycles > 0 {
			r.DegradedFrac = float64(r.DegradedCycles) / float64(r.Cycles)
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintChaos renders the E9 sweep as a table.
func PrintChaos(w io.Writer, results []ChaosResult, cfg ChaosConfig) {
	fmt.Fprintf(w, "Chaos sweep — %d jobs on %d nodes, all defenses armed (cycle deadline %v, slow match %v)\n",
		cfg.Jobs, cfg.Racks*cfg.NodesPerRack, cfg.CycleDeadline, cfg.SlowDelay)
	fmt.Fprintf(w, "%9s %6s %8s %8s %11s %8s %8s %9s %8s %10s\n",
		"intensity", "clean", "survived", "survival", "quarantined", "invalid", "overload",
		"degraded", "cycles", "wall")
	for _, r := range results {
		fmt.Fprintf(w, "%9.2f %6d %8d %8.3f %11d %8d %8d %9d %8d %10v\n",
			r.Intensity, r.Clean, r.Survived, r.SurvivalRate,
			r.Quarantined, r.InvalidRejects, r.OverloadRejects,
			r.DegradedCycles, r.Cycles, r.Wall.Round(time.Millisecond))
	}
}
