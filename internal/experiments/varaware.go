package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
	"fluxion/internal/workload"
)

// VarAwareConfig parameterizes the §6.3 case study. The paper values are
// the defaults from DefaultVarAware: 39 racks × 62 nodes × 36 cores
// (2418-node quartz subset) and a 200-job queue snapshot.
type VarAwareConfig struct {
	Racks        int64
	NodesPerRack int64
	CoresPerNode int64
	Jobs         int
	MaxJobNodes  int64
	Seed         int64
}

// DefaultVarAware reproduces the paper's configuration.
func DefaultVarAware() VarAwareConfig {
	return VarAwareConfig{Racks: 39, NodesPerRack: 62, CoresPerNode: 36, Jobs: 200, MaxJobNodes: 256, Seed: 2023}
}

// VarAwarePolicies are the three compared policies in paper order.
var VarAwarePolicies = []string{"high", "low", "variation"}

// PolicyRun is the outcome of scheduling the trace under one policy.
type PolicyRun struct {
	Policy string
	// PerJob is each job's matcher wall time, in submit order
	// (Fig. 7b's per-job series).
	PerJob []time.Duration
	// Total is the summed matcher time (the figure's "Total" banner).
	Total time.Duration
	// Immediate and Reserved count jobs allocated now vs. reserved
	// into the future after the initial scheduling pass.
	Immediate, Reserved int
	// Fom is the figure-of-merit histogram over all placed jobs
	// (Table 1 / Fig. 8): Fom[k] jobs with max-min class spread k.
	Fom []int
}

// RunVarAwarePolicy schedules the trace under one policy name ("high",
// "low", or "variation") on a fresh system.
func RunVarAwarePolicy(cfg VarAwareConfig, policyName string) (PolicyRun, error) {
	run := PolicyRun{Policy: policyName}
	g, err := grug.BuildGraph(
		grug.Quartz(cfg.Racks, cfg.NodesPerRack, cfg.CoresPerNode),
		0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		return run, err
	}
	model := workload.GenerateVariation(int(cfg.Racks*cfg.NodesPerRack), cfg.Seed)
	model.Apply(g)

	policy, err := match.Lookup(policyName)
	if err != nil {
		return run, err
	}
	tr, err := traverser.New(g, policy)
	if err != nil {
		return run, err
	}
	s, err := sched.New(tr, sched.Conservative)
	if err != nil {
		return run, err
	}
	trace := workload.GenerateTrace(cfg.Jobs, cfg.MaxJobNodes, cfg.Seed+1)
	for _, tj := range trace {
		if _, err := s.Submit(tj.ID, tj.Jobspec(cfg.CoresPerNode)); err != nil {
			return run, err
		}
	}
	// The paper measures the initial scheduling pass over the queue
	// snapshot: every job is either allocated immediately or reserved.
	s.Schedule()

	fomPolicy := match.NewVariation("")
	var allocs []*traverser.Allocation
	for _, tj := range trace {
		job, _ := s.Job(tj.ID)
		run.PerJob = append(run.PerJob, job.MatchDuration)
		run.Total += job.MatchDuration
		switch job.State {
		case sched.StateRunning:
			run.Immediate++
		case sched.StateReserved:
			run.Reserved++
		}
		if job.Alloc != nil {
			allocs = append(allocs, job.Alloc)
		}
	}
	run.Fom = workload.FomHistogram(allocs, fomPolicy)
	return run, nil
}

// RunVarAware runs the full §6.3 study: the performance-class histogram
// (Fig. 7a) and the three policy runs (Fig. 7b, Table 1, Fig. 8).
func RunVarAware(cfg VarAwareConfig) (map[int]int, []PolicyRun, error) {
	model := workload.GenerateVariation(int(cfg.Racks*cfg.NodesPerRack), cfg.Seed)
	hist := model.ClassHistogram()
	var runs []PolicyRun
	for _, name := range VarAwarePolicies {
		run, err := RunVarAwarePolicy(cfg, name)
		if err != nil {
			return nil, nil, fmt.Errorf("policy %s: %w", name, err)
		}
		runs = append(runs, run)
	}
	return hist, runs, nil
}

// policyLabel maps registry names to the paper's labels.
func policyLabel(name string) string {
	switch name {
	case "high":
		return "HighestID"
	case "low":
		return "LowestID"
	case "variation":
		return "Variation-aware"
	default:
		return name
	}
}

// PrintClassHistogram renders Figure 7a.
func PrintClassHistogram(w io.Writer, hist map[int]int) {
	fmt.Fprintln(w, "E3 (Fig. 7a): node counts per performance class (Eq. 1 binning)")
	classes := make([]int, 0, len(hist))
	for c := range hist {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	total := 0
	for _, c := range classes {
		fmt.Fprintf(w, "  class %d: %5d nodes\n", c, hist[c])
		total += hist[c]
	}
	fmt.Fprintf(w, "  total:   %5d nodes\n", total)
}

// PrintVarAware renders Figure 7b, Table 1, and the Figure 8 ratios.
func PrintVarAware(w io.Writer, runs []PolicyRun) {
	fmt.Fprintln(w, "E4 (Fig. 7b): scheduling overhead per policy (conservative backfilling)")
	fmt.Fprintf(w, "%-16s %10s %10s %12s %12s %12s\n",
		"policy", "immediate", "reserved", "total", "first-10 avg", "rest avg")
	for _, r := range runs {
		first, rest := splitAvg(r.PerJob, 10)
		fmt.Fprintf(w, "%-16s %10d %10d %12v %12v %12v\n",
			policyLabel(r.Policy), r.Immediate, r.Reserved,
			r.Total.Round(time.Millisecond), first.Round(time.Microsecond), rest.Round(time.Microsecond))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "E5 (Table 1 / Fig. 8): figure-of-merit histogram (rank-to-rank variation)")
	fmt.Fprintf(w, "%-16s", "policy")
	for f := 0; f < workload.NumClasses; f++ {
		fmt.Fprintf(w, " fom=%d", f)
	}
	fmt.Fprintln(w)
	for _, r := range runs {
		fmt.Fprintf(w, "%-16s", policyLabel(r.Policy))
		for _, n := range r.Fom {
			fmt.Fprintf(w, " %5d", n)
		}
		fmt.Fprintln(w)
	}
	if len(runs) == 3 && runs[2].Fom[0] > 0 {
		fmt.Fprintf(w, "fom=0 improvement: %.1fx vs HighestID, %.1fx vs LowestID (paper: 2.8x, 2.3x)\n",
			ratio(runs[2].Fom[0], runs[0].Fom[0]), ratio(runs[2].Fom[0], runs[1].Fom[0]))
	}
}

func splitAvg(ds []time.Duration, head int) (first, rest time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	if head > len(ds) {
		head = len(ds)
	}
	var a, b time.Duration
	for i, d := range ds {
		if i < head {
			a += d
		} else {
			b += d
		}
	}
	first = a / time.Duration(head)
	if n := len(ds) - head; n > 0 {
		rest = b / time.Duration(n)
	}
	return first, rest
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
