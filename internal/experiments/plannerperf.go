package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"fluxion/internal/planner"
)

// Paper §6.2 parameters: 128 units of an unnamed resource; requests
// <r ∈ U[1,128], d ∈ U[1,43200]> placed with conservative backfilling
// (earliest fit).
const (
	PlannerUnits  = 128
	PlannerMaxDur = 43200 // 12 hours
)

// PlannerResult is one point of one Figure 6b series: mean query latency
// with a given pre-populated span count.
type PlannerResult struct {
	Spans      int
	Test       string // SatAt | SatDuring | EarliestAt
	Queries    int
	PerQuery   time.Duration
	PointCount int
}

// PrepopulatePlanner builds a planner holding `spans` spans placed at
// their earliest fit, mirroring the paper's conservative-backfilling
// pre-population. As in a live backfilling queue, the submission clock
// advances as the schedule grows (a job cannot start in the past), with a
// bounded backlog window of two maximum durations behind the latest
// placement. The horizon stretches as far as needed.
func PrepopulatePlanner(spans int, seed int64) (*planner.Planner, error) {
	p, err := planner.New(0, 1<<40, PlannerUnits, "unnamed")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var now int64
	for i := 0; i < spans; i++ {
		r := int64(rng.Intn(PlannerUnits)) + 1
		d := int64(rng.Intn(PlannerMaxDur)) + 1
		at, err := p.AvailTimeFirst(now, d, r)
		if err != nil {
			return nil, fmt.Errorf("prepopulate span %d: %w", i, err)
		}
		if _, err := p.AddSpan(at, d, r); err != nil {
			return nil, fmt.Errorf("prepopulate span %d: %w", i, err)
		}
		if floor := at - 2*PlannerMaxDur; floor > now {
			now = floor
		}
	}
	return p, nil
}

// occupiedEnd estimates the last scheduled time, for sampling query times
// within the occupied region.
func occupiedEnd(p *planner.Planner) int64 {
	var end int64
	p.Points(func(at, _ int64) bool {
		end = at
		return true
	})
	if end == 0 {
		end = 1
	}
	return end
}

// RunPlannerTest measures one Figure 6b series point. test is one of
// "SatAt", "SatDuring", "EarliestAt"; queries sweep r = 1,2,4,...,128 as
// in the paper, repeated with fresh random times until `queries` samples.
// A GC cycle runs first so pre-population garbage does not pollute the
// measurement.
func RunPlannerTest(p *planner.Planner, test string, queries int, seed int64) (PlannerResult, error) {
	rng := rand.New(rand.NewSource(seed))
	end := occupiedEnd(p)
	runtime.GC()
	res := PlannerResult{Spans: p.SpanCount(), Test: test, Queries: queries, PointCount: p.PointCount()}
	start := time.Now()
	for i := 0; i < queries; i++ {
		r := int64(1) << (i % 8) // 1..128 in powers of two
		switch test {
		case "SatAt":
			t := rng.Int63n(end)
			p.CanFit(t, 1, r)
		case "SatDuring":
			t := rng.Int63n(end)
			d := int64(rng.Intn(PlannerMaxDur)) + 1
			p.CanFit(t, d, r)
		case "EarliestAt":
			if _, err := p.AvailTimeFirst(0, 1, r); err != nil {
				return res, err
			}
		default:
			return res, fmt.Errorf("unknown planner test %q", test)
		}
	}
	res.PerQuery = time.Since(start) / time.Duration(queries)
	return res, nil
}

// PlannerTests is the Figure 6b series list.
var PlannerTests = []string{"SatAt", "SatDuring", "EarliestAt"}

// RunPlannerPerf sweeps pre-populated span counts and runs the three query
// families at each, reproducing Figure 6b.
func RunPlannerPerf(spanCounts []int, queries int, seed int64) ([]PlannerResult, error) {
	var out []PlannerResult
	for _, n := range spanCounts {
		p, err := PrepopulatePlanner(n, seed)
		if err != nil {
			return nil, err
		}
		for _, test := range PlannerTests {
			r, err := RunPlannerTest(p, test, queries, seed+int64(n))
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// PrintPlannerPerf renders Figure 6b as a table.
func PrintPlannerPerf(w io.Writer, results []PlannerResult) {
	fmt.Fprintln(w, "E2 (Fig. 6b): Planner query latency vs. pre-populated spans")
	fmt.Fprintf(w, "%-10s %10s %10s %14s\n", "test", "spans", "points", "per-query")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %10d %10d %14v\n", r.Test, r.Spans, r.PointCount, r.PerQuery)
	}
}
