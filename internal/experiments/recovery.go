package experiments

// E8 — durable-state recovery drill: how long crash recovery takes as a
// function of surviving log length, with and without a snapshot. One
// long deep-queue run is journaled to a WAL with snapshots suppressed,
// then the finished log is truncated (on copies) at evenly spaced record
// boundaries. At each point the experiment times full replay-from-
// genesis recovery, then writes a snapshot at that boundary and times
// recovery again. The two series expose the snapshot-plus-log tradeoff:
// replay cost grows with the committed log length, while snapshot
// recovery cost tracks the live-state size (queue depth, allocations) at
// the crash point — independent of how much history preceded it.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fluxion"
	"fluxion/internal/durable"
	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/wal"
)

// RecoveryConfig parameterizes the E8 recovery study.
type RecoveryConfig struct {
	Nodes    int64 // nodes in the (single-rack) system
	Cores    int64 // cores per node
	Jobs     int   // queue depth at t=0
	Duration int64 // per-job runtime in simulated seconds
	Points   int   // log-length sample points
}

// DefaultRecovery mirrors the E7 system with a deep enough queue to
// produce a multi-thousand-record log.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{Nodes: 8, Cores: 4, Jobs: 512, Duration: 100, Points: 8}
}

// RecoveryResult is one log-length sample point.
type RecoveryResult struct {
	// Records is the journal length recovery replayed (no snapshot).
	Records int
	// LogBytes is the surviving log size at this truncation point.
	LogBytes int64
	// ReplayWall is full recovery time from genesis: open + scan +
	// fresh build + replay of every record.
	ReplayWall time.Duration
	// SnapWall is recovery time when a snapshot covers the whole log.
	SnapWall time.Duration
	// SnapshotBytes is the size of that snapshot document.
	SnapshotBytes int64
}

type recoverySystem struct {
	cfg RecoveryConfig
}

func (rs recoverySystem) fresh() (*fluxion.Fluxion, *sched.Scheduler, error) {
	g, err := grug.BuildGraph(grug.Small(1, rs.cfg.Nodes, rs.cfg.Cores, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		return nil, nil, err
	}
	f, err := fluxion.New(fluxion.WithGraph(g), fluxion.WithPolicy("first"))
	if err != nil {
		return nil, nil, err
	}
	s, err := sched.New(f.Traverser(), sched.Conservative)
	if err != nil {
		return nil, nil, err
	}
	return f, s, nil
}

// RunRecovery journals one deep-queue run, then times recovery at
// Points evenly spaced log lengths.
func RunRecovery(cfg RecoveryConfig) ([]RecoveryResult, error) {
	if cfg.Points <= 0 {
		cfg.Points = 8
	}
	rs := recoverySystem{cfg: cfg}
	root, err := os.MkdirTemp("", "fluxion-e8-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	// The journaled base run: snapshots suppressed so the full record
	// history survives for truncation.
	base := filepath.Join(root, "wal")
	st, err := durable.Open(durable.Options{
		Dir:           base,
		SyncInterval:  -1,
		SnapshotEvery: 1 << 30,
		KeepAll:       true,
	})
	if err != nil {
		return nil, err
	}
	f, s, err := rs.fresh()
	if err != nil {
		return nil, err
	}
	st.Attach(f, s)
	// One command per submit: dense commit boundaries, so truncation
	// points spread evenly over the history (an uncommitted tail rolls
	// recovery back to the last commit).
	spec := jobspec.New(cfg.Duration,
		jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", cfg.Cores))))
	for i := 1; i <= cfg.Jobs; i++ {
		if _, err := s.Submit(int64(i), spec); err != nil {
			return nil, err
		}
	}
	if done := s.Run(0); done != cfg.Jobs {
		return nil, fmt.Errorf("recovery experiment: %d of %d jobs completed", done, cfg.Jobs)
	}
	// Detach without Close so no shutdown snapshot is written; every
	// record is already on disk (sync-per-commit).
	s.SetJournal(nil)

	frames, err := wal.Frames(base)
	if err != nil {
		return nil, err
	}
	if len(frames) < cfg.Points {
		return nil, fmt.Errorf("recovery experiment: only %d records journaled", len(frames))
	}

	out := make([]RecoveryResult, 0, cfg.Points)
	for p := 1; p <= cfg.Points; p++ {
		fr := frames[p*len(frames)/cfg.Points-1]
		dir := filepath.Join(root, fmt.Sprintf("cut-%d", p))
		if err := copyLogDir(base, dir); err != nil {
			return nil, err
		}
		if err := wal.TruncateAt(dir, filepath.Join(dir, filepath.Base(fr.Path)), fr.End, fr.LSN); err != nil {
			return nil, err
		}
		res, err := rs.measure(dir)
		if err != nil {
			return nil, fmt.Errorf("recovery point %d (lsn %d): %w", p, fr.LSN, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// measure times replay-from-genesis recovery of dir, then snapshots at
// the recovered state and times snapshot recovery of the same log.
func (rs recoverySystem) measure(dir string) (RecoveryResult, error) {
	var res RecoveryResult
	res.LogBytes = dirBytes(dir, ".wal")

	start := time.Now()
	st, err := durable.Open(durable.Options{Dir: dir, SyncInterval: -1, KeepAll: true})
	if err != nil {
		return res, err
	}
	f, s, err := st.Restore(rs.fresh, nil, nil)
	if err != nil {
		return res, err
	}
	res.ReplayWall = time.Since(start)
	res.Records = st.Stats().RecordsReplayed

	// Write the covering snapshot, then time recovery through it.
	st.Attach(f, s)
	if err := st.Snapshot(); err != nil {
		return res, err
	}
	if err := st.Close(); err != nil {
		return res, err
	}
	res.SnapshotBytes = dirBytes(dir, ".snap")

	start = time.Now()
	st2, err := durable.Open(durable.Options{Dir: dir, SyncInterval: -1, KeepAll: true})
	if err != nil {
		return res, err
	}
	fopts := []fluxion.Option{
		fluxion.WithPolicy("first"),
		fluxion.WithPruneSpec(resgraph.PruneSpec{resgraph.ALL: {"core", "node"}}),
		fluxion.WithHorizon(1 << 40),
	}
	if _, _, err := st2.Restore(rs.fresh, fopts, nil); err != nil {
		return res, err
	}
	res.SnapWall = time.Since(start)
	if got := st2.Stats().RecordsReplayed; got != 0 {
		return res, fmt.Errorf("snapshot recovery still replayed %d records", got)
	}
	return res, st2.Close()
}

func copyLogDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func dirBytes(dir, ext string) int64 {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ext {
			continue
		}
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// PrintRecovery renders the E8 sweep as a table.
func PrintRecovery(w io.Writer, results []RecoveryResult, cfg RecoveryConfig) {
	fmt.Fprintf(w, "Durable-state recovery — %d jobs on %d nodes, recovery time vs. surviving log length\n",
		cfg.Jobs, cfg.Nodes)
	fmt.Fprintf(w, "%8s %10s %12s %14s %10s\n",
		"records", "log_bytes", "replay", "with_snapshot", "snap_bytes")
	for _, r := range results {
		fmt.Fprintf(w, "%8d %10d %12v %14v %10d\n",
			r.Records, r.LogBytes, r.ReplayWall.Round(10*time.Microsecond),
			r.SnapWall.Round(10*time.Microsecond), r.SnapshotBytes)
	}
}
