package experiments

import (
	"fmt"
	"io"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/traverser"
)

// IncrementConfig parameterizes the E7 incremental-scheduling study: a
// deep queue of identical single-node jobs on a small system, the
// steady-state scenario where full requeue degenerates to O(pending ×
// match) per cycle.
type IncrementConfig struct {
	Nodes    int64 // nodes in the (single-rack) system
	Cores    int64 // cores per node
	Jobs     int   // queue depth at t=0
	Duration int64 // per-job runtime in simulated seconds
}

// DefaultIncrement is the paper-style configuration: a 512-deep queue on
// 8 nodes, i.e. 64 jobs' worth of work per node.
func DefaultIncrement() IncrementConfig {
	return IncrementConfig{Nodes: 8, Cores: 4, Jobs: 512, Duration: 100}
}

// IncrementResult is one engine × policy run of the study.
type IncrementResult struct {
	Policy        sched.QueuePolicy
	Engine        string // "full" or "incremental"
	Completed     int
	Cycles        int64
	MatchAttempts int64
	SkippedJobs   int64
	Wall          time.Duration
	// AttemptsPerCycle is the average matching work per scheduling event.
	AttemptsPerCycle float64
	// Reduction is the full engine's attempts divided by this run's (1.0
	// for the full rows themselves).
	Reduction float64
	// Parity reports whether every job's terminal decision (state, start,
	// end) matched the full engine's run under the same policy.
	Parity bool
}

// runIncrementOnce drives one deep-queue run to completion.
func runIncrementOnce(cfg IncrementConfig, policy sched.QueuePolicy, incremental bool) (*sched.Scheduler, IncrementResult, error) {
	res := IncrementResult{Policy: policy, Engine: "full"}
	if incremental {
		res.Engine = "incremental"
	}
	g, err := grug.BuildGraph(grug.Small(1, cfg.Nodes, cfg.Cores, 0, 0), 0, 1<<40,
		resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
	if err != nil {
		return nil, res, err
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		return nil, res, err
	}
	s, err := sched.New(tr, policy, sched.WithIncremental(incremental))
	if err != nil {
		return nil, res, err
	}
	spec := jobspec.New(cfg.Duration,
		jobspec.SlotR(1, jobspec.R("node", 1, jobspec.R("core", cfg.Cores))))
	for i := 1; i <= cfg.Jobs; i++ {
		if _, err := s.Submit(int64(i), spec); err != nil {
			return nil, res, err
		}
	}
	start := time.Now()
	res.Completed = s.Run(0)
	res.Wall = time.Since(start)
	st := s.Stats()
	res.Cycles = st.Cycles
	res.MatchAttempts = st.MatchAttempts
	res.SkippedJobs = st.SkippedJobs
	if st.Cycles > 0 {
		res.AttemptsPerCycle = float64(st.MatchAttempts) / float64(st.Cycles)
	}
	return s, res, nil
}

// RunIncrement runs the full-requeue and incremental engines over the same
// deep queue for each queue policy, reporting matching work and verifying
// decision parity row by row.
func RunIncrement(cfg IncrementConfig) ([]IncrementResult, error) {
	var out []IncrementResult
	for _, policy := range []sched.QueuePolicy{sched.FCFS, sched.EASY, sched.Conservative} {
		full, fullRes, err := runIncrementOnce(cfg, policy, false)
		if err != nil {
			return nil, fmt.Errorf("increment %s/full: %w", policy, err)
		}
		inc, incRes, err := runIncrementOnce(cfg, policy, true)
		if err != nil {
			return nil, fmt.Errorf("increment %s/incremental: %w", policy, err)
		}
		fullRes.Reduction = 1
		fullRes.Parity = true
		incRes.Parity = true
		for id, fj := range full.Jobs() {
			ij, ok := inc.Job(id)
			if !ok || fj.State != ij.State || fj.StartAt != ij.StartAt || fj.EndAt != ij.EndAt {
				incRes.Parity = false
				break
			}
		}
		if incRes.MatchAttempts > 0 {
			incRes.Reduction = float64(fullRes.MatchAttempts) / float64(incRes.MatchAttempts)
		}
		out = append(out, fullRes, incRes)
	}
	return out, nil
}

// PrintIncrement renders the engine comparison as a table.
func PrintIncrement(w io.Writer, results []IncrementResult, cfg IncrementConfig) {
	fmt.Fprintf(w, "Event-driven incremental scheduling — %d jobs on %d nodes, engine comparison per policy\n",
		cfg.Jobs, cfg.Nodes)
	fmt.Fprintf(w, "%-14s %-12s %7s %8s %10s %9s %11s %10s %7s\n",
		"policy", "engine", "cycles", "matches", "match/cyc", "skipped", "wall", "reduction", "parity")
	for _, r := range results {
		parity := "ok"
		if !r.Parity {
			parity = "FAIL"
		}
		fmt.Fprintf(w, "%-14s %-12s %7d %8d %10.1f %9d %11v %9.1fx %7s\n",
			r.Policy, r.Engine, r.Cycles, r.MatchAttempts, r.AttemptsPerCycle,
			r.SkippedJobs, r.Wall.Round(time.Millisecond), r.Reduction, parity)
	}
}
