// Package experiments reproduces every figure and table of the paper's
// evaluation (§6): E1 level-of-detail tradeoffs (Fig. 6a), E2 Planner
// query scaling (Fig. 6b), E3 performance-class binning (Fig. 7a), and
// E4/E5 the variation-aware scheduling case study (Fig. 7b, Table 1,
// Fig. 8). cmd/fluxion-bench and the repository's bench_test.go both
// drive these entry points, so the printed tables and the testing.B
// benchmarks measure identical code paths.
package experiments

import (
	"fmt"
	"io"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/jobspec"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// LODResult is one bar of paper Figure 6a.
type LODResult struct {
	Config   string // e.g. "High", "High Prune"
	Vertices int
	Matches  int // successful allocations until the system filled
	Total    time.Duration
	PerMatch time.Duration
}

// LODJobspec is the §6.1 request: one shareable node holding a slot of 10
// cores, 8 GB memory, and 1 burst-buffer unit, for one hour.
func LODJobspec() *jobspec.Jobspec {
	return jobspec.NodeLocal(1, 1, 10, 8, 1, 3600)
}

// LODConfigs enumerates the eight §6.1 configurations (four recipes ×
// prune on/off) at the given scale in racks (56 reproduces the paper's
// 1008-node system).
type LODConfig struct {
	Name   string
	Recipe *grug.Recipe
	Prune  bool
}

// LODConfigs returns the experiment matrix in the paper's bar order.
func LODConfigs(racks int64) []LODConfig {
	labels := []string{"High", "Med", "Low", "Low2"}
	var out []LODConfig
	for i, r := range grug.LODPresetsScaled(racks) {
		out = append(out, LODConfig{Name: labels[i], Recipe: r, Prune: false})
		out = append(out, LODConfig{Name: labels[i] + " Prune", Recipe: r, Prune: true})
	}
	return out
}

// RunLODConfig fills one configured system with LODJobspec allocations and
// reports the matching cost. Matching stops at the first failed
// allocation (the system is full).
func RunLODConfig(cfg LODConfig) (LODResult, error) {
	var spec resgraph.PruneSpec
	if cfg.Prune {
		// The paper configures the pruning filter with the core
		// resource type.
		spec = resgraph.PruneSpec{resgraph.ALL: {"core"}}
	}
	g, err := grug.BuildGraph(cfg.Recipe, 0, 1<<31, spec)
	if err != nil {
		return LODResult{}, err
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		return LODResult{}, err
	}
	js := LODJobspec()
	res := LODResult{Config: cfg.Name, Vertices: g.Len()}
	start := time.Now()
	for id := int64(1); ; id++ {
		if _, err := tr.MatchAllocate(id, js, 0); err != nil {
			break
		}
		res.Matches++
	}
	res.Total = time.Since(start)
	if res.Matches > 0 {
		res.PerMatch = res.Total / time.Duration(res.Matches)
	}
	return res, nil
}

// RunLOD runs the full §6.1 matrix.
func RunLOD(racks int64) ([]LODResult, error) {
	var out []LODResult
	for _, cfg := range LODConfigs(racks) {
		r, err := RunLODConfig(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintLOD renders Figure 6a as a table.
func PrintLOD(w io.Writer, results []LODResult, racks int64) {
	fmt.Fprintf(w, "E1 (Fig. 6a): LOD tradeoffs — %d-node system, fill with 10-core/8GB/1bb jobs\n", racks*18)
	fmt.Fprintf(w, "%-12s %10s %8s %14s %14s\n", "config", "vertices", "matches", "total", "per-match")
	for _, r := range results {
		fmt.Fprintf(w, "%-12s %10d %8d %14v %14v\n",
			r.Config, r.Vertices, r.Matches, r.Total.Round(time.Millisecond), r.PerMatch.Round(time.Microsecond))
	}
}
