package experiments

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/match"
	"fluxion/internal/resgraph"
	"fluxion/internal/traverser"
)

// ParMatchResult is one row of the parallel-match throughput sweep: the
// aggregate rate at which W workers push jobs through the speculate ->
// commit -> cancel pipeline on the Fig. 6a half-loaded system.
type ParMatchResult struct {
	Workers    int
	Ops        int // completed speculate+commit+cancel cycles
	Conflicts  int // commits that lost the race and were retried
	Total      time.Duration
	PerMatch   time.Duration
	Throughput float64 // matches per second, aggregate
	Speedup    float64 // throughput relative to the 1-worker row
}

// halfLoadLOD builds the High-LOD pruned system at the given rack scale
// and fills half its capacity with LODJobspec allocations, reproducing the
// steady mid-load state the Fig. 6a study matches against. It returns the
// traverser and the first free job ID.
func halfLoadLOD(racks int64) (*traverser.Traverser, int64, error) {
	recipe := grug.LODPresetsScaled(racks)[0] // High
	g, err := grug.BuildGraph(recipe, 0, 1<<31, resgraph.PruneSpec{resgraph.ALL: {"core"}})
	if err != nil {
		return nil, 0, err
	}
	tr, err := traverser.New(g, match.First{})
	if err != nil {
		return nil, 0, err
	}
	js := LODJobspec()
	// Each node hosts four 10-core jobs; fill half the system.
	fill := racks * 18 * 4 / 2
	id := int64(1)
	for ; id <= fill; id++ {
		if _, err := tr.MatchAllocate(id, js, 0); err != nil {
			return nil, 0, fmt.Errorf("half-load fill at job %d: %w", id, err)
		}
	}
	return tr, id, nil
}

// RunParMatch sweeps worker counts over the parallel match pipeline: each
// worker repeatedly speculates a match against the half-loaded system,
// commits it, and cancels it again, so the load level stays constant while
// `ops` total cycles complete. Conflicted commits are retried and counted.
func RunParMatch(racks int64, workers []int, ops int) ([]ParMatchResult, error) {
	tr, nextID, err := halfLoadLOD(racks)
	if err != nil {
		return nil, err
	}
	js := LODJobspec()
	var out []ParMatchResult
	for _, w := range workers {
		if w < 1 {
			return nil, fmt.Errorf("parmatch: worker count %d", w)
		}
		var ids atomic.Int64
		ids.Store(nextID)
		var done atomic.Int64
		var conflicts atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for done.Add(1) <= int64(ops) {
					id := ids.Add(1)
					for {
						alloc, err := tr.MatchSpeculate(id, js, 0)
						if err != nil {
							// Transiently over-claimed by concurrent
							// speculations; the capacity exists, retry.
							if errors.Is(err, traverser.ErrNoMatch) {
								continue
							}
							firstErr.CompareAndSwap(nil, err)
							return
						}
						if err := tr.Commit(alloc); err != nil {
							if errors.Is(err, traverser.ErrConflict) {
								conflicts.Add(1)
								continue
							}
							firstErr.CompareAndSwap(nil, err)
							return
						}
						break
					}
					if err := tr.Cancel(id); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return nil, fmt.Errorf("parmatch %d workers: %w", w, err)
		}
		total := time.Since(start)
		r := ParMatchResult{
			Workers:   w,
			Ops:       ops,
			Conflicts: int(conflicts.Load()),
			Total:     total,
		}
		if ops > 0 && total > 0 {
			r.PerMatch = total / time.Duration(ops)
			r.Throughput = float64(ops) / total.Seconds()
		}
		if len(out) > 0 && out[0].Throughput > 0 {
			r.Speedup = r.Throughput / out[0].Throughput
		} else {
			r.Speedup = 1
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintParMatch renders the worker sweep as a table.
func PrintParMatch(w io.Writer, results []ParMatchResult, racks int64) {
	fmt.Fprintf(w, "Parallel match pipeline — %d-node system at half load, speculate+commit+cancel cycles\n", racks*18)
	fmt.Fprintf(w, "%-8s %8s %10s %12s %14s %8s\n", "workers", "ops", "conflicts", "match/s", "per-match", "speedup")
	for _, r := range results {
		fmt.Fprintf(w, "%-8d %8d %10d %12.0f %14v %7.2fx\n",
			r.Workers, r.Ops, r.Conflicts, r.Throughput, r.PerMatch.Round(time.Microsecond), r.Speedup)
	}
}
