package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
)

// MemScaleResult is one row of the E11 resting-memory sweep: the heap and
// RSS footprint of a finalized high-LOD resource graph at one system
// scale. BytesPerVertex is the headline number the slab representation
// optimizes; RSS tracks the same build at the OS level and includes
// allocator overhead the heap figure hides.
type MemScaleResult struct {
	Racks          int64
	Vertices       int
	Build          time.Duration // wall time to build + finalize
	HeapBytes      uint64        // live-heap growth attributable to the graph
	BytesPerVertex float64
	RSSBytes       uint64  // resident-set growth (0 where /proc is unavailable)
	RSSPerVertex   float64 // 0 where RSS could not be read
}

// RunMemScale builds one pruned high-LOD graph per rack count and
// measures its resting footprint: live heap settled by two forced
// collections before and after the build, and /proc-reported RSS on the
// same boundaries. Each graph is released before the next scale so rows
// measure one graph, not the accumulation.
func RunMemScale(rackSweep []int64) ([]MemScaleResult, error) {
	var out []MemScaleResult
	for _, racks := range rackSweep {
		if racks < 1 {
			return nil, fmt.Errorf("memscale: rack count %d", racks)
		}
		heap0, rss0 := settledHeap(), procRSS()
		start := time.Now()
		g, err := grug.BuildGraph(grug.HighLODRacks(racks), 0, 1<<31,
			resgraph.PruneSpec{resgraph.ALL: {"core"}})
		if err != nil {
			return nil, fmt.Errorf("memscale %d racks: %w", racks, err)
		}
		build := time.Since(start)
		heap1, rss1 := settledHeap(), procRSS()
		r := MemScaleResult{
			Racks:    racks,
			Vertices: g.Len(),
			Build:    build,
		}
		if heap1 > heap0 && r.Vertices > 0 {
			r.HeapBytes = heap1 - heap0
			r.BytesPerVertex = float64(r.HeapBytes) / float64(r.Vertices)
		}
		if rss1 > rss0 && r.Vertices > 0 {
			r.RSSBytes = rss1 - rss0
			r.RSSPerVertex = float64(r.RSSBytes) / float64(r.Vertices)
		}
		out = append(out, r)
		runtime.KeepAlive(g)
	}
	return out, nil
}

// settledHeap returns the live heap after forcing collection twice (the
// second pass collects objects resurrected by finalizers from the first).
func settledHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// procRSS returns the process resident set size in bytes, or 0 where it
// cannot be read (non-Linux).
func procRSS() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// PrintMemScale renders the memory sweep as a table.
func PrintMemScale(w io.Writer, results []MemScaleResult) {
	fmt.Fprintf(w, "Resting-graph memory scaling — pruned high-LOD builds (ALL:core filters), slab representation\n")
	fmt.Fprintf(w, "%-8s %10s %12s %12s %10s %12s %10s\n",
		"racks", "vertices", "build", "heap", "B/vertex", "rss", "rssB/vtx")
	for _, r := range results {
		rss, rssPer := "-", "-"
		if r.RSSBytes > 0 {
			rss = fmt.Sprintf("%.1fMB", float64(r.RSSBytes)/(1<<20))
			rssPer = fmt.Sprintf("%.1f", r.RSSPerVertex)
		}
		fmt.Fprintf(w, "%-8d %10d %12v %11.1fMB %10.1f %12s %10s\n",
			r.Racks, r.Vertices, r.Build.Round(time.Millisecond),
			float64(r.HeapBytes)/(1<<20), r.BytesPerVertex, rss, rssPer)
	}
}
