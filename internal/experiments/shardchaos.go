package experiments

import (
	"fmt"
	"io"
	"time"

	"fluxion/internal/chaos"
	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/shard"
	"fluxion/internal/trace"
)

// ShardChaosConfig parameterizes the E13 shard-failure study: the same
// queue snapshot drained through a supervised sharded scheduler while a
// seeded chaos plan kills an increasing fraction of the shards mid-run,
// measuring what failover costs the jobs that were never on a failed
// shard ("clean" jobs) against the 0-intensity control.
type ShardChaosConfig struct {
	Racks       int64     // high-LOD racks (one shard each at Shards == Racks)
	Jobs        int       // queue-snapshot depth at t=0
	MaxNodes    int64     // largest job in nodes (kept within one shard's rack)
	Seed        int64     // workload seed
	ChaosSeed   int64     // shard-kill schedule seed
	Shards      int       // shard count (fixed across the sweep)
	Intensities []float64 // ShardKillFrac sweep; must include 0 (the control)
}

// DefaultShardChaos is the standard configuration: a 4-shard run over 4
// high-LOD racks under a 400-job snapshot, with kill intensity swept
// from the fault-free control up to half the fleet.
func DefaultShardChaos() ShardChaosConfig {
	return ShardChaosConfig{
		Racks: 4, Jobs: 400, MaxNodes: 16, Seed: 2023, ChaosSeed: 1,
		Shards: 4, Intensities: []float64{0, 0.125, 0.25, 0.375, 0.5},
	}
}

// ShardChaosResult is one kill-intensity row. The fault window opens at
// t=1 (after the snapshot's first scheduling round, so victims hold
// real allocations) and closes at half the control run's makespan, so
// every row's recovery probes get fault-free sim time to reabsorb in.
type ShardChaosResult struct {
	Intensity  float64 // ShardKillFrac
	Killed     int     // shards that reached Failed at least once
	Failures   int64   // supervisor failure transitions
	Recoveries int64   // successful reabsorptions
	Drained    int64   // pending/reserved jobs re-placed on survivors
	Evicted    int64   // running jobs requeued through the NodeDown path
	Lost       int64   // jobs failover could not save
	Touched    int     // distinct jobs drained, evicted, or lost
	Completed  int
	// Survival is Completed over the snapshot; CleanSurvival is the
	// completion rate of jobs failover never touched — the blast-radius
	// measure: supervision earns its keep when clean jobs stay at 1.0
	// while intensity climbs.
	Survival      float64
	CleanSurvival float64
	MeanWait      float64 // mean queue wait in simulated seconds
	WaitPenalty   float64 // MeanWait - control MeanWait, seconds
	Wall          time.Duration
}

// RunShardChaos drains the cfg.Seed snapshot once per kill intensity
// under EASY backfill, fault window [1, control makespan/2). The control
// (intensity 0) must come first in cfg.Intensities: its makespan bounds
// the window and its mean wait anchors WaitPenalty.
func RunShardChaos(cfg ShardChaosConfig) ([]ShardChaosResult, error) {
	if len(cfg.Intensities) == 0 || cfg.Intensities[0] != 0 {
		return nil, fmt.Errorf("shardchaos: intensity sweep must start with the 0 control")
	}
	jobs := trace.Synthesize(cfg.Jobs, cfg.MaxNodes, 10, cfg.Seed)
	var out []ShardChaosResult
	var faultUntil int64
	for _, intensity := range cfg.Intensities {
		g, err := grug.BuildGraph(grug.HighLODRacks(cfg.Racks), 0, 1<<40,
			resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
		if err != nil {
			return nil, err
		}
		sh, err := shard.New(shard.Config{
			Graph: g, Shards: cfg.Shards, Queue: sched.EASY,
			Supervisor: &shard.SupervisorConfig{},
		})
		if err != nil {
			return nil, fmt.Errorf("shardchaos %.3f: %w", intensity, err)
		}
		if intensity > 0 {
			plan := &chaos.Plan{
				Seed:            cfg.ChaosSeed,
				ShardKillFrac:   intensity,
				ShardFaultFrom:  1,
				ShardFaultUntil: faultUntil,
			}
			sh.SetCycleHook(plan.ShardHook())
		}
		start := time.Now()
		for _, j := range jobs {
			if _, err := sh.Submit(j.ID, j.Jobspec()); err != nil {
				return nil, fmt.Errorf("shardchaos %.3f: job %d: %w", intensity, j.ID, err)
			}
		}
		completed := sh.Run(0)
		wall := time.Since(start)

		m := sh.Metrics()
		ss := sh.SupervisorStats()
		touched := sh.TouchedJobs()
		touchedSet := make(map[int64]bool, len(touched))
		for _, id := range touched {
			touchedSet[id] = true
		}
		cleanDone, cleanTotal := 0, 0
		for _, j := range sh.Jobs() {
			if touchedSet[j.ID] {
				continue
			}
			cleanTotal++
			if j.State == sched.StateCompleted {
				cleanDone++
			}
		}
		killed := make(map[int]bool)
		for _, ev := range sh.HealthEvents() {
			if ev.To == shard.Failed && ev.From != shard.Failed {
				killed[ev.Shard] = true
			}
		}
		r := ShardChaosResult{
			Intensity:  intensity,
			Killed:     len(killed),
			Failures:   ss.Failures,
			Recoveries: ss.Recoveries,
			Drained:    ss.Drained,
			Evicted:    ss.Evicted,
			Lost:       ss.Lost,
			Touched:    len(touched),
			Completed:  completed,
			MeanWait:   m.MeanWait,
			Wall:       wall,
		}
		if cfg.Jobs > 0 {
			r.Survival = float64(completed) / float64(cfg.Jobs)
		}
		if cleanTotal > 0 {
			r.CleanSurvival = float64(cleanDone) / float64(cleanTotal)
		}
		if intensity == 0 {
			faultUntil = sh.Now() / 2
			if faultUntil < 2 {
				faultUntil = 2
			}
		} else {
			r.WaitPenalty = r.MeanWait - out[0].MeanWait
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintShardChaos renders the sweep as a table, control row first.
func PrintShardChaos(w io.Writer, results []ShardChaosResult, cfg ShardChaosConfig) {
	fmt.Fprintf(w, "Shard failover — %d shards over %d high-LOD racks, %d-job snapshot; kill window [1, control makespan/2), deltas vs the 0-intensity control\n",
		cfg.Shards, cfg.Racks, cfg.Jobs)
	fmt.Fprintf(w, "%9s %6s %8s %10s %7s %7s %4s %7s %9s %8s %9s %9s %11s %9s\n",
		"intensity", "killed", "failures", "recoveries", "drained", "evicted", "lost",
		"touched", "completed", "survival", "clean", "meanWait", "Δwait(s)", "wall")
	for _, r := range results {
		fmt.Fprintf(w, "%9.3f %6d %8d %10d %7d %7d %4d %7d %9d %7.1f%% %8.1f%% %8.0fs %11.0f %9v\n",
			r.Intensity, r.Killed, r.Failures, r.Recoveries, r.Drained, r.Evicted, r.Lost,
			r.Touched, r.Completed, 100*r.Survival, 100*r.CleanSurvival,
			r.MeanWait, r.WaitPenalty, r.Wall.Round(time.Millisecond))
	}
}
