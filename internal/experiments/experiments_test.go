package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fluxion/internal/sched"
)

func TestLODSmallScale(t *testing.T) {
	// 2 racks = 36 nodes; each node hosts 4 jobs -> 144 matches per
	// config.
	results, err := RunLOD(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Matches != 144 {
			t.Errorf("%s: matches = %d, want 144", r.Config, r.Matches)
		}
		if r.Total <= 0 {
			t.Errorf("%s: zero total", r.Config)
		}
	}
	// Expected shapes: pruning helps at High LOD; coarser LODs are
	// cheaper than High without pruning.
	byName := map[string]LODResult{}
	for _, r := range results {
		byName[r.Config] = r
	}
	if byName["High Prune"].Total > byName["High"].Total {
		t.Errorf("pruning slower at High: %v > %v", byName["High Prune"].Total, byName["High"].Total)
	}
	if byName["Low"].Total > byName["High"].Total {
		t.Errorf("Low slower than High: %v > %v", byName["Low"].Total, byName["High"].Total)
	}
	var buf bytes.Buffer
	PrintLOD(&buf, results, 2)
	if !strings.Contains(buf.String(), "High Prune") {
		t.Fatalf("table: %s", buf.String())
	}
}

func TestPlannerPerfSmall(t *testing.T) {
	results, err := RunPlannerPerf([]int{100, 1000}, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.PerQuery <= 0 || r.PerQuery > time.Millisecond {
			t.Errorf("%s@%d: per-query %v out of range", r.Test, r.Spans, r.PerQuery)
		}
	}
	var buf bytes.Buffer
	PrintPlannerPerf(&buf, results)
	if !strings.Contains(buf.String(), "EarliestAt") {
		t.Fatalf("table: %s", buf.String())
	}
}

func TestPrepopulateDeterministic(t *testing.T) {
	p1, err := PrepopulatePlanner(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PrepopulatePlanner(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p1.PointCount() != p2.PointCount() || p1.SpanCount() != p2.SpanCount() {
		t.Fatal("prepopulation not deterministic")
	}
	if p1.SpanCount() != 500 {
		t.Fatalf("spans = %d", p1.SpanCount())
	}
}

func TestVarAwareSmallScale(t *testing.T) {
	cfg := VarAwareConfig{
		Racks: 4, NodesPerRack: 16, CoresPerNode: 8,
		Jobs: 30, MaxJobNodes: 16, Seed: 11,
	}
	hist, runs, err := RunVarAware(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range hist {
		total += n
	}
	if total != 64 {
		t.Fatalf("class histogram total = %d", total)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.Immediate+r.Reserved != cfg.Jobs {
			t.Errorf("%s: immediate %d + reserved %d != %d",
				r.Policy, r.Immediate, r.Reserved, cfg.Jobs)
		}
		placed := 0
		for _, n := range r.Fom {
			placed += n
		}
		if placed != cfg.Jobs {
			t.Errorf("%s: fom histogram covers %d jobs", r.Policy, placed)
		}
	}
	// The headline claim: variation-aware concentrates jobs at fom=0.
	va, hi := runs[2], runs[0]
	if va.Fom[0] < hi.Fom[0] {
		t.Errorf("variation-aware fom=0 (%d) worse than HighestID (%d)", va.Fom[0], hi.Fom[0])
	}
	var buf bytes.Buffer
	PrintClassHistogram(&buf, hist)
	PrintVarAware(&buf, runs)
	out := buf.String()
	for _, want := range []string{"Variation-aware", "fom=0", "class 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSplitAvg(t *testing.T) {
	first, rest := splitAvg([]time.Duration{10, 20, 30, 40}, 2)
	if first != 15 || rest != 35 {
		t.Fatalf("splitAvg = %v, %v", first, rest)
	}
	if f, r := splitAvg(nil, 3); f != 0 || r != 0 {
		t.Fatalf("empty splitAvg = %v, %v", f, r)
	}
	if f, r := splitAvg([]time.Duration{8}, 5); f != 8 || r != 0 {
		t.Fatalf("short splitAvg = %v, %v", f, r)
	}
}

func TestCSVEmitters(t *testing.T) {
	lod, err := RunLOD(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLODCSV(&buf, lod); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 9 { // header + 8 configs
		t.Fatalf("lod csv lines = %d\n%s", lines, buf.String())
	}
	if !strings.HasPrefix(buf.String(), "config,vertices,matches,total_ns,per_match_ns") {
		t.Fatalf("lod header: %s", buf.String())
	}

	pl, err := RunPlannerPerf([]int{100}, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WritePlannerCSV(&buf, pl); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 { // header + 3 tests
		t.Fatalf("planner csv lines = %d", lines)
	}

	cfg := VarAwareConfig{Racks: 2, NodesPerRack: 4, CoresPerNode: 4, Jobs: 6, MaxJobNodes: 4, Seed: 5}
	hist, runs, err := RunVarAware(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteClassCSV(&buf, hist); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "class,nodes") {
		t.Fatalf("class header: %s", buf.String())
	}
	buf.Reset()
	if err := WriteVarAwareCSV(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 { // header + 3 policies
		t.Fatalf("varaware csv lines = %d\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), "Variation-aware") {
		t.Fatalf("varaware csv: %s", buf.String())
	}
	buf.Reset()
	if err := WritePerJobCSV(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+3*cfg.Jobs {
		t.Fatalf("perjob csv lines = %d", lines)
	}
}

func TestRecoverySmallScale(t *testing.T) {
	cfg := RecoveryConfig{Nodes: 4, Cores: 4, Jobs: 48, Duration: 50, Points: 4}
	results, err := RunRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != cfg.Points {
		t.Fatalf("rows = %d", len(results))
	}
	for i, r := range results {
		if r.Records <= 0 || r.LogBytes <= 0 || r.SnapshotBytes <= 0 {
			t.Fatalf("point %d empty: %+v", i, r)
		}
		if r.ReplayWall <= 0 || r.SnapWall <= 0 {
			t.Fatalf("point %d unmeasured: %+v", i, r)
		}
		// Cuts inside one large command collapse onto the same commit
		// boundary, so require non-decreasing, not strictly increasing.
		if i > 0 && r.Records < results[i-1].Records {
			t.Fatalf("log lengths decreased: %d then %d", results[i-1].Records, r.Records)
		}
	}
	// The headline property — replay cost scales with the log while
	// snapshot recovery stays flat — is timing-noise-prone at this
	// scale, so assert only the sweep's shape: the final point replays
	// several times the records of the first.
	first, last := results[0], results[len(results)-1]
	if last.Records < 4*first.Records {
		t.Fatalf("sweep too shallow: %d to %d records", first.Records, last.Records)
	}

	var buf bytes.Buffer
	PrintRecovery(&buf, results, cfg)
	if !strings.Contains(buf.String(), "with_snapshot") {
		t.Fatalf("table: %s", buf.String())
	}
	buf.Reset()
	if err := WriteRecoveryCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+cfg.Points {
		t.Fatalf("recovery csv lines = %d\n%s", lines, buf.String())
	}
	if !strings.HasPrefix(buf.String(), "records,log_bytes,replay_ns,snapshot_ns,snapshot_bytes") {
		t.Fatalf("recovery header: %s", buf.String())
	}
}

func TestChaosSmallScale(t *testing.T) {
	cfg := DefaultChaos()
	cfg.Jobs = 40
	cfg.Intensities = []float64{0, 0.3}
	results, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfg.Intensities) {
		t.Fatalf("rows = %d", len(results))
	}
	calm, hostile := results[0], results[1]
	if calm.Clean != cfg.Jobs || calm.Quarantined != 0 || calm.InvalidRejects != 0 {
		t.Fatalf("intensity 0 not calm: %+v", calm)
	}
	// The headline contract: every clean job survives at every intensity.
	for _, r := range results {
		if r.SurvivalRate != 1.0 {
			t.Errorf("intensity %.2f: survival %.3f (%d of %d clean)",
				r.Intensity, r.SurvivalRate, r.Survived, r.Clean)
		}
		if r.Cycles <= 0 {
			t.Errorf("intensity %.2f: no cycles recorded", r.Intensity)
		}
	}
	// At 0.3 the plan must actually have poisoned something, and the
	// defenses must have absorbed it one way or the other.
	if hostile.Clean >= cfg.Jobs {
		t.Fatalf("intensity 0.3 poisoned nothing")
	}
	if hostile.Quarantined+hostile.InvalidRejects == 0 {
		t.Fatalf("intensity 0.3 absorbed no offenders: %+v", hostile)
	}

	var buf bytes.Buffer
	PrintChaos(&buf, results, cfg)
	if !strings.Contains(buf.String(), "quarantined") {
		t.Fatalf("table: %s", buf.String())
	}
	buf.Reset()
	if err := WriteChaosCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+len(results) {
		t.Fatalf("chaos csv lines = %d\n%s", lines, buf.String())
	}
	if !strings.HasPrefix(buf.String(), "intensity,clean,survived,survival_rate") {
		t.Fatalf("chaos header: %s", buf.String())
	}
}

func TestIncrementSmallScale(t *testing.T) {
	cfg := IncrementConfig{Nodes: 4, Cores: 4, Jobs: 64, Duration: 50}
	results, err := RunIncrement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 { // 3 policies × 2 engines
		t.Fatalf("rows = %d", len(results))
	}
	var consFull, consInc *IncrementResult
	for i := range results {
		r := &results[i]
		if r.Completed != cfg.Jobs {
			t.Fatalf("%s/%s completed %d of %d", r.Policy, r.Engine, r.Completed, cfg.Jobs)
		}
		if !r.Parity {
			t.Fatalf("%s/%s lost decision parity", r.Policy, r.Engine)
		}
		if r.Policy == sched.Conservative {
			if r.Engine == "full" {
				consFull = r
			} else {
				consInc = r
			}
		}
	}
	if consFull == nil || consInc == nil {
		t.Fatal("missing conservative rows")
	}
	// The headline property at small scale: the incremental engine does a
	// fraction of the full engine's matching on a conservative deep queue.
	if consInc.MatchAttempts*2 >= consFull.MatchAttempts {
		t.Fatalf("conservative attempts: full=%d incremental=%d",
			consFull.MatchAttempts, consInc.MatchAttempts)
	}

	var buf bytes.Buffer
	if err := WriteIncrementCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 7 { // header + 6 rows
		t.Fatalf("increment csv lines = %d\n%s", lines, buf.String())
	}
	if !strings.HasPrefix(buf.String(), "policy,engine,completed,cycles,match_attempts") {
		t.Fatalf("increment header: %s", buf.String())
	}
}

func TestEpochScaleSmallScale(t *testing.T) {
	results, err := RunEpochScale(2, []int{1, 2}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Matches != 128 || r.Total <= 0 || r.Throughput <= 0 {
			t.Errorf("w%d: bad row %+v", r.Workers, r)
		}
	}
	if results[0].Speedup != 1 {
		t.Errorf("first row speedup = %v", results[0].Speedup)
	}
	var buf bytes.Buffer
	PrintEpochScale(&buf, results, 2)
	if !strings.Contains(buf.String(), "pinned epoch") {
		t.Fatalf("table: %s", buf.String())
	}
	buf.Reset()
	if err := WriteEpochScaleCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "workers,matches,total_ns,per_match_ns,match_per_sec,speedup") {
		t.Fatalf("epochscale header: %s", buf.String())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 { // header + 2 rows
		t.Fatalf("epochscale csv lines = %d", lines)
	}
}

func TestMemScaleSmallScale(t *testing.T) {
	results, err := RunMemScale([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Vertices <= 0 || r.Build <= 0 {
			t.Errorf("racks=%d: bad row %+v", r.Racks, r)
		}
		// Heap growth per vertex should be positive and nowhere near the
		// pre-slab 2538 B/vertex footprint even at toy scale.
		if r.BytesPerVertex <= 0 || r.BytesPerVertex > 2538 {
			t.Errorf("racks=%d: bytes/vertex = %v", r.Racks, r.BytesPerVertex)
		}
	}
	if results[1].Vertices <= results[0].Vertices {
		t.Errorf("vertex counts did not grow: %d then %d",
			results[0].Vertices, results[1].Vertices)
	}
	var buf bytes.Buffer
	PrintMemScale(&buf, results)
	if !strings.Contains(buf.String(), "B/vertex") {
		t.Fatalf("table: %s", buf.String())
	}
	buf.Reset()
	if err := WriteMemScaleCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "racks,vertices,build_ns,heap_bytes,bytes_per_vertex,rss_bytes,rss_bytes_per_vertex") {
		t.Fatalf("memscale header: %s", buf.String())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 { // header + 2 rows
		t.Fatalf("memscale csv lines = %d", lines)
	}
}

func TestShardScaleSmallScale(t *testing.T) {
	cfg := ShardScaleConfig{Racks: 2, Jobs: 24, MaxNodes: 4, Seed: 7, Shards: []int{1, 2}}
	results, err := RunShardScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 { // {FCFS, EASY} x {1, 2}
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Completed != cfg.Jobs {
			t.Errorf("%s/s%d: completed = %d", r.Policy, r.Shards, r.Completed)
		}
		if r.Unroutable != 0 {
			t.Errorf("%s/s%d: unroutable = %d", r.Policy, r.Shards, r.Unroutable)
		}
		if r.JobsPerSec <= 0 || r.Util <= 0 || r.Util > 1 {
			t.Errorf("%s/s%d: bad row %+v", r.Policy, r.Shards, r)
		}
	}
	for _, i := range []int{0, 2} { // per-policy 1-shard baselines
		if results[i].Shards != 1 || results[i].Speedup != 1 ||
			results[i].UtilDelta != 0 || results[i].WaitDelta != 0 {
			t.Errorf("baseline row %d: %+v", i, results[i])
		}
	}
	var buf bytes.Buffer
	PrintShardScale(&buf, results, cfg)
	if !strings.Contains(buf.String(), "Δutil(pp)") {
		t.Fatalf("table: %s", buf.String())
	}
	buf.Reset()
	if err := WriteShardScaleCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "policy,shards,completed,rerouted,steals,unroutable,wall_ns,jobs_per_sec,speedup,util,util_delta_pp,mean_wait_s,wait_delta_s") {
		t.Fatalf("shardscale header: %s", buf.String())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 { // header + 4 rows
		t.Fatalf("shardscale csv lines = %d", lines)
	}
}

func TestShardChaosSmallScale(t *testing.T) {
	cfg := ShardChaosConfig{
		Racks: 4, Jobs: 150, MaxNodes: 16, Seed: 2023, ChaosSeed: 1,
		Shards: 4, Intensities: []float64{0, 0.25},
	}
	results, err := RunShardChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	control, hit := results[0], results[1]
	if control.Killed != 0 || control.Touched != 0 || control.WaitPenalty != 0 ||
		control.Completed != cfg.Jobs || control.Survival != 1 || control.CleanSurvival != 1 {
		t.Fatalf("control row: %+v", control)
	}
	if hit.Killed < 1 || hit.Failures < 1 {
		t.Fatalf("no shard failed at 0.25: %+v", hit)
	}
	if hit.Recoveries < 1 {
		t.Fatalf("bounded fault window must reabsorb: %+v", hit)
	}
	if hit.Drained+hit.Evicted == 0 || hit.Touched == 0 {
		t.Fatalf("failover moved no jobs: %+v", hit)
	}
	if hit.CleanSurvival != 1 {
		t.Fatalf("clean jobs must all complete: %+v", hit)
	}
	if int64(hit.Completed)+hit.Lost != int64(cfg.Jobs) {
		t.Fatalf("jobs unaccounted for: completed=%d lost=%d", hit.Completed, hit.Lost)
	}

	// The sweep must lead with its control: the window bound and the
	// wait-penalty baseline come from it.
	if _, err := RunShardChaos(ShardChaosConfig{
		Racks: 2, Jobs: 8, MaxNodes: 4, Shards: 2, Intensities: []float64{0.25},
	}); err == nil {
		t.Fatal("control-less sweep accepted")
	}

	var buf bytes.Buffer
	PrintShardChaos(&buf, results, cfg)
	if !strings.Contains(buf.String(), "Δwait(s)") {
		t.Fatalf("table: %s", buf.String())
	}
	buf.Reset()
	if err := WriteShardChaosCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "intensity,killed,failures,recoveries,drained,evicted,lost,touched,completed,survival,clean_survival,mean_wait_s,wait_penalty_s,wall_ns") {
		t.Fatalf("shardchaos header: %s", buf.String())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 { // header + 2 rows
		t.Fatalf("shardchaos csv lines = %d", lines)
	}
}
