package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EpochScaleResult is one row of the E10 epoch-snapshot scaling sweep: the
// aggregate rate at which W workers match read-only against a single
// pinned MVCC epoch. Unlike the parmatch pipeline (which commits and so
// serializes on the writer lock), this path takes no graph lock and
// touches no shared counters, so throughput should scale near-linearly
// with cores.
type EpochScaleResult struct {
	Workers    int
	Matches    int           // total speculate+abandon cycles across workers
	Total      time.Duration // wall time for the whole sweep row
	PerMatch   time.Duration // wall time per match (aggregate)
	Throughput float64       // matches per second, aggregate
	Speedup    float64       // throughput relative to the 1-worker row
}

// RunEpochScale sweeps worker counts over lock-free epoch matching: the
// half-loaded Fig. 6a system is pinned once, then each worker repeatedly
// speculates a compiled match against that immutable snapshot and abandons
// it. Every worker sees the same graph state for the whole row, so the
// sweep isolates read-path scalability from writer contention.
func RunEpochScale(racks int64, workers []int, ops int) ([]EpochScaleResult, error) {
	tr, nextID, err := halfLoadLOD(racks)
	if err != nil {
		return nil, err
	}
	cjs, err := tr.Compile(LODJobspec())
	if err != nil {
		return nil, err
	}
	ep := tr.PinEpoch()
	if ep == nil {
		return nil, fmt.Errorf("epochscale: traverser has no MVCC epoch")
	}
	var out []EpochScaleResult
	for _, w := range workers {
		if w < 1 {
			return nil, fmt.Errorf("epochscale: worker count %d", w)
		}
		var ids atomic.Int64
		ids.Store(nextID)
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < w; i++ {
			n := ops / w
			if i == 0 {
				n += ops % w
			}
			wg.Add(1)
			go func(worker, n int) {
				defer wg.Done()
				for j := 0; j < n; j++ {
					alloc, err := tr.MatchSpeculateCompiledEpoch(ids.Add(1), cjs, 0, ep)
					if err != nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("worker %d: %w", worker, err))
						return
					}
					tr.Abandon(alloc)
				}
			}(i, n)
		}
		wg.Wait()
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return nil, fmt.Errorf("epochscale %d workers: %w", w, err)
		}
		total := time.Since(start)
		r := EpochScaleResult{Workers: w, Matches: ops, Total: total}
		if ops > 0 && total > 0 {
			r.PerMatch = total / time.Duration(ops)
			r.Throughput = float64(ops) / total.Seconds()
		}
		if len(out) > 0 && out[0].Throughput > 0 {
			r.Speedup = r.Throughput / out[0].Throughput
		} else {
			r.Speedup = 1
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintEpochScale renders the worker sweep as a table.
func PrintEpochScale(w io.Writer, results []EpochScaleResult, racks int64) {
	fmt.Fprintf(w, "Epoch-snapshot scaling — %d-node system at half load, lock-free speculation against one pinned epoch\n", racks*18)
	fmt.Fprintf(w, "%-8s %9s %12s %14s %8s\n", "workers", "matches", "match/s", "per-match", "speedup")
	for _, r := range results {
		fmt.Fprintf(w, "%-8d %9d %12.0f %14v %7.2fx\n",
			r.Workers, r.Matches, r.Throughput, r.PerMatch.Round(time.Microsecond), r.Speedup)
	}
}
