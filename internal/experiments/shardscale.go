package experiments

import (
	"fmt"
	"io"
	"time"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
	"fluxion/internal/sched"
	"fluxion/internal/shard"
	"fluxion/internal/trace"
)

// ShardScaleConfig parameterizes the E12 sharded-scheduling study: the
// same queue snapshot drained through the partitioned scheduler at each
// shard count, measuring decision throughput against the decision-quality
// cost of partitioned placement.
type ShardScaleConfig struct {
	Racks    int64 // high-LOD racks (18 nodes each; also the max shard count)
	Jobs     int   // queue-snapshot depth at t=0
	MaxNodes int64 // largest job in nodes (kept within one shard's rack)
	Seed     int64 // workload seed
	Shards   []int // shard counts to sweep
}

// DefaultShardScale is the standard configuration: 8 racks (144 nodes,
// 11,385 vertices at high LOD) under a 600-job snapshot whose largest
// jobs take 16 of a rack's 18 nodes — routable everywhere, but tight
// enough that cross-shard fragmentation shows up in the wait times.
func DefaultShardScale() ShardScaleConfig {
	return ShardScaleConfig{Racks: 8, Jobs: 600, MaxNodes: 16, Seed: 2023, Shards: []int{1, 2, 4, 8}}
}

// ShardScaleResult is one policy × shard-count row. Deltas compare
// against the same policy's 1-shard row, which is decision-identical to
// a flat scheduler over the same graph (property-tested in
// internal/shard), so it doubles as the flat baseline.
type ShardScaleResult struct {
	Policy     sched.QueuePolicy
	Shards     int
	Completed  int
	Rerouted   int64 // submit-time overflows to the next-best shard
	Steals     int64 // jobs the rebalancer moved between shards
	Unroutable int64 // jobs no shard could fit (0 when MaxNodes fits a shard)
	Wall       time.Duration
	JobsPerSec float64 // decision throughput draining the snapshot
	Speedup    float64 // throughput relative to the 1-shard row
	Util       float64 // node-seconds utilization over the makespan
	MeanWait   float64 // mean queue wait in simulated seconds
	UtilDelta  float64 // Util - 1-shard Util, percentage points (quality loss < 0)
	WaitDelta  float64 // MeanWait - 1-shard MeanWait, seconds (quality loss > 0)
}

// RunShardScale drains the cfg.Seed queue snapshot through the sharded
// scheduler at every shard count for FCFS and EASY, reporting throughput
// scaling and the quality delta versus the 1-shard (= flat) baseline.
func RunShardScale(cfg ShardScaleConfig) ([]ShardScaleResult, error) {
	jobs := trace.Synthesize(cfg.Jobs, cfg.MaxNodes, 10, cfg.Seed)
	var out []ShardScaleResult
	for _, policy := range []sched.QueuePolicy{sched.FCFS, sched.EASY} {
		var base *ShardScaleResult
		for _, n := range cfg.Shards {
			g, err := grug.BuildGraph(grug.HighLODRacks(cfg.Racks), 0, 1<<40,
				resgraph.PruneSpec{resgraph.ALL: {"core", "node"}})
			if err != nil {
				return nil, err
			}
			sh, err := shard.New(shard.Config{Graph: g, Shards: n, Queue: policy})
			if err != nil {
				return nil, fmt.Errorf("shardscale %s/%d shards: %w", policy, n, err)
			}
			start := time.Now()
			for _, j := range jobs {
				if _, err := sh.Submit(j.ID, j.Jobspec()); err != nil {
					return nil, fmt.Errorf("shardscale %s/%d shards: job %d: %w", policy, n, j.ID, err)
				}
			}
			completed := sh.Run(0)
			wall := time.Since(start)

			m := sh.Metrics()
			rs := sh.RouterStats()
			r := ShardScaleResult{
				Policy:     policy,
				Shards:     n,
				Completed:  completed,
				Rerouted:   rs.Rerouted,
				Steals:     rs.Steals,
				Unroutable: rs.Unroutable,
				Wall:       wall,
				Util:       m.Utilization(),
				MeanWait:   m.MeanWait,
			}
			if wall > 0 {
				r.JobsPerSec = float64(completed) / wall.Seconds()
			}
			if base == nil {
				r.Speedup = 1
				base = &r
			} else if base.JobsPerSec > 0 {
				r.Speedup = r.JobsPerSec / base.JobsPerSec
			}
			r.UtilDelta = 100 * (r.Util - base.Util)
			r.WaitDelta = r.MeanWait - base.MeanWait
			out = append(out, r)
		}
	}
	return out, nil
}

// PrintShardScale renders the sweep as a table, one block per policy.
func PrintShardScale(w io.Writer, results []ShardScaleResult, cfg ShardScaleConfig) {
	fmt.Fprintf(w, "Sharded scheduling — %d-node high-LOD system, %d-job queue snapshot; deltas vs the 1-shard (= flat) row per policy\n",
		cfg.Racks*18, cfg.Jobs)
	fmt.Fprintf(w, "%-14s %6s %9s %8s %6s %11s %8s %8s %7s %10s %10s %10s\n",
		"policy", "shards", "completed", "rerouted", "steals", "wall", "jobs/s", "speedup", "util", "Δutil(pp)", "meanWait", "Δwait(s)")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %6d %9d %8d %6d %11v %8.1f %7.2fx %6.1f%% %10.2f %9.0fs %10.0f\n",
			r.Policy, r.Shards, r.Completed, r.Rerouted, r.Steals,
			r.Wall.Round(time.Millisecond), r.JobsPerSec, r.Speedup,
			100*r.Util, r.UtilDelta, r.MeanWait, r.WaitDelta)
	}
}
