package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"fluxion/internal/workload"
)

// CSV emitters: machine-readable forms of every figure/table, for plotting
// the reproduction next to the paper's originals.

// WriteLODCSV renders Figure 6a rows.
func WriteLODCSV(w io.Writer, results []LODResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "vertices", "matches", "total_ns", "per_match_ns"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Config,
			strconv.Itoa(r.Vertices),
			strconv.Itoa(r.Matches),
			strconv.FormatInt(r.Total.Nanoseconds(), 10),
			strconv.FormatInt(r.PerMatch.Nanoseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteParMatchCSV renders the parallel-match worker sweep.
func WriteParMatchCSV(w io.Writer, results []ParMatchResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workers", "ops", "conflicts", "total_ns", "per_match_ns", "match_per_sec", "speedup"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.Workers),
			strconv.Itoa(r.Ops),
			strconv.Itoa(r.Conflicts),
			strconv.FormatInt(r.Total.Nanoseconds(), 10),
			strconv.FormatInt(r.PerMatch.Nanoseconds(), 10),
			strconv.FormatFloat(r.Throughput, 'f', 1, 64),
			strconv.FormatFloat(r.Speedup, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEpochScaleCSV renders the E10 epoch-snapshot scaling sweep.
func WriteEpochScaleCSV(w io.Writer, results []EpochScaleResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workers", "matches", "total_ns", "per_match_ns", "match_per_sec", "speedup"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.Workers),
			strconv.Itoa(r.Matches),
			strconv.FormatInt(r.Total.Nanoseconds(), 10),
			strconv.FormatInt(r.PerMatch.Nanoseconds(), 10),
			strconv.FormatFloat(r.Throughput, 'f', 1, 64),
			strconv.FormatFloat(r.Speedup, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteShardScaleCSV renders the E12 shard-count sweep: throughput plus
// the decision-quality deltas against each policy's 1-shard baseline.
func WriteShardScaleCSV(w io.Writer, results []ShardScaleResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"policy", "shards", "completed", "rerouted", "steals", "unroutable",
		"wall_ns", "jobs_per_sec", "speedup", "util", "util_delta_pp", "mean_wait_s", "wait_delta_s"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			string(r.Policy),
			strconv.Itoa(r.Shards),
			strconv.Itoa(r.Completed),
			strconv.FormatInt(r.Rerouted, 10),
			strconv.FormatInt(r.Steals, 10),
			strconv.FormatInt(r.Unroutable, 10),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10),
			strconv.FormatFloat(r.JobsPerSec, 'f', 1, 64),
			strconv.FormatFloat(r.Speedup, 'f', 3, 64),
			strconv.FormatFloat(r.Util, 'f', 4, 64),
			strconv.FormatFloat(r.UtilDelta, 'f', 2, 64),
			strconv.FormatFloat(r.MeanWait, 'f', 1, 64),
			strconv.FormatFloat(r.WaitDelta, 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteShardChaosCSV renders the E13 shard-kill intensity sweep:
// failover work plus the survival and wait cost versus the 0-intensity
// control row.
func WriteShardChaosCSV(w io.Writer, results []ShardChaosResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"intensity", "killed", "failures", "recoveries", "drained", "evicted",
		"lost", "touched", "completed", "survival", "clean_survival", "mean_wait_s", "wait_penalty_s", "wall_ns"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.FormatFloat(r.Intensity, 'f', 3, 64),
			strconv.Itoa(r.Killed),
			strconv.FormatInt(r.Failures, 10),
			strconv.FormatInt(r.Recoveries, 10),
			strconv.FormatInt(r.Drained, 10),
			strconv.FormatInt(r.Evicted, 10),
			strconv.FormatInt(r.Lost, 10),
			strconv.Itoa(r.Touched),
			strconv.Itoa(r.Completed),
			strconv.FormatFloat(r.Survival, 'f', 4, 64),
			strconv.FormatFloat(r.CleanSurvival, 'f', 4, 64),
			strconv.FormatFloat(r.MeanWait, 'f', 1, 64),
			strconv.FormatFloat(r.WaitPenalty, 'f', 1, 64),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMemScaleCSV renders the E11 resting-memory sweep.
func WriteMemScaleCSV(w io.Writer, results []MemScaleResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"racks", "vertices", "build_ns", "heap_bytes", "bytes_per_vertex", "rss_bytes", "rss_bytes_per_vertex"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.FormatInt(r.Racks, 10),
			strconv.Itoa(r.Vertices),
			strconv.FormatInt(r.Build.Nanoseconds(), 10),
			strconv.FormatUint(r.HeapBytes, 10),
			strconv.FormatFloat(r.BytesPerVertex, 'f', 1, 64),
			strconv.FormatUint(r.RSSBytes, 10),
			strconv.FormatFloat(r.RSSPerVertex, 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePlannerCSV renders Figure 6b series points.
func WritePlannerCSV(w io.Writer, results []PlannerResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"test", "spans", "points", "queries", "per_query_ns"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Test,
			strconv.Itoa(r.Spans),
			strconv.Itoa(r.PointCount),
			strconv.Itoa(r.Queries),
			strconv.FormatInt(r.PerQuery.Nanoseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteClassCSV renders the Figure 7a histogram.
func WriteClassCSV(w io.Writer, hist map[int]int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"class", "nodes"}); err != nil {
		return err
	}
	classes := make([]int, 0, len(hist))
	for c := range hist {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		if err := cw.Write([]string{strconv.Itoa(c), strconv.Itoa(hist[c])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteVarAwareCSV renders the per-policy summary (Fig. 7b + Table 1): one
// row per policy with totals and the fom histogram columns.
func WriteVarAwareCSV(w io.Writer, runs []PolicyRun) error {
	cw := csv.NewWriter(w)
	header := []string{"policy", "immediate", "reserved", "total_match_ns"}
	for f := 0; f < workload.NumClasses; f++ {
		header = append(header, fmt.Sprintf("fom%d", f))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range runs {
		rec := []string{
			policyLabel(r.Policy),
			strconv.Itoa(r.Immediate),
			strconv.Itoa(r.Reserved),
			strconv.FormatInt(r.Total.Nanoseconds(), 10),
		}
		for _, n := range r.Fom {
			rec = append(rec, strconv.Itoa(n))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePerJobCSV renders Figure 7b's per-job series: one row per job per
// policy with its matcher time.
func WritePerJobCSV(w io.Writer, runs []PolicyRun) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"policy", "job", "match_ns"}); err != nil {
		return err
	}
	for _, r := range runs {
		for i, d := range r.PerJob {
			rec := []string{
				policyLabel(r.Policy),
				strconv.Itoa(i + 1),
				strconv.FormatInt(d.Nanoseconds(), 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRecoveryCSV renders the E8 recovery-time-vs-log-length sweep.
func WriteRecoveryCSV(w io.Writer, results []RecoveryResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"records", "log_bytes", "replay_ns", "snapshot_ns", "snapshot_bytes"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.Records),
			strconv.FormatInt(r.LogBytes, 10),
			strconv.FormatInt(r.ReplayWall.Nanoseconds(), 10),
			strconv.FormatInt(r.SnapWall.Nanoseconds(), 10),
			strconv.FormatInt(r.SnapshotBytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteChaosCSV renders the E9 fault-intensity sweep.
func WriteChaosCSV(w io.Writer, results []ChaosResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"intensity", "clean", "survived", "survival_rate",
		"quarantined", "invalid_rejects", "overload_rejects",
		"cycles", "degraded_cycles", "degraded_frac", "wall_ns"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.FormatFloat(r.Intensity, 'f', 2, 64),
			strconv.Itoa(r.Clean),
			strconv.Itoa(r.Survived),
			strconv.FormatFloat(r.SurvivalRate, 'f', 4, 64),
			strconv.FormatInt(r.Quarantined, 10),
			strconv.FormatInt(r.InvalidRejects, 10),
			strconv.FormatInt(r.OverloadRejects, 10),
			strconv.FormatInt(r.Cycles, 10),
			strconv.FormatInt(r.DegradedCycles, 10),
			strconv.FormatFloat(r.DegradedFrac, 'f', 4, 64),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteIncrementCSV renders the E7 engine-comparison rows.
func WriteIncrementCSV(w io.Writer, results []IncrementResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"policy", "engine", "completed", "cycles", "match_attempts",
		"attempts_per_cycle", "skipped_jobs", "wall_ns", "reduction", "parity"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			string(r.Policy),
			r.Engine,
			strconv.Itoa(r.Completed),
			strconv.FormatInt(r.Cycles, 10),
			strconv.FormatInt(r.MatchAttempts, 10),
			strconv.FormatFloat(r.AttemptsPerCycle, 'f', 2, 64),
			strconv.FormatInt(r.SkippedJobs, 10),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10),
			strconv.FormatFloat(r.Reduction, 'f', 2, 64),
			strconv.FormatBool(r.Parity),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
