package rqcli

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"fluxion"
	"fluxion/internal/grug"
)

const testJobspec = `
version: 1
resources:
  - type: node
    count: 1
    with:
      - type: slot
        count: 1
        with:
          - {type: core, count: 4}
attributes:
  system:
    duration: 100
`

func newSession(t *testing.T) *Session {
	t.Helper()
	f, err := fluxion.New(
		fluxion.WithRecipe(grug.Small(1, 2, 4, 0, 0)),
		fluxion.WithPruneFilters("ALL:core,ALL:node"),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(f)
	files := map[string][]byte{"job.yaml": []byte(testJobspec)}
	s.ReadFile = func(path string) ([]byte, error) {
		if data, ok := files[path]; ok {
			return data, nil
		}
		return nil, fmt.Errorf("no such file %q", path)
	}
	return s
}

// run executes the command script and returns the combined output.
func run(t *testing.T, s *Session, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := s.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestMatchAllocateFlow(t *testing.T) {
	s := newSession(t)
	out := run(t, s, `
match satisfy job.yaml
match allocate job.yaml
match allocate job.yaml
match allocate job.yaml
info 1
jobs
cancel 1
stat
quit
`)
	for _, want := range []string{
		"satisfiable: true",
		"ALLOCATED jobid=1",
		"ALLOCATED jobid=2",
		"error:", // 3rd allocate fails: both nodes full
		"jobid=1 allocated at=0 duration=100",
		"canceled jobid=1",
		"vertices",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReserveAndTime(t *testing.T) {
	s := newSession(t)
	out := run(t, s, `
match allocate job.yaml
match allocate job.yaml
match allocate_orelse_reserve job.yaml
time 100
time
`)
	if !strings.Contains(out, "RESERVED jobid=3 at=100") {
		t.Fatalf("reserve missing:\n%s", out)
	}
	if !strings.Contains(out, "t = 100") {
		t.Fatalf("time missing:\n%s", out)
	}
}

func TestRV1Command(t *testing.T) {
	s := newSession(t)
	out := run(t, s, "match allocate job.yaml\nrv1 1\nrv1 99\n")
	if !strings.Contains(out, `"R_lite"`) || !strings.Contains(out, `"nodelist": "node0"`) {
		t.Fatalf("rv1 output:\n%s", out)
	}
	if !strings.Contains(out, "no such job 99") {
		t.Fatalf("missing-job handling:\n%s", out)
	}
}

func TestFindAndStatus(t *testing.T) {
	s := newSession(t)
	out := run(t, s, `
set-status /cluster0/rack0/node1 down
find node down
find node up
set-status /nope down
`)
	if !strings.Contains(out, "node1 is now down") {
		t.Fatalf("set-status:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	downIdx, upIdx := -1, -1
	for i, l := range lines {
		if l == "/cluster0/rack0/node1" && downIdx < 0 {
			downIdx = i
		}
		if l == "/cluster0/rack0/node0" {
			upIdx = i
		}
	}
	if downIdx < 0 || upIdx < 0 || upIdx < downIdx {
		t.Fatalf("find output wrong:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("bad path not reported:\n%s", out)
	}
}

func TestReleaseCommand(t *testing.T) {
	s := newSession(t)
	out := run(t, s, "match allocate job.yaml\nrelease 1 /cluster0/rack0/node0/core0\ninfo 1\n")
	if !strings.Contains(out, "released 1 vertices from jobid=1") {
		t.Fatalf("release:\n%s", out)
	}
	if strings.Contains(strings.SplitN(out, "released", 2)[1], "core0[1]") {
		t.Fatalf("core0 still granted:\n%s", out)
	}
}

func TestDump(t *testing.T) {
	s := newSession(t)
	var wrote []byte
	s.WriteFile = func(path string, data []byte) error {
		wrote = data
		return nil
	}
	out := run(t, s, "dump store.json\n")
	if !strings.Contains(out, "wrote") || !bytes.Contains(wrote, []byte(`"graph"`)) {
		t.Fatalf("dump failed:\n%s", out)
	}
}

func TestUsageAndUnknown(t *testing.T) {
	s := newSession(t)
	out := run(t, s, `
bogus
match
match frobnicate job.yaml
match allocate missing.yaml
cancel
cancel notanumber
info
release 1
set-status x sideways
dump
find
help

# a comment
`)
	for _, want := range []string{
		"unknown command", "usage: match", "unknown match subcommand",
		"error:", "usage: cancel", "usage: info", "usage: release",
		"usage: set-status", "usage: dump", "usage: find", "commands:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestPrompt(t *testing.T) {
	s := newSession(t)
	s.Prompt = "> "
	var out bytes.Buffer
	if err := s.Run(strings.NewReader("stat\nquit\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "> ") {
		t.Fatalf("prompt missing: %q", out.String())
	}
}

func TestFindExpression(t *testing.T) {
	s := newSession(t)
	s.F.Graph().ByType("node")[0].SetProperty("perfclass", "3")
	out := run(t, s, "find type=node and perfclass=3\nfind type=node and\n")
	if !strings.Contains(out, "/cluster0/rack0/node0") {
		t.Fatalf("expression find:\n%s", out)
	}
	if strings.Contains(out, "node1") {
		t.Fatalf("over-matched:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("bad expression not reported:\n%s", out)
	}
}

func TestGrowShrinkCommands(t *testing.T) {
	s := newSession(t)
	recipe := []byte("root:\n  type: node\n  with:\n    - {type: core, count: 4}\n")
	s.ReadFile = func(path string) ([]byte, error) {
		if path == "node.yaml" {
			return recipe, nil
		}
		return []byte(testJobspec), nil
	}
	out := run(t, s, `
grow /cluster0/rack0 node.yaml
find type=node
shrink /cluster0/rack0/node2
grow /nope node.yaml
shrink /nope
grow
shrink
`)
	if !strings.Contains(out, "grew /cluster0/rack0/node2") {
		t.Fatalf("grow:\n%s", out)
	}
	if !strings.Contains(out, "shrank /cluster0/rack0/node2") {
		t.Fatalf("shrink:\n%s", out)
	}
	if !strings.Contains(out, "usage: grow") || !strings.Contains(out, "usage: shrink") {
		t.Fatalf("usage:\n%s", out)
	}
	if strings.Count(out, "error:") < 2 {
		t.Fatalf("bad paths not reported:\n%s", out)
	}
}
