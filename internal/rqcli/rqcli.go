// Package rqcli implements the resource-query command interpreter: the
// interactive loop of the paper's evaluation utility (§6.1), factored out
// of cmd/resource-query so it can be driven by tests and embedded in other
// tools.
package rqcli

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fluxion"
	"fluxion/internal/grug"
	"fluxion/internal/rv1"
)

// Session interprets resource-query commands against one Fluxion instance.
type Session struct {
	F *fluxion.Fluxion
	// Prompt is printed before each command when non-empty.
	Prompt string
	// ReadFile loads jobspec files; defaults to os.ReadFile.
	ReadFile func(string) ([]byte, error)
	// WriteFile stores dumps; defaults to os.WriteFile.
	WriteFile func(string, []byte) error

	now     int64
	nextJob int64
}

// NewSession returns a session starting at job ID 1 and t = 0.
func NewSession(f *fluxion.Fluxion) *Session {
	return &Session{
		F:         f,
		ReadFile:  os.ReadFile,
		WriteFile: func(path string, data []byte) error { return os.WriteFile(path, data, 0o644) },
		nextJob:   1,
	}
}

// Run reads commands from in until EOF or "quit", writing results to out.
func (s *Session) Run(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for {
		if s.Prompt != "" {
			fmt.Fprint(out, s.Prompt)
		}
		if !sc.Scan() {
			return sc.Err()
		}
		if quit := s.Exec(sc.Text(), out); quit {
			return nil
		}
	}
}

// Exec interprets one command line, returning true on quit.
func (s *Session) Exec(line string, out io.Writer) bool {
	args := strings.Fields(line)
	if len(args) == 0 || strings.HasPrefix(args[0], "#") {
		return false
	}
	switch args[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Fprintln(out, "commands: match allocate|allocate_orelse_reserve|satisfy <jobspec.yaml>,")
		fmt.Fprintln(out, "  cancel <id>, release <id> <path>..., info <id>, rv1 <id>, jobs,")
		fmt.Fprintln(out, "  find <type|expr>, set-status <path> up|down, time [<t>],")
		fmt.Fprintln(out, "  grow <parent> <recipe.yaml>, shrink <path>, stat, dump <out.json>, quit")
	case "stat":
		fmt.Fprintln(out, s.F.Stat())
	case "jobs":
		for _, id := range s.F.Jobs() {
			alloc, _ := s.F.Info(id)
			state := "allocated"
			if alloc.Reserved {
				state = "reserved"
			}
			fmt.Fprintf(out, "job %d: %s at=%d duration=%d\n", id, state, alloc.At, alloc.Duration)
		}
	case "time":
		if len(args) == 2 {
			t, err := strconv.ParseInt(args[1], 10, 64)
			if s.report(out, err) {
				return false
			}
			s.now = t
		}
		fmt.Fprintf(out, "t = %d\n", s.now)
	case "match":
		s.cmdMatch(args, out)
	case "cancel":
		if len(args) != 2 {
			fmt.Fprintln(out, "usage: cancel <jobid>")
			return false
		}
		id, err := strconv.ParseInt(args[1], 10, 64)
		if s.report(out, err) {
			return false
		}
		if s.report(out, s.F.Cancel(id)) {
			return false
		}
		fmt.Fprintf(out, "canceled jobid=%d\n", id)
	case "release":
		if len(args) < 3 {
			fmt.Fprintln(out, "usage: release <jobid> <path>...")
			return false
		}
		id, err := strconv.ParseInt(args[1], 10, 64)
		if s.report(out, err) {
			return false
		}
		if s.report(out, s.F.Release(id, args[2:])) {
			return false
		}
		fmt.Fprintf(out, "released %d vertices from jobid=%d\n", len(args[2:]), id)
	case "info":
		if len(args) != 2 {
			fmt.Fprintln(out, "usage: info <jobid>")
			return false
		}
		id, err := strconv.ParseInt(args[1], 10, 64)
		if s.report(out, err) {
			return false
		}
		alloc, ok := s.F.Info(id)
		if !ok {
			fmt.Fprintf(out, "no such job %d\n", id)
			return false
		}
		state := "allocated"
		if alloc.Reserved {
			state = "reserved"
		}
		fmt.Fprintf(out, "jobid=%d %s at=%d duration=%d\n%s\n", id, state, alloc.At, alloc.Duration, alloc.Describe())
	case "rv1":
		if len(args) != 2 {
			fmt.Fprintln(out, "usage: rv1 <jobid>")
			return false
		}
		id, err := strconv.ParseInt(args[1], 10, 64)
		if s.report(out, err) {
			return false
		}
		alloc, ok := s.F.Info(id)
		if !ok {
			fmt.Fprintf(out, "no such job %d\n", id)
			return false
		}
		data, err := rv1.Encode(alloc)
		if s.report(out, err) {
			return false
		}
		fmt.Fprintf(out, "%s\n", data)
	case "find":
		if len(args) < 2 {
			fmt.Fprintln(out, "usage: find <type> [up|down]  |  find <expr> (e.g. type=node and status=up)")
			return false
		}
		if strings.ContainsRune(strings.Join(args[1:], " "), '=') {
			paths, err := s.F.FindExpr(strings.Join(args[1:], " "))
			if s.report(out, err) {
				return false
			}
			for _, p := range paths {
				fmt.Fprintln(out, p)
			}
			return false
		}
		status := ""
		if len(args) > 2 {
			status = args[2]
		}
		for _, p := range s.F.Find(args[1], status) {
			fmt.Fprintln(out, p)
		}
	case "set-status":
		if len(args) != 3 || (args[2] != "up" && args[2] != "down") {
			fmt.Fprintln(out, "usage: set-status <path> up|down")
			return false
		}
		if args[2] == "up" {
			if s.report(out, s.F.MarkUp(args[1])) {
				return false
			}
		} else {
			evicted, err := s.F.MarkDown(args[1])
			if s.report(out, err) {
				return false
			}
			for _, alloc := range evicted {
				fmt.Fprintf(out, "evicted jobid=%d\n", alloc.JobID)
			}
		}
		fmt.Fprintf(out, "%s is now %s\n", args[1], args[2])
	case "grow":
		if len(args) != 3 {
			fmt.Fprintln(out, "usage: grow <parent-path> <recipe.yaml>")
			return false
		}
		data, err := s.ReadFile(args[2])
		if s.report(out, err) {
			return false
		}
		recipe, err := grug.ParseYAML(data)
		if s.report(out, err) {
			return false
		}
		v, err := s.F.Grow(args[1], recipe)
		if s.report(out, err) {
			return false
		}
		fmt.Fprintf(out, "grew %s\n", v.Path())
	case "shrink":
		if len(args) != 2 {
			fmt.Fprintln(out, "usage: shrink <path>")
			return false
		}
		if s.report(out, s.F.Shrink(args[1])) {
			return false
		}
		fmt.Fprintf(out, "shrank %s\n", args[1])
	case "dump":
		if len(args) != 2 {
			fmt.Fprintln(out, "usage: dump <out.json>")
			return false
		}
		data, err := s.F.JGF()
		if s.report(out, err) {
			return false
		}
		if s.report(out, s.WriteFile(args[1], data)) {
			return false
		}
		fmt.Fprintf(out, "wrote %d bytes to %s\n", len(data), args[1])
	default:
		fmt.Fprintf(out, "unknown command %q (try help)\n", args[0])
	}
	return false
}

func (s *Session) cmdMatch(args []string, out io.Writer) {
	if len(args) != 3 {
		fmt.Fprintln(out, "usage: match allocate|allocate_orelse_reserve|satisfy <jobspec.yaml>")
		return
	}
	data, err := s.ReadFile(args[2])
	if s.report(out, err) {
		return
	}
	spec, err := fluxion.ParseJobspec(data)
	if s.report(out, err) {
		return
	}
	switch args[1] {
	case "allocate":
		alloc, err := s.F.MatchAllocate(s.nextJob, spec, s.now)
		if s.report(out, err) {
			return
		}
		fmt.Fprintf(out, "ALLOCATED jobid=%d at=%d duration=%d\n%s\n", s.nextJob, alloc.At, alloc.Duration, alloc.Describe())
		s.nextJob++
	case "allocate_orelse_reserve":
		alloc, err := s.F.MatchAllocateOrReserve(s.nextJob, spec, s.now)
		if s.report(out, err) {
			return
		}
		verb := "ALLOCATED"
		if alloc.Reserved {
			verb = "RESERVED"
		}
		fmt.Fprintf(out, "%s jobid=%d at=%d duration=%d\n%s\n", verb, s.nextJob, alloc.At, alloc.Duration, alloc.Describe())
		s.nextJob++
	case "satisfy":
		ok, err := s.F.MatchSatisfy(spec)
		if s.report(out, err) {
			return
		}
		fmt.Fprintf(out, "satisfiable: %v\n", ok)
	default:
		fmt.Fprintf(out, "unknown match subcommand %q\n", args[1])
	}
}

func (s *Session) report(out io.Writer, err error) bool {
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return true
	}
	return false
}
