package resgraph_test

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"fluxion/internal/grug"
	"fluxion/internal/resgraph"
)

// settleHeap returns the live heap after forcing collection twice (the
// second pass collects objects resurrected by finalizers from the first).
func settleHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// rssBytes returns the process resident set size, or 0 when it cannot be
// read (non-Linux).
func rssBytes() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// BenchmarkGraphMemory measures the resting memory footprint of the
// struct-of-arrays slab graph: bytes of live heap per vertex after
// building (and finalizing) a high-LOD system with ALL:core pruning
// filters, at ~100k and ~1M vertices. The bytes/vertex metric is gated
// raw by benchdiff, like allocs/op: it is deterministic per build, so a
// representation change that bloats the resting graph fails CI even when
// ns/op stays flat. rss-bytes/vertex tracks the same build at the OS
// level (0 where /proc is unavailable, and ungated by the baseline).
func BenchmarkGraphMemory(b *testing.B) {
	// One high-LOD rack is 1423 vertices: 1 rack + 18 nodes + 36 sockets
	// + 36*(20 cores + 2 gpus + 8 memory + 8 nvme).
	for _, tc := range []struct {
		name  string
		racks int64
	}{
		{"v100k", 70},
		{"v1M", 703},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var bytesPerVertex, rssPerVertex float64
			for i := 0; i < b.N; i++ {
				heap0, rss0 := settleHeap(), rssBytes()
				g, err := grug.BuildGraph(grug.HighLODRacks(tc.racks), 0, 1<<31,
					resgraph.PruneSpec{resgraph.ALL: {"core"}})
				if err != nil {
					b.Fatal(err)
				}
				heap1, rss1 := settleHeap(), rssBytes()
				n := float64(g.Len())
				bytesPerVertex = float64(heap1-heap0) / n
				if rss1 > rss0 {
					rssPerVertex = float64(rss1-rss0) / n
				}
				runtime.KeepAlive(g)
			}
			b.ReportMetric(bytesPerVertex, "bytes/vertex")
			b.ReportMetric(rssPerVertex, "rss-bytes/vertex")
		})
	}
}

// TestGraphMemoryBudget pins the headline claim with a hard ceiling: the
// resting representation must stay at or below half of the pre-slab
// footprint (2538 bytes/vertex at 100k vertices). The benchdiff gate
// tracks drift precisely; this test catches catastrophic regressions in
// plain `go test` runs.
func TestGraphMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("memory budget probe skipped in -short")
	}
	heap0 := settleHeap()
	g, err := grug.BuildGraph(grug.HighLODRacks(70), 0, 1<<31,
		resgraph.PruneSpec{resgraph.ALL: {"core"}})
	if err != nil {
		t.Fatal(err)
	}
	heap1 := settleHeap()
	perVertex := float64(heap1-heap0) / float64(g.Len())
	t.Logf("vertices=%d heap=%d bytes/vertex=%.1f", g.Len(), heap1-heap0, perVertex)
	if limit := 1269.0; perVertex > limit {
		t.Fatalf("resting graph costs %.1f bytes/vertex, budget is %.1f", perVertex, limit)
	}
	runtime.KeepAlive(g)
}
