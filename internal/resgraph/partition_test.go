package resgraph

import (
	"errors"
	"testing"
)

// collectPaths returns every containment path in published pre-order.
func collectPaths(g *Graph) []string {
	ts := g.topo.Load()
	out := make([]string, 0, len(ts.order))
	for _, v := range ts.order {
		out = append(out, v.Path())
	}
	return out
}

// TestPartitionSingleShardIsClone: n=1 must reproduce the flat graph
// vertex for vertex — same pre-order paths, IDs, sizes, and aggregates.
// This is the structural half of the sharded-vs-flat parity property.
func TestPartitionSingleShardIsClone(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core", "node"}})
	parts, err := g.Partition("rack", 1)
	if err != nil {
		t.Fatal(err)
	}
	ng := parts[0]
	want := collectPaths(g)
	got := collectPaths(ng)
	if len(want) != len(got) {
		t.Fatalf("clone has %d vertices, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pre-order path %d: %q vs %q", i, got[i], want[i])
		}
	}
	for _, p := range want {
		ov, nv := g.ByPath(p), ng.ByPath(p)
		if nv == nil {
			t.Fatalf("%s missing from clone", p)
		}
		if ov.Type != nv.Type || ov.ID != nv.ID || ov.Size != nv.Size || ov.Unit != nv.Unit {
			t.Fatalf("%s diverged: %+v vs %+v", p, ov, nv)
		}
	}
	oa := g.Root(Containment).Aggregates()
	na := ng.Root(Containment).Aggregates()
	for typ, n := range oa {
		if na[typ] != n {
			t.Fatalf("aggregate %s: %d vs %d", typ, na[typ], n)
		}
	}
}

// TestPartitionSplitsCapacity: across n shards every unit lands exactly
// once, shard capacities sum to the flat graph's per type, the skeleton
// is replicated, and shard sizes stay within one unit of each other.
func TestPartitionSplitsCapacity(t *testing.T) {
	g := buildTiny(t, PruneSpec{ALL: {"core", "node"}}) // 2 racks à 2 nodes
	parts, err := g.Partition("rack", 2)
	if err != nil {
		t.Fatal(err)
	}
	flat := g.Root(Containment).Aggregates()
	sum := map[string]int64{}
	for k, ng := range parts {
		root := ng.Root(Containment)
		if root == nil || root.Path() != "/cluster0" {
			t.Fatalf("shard %d root = %v", k, root)
		}
		for typ, n := range root.Aggregates() {
			sum[typ] += n
		}
		if got := root.Aggregates()["rack"]; got != 1 {
			t.Fatalf("shard %d holds %d racks, want 1", k, got)
		}
	}
	// The cluster root is skeleton (replicated, counted once per shard);
	// everything under the cut must sum exactly.
	for _, typ := range []string{"rack", "node", "core", "memory"} {
		if sum[typ] != flat[typ] {
			t.Fatalf("%s capacity: shards sum to %d, flat has %d", typ, sum[typ], flat[typ])
		}
	}
	// No vertex below the cut appears in two shards.
	seen := map[string]int{}
	for _, ng := range parts {
		for _, p := range collectPaths(ng) {
			seen[p]++
		}
	}
	for p, n := range seen {
		if p == "/cluster0" {
			if n != 2 {
				t.Fatalf("skeleton %s replicated %d times, want 2", p, n)
			}
			continue
		}
		if n != 1 {
			t.Fatalf("%s owned by %d shards", p, n)
		}
	}
}

// TestPartitionErrors covers the failure modes: unfinalized graphs, bad
// shard counts, unknown cut types, and more shards than units.
func TestPartitionErrors(t *testing.T) {
	g := buildTiny(t, nil)
	if _, err := g.Partition("rack", 0); !errors.Is(err, ErrInvalid) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := g.Partition("blade", 1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown cut: %v", err)
	}
	if _, err := g.Partition("rack", 3); !errors.Is(err, ErrInvalid) {
		t.Fatalf("3 shards from 2 racks: %v", err)
	}
	raw := NewGraph(0, 100)
	raw.MustAddVertex("cluster", -1, 1)
	if _, err := raw.Partition("rack", 1); !errors.Is(err, ErrNotFinalized) {
		t.Fatalf("unfinalized: %v", err)
	}
	if got := g.PartitionUnits("rack"); got != 2 {
		t.Fatalf("PartitionUnits(rack) = %d, want 2", got)
	}
	if got := g.PartitionUnits("blade"); got != 0 {
		t.Fatalf("PartitionUnits(blade) = %d, want 0", got)
	}
}
