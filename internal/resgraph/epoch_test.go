package resgraph

import (
	"sync"
	"testing"
)

// buildWide constructs cluster0 -> rack{0,1} -> 40 nodes each -> 4 cores
// per node: 489 vertices, so the epoch spans two chunks and chunk-level
// copy-on-write is observable.
func buildWide(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(0, 1<<20)
	cluster := g.MustAddVertex("cluster", -1, 1)
	for r := 0; r < 2; r++ {
		rack := g.MustAddVertex("rack", -1, 1)
		if err := g.AddContainment(cluster, rack); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 40; n++ {
			node := g.MustAddVertex("node", -1, 1)
			if err := g.AddContainment(rack, node); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < 4; c++ {
				core := g.MustAddVertex("core", -1, 1)
				if err := g.AddContainment(node, core); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEpochBootstrapAndVersioning(t *testing.T) {
	g := buildTiny(t, nil)
	ep := g.Epoch()
	if ep == nil {
		t.Fatal("no epoch after Finalize")
	}
	if ep.Version() != 1 || g.EpochVersion() != 1 {
		t.Fatalf("bootstrap version = %d", ep.Version())
	}
	if ep.UniqBound() != g.UniqBound() {
		t.Fatalf("uniq bound = %d, want %d", ep.UniqBound(), g.UniqBound())
	}
	// Every vertex is live and up in the bootstrap epoch, with labels
	// matching the live graph.
	for _, v := range g.Vertices() {
		if !ep.Up(v.UniqID) {
			t.Fatalf("%s not up in epoch", v.Name)
		}
		in, out := v.TreeInterval()
		ein, eout := ep.TreeInterval(v.UniqID)
		if in != ein || out != eout {
			t.Fatalf("%s interval (%d,%d) vs epoch (%d,%d)", v.Name, in, out, ein, eout)
		}
		if ep.Plan(v.UniqID) == nil {
			t.Fatalf("%s has no plan snapshot", v.Name)
		}
	}
	// Out-of-range UniqIDs are conservatively absent.
	if ep.Up(-1) || ep.Up(g.UniqBound()) {
		t.Fatal("out-of-range uid reported up")
	}
	if ep.Plan(g.UniqBound()) != nil || ep.Filter(-1) != nil {
		t.Fatal("out-of-range uid has state")
	}
	if !ep.InSubtree(g.UniqBound(), 0) {
		t.Fatal("InSubtree must be conservative for unknown uids")
	}

	// A status transition publishes a strictly newer epoch.
	node := g.ByPath("/cluster0/rack0/node0")
	if _, err := g.MarkDown(node); err != nil {
		t.Fatal(err)
	}
	ep2 := g.Epoch()
	if ep2 == ep || ep2.Version() <= ep.Version() {
		t.Fatalf("MarkDown did not advance the epoch: %d -> %d", ep.Version(), ep2.Version())
	}
	if ep2.Up(node.UniqID) {
		t.Fatal("down node still up in new epoch")
	}
	if !ep.Up(node.UniqID) {
		t.Fatal("pinned old epoch mutated by MarkDown")
	}
	if _, err := g.MarkUp(node); err != nil {
		t.Fatal(err)
	}
	if v := g.EpochVersion(); v <= ep2.Version() {
		t.Fatalf("MarkUp did not advance the epoch: %d", v)
	}
}

func TestEpochChunkCopyOnWrite(t *testing.T) {
	g := buildWide(t)
	ep := g.Epoch()
	if len(ep.chunks) < 2 {
		t.Fatalf("want >= 2 chunks, got %d", len(ep.chunks))
	}
	// Dirty exactly one vertex in chunk 0: only that chunk is cloned, the
	// rest of the directory is shared with the previous epoch.
	v := g.Vertices()[3]
	if v.UniqID>>epochChunkBits != 0 {
		t.Fatalf("test vertex not in chunk 0")
	}
	if _, err := v.Planner().AddSpan(0, 10, 1); err != nil {
		t.Fatal(err)
	}
	g.MarkEpochDirty(v)
	g.PublishEpoch()
	ep2 := g.Epoch()
	if ep2 == ep {
		t.Fatal("no transition published")
	}
	if ep2.chunks[0] == ep.chunks[0] {
		t.Fatal("dirty chunk not cloned")
	}
	for i := 1; i < len(ep.chunks); i++ {
		if ep2.chunks[i] != ep.chunks[i] {
			t.Fatalf("clean chunk %d was copied", i)
		}
	}
	if ep2.StructVersion() != ep.StructVersion() {
		t.Fatal("non-structural transition bumped the structural version")
	}
	// The pinned epoch still reads the pre-mutation availability.
	if got, _ := ep.Plan(v.UniqID).AvailDuring(0, 10); got != v.Size {
		t.Fatalf("old epoch avail = %d, want %d", got, v.Size)
	}
	if got, _ := ep2.Plan(v.UniqID).AvailDuring(0, 10); got != v.Size-1 {
		t.Fatalf("new epoch avail = %d, want %d", got, v.Size-1)
	}
}

func TestEpochStructuralTransition(t *testing.T) {
	g := buildWide(t)
	ep := g.Epoch()
	rack1 := g.ByPath("/cluster0/rack1")
	nodes := rack1.Children(Containment)
	node := nodes[len(nodes)-1]
	if err := g.Detach(node); err != nil {
		t.Fatal(err)
	}
	ep2 := g.Epoch()
	if ep2.StructVersion() <= ep.StructVersion() {
		t.Fatal("detach did not bump the structural version")
	}
	if ep2.Up(node.UniqID) {
		t.Fatal("detached node still up")
	}
	if !ep.Up(node.UniqID) {
		t.Fatal("pinned epoch lost the detached node")
	}
	// Grow: graft a freshly built node under the other rack — new labels,
	// new struct version, and the new vertex is outside the old epochs.
	rack0 := g.ByPath("/cluster0/rack0")
	grown := g.MustAddVertex("node", -1, 1)
	core := g.MustAddVertex("core", -1, 1)
	if err := g.AddContainment(grown, core); err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(rack0, grown); err != nil {
		t.Fatal(err)
	}
	ep3 := g.Epoch()
	if ep3.StructVersion() <= ep2.StructVersion() {
		t.Fatal("attach did not bump the structural version")
	}
	if !ep3.Up(grown.UniqID) || !ep3.Up(core.UniqID) {
		t.Fatal("grown subtree not up in new epoch")
	}
	if !ep3.InSubtree(rack0.UniqID, grown.UniqID) {
		t.Fatal("grown node not in new parent's subtree")
	}
	// Epochs pinned before the grow gate the new vertices out by bound.
	if ep2.Up(grown.UniqID) || ep.Up(core.UniqID) {
		t.Fatal("old epochs see vertices created after their capture")
	}
}

func TestEpochStable(t *testing.T) {
	g := buildTiny(t, nil)
	ep := g.Epoch()
	if !g.EpochStable(ep) {
		t.Fatal("current epoch with no pending mutations must be stable")
	}
	if g.EpochStable(nil) {
		t.Fatal("nil epoch must not be stable")
	}
	v := g.Vertices()[2]
	g.MarkEpochDirty(v)
	if g.EpochStable(ep) {
		t.Fatal("epoch with pending dirty vertex must not be stable")
	}
	g.PublishEpoch()
	if g.EpochStable(ep) {
		t.Fatal("superseded epoch must not be stable")
	}
	if !g.EpochStable(g.Epoch()) {
		t.Fatal("fresh epoch must be stable")
	}
}

func TestEpochBatchAndDeltaFlush(t *testing.T) {
	g := buildTiny(t, nil)
	var got []Delta
	g.SetDeltaSink(func(d Delta) { got = append(got, d) })

	ep := g.Epoch()
	g.BeginEpochBatch()
	g.BeginEpochBatch() // batches nest
	node := g.ByPath("/cluster0/rack0/node0")
	if _, err := g.MarkDown(node); err != nil {
		t.Fatal(err)
	}
	core := g.ByPath("/cluster0/rack0/node1/core4")
	g.PublishSpanDelta(DeltaFree, core, 1, 0, 10)
	if g.Epoch() != ep {
		t.Fatal("epoch transitioned inside an open batch")
	}
	if len(got) != 0 {
		t.Fatalf("deltas leaked inside an open batch: %d", len(got))
	}
	g.EndEpochBatch()
	if g.Epoch() != ep || len(got) != 0 {
		t.Fatal("inner EndEpochBatch must not publish")
	}
	g.EndEpochBatch()
	if g.Epoch() == ep {
		t.Fatal("outermost EndEpochBatch did not publish")
	}
	if len(got) != 2 || got[0].Kind != DeltaStructural || got[1].Kind != DeltaFree {
		t.Fatalf("flushed deltas = %+v", got)
	}
	if g.Epoch().Up(node.UniqID) {
		t.Fatal("batched MarkDown missing from published epoch")
	}
}

// TestEpochPinnedImmutableUnderConcurrency hammers a pinned epoch with
// concurrent mutators and verifies the pinned snapshot never changes: a
// reader hashing the same availability questions must see identical
// answers before, during, and after 1k concurrent transitions.
func TestEpochPinnedImmutableUnderConcurrency(t *testing.T) {
	g := buildWide(t)
	ep := g.Epoch()
	cores := g.ByType("core")

	hash := func(e *Epoch) uint64 {
		var h uint64 = 14695981039346656037 // FNV-64 offset basis
		mix := func(x uint64) {
			h ^= x
			h *= 1099511628211
		}
		for _, c := range cores {
			a, _ := e.Plan(c.UniqID).AvailDuring(0, 100)
			in, out := e.TreeInterval(c.UniqID)
			up := uint64(0)
			if e.Up(c.UniqID) {
				up = 1
			}
			mix(uint64(a) + up)
			mix(uint64(uint32(in))<<32 | uint64(uint32(out)))
		}
		return h
	}
	before := hash(ep)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				c := cores[(w*251+i*7)%len(cores)]
				if id, err := c.Planner().AddSpan(0, 50, 1); err == nil {
					g.MarkEpochDirty(c)
					g.PublishEpoch()
					c.Planner().RemoveSpan(id)
					g.MarkEpochDirty(c)
				}
				g.PublishEpoch()
			}
		}(w)
	}
	// Concurrent readers re-hash the pinned epoch while transitions fly.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if h := hash(ep); h != before {
					t.Errorf("pinned epoch hash changed mid-run: %x != %x", h, before)
					return
				}
			}
		}()
	}
	wg.Wait()
	if h := hash(ep); h != before {
		t.Fatalf("pinned epoch mutated: %x != %x", h, before)
	}
	cur := g.Epoch()
	if cur.Version() <= ep.Version() {
		t.Fatalf("no transitions published: %d", cur.Version())
	}
	if h := hash(cur); h != before {
		// All spans were removed again, so the current epoch agrees with
		// the original by value — just not by identity.
		t.Fatalf("final epoch diverged: %x != %x", h, before)
	}
}

// TestEpochVersionMonotoneUnderConcurrency asserts transitions are totally
// ordered: an observer polling the published epoch never sees the version
// go backwards, and concurrent publishers never produce duplicate
// versions for distinct epochs.
func TestEpochVersionMonotoneUnderConcurrency(t *testing.T) {
	g := buildWide(t)
	cores := g.ByType("core")
	stop := make(chan struct{})
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		last := uint64(0)
		for {
			v := g.EpochVersion()
			if v < last {
				t.Errorf("epoch version went backwards: %d -> %d", last, v)
				return
			}
			last = v
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				c := cores[(w*97+i)%len(cores)]
				if id, err := c.Planner().AddSpan(0, 10, 1); err == nil {
					g.MarkEpochDirty(c)
					g.PublishEpoch()
					c.Planner().RemoveSpan(id)
					g.MarkEpochDirty(c)
					g.PublishEpoch()
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	observer.Wait()
}
