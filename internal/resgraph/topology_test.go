package resgraph

import "testing"

// Tests for the allocation-free topology helpers the match kernel relies
// on: ChildCount/HasChildren (leaf tests without materializing slices),
// TypeID interning, and the pre-order interval labels behind InSubtreeOf.

func TestChildCountAndHasChildren(t *testing.T) {
	g := buildTiny(t, nil)
	cases := []struct {
		path string
		want int
	}{
		{"/cluster0", 2},
		{"/cluster0/rack0", 2},
		{"/cluster0/rack0/node0", 5}, // 4 cores + 1 memory
		{"/cluster0/rack0/node0/core0", 0},
		{"/cluster0/rack0/node0/memory0", 0},
	}
	for _, c := range cases {
		v := g.ByPath(c.path)
		if v == nil {
			t.Fatalf("missing %s", c.path)
		}
		if got := v.ChildCount(Containment); got != c.want {
			t.Errorf("%s ChildCount = %d, want %d", c.path, got, c.want)
		}
		if got := len(v.Children(Containment)); got != c.want {
			t.Errorf("%s len(Children) = %d, want %d", c.path, got, c.want)
		}
		if got := v.HasChildren(Containment); got != (c.want > 0) {
			t.Errorf("%s HasChildren = %v, want %v", c.path, got, c.want > 0)
		}
	}
}

func TestTypeIDInterning(t *testing.T) {
	g := buildTiny(t, nil)
	tbl := g.Types()
	if tbl == nil {
		t.Fatal("nil type table")
	}
	for _, v := range g.Vertices() {
		if got := tbl.ID(v.Type); got != v.TypeID {
			t.Fatalf("%s: TypeID %d but table says %d", v, v.TypeID, got)
		}
		if got := tbl.Name(v.TypeID); got != v.Type {
			t.Fatalf("%s: Name(%d) = %q, want %q", v, v.TypeID, got, v.Type)
		}
	}
	a := g.ByPath("/cluster0/rack0/node0/core0")
	b := g.ByPath("/cluster0/rack1/node3/core12")
	if a.TypeID != b.TypeID {
		t.Fatalf("same-type vertices have different TypeIDs: %d vs %d", a.TypeID, b.TypeID)
	}
	if a.TypeID == g.ByPath("/cluster0/rack0/node0").TypeID {
		t.Fatal("core and node share a TypeID")
	}
}

// inSubtreeSlow is the reference implementation: walk parents upward.
func inSubtreeSlow(v, root *Vertex) bool {
	for x := v; x != nil; x = x.Parent() {
		if x == root {
			return true
		}
	}
	return false
}

func TestInSubtreeOfMatchesParentWalk(t *testing.T) {
	g := buildTiny(t, nil)
	vs := g.Vertices()
	for _, v := range vs {
		for _, root := range vs {
			want := inSubtreeSlow(v, root)
			if got := v.InSubtreeOf(root); got != want {
				t.Fatalf("InSubtreeOf(%s, %s) = %v, want %v", v, root, got, want)
			}
		}
	}
}

func TestInSubtreeOfAfterAttach(t *testing.T) {
	g := buildTiny(t, nil)
	rack := g.ByPath("/cluster0/rack1")
	node := g.MustAddVertex("node", -1, 1)
	for i := 0; i < 2; i++ {
		c := g.MustAddVertex("core", -1, 1)
		if err := g.AddContainment(node, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Attach(rack, node); err != nil {
		t.Fatal(err)
	}
	// Attach renumbers the interval labels; the O(1) test must agree with
	// the parent walk for every pair, old vertices and new alike.
	vs := g.Vertices()
	for _, v := range vs {
		for _, root := range vs {
			want := inSubtreeSlow(v, root)
			if got := v.InSubtreeOf(root); got != want {
				t.Fatalf("after Attach: InSubtreeOf(%s, %s) = %v, want %v", v, root, got, want)
			}
		}
	}
	if !node.InSubtreeOf(rack) || node.InSubtreeOf(g.ByPath("/cluster0/rack0")) {
		t.Fatal("attached node labeled under the wrong rack")
	}
}
