package resgraph

import (
	"math/rand"
	"testing"
)

// Tests for the allocation-free topology helpers the match kernel relies
// on: ChildCount/HasChildren (leaf tests without materializing slices),
// TypeID interning, and the pre-order interval labels behind InSubtreeOf.

func TestChildCountAndHasChildren(t *testing.T) {
	g := buildTiny(t, nil)
	cases := []struct {
		path string
		want int
	}{
		{"/cluster0", 2},
		{"/cluster0/rack0", 2},
		{"/cluster0/rack0/node0", 5}, // 4 cores + 1 memory
		{"/cluster0/rack0/node0/core0", 0},
		{"/cluster0/rack0/node0/memory0", 0},
	}
	for _, c := range cases {
		v := g.ByPath(c.path)
		if v == nil {
			t.Fatalf("missing %s", c.path)
		}
		if got := v.ChildCount(Containment); got != c.want {
			t.Errorf("%s ChildCount = %d, want %d", c.path, got, c.want)
		}
		if got := len(v.Children(Containment)); got != c.want {
			t.Errorf("%s len(Children) = %d, want %d", c.path, got, c.want)
		}
		if got := v.HasChildren(Containment); got != (c.want > 0) {
			t.Errorf("%s HasChildren = %v, want %v", c.path, got, c.want > 0)
		}
	}
}

func TestTypeIDInterning(t *testing.T) {
	g := buildTiny(t, nil)
	tbl := g.Types()
	if tbl == nil {
		t.Fatal("nil type table")
	}
	for _, v := range g.Vertices() {
		if got := tbl.ID(v.Type); got != v.TypeID {
			t.Fatalf("%s: TypeID %d but table says %d", v, v.TypeID, got)
		}
		if got := tbl.Name(v.TypeID); got != v.Type {
			t.Fatalf("%s: Name(%d) = %q, want %q", v, v.TypeID, got, v.Type)
		}
	}
	a := g.ByPath("/cluster0/rack0/node0/core0")
	b := g.ByPath("/cluster0/rack1/node3/core12")
	if a.TypeID != b.TypeID {
		t.Fatalf("same-type vertices have different TypeIDs: %d vs %d", a.TypeID, b.TypeID)
	}
	if a.TypeID == g.ByPath("/cluster0/rack0/node0").TypeID {
		t.Fatal("core and node share a TypeID")
	}
}

// inSubtreeSlow is the reference implementation: walk parents upward.
func inSubtreeSlow(v, root *Vertex) bool {
	for x := v; x != nil; x = x.Parent() {
		if x == root {
			return true
		}
	}
	return false
}

func TestInSubtreeOfMatchesParentWalk(t *testing.T) {
	g := buildTiny(t, nil)
	vs := g.Vertices()
	for _, v := range vs {
		for _, root := range vs {
			want := inSubtreeSlow(v, root)
			if got := v.InSubtreeOf(root); got != want {
				t.Fatalf("InSubtreeOf(%s, %s) = %v, want %v", v, root, got, want)
			}
		}
	}
}

func TestInSubtreeOfAfterAttach(t *testing.T) {
	g := buildTiny(t, nil)
	rack := g.ByPath("/cluster0/rack1")
	node := g.MustAddVertex("node", -1, 1)
	for i := 0; i < 2; i++ {
		c := g.MustAddVertex("core", -1, 1)
		if err := g.AddContainment(node, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Attach(rack, node); err != nil {
		t.Fatal(err)
	}
	// Attach renumbers the interval labels; the O(1) test must agree with
	// the parent walk for every pair, old vertices and new alike.
	vs := g.Vertices()
	for _, v := range vs {
		for _, root := range vs {
			want := inSubtreeSlow(v, root)
			if got := v.InSubtreeOf(root); got != want {
				t.Fatalf("after Attach: InSubtreeOf(%s, %s) = %v, want %v", v, root, got, want)
			}
		}
	}
	if !node.InSubtreeOf(rack) || node.InSubtreeOf(g.ByPath("/cluster0/rack0")) {
		t.Fatal("attached node labeled under the wrong rack")
	}
}

// TestInSubtreeOfPropertyRandomOps drives the interval labels through
// randomized Grow (Attach), Shrink (Detach), and MarkDown/MarkUp
// sequences and checks after every operation that the O(1) Euler-tour
// answer agrees with the naive parent walk for every vertex pair, and
// that down status reached exactly the subtree it was aimed at. Each
// Attach and Detach rebuilds the topo slab and renumbers every label, so
// this exercises the rebuild far beyond the single-shot tests above.
func TestInSubtreeOfPropertyRandomOps(t *testing.T) {
	const ops = 40
	for _, seed := range []int64{1, 2, 3, 4} {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := buildTiny(t, nil)
			verify := func(op string) {
				t.Helper()
				vs := g.Vertices()
				for _, v := range vs {
					for _, root := range vs {
						want := inSubtreeSlow(v, root)
						if got := v.InSubtreeOf(root); got != want {
							t.Fatalf("after %s: InSubtreeOf(%s, %s) = %v, want %v",
								op, v, root, got, want)
						}
					}
				}
			}
			pick := func() *Vertex {
				vs := g.Vertices()
				return vs[rng.Intn(len(vs))]
			}
			for i := 0; i < ops; i++ {
				switch r := rng.Float64(); {
				case r < 0.40: // Grow: graft a fresh node+cores subtree anywhere.
					parent := pick()
					sub := g.MustAddVertex("node", -1, 1)
					for c := rng.Intn(4); c > 0; c-- {
						core := g.MustAddVertex("core", -1, 1)
						if err := g.AddContainment(sub, core); err != nil {
							t.Fatal(err)
						}
					}
					if err := g.Attach(parent, sub); err != nil {
						t.Fatal(err)
					}
					verify("Attach")
				case r < 0.65: // Shrink: prune any non-root subtree.
					v := pick()
					if v.Parent() == nil {
						continue // never detach the root
					}
					if err := g.Detach(v); err != nil {
						t.Fatal(err)
					}
					if v.graph != nil || v.path != "" {
						t.Fatalf("detached %s still claims membership", v)
					}
					verify("Detach")
				default: // Flip a failure domain and check the blast radius.
					v := pick()
					mark, markOp := g.MarkDown, "MarkDown"
					want := StatusDown
					if rng.Intn(2) == 0 {
						mark, markOp, want = g.MarkUp, "MarkUp", StatusUp
					}
					if _, err := mark(v); err != nil {
						t.Fatal(err)
					}
					for _, x := range g.Vertices() {
						if inSubtreeSlow(x, v) && x.Status != want {
							t.Fatalf("%s(%s) missed descendant %s", markOp, v, x)
						}
					}
					verify(markOp)
				}
			}
		})
	}
}
