package resgraph

import (
	"testing"
	"unsafe"
)

// TestVertexPacking pins the slab element size: at a million vertices
// every 8 bytes of padding is 8 MB of resting memory, so the Vertex
// field order must stay optimally packed (4-byte fields grouped at the
// tail). govet's fieldalignment check guards the ordering in lint; this
// test guards the absolute size against field additions that look free
// but aren't.
func TestVertexPacking(t *testing.T) {
	if got, max := unsafe.Sizeof(Vertex{}), uintptr(200); got > max {
		t.Fatalf("sizeof(Vertex) = %d, budget %d — new fields must justify their slab cost", got, max)
	}
}
