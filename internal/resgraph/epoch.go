package resgraph

import "fluxion/internal/planner"

// This file implements the MVCC epoch layer: immutable, atomically
// published snapshots of the graph's match-relevant state. Match workers
// pin an epoch with a single atomic load and read it with zero
// synchronization — no graph RWMutex, no per-vertex claim atomics — while
// writers batch their mutations into copy-on-write epoch transitions.
//
// The single-writer rule: mutations themselves still serialize under the
// existing locks (the traverser's writer lock, the graph's writer lock),
// and each mutating operation ends by publishing one epoch transition.
// Publication is serialized under epochMu, so at any instant there is
// exactly one current epoch and transitions are totally ordered; readers
// never block writers and writers never block readers.
//
// An epoch holds one vertexSnap per vertex — status, pre-order interval
// labels, a planner.Snapshot of the vertex's availability calendar, and a
// planner.MultiSnapshot of its pruning filter — stored in fixed-size
// chunks. A transition copies the chunk directory and only the chunks
// containing re-snapshotted vertices; everything else is shared with the
// previous epoch. Structural changes (attach/detach, which renumber the
// pre-order labels) rebuild every chunk and bump the epoch's structural
// version, which the match scratch arenas use to drop cached candidate
// buffers that may pin dead vertices.
//
// Capacity deltas (delta.go) are buffered while an epoch transition is
// pending and flushed, in order, when it publishes: the wakeup index and
// the WAL observe exactly one consistent boundary per transition.
//
// Memory reclamation is the garbage collector's: a retired epoch stays
// reachable only while some reader still holds its pointer, and chunks
// untouched across transitions are shared, not copied.

const (
	epochChunkBits = 8
	epochChunkSize = 1 << epochChunkBits
	epochChunkMask = epochChunkSize - 1
)

// vertexSnap is one vertex's immutable per-epoch state.
type vertexSnap struct {
	live            bool // attached to the graph at capture time
	down            bool
	treeIn, treeOut int32
	plan            *planner.Snapshot
	filter          *planner.MultiSnapshot
}

// epochChunk holds the snaps of epochChunkSize consecutive UniqIDs.
type epochChunk struct {
	snaps [epochChunkSize]vertexSnap
}

// Epoch is one immutable published graph snapshot. All methods are safe
// for unsynchronized concurrent use from any number of goroutines.
type Epoch struct {
	version       uint64
	structVersion uint64
	uniqBound     int64
	chunks        []*epochChunk
}

// Version returns the epoch's monotonically increasing sequence number
// (the first epoch published by Finalize is version 1).
func (e *Epoch) Version() uint64 { return e.version }

// StructVersion returns the structural generation: it changes only on
// transitions that renumbered the containment pre-order labels or changed
// the vertex set (attach/detach). Scratch arenas key cached candidate
// buffers off it.
func (e *Epoch) StructVersion() uint64 { return e.structVersion }

// UniqBound returns the exclusive UniqID upper bound at capture time;
// vertices created later are not in this epoch.
func (e *Epoch) UniqBound() int64 { return e.uniqBound }

// snap returns the vertex snap for uid, or nil when uid is outside the
// epoch.
func (e *Epoch) snap(uid int64) *vertexSnap {
	if uid < 0 || uid >= e.uniqBound {
		return nil
	}
	ci := int(uid >> epochChunkBits)
	if ci >= len(e.chunks) || e.chunks[ci] == nil {
		return nil
	}
	return &e.chunks[ci].snaps[uid&epochChunkMask]
}

// Up reports whether the vertex was attached and schedulable in this
// epoch. Vertices outside the epoch (created after capture) are not up.
func (e *Epoch) Up(uid int64) bool {
	s := e.snap(uid)
	return s != nil && s.live && !s.down
}

// Plan returns the epoch's availability snapshot for uid (nil when the
// vertex is not live in this epoch).
func (e *Epoch) Plan(uid int64) *planner.Snapshot {
	s := e.snap(uid)
	if s == nil {
		return nil
	}
	return s.plan
}

// Filter returns the epoch's pruning-filter snapshot for uid (nil when
// the vertex carries no filter or is not live in this epoch).
func (e *Epoch) Filter(uid int64) *planner.MultiSnapshot {
	s := e.snap(uid)
	if s == nil {
		return nil
	}
	return s.filter
}

// TreeInterval returns uid's containment pre-order interval in this
// epoch, or (0, 0) when the vertex is outside it.
func (e *Epoch) TreeInterval(uid int64) (in, out int32) {
	s := e.snap(uid)
	if s == nil {
		return 0, 0
	}
	return s.treeIn, s.treeOut
}

// InSubtree reports whether uid lies in the containment subtree rooted
// at rootUID, per this epoch's pre-order labels. Vertices outside the
// epoch are conservatively reported as contained (callers use this to
// decide cache invalidation; over-invalidating is safe).
func (e *Epoch) InSubtree(rootUID, uid int64) bool {
	r, v := e.snap(rootUID), e.snap(uid)
	if r == nil || v == nil {
		return true
	}
	return r.treeIn <= v.treeIn && v.treeIn < r.treeOut
}

// Epoch returns the current published epoch (nil before Finalize). One
// atomic load; the result is immutable and may be read indefinitely.
func (g *Graph) Epoch() *Epoch { return g.epoch.Load() }

// EpochVersion returns the current epoch's version (0 before Finalize).
func (g *Graph) EpochVersion() uint64 {
	if e := g.epoch.Load(); e != nil {
		return e.version
	}
	return 0
}

// EpochStable reports whether ep is still the current epoch with no
// unpublished mutations pending against it. This is the commit-time
// re-validation of the MVCC pipeline: a speculation whose pinned epoch is
// stable at commit time (checked while the committer excludes writers)
// proves nothing changed since it matched, so the per-vertex conflict
// re-walk can be skipped.
func (g *Graph) EpochStable(ep *Epoch) bool {
	if ep == nil {
		return false
	}
	g.epochMu.Lock()
	ok := g.epoch.Load() == ep && !g.epochAll &&
		len(g.epochDirty) == 0 && len(g.pendingDeltas) == 0
	g.epochMu.Unlock()
	return ok
}

// MarkEpochDirty records that v's planner or filter state changed; the
// next epoch transition re-snapshots it. Mutators call it after every
// span install/remove. Idempotent per pending transition (a per-vertex
// flag suppresses duplicate list entries).
func (g *Graph) MarkEpochDirty(v *Vertex) {
	if v == nil || g.epoch.Load() == nil {
		return
	}
	g.epochMu.Lock()
	if !v.epochDirty {
		v.epochDirty = true
		g.epochDirty = append(g.epochDirty, v)
	}
	g.epochMu.Unlock()
}

// markEpochAllLocked schedules a full rebuild (structural change);
// callers hold g.mu.
func (g *Graph) markEpochAllLocked() {
	if g.epoch.Load() == nil {
		return
	}
	g.epochMu.Lock()
	g.epochAll = true
	g.epochMu.Unlock()
}

// BeginEpochBatch defers epoch publication until the matching
// EndEpochBatch: mutations inside the batch accumulate into one epoch
// transition (and one delta flush) instead of publishing per operation.
// The scheduler brackets each cycle with a batch so a cycle's worth of
// commits and cancels is one boundary; mutations arriving mid-cycle from
// other goroutines land in the same next epoch instead of blocking.
// Batches nest.
func (g *Graph) BeginEpochBatch() {
	g.epochMu.Lock()
	g.epochBatch++
	g.epochMu.Unlock()
}

// EndEpochBatch closes a batch and, when it is the outermost one with
// pending changes, publishes the accumulated epoch transition.
func (g *Graph) EndEpochBatch() {
	g.epochMu.Lock()
	if g.epochBatch > 0 {
		g.epochBatch--
	}
	need := g.epochBatch == 0 &&
		(g.epochAll || len(g.epochDirty) > 0 || len(g.pendingDeltas) > 0)
	g.epochMu.Unlock()
	if need {
		g.PublishEpoch()
	}
}

// PublishEpoch publishes an epoch transition covering every mutation
// recorded since the last one, then flushes the buffered capacity deltas.
// Mutating traverser operations call it once at their end; it is a no-op
// when nothing is pending or a batch is open. Safe to call from any
// goroutine not already holding the graph's lock.
func (g *Graph) PublishEpoch() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.publishEpochGraphLocked()
}

// publishEpochGraphLocked is PublishEpoch for callers already holding
// g.mu (either side): graph mutators publish at the end of their own
// critical section.
func (g *Graph) publishEpochGraphLocked() {
	g.epochMu.Lock()
	defer g.epochMu.Unlock()
	prev := g.epoch.Load()
	if prev == nil || g.epochBatch > 0 {
		return
	}
	if !g.epochAll && len(g.epochDirty) == 0 && len(g.pendingDeltas) == 0 {
		return
	}
	if g.epochAll || len(g.epochDirty) > 0 {
		g.epoch.Store(g.buildEpochLocked(prev))
	}
	for _, v := range g.epochDirty {
		v.epochDirty = false
	}
	g.epochDirty = g.epochDirty[:0]
	g.epochAll = false
	// Flush buffered deltas in publication order, still under epochMu so
	// concurrent transitions cannot interleave their flushes. The sink
	// contract (SetDeltaSink) already forbids calling back into the graph.
	if len(g.pendingDeltas) > 0 {
		if sink := g.deltaSink.Load(); sink != nil {
			for i := range g.pendingDeltas {
				(*sink)(g.pendingDeltas[i])
			}
		}
		g.pendingDeltas = g.pendingDeltas[:0]
	}
}

// bootstrapEpochLocked publishes the first epoch; Finalize calls it under
// g.mu once paths, planners, and filters exist.
func (g *Graph) bootstrapEpochLocked() {
	g.epochAll = true
	e := g.buildEpochLocked(nil)
	g.epoch.Store(e)
	g.epochAll = false
}

// buildEpochLocked constructs the next epoch from the recorded dirty set
// (or from scratch for structural transitions). Callers hold g.mu (any
// side) and epochMu.
func (g *Graph) buildEpochLocked(prev *Epoch) *Epoch {
	bound := g.nextUniq
	n := int((bound + epochChunkMask) >> epochChunkBits)
	e := &Epoch{uniqBound: bound, version: 1}
	if prev != nil {
		e.version = prev.version + 1
		e.structVersion = prev.structVersion
	}
	e.chunks = make([]*epochChunk, n)
	if prev == nil || g.epochAll {
		e.structVersion++
		for _, v := range g.vertices {
			ci := int(v.UniqID >> epochChunkBits)
			c := e.chunks[ci]
			if c == nil {
				c = &epochChunk{}
				e.chunks[ci] = c
			}
			fillSnap(&c.snaps[v.UniqID&epochChunkMask], g, v)
		}
		return e
	}
	copy(e.chunks, prev.chunks)
	for _, v := range g.epochDirty {
		uid := v.UniqID
		if uid >= bound {
			continue
		}
		ci := int(uid >> epochChunkBits)
		var shared *epochChunk
		if ci < len(prev.chunks) {
			shared = prev.chunks[ci]
		}
		if e.chunks[ci] == nil || e.chunks[ci] == shared {
			// Copy-on-write: first dirty vertex in this chunk this
			// transition clones it; later ones mutate the clone.
			nc := &epochChunk{}
			if shared != nil {
				*nc = *shared
			}
			e.chunks[ci] = nc
		}
		fillSnap(&e.chunks[ci].snaps[uid&epochChunkMask], g, v)
	}
	return e
}

// fillSnap captures v's current match-relevant state into s. Callers
// hold g.mu, which freezes status and the pre-order labels; the planner
// snapshots take their own reader locks.
func fillSnap(s *vertexSnap, g *Graph, v *Vertex) {
	live := v.graph == g && v.plan != nil && v.path != ""
	s.live = live
	s.down = v.Status == StatusDown
	s.treeIn, s.treeOut = v.treeIn, v.treeOut
	if !live {
		s.plan, s.filter = nil, nil
		return
	}
	s.plan = g.snapPlanner(v.plan)
	if v.filter != nil {
		s.filter = v.filter.SnapshotByIDWith(g.snapPlanner)
	} else {
		s.filter = nil
	}
}

// snapPlanner captures p's step function, sharing one cached snapshot per
// distinct pool size across all span-free planners: at rest nearly every
// vertex is flat, so epochs hold O(pool sizes) snapshot objects instead of
// one per vertex. Callers hold epochMu (which guards flatSnaps); cached
// entries are immutable and stay valid forever because a flat snapshot
// depends only on (base, horizon, total), all fixed per graph.
func (g *Graph) snapPlanner(p *planner.Planner) *planner.Snapshot {
	total, flat := p.FlatTotal()
	if !flat {
		return p.Snapshot()
	}
	if s := g.flatSnaps[total]; s != nil {
		return s
	}
	s := p.Snapshot()
	// Re-check on the captured result: a span may have landed between
	// FlatTotal and Snapshot, and only a truly flat capture may be shared.
	if s.IsFlat() && s.Total() == total {
		if g.flatSnaps == nil {
			g.flatSnaps = make(map[int64]*planner.Snapshot)
		}
		g.flatSnaps[total] = s
	}
	return s
}
