package resgraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fluxion/internal/intern"
	"fluxion/internal/planner"
)

// Errors returned by graph operations.
var (
	// ErrInvalid reports a malformed graph or argument.
	ErrInvalid = errors.New("resgraph: invalid")
	// ErrNotFinalized reports use of an operation requiring Finalize.
	ErrNotFinalized = errors.New("resgraph: graph not finalized")
	// ErrBusy reports an elasticity operation on resources with live
	// allocations.
	ErrBusy = errors.New("resgraph: resources busy")
)

// PruneSpec configures pruning filters: which high-level vertex types carry
// aggregate planners, and which low-level resource types each tracks
// (paper §3.4). The pseudo vertex type ALL installs a filter on every
// vertex that has containment children.
type PruneSpec map[string][]string

// ALL is the PruneSpec wildcard vertex type.
const ALL = "ALL"

// ParsePruneSpec parses flux-style filter configuration such as
// "ALL:core" or "cluster:node,rack:node,node:core,core@gpu" — a
// comma-separated list of high-type:low-type pairs (":" or "@" separator).
func ParsePruneSpec(s string) (PruneSpec, error) {
	spec := make(PruneSpec)
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		sep := strings.IndexAny(pair, ":@")
		if sep <= 0 || sep == len(pair)-1 {
			return nil, fmt.Errorf("%w: bad prune pair %q", ErrInvalid, pair)
		}
		hi, lo := pair[:sep], pair[sep+1:]
		spec[hi] = append(spec[hi], lo)
	}
	return spec, nil
}

// vertexBlock is the slab granularity of AddVertex: vertices are carved
// out of fixed-capacity blocks so a million-vertex build is ~4k
// allocations of vertex storage instead of a million, and vertices created
// together sit together in memory in creation (≈pre-order) order.
const vertexBlock = 1024

// topoSlab is the struct-of-arrays resting representation of the
// containment tree: parallel flat arrays in pre-order, published behind an
// atomic pointer and immutable once stored. Child iteration, subtree
// scans (MarkDown, candidate collection), and interval tests all read
// consecutive slab entries instead of chasing per-vertex edge maps.
//
// order, kidOff, and kids are rank-indexed (rank = pre-order position);
// pre and post are UniqID-indexed with -1 marking vertices outside the
// tree at build time (detached, or added and not yet attached). The
// children of order[r] are kids[kidOff[r]:kidOff[r+1]], in sibling order.
type topoSlab struct {
	order  []*Vertex
	kids   []*Vertex
	kidOff []int32
	pre    []int32
	post   []int32
}

// Graph is the resource graph store. Build it with AddVertex/AddEdge (or
// the grug package), then Finalize before matching.
//
// A finalized Graph is safe for concurrent use: the topology (vertices,
// edges, paths, status bits) is read-mostly and guarded by an RWMutex —
// lookups and traversals take the reader side, while structural mutations
// (Attach, Detach, MarkDown, MarkUp) take the writer side and end by
// republishing the immutable topo slab. Allocation state lives in the
// per-vertex planners, which carry their own locks, so concurrent matches
// only serialize where they touch the same pool.
type Graph struct {
	mu      sync.RWMutex
	base    int64
	horizon int64

	vertices []*Vertex
	vslab    []Vertex          // current AddVertex block (fixed capacity)
	pslab    []planner.Planner // Finalize-time contiguous planner slab
	nextUniq int64
	perType  map[string]int64 // next auto ID per resource type
	types    *intern.Table    // resource type name -> dense TypeID

	// topo is the published containment slab; nil until Finalize.
	// Structural mutators rebuild and restore it under the writer lock;
	// readers load it once and iterate immutable arrays.
	topo atomic.Pointer[topoSlab]

	roots     map[string]*Vertex // subsystem -> root
	byPath    map[string]*Vertex // containment path -> vertex
	subsys    map[string]bool
	prune     PruneSpec
	finalized bool

	// multiParent records containment-link violations observed during
	// construction (a vertex offered a second parent); Finalize reports
	// them, matching the diagnostics of the edge-map representation.
	multiParent []*Vertex

	// Capacity-change sink (see delta.go). Atomic so the no-sink check on
	// publish hot paths (one delta per vertex on Cancel/Release) is a
	// single load, and registration never contends with topology reads.
	deltaSink atomic.Pointer[func(Delta)]

	// MVCC epoch state (see epoch.go). epoch is the current published
	// snapshot; epochMu guards the pending-transition bookkeeping below.
	// Lock order: g.mu (either side) before epochMu, never the reverse.
	epoch         atomic.Pointer[Epoch]
	epochMu       sync.Mutex
	epochDirty    []*Vertex // vertices to re-snapshot next transition
	epochAll      bool      // structural change: rebuild every chunk
	epochBatch    int       // open BeginEpochBatch nesting depth
	pendingDeltas []Delta   // deltas buffered until the next publication

	// flatSnaps dedups epoch snapshots of span-free planners by pool
	// size: at rest almost every vertex is flat, so an epoch holds
	// O(distinct pool sizes) snapshot objects instead of one per vertex.
	// Guarded by epochMu; entries are immutable and never invalidated
	// (base and horizon are fixed per graph).
	flatSnaps map[int64]*planner.Snapshot
}

// NewGraph creates an empty store whose planners cover times in
// [base, base+horizon).
func NewGraph(base, horizon int64) *Graph {
	return &Graph{
		base:    base,
		horizon: horizon,
		perType: make(map[string]int64),
		types:   intern.NewTable(),
		roots:   make(map[string]*Vertex),
		byPath:  make(map[string]*Vertex),
		subsys:  make(map[string]bool),
		prune:   make(PruneSpec),
	}
}

// Base returns the planners' first schedulable time.
func (g *Graph) Base() int64 { return g.base }

// Horizon returns the planners' schedulable duration.
func (g *Graph) Horizon() int64 { return g.horizon }

// Types returns the graph's resource type intern table. Every vertex's
// TypeID is assigned from it, and jobspecs compiled for matching
// against this graph must intern their types through it. The table is
// self-locking and never shrinks.
func (g *Graph) Types() *intern.Table { return g.types }

// UniqBound returns the exclusive upper bound of assigned vertex
// UniqIDs: every vertex satisfies 0 <= UniqID < UniqBound. The match
// kernel sizes its per-vertex scratch arrays with it. Callers must hold
// the reader lock (RLock) — the traverser reads it at the start of each
// match attempt, after taking the lock it holds for the whole walk.
func (g *Graph) UniqBound() int64 { return g.nextUniq }

// RLock takes the store's reader lock. Use it to bracket a multi-step
// sequence of topology reads that must observe a consistent graph — the
// traverser holds it for the duration of one match attempt so concurrent
// MarkDown/Attach/Detach cannot mutate the tree mid-walk. Single-call
// accessors (ByPath, Vertices, ...) lock themselves and must not be called
// while holding it.
func (g *Graph) RLock() { g.mu.RLock() }

// RUnlock releases the reader lock taken by RLock.
func (g *Graph) RUnlock() { g.mu.RUnlock() }

// SetPruneSpec installs the pruning-filter configuration. It must be called
// before Finalize.
func (g *Graph) SetPruneSpec(spec PruneSpec) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.finalized {
		return fmt.Errorf("%w: prune spec must be set before Finalize", ErrInvalid)
	}
	g.prune = spec
	return nil
}

// AddVertex creates a pool vertex. id < 0 assigns the next per-type ID.
// size < 1 is rejected.
func (g *Graph) AddVertex(typ string, id, size int64) (*Vertex, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if typ == "" || size < 1 {
		return nil, fmt.Errorf("%w: type=%q size=%d", ErrInvalid, typ, size)
	}
	if id < 0 {
		id = g.perType[typ]
	}
	if id >= g.perType[typ] {
		g.perType[typ] = id + 1
	}
	// Carve the vertex out of the current slab block. Blocks have fixed
	// capacity and are never reallocated, so &g.vslab[i] stays valid.
	if len(g.vslab) == cap(g.vslab) {
		g.vslab = make([]Vertex, 0, vertexBlock)
	}
	g.vslab = append(g.vslab, Vertex{
		UniqID: g.nextUniq,
		Type:   typ,
		TypeID: g.types.ID(typ),
		ID:     id,
		Name:   fmt.Sprintf("%s%d", typ, id),
		Size:   size,
		graph:  g,
	})
	v := &g.vslab[len(g.vslab)-1]
	g.nextUniq++
	g.vertices = append(g.vertices, v)
	return v, nil
}

// MustAddVertex is AddVertex but panics on error; for tests and static
// construction.
func (g *Graph) MustAddVertex(typ string, id, size int64) *Vertex {
	v, err := g.AddVertex(typ, id, size)
	if err != nil {
		panic(err)
	}
	return v
}

// AddEdge creates a directed edge in a subsystem. Containment edges
// (either direction of the contains/in pair) are interpreted as tree
// links; overlay subsystems store Edge values.
func (g *Graph) AddEdge(from, to *Vertex, subsystem, edgeType string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addEdge(from, to, subsystem, edgeType)
}

// addEdge is AddEdge without locking; callers hold g.mu.
func (g *Graph) addEdge(from, to *Vertex, subsystem, edgeType string) error {
	if from == nil || to == nil || subsystem == "" {
		return fmt.Errorf("%w: bad edge", ErrInvalid)
	}
	if from.graph != g || to.graph != g {
		return fmt.Errorf("%w: edge endpoints from another graph", ErrInvalid)
	}
	g.subsys[subsystem] = true
	if subsystem == Containment {
		// Map the conventional edge pair onto the intrusive tree: a
		// contains-typed (or untyped) edge links from→to, the
		// reciprocal in-typed edge links to→from. Re-stating an
		// existing link (loaders emit both directions) is a no-op; a
		// second distinct parent is recorded for Finalize to report.
		parent, child := from, to
		if edgeType == EdgeIn {
			parent, child = to, from
		}
		if child.parent == parent {
			return nil
		}
		if child.parent != nil {
			g.multiParent = append(g.multiParent, child)
			return nil
		}
		parent.linkChild(child)
		return nil
	}
	e := &Edge{From: from, To: to, Subsystem: subsystem, Type: edgeType}
	from.overlay.Store(overlayAppend(from.overlay.Load(), subsystem, e, true))
	to.overlay.Store(overlayAppend(to.overlay.Load(), subsystem, e, false))
	return nil
}

// overlayAppend returns a fresh overlay with e appended to the outgoing
// (out=true) or incoming adjacency of sub; the input overlay and its
// slices are left untouched for concurrent lock-free readers.
func overlayAppend(ov *overlayEdges, sub string, e *Edge, out bool) *overlayEdges {
	no := &overlayEdges{out: copyEdgeMap(nil), in: copyEdgeMap(nil)}
	if ov != nil {
		no.out = copyEdgeMap(ov.out)
		no.in = copyEdgeMap(ov.in)
	}
	m := no.in
	if out {
		m = no.out
	}
	old := m[sub]
	ns := make([]*Edge, len(old), len(old)+1)
	copy(ns, old)
	m[sub] = append(ns, e)
	return no
}

// copyEdgeMap returns a fresh map sharing m's slices.
func copyEdgeMap(m map[string][]*Edge) map[string][]*Edge {
	nm := make(map[string][]*Edge, len(m)+1)
	for k, s := range m {
		nm[k] = s
	}
	return nm
}

// AddContainment links parent and child in the containment subsystem with
// the conventional contains/in edge pair.
func (g *Graph) AddContainment(parent, child *Vertex) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addContainment(parent, child)
}

// addContainment is AddContainment without locking; callers hold g.mu.
func (g *Graph) addContainment(parent, child *Vertex) error {
	if child.parent != nil {
		return fmt.Errorf("%w: %s already has a containment parent", ErrInvalid, child.Name)
	}
	if parent == nil || parent.graph != g || child.graph != g {
		return fmt.Errorf("%w: bad edge", ErrInvalid)
	}
	g.subsys[Containment] = true
	parent.linkChild(child)
	return nil
}

// Subsystems returns the subsystem names present in the graph, sorted.
func (g *Graph) Subsystems() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.subsys))
	for s := range g.subsys {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Root returns the root vertex of a subsystem (set by Finalize for
// containment, or explicitly by SetRoot).
func (g *Graph) Root(subsystem string) *Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.roots[subsystem]
}

// SetRoot declares the root of a non-containment subsystem.
func (g *Graph) SetRoot(subsystem string, v *Vertex) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.roots[subsystem] = v
}

// Vertices returns all vertices in creation order. The slice is live; do
// not modify.
func (g *Graph) Vertices() []*Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.vertices
}

// Len returns the vertex count.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vertices)
}

// ByPath resolves a containment path such as "/cluster0/rack1/node3".
func (g *Graph) ByPath(path string) *Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.byPath[path]
}

// byPathLocked resolves a containment path; callers hold g.mu.
func (g *Graph) byPathLocked(path string) *Vertex { return g.byPath[path] }

// ByType returns all vertices of the given type, in creation order.
func (g *Graph) ByType(typ string) []*Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Vertex
	for _, v := range g.vertices {
		if v.Type == typ {
			out = append(out, v)
		}
	}
	return out
}

// Finalize validates the containment tree, computes paths and subtree
// aggregates, creates per-vertex planners (carved from one contiguous
// slab), installs pruning filters per the PruneSpec, and publishes the
// pre-order topo slab. It must be called exactly once after construction.
func (g *Graph) Finalize() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.finalized {
		return fmt.Errorf("%w: already finalized", ErrInvalid)
	}
	if len(g.vertices) == 0 {
		return fmt.Errorf("%w: empty graph", ErrInvalid)
	}
	if len(g.multiParent) > 0 {
		return fmt.Errorf("%w: %s has multiple containment parents", ErrInvalid, g.multiParent[0].Name)
	}
	// Identify the containment root: the unique parentless vertex.
	var root *Vertex
	for _, v := range g.vertices {
		if v.parent == nil {
			if root != nil {
				return fmt.Errorf("%w: multiple containment roots (%s, %s)", ErrInvalid, root.Name, v.Name)
			}
			root = v
		}
	}
	if root == nil {
		return fmt.Errorf("%w: no containment root (cycle?)", ErrInvalid)
	}
	g.roots[Containment] = root
	g.subsys[Containment] = true

	// One contiguous planner slab for the whole build; Attach-time grafts
	// fall back to individual allocation.
	g.pslab = make([]planner.Planner, len(g.vertices))
	seen := make(map[int64]bool, len(g.vertices))
	err := g.finalizeSubtree(root, "", seen)
	g.pslab = nil
	if err != nil {
		return err
	}
	if len(seen) != len(g.vertices) {
		return fmt.Errorf("%w: %d vertices unreachable from containment root", ErrInvalid, len(g.vertices)-len(seen))
	}
	// Filters are installed with the subtree's structural capacity; any
	// vertex loaded already down (e.g. from a JGF/GraphML dump of a
	// degraded system) must have its units excluded from ancestor
	// aggregates, exactly as a live MarkDown would have done.
	for _, v := range g.vertices {
		if v.Status == StatusDown {
			if err := g.propagateStatusDelta(v.Parent(), map[string]int64{v.Type: -v.Size}); err != nil {
				return err
			}
		}
	}
	g.buildTopoLocked()
	g.finalized = true
	g.bootstrapEpochLocked()
	return nil
}

// buildTopoLocked compiles the intrusive tree links into a fresh immutable
// topo slab — pre-order vertex array, grouped child array, and interval
// labels — and publishes it. It also refreshes the per-vertex treeIn/
// treeOut mirror the O(1) InSubtreeOf test reads. Finalize, Attach, and
// Detach call it under the writer lock.
func (g *Graph) buildTopoLocked() {
	root := g.roots[Containment]
	if root == nil {
		return
	}
	n := len(g.vertices)
	ts := &topoSlab{
		order:  make([]*Vertex, 0, n),
		kids:   make([]*Vertex, 0, n),
		kidOff: make([]int32, 1, n+1),
		pre:    make([]int32, g.nextUniq),
		post:   make([]int32, g.nextUniq),
	}
	for i := range ts.pre {
		ts.pre[i] = -1
	}
	var walk func(v *Vertex)
	walk = func(v *Vertex) {
		r := int32(len(ts.order))
		ts.order = append(ts.order, v)
		ts.pre[v.UniqID] = r
		v.treeIn = r
		// Children are appended at their parent's visit, and ranks are
		// visited in increasing order, so kids stays grouped by rank.
		for c := v.kidHead; c != nil; c = c.nextSib {
			ts.kids = append(ts.kids, c)
		}
		ts.kidOff = append(ts.kidOff, int32(len(ts.kids)))
		for c := v.kidHead; c != nil; c = c.nextSib {
			walk(c)
		}
		end := int32(len(ts.order))
		ts.post[v.UniqID] = end
		v.treeOut = end
	}
	walk(root)
	g.topo.Store(ts)
}

// MarkDown marks the containment subtree rooted at v down and subtracts the
// transitioned capacity from every ancestor pruning filter, mirroring the
// scheduler-driven filter update (paper §3.4, §5.5). Vertices already down
// contribute nothing, so nested failure domains never double-count. It
// returns the per-type units newly taken out of service.
//
// Callers must first release any allocations whose grants lie in the
// subtree (see traverser.Evict); live spans there would leave an ancestor
// filter with less headroom than the capacity being removed.
func (g *Graph) MarkDown(v *Vertex) (map[string]int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delta, err := g.setSubtreeStatus(v, StatusDown)
	if err == nil && len(delta) > 0 {
		g.publishStructural(v)
		g.publishEpochGraphLocked()
	}
	return delta, err
}

// MarkUp marks the containment subtree rooted at v up and re-adds the
// transitioned capacity to every ancestor pruning filter. It is the inverse
// of MarkDown; repairing a vertex repairs everything it contains. It
// returns the per-type units newly returned to service.
func (g *Graph) MarkUp(v *Vertex) (map[string]int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delta, err := g.setSubtreeStatus(v, StatusUp)
	if err == nil && len(delta) > 0 {
		g.publishStructural(v)
		g.publishEpochGraphLocked()
	}
	return delta, err
}

// setSubtreeStatus flips every vertex in v's subtree whose status differs
// from want and propagates the net capacity change to ancestor filters.
// The subtree walk is a sequential scan of the topo slab's pre-order
// interval — the whole failure domain sits in consecutive entries.
func (g *Graph) setSubtreeStatus(v *Vertex, want Status) (map[string]int64, error) {
	if !g.finalized {
		return nil, ErrNotFinalized
	}
	if v == nil || v.graph != g {
		return nil, fmt.Errorf("%w: foreign or nil vertex", ErrInvalid)
	}
	delta := make(map[string]int64)
	var flipped []*Vertex
	flip := func(x *Vertex) {
		if x.Status != want {
			x.Status = want
			delta[x.Type] += x.Size
			flipped = append(flipped, x)
		}
	}
	if ts := g.topo.Load(); ts != nil && v.UniqID < int64(len(ts.pre)) && ts.pre[v.UniqID] >= 0 {
		for i := ts.pre[v.UniqID]; i < ts.post[v.UniqID]; i++ {
			flip(ts.order[i])
		}
	} else {
		// Vertex outside the published slab (e.g. grafted but not yet
		// attached): fall back to the intrusive links.
		var walk func(x *Vertex)
		walk = func(x *Vertex) {
			flip(x)
			for c := x.kidHead; c != nil; c = c.nextSib {
				walk(c)
			}
		}
		walk(v)
	}
	if len(delta) == 0 {
		return delta, nil // already in the requested state
	}
	sign := int64(1)
	if want == StatusDown {
		sign = -1
	}
	// Propagate each transitioned vertex individually so filters interior
	// to the subtree (a node's own core aggregate, a rack's node
	// aggregate) stay consistent too. This makes nested transitions
	// compose — MarkDown(node) then MarkUp(rack) restores the rack's own
	// filter exactly — and matches what Finalize computes when a dump of
	// a degraded system is reloaded.
	for _, x := range flipped {
		g.MarkEpochDirty(x)
		if err := g.propagateStatusDelta(x.Parent(), map[string]int64{x.Type: sign * x.Size}); err != nil {
			return nil, err
		}
	}
	return delta, nil
}

// propagateStatusDelta applies a per-type capacity change to every filter on
// the ancestor chain starting at a (inclusive). Types a filter does not
// track are skipped.
func (g *Graph) propagateStatusDelta(a *Vertex, delta map[string]int64) error {
	for ; a != nil; a = a.Parent() {
		if a.filter == nil {
			continue
		}
		for _, rt := range a.filter.Types() {
			if n := delta[rt]; n != 0 {
				if err := a.filter.Update(rt, n); err != nil {
					return fmt.Errorf("resgraph: status update at %s: %w", a.Name, err)
				}
				g.MarkEpochDirty(a)
			}
		}
	}
	return nil
}

// newPlanner returns an initialized planner for v, carved from the
// Finalize slab when one is open, otherwise individually allocated
// (Attach-time grafts).
func (g *Graph) newPlanner(v *Vertex) (*planner.Planner, error) {
	if len(g.pslab) > 0 {
		p := &g.pslab[0]
		g.pslab = g.pslab[1:]
		if err := planner.Init(p, g.base, g.horizon, v.Size, v.Type); err != nil {
			return nil, err
		}
		return p, nil
	}
	return planner.New(g.base, g.horizon, v.Size, v.Type)
}

// finalizeSubtree computes the path, planner, aggregates, and filter for v
// and its containment descendants. Leaves store no aggregate map — their
// trivial singleton aggregate is synthesized on demand — so the per-vertex
// resting cost of the (majority) leaf population stays flat.
func (g *Graph) finalizeSubtree(v *Vertex, parentPath string, seen map[int64]bool) error {
	if seen[v.UniqID] {
		return fmt.Errorf("%w: containment cycle through %s", ErrInvalid, v.Name)
	}
	seen[v.UniqID] = true
	path := parentPath + "/" + v.Name
	v.path = path
	g.byPath[path] = v
	if v.plan == nil {
		p, err := g.newPlanner(v)
		if err != nil {
			return fmt.Errorf("planner for %s: %w", v.Name, err)
		}
		v.plan = p
	}
	if v.kidHead == nil {
		return nil // leaf: no aggregate map, no filter
	}
	v.agg = map[string]int64{v.Type: v.Size}
	for c := v.kidHead; c != nil; c = c.nextSib {
		if err := g.finalizeSubtree(c, path, seen); err != nil {
			return err
		}
		if c.agg != nil {
			for t, n := range c.agg {
				v.agg[t] += n
			}
		} else {
			v.agg[c.Type] += c.Size
		}
	}
	return g.installFilter(v)
}

// installFilter installs a pruning filter on v if the PruneSpec selects its
// type, tracking the configured low types present in v's subtree.
func (g *Graph) installFilter(v *Vertex) error {
	if v.kidHead == nil {
		return nil // leaves carry no filters
	}
	tracked := make(map[string]int64)
	for _, key := range []string{v.Type, ALL} {
		for _, lo := range g.prune[key] {
			if n := v.agg[lo]; n > 0 && lo != v.Type {
				tracked[lo] = n
			}
		}
	}
	if len(tracked) == 0 {
		v.filter = nil
		return nil
	}
	m, err := planner.NewMulti(g.base, g.horizon, tracked)
	if err != nil {
		return fmt.Errorf("filter for %s: %w", v.Name, err)
	}
	// Index member planners by interned type ID so the match kernel can
	// resolve them without string lookups.
	m.IndexTypes(g.types.ID)
	v.filter = m
	return nil
}

// Attach grafts a subtree built after Finalize onto parent (elasticity,
// paper §5.5): sub and its descendants get paths, planners, aggregates,
// and filters, and every ancestor's aggregates and filters grow to match.
func (g *Graph) Attach(parent, sub *Vertex) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.finalized {
		return ErrNotFinalized
	}
	if parent.graph != g || sub.graph != g {
		return fmt.Errorf("%w: foreign vertex", ErrInvalid)
	}
	if parent.path == "" {
		return fmt.Errorf("%w: parent %s not attached", ErrInvalid, parent.Name)
	}
	if sub.parent != nil {
		return fmt.Errorf("%w: %s already attached", ErrInvalid, sub.Name)
	}
	if err := g.addContainment(parent, sub); err != nil {
		return err
	}
	seen := make(map[int64]bool)
	if err := g.finalizeSubtree(sub, parent.path, seen); err != nil {
		return err
	}
	// Propagate aggregate growth to ancestors and their filters. A parent
	// that was a leaf becomes interior and gains its aggregate map here.
	subAgg := sub.Aggregates()
	for a := parent; a != nil; a = a.Parent() {
		if a.agg == nil {
			a.agg = map[string]int64{a.Type: a.Size}
		}
		for t, n := range subAgg {
			a.agg[t] += n
		}
		if err := g.growFilter(a, subAgg); err != nil {
			return err
		}
	}
	g.buildTopoLocked()
	g.publishStructural(parent)
	g.markEpochAllLocked()
	g.publishEpochGraphLocked()
	return nil
}

// growFilter updates (or installs) a's filter after its subtree gained the
// given aggregates.
func (g *Graph) growFilter(a *Vertex, delta map[string]int64) error {
	if a.filter == nil {
		// Install a filter if the spec now selects this vertex.
		return g.installFilter(a)
	}
	for _, key := range []string{a.Type, ALL} {
		for _, lo := range g.prune[key] {
			if n := delta[lo]; n > 0 && lo != a.Type {
				if err := a.filter.Update(lo, n); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Detach prunes the subtree rooted at v from the graph (elasticity). It
// fails with ErrBusy if any planner in the subtree holds live spans. The
// detached subtree keeps its intrusive links, so it stays enumerable, but
// it leaves the topo slab (and the path index) on the rebuild below.
func (g *Graph) Detach(v *Vertex) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.finalized {
		return ErrNotFinalized
	}
	parent := v.Parent()
	if parent == nil {
		return fmt.Errorf("%w: cannot detach the root", ErrInvalid)
	}
	var busy error
	var check func(x *Vertex)
	check = func(x *Vertex) {
		if busy != nil {
			return
		}
		if x.plan != nil && x.plan.SpanCount() > 0 {
			busy = fmt.Errorf("%w: %s has %d live spans", ErrBusy, x.Name, x.plan.SpanCount())
			return
		}
		for c := x.kidHead; c != nil; c = c.nextSib {
			check(c)
		}
	}
	check(v)
	if busy != nil {
		return busy
	}
	// Shrink ancestor aggregates and filters.
	vAgg := v.Aggregates()
	for a := parent; a != nil; a = a.Parent() {
		for t, n := range vAgg {
			a.agg[t] -= n
		}
		if a.filter != nil {
			for _, rt := range a.filter.Types() {
				if n := vAgg[rt]; n > 0 {
					if err := a.filter.Update(rt, -n); err != nil {
						return err
					}
				}
			}
		}
	}
	parent.unlinkChild(v)
	// Drop subtree path index entries and detach vertices.
	var drop func(x *Vertex)
	drop = func(x *Vertex) {
		delete(g.byPath, x.path)
		x.path = ""
		for c := x.kidHead; c != nil; c = c.nextSib {
			drop(c)
		}
		x.graph = nil
	}
	drop(v)
	kept := g.vertices[:0]
	for _, x := range g.vertices {
		if x.graph == g {
			kept = append(kept, x)
		}
	}
	g.vertices = kept
	g.buildTopoLocked()
	g.publishStructural(parent)
	g.markEpochAllLocked()
	g.publishEpochGraphLocked()
	return nil
}

// Finalized reports whether Finalize succeeded.
func (g *Graph) Finalized() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.finalized
}

// Stats summarizes the store: vertex counts per type and filter count.
func (g *Graph) Stats() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	counts := make(map[string]int)
	filters := 0
	for _, v := range g.vertices {
		counts[v.Type]++
		if v.filter != nil {
			filters++
		}
	}
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	var b strings.Builder
	fmt.Fprintf(&b, "%d vertices (", len(g.vertices))
	for i, t := range types {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", t, counts[t])
	}
	fmt.Fprintf(&b, "), %d pruning filters", filters)
	return b.String()
}
