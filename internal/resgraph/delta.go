package resgraph

// This file defines the typed resource deltas the store publishes to an
// optional sink whenever schedulable capacity changes: allocation or
// reservation release (DeltaFree), consumption (DeltaClaim), and topology
// or status changes (DeltaStructural). An event-driven scheduler keeps a
// wakeup index over these deltas so a cycle re-attempts only the jobs
// whose blocking signature intersects something that actually changed,
// instead of re-planning the whole queue (see internal/sched).

// DeltaKind discriminates resource deltas.
type DeltaKind uint8

const (
	// DeltaFree reports capacity released on one vertex: a cancelled
	// allocation or reservation, an eviction, or a malleable shrink.
	DeltaFree DeltaKind = iota
	// DeltaClaim reports capacity consumed on one vertex by a new
	// allocation or reservation. Claims cannot unblock a previously
	// failing match, but downstream consumers (monitoring, reservation
	// invalidation heuristics) may track them.
	DeltaClaim
	// DeltaStructural reports a topology or status change (node up/down,
	// attach/detach). Subtree interval labels are renumbered by such
	// changes, so standing signatures built from them are void:
	// subscribers must conservatively wake everything.
	DeltaStructural
)

func (k DeltaKind) String() string {
	switch k {
	case DeltaFree:
		return "free"
	case DeltaClaim:
		return "claim"
	case DeltaStructural:
		return "structural"
	default:
		return "unknown"
	}
}

// Delta is one typed capacity-change event. For DeltaFree/DeltaClaim the
// interval is the touched vertex's containment pre-order interval, TypeID
// its interned resource type, Amount the units, and [From, To) the time
// window of the released or claimed span. For DeltaStructural the interval
// is the changed subtree and the remaining fields are zero.
type Delta struct {
	Kind            DeltaKind
	TreeIn, TreeOut int32
	TypeID          int32
	Amount          int64
	From, To        int64
}

// TreeInterval returns v's containment pre-order interval [in, out):
// u contains w exactly when u.in <= w.in < u.out. Valid after Finalize.
func (v *Vertex) TreeInterval() (in, out int32) { return v.treeIn, v.treeOut }

// SetDeltaSink registers fn to observe every capacity delta the store (and
// the traverser above it) publishes. A single sink is supported; passing
// nil unsubscribes. The sink is called synchronously from mutating
// operations — possibly while graph locks are held — so it must be fast
// and must not call back into the graph.
func (g *Graph) SetDeltaSink(fn func(Delta)) {
	if fn == nil {
		g.deltaSink.Store(nil)
		return
	}
	g.deltaSink.Store(&fn)
}

// DeltaSink returns the currently registered sink (nil if none). Callers
// that need to observe the stream without displacing an existing
// subscriber read the current sink, then register a wrapper that calls
// both (see fluxion.TapDeltas).
func (g *Graph) DeltaSink() func(Delta) {
	if sink := g.deltaSink.Load(); sink != nil {
		return *sink
	}
	return nil
}

// publishDelta forwards d to the registered sink, if any. The sink is held
// behind an atomic pointer so the common no-sink case costs one load on
// hot paths (Cancel/Release publish one delta per allocated vertex).
//
// Once the graph publishes MVCC epochs (after Finalize), deltas are not
// delivered immediately: they buffer until the next epoch transition and
// flush with it, in order, so the sink observes exactly one consistent
// boundary per transition — the wakeup index and the WAL never see a
// capacity change that readers of the current epoch cannot.
func (g *Graph) publishDelta(d Delta) {
	sink := g.deltaSink.Load()
	if sink == nil {
		return
	}
	if g.epoch.Load() != nil {
		g.epochMu.Lock()
		g.pendingDeltas = append(g.pendingDeltas, d)
		g.epochMu.Unlock()
		return
	}
	(*sink)(d)
}

// PublishSpanDelta publishes a free or claim of units of v's type over
// [from, to). The traverser calls this when allocation spans are installed
// or removed outside the store's own mutators.
func (g *Graph) PublishSpanDelta(kind DeltaKind, v *Vertex, units, from, to int64) {
	g.publishDelta(Delta{
		Kind:   kind,
		TreeIn: v.treeIn, TreeOut: v.treeOut,
		TypeID: v.TypeID,
		Amount: units,
		From:   from, To: to,
	})
}

// publishStructural publishes a structural delta for the subtree at v.
func (g *Graph) publishStructural(v *Vertex) {
	g.publishDelta(Delta{Kind: DeltaStructural, TreeIn: v.treeIn, TreeOut: v.treeOut})
}
