// Package resgraph implements Fluxion's graph-based resource store (paper
// §3): a directed graph whose vertices are resource pools and whose typed
// edges, grouped into named subsystems, express relationships such as
// containment or power feeds.
//
// Each vertex carries a Planner tracking its pool's availability over time,
// and selected vertices carry a PlannerMulti pruning filter summarizing the
// aggregate availability of chosen lower-level resource types in their
// containment subtree (paper §3.4). The containment subsystem must form a
// tree; other subsystems may form arbitrary overlays sharing the same
// vertices (paper §3.3, graph filtering).
//
// The resting representation is struct-of-arrays: the containment tree is
// published as one immutable slab of parallel arrays in pre-order (see
// topoSlab in graph.go), so child iteration, subtree status flips, and
// candidate scans are sequential reads instead of pointer chases through
// per-vertex edge maps. Vertices keep only intrusive sibling links for
// construction and elasticity; Edge values for the containment subsystem
// are synthesized on demand for export paths.
package resgraph

import (
	"sync/atomic"

	"fluxion/internal/planner"
)

// Containment is the default subsystem name: the physical containment
// hierarchy every scheduler walks.
const Containment = "containment"

// Common edge type names.
const (
	EdgeContains = "contains" // parent -> child in containment
	EdgeIn       = "in"       // child -> parent in containment
)

// Status describes whether a vertex is schedulable.
type Status int

const (
	// StatusUp marks a schedulable vertex.
	StatusUp Status = iota
	// StatusDown excludes the vertex (and, for containment, its
	// subtree) from matching.
	StatusDown
)

func (s Status) String() string {
	if s == StatusDown {
		return "down"
	}
	return "up"
}

// Vertex is a resource pool: Size interchangeable units of one Type.
// Singleton resources (a core, a node) are pools of size one.
type Vertex struct {
	// UniqID is the graph-wide unique identifier, assigned at AddVertex
	// in creation order. It indexes the graph's uniq-indexed slabs.
	UniqID int64
	// ID is the logical per-type identifier (e.g. node 37). Match
	// policies such as highest-ID-first order candidates by it.
	ID int64
	// Size is the pool size in schedulable units (1 for singletons,
	// e.g. 16 for a 16 GB memory pool).
	Size int64
	// Type is the resource type name ("cluster", "rack", "node",
	// "core", "memory", ...).
	Type string
	// Name is the display name, e.g. "node37".
	Name string
	// Unit optionally names the unit ("GB").
	Unit string
	// Properties holds free-form labels, e.g. "perfclass" -> "3" for
	// variation-aware scheduling (paper §5.2). Nil until the first
	// SetProperty.
	Properties map[string]string
	// Status gates schedulability.
	Status Status

	// path is the containment path from the root, e.g.
	// "/cluster0/rack2/node37"; empty until Finalize (or Attach) and
	// after Detach. The string is shared with the graph's byPath index
	// key, so it costs one header, not a copy.
	path string

	plan   *planner.Planner
	filter *planner.Multi
	agg    map[string]int64 // containment-subtree unit totals per type; nil on leaves

	// Intrusive containment-tree links, guarded by the graph's writer
	// lock. They are the authoritative builder topology; Finalize,
	// Attach, and Detach compile them into the published topo slab that
	// readers iterate. Hot paths never chase these.
	parent  *Vertex
	kidHead *Vertex
	kidTail *Vertex
	nextSib *Vertex

	// overlay publishes the vertex's non-containment adjacency for
	// lock-free readers; nil while the vertex participates in no overlay
	// subsystem, which at rest is nearly all of them. Post-Finalize
	// mutations are copy-on-write.
	overlay atomic.Pointer[overlayEdges]

	// specClaims counts units tentatively claimed by in-flight
	// speculative match attempts that have not yet committed spans into
	// the planner. Speculating traversers subtract it from planner
	// availability so concurrent first-fit searches diverge onto
	// different pools instead of all racing for the same one.
	specClaims atomic.Int64

	graph *Graph

	// TypeID is Type interned in the graph's type table (Graph.Types),
	// assigned at AddVertex. The match kernel compares it instead of
	// Type so type checks are integer compares. (The 4-byte fields sit
	// together at the tail so the struct packs without internal padding
	// — govet's fieldalignment check enforces this.)
	TypeID int32

	// treeIn/treeOut are pre-order interval labels over the containment
	// tree, maintained by Finalize, Attach, and Detach: u contains v
	// exactly when treeIn[u] <= treeIn[v] < treeOut[u]. treeIn is also
	// the vertex's rank in the published topo slab. The match kernel
	// uses them for O(1) subtree tests when invalidating cached
	// candidate lists.
	treeIn, treeOut int32

	// epochDirty marks the vertex as queued for re-snapshot in the next
	// epoch transition; guarded by the graph's epochMu (see epoch.go).
	epochDirty bool
}

// Edge is a directed, typed relationship between two vertices within one
// named subsystem. Containment edges are synthesized on demand from the
// tree links; overlay edges are stored.
type Edge struct {
	From, To  *Vertex
	Subsystem string
	Type      string
}

// overlayEdges is an immutable adjacency snapshot for non-containment
// subsystems: once published in Vertex.overlay, neither the maps nor the
// slices they hold are ever mutated again (post-Finalize mutations go
// through copy-on-write in graph.go).
type overlayEdges struct {
	out map[string][]*Edge
	in  map[string][]*Edge
}

// Attached reports whether the vertex is currently part of its graph's
// containment tree (false after Detach).
func (v *Vertex) Attached() bool { return v.graph != nil }

// Planner returns the vertex's availability planner (nil until the graph
// is finalized).
func (v *Vertex) Planner() *planner.Planner { return v.plan }

// Filter returns the vertex's pruning filter, or nil if none is installed.
func (v *Vertex) Filter() *planner.Multi { return v.filter }

// Aggregates returns the containment-subtree unit totals per resource type
// (including the vertex itself). Interior vertices return their live
// aggregate map (callers must not modify it); leaves, which store no map,
// synthesize their trivial singleton aggregate.
func (v *Vertex) Aggregates() map[string]int64 {
	if v.agg != nil {
		return v.agg
	}
	return map[string]int64{v.Type: v.Size}
}

// aggregates returns the per-type subtree totals without synthesizing a
// map for leaves; graph-internal accounting iterates the result.
func (v *Vertex) aggregates() map[string]int64 { return v.Aggregates() }

// Path returns the vertex's containment path.
func (v *Vertex) Path() string { return v.path }

// String returns the vertex's containment path, or its name if the graph
// is not finalized yet.
func (v *Vertex) String() string {
	if v.path != "" {
		return v.path
	}
	return v.Name
}

// topoKids returns the vertex's containment children as a shared slice
// view into the published topo slab, and whether the slab covers the
// vertex. The view is immutable and safe to read lock-free.
func (v *Vertex) topoKids() ([]*Vertex, bool) {
	g := v.graph
	if g == nil {
		return nil, false
	}
	ts := g.topo.Load()
	if ts == nil || v.UniqID >= int64(len(ts.pre)) {
		return nil, false
	}
	r := ts.pre[v.UniqID]
	if r < 0 {
		return nil, false
	}
	return ts.kids[ts.kidOff[r]:ts.kidOff[r+1]], true
}

// Kids returns v's children in the subsystem as a shared, read-only slice.
// For containment on a finalized graph this is a zero-copy view into the
// topo slab — the match kernel's child iteration is a sequential scan of
// one shared array. Vertices outside the slab (pre-Finalize, detached
// subtrees, grafts not yet attached) and overlay subsystems build a fresh
// slice. Callers must not modify the result.
func (v *Vertex) Kids(subsystem string) []*Vertex {
	if subsystem == Containment {
		if kids, ok := v.topoKids(); ok {
			return kids
		}
		var out []*Vertex
		for c := v.kidHead; c != nil; c = c.nextSib {
			out = append(out, c)
		}
		return out
	}
	var out []*Vertex
	if ov := v.overlay.Load(); ov != nil {
		for _, e := range ov.out[subsystem] {
			if e.Type != EdgeIn {
				out = append(out, e.To)
			}
		}
	}
	return out
}

// Children returns the vertices reachable by one downward outgoing edge in
// the given subsystem (reciprocal "in" edges are skipped).
func (v *Vertex) Children(subsystem string) []*Vertex {
	kids := v.Kids(subsystem)
	if len(kids) == 0 {
		return nil
	}
	out := make([]*Vertex, len(kids))
	copy(out, kids)
	return out
}

// EachChild calls fn for every downward child in the subsystem, stopping
// early if fn returns false. For containment it iterates the topo slab
// without allocating.
func (v *Vertex) EachChild(subsystem string, fn func(c *Vertex) bool) {
	if subsystem == Containment {
		if kids, ok := v.topoKids(); ok {
			for _, c := range kids {
				if !fn(c) {
					return
				}
			}
			return
		}
		for c := v.kidHead; c != nil; c = c.nextSib {
			if !fn(c) {
				return
			}
		}
		return
	}
	for _, c := range v.Kids(subsystem) {
		if !fn(c) {
			return
		}
	}
}

// ChildCount returns the number of downward children in the subsystem
// without materializing the slice Children builds.
func (v *Vertex) ChildCount(subsystem string) int {
	if subsystem == Containment {
		if kids, ok := v.topoKids(); ok {
			return len(kids)
		}
		n := 0
		for c := v.kidHead; c != nil; c = c.nextSib {
			n++
		}
		return n
	}
	return len(v.Kids(subsystem))
}

// HasChildren reports whether v has at least one downward child in the
// subsystem — the allocation-free leaf test used by the match kernel.
func (v *Vertex) HasChildren(subsystem string) bool {
	if subsystem == Containment {
		if kids, ok := v.topoKids(); ok {
			return len(kids) > 0
		}
		return v.kidHead != nil
	}
	if ov := v.overlay.Load(); ov != nil {
		for _, e := range ov.out[subsystem] {
			if e.Type != EdgeIn {
				return true
			}
		}
	}
	return false
}

// InSubtreeOf reports whether v lies in the containment subtree rooted
// at root (inclusive), in O(1) via the pre-order interval labels
// maintained by Finalize, Attach, and Detach. Before Finalize all labels
// are zero and the result is meaningless.
func (v *Vertex) InSubtreeOf(root *Vertex) bool {
	return root.treeIn <= v.treeIn && v.treeIn < root.treeOut
}

// Parent returns the vertex's unique containment parent, or nil for roots.
func (v *Vertex) Parent() *Vertex { return v.parent }

// AddSpecClaim adjusts the vertex's speculative-claim counter by delta
// units. Speculating match workers publish positive deltas while they hold
// tentative allocations and negative deltas when those are committed or
// abandoned.
func (v *Vertex) AddSpecClaim(delta int64) { v.specClaims.Add(delta) }

// SpecClaims returns the units currently claimed by in-flight speculative
// match attempts on this vertex.
func (v *Vertex) SpecClaims() int64 { return v.specClaims.Load() }

// InEdges returns the incoming edges in the subsystem. Overlay subsystems
// return the stored slice; containment edges are synthesized from the tree
// links on each call (export/debug paths only — the match kernel iterates
// Kids instead).
func (v *Vertex) InEdges(subsystem string) []*Edge {
	if subsystem != Containment {
		if ov := v.overlay.Load(); ov != nil {
			return ov.in[subsystem]
		}
		return nil
	}
	var out []*Edge
	if p := v.parent; p != nil {
		out = append(out, &Edge{From: p, To: v, Subsystem: Containment, Type: EdgeContains})
	}
	v.EachChild(Containment, func(c *Vertex) bool {
		out = append(out, &Edge{From: c, To: v, Subsystem: Containment, Type: EdgeIn})
		return true
	})
	return out
}

// OutEdges returns the outgoing edges in the subsystem. Overlay subsystems
// return the stored slice; containment edges are synthesized from the tree
// links on each call (export/debug paths only — the match kernel iterates
// Kids instead).
func (v *Vertex) OutEdges(subsystem string) []*Edge {
	if subsystem != Containment {
		if ov := v.overlay.Load(); ov != nil {
			return ov.out[subsystem]
		}
		return nil
	}
	var out []*Edge
	if p := v.parent; p != nil {
		out = append(out, &Edge{From: v, To: p, Subsystem: Containment, Type: EdgeIn})
	}
	v.EachChild(Containment, func(c *Vertex) bool {
		out = append(out, &Edge{From: v, To: c, Subsystem: Containment, Type: EdgeContains})
		return true
	})
	return out
}

// Property returns a property value ("" if absent).
func (v *Vertex) Property(key string) string {
	return v.Properties[key]
}

// SetProperty sets a property value.
func (v *Vertex) SetProperty(key, value string) {
	if v.Properties == nil {
		v.Properties = make(map[string]string)
	}
	v.Properties[key] = value
}

// linkChild appends c to v's intrusive child list; callers hold the
// graph's writer lock and have verified c has no parent.
func (v *Vertex) linkChild(c *Vertex) {
	c.parent = v
	c.nextSib = nil
	if v.kidTail == nil {
		v.kidHead, v.kidTail = c, c
	} else {
		v.kidTail.nextSib = c
		v.kidTail = c
	}
}

// unlinkChild removes c from v's intrusive child list; callers hold the
// graph's writer lock. c's own subtree links stay intact so a detached
// subtree remains enumerable.
func (v *Vertex) unlinkChild(c *Vertex) {
	var prev *Vertex
	for x := v.kidHead; x != nil; x = x.nextSib {
		if x == c {
			if prev == nil {
				v.kidHead = x.nextSib
			} else {
				prev.nextSib = x.nextSib
			}
			if v.kidTail == c {
				v.kidTail = prev
			}
			c.parent = nil
			c.nextSib = nil
			return
		}
		prev = x
	}
}
