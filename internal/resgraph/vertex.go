// Package resgraph implements Fluxion's graph-based resource store (paper
// §3): a directed graph whose vertices are resource pools and whose typed
// edges, grouped into named subsystems, express relationships such as
// containment or power feeds.
//
// Each vertex carries a Planner tracking its pool's availability over time,
// and selected vertices carry a PlannerMulti pruning filter summarizing the
// aggregate availability of chosen lower-level resource types in their
// containment subtree (paper §3.4). The containment subsystem must form a
// tree; other subsystems may form arbitrary overlays sharing the same
// vertices (paper §3.3, graph filtering).
package resgraph

import (
	"fmt"
	"sync/atomic"

	"fluxion/internal/planner"
)

// Containment is the default subsystem name: the physical containment
// hierarchy every scheduler walks.
const Containment = "containment"

// Common edge type names.
const (
	EdgeContains = "contains" // parent -> child in containment
	EdgeIn       = "in"       // child -> parent in containment
)

// Status describes whether a vertex is schedulable.
type Status int

const (
	// StatusUp marks a schedulable vertex.
	StatusUp Status = iota
	// StatusDown excludes the vertex (and, for containment, its
	// subtree) from matching.
	StatusDown
)

func (s Status) String() string {
	if s == StatusDown {
		return "down"
	}
	return "up"
}

// Vertex is a resource pool: Size interchangeable units of one Type.
// Singleton resources (a core, a node) are pools of size one.
type Vertex struct {
	// UniqID is the graph-wide unique identifier, assigned at AddVertex
	// in creation order.
	UniqID int64
	// Type is the resource type name ("cluster", "rack", "node",
	// "core", "memory", ...).
	Type string
	// TypeID is Type interned in the graph's type table (Graph.Types),
	// assigned at AddVertex. The match kernel compares it instead of
	// Type so type checks are integer compares.
	TypeID int32
	// ID is the logical per-type identifier (e.g. node 37). Match
	// policies such as highest-ID-first order candidates by it.
	ID int64
	// Name is the display name, e.g. "node37".
	Name string
	// Size is the pool size in schedulable units (1 for singletons,
	// e.g. 16 for a 16 GB memory pool).
	Size int64
	// Unit optionally names the unit ("GB").
	Unit string
	// Properties holds free-form labels, e.g. "perfclass" -> "3" for
	// variation-aware scheduling (paper §5.2).
	Properties map[string]string
	// Status gates schedulability.
	Status Status

	// Paths maps subsystem name to this vertex's path from that
	// subsystem's root, e.g. "/cluster0/rack2/node37". Only tree-shaped
	// subsystems have paths.
	Paths map[string]string

	plan   *planner.Planner
	filter *planner.Multi
	agg    map[string]int64 // containment-subtree unit totals per type

	out map[string][]*Edge // subsystem -> outgoing edges
	in  map[string][]*Edge // subsystem -> incoming edges

	// view publishes the current adjacency for lock-free readers. After
	// Finalize, edge mutations are copy-on-write (fresh maps and slices)
	// and end by storing a new view; a reader's single atomic load then
	// yields immutable maps it may iterate without any lock. Nil until
	// Finalize (or attach) first publishes it.
	view atomic.Pointer[edgeView]

	// epochDirty marks the vertex as queued for re-snapshot in the next
	// epoch transition; guarded by the graph's epochMu (see epoch.go).
	epochDirty bool

	// specClaims counts units tentatively claimed by in-flight
	// speculative match attempts that have not yet committed spans into
	// the planner. Speculating traversers subtract it from planner
	// availability so concurrent first-fit searches diverge onto
	// different pools instead of all racing for the same one.
	specClaims atomic.Int64

	// treeIn/treeOut are pre-order interval labels over the containment
	// tree, maintained by Finalize and Attach: u contains v exactly when
	// treeIn[u] <= treeIn[v] < treeOut[u]. The match kernel uses them
	// for O(1) subtree tests when invalidating cached candidate lists.
	treeIn, treeOut int32

	graph *Graph
}

// Edge is a directed, typed relationship between two vertices within one
// named subsystem.
type Edge struct {
	From, To  *Vertex
	Subsystem string
	Type      string
}

// edgeView is an immutable adjacency snapshot: once stored in
// Vertex.view, neither the maps nor the slices they hold are ever
// mutated again.
type edgeView struct {
	out map[string][]*Edge
	in  map[string][]*Edge
}

// refreshView publishes the vertex's current adjacency maps as its edge
// view. Callers (graph mutators) hold the graph's writer lock and must
// not mutate the published maps afterwards — post-Finalize edge changes
// go through the copy-on-write helpers in graph.go.
func (v *Vertex) refreshView() {
	v.view.Store(&edgeView{out: v.out, in: v.in})
}

// edges returns the adjacency maps to read from: the published view when
// one exists (safe without the graph lock), else the builder-owned maps
// (pre-Finalize, single-threaded construction).
func (v *Vertex) edges() (out, in map[string][]*Edge) {
	if ev := v.view.Load(); ev != nil {
		return ev.out, ev.in
	}
	return v.out, v.in
}

// Attached reports whether the vertex is currently part of its graph's
// containment tree (false after Detach).
func (v *Vertex) Attached() bool { return v.graph != nil }

// Planner returns the vertex's availability planner (nil until the graph
// is finalized).
func (v *Vertex) Planner() *planner.Planner { return v.plan }

// Filter returns the vertex's pruning filter, or nil if none is installed.
func (v *Vertex) Filter() *planner.Multi { return v.filter }

// Aggregates returns the containment-subtree unit totals per resource type
// (including the vertex itself). The map is live; callers must not modify
// it.
func (v *Vertex) Aggregates() map[string]int64 { return v.agg }

// Path returns the vertex's containment path.
func (v *Vertex) Path() string { return v.Paths[Containment] }

// String returns the vertex's containment path, or its name if the graph
// is not finalized yet.
func (v *Vertex) String() string {
	if p := v.Path(); p != "" {
		return p
	}
	return v.Name
}

// Children returns the vertices reachable by one downward outgoing edge in
// the given subsystem (reciprocal "in" edges are skipped).
func (v *Vertex) Children(subsystem string) []*Vertex {
	adj, _ := v.edges()
	var out []*Vertex
	for _, e := range adj[subsystem] {
		if e.Type != EdgeIn {
			out = append(out, e.To)
		}
	}
	return out
}

// EachChild calls fn for every downward child in the subsystem, stopping
// early if fn returns false. It avoids the allocation of Children for hot
// paths.
func (v *Vertex) EachChild(subsystem string, fn func(c *Vertex) bool) {
	adj, _ := v.edges()
	for _, e := range adj[subsystem] {
		if e.Type == EdgeIn {
			continue
		}
		if !fn(e.To) {
			return
		}
	}
}

// ChildCount returns the number of downward children in the subsystem
// without materializing the slice Children builds.
func (v *Vertex) ChildCount(subsystem string) int {
	adj, _ := v.edges()
	n := 0
	for _, e := range adj[subsystem] {
		if e.Type != EdgeIn {
			n++
		}
	}
	return n
}

// HasChildren reports whether v has at least one downward child in the
// subsystem — the allocation-free leaf test used by the match kernel.
func (v *Vertex) HasChildren(subsystem string) bool {
	adj, _ := v.edges()
	for _, e := range adj[subsystem] {
		if e.Type != EdgeIn {
			return true
		}
	}
	return false
}

// InSubtreeOf reports whether v lies in the containment subtree rooted
// at root (inclusive), in O(1) via the pre-order interval labels
// maintained by Finalize and Attach. Before Finalize all labels are
// zero and the result is meaningless.
func (v *Vertex) InSubtreeOf(root *Vertex) bool {
	return root.treeIn <= v.treeIn && v.treeIn < root.treeOut
}

// containmentParents returns the From endpoints of incoming contains-typed
// containment edges.
func (v *Vertex) containmentParents() []*Vertex {
	_, adj := v.edges()
	var out []*Vertex
	for _, e := range adj[Containment] {
		if e.Type != EdgeIn {
			out = append(out, e.From)
		}
	}
	return out
}

// Parent returns the vertex's unique containment parent, or nil for roots.
// It panics if the containment subsystem is not a tree.
func (v *Vertex) Parent() *Vertex {
	in := v.containmentParents()
	switch len(in) {
	case 0:
		return nil
	case 1:
		return in[0]
	default:
		panic(fmt.Sprintf("resgraph: vertex %s has %d containment parents", v.Name, len(in)))
	}
}

// AddSpecClaim adjusts the vertex's speculative-claim counter by delta
// units. Speculating match workers publish positive deltas while they hold
// tentative allocations and negative deltas when those are committed or
// abandoned.
func (v *Vertex) AddSpecClaim(delta int64) { v.specClaims.Add(delta) }

// SpecClaims returns the units currently claimed by in-flight speculative
// match attempts on this vertex.
func (v *Vertex) SpecClaims() int64 { return v.specClaims.Load() }

// InEdges returns the incoming edges in the subsystem.
func (v *Vertex) InEdges(subsystem string) []*Edge {
	_, adj := v.edges()
	return adj[subsystem]
}

// OutEdges returns the outgoing edges in the subsystem.
func (v *Vertex) OutEdges(subsystem string) []*Edge {
	adj, _ := v.edges()
	return adj[subsystem]
}

// Property returns a property value ("" if absent).
func (v *Vertex) Property(key string) string {
	return v.Properties[key]
}

// SetProperty sets a property value.
func (v *Vertex) SetProperty(key, value string) {
	if v.Properties == nil {
		v.Properties = make(map[string]string)
	}
	v.Properties[key] = value
}
